// Package softdb's top-level benchmarks: one testing.B benchmark per
// experiment in EXPERIMENTS.md (E1–E13), each re-running the experiment's
// measured configuration so `go test -bench=.` regenerates the reproduction
// numbers. For the formatted result tables, run cmd/scbench.
package softdb_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"softdb/internal/bench"
	"softdb/internal/engine"
	"softdb/internal/expr"
	"softdb/internal/mining"
	"softdb/internal/server"
	"softdb/internal/shard"
	"softdb/internal/softc"
	"softdb/internal/types"
	"softdb/internal/vec"
	"softdb/internal/wal"
	"softdb/internal/workload"
)

// reportPages attaches a pages-per-op metric so benchmark output carries
// the paper's unit of cost alongside wall time. Pages and comparisons are
// accumulated over every iteration and reported as per-op means, so the
// metric reflects the run, not whatever the final iteration happened to do.
func runQueryBench(b *testing.B, db *engine.Database, q string) {
	b.Helper()
	var pages, cmps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Ctx.IO.PagesRead
		cmps += res.Ctx.Comparisons
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
	b.ReportMetric(float64(cmps)/float64(b.N), "cmp/op")
}

// openE returns a database for the E-series benchmarks: plan caching off so
// every iteration pays the full path, and zone-map pruning pinned off so
// each benchmark isolates the one semantic rewrite it measures (the same
// isolation internal/bench applies; BenchmarkP2Prune measures pruning).
func openE() *engine.Database {
	db := engine.Open()
	db.DisablePlanCache = true
	db.NoPrune = true
	return db
}

// BenchmarkE1PredicateIntroduction measures the ship_date equality query
// with the mined correlation installed (the optimized side of E1); the
// /baseline variant disables the rewrite.
func BenchmarkE1PredicateIntroduction(b *testing.B) {
	for _, mode := range []string{"baseline", "sqo"} {
		b.Run(mode, func(b *testing.B) {
			db := openE()
			if err := workload.LoadPurchase(db, workload.PurchaseConfig{
				N: 50000, Seed: 1, IndexOrderDate: true,
			}); err != nil {
				b.Fatal(err)
			}
			mgr := softc.NewManager(db.Catalog())
			cands, err := mgr.DiscoverTable("purchase")
			if err != nil {
				b.Fatal(err)
			}
			if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 1)); err != nil {
				b.Fatal(err)
			}
			db.RewriteOpts.NoPredIntro = mode == "baseline"
			runQueryBench(b, db, "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + 6000")
		})
	}
}

// BenchmarkE2JoinHoles measures the straddling range join with and without
// hole trimming.
func BenchmarkE2JoinHoles(b *testing.B) {
	for _, mode := range []string{"baseline", "holetrim"} {
		b.Run(mode, func(b *testing.B) {
			db := setupHoleBench(b, 10000, 2)
			db.RewriteOpts.NoHoleTrim = mode == "baseline"
			runQueryBench(b, db, holesQueryFor(10000))
		})
	}
}

func setupHoleBench(b *testing.B, orders, lines int) *engine.Database {
	b.Helper()
	db := openE()
	if err := workload.LoadOrdersLineitem(db, workload.HolesConfig{
		Orders: orders, LinesPer: lines, Seed: 5, BandLo: orders / 4, BandHi: orders / 2,
	}); err != nil {
		b.Fatal(err)
	}
	left, _ := db.Catalog().Table("orders")
	right, _ := db.Catalog().Table("lineitem")
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		b.Fatal(err)
	}
	return db
}

func holesQueryFor(orders int) string {
	lo := orders/4 + orders/16
	hi := orders/2 + orders/8
	return fmt.Sprintf(`SELECT COUNT(*) AS n FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		lo, hi, lo, hi+90)
}

// BenchmarkE3Cardinality measures estimation latency with and without SSC
// twins and reports the mean q-error of each mode as a custom metric.
func BenchmarkE3Cardinality(b *testing.B) {
	db := openE()
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: 20000, LongFrac: 0.1, Seed: 3, Confidence: 0.9,
	}); err != nil {
		b.Fatal(err)
	}
	q := "SELECT id FROM project WHERE start_date <= DATE '1999-01-01' + 5000 AND end_date >= DATE '1999-01-01' + 5000"
	for _, mode := range []string{"independence", "ssctwin"} {
		b.Run(mode, func(b *testing.B) {
			db.NoSSCEstimation = mode == "independence"
			var est float64
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				est = res.EstRows
			}
			b.ReportMetric(est, "est-rows")
		})
	}
}

// BenchmarkE4JoinElimination measures the fact⋈dim aggregate with and
// without join elimination.
func BenchmarkE4JoinElimination(b *testing.B) {
	for _, mode := range []string{"join", "eliminated"} {
		b.Run(mode, func(b *testing.B) {
			db := openE()
			if err := workload.LoadStar(db, workload.StarConfig{
				DimRows: 1000, FactRows: 30000, Seed: 2, FKMode: "informational",
			}); err != nil {
				b.Fatal(err)
			}
			db.RewriteOpts.NoJoinElim = mode == "join"
			runQueryBench(b, db, "SELECT SUM(f.qty) AS s FROM fact f, dim d WHERE f.dim_id = d.id")
		})
	}
}

// BenchmarkE5BranchPrune measures the Jan–Mar query against the 12-branch
// view with and without branch elimination.
func BenchmarkE5BranchPrune(b *testing.B) {
	for _, mode := range []string{"all-branches", "pruned"} {
		b.Run(mode, func(b *testing.B) {
			db := openE()
			if err := workload.LoadPartitionedSales(db, 2000, 3); err != nil {
				b.Fatal(err)
			}
			db.RewriteOpts.NoBranchPrune = mode == "all-branches"
			runQueryBench(b, db, "SELECT SUM(amount) AS s FROM sales WHERE month >= 1 AND month <= 3")
		})
	}
}

// BenchmarkE6ExceptionAST measures the late-shipments query under the three
// E6 configurations.
func BenchmarkE6ExceptionAST(b *testing.B) {
	db := openE()
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: 30000, LateFrac: 0.01, Seed: 4, ShipWindowMode: "ssc", IndexOrderDate: true,
	}); err != nil {
		b.Fatal(err)
	}
	db.MustExec(`CREATE SUMMARY TABLE late_shipments AS
		(SELECT * FROM purchase WHERE ship_date > order_date + 21)`)
	if err := db.LinkException("ship_window", "late_shipments"); err != nil {
		b.Fatal(err)
	}
	db.MustExec("ANALYZE purchase")
	q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + 3500"
	for _, mode := range []string{"scan", "exception-ast"} {
		b.Run(mode, func(b *testing.B) {
			db.RewriteOpts.NoExceptionAST = mode == "scan"
			db.RewriteOpts.NoSSCTwins = mode == "scan"
			runQueryBench(b, db, q)
		})
	}
}

// BenchmarkE7FDSort measures the FD-simplified ORDER BY.
func BenchmarkE7FDSort(b *testing.B) {
	for _, mode := range []string{"full-keys", "fd-simplified"} {
		b.Run(mode, func(b *testing.B) {
			db := openE()
			if err := workload.LoadDenormalized(db, 20000, 100, 7); err != nil {
				b.Fatal(err)
			}
			mgr := softc.NewManager(db.Catalog())
			mgr.FDs = mining.FDMinerConfig{MaxLHS: 1}
			cands, err := mgr.DiscoverTable("orders_wide")
			if err != nil {
				b.Fatal(err)
			}
			var useful []mining.FD
			for _, fd := range cands.FDs {
				if fd.Det[0] == "cust_id" && fd.Confidence >= 1 {
					useful = append(useful, fd)
				}
			}
			if err := mgr.InstallFDs("orders_wide", useful); err != nil {
				b.Fatal(err)
			}
			db.RewriteOpts.NoSortOpt = mode == "full-keys"
			runQueryBench(b, db, "SELECT cust_id, cust_name FROM orders_wide ORDER BY cust_id, cust_name, region")
		})
	}
}

// BenchmarkE8CheckingOverhead measures bulk-load cost with enforced vs
// informational constraints (the §1 loading argument). Each op loads a
// fixed 2000-row batch into a fresh table, so the two modes run at
// identical scale.
func BenchmarkE8CheckingOverhead(b *testing.B) {
	const batch = 2000
	for _, mode := range []string{"informational", "enforced"} {
		b.Run(mode, func(b *testing.B) {
			fkSuffix, checkSuffix := "", ""
			if mode == "informational" {
				fkSuffix, checkSuffix = " NOT ENFORCED", " INFORMATIONAL"
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := engine.Open()
				db.MustExec("CREATE TABLE dim (id INT PRIMARY KEY)")
				for d := 0; d < 100; d++ {
					db.MustExec(fmt.Sprintf("INSERT INTO dim VALUES (%d)", d))
				}
				// No fact PK: isolates the FK+check cost.
				db.MustExec(fmt.Sprintf(`CREATE TABLE fact (
					id INT, dim_id INT NOT NULL, qty INT,
					FOREIGN KEY (dim_id) REFERENCES dim (id)%s,
					CHECK (qty >= 0)%s)`, fkSuffix, checkSuffix))
				te, err := db.Catalog().Table("fact")
				if err != nil {
					b.Fatal(err)
				}
				rows := make([]types.Row, batch)
				for r := 0; r < batch; r++ {
					row, err := te.Def.ValidateRow(benchFactRow(r))
					if err != nil {
						b.Fatal(err)
					}
					rows[r] = row
				}
				b.StartTimer()
				for _, row := range rows {
					if err := db.InsertRow(te, row); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(batch), "rows/op")
		})
	}
}

// BenchmarkE9Currency measures the margin-of-error bookkeeping under an
// update stream.
func BenchmarkE9Currency(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: 10000, LongFrac: 0, Seed: 9, Confidence: 0.999,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustExec(fmt.Sprintf("UPDATE project SET end_date = start_date + 400 WHERE id = %d", i%10000))
	}
}

// BenchmarkE10Miners measures the two discovery algorithms.
func BenchmarkE10Miners(b *testing.B) {
	b.Run("correlation-50k", func(b *testing.B) {
		db := engine.Open()
		if err := workload.LoadPurchase(db, workload.PurchaseConfig{N: 50000, Seed: 6}); err != nil {
			b.Fatal(err)
		}
		te, _ := db.Catalog().Table("purchase")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mining.FitLinear(te.Heap, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("holes-20k", func(b *testing.B) {
		db := engine.Open()
		if err := workload.LoadOrdersLineitem(db, workload.HolesConfig{
			Orders: 20000, LinesPer: 1, Seed: 6, BandLo: 5000, BandHi: 10000,
		}); err != nil {
			b.Fatal(err)
		}
		left, _ := db.Catalog().Table("orders")
		right, _ := db.Catalog().Table("lineitem")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
				Left: left, Right: right,
				JoinLeft: "okey", JoinRight: "okey",
				AttrLeft: "odate", AttrRight: "shipdate",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Violation measures the synchronous cheap-repair path: a write
// that retires holes and invalidates dependent plans.
func BenchmarkE11Violation(b *testing.B) {
	db := setupHoleBench(b, 10000, 2)
	db.DisablePlanCache = false
	q := holesQueryFor(10000)
	if _, err := db.Exec(q); err != nil {
		b.Fatal(err)
	}
	bandMid := 10000/4 + 1250
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		okey := 20000 + i
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, DATE '1999-01-01' + %d)", okey, bandMid))
		db.MustExec(fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, DATE '1999-01-01' + %d, 1)",
			2000000+i, okey, bandMid+10))
	}
}

// BenchmarkFullSuite runs every experiment once per iteration; useful for
// spotting regressions across the whole reproduction.
func BenchmarkFullSuiteSmoke(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite is slow")
	}
	for i := 0; i < b.N; i++ {
		rep, err := bench.E5BranchPrune(500)
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// benchFactRow builds one deterministic fact row.
func benchFactRow(i int) types.Row {
	return types.Row{
		types.NewInt(int64(i)),
		types.NewInt(int64(i % 100)),
		types.NewInt(int64(i % 500)),
	}
}

// BenchmarkE12ASTRouting measures the correlated-predicate query with and
// without AST routing.
func BenchmarkE12ASTRouting(b *testing.B) {
	db := openE()
	db.MustExec("CREATE TABLE purchase (id INT PRIMARY KEY, region INT, amount FLOAT)")
	te, err := db.Catalog().Table("purchase")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		region, amount := i%7, i%90
		if i%20 == 0 {
			region, amount = 3, 90+i%10
		}
		row, err := te.Def.ValidateRow(types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(region)), types.NewFloat(float64(amount)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.InsertRow(te, row); err != nil {
			b.Fatal(err)
		}
	}
	db.MustExec("CREATE SUMMARY TABLE premium AS (SELECT * FROM purchase WHERE amount >= 90 AND region = 3)")
	db.MustExec("ANALYZE purchase")
	q := "SELECT id FROM purchase WHERE amount >= 90 AND region = 3"
	for _, mode := range []string{"base-table", "ast-routed"} {
		b.Run(mode, func(b *testing.B) {
			db.RewriteOpts.NoASTRouting = mode == "base-table"
			runQueryBench(b, db, q)
		})
	}
}

// BenchmarkE13VirtualColumn measures the expression-predicate query before
// and after registering the duration virtual column (estimation-only; wall
// time is flat, the est-rows metric is the result).
func BenchmarkE13VirtualColumn(b *testing.B) {
	db := openE()
	if err := workload.LoadProject(db, workload.ProjectConfig{N: 20000, LongFrac: 0.1, Seed: 13}); err != nil {
		b.Fatal(err)
	}
	q := "SELECT id FROM project WHERE end_date - start_date <= 5"
	run := func(b *testing.B) {
		var est float64
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			est = res.EstRows
		}
		b.ReportMetric(est, "est-rows")
	}
	b.Run("default-estimate", run)
	if err := db.AddVirtualColumn("project", "duration", "end_date - start_date"); err != nil {
		b.Fatal(err)
	}
	b.Run("virtual-column", run)
}

// BenchmarkP1Parallel compares serial against Parallel=8 execution of the
// P1 workloads (filter scan, grouped aggregation, hash join) on one shared
// star-schema database. Each parallel run must report exactly the pages of
// its serial twin — the partitioned operators divide the work, they do not
// change what is read. Wall-clock speedup tracks GOMAXPROCS; on a
// single-core host the parallel variants only measure coordination
// overhead.
func BenchmarkP1Parallel(b *testing.B) {
	db := openE()
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: 200000, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, q string }{
		{"filter-scan", "SELECT id, qty FROM fact WHERE qty > 25 AND price < 500.0"},
		{"group-agg", "SELECT dim_id, COUNT(*) AS n, SUM(qty) AS total FROM fact GROUP BY dim_id"},
		{"hash-join", "SELECT COUNT(*) AS n FROM fact, dim WHERE fact.dim_id = dim.id AND dim.category = 3"},
	}
	for _, qc := range queries {
		db.Parallel = 1
		ref, err := db.Exec(qc.q)
		if err != nil {
			b.Fatal(err)
		}
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/parallel=%d", qc.name, par), func(b *testing.B) {
				db.Parallel = par
				var pages int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := db.Exec(qc.q)
					if err != nil {
						b.Fatal(err)
					}
					pages = res.Ctx.IO.PagesRead
					if pages != ref.Ctx.IO.PagesRead || len(res.Rows) != len(ref.Rows) {
						b.Fatalf("parallel=%d diverged from serial: pages %d vs %d, rows %d vs %d",
							par, pages, ref.Ctx.IO.PagesRead, len(res.Rows), len(ref.Rows))
					}
				}
				b.ReportMetric(float64(pages), "pages/op")
			})
		}
	}
}

// BenchmarkObsOverhead measures what the observability layer costs the
// query path (experiment O1). The off/ variants run with tracing disabled —
// metrics counters and the query-log ring still update, which is the
// always-on production configuration — and should stay within a few percent
// of the pre-instrumentation engine. The on/ variants add the per-operator
// span wrappers and bound the cost of \trace on / EXPLAIN ANALYZE.
func BenchmarkObsOverhead(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: 100000, Seed: 11}); err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, q string }{
		{"filter-scan", "SELECT id, qty FROM fact WHERE qty > 25 AND price < 500.0"},
		{"group-agg", "SELECT dim_id, COUNT(*) AS n, SUM(qty) AS total FROM fact GROUP BY dim_id"},
	}
	for _, qc := range queries {
		for _, tracing := range []bool{false, true} {
			label := "tracing-off"
			if tracing {
				label = "tracing-on"
			}
			b.Run(fmt.Sprintf("%s/%s", qc.name, label), func(b *testing.B) {
				db.SetTracing(tracing)
				runQueryBench(b, db, qc.q)
			})
		}
	}
	db.SetTracing(false)
}

// BenchmarkR1LifecycleOverhead bounds what the query-lifecycle plumbing
// costs a query that never exercises it (experiment R1). The ctx=on
// variants run under a live cancelable deadline context, so every page and
// row checkpoint performs the full done-channel select; the ctx=off
// variants run with a background context — the fast path where the
// checkpoint is a nil test. No faults, budgets, or cancellations fire in
// either variant; the acceptance bar is <=5% wall-time overhead.
func BenchmarkR1LifecycleOverhead(b *testing.B) {
	db := engine.Open()
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: 100000, Seed: 17}); err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, q string }{
		{"filter-scan", "SELECT id, qty FROM fact WHERE qty > 25 AND price < 500.0"},
		{"group-agg", "SELECT dim_id, COUNT(*) AS n, SUM(qty) AS total FROM fact GROUP BY dim_id"},
	}
	for _, qc := range queries {
		for _, withCtx := range []bool{false, true} {
			label := "ctx=off"
			if withCtx {
				label = "ctx=on"
			}
			b.Run(fmt.Sprintf("%s/%s", qc.name, label), func(b *testing.B) {
				var pages int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if withCtx {
						ctx, cancel = context.WithTimeout(ctx, time.Hour)
					}
					res, err := db.ExecCtx(ctx, qc.q)
					cancel()
					if err != nil {
						b.Fatal(err)
					}
					pages += res.Ctx.IO.PagesRead
				}
				b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			})
		}
	}
}

// BenchmarkS1Server measures wire-protocol query throughput: concurrent
// clients driving mixed read/DML traffic through a TCP server backed by
// one engine instance (experiment S1). Each op is one full driver run;
// qps and the accepted-statement latency percentiles are reported as
// custom metrics, accumulated across iterations like pages/op.
func BenchmarkS1Server(b *testing.B) {
	const rows, clients, ops = 8000, 16, 10
	db := engine.Open()
	db.NoIndexes = true
	db.MustExec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)")
	te, err := db.Catalog().Table("t")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i + i%4)), types.NewInt(int64(i % 10)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	db.MustExec("ANALYZE t")
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := srv.Listen()
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	var qps, p50, p95, p99 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := workload.RunDriver(workload.DriverConfig{
			Addr: addr.String(), Clients: clients, OpsPerClient: ops, Seed: int64(100 + i),
			Statement: func(c, op int, r *rand.Rand) string {
				if op%10 == 9 {
					a := rows*10 + i*1000000 + c*10000 + op
					return fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 0)", a, a+1)
				}
				lo := r.Intn(rows - 50)
				return fmt.Sprintf("SELECT a, b, c FROM t WHERE a >= %d AND a <= %d", lo, lo+40)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.ErrKinds) > 0 || rep.Shed > 0 {
			b.Fatalf("driver saw failures: %+v", rep)
		}
		qps += rep.Throughput
		p50 += float64(rep.Accepted.P50.Microseconds())
		p95 += float64(rep.Accepted.P95.Microseconds())
		p99 += float64(rep.Accepted.P99.Microseconds())
	}
	n := float64(b.N)
	b.ReportMetric(qps/n, "qps")
	b.ReportMetric(p50/n, "p50_us")
	b.ReportMetric(p95/n, "p95_us")
	b.ReportMetric(p99/n, "p99_us")
}

// BenchmarkT1ReadUnderWrites measures the MVCC tentpole's headline number
// (experiment T1): reader p99 over slow-page scans, alone and with a
// concurrent insert flood. Before snapshot isolation a writer serialized
// behind each materializing scan and later readers queued behind the
// writer, so the under-write p99 degraded multi-x; scbench's trajectory
// check gates on the ratio staying small.
func BenchmarkT1ReadUnderWrites(b *testing.B) {
	var ro, rw float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roRep, rwRep, err := bench.T1ReadLatencies(bench.DefaultT1)
		if err != nil {
			b.Fatal(err)
		}
		if len(roRep.ErrKinds) > 0 || len(rwRep.ErrKinds) > 0 {
			b.Fatalf("driver saw failures: ro=%v rw=%v", roRep.ErrKinds, rwRep.ErrKinds)
		}
		ro += float64(roRep.Accepted.P99.Microseconds())
		rw += float64(rwRep.Accepted.P99.Microseconds())
	}
	n := float64(b.N)
	b.ReportMetric(ro/n, "ro_p99_us")
	b.ReportMetric(rw/n, "rw_p99_us")
}

// runPruneBench reports per-op page reads and skips alongside wall time —
// the two units the P2 pruning claims are stated in.
func runPruneBench(b *testing.B, db *engine.Database, q string) {
	b.Helper()
	var pages, skipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		pages += res.Ctx.IO.PagesRead
		skipped += res.Ctx.IO.PagesSkipped
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
	b.ReportMetric(float64(skipped)/float64(b.N), "skipped/op")
}

// BenchmarkP2Prune measures zone-map pruning on the three P2 workloads:
// a selective clustered range scan (filter-derived skips), the same scan
// driven through a mined ASC correlation (constraint-derived prune
// predicate), and a join whose range straddles an interior join hole
// (exclusion predicate). The off/ variants pin NoPrune for the baseline.
func BenchmarkP2Prune(b *testing.B) {
	const n = 20000
	selDB := engine.Open()
	selDB.DisablePlanCache = true
	if err := workload.LoadPurchase(selDB, workload.PurchaseConfig{N: n, Seed: 21}); err != nil {
		b.Fatal(err)
	}
	lo := n / 4 / 4
	selQ := fmt.Sprintf("SELECT id FROM purchase WHERE order_date >= DATE '1999-01-01' + %d AND order_date <= DATE '1999-01-01' + %d", lo, lo+20)

	corrDB := engine.Open()
	corrDB.DisablePlanCache = true
	if err := workload.LoadPurchase(corrDB, workload.PurchaseConfig{N: n, Seed: 22}); err != nil {
		b.Fatal(err)
	}
	mgr := softc.NewManager(corrDB.Catalog())
	cands, err := mgr.DiscoverTable("purchase")
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 1)); err != nil {
		b.Fatal(err)
	}
	corrQ := fmt.Sprintf("SELECT id FROM purchase WHERE ship_date >= DATE '1999-01-01' + %d AND ship_date <= DATE '1999-01-01' + %d", lo, lo+20)

	holeDB := engine.Open()
	holeDB.DisablePlanCache = true
	if err := workload.LoadOrdersLineitem(holeDB, workload.HolesConfig{
		Orders: n, LinesPer: 2, Seed: 23, BandLo: n / 4, BandHi: n / 2,
	}); err != nil {
		b.Fatal(err)
	}
	left, _ := holeDB.Catalog().Table("orders")
	right, _ := holeDB.Catalog().Table("lineitem")
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		b.Fatal(err)
	}
	jh.Name = "p2_holes"
	if err := holeDB.Catalog().AddJoinHoles(jh); err != nil {
		b.Fatal(err)
	}
	holeQ := fmt.Sprintf(`SELECT COUNT(*) AS c FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		n/8, 3*n/4, n/8, 3*n/4+89)

	cases := []struct {
		name string
		db   *engine.Database
		q    string
	}{
		{"selective-scan", selDB, selQ},
		{"corr-derived", corrDB, corrQ},
		{"hole-interval", holeDB, holeQ},
	}
	for _, c := range cases {
		for _, prune := range []string{"off", "on"} {
			b.Run(fmt.Sprintf("%s/prune=%s", c.name, prune), func(b *testing.B) {
				c.db.NoPrune = prune == "off"
				runPruneBench(b, c.db, c.q)
			})
		}
	}
}

// BenchmarkP2PruneOverhead bounds what synopsis consultation costs a scan
// that cannot skip anything: an unselective predicate over an unclustered
// column reads every page in both modes, so any wall-time gap between the
// variants is pure bookkeeping (the acceptance bar is <=5%).
func BenchmarkP2PruneOverhead(b *testing.B) {
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: 100000, Seed: 24}); err != nil {
		b.Fatal(err)
	}
	q := "SELECT COUNT(*) AS c FROM fact WHERE qty >= 0"
	for _, prune := range []string{"off", "on"} {
		b.Run("full-scan/prune="+prune, func(b *testing.B) {
			db.NoPrune = prune == "off"
			runPruneBench(b, db, q)
		})
	}
}

// BenchmarkD1Recovery measures crash recovery: each iteration recovers a
// fresh copy of a crash image (a data directory with an uncheckpointed
// 4000-statement log, copied before the shutdown checkpoint) and reports
// records replayed per op. The /checkpointed variant recovers the same
// workload written under the default checkpoint cadence, so only the tail
// past the last snapshot replays.
func BenchmarkD1Recovery(b *testing.B) {
	for _, mode := range []struct {
		name  string
		every int
	}{{"uncheckpointed", -1}, {"checkpointed", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			src := b.TempDir()
			db, _, err := engine.OpenDurable(src, engine.DurableOptions{
				SyncPolicy: wal.SyncNone, CheckpointEvery: mode.every,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.ExecScript(
				"CREATE TABLE d1 (k INT PRIMARY KEY, v INT NOT NULL, CONSTRAINT d1_v_pos CHECK (v >= 0) SOFT); CREATE INDEX idx_d1_v ON d1 (v);"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 4000; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO d1 VALUES (%d, %d)", i, i%1000)); err != nil {
					b.Fatal(err)
				}
			}
			// Snapshot the crash image before Close writes its checkpoint.
			image := b.TempDir()
			copyBenchDir(b, src, image)
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}

			var replayed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				copyBenchDir(b, image, dir)
				b.StartTimer()
				rdb, rs, err := engine.OpenDurable(dir, engine.DurableOptions{SyncPolicy: wal.SyncNone})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				replayed += rs.RecordsReplayed
				rdb.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(replayed)/float64(b.N), "records/op")
		})
	}
}

// copyBenchDir copies every regular file in src into dst.
func copyBenchDir(b *testing.B, src, dst string) {
	b.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkO2EconomyOverhead bounds what the constraint-economy ledger
// costs a steady-state query that exercises its crediting hot path: a
// join-hole-trimmed range join whose pruned scans attribute skipped pages
// to the hole characterization and whose finished executions flush a
// q-error observation (experiment O2). The ledger-off variant runs the
// identical cached plan with db.NoEconomy set, so the delta isolates the
// atomic-add crediting; the acceptance bar is <=5% wall time.
func BenchmarkO2EconomyOverhead(b *testing.B) {
	n := 20000
	db := engine.Open()
	if err := workload.LoadOrdersLineitem(db, workload.HolesConfig{
		Orders: n, LinesPer: 2, Seed: 5, BandLo: n / 4, BandHi: n / 2,
	}); err != nil {
		b.Fatal(err)
	}
	left, err := db.Catalog().Table("orders")
	if err != nil {
		b.Fatal(err)
	}
	right, err := db.Catalog().Table("lineitem")
	if err != nil {
		b.Fatal(err)
	}
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		b.Fatal(err)
	}
	jh.Name = "holes_orders_lineitem"
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		b.Fatal(err)
	}
	// The ranges straddle the planted hole band, so the rewriter plants an
	// interior exclusion prune predicate and every iteration attributes
	// skipped pages to the hole — the ledger's hottest crediting path.
	lo, hi := n/8, 3*n/4
	q := fmt.Sprintf(`SELECT COUNT(*) AS c FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		lo, hi, lo, hi+10)
	if _, err := db.Exec(q); err != nil {
		b.Fatal(err)
	}
	for _, ledger := range []bool{true, false} {
		label := "ledger-on"
		if !ledger {
			label = "ledger-off"
		}
		b.Run(label, func(b *testing.B) {
			db.NoEconomy = !ledger
			runQueryBench(b, db, q)
		})
	}
	db.NoEconomy = false
}

// BenchmarkV1Kernels measures the compiled predicate kernels against the
// per-row tree-walk they replaced, one sub-benchmark pair per kernel
// family (see EXPERIMENTS.md §V1). Each op evaluates the whole batch, and
// ns/row is reported so single-iteration snapshot runs still carry a
// meaningful per-row number.
func BenchmarkV1Kernels(b *testing.B) {
	const nRows = 65536
	rows := bench.V1Rows(nRows)
	for _, kc := range bench.V1Cases() {
		prog := expr.CompilePredicate(kc.Conds)
		b.Run(kc.Name+"/kernel", func(b *testing.B) {
			var batch vec.Batch
			batch.Reset(rows)
			ident := vec.IdentitySel(nil, nRows)
			out := make([]int32, 0, nRows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel := ident
				for s := range prog.Stages {
					var err error
					sel, err = prog.RunStage(s, &batch, sel, out)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nRows), "ns/row")
		})
		b.Run(kc.Name+"/treewalk", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, row := range rows {
					for _, c := range kc.Conds {
						ok, err := expr.EvalBool(c, row)
						if err != nil {
							b.Fatal(err)
						}
						if !ok {
							break
						}
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nRows), "ns/row")
		})
	}
}

// BenchmarkS2Router measures the constraint-aware shard router's zone-map
// analogy (experiment S2): a query whose predicate lies inside exactly one
// shard's synced value range, with registry pruning on (pruned) and off
// (broadcast). The shards/op metric is the number of shards contacted per
// statement; scbench's trajectory check gates pruned < broadcast — the
// regression it catches is the registry silently no longer excluding
// shards.
func BenchmarkS2Router(b *testing.B) {
	const shards, rows = 4, 8000
	addrs := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		db := engine.Open()
		db.NoIndexes = true
		srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
		addr, err := srv.Listen()
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		addrs = append(addrs, addr.String())
	}
	spec, err := shard.ParseSpec(fmt.Sprintf("events=range(k:%d,%d,%d)", rows/4, rows/2, 3*rows/4))
	if err != nil {
		b.Fatal(err)
	}
	r, err := shard.New(shard.Config{
		Addrs: addrs, Specs: []shard.Spec{spec},
		TrackCols:   []string{"events.v"},
		DialTimeout: 5 * time.Second, DialAttempts: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	sess := r.NewSession()
	defer sess.Close()
	ctx := context.Background()
	if _, err := sess.Exec(ctx, "CREATE TABLE events (k INT NOT NULL, v INT)"); err != nil {
		b.Fatal(err)
	}
	var vals []string
	for i := 0; i < rows; i++ {
		k := (i * 10007) % rows
		vals = append(vals, fmt.Sprintf("(%d, %d)", k, k))
		if len(vals) == 200 || i == rows-1 {
			if _, err := sess.Exec(ctx, "INSERT INTO events VALUES "+joinComma(vals)); err != nil {
				b.Fatal(err)
			}
			vals = vals[:0]
		}
	}
	if _, err := sess.Exec(ctx, "ROUTER SYNC"); err != nil {
		b.Fatal(err)
	}
	// The measured statement: a value band covered only by the last
	// shard's synced range.
	q := fmt.Sprintf("SELECT COUNT(*) AS n, SUM(v) AS s FROM events WHERE v >= %d AND v <= %d", rows-rows/8, rows-1)
	for _, mode := range []string{"pruned", "broadcast"} {
		b.Run(mode, func(b *testing.B) {
			if err := sess.Set("shard_prune", map[string]string{"pruned": "on", "broadcast": "off"}[mode]); err != nil {
				b.Fatal(err)
			}
			before := r.ShardQueryCounts()
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var contacted int64
			for i, c := range r.ShardQueryCounts() {
				contacted += c - before[i]
			}
			b.ReportMetric(float64(contacted)/float64(b.N), "shards/op")
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
		})
	}
}

func joinComma(vals []string) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += ", "
		}
		out += v
	}
	return out
}
