package storage

import (
	"softdb/internal/types"
)

// ColSynopsis summarizes one column of one page: the minimum and maximum
// over the page's live non-null values, and how many live rows are NULL.
// Min and Max are NULL datums when the page holds no non-null value for the
// column.
type ColSynopsis struct {
	Min   types.Datum
	Max   types.Datum
	Nulls int64
}

// PageSynopsis is an immutable per-page summary (a zone map): one
// ColSynopsis per table column plus the live-row count. A synopsis is never
// mutated after publication — writers build a fresh one and publish it with
// an atomic pointer swap, so concurrent scans either see the old snapshot
// or the new one, never a torn mix.
type PageSynopsis struct {
	Rows int64 // live rows on the page
	Cols []ColSynopsis
}

// Col returns the synopsis for column ord, or nil if the synopsis does not
// cover it (schema drift; callers must treat nil as "cannot prune").
func (s *PageSynopsis) Col(ord int) *ColSynopsis {
	if s == nil || ord < 0 || ord >= len(s.Cols) {
		return nil
	}
	return &s.Cols[ord]
}

// extend returns a new synopsis covering the old rows plus row. The
// receiver may be nil (empty page).
func (s *PageSynopsis) extend(row types.Row, ncols int) *PageSynopsis {
	next := &PageSynopsis{Rows: 1, Cols: make([]ColSynopsis, ncols)}
	if s != nil {
		next.Rows = s.Rows + 1
		copy(next.Cols, s.Cols)
	}
	for ci := range next.Cols {
		if ci >= len(row) {
			break
		}
		mergeDatum(&next.Cols[ci], row[ci])
	}
	return next
}

func mergeDatum(cs *ColSynopsis, d types.Datum) {
	if d.IsNull() {
		cs.Nulls++
		return
	}
	if cs.Min.IsNull() || d.Compare(cs.Min) < 0 {
		cs.Min = d
	}
	if cs.Max.IsNull() || d.Compare(cs.Max) > 0 {
		cs.Max = d
	}
}

// computeSynopsis builds a synopsis from scratch over a page's non-aborted
// slots. Committed-ended versions are included: a snapshot older than the
// ending transaction may still need to see them, so the synopsis stays
// conservative (only Vacuum, which knows the reader horizon, truly sheds
// them by marking the slots aborted).
func computeSynopsis(p *page, ncols int) *PageSynopsis {
	syn := &PageSynopsis{Cols: make([]ColSynopsis, ncols)}
	n := p.used.Load()
	for si := int32(0); si < n; si++ {
		s := &p.slots[si]
		if s.begin.Load() == Aborted {
			continue
		}
		syn.Rows++
		for ci := range syn.Cols {
			if ci >= len(s.row) {
				break
			}
			mergeDatum(&syn.Cols[ci], s.row[ci])
		}
	}
	return syn
}

// Synopsis returns the published synopsis for page pi, or nil when the page
// does not exist. The returned snapshot is immutable and safe to read
// concurrently with writers (which publish replacements by pointer swap).
func (h *Heap) Synopsis(pi int) *PageSynopsis {
	pages := h.pageList()
	if pi < 0 || pi >= len(pages) {
		return nil
	}
	return pages[pi].syn.Load()
}

// ScanPages iterates pages [pageLo, pageHi). For each page it first offers
// the page's synopsis to skip (when non-nil); if skip returns true the page
// is not touched — it charges one PagesSkipped and zero page or row reads.
// Otherwise the page's live rows are gathered into an internal buffer
// (charging one page read and one row read per live row, exactly like
// ScanRange) and fn is called once with the batch plus the page's published
// synopsis (nil when none has been computed) so vectorized consumers can
// prove whole-page predicate outcomes without re-reading values. The batch
// slice is borrowed: it is reused for the next page, so fn must not retain
// it. Iteration stops when fn returns false.
//
// Unlike ScanRange, row charges land page-at-a-time: a consumer that stops
// mid-batch has already been charged for the whole page, mirroring the page
// model (touching any row of a page faults the full page in).
func (h *Heap) ScanPages(pageLo, pageHi int, c *Counters, skip func(*PageSynopsis) bool, fn func(rows []types.Row, syn *PageSynopsis) bool) {
	h.ScanPagesAt(pageLo, pageHi, SnapLatest, 0, c, skip, fn)
}

// ScanPagesAt is ScanPages from an explicit snapshot: the gathered batch
// holds the rows visible at snap to transaction tid.
func (h *Heap) ScanPagesAt(pageLo, pageHi int, snap, tid int64, c *Counters, skip func(*PageSynopsis) bool, fn func(rows []types.Row, syn *PageSynopsis) bool) {
	pages := h.pageList()
	if pageLo < 0 {
		pageLo = 0
	}
	if pageHi > len(pages) {
		pageHi = len(pages)
	}
	var buf []types.Row
	for pi := pageLo; pi < pageHi; pi++ {
		p := pages[pi]
		syn := p.syn.Load()
		if skip != nil && syn != nil && skip(syn) {
			c.AddSkipped(1)
			continue
		}
		c.AddPages(1)
		buf = buf[:0]
		n := p.used.Load()
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			if !Visible(s.begin.Load(), s.end.Load(), snap, tid) {
				continue
			}
			buf = append(buf, s.row)
		}
		c.AddRows(int64(len(buf)))
		if len(buf) == 0 {
			continue
		}
		if !fn(buf, syn) {
			return
		}
	}
}
