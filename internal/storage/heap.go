// Package storage implements softdb's in-memory heap tables with a
// simulated page model. Rows are stored in fixed-size (4 KiB) pages; scans
// and fetches account page and row touches so that the optimizer's cost
// model and the benchmark harness can report I/O the way the paper reasons
// about it (pages scanned), without a disk.
package storage

import (
	"fmt"
	"sync/atomic"

	"softdb/internal/schema"
	"softdb/internal/types"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// pageOverhead models the per-page header.
const pageOverhead = 64

// RowID identifies a row as (page number, slot within page).
type RowID struct {
	Page int32
	Slot int32
}

// String renders the row ID as page:slot.
func (r RowID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Counters accumulates simulated I/O work. The executor passes one Counters
// through a query; storage bumps it on every page and row touch. All updates
// go through the atomic Add* methods so parallel operators sharing a
// Counters keep exact totals; the fields stay plain int64 (not
// atomic.Int64) so Counters values remain freely copyable once a query has
// quiesced.
type Counters struct {
	PagesRead    int64 // heap or index pages fetched
	RowsRead     int64 // rows materialized from pages
	PagesSkipped int64 // heap pages proven irrelevant by a synopsis and never touched
}

// AddPages atomically charges n page reads. Nil receivers are ignored so
// maintenance paths can pass nil.
func (c *Counters) AddPages(n int64) {
	if c != nil {
		atomic.AddInt64(&c.PagesRead, n)
	}
}

// AddRows atomically charges n row reads.
func (c *Counters) AddRows(n int64) {
	if c != nil {
		atomic.AddInt64(&c.RowsRead, n)
	}
}

// AddSkipped atomically records n pages pruned via synopses.
func (c *Counters) AddSkipped(n int64) {
	if c != nil {
		atomic.AddInt64(&c.PagesSkipped, n)
	}
}

// Add atomically accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.AddPages(other.PagesRead)
	c.AddRows(other.RowsRead)
	c.AddSkipped(other.PagesSkipped)
}

// Load returns an atomic snapshot of the counters.
func (c *Counters) Load() Counters {
	return Counters{
		PagesRead:    atomic.LoadInt64(&c.PagesRead),
		RowsRead:     atomic.LoadInt64(&c.RowsRead),
		PagesSkipped: atomic.LoadInt64(&c.PagesSkipped),
	}
}

type slot struct {
	row  types.Row
	dead bool
}

type page struct {
	slots []slot
	bytes int // estimated payload bytes
	live  int
	// syn is the page's published min/max synopsis. Writers (serialized by
	// the engine) replace it wholesale; concurrent scans Load it. It is only
	// ever nil before the first insert into the page.
	syn atomic.Pointer[PageSynopsis]
}

// Heap is an append-oriented row store with slotted pages. It is not safe
// for concurrent mutation; the engine serializes writers.
type Heap struct {
	def     *schema.Table
	pages   []*page
	rowSize int // estimated bytes per row, from the schema
	live    int64
	version int64 // bumped on every mutation; used by plan/stat invalidation
}

// NewHeap creates an empty heap for the given table definition.
func NewHeap(def *schema.Table) *Heap {
	return &Heap{def: def, rowSize: estimateRowSize(def)}
}

func estimateRowSize(def *schema.Table) int {
	size := 8 // row header
	for _, c := range def.Columns {
		switch c.Type {
		case types.KindInt, types.KindFloat, types.KindDate:
			size += 8
		case types.KindBool:
			size += 1
		case types.KindString:
			size += 24 // typical short varchar estimate
		default:
			size += 8
		}
	}
	return size
}

// Def returns the table definition this heap stores rows for.
func (h *Heap) Def() *schema.Table { return h.def }

// RowCount returns the number of live rows.
func (h *Heap) RowCount() int64 { return h.live }

// PageCount returns the number of allocated pages.
func (h *Heap) PageCount() int64 { return int64(len(h.pages)) }

// Version returns a counter that increases on every mutation.
func (h *Heap) Version() int64 { return h.version }

// bump is the single place the mutation counter advances: exactly +1 per
// successful Insert/Update/Delete/Truncate, and never on a failed mutation
// (bad RowID, dead slot). The WAL relies on this invariant — replaying N
// logged mutations onto a snapshot at version V must land the heap at
// exactly V+N, so recovered VerifiedVersion/ModsSince bookkeeping in the
// soft-constraint registry stays meaningful.
func (h *Heap) bump() { h.version++ }

// RowsPerPage reports how many rows of this table fit a page.
func (h *Heap) RowsPerPage() int {
	n := (PageSize - pageOverhead) / h.rowSize
	if n < 1 {
		n = 1
	}
	return n
}

// Insert appends a row (already schema-validated by the caller) and returns
// its RowID.
func (h *Heap) Insert(row types.Row) RowID {
	h.bump()
	h.live++
	capacity := h.RowsPerPage()
	var p *page
	if n := len(h.pages); n > 0 && len(h.pages[n-1].slots) < capacity {
		p = h.pages[n-1]
	} else {
		p = &page{}
		h.pages = append(h.pages, p)
	}
	p.slots = append(p.slots, slot{row: row})
	p.bytes += h.rowSize
	p.live++
	// Extend the page synopsis copy-on-write: inserts only widen min/max,
	// so merging the new row into a fresh snapshot is exact.
	p.syn.Store(p.syn.Load().extend(row, len(h.def.Columns)))
	return RowID{Page: int32(len(h.pages) - 1), Slot: int32(len(p.slots) - 1)}
}

// Fetch returns the row at id, counting one page read and one row read.
// The second return is false if the row was deleted or the ID is invalid.
func (h *Heap) Fetch(id RowID, c *Counters) (types.Row, bool) {
	c.AddPages(1)
	if int(id.Page) >= len(h.pages) {
		return nil, false
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.slots) {
		return nil, false
	}
	s := p.slots[id.Slot]
	if s.dead {
		return nil, false
	}
	c.AddRows(1)
	return s.row, true
}

// Get returns the row at id without touching counters (catalog/maintenance
// use). The second return is false for dead or invalid IDs.
func (h *Heap) Get(id RowID) (types.Row, bool) { return h.Fetch(id, nil) }

// Delete marks the row at id dead. It reports whether a live row was
// removed.
func (h *Heap) Delete(id RowID) bool {
	if int(id.Page) >= len(h.pages) {
		return false
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.slots) || p.slots[id.Slot].dead {
		return false
	}
	p.slots[id.Slot].dead = true
	p.live--
	h.live--
	h.bump()
	// Deletes can shrink min/max, so recompute the page synopsis from the
	// surviving slots and republish.
	p.syn.Store(computeSynopsis(p, len(h.def.Columns)))
	return true
}

// Update replaces the row at id in place. It reports whether a live row was
// updated.
func (h *Heap) Update(id RowID, row types.Row) bool {
	if int(id.Page) >= len(h.pages) {
		return false
	}
	p := h.pages[id.Page]
	if int(id.Slot) >= len(p.slots) || p.slots[id.Slot].dead {
		return false
	}
	p.slots[id.Slot].row = row
	h.bump()
	p.syn.Store(computeSynopsis(p, len(h.def.Columns)))
	return true
}

// Scan iterates all live rows in storage order, counting one page read per
// page touched and one row read per live row. Iteration stops early when fn
// returns false.
func (h *Heap) Scan(c *Counters, fn func(id RowID, row types.Row) bool) {
	h.ScanRange(0, len(h.pages), c, fn)
}

// ScanRange iterates live rows of pages [pageLo, pageHi) in storage order,
// with the same per-page and per-row accounting as Scan. Parallel scans
// split the heap into disjoint contiguous page ranges so the sum of the
// partitions' charges equals a full serial Scan exactly.
func (h *Heap) ScanRange(pageLo, pageHi int, c *Counters, fn func(id RowID, row types.Row) bool) {
	if pageLo < 0 {
		pageLo = 0
	}
	if pageHi > len(h.pages) {
		pageHi = len(h.pages)
	}
	for pi := pageLo; pi < pageHi; pi++ {
		p := h.pages[pi]
		c.AddPages(1)
		for si := range p.slots {
			s := &p.slots[si]
			if s.dead {
				continue
			}
			c.AddRows(1)
			if !fn(RowID{Page: int32(pi), Slot: int32(si)}, s.row) {
				return
			}
		}
	}
}

// ScanAll collects every live row; convenience for miners and tests.
func (h *Heap) ScanAll() []types.Row {
	out := make([]types.Row, 0, h.live)
	h.Scan(nil, func(_ RowID, row types.Row) bool {
		out = append(out, row)
		return true
	})
	return out
}

// Truncate removes all rows and pages. Like every other mutation it bumps
// the version exactly once, even when the heap was already empty, so a
// logged truncate replays to the same version.
func (h *Heap) Truncate() {
	h.pages = nil
	h.live = 0
	h.bump()
}

// SlotData is one slot of a page dump: the row and its tombstone flag.
// Dead slots are part of the physical layout — they keep later RowIDs
// stable — so snapshots must carry them.
type SlotData struct {
	Row  types.Row
	Dead bool
}

// DumpPages returns the heap's exact physical layout: one []SlotData per
// page, in page order, including dead slots. Rows are aliased, not copied;
// the caller must treat them as immutable (engine rows are copy-on-write).
// Checkpoint snapshots and the crash-differential tests use this to compare
// and reconstruct heaps byte-for-byte rather than just live-row-for-row.
func (h *Heap) DumpPages() [][]SlotData {
	out := make([][]SlotData, len(h.pages))
	for pi, p := range h.pages {
		ps := make([]SlotData, len(p.slots))
		for si, s := range p.slots {
			ps[si] = SlotData{Row: s.row, Dead: s.dead}
		}
		out[pi] = ps
	}
	return out
}

// RebuildHeap reconstructs a heap from a DumpPages layout and a version
// counter: pages and slots land exactly where the dump says (preserving
// RowID stability across dead slots), per-page byte/live accounting is
// recomputed, and every page synopsis is rebuilt and published — the
// "re-arm zone maps" step of crash recovery.
func RebuildHeap(def *schema.Table, pages [][]SlotData, version int64) *Heap {
	h := NewHeap(def)
	h.version = version
	for _, ps := range pages {
		p := &page{slots: make([]slot, len(ps))}
		for si, s := range ps {
			p.slots[si] = slot{row: s.Row, dead: s.Dead}
			p.bytes += h.rowSize
			if !s.Dead {
				p.live++
				h.live++
			}
		}
		p.syn.Store(computeSynopsis(p, len(def.Columns)))
		h.pages = append(h.pages, p)
	}
	return h
}
