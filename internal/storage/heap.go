// Package storage implements softdb's in-memory heap tables with a
// simulated page model. Rows are stored in fixed-size (4 KiB) pages; scans
// and fetches account page and row touches so that the optimizer's cost
// model and the benchmark harness can report I/O the way the paper reasons
// about it (pages scanned), without a disk.
//
// Since the MVCC change the heap stores row versions, not rows: every slot
// carries begin/end transaction timestamps and readers pass a snapshot
// timestamp (plus their own transaction ID, so a transaction sees its own
// uncommitted writes). Slots are immutable once published — an UPDATE ends
// the old version and inserts a new one — which is what lets scans run with
// no lock at all while a serialized writer installs versions concurrently:
// the page list, per-page slot counts, and begin/end stamps are all
// published atomically, and a reader's fixed snapshot gives the same
// visibility verdict before and after any in-flight commit.
package storage

import (
	"fmt"
	"math"
	"sync/atomic"

	"softdb/internal/schema"
	"softdb/internal/types"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// pageOverhead models the per-page header.
const pageOverhead = 64

// Timestamp conventions for slot begin/end stamps. A begin stamp is
// positive for a committed version (the commit timestamp), negative for an
// uncommitted version (-txnID of the installing transaction), and Aborted
// for a version whose transaction rolled back (or a replay placeholder
// that only exists to keep later RowIDs stable). An end stamp is 0 while
// the version is the latest, positive once a committed transaction ended
// it, and negative (-txnID) while a delete is still uncommitted.
const (
	// SnapLatest is a snapshot timestamp that sees every committed version
	// and no uncommitted one — the pre-MVCC "current state" view used by
	// maintenance paths (ANALYZE, miners, constraint verification) that run
	// while writers are excluded.
	SnapLatest = math.MaxInt64 - 1
	// Aborted marks a version as invisible to every snapshot.
	Aborted = math.MaxInt64
	// CommittedMin is the begin stamp of rows inserted through the legacy
	// non-transactional Insert: visible to every snapshot.
	CommittedMin = 1
)

// Visible reports whether a version with the given begin/end stamps is in
// the view of a reader at snapshot snap running as transaction tid (0 for
// none). The rules are standard snapshot isolation: a version is visible
// when it was committed at or before the snapshot (or written by the
// reader's own transaction) and not ended at or before the snapshot (an
// uncommitted delete hides the version only from its own transaction).
func Visible(b, e, snap, tid int64) bool {
	if b < 0 {
		if -b != tid {
			return false
		}
	} else if b > snap { // includes Aborted, which exceeds every snapshot
		return false
	}
	switch {
	case e == 0:
		return true
	case e < 0:
		return -e != tid
	default:
		return e > snap
	}
}

// visibleAnyCommitted reports whether a version could be visible to some
// committed-state reader: not aborted and not committed-ended. Uncommitted
// inserts count (their transaction may commit); uncommitted deletes do not
// hide (their transaction may abort). Uniqueness and FK checks use this
// "dirty" view so two in-flight transactions cannot both insert the same
// key.
func visibleAnyCommitted(b, e int64) bool {
	if b == Aborted {
		return false
	}
	return e <= 0
}

// RowID identifies a row version as (page number, slot within page).
type RowID struct {
	Page int32
	Slot int32
}

// String renders the row ID as page:slot.
func (r RowID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Counters accumulates simulated I/O work. The executor passes one Counters
// through a query; storage bumps it on every page and row touch. All updates
// go through the atomic Add* methods so parallel operators sharing a
// Counters keep exact totals; the fields stay plain int64 (not
// atomic.Int64) so Counters values remain freely copyable once a query has
// quiesced.
type Counters struct {
	PagesRead    int64 // heap or index pages fetched
	RowsRead     int64 // rows materialized from pages
	PagesSkipped int64 // heap pages proven irrelevant by a synopsis and never touched
}

// AddPages atomically charges n page reads. Nil receivers are ignored so
// maintenance paths can pass nil.
func (c *Counters) AddPages(n int64) {
	if c != nil {
		atomic.AddInt64(&c.PagesRead, n)
	}
}

// AddRows atomically charges n row reads.
func (c *Counters) AddRows(n int64) {
	if c != nil {
		atomic.AddInt64(&c.RowsRead, n)
	}
}

// AddSkipped atomically records n pages pruned via synopses.
func (c *Counters) AddSkipped(n int64) {
	if c != nil {
		atomic.AddInt64(&c.PagesSkipped, n)
	}
}

// Add atomically accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.AddPages(other.PagesRead)
	c.AddRows(other.RowsRead)
	c.AddSkipped(other.PagesSkipped)
}

// Load returns an atomic snapshot of the counters.
func (c *Counters) Load() Counters {
	return Counters{
		PagesRead:    atomic.LoadInt64(&c.PagesRead),
		RowsRead:     atomic.LoadInt64(&c.RowsRead),
		PagesSkipped: atomic.LoadInt64(&c.PagesSkipped),
	}
}

// slot is one row version. row is written once, before the slot is
// published through the page's used counter, and never mutated afterwards
// (except by Update and Vacuum, which require the caller to exclude
// readers).
type slot struct {
	row   types.Row
	begin atomic.Int64
	end   atomic.Int64
}

// page holds a fixed-capacity slot array. used publishes how many slots
// are valid: a writer fills slots[used] completely and then increments
// used, so lock-free readers iterating slots[:used] only ever see fully
// initialized versions.
type page struct {
	slots []slot
	used  atomic.Int32
	bytes int // estimated payload bytes
	// syn is the page's published min/max synopsis. Writers (serialized by
	// the engine) replace it wholesale; concurrent scans Load it. It is only
	// ever nil before the first insert into the page.
	syn atomic.Pointer[PageSynopsis]
}

// Heap is an append-oriented row-version store with slotted pages. Writers
// must be serialized by the caller (the engine's write lock); readers need
// no lock — the page list is swapped atomically on growth and slots are
// published through each page's used counter.
type Heap struct {
	def     *schema.Table
	pages   atomic.Pointer[[]*page]
	rowSize int // estimated bytes per row, from the schema
	live    atomic.Int64
	version atomic.Int64 // bumped on every committed mutation; used by plan/stat invalidation
}

// NewHeap creates an empty heap for the given table definition.
func NewHeap(def *schema.Table) *Heap {
	h := &Heap{def: def, rowSize: estimateRowSize(def)}
	h.pages.Store(&[]*page{})
	return h
}

func estimateRowSize(def *schema.Table) int {
	size := 8 // row header
	for _, c := range def.Columns {
		switch c.Type {
		case types.KindInt, types.KindFloat, types.KindDate:
			size += 8
		case types.KindBool:
			size += 1
		case types.KindString:
			size += 24 // typical short varchar estimate
		default:
			size += 8
		}
	}
	return size
}

// Def returns the table definition this heap stores rows for.
func (h *Heap) Def() *schema.Table { return h.def }

// RowCount returns the number of rows visible to the latest snapshot.
func (h *Heap) RowCount() int64 { return h.live.Load() }

// PageCount returns the number of allocated pages.
func (h *Heap) PageCount() int64 { return int64(len(*h.pages.Load())) }

// Version returns a counter that increases on every committed mutation.
func (h *Heap) Version() int64 { return h.version.Load() }

// bump is the single place the mutation counter advances: exactly +1 per
// committed row effect — a committed insert (stamped at commit time, or
// installed committed by the legacy Insert and by WAL replay) and a
// committed delete (an UPDATE is a delete plus an insert, so it counts 2).
// Uncommitted installs, aborts, and rollbacks never bump. The WAL relies on
// this invariant: replaying the committed groups of a log onto a snapshot
// at version V lands the heap at exactly the pre-crash version, aborted
// transactions contributing zero on both sides, so recovered
// VerifiedVersion/ModsSince bookkeeping in the soft-constraint registry
// stays meaningful.
func (h *Heap) bump() { h.version.Add(1) }

// RowsPerPage reports how many rows of this table fit a page.
func (h *Heap) RowsPerPage() int {
	n := (PageSize - pageOverhead) / h.rowSize
	if n < 1 {
		n = 1
	}
	return n
}

// pageList loads the published page list.
func (h *Heap) pageList() []*page { return *h.pages.Load() }

// grow appends a fresh page and republishes the page list.
func (h *Heap) grow() *page {
	old := h.pageList()
	p := &page{slots: make([]slot, h.RowsPerPage())}
	next := make([]*page, len(old)+1)
	copy(next, old)
	next[len(old)] = p
	h.pages.Store(&next)
	return p
}

// install appends a version with the given begin stamp to the last page
// (growing if full) and publishes it. It does the bookkeeping shared by all
// insert paths: synopsis extension for non-aborted versions, and live/
// version accounting for committed ones.
func (h *Heap) install(row types.Row, begin int64) RowID {
	pages := h.pageList()
	var p *page
	if n := len(pages); n > 0 && int(pages[n-1].used.Load()) < len(pages[n-1].slots) {
		p = pages[n-1]
	} else {
		p = h.grow()
	}
	si := p.used.Load()
	s := &p.slots[si]
	s.row = row
	s.begin.Store(begin)
	s.end.Store(0)
	p.used.Store(si + 1) // publish: row and stamps are written
	p.bytes += h.rowSize
	if begin != Aborted {
		// Extend the page synopsis copy-on-write: inserts only widen min/max,
		// so merging the new row into a fresh snapshot is exact. Uncommitted
		// versions are included eagerly — the synopsis must cover them the
		// moment their transaction's own scans can see them — and a rollback
		// recomputes the page synopsis to shed them again.
		p.syn.Store(p.syn.Load().extend(row, len(h.def.Columns)))
	}
	if begin > 0 && begin != Aborted {
		h.live.Add(1)
		h.bump()
	}
	return RowID{Page: int32(len(*h.pages.Load()) - 1), Slot: int32(si)}
}

// Insert appends a row (already schema-validated by the caller) visible to
// every snapshot — the legacy non-transactional write used by maintenance
// paths (summary tables, bulk loads, tests). Transactional inserts go
// through InsertVersion + SetBegin.
func (h *Heap) Insert(row types.Row) RowID {
	return h.install(row, CommittedMin)
}

// InsertVersion appends an uncommitted version owned by transaction tid.
// The version is invisible to every snapshot until SetBegin stamps it with
// a commit timestamp (AbortInsert retires it instead). No version bump
// happens until the commit stamp.
func (h *Heap) InsertVersion(row types.Row, tid int64) RowID {
	return h.install(row, -tid)
}

// InsertAtRID places a version at exactly rid — the WAL replay path, which
// must reproduce the pre-crash physical layout so later RowIDs (and the
// index entries pointing at them) stay stable. Gaps before rid (slots that
// belonged to transactions whose records the log lost or that replay in a
// different order) are filled with aborted placeholders. begin is either a
// commit timestamp or Aborted (replaying a rolled-back transaction's
// inserts keeps layout parity with the live heap, where the slots exist but
// are aborted). A slot behind the tail can only be claimed if it is still an
// aborted gap-fill placeholder: transactions commit in an order different
// from their slot order, so a later-committing transaction's records can
// land on slots an earlier commit's gap-fill already padded. Replay is
// single-threaded, so the in-place resurrection is safe. It returns false
// if rid is behind the tail and genuinely occupied.
func (h *Heap) InsertAtRID(row types.Row, rid RowID, begin int64) bool {
	for {
		pages := h.pageList()
		tailPage := len(pages) - 1
		var tailUsed int32
		if tailPage >= 0 {
			tailUsed = pages[tailPage].used.Load()
		}
		switch {
		case int(rid.Page) < tailPage,
			int(rid.Page) == tailPage && rid.Slot < tailUsed:
			s := h.locate(rid)
			if s == nil || s.begin.Load() != Aborted || s.row != nil {
				return false // behind the tail: slot genuinely occupied
			}
			if begin == Aborted {
				return true // placeholder already in place
			}
			s.row = row
			s.begin.Store(begin)
			s.end.Store(0)
			p := pages[rid.Page]
			p.syn.Store(p.syn.Load().extend(row, len(h.def.Columns)))
			if begin > 0 {
				h.live.Add(1)
				h.bump()
			}
			return true
		case int(rid.Page) == tailPage && rid.Slot < int32(len(pages[tailPage].slots)):
			p := pages[tailPage]
			// Fill any gap on this page, then the target slot itself.
			for p.used.Load() < rid.Slot {
				h.install(nil, Aborted)
			}
			h.install(row, begin)
			return true
		case int(rid.Page) == tailPage:
			// Page is full but used < len never reaches here; defensive.
			h.grow()
		default:
			// rid is on a later page: pad the current tail page with aborted
			// placeholders, then grow.
			if tailPage >= 0 {
				p := pages[tailPage]
				for int(p.used.Load()) < len(p.slots) {
					h.install(nil, Aborted)
				}
			}
			h.grow()
		}
	}
}

// locate returns the slot for id, or nil when id is invalid or not yet
// published.
func (h *Heap) locate(id RowID) *slot {
	pages := h.pageList()
	if int(id.Page) >= len(pages) {
		return nil
	}
	p := pages[id.Page]
	if id.Slot >= p.used.Load() {
		return nil
	}
	return &p.slots[id.Slot]
}

// Meta returns the begin/end stamps of the version at id.
func (h *Heap) Meta(id RowID) (begin, end int64, ok bool) {
	s := h.locate(id)
	if s == nil {
		return 0, 0, false
	}
	return s.begin.Load(), s.end.Load(), true
}

// SetBegin commit-stamps an uncommitted insert: the version becomes
// visible to every snapshot at or after ts. This is the committed-insert
// version bump.
func (h *Heap) SetBegin(id RowID, ts int64) bool {
	s := h.locate(id)
	if s == nil || s.begin.Load() >= 0 {
		return false
	}
	s.begin.Store(ts)
	h.live.Add(1)
	h.bump()
	return true
}

// AbortInsert retires an uncommitted insert: the version becomes invisible
// to every snapshot, and the page synopsis is recomputed so the rolled-back
// values stop widening it (keeping post-abort prune behavior identical to a
// database that never ran the transaction). No version bump — rollbacks
// leave the mutation counter exactly where the transaction found it.
func (h *Heap) AbortInsert(id RowID) bool {
	s := h.locate(id)
	if s == nil || s.begin.Load() >= 0 {
		return false
	}
	s.begin.Store(Aborted)
	p := h.pageList()[id.Page]
	p.syn.Store(computeSynopsis(p, len(h.def.Columns)))
	return true
}

// SetEnd stamps the end of the version at id: negative (-txnID) while the
// delete is uncommitted (no bump, no live change — the transaction may
// abort), positive once committed (the committed-delete version bump).
// Committing a delete restamps the same slot from -txnID to the commit
// timestamp.
func (h *Heap) SetEnd(id RowID, e int64) bool {
	s := h.locate(id)
	if s == nil {
		return false
	}
	s.end.Store(e)
	if e > 0 {
		h.live.Add(-1)
		h.bump()
	}
	return true
}

// ClearEnd rolls back an uncommitted delete: the version is the latest
// again. No version bump.
func (h *Heap) ClearEnd(id RowID) bool {
	s := h.locate(id)
	if s == nil {
		return false
	}
	s.end.Store(0)
	return true
}

// Fetch returns the row at id as seen by the latest snapshot, counting one
// page read and one row read. The second return is false if the version is
// not visible or the ID is invalid.
func (h *Heap) Fetch(id RowID, c *Counters) (types.Row, bool) {
	return h.FetchAt(id, SnapLatest, 0, c)
}

// FetchAt returns the row at id as seen from snapshot snap by transaction
// tid, counting one page read and (when visible) one row read.
func (h *Heap) FetchAt(id RowID, snap, tid int64, c *Counters) (types.Row, bool) {
	c.AddPages(1)
	s := h.locate(id)
	if s == nil || !Visible(s.begin.Load(), s.end.Load(), snap, tid) {
		return nil, false
	}
	c.AddRows(1)
	return s.row, true
}

// Get returns the row at id without touching counters (catalog/maintenance
// use). The second return is false for invisible or invalid IDs.
func (h *Heap) Get(id RowID) (types.Row, bool) { return h.Fetch(id, nil) }

// GetAt is Get from an explicit snapshot.
func (h *Heap) GetAt(id RowID, snap, tid int64) (types.Row, bool) {
	s := h.locate(id)
	if s == nil || !Visible(s.begin.Load(), s.end.Load(), snap, tid) {
		return nil, false
	}
	return s.row, true
}

// GetAny returns the row at id if any committed-state reader could still
// see it (not aborted, not committed-ended) — the "dirty read" uniqueness
// and FK checks use so concurrent transactions cannot both claim a key.
func (h *Heap) GetAny(id RowID) (types.Row, bool) {
	s := h.locate(id)
	if s == nil || !visibleAnyCommitted(s.begin.Load(), s.end.Load()) {
		return nil, false
	}
	return s.row, true
}

// Delete physically retires the version at id for every snapshot — the
// legacy non-transactional removal used by maintenance paths (summary
// tables). It reports whether a latest-visible version was removed.
// Transactional deletes use SetEnd so old snapshots keep seeing the row.
func (h *Heap) Delete(id RowID) bool {
	s := h.locate(id)
	if s == nil || !Visible(s.begin.Load(), s.end.Load(), SnapLatest, 0) {
		return false
	}
	s.begin.Store(Aborted)
	h.live.Add(-1)
	h.bump()
	// Physical removal can shrink min/max, so recompute the page synopsis
	// from the surviving versions and republish.
	p := h.pageList()[id.Page]
	p.syn.Store(computeSynopsis(p, len(h.def.Columns)))
	return true
}

// Update replaces the row at id in place — the legacy non-transactional
// write used by maintenance paths and single-threaded replay. It is NOT
// safe against concurrent readers (the row field is rewritten in place);
// callers hold the engine's exclusive lock. Transactional updates are a
// SetEnd of the old version plus an InsertVersion of the new one.
func (h *Heap) Update(id RowID, row types.Row) bool {
	s := h.locate(id)
	if s == nil || !Visible(s.begin.Load(), s.end.Load(), SnapLatest, 0) {
		return false
	}
	s.row = row
	h.bump()
	p := h.pageList()[id.Page]
	p.syn.Store(computeSynopsis(p, len(h.def.Columns)))
	return true
}

// Scan iterates rows visible to the latest snapshot in storage order,
// counting one page read per page touched and one row read per visible row.
// Iteration stops early when fn returns false.
func (h *Heap) Scan(c *Counters, fn func(id RowID, row types.Row) bool) {
	h.ScanRangeAt(0, int(h.PageCount()), SnapLatest, 0, c, fn)
}

// ScanAt is Scan from an explicit snapshot.
func (h *Heap) ScanAt(snap, tid int64, c *Counters, fn func(id RowID, row types.Row) bool) {
	h.ScanRangeAt(0, int(h.PageCount()), snap, tid, c, fn)
}

// ScanRange iterates latest-visible rows of pages [pageLo, pageHi) in
// storage order, with the same per-page and per-row accounting as Scan.
// Parallel scans split the heap into disjoint contiguous page ranges so the
// sum of the partitions' charges equals a full serial Scan exactly.
func (h *Heap) ScanRange(pageLo, pageHi int, c *Counters, fn func(id RowID, row types.Row) bool) {
	h.ScanRangeAt(pageLo, pageHi, SnapLatest, 0, c, fn)
}

// ScanRangeAt is ScanRange from an explicit snapshot.
func (h *Heap) ScanRangeAt(pageLo, pageHi int, snap, tid int64, c *Counters, fn func(id RowID, row types.Row) bool) {
	pages := h.pageList()
	if pageLo < 0 {
		pageLo = 0
	}
	if pageHi > len(pages) {
		pageHi = len(pages)
	}
	for pi := pageLo; pi < pageHi; pi++ {
		p := pages[pi]
		c.AddPages(1)
		n := p.used.Load()
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			if !Visible(s.begin.Load(), s.end.Load(), snap, tid) {
				continue
			}
			c.AddRows(1)
			if !fn(RowID{Page: int32(pi), Slot: si}, s.row) {
				return
			}
		}
	}
}

// ScanDirty iterates every version a committed-state reader could still
// see — committed-live rows plus other transactions' uncommitted inserts
// (see visibleAnyCommitted). Uniqueness and FK checks on unindexed tables
// use it so two in-flight transactions cannot both claim a key. No counter
// charges: constraint checks are not query I/O.
func (h *Heap) ScanDirty(fn func(id RowID, row types.Row) bool) {
	pages := h.pageList()
	for pi, p := range pages {
		n := p.used.Load()
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			if !visibleAnyCommitted(s.begin.Load(), s.end.Load()) {
				continue
			}
			if !fn(RowID{Page: int32(pi), Slot: si}, s.row) {
				return
			}
		}
	}
}

// ScanVersions iterates every version physically present in the heap —
// live, committed-dead, and uncommitted alike; only aborted placeholders
// (which carry no payload) are skipped. Index rebuilds use it: the live
// engine leaves a committed-dead version's index entries in place until
// Vacuum, so a rebuilt index must carry those entries too or a restored
// database's physical state would diverge from a never-restored twin's.
func (h *Heap) ScanVersions(fn func(id RowID, row types.Row) bool) {
	pages := h.pageList()
	for pi, p := range pages {
		n := p.used.Load()
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			if s.begin.Load() == Aborted || s.row == nil {
				continue
			}
			if !fn(RowID{Page: int32(pi), Slot: si}, s.row) {
				return
			}
		}
	}
}

// ScanAll collects every latest-visible row; convenience for miners and
// tests.
func (h *Heap) ScanAll() []types.Row {
	out := make([]types.Row, 0, h.live.Load())
	h.Scan(nil, func(_ RowID, row types.Row) bool {
		out = append(out, row)
		return true
	})
	return out
}

// Truncate removes all rows and pages. Like every other committed mutation
// it bumps the version exactly once, even when the heap was already empty,
// so a logged truncate replays to the same version.
func (h *Heap) Truncate() {
	h.pages.Store(&[]*page{})
	h.live.Store(0)
	h.bump()
}

// Vacuum reclaims versions no active snapshot can see: aborted versions
// and versions whose committed end stamp is at or below horizon (the
// minimum snapshot any reader or transaction still holds). Reclaimed slots
// stay allocated — later RowIDs must not shift — but drop their row
// payload and become aborted placeholders, and every touched page's
// synopsis is recomputed from the survivors. The caller must exclude
// concurrent readers (rows are nilled in place). Returns the number of
// versions reclaimed.
func (h *Heap) Vacuum(horizon int64) int {
	reclaimed := 0
	ncols := len(h.def.Columns)
	for _, p := range h.pageList() {
		touched := false
		n := p.used.Load()
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			b, e := s.begin.Load(), s.end.Load()
			if b == Aborted {
				if s.row != nil {
					s.row = nil
					touched = true
				}
				continue
			}
			if b > 0 && e > 0 && e <= horizon {
				s.begin.Store(Aborted)
				s.row = nil
				reclaimed++
				touched = true
			}
		}
		if touched {
			p.syn.Store(computeSynopsis(p, ncols))
		}
	}
	return reclaimed
}

// SlotData is one slot of a page dump: the row and its tombstone flag.
// Dead slots (versions invisible to the latest snapshot: aborted,
// committed-ended, or placeholders) are part of the physical layout — they
// keep later RowIDs stable — so snapshots must carry them.
type SlotData struct {
	Row  types.Row
	Dead bool
}

// DumpPages returns the heap's exact physical layout: one []SlotData per
// page, in page order, including dead slots. Rows are aliased, not copied;
// the caller must treat them as immutable (engine rows are copy-on-write).
// Checkpoint snapshots and the crash-differential tests use this to compare
// and reconstruct heaps slot-for-slot rather than just live-row-for-row.
// Callers run at a quiescent point (no open write transactions), so every
// slot is either latest-visible or dead.
func (h *Heap) DumpPages() [][]SlotData {
	pages := h.pageList()
	out := make([][]SlotData, len(pages))
	for pi, p := range pages {
		n := p.used.Load()
		ps := make([]SlotData, n)
		for si := int32(0); si < n; si++ {
			s := &p.slots[si]
			dead := !Visible(s.begin.Load(), s.end.Load(), SnapLatest, 0)
			row := s.row
			if dead {
				// Version payloads are not part of the durable state — a
				// vacuumed heap and an unvacuumed one must checkpoint
				// identically.
				row = nil
			}
			ps[si] = SlotData{Row: row, Dead: dead}
		}
		out[pi] = ps
	}
	return out
}

// RebuildHeap reconstructs a heap from a DumpPages layout and a version
// counter: pages and slots land exactly where the dump says (preserving
// RowID stability across dead slots), live accounting is recomputed, and
// every page synopsis is rebuilt and published — the "re-arm zone maps"
// step of crash recovery. Dead slots come back as aborted placeholders;
// live ones as committed-from-the-beginning versions (pre-snapshot history
// does not survive a restart, and no pre-restart snapshot can either).
func RebuildHeap(def *schema.Table, pages [][]SlotData, version int64) *Heap {
	h := NewHeap(def)
	for _, ps := range pages {
		if len(ps) == 0 {
			h.grow()
			continue
		}
		for _, s := range ps {
			if s.Dead {
				h.install(nil, Aborted)
			} else {
				h.install(s.Row, CommittedMin)
			}
		}
		// Dumped pages may be shorter than a full page (the tail page);
		// rebuild must not let the next page's rows slide into the gap, so
		// only the final dumped page may be partial. install() fills pages
		// in order, which preserves this as long as dumps came from
		// DumpPages (pages are full except the last).
	}
	h.version.Store(version)
	// install() counted live rows; recompute synopses is already done per
	// install via extend, but dead placeholders skipped extension, so the
	// published synopses match computeSynopsis over the live slots.
	return h
}
