package storage

import (
	"math/rand"
	"testing"

	"softdb/internal/schema"
	"softdb/internal/types"
)

func testDef() *schema.Table {
	return mustTable("t",
		schema.Column{Name: "a", Type: types.KindInt},
		schema.Column{Name: "b", Type: types.KindString, Nullable: true},
	)
}

func TestInsertFetch(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.NewString("x")})
	var c Counters
	row, ok := h.Fetch(id, &c)
	if !ok || row[0].Int() != 1 {
		t.Fatalf("fetch: %v %v", row, ok)
	}
	if c.PagesRead != 1 || c.RowsRead != 1 {
		t.Errorf("counters: %+v", c)
	}
	if h.RowCount() != 1 {
		t.Error("RowCount")
	}
}

func TestFetchInvalid(t *testing.T) {
	h := NewHeap(testDef())
	if _, ok := h.Fetch(RowID{Page: 5, Slot: 0}, nil); ok {
		t.Error("fetch past end should fail")
	}
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if _, ok := h.Fetch(RowID{Page: id.Page, Slot: 99}, nil); ok {
		t.Error("fetch bad slot should fail")
	}
}

func TestDeleteHidesRow(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if !h.Delete(id) {
		t.Fatal("delete live row")
	}
	if h.Delete(id) {
		t.Error("double delete should report false")
	}
	if _, ok := h.Fetch(id, nil); ok {
		t.Error("deleted row should not fetch")
	}
	if h.RowCount() != 0 {
		t.Error("RowCount after delete")
	}
	count := 0
	h.Scan(nil, func(RowID, types.Row) bool { count++; return true })
	if count != 0 {
		t.Error("scan should skip deleted rows")
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if !h.Update(id, types.Row{types.NewInt(2), types.Null}) {
		t.Fatal("update")
	}
	row, _ := h.Fetch(id, nil)
	if row[0].Int() != 2 {
		t.Error("update did not stick")
	}
	if h.Update(RowID{Page: 9, Slot: 9}, nil) {
		t.Error("update of invalid id should fail")
	}
}

func TestPagePacking(t *testing.T) {
	h := NewHeap(testDef())
	perPage := h.RowsPerPage()
	if perPage < 10 {
		t.Fatalf("expected many small rows per page, got %d", perPage)
	}
	for i := 0; i < perPage+1; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	if h.PageCount() != 2 {
		t.Errorf("rows should spill to a second page: %d pages", h.PageCount())
	}
	var c Counters
	h.Scan(&c, func(RowID, types.Row) bool { return true })
	if c.PagesRead != 2 {
		t.Errorf("full scan should read 2 pages, read %d", c.PagesRead)
	}
	if c.RowsRead != int64(perPage+1) {
		t.Errorf("full scan rows: %d", c.RowsRead)
	}
}

func TestScanEarlyStop(t *testing.T) {
	h := NewHeap(testDef())
	for i := 0; i < 10; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	seen := 0
	h.Scan(nil, func(_ RowID, _ types.Row) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop: saw %d", seen)
	}
}

func TestVersionBumps(t *testing.T) {
	h := NewHeap(testDef())
	v0 := h.Version()
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if h.Version() == v0 {
		t.Error("insert should bump version")
	}
	v1 := h.Version()
	h.Update(id, types.Row{types.NewInt(2), types.Null})
	if h.Version() == v1 {
		t.Error("update should bump version")
	}
	v2 := h.Version()
	h.Delete(id)
	if h.Version() == v2 {
		t.Error("delete should bump version")
	}
}

// The WAL replays N logged mutations onto a snapshot taken at version V and
// must land at exactly V+N, so the bump discipline is load-bearing: exactly
// +1 per successful mutation, no bump on a failed one.
func TestVersionBumpExactlyOnce(t *testing.T) {
	h := NewHeap(testDef())
	v := h.Version()
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if h.Version() != v+1 {
		t.Fatalf("insert: version %d, want %d", h.Version(), v+1)
	}
	if !h.Update(id, types.Row{types.NewInt(2), types.Null}) || h.Version() != v+2 {
		t.Fatalf("update: version %d, want %d", h.Version(), v+2)
	}
	if h.Update(RowID{Page: 7, Slot: 7}, nil) {
		t.Fatal("update of invalid id should fail")
	}
	if h.Version() != v+2 {
		t.Fatalf("failed update must not bump: version %d, want %d", h.Version(), v+2)
	}
	if !h.Delete(id) || h.Version() != v+3 {
		t.Fatalf("delete: version %d, want %d", h.Version(), v+3)
	}
	if h.Delete(id) {
		t.Fatal("double delete should fail")
	}
	if h.Version() != v+3 {
		t.Fatalf("failed delete must not bump: version %d, want %d", h.Version(), v+3)
	}
	h.Truncate()
	if h.Version() != v+4 {
		t.Fatalf("truncate: version %d, want %d", h.Version(), v+4)
	}
}

// DumpPages/RebuildHeap must reproduce the exact physical layout — dead
// slots included — so RowIDs assigned after recovery match the original's.
func TestDumpRebuildRoundTrip(t *testing.T) {
	h := NewHeap(testDef())
	perPage := h.RowsPerPage()
	var ids []RowID
	for i := 0; i < perPage+3; i++ {
		ids = append(ids, h.Insert(types.Row{types.NewInt(int64(i)), types.NewString("v")}))
	}
	h.Delete(ids[1])
	h.Delete(ids[perPage])
	h.Update(ids[2], types.Row{types.NewInt(-2), types.Null})

	r := RebuildHeap(h.Def(), h.DumpPages(), h.Version())
	if r.Version() != h.Version() {
		t.Fatalf("version: %d, want %d", r.Version(), h.Version())
	}
	if r.RowCount() != h.RowCount() || r.PageCount() != h.PageCount() {
		t.Fatalf("shape: rows %d/%d pages %d/%d", r.RowCount(), h.RowCount(), r.PageCount(), h.PageCount())
	}
	// Dead slots stay dead...
	if _, ok := r.Fetch(ids[1], nil); ok {
		t.Fatal("deleted slot resurrected")
	}
	// ...live rows fetch identically...
	for _, id := range []RowID{ids[0], ids[2], ids[perPage+1]} {
		want, _ := h.Fetch(id, nil)
		got, ok := r.Fetch(id, nil)
		if !ok || !got.Equal(want) {
			t.Fatalf("row %v: got %v want %v", id, got, want)
		}
	}
	// ...and the next insert lands at the same RowID in both heaps.
	a := h.Insert(types.Row{types.NewInt(99), types.Null})
	b := r.Insert(types.Row{types.NewInt(99), types.Null})
	if a != b {
		t.Fatalf("post-rebuild insert RowID: %v vs %v", a, b)
	}
	// The rebuilt heap republishes page synopses for zone-map pruning.
	if r.PageCount() > 0 && r.Synopsis(0) == nil {
		t.Fatal("rebuilt heap has no page synopsis")
	}
}

func TestTruncate(t *testing.T) {
	h := NewHeap(testDef())
	for i := 0; i < 100; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	h.Truncate()
	if h.RowCount() != 0 || h.PageCount() != 0 {
		t.Error("truncate should empty the heap")
	}
}

// Property: after a random sequence of inserts and deletes, ScanAll returns
// exactly the live set.
func TestRandomizedLiveSet(t *testing.T) {
	h := NewHeap(testDef())
	r := rand.New(rand.NewSource(11))
	live := map[RowID]int64{}
	var ids []RowID
	for i := 0; i < 5000; i++ {
		if r.Intn(3) > 0 || len(ids) == 0 {
			v := int64(i)
			id := h.Insert(types.Row{types.NewInt(v), types.Null})
			live[id] = v
			ids = append(ids, id)
		} else {
			id := ids[r.Intn(len(ids))]
			if _, ok := live[id]; ok {
				h.Delete(id)
				delete(live, id)
			}
		}
	}
	if h.RowCount() != int64(len(live)) {
		t.Fatalf("RowCount = %d, want %d", h.RowCount(), len(live))
	}
	seen := map[RowID]int64{}
	h.Scan(nil, func(id RowID, row types.Row) bool {
		seen[id] = row[0].Int()
		return true
	})
	if len(seen) != len(live) {
		t.Fatalf("scan saw %d rows, want %d", len(seen), len(live))
	}
	for id, v := range live {
		if seen[id] != v {
			t.Fatalf("row %v: got %d want %d", id, seen[id], v)
		}
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
