package storage

import (
	"math/rand"
	"testing"

	"softdb/internal/schema"
	"softdb/internal/types"
)

func testDef() *schema.Table {
	return mustTable("t",
		schema.Column{Name: "a", Type: types.KindInt},
		schema.Column{Name: "b", Type: types.KindString, Nullable: true},
	)
}

func TestInsertFetch(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.NewString("x")})
	var c Counters
	row, ok := h.Fetch(id, &c)
	if !ok || row[0].Int() != 1 {
		t.Fatalf("fetch: %v %v", row, ok)
	}
	if c.PagesRead != 1 || c.RowsRead != 1 {
		t.Errorf("counters: %+v", c)
	}
	if h.RowCount() != 1 {
		t.Error("RowCount")
	}
}

func TestFetchInvalid(t *testing.T) {
	h := NewHeap(testDef())
	if _, ok := h.Fetch(RowID{Page: 5, Slot: 0}, nil); ok {
		t.Error("fetch past end should fail")
	}
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if _, ok := h.Fetch(RowID{Page: id.Page, Slot: 99}, nil); ok {
		t.Error("fetch bad slot should fail")
	}
}

func TestDeleteHidesRow(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if !h.Delete(id) {
		t.Fatal("delete live row")
	}
	if h.Delete(id) {
		t.Error("double delete should report false")
	}
	if _, ok := h.Fetch(id, nil); ok {
		t.Error("deleted row should not fetch")
	}
	if h.RowCount() != 0 {
		t.Error("RowCount after delete")
	}
	count := 0
	h.Scan(nil, func(RowID, types.Row) bool { count++; return true })
	if count != 0 {
		t.Error("scan should skip deleted rows")
	}
}

func TestUpdateInPlace(t *testing.T) {
	h := NewHeap(testDef())
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if !h.Update(id, types.Row{types.NewInt(2), types.Null}) {
		t.Fatal("update")
	}
	row, _ := h.Fetch(id, nil)
	if row[0].Int() != 2 {
		t.Error("update did not stick")
	}
	if h.Update(RowID{Page: 9, Slot: 9}, nil) {
		t.Error("update of invalid id should fail")
	}
}

func TestPagePacking(t *testing.T) {
	h := NewHeap(testDef())
	perPage := h.RowsPerPage()
	if perPage < 10 {
		t.Fatalf("expected many small rows per page, got %d", perPage)
	}
	for i := 0; i < perPage+1; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	if h.PageCount() != 2 {
		t.Errorf("rows should spill to a second page: %d pages", h.PageCount())
	}
	var c Counters
	h.Scan(&c, func(RowID, types.Row) bool { return true })
	if c.PagesRead != 2 {
		t.Errorf("full scan should read 2 pages, read %d", c.PagesRead)
	}
	if c.RowsRead != int64(perPage+1) {
		t.Errorf("full scan rows: %d", c.RowsRead)
	}
}

func TestScanEarlyStop(t *testing.T) {
	h := NewHeap(testDef())
	for i := 0; i < 10; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	seen := 0
	h.Scan(nil, func(_ RowID, _ types.Row) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop: saw %d", seen)
	}
}

func TestVersionBumps(t *testing.T) {
	h := NewHeap(testDef())
	v0 := h.Version()
	id := h.Insert(types.Row{types.NewInt(1), types.Null})
	if h.Version() == v0 {
		t.Error("insert should bump version")
	}
	v1 := h.Version()
	h.Update(id, types.Row{types.NewInt(2), types.Null})
	if h.Version() == v1 {
		t.Error("update should bump version")
	}
	v2 := h.Version()
	h.Delete(id)
	if h.Version() == v2 {
		t.Error("delete should bump version")
	}
}

func TestTruncate(t *testing.T) {
	h := NewHeap(testDef())
	for i := 0; i < 100; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	h.Truncate()
	if h.RowCount() != 0 || h.PageCount() != 0 {
		t.Error("truncate should empty the heap")
	}
}

// Property: after a random sequence of inserts and deletes, ScanAll returns
// exactly the live set.
func TestRandomizedLiveSet(t *testing.T) {
	h := NewHeap(testDef())
	r := rand.New(rand.NewSource(11))
	live := map[RowID]int64{}
	var ids []RowID
	for i := 0; i < 5000; i++ {
		if r.Intn(3) > 0 || len(ids) == 0 {
			v := int64(i)
			id := h.Insert(types.Row{types.NewInt(v), types.Null})
			live[id] = v
			ids = append(ids, id)
		} else {
			id := ids[r.Intn(len(ids))]
			if _, ok := live[id]; ok {
				h.Delete(id)
				delete(live, id)
			}
		}
	}
	if h.RowCount() != int64(len(live)) {
		t.Fatalf("RowCount = %d, want %d", h.RowCount(), len(live))
	}
	seen := map[RowID]int64{}
	h.Scan(nil, func(id RowID, row types.Row) bool {
		seen[id] = row[0].Int()
		return true
	})
	if len(seen) != len(live) {
		t.Fatalf("scan saw %d rows, want %d", len(seen), len(live))
	}
	for id, v := range live {
		if seen[id] != v {
			t.Fatalf("row %v: got %d want %d", id, seen[id], v)
		}
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
