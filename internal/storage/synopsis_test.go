package storage

import (
	"testing"

	"softdb/internal/types"
)

// synInt reads the int column's synopsis of page pi, failing the test when
// the page or synopsis is missing.
func synInt(t *testing.T, h *Heap, pi int) ColSynopsis {
	t.Helper()
	syn := h.Synopsis(pi)
	if syn == nil {
		t.Fatalf("page %d has no synopsis", pi)
	}
	cs := syn.Col(0)
	if cs == nil {
		t.Fatalf("page %d synopsis misses column 0", pi)
	}
	return *cs
}

func TestSynopsisInsertMaintenance(t *testing.T) {
	h := NewHeap(testDef())
	if h.Synopsis(0) != nil {
		t.Error("empty heap should have no synopsis")
	}
	h.Insert(types.Row{types.NewInt(5), types.NewString("x")})
	h.Insert(types.Row{types.NewInt(2), types.Null})
	h.Insert(types.Row{types.NewInt(9), types.Null})
	cs := synInt(t, h, 0)
	if cs.Min.Int() != 2 || cs.Max.Int() != 9 || cs.Nulls != 0 {
		t.Errorf("col a synopsis: %+v", cs)
	}
	syn := h.Synopsis(0)
	if syn.Rows != 3 {
		t.Errorf("rows: %d", syn.Rows)
	}
	if b := syn.Col(1); b.Nulls != 2 || b.Min.Str() != "x" || b.Max.Str() != "x" {
		t.Errorf("col b synopsis: %+v", b)
	}
	if syn.Col(2) != nil || syn.Col(-1) != nil {
		t.Error("out-of-range column should be nil")
	}
}

func TestSynopsisUpdateDeleteRecompute(t *testing.T) {
	h := NewHeap(testDef())
	var ids []RowID
	for _, v := range []int64{10, 20, 30} {
		ids = append(ids, h.Insert(types.Row{types.NewInt(v), types.Null}))
	}
	// Delete the max: recompute must tighten, not keep the stale bound.
	h.Delete(ids[2])
	if cs := synInt(t, h, 0); cs.Min.Int() != 10 || cs.Max.Int() != 20 {
		t.Errorf("after delete: %+v", cs)
	}
	// Update the min upward: bounds move on both ends.
	h.Update(ids[0], types.Row{types.NewInt(15), types.Null})
	if cs := synInt(t, h, 0); cs.Min.Int() != 15 || cs.Max.Int() != 20 {
		t.Errorf("after update: %+v", cs)
	}
	// Update to NULL: value leaves the range, null count appears.
	h.Update(ids[1], types.Row{types.Null, types.Null})
	if cs := synInt(t, h, 0); cs.Min.Int() != 15 || cs.Max.Int() != 15 || cs.Nulls != 1 {
		t.Errorf("after null update: %+v", cs)
	}
	// Delete everything: an all-dead page publishes Rows == 0 with NULL
	// bounds — the "always skippable" shape.
	h.Delete(ids[0])
	h.Delete(ids[1])
	syn := h.Synopsis(0)
	if syn.Rows != 0 {
		t.Errorf("all-dead page rows: %d", syn.Rows)
	}
	if cs := syn.Col(0); !cs.Min.IsNull() || !cs.Max.IsNull() {
		t.Errorf("all-dead page bounds: %+v", cs)
	}
}

func TestSynopsisPerPageIndependence(t *testing.T) {
	h := NewHeap(testDef())
	per := h.RowsPerPage()
	for i := 0; i < 2*per; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	lo, hi := synInt(t, h, 0), synInt(t, h, 1)
	if lo.Min.Int() != 0 || lo.Max.Int() != int64(per-1) {
		t.Errorf("page 0: %+v", lo)
	}
	if hi.Min.Int() != int64(per) || hi.Max.Int() != int64(2*per-1) {
		t.Errorf("page 1: %+v", hi)
	}
}

func TestScanPagesSkipAndCounters(t *testing.T) {
	h := NewHeap(testDef())
	per := h.RowsPerPage()
	for i := 0; i < 3*per; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	// Skip pages whose max stays below the second page — exactly page 0.
	var c Counters
	var seen int
	h.ScanPages(0, int(h.PageCount()), &c,
		func(syn *PageSynopsis) bool { return syn.Col(0).Max.Int() < int64(per) },
		func(rows []types.Row, syn *PageSynopsis) bool {
			if syn == nil {
				t.Error("scanned page delivered without its synopsis")
			}
			seen += len(rows)
			return true
		})
	if c.PagesSkipped != 1 {
		t.Errorf("skipped: %d", c.PagesSkipped)
	}
	if c.PagesRead != 2 || c.RowsRead != int64(2*per) || seen != 2*per {
		t.Errorf("read accounting: %+v seen=%d", c, seen)
	}

	// A skipped page charges no page or row reads; identity holds.
	if c.PagesRead+c.PagesSkipped != int64(h.PageCount()) {
		t.Errorf("pages read+skipped != total: %+v vs %d", c, h.PageCount())
	}

	// Nil skip reads everything.
	c = Counters{}
	h.ScanPages(0, int(h.PageCount()), &c, nil, func(rows []types.Row, _ *PageSynopsis) bool { return true })
	if c.PagesSkipped != 0 || c.PagesRead != 3 {
		t.Errorf("nil skip: %+v", c)
	}

	// Early stop: fn returning false ends iteration after the first batch.
	c = Counters{}
	calls := 0
	h.ScanPages(0, int(h.PageCount()), &c, nil, func(rows []types.Row, _ *PageSynopsis) bool { calls++; return false })
	if calls != 1 || c.PagesRead != 1 {
		t.Errorf("early stop: calls=%d %+v", calls, c)
	}

	// Out-of-range bounds clamp.
	c = Counters{}
	h.ScanPages(-5, 99, &c, nil, func(rows []types.Row, _ *PageSynopsis) bool { return true })
	if c.PagesRead != 3 {
		t.Errorf("clamped scan: %+v", c)
	}
}
