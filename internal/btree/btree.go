// Package btree implements the in-memory B+tree used for softdb secondary
// indexes. Keys are composite rows (types.Row) ordered lexicographically;
// each key maps to the set of row IDs carrying that key. Node visits are
// charged to a storage.Counters as page reads so index access paths have a
// cost signal comparable to heap scans.
package btree

import (
	"fmt"
	"sort"
	"sync"

	"softdb/internal/storage"
	"softdb/internal/types"
)

// ridLess orders row IDs by (page, slot) — the physical heap order.
func ridLess(a, b storage.RowID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

// degree is the maximum number of children of an interior node. Leaves hold
// up to degree-1 entries. Sized so a node is roughly one simulated page of
// (key, rid) pairs.
const degree = 64

type entry struct {
	key  types.Row
	rids []storage.RowID
}

type node struct {
	entries  []entry // len = number of keys
	children []*node // nil for leaves; else len = len(entries)+1
	next     *node   // leaf chain for range scans
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B+tree multimap from composite keys to row IDs. It latches
// itself: mutators take the internal write latch, traversals the read
// latch, so lock-free MVCC scans can walk an index while a serialized
// writer inserts entries. Traversal callbacks run under the read latch and
// must not re-enter the tree (Go's RWMutex blocks re-entrant readers once
// a writer queues) — collect entries first, then act.
type Tree struct {
	mu     sync.RWMutex
	root   *node
	keys   int   // distinct keys
	size   int   // total (key,rid) pairs
	height int   // number of levels
	vers   int64 // mutation counter
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}, height: 1}
}

// Len returns the number of (key, rid) pairs stored.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// KeyCount returns the number of distinct keys stored.
func (t *Tree) KeyCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.keys
}

// Height returns the tree height in levels.
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Version returns a counter that increases on every mutation.
func (t *Tree) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.vers
}

// search returns the index of the first entry in n with key >= k, and
// whether it is an exact match.
func search(n *node, k types.Row) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entries[mid].key.Compare(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && n.entries[lo].key.Compare(k) == 0 {
		return lo, true
	}
	return lo, false
}

// Insert adds (key, rid). Duplicate keys accumulate rids.
func (t *Tree) Insert(key types.Row, rid storage.RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.vers++
	if len(t.root.entries) >= degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
		t.height++
	}
	t.insertNonFull(t.root, key, rid)
}

func (t *Tree) insertNonFull(n *node, key types.Row, rid storage.RowID) {
	for {
		i, exact := search(n, key)
		if n.leaf() {
			if exact {
				// Duplicate-key rids stay in RowID order: enumeration order
				// is then a function of the tree's logical contents rather
				// than its insertion history, so an index rebuilt from a
				// heap scan (crash recovery, snapshot load) visits rows in
				// exactly the order the live tree did.
				e := &n.entries[i]
				j := sort.Search(len(e.rids), func(j int) bool { return !ridLess(e.rids[j], rid) })
				e.rids = append(e.rids, storage.RowID{})
				copy(e.rids[j+1:], e.rids[j:])
				e.rids[j] = rid
				t.size++
				return
			}
			n.entries = append(n.entries, entry{})
			copy(n.entries[i+1:], n.entries[i:])
			n.entries[i] = entry{key: key.Clone(), rids: []storage.RowID{rid}}
			t.size++
			t.keys++
			return
		}
		// Interior: route right on exact match so duplicates land on the
		// leaf that owns the key.
		if exact {
			i++
		}
		if len(n.children[i].entries) >= degree-1 {
			t.splitChild(n, i)
			// Route right on key >= separator, matching descendToLeaf.
			if n.entries[i].key.Compare(key) <= 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i of parent p.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	mid := len(child.entries) / 2
	right := &node{}
	var sep types.Row
	if child.leaf() {
		// B+tree leaf split: right keeps entries[mid:], separator is the
		// first key on the right; all data stays in leaves.
		right.entries = append(right.entries, child.entries[mid:]...)
		child.entries = child.entries[:mid:mid]
		right.next = child.next
		child.next = right
		sep = right.entries[0].key
	} else {
		// Interior split: middle key moves up.
		sep = child.entries[mid].key
		right.entries = append(right.entries, child.entries[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.entries = child.entries[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	p.entries = append(p.entries, entry{})
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = entry{key: sep}
}

// Delete removes one occurrence of (key, rid). It reports whether the pair
// was found. Structural underflow is tolerated (nodes may go below half
// full); the tree remains correct, which is the contract the engine needs.
func (t *Tree) Delete(key types.Row, rid storage.RowID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf() {
		i, exact := search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	i, exact := search(n, key)
	if !exact {
		return false
	}
	e := &n.entries[i]
	for j, r := range e.rids {
		if r == rid {
			e.rids = append(e.rids[:j], e.rids[j+1:]...)
			t.size--
			t.vers++
			if len(e.rids) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				t.keys--
			}
			return true
		}
	}
	return false
}

// Bound describes one end of a range scan.
type Bound struct {
	Key       types.Row // nil means unbounded
	Inclusive bool
}

// descendToLeaf walks from the root to the leaf that would contain key,
// charging one page read per level. A nil key descends to the leftmost leaf.
func (t *Tree) descendToLeaf(key types.Row, c *storage.Counters) *node {
	n := t.root
	for {
		c.AddPages(1)
		if n.leaf() {
			return n
		}
		if key == nil {
			n = n.children[0]
			continue
		}
		i, exact := search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
}

// AscendRange visits (key, rid) pairs with lo <= key <= hi (subject to the
// bounds' inclusivity) in ascending key order. fn returning false stops the
// scan. Page reads are charged for the root-to-leaf descent and for each
// leaf visited.
func (t *Tree) AscendRange(lo, hi Bound, c *storage.Counters, fn func(key types.Row, rid storage.RowID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.descendToLeaf(lo.Key, c)
	start := 0
	if lo.Key != nil {
		i, exact := search(n, lo.Key)
		start = i
		if exact && !lo.Inclusive {
			start = i + 1
		}
	}
	for n != nil {
		for i := start; i < len(n.entries); i++ {
			e := &n.entries[i]
			if hi.Key != nil {
				ccmp := e.key.Compare(hi.Key)
				if ccmp > 0 || (ccmp == 0 && !hi.Inclusive) {
					return
				}
			}
			for _, rid := range e.rids {
				c.AddRows(1)
				if !fn(e.key, rid) {
					return
				}
			}
		}
		n = n.next
		start = 0
		if n != nil {
			c.AddPages(1)
		}
	}
}

// Ascend visits every pair in ascending order.
func (t *Tree) Ascend(c *storage.Counters, fn func(key types.Row, rid storage.RowID) bool) {
	t.AscendRange(Bound{}, Bound{}, c, fn)
}

// Descend visits every pair in descending key order (rids of a duplicate
// key in descending RowID order). fn returning false stops the walk. Page
// reads are charged per node visited.
func (t *Tree) Descend(c *storage.Counters, fn func(key types.Row, rid storage.RowID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	descendNode(t.root, c, fn)
}

func descendNode(n *node, c *storage.Counters, fn func(key types.Row, rid storage.RowID) bool) bool {
	c.AddPages(1)
	if n.leaf() {
		for i := len(n.entries) - 1; i >= 0; i-- {
			e := &n.entries[i]
			for j := len(e.rids) - 1; j >= 0; j-- {
				c.AddRows(1)
				if !fn(e.key, e.rids[j]) {
					return false
				}
			}
		}
		return true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		if !descendNode(n.children[i], c, fn) {
			return false
		}
	}
	return true
}

// Lookup visits the rids stored under exactly key.
func (t *Tree) Lookup(key types.Row, c *storage.Counters, fn func(rid storage.RowID) bool) {
	t.AscendRange(Bound{Key: key, Inclusive: true}, Bound{Key: key, Inclusive: true}, c,
		func(_ types.Row, rid storage.RowID) bool { return fn(rid) })
}

// Min returns the smallest key, or nil if the tree is empty.
func (t *Tree) Min() types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.entries) == 0 {
		return nil
	}
	return n.entries[0].key
}

// Max returns the largest key, or nil if the tree is empty.
func (t *Tree) Max() types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.entries) == 0 {
		return nil
	}
	return n.entries[len(n.entries)-1].key
}

// Validate checks B+tree invariants (key ordering within and across nodes,
// leaf chain consistency, size bookkeeping). It is used by property tests.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prev types.Row
	count := 0
	keys := 0
	err := validateNode(t.root, nil, nil)
	if err != nil {
		return err
	}
	t.Ascend(nil, func(k types.Row, _ storage.RowID) bool {
		if prev != nil && prev.Compare(k) > 0 {
			err = fmt.Errorf("btree: keys out of order: %v after %v", k, prev)
			return false
		}
		if prev == nil || prev.Compare(k) != 0 {
			keys++
		}
		prev = k.Clone()
		count++
		return true
	})
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size mismatch: counted %d, recorded %d", count, t.size)
	}
	if keys != t.keys {
		return fmt.Errorf("btree: key count mismatch: counted %d, recorded %d", keys, t.keys)
	}
	return nil
}

func validateNode(n *node, lo, hi types.Row) error {
	for i := range n.entries {
		k := n.entries[i].key
		if i > 0 && n.entries[i-1].key.Compare(k) >= 0 {
			return fmt.Errorf("btree: node keys out of order at %d", i)
		}
		if lo != nil && k.Compare(lo) < 0 {
			return fmt.Errorf("btree: key %v below lower bound %v", k, lo)
		}
		if hi != nil && k.Compare(hi) > 0 {
			return fmt.Errorf("btree: key %v above upper bound %v", k, hi)
		}
	}
	if n.leaf() {
		return nil
	}
	if len(n.children) != len(n.entries)+1 {
		return fmt.Errorf("btree: interior node with %d keys has %d children", len(n.entries), len(n.children))
	}
	for i, ch := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.entries[i-1].key
		}
		if i < len(n.entries) {
			chi = n.entries[i].key
		}
		if err := validateNode(ch, clo, chi); err != nil {
			return err
		}
	}
	return nil
}
