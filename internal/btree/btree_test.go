package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"softdb/internal/storage"
	"softdb/internal/types"
)

func intKey(v int64) types.Row { return types.Row{types.NewInt(v)} }

func rid(n int) storage.RowID { return storage.RowID{Page: int32(n / 100), Slot: int32(n % 100)} }

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	if tr.Len() != 1000 || tr.KeyCount() != 1000 {
		t.Fatalf("len=%d keys=%d", tr.Len(), tr.KeyCount())
	}
	found := false
	tr.Lookup(intKey(537), nil, func(r storage.RowID) bool {
		found = r == rid(537)
		return true
	})
	if !found {
		t.Error("lookup 537")
	}
	count := 0
	tr.Lookup(intKey(100000), nil, func(storage.RowID) bool { count++; return true })
	if count != 0 {
		t.Error("lookup of absent key should visit nothing")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(intKey(7), rid(i))
	}
	if tr.Len() != 10 || tr.KeyCount() != 1 {
		t.Fatalf("len=%d keys=%d", tr.Len(), tr.KeyCount())
	}
	var got []int
	tr.Lookup(intKey(7), nil, func(r storage.RowID) bool {
		got = append(got, int(r.Page)*100+int(r.Slot))
		return true
	})
	if len(got) != 10 {
		t.Fatalf("got %d rids", len(got))
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(intKey(int64(i)), rid(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	if tr.Delete(intKey(0), rid(0)) {
		t.Error("double delete should report false")
	}
	if tr.Delete(intKey(10000), rid(0)) {
		t.Error("delete of absent key should report false")
	}
	if tr.Len() != 250 {
		t.Fatalf("len=%d", tr.Len())
	}
	for i := 1; i < 500; i += 2 {
		n := 0
		tr.Lookup(intKey(int64(i)), nil, func(storage.RowID) bool { n++; return true })
		if n != 1 {
			t.Fatalf("key %d: %d hits", i, n)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	collect := func(lo, hi Bound) []int64 {
		var out []int64
		tr.AscendRange(lo, hi, nil, func(k types.Row, _ storage.RowID) bool {
			out = append(out, k[0].Int())
			return true
		})
		return out
	}
	got := collect(Bound{Key: intKey(10), Inclusive: true}, Bound{Key: intKey(13), Inclusive: true})
	want := []int64{10, 11, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("inclusive range: %v", got)
	}
	got = collect(Bound{Key: intKey(10), Inclusive: false}, Bound{Key: intKey(13), Inclusive: false})
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("exclusive range: %v", got)
	}
	got = collect(Bound{}, Bound{Key: intKey(2), Inclusive: true})
	if len(got) != 3 {
		t.Fatalf("unbounded low: %v", got)
	}
	got = collect(Bound{Key: intKey(97), Inclusive: true}, Bound{})
	if len(got) != 3 {
		t.Fatalf("unbounded high: %v", got)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(3))
	perm := r.Perm(5000)
	for _, v := range perm {
		tr.Insert(intKey(int64(v)), rid(v))
	}
	prev := int64(-1)
	n := 0
	tr.Ascend(nil, func(k types.Row, _ storage.RowID) bool {
		v := k[0].Int()
		if v <= prev {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = v
		n++
		return true
	})
	if n != 5000 {
		t.Fatalf("visited %d", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	if tr.Min() != nil || tr.Max() != nil {
		t.Error("empty tree min/max should be nil")
	}
	for _, v := range []int64{42, 7, 99, 13} {
		tr.Insert(intKey(v), rid(int(v)))
	}
	if tr.Min()[0].Int() != 7 || tr.Max()[0].Int() != 99 {
		t.Errorf("min=%v max=%v", tr.Min(), tr.Max())
	}
}

func TestCompositeKeys(t *testing.T) {
	tr := New()
	tr.Insert(types.Row{types.NewString("a"), types.NewInt(2)}, rid(1))
	tr.Insert(types.Row{types.NewString("a"), types.NewInt(1)}, rid(2))
	tr.Insert(types.Row{types.NewString("b"), types.NewInt(0)}, rid(3))
	var keys []string
	tr.Ascend(nil, func(k types.Row, _ storage.RowID) bool {
		keys = append(keys, k.String())
		return true
	})
	if len(keys) != 3 || keys[0] != "('a', 1)" || keys[2] != "('b', 0)" {
		t.Fatalf("composite order: %v", keys)
	}
}

func TestCountersCharged(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	var c storage.Counters
	n := 0
	tr.AscendRange(Bound{Key: intKey(5000), Inclusive: true}, Bound{Key: intKey(5009), Inclusive: true}, &c,
		func(types.Row, storage.RowID) bool { n++; return true })
	if n != 10 {
		t.Fatalf("visited %d", n)
	}
	if c.PagesRead < int64(tr.Height()) {
		t.Errorf("descent should charge at least height pages: %d < %d", c.PagesRead, tr.Height())
	}
	if c.PagesRead > int64(tr.Height())+3 {
		t.Errorf("narrow range should touch few leaves: %d pages", c.PagesRead)
	}
	if c.RowsRead != 10 {
		t.Errorf("rows read: %d", c.RowsRead)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	n := 0
	tr.Ascend(nil, func(types.Row, storage.RowID) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop: %d", n)
	}
}

// Property: tree contents match a reference map under random mixed workload.
func TestRandomizedAgainstReference(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(99))
	type pair struct {
		k int64
		r storage.RowID
	}
	var ref []pair
	for op := 0; op < 20000; op++ {
		if r.Intn(4) > 0 || len(ref) == 0 {
			k := int64(r.Intn(2000))
			id := rid(op)
			tr.Insert(intKey(k), id)
			ref = append(ref, pair{k, id})
		} else {
			i := r.Intn(len(ref))
			p := ref[i]
			if !tr.Delete(intKey(p.k), p.r) {
				t.Fatalf("delete of present pair failed: %d %v", p.k, p.r)
			}
			ref[i] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len=%d want %d", tr.Len(), len(ref))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full-order check.
	sort.Slice(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
	i := 0
	tr.Ascend(nil, func(k types.Row, _ storage.RowID) bool {
		if k[0].Int() != ref[i].k {
			t.Fatalf("position %d: got %d want %d", i, k[0].Int(), ref[i].k)
		}
		i++
		return true
	})
	if i != len(ref) {
		t.Fatalf("visited %d of %d", i, len(ref))
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(intKey(int64(i%100000)), rid(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Insert(intKey(int64(i)), rid(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(intKey(int64(i%100000)), nil, func(storage.RowID) bool { return true })
	}
}

// Property (testing/quick): a tree built from any batch of (key, rid)
// pairs contains exactly those pairs, in order, and validates.
func TestQuickBuildMatchesReference(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New()
		counts := map[int64]int{}
		for i, k := range keys {
			tr.Insert(intKey(int64(k)), rid(i))
			counts[int64(k)]++
		}
		if tr.Len() != len(keys) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		seen := map[int64]int{}
		prev := int64(-1 << 62)
		ok := true
		tr.Ascend(nil, func(k types.Row, _ storage.RowID) bool {
			v := k[0].Int()
			if v < prev {
				ok = false
				return false
			}
			prev = v
			seen[v]++
			return true
		})
		if !ok || len(seen) != len(counts) {
			return false
		}
		for k, n := range counts {
			if seen[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Duplicate-key rids enumerate in RowID order regardless of insertion
// order, so an index rebuilt from a heap scan (crash recovery) visits rows
// exactly as the live tree did.
func TestDuplicateKeyRIDOrderCanonical(t *testing.T) {
	shuffled, sorted := New(), New()
	r := rand.New(rand.NewSource(5))
	perm := r.Perm(40)
	for _, p := range perm {
		shuffled.Insert(intKey(7), rid(p))
	}
	for i := 0; i < 40; i++ {
		sorted.Insert(intKey(7), rid(i))
	}
	var a, b []storage.RowID
	shuffled.Ascend(nil, func(_ types.Row, id storage.RowID) bool { a = append(a, id); return true })
	sorted.Ascend(nil, func(_ types.Row, id storage.RowID) bool { b = append(b, id); return true })
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %v vs %v — duplicate order must not depend on insertion history", i, a[i], b[i])
		}
		if i > 0 && !ridLess(a[i-1], a[i]) {
			t.Fatalf("entry %d out of rid order: %v then %v", i, a[i-1], a[i])
		}
	}
}
