// Package vec defines softdb's columnar batch representation: a borrowed
// window of rows plus a selection vector and lazily-extracted per-column
// typed slices (int64/float64/string with a null mask). Batches are the
// currency of the vectorized BatchOperator pipeline — scans produce one
// batch per heap page, filters shrink the selection vector with tight-loop
// kernels, and joins/aggregations consume the typed columns without
// re-walking expression trees per row.
//
// Ownership contract (see DESIGN.md §16): a Batch and its Rows slice are
// borrowed — valid only until the emit callback returns — unless Owned is
// set, in which case the row values (though not the Rows slice header) may
// be retained by the consumer without cloning. Extracted columns always
// cover the full Rows window so selection-vector indexes apply directly.
package vec

import "softdb/internal/types"

// Class is the storage class of an extracted column. Int/Date/Bool datums
// share the integer image; floats and strings get their own slices.
type Class uint8

const (
	// ClassNone marks a column that has not been extracted (or failed).
	ClassNone Class = iota
	// ClassInt covers INT, DATE and BOOL datums via their int64 image.
	ClassInt
	// ClassFloat covers FLOAT datums.
	ClassFloat
	// ClassStr covers STRING datums.
	ClassStr
)

// ClassOf maps a static datum kind to its extraction class.
func ClassOf(k types.Kind) Class {
	switch k {
	case types.KindInt, types.KindDate, types.KindBool:
		return ClassInt
	case types.KindFloat:
		return ClassFloat
	case types.KindString:
		return ClassStr
	default:
		return ClassNone
	}
}

// Col is one extracted column: exactly one of Ints/Floats/Strs is populated
// (per Class) over the full row window, with Nulls marking NULL positions.
type Col struct {
	Class  Class
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool

	extracted bool
	ok        bool
}

// Batch is one window of rows flowing through the batched pipeline.
type Batch struct {
	// Rows is the row-major data, borrowed from the producer unless Owned.
	Rows []types.Row
	// Sel selects the live subset of Rows in ascending order; nil means
	// every row is live.
	Sel []int32
	// Owned reports that the row values are freshly allocated by the
	// producer and will never be reused: consumers may retain them without
	// cloning. The Rows and Sel slice headers themselves remain borrowed.
	Owned bool

	cols []Col
}

// Reset points the batch at a new row window, clearing the selection vector
// and invalidating extracted columns while keeping their capacity.
func (b *Batch) Reset(rows []types.Row) {
	b.Rows = rows
	b.Sel = nil
	b.Owned = false
	for i := range b.cols {
		b.cols[i].extracted = false
		b.cols[i].ok = false
	}
}

// Len reports the number of selected rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// Index returns the i-th selected row's position in Rows.
func (b *Batch) Index(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Row returns the i-th selected row.
func (b *Batch) Row(i int) types.Row { return b.Rows[b.Index(i)] }

// Truncate shortens the selection to the first n rows.
func (b *Batch) Truncate(n int) {
	if n >= b.Len() {
		return
	}
	if b.Sel == nil {
		b.Rows = b.Rows[:n]
		return
	}
	b.Sel = b.Sel[:n]
}

// Col extracts (on first use, cached per Reset window) column ord as the
// given class. It returns nil when the ordinal is out of range, the class
// is ClassNone, or any non-null datum in the window does not belong to the
// class — callers must fall back to row-at-a-time evaluation then.
func (b *Batch) Col(ord int, want Class) *Col {
	if want == ClassNone || ord < 0 {
		return nil
	}
	if ord >= len(b.cols) {
		grown := make([]Col, ord+1)
		copy(grown, b.cols)
		b.cols = grown
	}
	c := &b.cols[ord]
	if c.extracted && c.Class == want {
		if !c.ok {
			return nil
		}
		return c
	}
	c.extracted = true
	c.Class = want
	c.ok = extract(c, b.Rows, ord, want)
	if !c.ok {
		return nil
	}
	return c
}

// extract fills c from rows[*][ord], validating every non-null datum is of
// the wanted class.
func extract(c *Col, rows []types.Row, ord int, want Class) bool {
	n := len(rows)
	if cap(c.Nulls) < n {
		c.Nulls = make([]bool, n)
	} else {
		c.Nulls = c.Nulls[:n]
		clear(c.Nulls)
	}
	switch want {
	case ClassInt:
		if cap(c.Ints) < n {
			c.Ints = make([]int64, n)
		} else {
			c.Ints = c.Ints[:n]
		}
		for i, row := range rows {
			if ord >= len(row) {
				return false
			}
			d := row[ord]
			switch d.Kind() {
			case types.KindNull:
				c.Nulls[i] = true
				c.Ints[i] = 0
			case types.KindInt, types.KindDate, types.KindBool:
				c.Ints[i] = d.IntImage()
			default:
				return false
			}
		}
	case ClassFloat:
		if cap(c.Floats) < n {
			c.Floats = make([]float64, n)
		} else {
			c.Floats = c.Floats[:n]
		}
		for i, row := range rows {
			if ord >= len(row) {
				return false
			}
			d := row[ord]
			switch d.Kind() {
			case types.KindNull:
				c.Nulls[i] = true
				c.Floats[i] = 0
			case types.KindFloat:
				c.Floats[i] = d.Float()
			default:
				return false
			}
		}
	case ClassStr:
		if cap(c.Strs) < n {
			c.Strs = make([]string, n)
		} else {
			c.Strs = c.Strs[:n]
		}
		for i, row := range rows {
			if ord >= len(row) {
				return false
			}
			d := row[ord]
			switch d.Kind() {
			case types.KindNull:
				c.Nulls[i] = true
				c.Strs[i] = ""
			case types.KindString:
				c.Strs[i] = d.Str()
			default:
				return false
			}
		}
	default:
		return false
	}
	return true
}

// IdentitySel fills (growing as needed) buf with 0..n-1 and returns it —
// the starting selection vector for a fresh batch.
func IdentitySel(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}
