package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"softdb/internal/exec"
	"softdb/internal/fault"
)

// TestSessionSettingsLayering: unset session knobs follow the database
// default, overrides stick, and "default" clears them again.
func TestSessionSettingsLayering(t *testing.T) {
	db := Open()
	db.Parallel = 3
	db.MemBudget = 1024
	s := db.NewSession("conn-1")

	st := s.Settings()
	if st.Parallel != 3 || st.MemBudget != 1024 || st.NoPrune || st.NoBatch {
		t.Fatalf("fresh session should inherit defaults: %+v", st)
	}
	for _, kv := range [][2]string{
		{"parallel", "1"}, {"prune", "off"}, {"batch", "off"},
		{"mem_budget", "2048"}, {"timeout", "250ms"},
	} {
		if err := s.Set(kv[0], kv[1]); err != nil {
			t.Fatalf("Set(%s, %s): %v", kv[0], kv[1], err)
		}
	}
	st = s.Settings()
	if st.Parallel != 1 || !st.NoPrune || !st.NoBatch || st.MemBudget != 2048 || st.StmtTimeout != 250*time.Millisecond {
		t.Fatalf("overrides not applied: %+v", st)
	}
	// The database default still reaches knobs the session resets.
	if err := s.Set("parallel", "default"); err != nil {
		t.Fatal(err)
	}
	if got := s.Settings().Parallel; got != 3 {
		t.Fatalf("reset parallel should follow the default again: %d", got)
	}
	desc := strings.Join(s.Describe(), "\n")
	if !strings.Contains(desc, "mem_budget = 2048 (session)") || !strings.Contains(desc, "parallel = 3\n") {
		t.Fatalf("Describe should mark overrides:\n%s", desc)
	}

	// Bad input errors without mutating.
	for _, kv := range [][2]string{
		{"parallel", "-1"}, {"parallel", "x"}, {"prune", "maybe"},
		{"mem_budget", "-5"}, {"timeout", "later"}, {"no_such", "1"},
	} {
		if err := s.Set(kv[0], kv[1]); err == nil {
			t.Errorf("Set(%s, %s) should fail", kv[0], kv[1])
		}
	}
}

// TestSessionPlanCacheIsolation: concurrent sessions with different
// plan-shaping knob sets (parallel/prune/batch) must not share plan-cache
// entries, while lifecycle knobs (mem_budget, timeout) must not fragment
// the cache. Extends the PR4 planCacheKey rule to session-layered
// settings.
func TestSessionPlanCacheIsolation(t *testing.T) {
	db := pruneDB(t, 4000, false)
	db.Parallel = 1
	db.ParallelMinRows = 1

	const q = "SELECT a, b FROM t WHERE a >= 100 AND a <= 140"

	serial := db.NewSession("serial")
	par := db.NewSession("par")
	if err := par.Set("parallel", "4"); err != nil {
		t.Fatal(err)
	}
	noPrune := db.NewSession("noprune")
	if err := noPrune.Set("prune", "off"); err != nil {
		t.Fatal(err)
	}
	noBatch := db.NewSession("nobatch")
	if err := noBatch.Set("batch", "off"); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rSerial, err := serial.ExecCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rPar, err := par.ExecCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rPar.CacheHit {
		t.Fatal("parallel session must not hit the serial session's cache entry")
	}
	if rSerial.Degree != 1 || rPar.Degree <= 1 {
		t.Fatalf("degrees: serial %d, parallel %d", rSerial.Degree, rPar.Degree)
	}
	rNoPrune, err := noPrune.ExecCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rNoPrune.CacheHit {
		t.Fatal("no-prune session must not hit a pruning session's entry")
	}
	if io := rNoPrune.Ctx.IO.Load(); io.PagesSkipped != 0 {
		t.Fatalf("prune=off session skipped pages: %+v", io)
	}
	if io := rSerial.Ctx.IO.Load(); io.PagesSkipped == 0 {
		t.Fatalf("default session should prune: %+v", io)
	}
	rNoBatch, err := noBatch.ExecCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rNoBatch.CacheHit {
		t.Fatal("no-batch session must not hit a batched session's entry")
	}
	if got := db.CachedPlanCount(); got != 4 {
		t.Fatalf("4 knob sets should compile 4 entries, got %d", got)
	}
	// All four agree on the answer.
	for _, r := range []*Result{rPar, rNoPrune, rNoBatch} {
		if len(r.Rows) != len(rSerial.Rows) {
			t.Fatalf("row counts diverged across sessions: %d vs %d", len(r.Rows), len(rSerial.Rows))
		}
	}

	// Lifecycle knobs do NOT fragment: a session differing only in budget
	// and timeout hits the serial session's entry.
	budget := db.NewSession("budget")
	if err := budget.Set("mem_budget", "1048576"); err != nil {
		t.Fatal(err)
	}
	if err := budget.Set("timeout", "30s"); err != nil {
		t.Fatal(err)
	}
	rBudget, err := budget.ExecCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !rBudget.CacheHit {
		t.Fatal("lifecycle-only overrides must share the plan-cache entry")
	}
	if got := db.CachedPlanCount(); got != 4 {
		t.Fatalf("lifecycle knobs fragmented the cache: %d entries", got)
	}

	// Re-execution from each session hits its own entry.
	for _, s := range []*Session{serial, par, noPrune, noBatch} {
		r, err := s.ExecCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !r.CacheHit {
			t.Errorf("session %s should re-hit its own entry", s.Label())
		}
	}
}

// TestSessionConcurrentKnobs: the knob matrix above run from concurrent
// goroutines (the -race proof that session-layered planning is safe and
// that every session keeps observing its own knobs).
func TestSessionConcurrentKnobs(t *testing.T) {
	db := pruneDB(t, 4000, false)
	db.Parallel = 1
	db.ParallelMinRows = 1
	const q = "SELECT a, b FROM t WHERE a >= 100 AND a <= 140"

	type check func(t *testing.T, r *Result)
	mk := func(label string, set [][2]string) *Session {
		s := db.NewSession(label)
		for _, kv := range set {
			if err := s.Set(kv[0], kv[1]); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	cases := []struct {
		s     *Session
		check check
	}{
		{mk("w-serial", nil), func(t *testing.T, r *Result) {
			if r.Degree != 1 {
				t.Errorf("serial session got degree %d", r.Degree)
			}
		}},
		{mk("w-par", [][2]string{{"parallel", "4"}}), func(t *testing.T, r *Result) {
			if r.Degree <= 1 {
				t.Errorf("parallel session got degree %d", r.Degree)
			}
		}},
		{mk("w-noprune", [][2]string{{"prune", "off"}}), func(t *testing.T, r *Result) {
			if io := r.Ctx.IO.Load(); io.PagesSkipped != 0 {
				t.Errorf("no-prune session skipped %d pages", io.PagesSkipped)
			}
		}},
		{mk("w-nobatch", [][2]string{{"batch", "off"}}), nil},
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	rowCounts := map[int]bool{}
	for _, c := range cases {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					r, err := c.s.ExecCtx(context.Background(), q)
					if err != nil {
						t.Errorf("session %s: %v", c.s.Label(), err)
						return
					}
					if c.check != nil {
						c.check(t, r)
					}
					mu.Lock()
					rowCounts[len(r.Rows)] = true
					mu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	if len(rowCounts) != 1 {
		t.Fatalf("sessions disagreed on the answer: row counts %v", rowCounts)
	}
	if got := db.CachedPlanCount(); got != 4 {
		t.Fatalf("expected exactly 4 cache entries, got %d", got)
	}
}

// TestSessionTimeoutAndTrace: a session's timeout override aborts its own
// statement with a typed timeout while other sessions run unaffected, and
// the session label lands in the query trace.
func TestSessionTimeoutAndTrace(t *testing.T) {
	db := pruneDB(t, 2000, false)
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: 2 * time.Millisecond})
	db.NoPrune = true // make the scan touch every (stalled) page

	slow := db.NewSession("conn-slow")
	if err := slow.Set("timeout", "10ms"); err != nil {
		t.Fatal(err)
	}
	_, err := slow.ExecCtx(context.Background(), "SELECT COUNT(*) AS n FROM t WHERE c >= 0")
	qe, ok := exec.AsQueryError(err)
	if !ok || qe.Kind != exec.KindTimeout {
		t.Fatalf("session timeout should produce a typed timeout, got %v", err)
	}

	db.Fault = nil
	fine := db.NewSession("conn-fine")
	if _, err := fine.ExecCtx(context.Background(), "SELECT COUNT(*) AS n FROM t WHERE c >= 0"); err != nil {
		t.Fatalf("default session should be unaffected: %v", err)
	}

	var found bool
	for _, tr := range db.QueryLog().Recent(8) {
		if tr.Session == "conn-slow" {
			found = true
			if tr.State != string(exec.KindTimeout) {
				t.Errorf("trace state for timed-out session statement: %s", tr.State)
			}
			if !strings.Contains(tr.Render(), "session=conn-slow") {
				t.Errorf("trace render missing session tag: %s", tr.Render())
			}
		}
	}
	if !found {
		t.Error("no trace carried the session label")
	}
}
