package engine

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// purchaseDB builds the paper's running example: a soft ship-window check
// over an indexed order_date, so predicate introduction fires and EXPLAIN
// output names the constraint.
func purchaseDB(t *testing.T, n int) *Database {
	t.Helper()
	db := newDB(t, `
		CREATE TABLE purchase (
			id INT PRIMARY KEY,
			order_date DATE NOT NULL,
			ship_date DATE,
			CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
		);
		CREATE INDEX idx_order ON purchase (order_date);
	`)
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+(i%21)))
	}
	db.MustExec("ANALYZE purchase")
	return db
}

func planLines(t *testing.T, db *Database, q string) string {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].Str())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExplainAnalyzeOutput(t *testing.T) {
	db := purchaseDB(t, 600)
	out := planLines(t, db, "EXPLAIN ANALYZE SELECT id FROM purchase WHERE ship_date = DATE '1999-03-15'")
	for _, want := range []string{
		"(actual rows=",          // per-node measured figures
		"(est rows=",             // per-node optimizer estimates
		"predicate-introduction", // the rewrite consulted the soft check...
		"ship_window",            // ...and the output names the constraint
		"eff-conf=",              // with its effective confidence
		"applied",                // and applied/rejected status
		"estimated rows:",
		"actual rows:",
		"parallel degree: 1",
		"plan cache: miss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainShowsDegreeAndCacheStatus(t *testing.T) {
	db := purchaseDB(t, 300)
	sel := "SELECT id FROM purchase WHERE ship_date = DATE '1999-02-15'"

	out := planLines(t, db, "EXPLAIN "+sel)
	if !strings.Contains(out, "plan cache: miss") {
		t.Errorf("EXPLAIN before running should report a cache miss:\n%s", out)
	}
	if !strings.Contains(out, "parallel degree: 1") {
		t.Errorf("EXPLAIN should report the chosen degree:\n%s", out)
	}

	// Running the SELECT populates the cache; EXPLAIN then reports a hit
	// for the equivalent statement without disturbing the entry.
	db.MustExec(sel)
	before := db.CacheStats()
	out = planLines(t, db, "EXPLAIN "+sel)
	if !strings.Contains(out, "plan cache: hit") {
		t.Errorf("EXPLAIN after running should report a cache hit:\n%s", out)
	}
	if after := db.CacheStats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("EXPLAIN peek must not move cache stats: %+v -> %+v", before, after)
	}
}

func TestExplainParallelDegree(t *testing.T) {
	db := purchaseDB(t, 2000)
	db.Parallel = 4
	db.ParallelMinRows = 1
	out := planLines(t, db, "EXPLAIN SELECT id FROM purchase WHERE id >= 0")
	if !strings.Contains(out, "parallel degree: 4") {
		t.Errorf("EXPLAIN should report the parallel degree:\n%s", out)
	}
}

func TestQueryMetrics(t *testing.T) {
	db := purchaseDB(t, 600)
	m := db.Metrics()
	base := m.Counter(mQueries).Value()

	sel := "SELECT id FROM purchase WHERE ship_date = DATE '1999-03-15'"
	db.MustExec(sel) // miss
	db.MustExec(sel) // hit
	if got := m.Counter(mQueries).Value() - base; got != 2 {
		t.Errorf("queries counter advanced by %d, want 2", got)
	}
	if got := m.Counter(mCacheHits).Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if m.Counter(mCacheMisses).Value() == 0 {
		t.Error("cache misses stayed zero")
	}
	if got := m.Counter(mRewriteFires, "kind", "predicate-introduction").Value(); got == 0 {
		t.Error("predicate-introduction fire not counted")
	}
	if got := m.Gauge(mCacheEntries).Value(); got == 0 {
		t.Error("plan-cache entries gauge stayed zero")
	}
	if h := m.Histogram(mQueryDuration, nil); h.Count() < 2 {
		t.Errorf("duration histogram has %d observations, want >= 2", h.Count())
	}

	// A query that fails before execution still errors cleanly and leaves
	// the execution counters untouched.
	if _, err := db.Exec("SELECT nope FROM purchase"); err == nil {
		t.Fatal("expected error")
	}
	if got := m.Counter(mQueries).Value() - base; got != 2 {
		t.Errorf("plan-time failure should not count as an executed query: %d", got)
	}
}

func TestParallelDegreeMetric(t *testing.T) {
	db := purchaseDB(t, 2000)
	db.Parallel = 4
	db.ParallelMinRows = 1
	db.MustExec("SELECT id FROM purchase WHERE id >= 0")
	if got := db.Metrics().Counter(mParallelQs, "degree", "4").Value(); got != 1 {
		t.Errorf("parallel queries{degree=4} = %d, want 1", got)
	}
}

func TestTracingProducesSpans(t *testing.T) {
	db := purchaseDB(t, 300)
	db.SetTracing(true)
	db.MustExec("SELECT id FROM purchase WHERE ship_date = DATE '1999-02-15'")
	recent := db.QueryLog().Recent(1)
	if len(recent) != 1 {
		t.Fatalf("query log has %d entries, want 1", len(recent))
	}
	tr := recent[0]
	if tr.Root == nil {
		t.Fatal("trace has no span tree with tracing on")
	}
	text := tr.Render()
	if !strings.Contains(text, "actual rows=") || !strings.Contains(text, "est rows=") {
		t.Errorf("trace render missing actual/est figures:\n%s", text)
	}

	db.SetTracing(false)
	db.MustExec("SELECT id FROM purchase WHERE ship_date = DATE '1999-02-16'")
	if tr := db.QueryLog().Recent(1)[0]; tr.Root != nil {
		t.Error("span tree collected with tracing off")
	}
}

func TestDebugHandlerServesMetricsAndQueries(t *testing.T) {
	db := purchaseDB(t, 300)
	db.SetTracing(true)
	db.MustExec("SELECT id FROM purchase WHERE ship_date = DATE '1999-02-15'")

	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, name := range []string{
		mQueries, mCacheHits, mCacheMisses, mRewriteFires,
		mSSCRefreshes, mQueryDuration, mASCViolations,
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	queries := get("/debug/queries")
	if !strings.Contains(queries, "purchase") {
		t.Errorf("/debug/queries does not show the recent query:\n%s", queries)
	}
}

func TestSlowQueryStructuredLog(t *testing.T) {
	db := purchaseDB(t, 300)
	var records []slog.Record
	db.SetLogger(slog.New(captureHandler{records: &records}))
	db.SetSlowQueryThreshold(time.Nanosecond)
	db.MustExec("SELECT id FROM purchase WHERE ship_date = DATE '1999-02-15'")

	found := false
	for _, r := range records {
		if r.Message != "query" {
			continue
		}
		found = true
		if r.Level < slog.LevelWarn {
			t.Errorf("slow query logged at %v, want >= WARN", r.Level)
		}
		var slow, sawSQL bool
		r.Attrs(func(a slog.Attr) bool {
			switch a.Key {
			case "slow":
				slow = a.Value.Bool()
			case "sql":
				sawSQL = a.Value.String() != ""
			}
			return true
		})
		if !slow || !sawSQL {
			t.Errorf("slow query record missing attrs: slow=%v sql=%v", slow, sawSQL)
		}
	}
	if !found {
		t.Fatal("no structured query record emitted")
	}
	if db.Metrics().Counter(mSlowQueries).Value() == 0 {
		t.Error("slow-queries counter stayed zero")
	}
}

// captureHandler collects slog records for assertions.
type captureHandler struct{ records *[]slog.Record }

func (h captureHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h captureHandler) Handle(_ context.Context, r slog.Record) error {
	*h.records = append(*h.records, r)
	return nil
}
func (h captureHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h captureHandler) WithGroup(string) slog.Handler      { return h }

func TestWriteMetricsCounters(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT, CONSTRAINT ab CHECK (a <= b) SOFT);
		INSERT INTO t VALUES (1, 2)`)
	db.MustExec("INSERT INTO t VALUES (9, 1)") // violates the ASC
	if got := db.Metrics().Counter(mASCViolations).Value(); got != 1 {
		t.Errorf("ASC violations = %d, want 1", got)
	}
}
