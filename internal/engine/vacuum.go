package engine

import (
	"sync"
	"time"
)

// Metric families the background vacuum exports.
const (
	mVacuumRuns      = "softdb_vacuum_runs_total"
	mVacuumReclaimed = "softdb_vacuum_versions_reclaimed_total"
)

// StartVacuum runs Vacuum in a background goroutine every interval,
// skipping ticks on which the transaction manager's horizon has not
// advanced since the last pass (nothing new can be reclaimable, so the
// exclusive lock is not worth taking). It returns a stop function that
// halts the goroutine and waits for an in-flight pass to finish; calling
// stop more than once is safe.
//
// This turns Vacuum from explicit-only maintenance into a steady-state
// property: under a sustained update load the dead-version count stays
// bounded by what accumulates within one interval plus whatever the oldest
// pinned snapshot holds alive (see TestBackgroundVacuumBoundsDeadVersions).
func (db *Database) StartVacuum(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	r := db.Metrics()
	r.Describe(mVacuumRuns, "counter", "Background vacuum passes executed.")
	r.Describe(mVacuumReclaimed, "counter", "Row versions reclaimed by background vacuum.")
	runs := r.Counter(mVacuumRuns)
	reclaimed := r.Counter(mVacuumReclaimed)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		// Start below any real horizon so the first tick always vacuums:
		// aborted slots are reclaimable regardless of horizon movement.
		lastHorizon := int64(-1)
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			h := db.txnMgr.Horizon()
			if h == lastHorizon {
				continue
			}
			lastHorizon = h
			n := db.Vacuum()
			runs.Inc()
			reclaimed.Add(int64(n))
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
