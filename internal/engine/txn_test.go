package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wal"
)

// The transaction differential suite: MVCC snapshot isolation, explicit
// BEGIN/COMMIT/ROLLBACK, first-updater-wins conflicts, and the
// commit-scoped soft-characterization hooks — serial and under -race.

// sexec runs one statement on a session, failing the test on error.
func sexec(t *testing.T, sess *Session, q string) *Result {
	t.Helper()
	res, err := sess.ExecCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("session %s: %s: %v", sess.Label(), q, err)
	}
	return res
}

// scount reads COUNT(*) through a session (inside its transaction if one
// is open).
func scount(t *testing.T, sess *Session, table string) int64 {
	t.Helper()
	res := sexec(t, sess, "SELECT COUNT(*) AS n FROM "+table)
	return res.Rows[0][0].Int()
}

func txnDB(t *testing.T) *Database {
	t.Helper()
	db := Open()
	db.MustExec("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", i, 100*i))
	}
	return db
}

// A transaction reads from the snapshot taken at BEGIN: concurrent
// committed writes stay invisible until its own COMMIT, and its own
// uncommitted writes are visible to itself only.
func TestTxnSnapshotStability(t *testing.T) {
	db := txnDB(t)
	a := db.NewSession("a")
	defer a.Close()

	sexec(t, a, "BEGIN")
	if got := scount(t, a, "acct"); got != 10 {
		t.Fatalf("baseline count %d want 10", got)
	}
	db.MustExec("INSERT INTO acct VALUES (50, 1)") // commits outside the txn
	if got := scount(t, a, "acct"); got != 10 {
		t.Errorf("snapshot moved: count %d want 10 after concurrent commit", got)
	}
	sexec(t, a, "INSERT INTO acct VALUES (60, 2)")
	if got := scount(t, a, "acct"); got != 11 {
		t.Errorf("own write invisible: count %d want 11", got)
	}
	if n, _ := db.Query("SELECT id FROM acct WHERE id = 60"); len(n) != 0 {
		t.Error("uncommitted insert leaked to another snapshot")
	}
	sexec(t, a, "COMMIT")
	if got := scount(t, a, "acct"); got != 12 {
		t.Errorf("post-commit count %d want 12", got)
	}
}

// First-updater-wins: the second transaction to touch a row gets a typed
// conflict, immediately, whether it is explicit or implicit — and retrying
// after the winner commits still conflicts, because the loser's snapshot
// predates the winner's commit.
func TestFirstUpdaterWinsConflict(t *testing.T) {
	db := txnDB(t)
	a, b := db.NewSession("a"), db.NewSession("b")
	defer a.Close()
	defer b.Close()

	sexec(t, a, "BEGIN")
	sexec(t, b, "BEGIN")
	sexec(t, a, "UPDATE acct SET bal = bal + 1 WHERE id = 3")

	wantConflict := func(label string, err error) {
		t.Helper()
		qe, ok := exec.AsQueryError(err)
		if !ok || qe.Kind != exec.KindConflict {
			t.Fatalf("%s: want KindConflict QueryError, got %v", label, err)
		}
	}
	_, err := b.ExecCtx(context.Background(), "UPDATE acct SET bal = bal + 7 WHERE id = 3")
	wantConflict("explicit loser", err)
	_, err = db.Exec("DELETE FROM acct WHERE id = 3")
	wantConflict("implicit loser", err)

	sexec(t, a, "COMMIT")
	// B's snapshot predates A's commit; its update still loses.
	_, err = b.ExecCtx(context.Background(), "UPDATE acct SET bal = bal + 7 WHERE id = 3")
	wantConflict("stale-snapshot loser", err)
	sexec(t, b, "ROLLBACK")

	// A's update, and only A's, survived.
	rows, err := db.Query("SELECT bal FROM acct WHERE id = 3")
	if err != nil || len(rows) != 1 || rows[0][0].Int() != 301 {
		t.Fatalf("winner's write lost: rows=%v err=%v", rows, err)
	}
}

// A failed statement inside an explicit transaction undoes only itself;
// the transaction stays open and commits its earlier work.
func TestStatementAtomicityInsideTxn(t *testing.T) {
	db := txnDB(t)
	a := db.NewSession("a")
	defer a.Close()

	sexec(t, a, "BEGIN")
	sexec(t, a, "INSERT INTO acct VALUES (20, 1)")
	// Second row of the statement violates the PK; the whole statement —
	// including its first row — must vanish.
	if _, err := a.ExecCtx(context.Background(), "INSERT INTO acct VALUES (21, 1), (20, 2)"); err == nil {
		t.Fatal("duplicate-PK statement succeeded")
	}
	if got := scount(t, a, "acct"); got != 11 {
		t.Errorf("count %d want 11 (statement not atomically undone)", got)
	}
	sexec(t, a, "COMMIT")
	rows, _ := db.Query("SELECT id FROM acct WHERE id >= 20")
	if len(rows) != 1 || rows[0][0].Int() != 20 {
		t.Errorf("committed state wrong: %v", rows)
	}
}

// logicalState projects a database's observable state: table contents,
// soft-constraint registry, correlations, and summary contents. Unlike
// renderState it ignores physical slot layout, which legitimately differs
// once a rolled-back transaction has left aborted placeholder slots.
func logicalState(t *testing.T, db *Database) string {
	t.Helper()
	var sb strings.Builder
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		te, err := cat.Table(name)
		if err != nil {
			continue
		}
		cols := make([]string, len(te.Def.Columns))
		for i, c := range te.Def.Columns {
			cols[i] = c.Name
		}
		res, err := db.Exec(fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), name))
		if err != nil {
			t.Fatalf("logicalState %s: %v", name, err)
		}
		fmt.Fprintf(&sb, "TABLE %s rows=%d\n%s\n", name, te.Heap.RowCount(), fingerprint(res))
		for _, con := range te.Constraints {
			fmt.Fprintf(&sb, "  CON %s | active=%v conf=%.6f mods=%d\n",
				con.Describe(), con.Active, con.Confidence, con.ModsSince)
		}
		for _, lc := range cat.Correlations(name) {
			fmt.Fprintf(&sb, "  CORR %s | usable=%v abs=%v\n", lc.Name, lc.Usable(), lc.IsAbsolute())
		}
	}
	for _, st := range cat.AllSummaries() {
		rows := ""
		if st.Heap != nil {
			lines := []string{}
			st.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
				lines = append(lines, fmt.Sprint(row))
				return true
			})
			sort.Strings(lines)
			rows = strings.Join(lines, "\n")
		}
		fmt.Fprintf(&sb, "SUMMARY %s est=%d\n%s\n", st.Name, st.RowCountEstimate, rows)
	}
	return sb.String()
}

// A rolled-back transaction leaves the database logically identical to a
// twin that never ran it: no rows, no ASC deactivations, no synopsis or
// summary maintenance, no economy charges.
func TestRollbackLeavesLogicalTwin(t *testing.T) {
	build := func(withAborted bool) *Database {
		db := Open()
		db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, qty INT)")
		for i := 0; i < 40; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, 2*i))
		}
		db.MustExec("ALTER TABLE t ADD CONSTRAINT qty_cap CHECK (qty <= 100) SOFT")
		db.MustExec("CREATE SUMMARY TABLE tsum AS (SELECT * FROM t WHERE qty > 50)")
		if withAborted {
			sess := db.NewSession("doomed")
			// Violates qty_cap (would deactivate it at commit), churns
			// the summary's predicate range, and deletes rows — all of
			// which must evaporate at ROLLBACK.
			sexec(t, sess, "BEGIN")
			sexec(t, sess, "INSERT INTO t VALUES (90, 900)")
			sexec(t, sess, "UPDATE t SET qty = qty + 60 WHERE id < 5")
			sexec(t, sess, "DELETE FROM t WHERE id = 20")
			sexec(t, sess, "ROLLBACK")
			sess.Close()
		}
		db.MustExec("INSERT INTO t VALUES (41, 82)") // post-txn write, both sides
		return db
	}
	twin, got := build(false), build(true)
	if w, g := logicalState(t, twin), logicalState(t, got); w != g {
		t.Errorf("rolled-back transaction left a trace\n--- twin ---\n%s\n--- with-abort ---\n%s", w, g)
	}
}

// A long scan must not block writers: the reader pins its snapshot, drops
// the shared lock, and only then materializes rows. The test parks a
// SELECT inside that window (via the engine's post-unlock hook) and
// requires a concurrent INSERT to commit while the scan is still parked —
// and the scan's eventual result to exclude it.
func TestSlowScanDoesNotBlockInsert(t *testing.T) {
	db := txnDB(t)
	parked := make(chan struct{})
	unpark := make(chan struct{})
	var once sync.Once
	testHookQueryUnlocked = func() {
		once.Do(func() {
			close(parked)
			<-unpark
		})
	}
	defer func() { testHookQueryUnlocked = nil }()

	type qr struct {
		n   int64
		err error
	}
	scan := make(chan qr, 1)
	go func() {
		res, err := db.Exec("SELECT COUNT(*) AS n FROM acct")
		if err != nil {
			scan <- qr{0, err}
			return
		}
		scan <- qr{res.Rows[0][0].Int(), nil}
	}()
	<-parked

	ins := make(chan error, 1)
	go func() {
		_, err := db.Exec("INSERT INTO acct VALUES (99, 0)")
		ins <- err
	}()
	select {
	case err := <-ins:
		if err != nil {
			t.Fatalf("concurrent insert failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		close(unpark)
		t.Fatal("INSERT blocked behind an executing scan")
	}
	close(unpark)
	r := <-scan
	if r.err != nil {
		t.Fatalf("scan failed: %v", r.err)
	}
	if r.n != 10 {
		t.Errorf("scan saw %d rows; its snapshot predates the insert, want 10", r.n)
	}
}

// Commit visibility must trail durability: under -wal-sync=always a commit
// whose fsync fails (existing fsync-fail fault site) surfaces a typed
// recovery error, and no reader — concurrent or later — ever observes the
// transaction's effects. Restart agrees.
func TestCommitInvisibleUntilFsync(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Config{WALSyncFailAt: 2}) // #1 is CREATE TABLE's
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncAlways, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")

	var dirty atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rows, err := db.Query("SELECT a FROM t"); err == nil && len(rows) > 0 {
				dirty.Store(int64(len(rows)))
			}
		}
	}()

	_, err = db.Exec("INSERT INTO t VALUES (1)")
	close(stop)
	wg.Wait()
	qe, ok := exec.AsQueryError(err)
	if !ok || qe.Kind != exec.KindRecovery {
		t.Fatalf("want KindRecovery on failed commit fsync, got %v", err)
	}
	if n := dirty.Load(); n != 0 {
		t.Errorf("a reader observed %d rows before the commit was durable", n)
	}
	if rows, err := db.Query("SELECT a FROM t"); err != nil || len(rows) != 0 {
		t.Errorf("failed commit left visible rows: %v %v", rows, err)
	}

	// Restart: the unsynced commit never reached the log.
	rec, _, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rows, err := rec.Query("SELECT a FROM t"); err != nil || len(rows) != 0 {
		t.Errorf("failed commit resurrected by recovery: %v %v", rows, err)
	}
}

// Crash with a transaction open (the kill -9 case): recovery replays every
// committed transaction and none of the in-flight one's streamed records.
func TestCrashMidTransactionDiscardsUncommitted(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	db.MustExec("INSERT INTO t VALUES (1, 10)")
	db.MustExec("INSERT INTO t VALUES (2, 20)")

	sess := db.NewSession("doomed")
	sexec(t, sess, "BEGIN")
	sexec(t, sess, "INSERT INTO t VALUES (3, 30)")
	sexec(t, sess, "UPDATE t SET v = 999 WHERE id = 1")
	// Hard stop with the transaction open: copy the data directory, as the
	// crash-differential suite does, leaving the WAL's final group
	// unterminated.
	crashed := copyDataDir(t, dir)

	rec, _, err := OpenDurable(crashed, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery with open transaction: %v", err)
	}
	defer rec.Close()
	// (The copy may catch a partial buffered stream write — a torn tail
	// inside the uncommitted group is legitimate and harmless.)
	rows, err := rec.Query("SELECT id, v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("recovered %d rows want 2 (uncommitted insert must be absent): %v", len(rows), rows)
	}
	for _, row := range rows {
		if row[0].Int() == 1 && row[1].Int() != 10 {
			t.Errorf("uncommitted update leaked into recovery: %v", row)
		}
	}

	// The live database commits the same transaction; a clean restart then
	// sees all of it — the two fates diverge only at the commit record.
	sexec(t, sess, "COMMIT")
	sess.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows, _ = re.Query("SELECT v FROM t WHERE id = 1")
	if len(rows) != 1 || rows[0][0].Int() != 999 {
		t.Errorf("committed transaction lost across restart: %v", rows)
	}
}

// The concurrent stress mix: writers running explicit transactions over
// private key ranges (randomly committing or rolling back), contenders
// fighting over one shared row, and readers asserting snapshot-stable
// counts — under -race this is the MVCC layer's concurrency proof.
func TestTxnStress(t *testing.T) {
	db := Open()
	db.MustExec("CREATE TABLE s (id INT PRIMARY KEY, v INT)")
	db.MustExec("INSERT INTO s VALUES (0, 0)") // the contended row

	const writers, rounds, span = 4, 25, 1000
	var committed atomic.Int64
	var conflicts atomic.Int64
	var wg sync.WaitGroup // writers: bounded work
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sess := db.NewSession(fmt.Sprintf("w%d", w))
			defer sess.Close()
			base := (w + 1) * span
			for r := 0; r < rounds; r++ {
				ctx := context.Background()
				if _, err := sess.ExecCtx(ctx, "BEGIN"); err != nil {
					t.Errorf("w%d BEGIN: %v", w, err)
					return
				}
				n := 1 + rng.Intn(3)
				ok := true
				for k := 0; k < n; k++ {
					id := base + r*10 + k
					if _, err := sess.ExecCtx(ctx, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", id, r)); err != nil {
						t.Errorf("w%d insert %d: %v", w, id, err)
						ok = false
						break
					}
				}
				// Fight over the shared row half the time.
				if ok && rng.Intn(2) == 0 {
					_, err := sess.ExecCtx(ctx, "UPDATE s SET v = v + 1 WHERE id = 0")
					if err != nil {
						if qe, isQE := exec.AsQueryError(err); !isQE || qe.Kind != exec.KindConflict {
							t.Errorf("w%d contended update: non-conflict error %v", w, err)
						}
						conflicts.Add(1)
						// The failed statement rolled itself back; the
						// transaction is still usable. Abandon it anyway
						// half the time to vary the mix.
						if rng.Intn(2) == 0 {
							if _, err := sess.ExecCtx(ctx, "ROLLBACK"); err != nil {
								t.Errorf("w%d ROLLBACK: %v", w, err)
							}
							continue
						}
					}
				}
				if !ok || rng.Intn(4) == 0 {
					if _, err := sess.ExecCtx(ctx, "ROLLBACK"); err != nil {
						t.Errorf("w%d ROLLBACK: %v", w, err)
					}
					continue
				}
				if _, err := sess.ExecCtx(ctx, "COMMIT"); err != nil {
					t.Errorf("w%d COMMIT: %v", w, err)
					continue
				}
				committed.Add(int64(n))
			}
		}(w)
	}
	// Readers: inside a transaction the count never moves. They loop until
	// the writers finish.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for rdr := 0; rdr < 2; rdr++ {
		rwg.Add(1)
		go func(rdr int) {
			defer rwg.Done()
			sess := db.NewSession(fmt.Sprintf("r%d", rdr))
			defer sess.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx := context.Background()
				if _, err := sess.ExecCtx(ctx, "BEGIN"); err != nil {
					t.Errorf("r%d BEGIN: %v", rdr, err)
					return
				}
				first := scount(t, sess, "s")
				second := scount(t, sess, "s")
				if first != second {
					t.Errorf("r%d: snapshot moved mid-transaction: %d then %d", rdr, first, second)
				}
				if _, err := sess.ExecCtx(ctx, "COMMIT"); err != nil {
					t.Errorf("r%d COMMIT: %v", rdr, err)
				}
			}
		}(rdr)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	rows, err := db.Query("SELECT id FROM s WHERE id > 0")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != committed.Load() {
		t.Errorf("%d rows survived, %d committed", len(rows), committed.Load())
	}
	seen := map[int64]bool{}
	for _, row := range rows {
		if seen[row[0].Int()] {
			t.Fatalf("duplicate primary key %d", row[0].Int())
		}
		seen[row[0].Int()] = true
	}
	t.Logf("stress: %d committed inserts, %d write conflicts", committed.Load(), conflicts.Load())
}

// ExecScript pinpoints a failing statement by 1-based position and
// truncated text, and supports explicit transactions.
func TestExecScriptErrorsAndTransactions(t *testing.T) {
	db := Open()
	_, err := db.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO nope VALUES (1);
	`)
	if err == nil {
		t.Fatal("script with a bad statement succeeded")
	}
	if !strings.Contains(err.Error(), "script statement 2 (INSERT INTO nope") {
		t.Errorf("error lacks statement position/text: %v", err)
	}

	if _, err := db.ExecScript(`
		BEGIN;
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (2);
		COMMIT;
		BEGIN;
		INSERT INTO t VALUES (3);
		ROLLBACK;
	`); err != nil {
		t.Fatalf("transactional script: %v", err)
	}
	rows, _ := db.Query("SELECT a FROM t")
	if len(rows) != 2 {
		t.Errorf("script committed %d rows want 2", len(rows))
	}
}

// DDL and ANALYZE refuse to run inside an explicit transaction; CREATE
// INDEX additionally refuses while any write transaction is open anywhere.
func TestDDLGuardsInsideTransactions(t *testing.T) {
	db := txnDB(t)
	a := db.NewSession("a")
	defer a.Close()
	sexec(t, a, "BEGIN")
	if _, err := a.ExecCtx(context.Background(), "CREATE TABLE u (x INT)"); err == nil ||
		!strings.Contains(err.Error(), "not allowed inside a transaction") {
		t.Errorf("DDL inside txn: %v", err)
	}
	sexec(t, a, "INSERT INTO acct VALUES (70, 0)")
	// Another connection cannot build an index while a write txn is open:
	// the build would miss the in-flight insert.
	_, err := db.Exec("CREATE INDEX ab ON acct (bal)")
	qe, ok := exec.AsQueryError(err)
	if !ok || qe.Kind != exec.KindBusy {
		t.Errorf("CREATE INDEX under open write txn: want KindBusy, got %v", err)
	}
	sexec(t, a, "COMMIT")
	if _, err := db.Exec("CREATE INDEX ab ON acct (bal)"); err != nil {
		t.Errorf("CREATE INDEX after drain: %v", err)
	}
}

// BEGIN without a session, nested BEGIN, and COMMIT/ROLLBACK with nothing
// open are all plain errors.
func TestTxnStatementErrors(t *testing.T) {
	db := txnDB(t)
	if _, err := db.Exec("BEGIN"); err == nil {
		t.Error("BEGIN without a session succeeded")
	}
	a := db.NewSession("a")
	defer a.Close()
	sexec(t, a, "BEGIN")
	if _, err := a.ExecCtx(context.Background(), "BEGIN"); err == nil {
		t.Error("nested BEGIN succeeded")
	}
	sexec(t, a, "ROLLBACK")
	if _, err := a.ExecCtx(context.Background(), "COMMIT"); err == nil {
		t.Error("COMMIT with nothing open succeeded")
	}
	if _, err := a.ExecCtx(context.Background(), "ROLLBACK"); err == nil {
		t.Error("ROLLBACK with nothing open succeeded")
	}
}
