package engine

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/exec"
	"softdb/internal/obs"
	"softdb/internal/rewrite"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// costUnitMicros calibrates one optimizer cost unit (≈ one page read of
// sequential I/O in the cost model) to wall time for the net-benefit
// figure. The ledger's raw counters are unit-faithful; only the single
// ranking number folds them together, and DESIGN.md §15 documents the
// exchange rates chosen here.
const costUnitMicros = 100.0

// rewriteRowCostUnits prices one row a rewrite eliminated at plan time in
// optimizer cost units (the cost model's per-row CPU weight).
const rewriteRowCostUnits = 0.01

// shortRowCostUnits prices one row whose per-row filter evaluation a
// page-level synopsis proof short-circuited. Cheaper than a rewrite row —
// the row was still read and emitted, only its predicate walk was saved —
// so it carries half the per-row CPU weight.
const shortRowCostUnits = 0.005

// walRecordMicros prices one registry-maintenance WAL record: an
// encode-plus-buffered-append, not an fsync.
const walRecordMicros = 10.0

// shardPruneCostUnits prices one whole shard the router excluded from a
// fan-out: a saved network round trip plus a remote scan, far heavier than
// one skipped page. The router credits these into its own ledger; a plain
// engine never accrues them.
const shardPruneCostUnits = 50.0

// maxShadowPlans bounds how many masked re-optimizations one planning pass
// performs: shadow costing is linear in the number of distinct constraints
// consulted, and a pathological query touching dozens should not stall
// compilation.
const maxShadowPlans = 8

// shadowCostDeltas measures, per constraint consulted while planning,
// what the chosen plan's estimated cost would have been had that
// constraint not existed: rebuild the logical plan, rewrite and optimize
// with the constraint masked, and take the cost difference. The executed
// plan is never touched — this runs against throwaway plan copies — and
// positive deltas are credited to the ledger. Runs only on cache misses
// (plan time), so cached re-executions pay nothing.
func (db *Database) shadowCostDeltas(sel *sql.Select, chosenCost float64, events []obs.Event, st Settings) map[string]float64 {
	var names []string
	seen := map[string]bool{}
	for _, e := range events {
		if !e.Applied || e.Constraint == "" {
			continue
		}
		key := strings.ToLower(e.Constraint)
		if seen[key] {
			continue
		}
		seen[key] = true
		names = append(names, e.Constraint)
		if len(names) >= maxShadowPlans {
			break
		}
	}
	if len(names) == 0 {
		return nil
	}
	out := make(map[string]float64, len(names))
	for _, name := range names {
		logical, err := db.builder().BuildSelect(sel)
		if err != nil {
			continue
		}
		ropts := db.rewriteOpts(st)
		ropts.Masked = name
		rw := &rewrite.Rewriter{Cat: db.cat, Opt: ropts}
		logical = rw.Rewrite(logical)
		o := db.optimizer(st)
		o.Masked = name
		res, err := o.Optimize(logical)
		if err != nil {
			continue
		}
		delta := res.EstCost - chosenCost
		if delta < 0 {
			delta = 0
		}
		out[name] = delta
		db.obs.econ.CreditCostDelta(name, delta)
	}
	return out
}

// creditEconomy flushes one finished execution into the ledger: pages the
// scan pruning skipped and rows the batched scan short-circuited, each
// attributed to the constraint that planted the winning prune predicate,
// and per-node q-error split by whether a constraint informed the node's
// estimate. Errors still flush the skip and short-circuit counts (that
// work really was avoided) but not q-error — a plan that died mid-run has
// no meaningful actual cardinality.
func (db *Database) creditEconomy(entry *cachedPlan, span *obs.SpanNode, skips, shorts *exec.SkipRecorder, actualRows int64, err error) {
	if db.NoEconomy {
		return
	}
	econ := db.obs.econ
	if skips != nil {
		for source, n := range skips.Counts() {
			if source != "filter" {
				econ.CreditPagesSkipped(source, n)
			}
		}
	}
	if shorts != nil {
		for source, n := range shorts.Counts() {
			if source != "filter" {
				econ.CreditRowsShortCircuited(source, n)
			}
		}
	}
	if err != nil {
		return
	}
	if span != nil {
		creditSpanQError(econ, span)
		return
	}
	// No span tree (tracing off): fall back to a query-level q-error,
	// attributed to the constraints the planner consulted, blind otherwise.
	q := qerror(entry.estRows, float64(actualRows))
	names := appliedConstraintNames(entry.events)
	if len(names) == 0 {
		econ.ObserveQError("", q)
		return
	}
	for _, name := range names {
		econ.ObserveQError(name, q)
	}
}

// creditSpanQError walks an instrumented span tree crediting each node's
// q-error: nodes a constraint informed count toward that constraint, the
// rest accumulate in the blind baseline.
func creditSpanQError(econ *obs.Economy, n *obs.SpanNode) {
	if n.HasEst {
		q := qerror(n.EstRows, float64(n.Rows.Load()))
		if len(n.Informed) == 0 {
			econ.ObserveQError("", q)
		} else {
			for _, name := range n.Informed {
				econ.ObserveQError(name, q)
			}
		}
	}
	for _, c := range n.Children {
		creditSpanQError(econ, c)
	}
}

// qerror is the symmetric estimation-error factor max(est,actual) /
// min(est,actual), both floored at one row so empty results don't divide
// by zero and sub-row estimates don't explode the ratio.
func qerror(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// appliedConstraintNames collects the distinct constraint names of applied
// plan-time events, in first-seen order.
func appliedConstraintNames(events []obs.Event) []string {
	var names []string
	seen := map[string]bool{}
	for _, e := range events {
		if !e.Applied || e.Constraint == "" {
			continue
		}
		key := strings.ToLower(e.Constraint)
		if seen[key] {
			continue
		}
		seen[key] = true
		names = append(names, e.Constraint)
	}
	return names
}

// economyLines renders the per-constraint benefit annotations EXPLAIN
// ANALYZE appends after the event list: the shadow-costing deltas computed
// when this plan was compiled, the pages this execution's scans skipped,
// and the rows whose filter evaluation a synopsis proof short-circuited,
// per attributed constraint.
func economyLines(entry *cachedPlan, skips, shorts *exec.SkipRecorder) []string {
	var out []string
	for _, name := range econKeys(entry.shadowDeltas) {
		out = append(out, fmt.Sprintf("economy: constraint %s: masked-plan cost +%.1f", name, entry.shadowDeltas[name]))
	}
	if skips != nil {
		counts := skips.Counts()
		for _, source := range econKeys(counts) {
			if source == "filter" {
				continue
			}
			out = append(out, fmt.Sprintf("economy: constraint %s: pages skipped %d", source, counts[source]))
		}
	}
	if shorts != nil {
		counts := shorts.Counts()
		for _, source := range econKeys(counts) {
			if source == "filter" {
				continue
			}
			out = append(out, fmt.Sprintf("economy: constraint %s: rows short-circuited %d", source, counts[source]))
		}
	}
	return out
}

func econKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// informedLookup adapts an optimizer NodeInformed map into
// exec.InstrumentInformed's callback.
func informedLookup(m map[exec.Operator][]string) func(exec.Operator) []string {
	if m == nil {
		return nil
	}
	return func(op exec.Operator) []string { return m[op] }
}

// ConstraintEconomy returns the decorated, net-benefit-ranked ledger: the
// raw obs counters joined with catalog facts (kind, mode, active, current
// exception-AST size) plus the derived q-error delta and net-benefit
// figures. It backs SHOW CONSTRAINTS ECONOMY, /debug/constraints and the
// REPL's \constraints — one code path, so the three surfaces agree.
func (db *Database) ConstraintEconomy() []obs.EconomyRow {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.constraintEconomyLocked()
}

func (db *Database) constraintEconomyLocked() []obs.EconomyRow {
	rows := db.obs.econ.Snapshot()
	blindSum, blindNodes := db.obs.econ.BlindQError()
	var blindMean float64
	if blindNodes > 0 {
		blindMean = float64(blindSum) / 1000 / float64(blindNodes)
	}
	for i := range rows {
		r := &rows[i]
		r.Kind, r.Mode, r.Active = db.describeCharacterization(r.Name)
		if st, ok := db.cat.ExceptionFor(r.Name); ok && st.Heap != nil {
			b := st.Heap.PageCount() * storage.PageSize
			db.obs.econ.SetExceptionBytes(r.Name, b)
			r.ExceptionBytes = b
		}
		if r.QErrNodes > 0 && blindNodes > 0 {
			// Positive delta: estimates this constraint informed were
			// better (lower q-error) than the blind baseline.
			r.QErrDelta = blindMean - r.MeanQError()
		}
		r.NetBenefitUs = netBenefitMicros(r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].NetBenefitUs != rows[j].NetBenefitUs {
			return rows[i].NetBenefitUs > rows[j].NetBenefitUs
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// netBenefitMicros folds a ledger row into one ranking figure in
// microseconds: pages skipped and masked-plan cost deltas convert at
// costUnitMicros, plan-time rows saved at rewriteRowCostUnits, against the
// measured maintenance and refresh wall time plus priced WAL records.
// Exception-AST bytes are reported but deliberately excluded — they are a
// storage cost, not time, and folding bytes into microseconds would let an
// arbitrary exchange rate dominate the ranking.
func netBenefitMicros(r *obs.EconomyRow) float64 {
	benefit := costUnitMicros * (float64(r.PagesSkipped) +
		shardPruneCostUnits*float64(r.ShardsPruned) +
		rewriteRowCostUnits*float64(r.RewriteRows) +
		shortRowCostUnits*float64(r.RowsShort) +
		float64(r.CostDeltaMilli)/1000)
	cost := float64(r.MaintNanos)/1000 + float64(r.RefreshNanos)/1000 + walRecordMicros*float64(r.WALRecords)
	return benefit - cost
}

// describeCharacterization resolves a ledger name against every catalog
// namespace that can originate economy credits.
func (db *Database) describeCharacterization(name string) (kind, mode string, active bool) {
	if con := db.cat.ConstraintByName(name); con != nil {
		return con.Kind.String(), con.Mode.String(), con.Active
	}
	if lc, ok := db.cat.CorrelationByName(name); ok {
		mode := "SOFT ABSOLUTE"
		if lc.Probation {
			mode = "PROBATION"
		}
		return "CORRELATION", mode, lc.Active
	}
	if jh, ok := db.cat.JoinHolesByName(name); ok {
		return "JOIN HOLES", "SOFT ABSOLUTE", jh.Active
	}
	if st, ok := db.cat.SummaryTable(name); ok {
		mode := "MATERIALIZED"
		if st.Informational {
			mode = "INFORMATIONAL"
		}
		return "SUMMARY TABLE", mode, true
	}
	return "UNKNOWN", "", false
}

// showConstraintsEconomy builds the SHOW CONSTRAINTS ECONOMY result set.
// Callers hold at least the shared lock.
func (db *Database) showConstraintsEconomy() *Result {
	rows := db.constraintEconomyLocked()
	res := &Result{Columns: []string{
		"constraint", "kind", "mode", "active",
		"pages_skipped", "shards_pruned", "rows_short_circuited", "rewrite_rows", "cost_delta", "qerr_delta",
		"maint_us", "refresh_us", "exc_bytes", "wal_records",
		"net_benefit_us",
	}}
	for _, r := range rows {
		res.Rows = append(res.Rows, types.Row{
			types.NewString(r.Name),
			types.NewString(r.Kind),
			types.NewString(r.Mode),
			types.NewBool(r.Active),
			types.NewInt(r.PagesSkipped),
			types.NewInt(r.ShardsPruned),
			types.NewInt(r.RowsShort),
			types.NewInt(r.RewriteRows),
			types.NewFloat(float64(r.CostDeltaMilli) / 1000),
			types.NewFloat(r.QErrDelta),
			types.NewInt(r.MaintNanos / 1000),
			types.NewInt(r.RefreshNanos / 1000),
			types.NewInt(r.ExceptionBytes),
			types.NewInt(r.WALRecords),
			types.NewFloat(r.NetBenefitUs),
		})
	}
	res.RowsAffected = int64(len(res.Rows))
	return res
}
