package engine

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/stats"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wal"
)

// --- state rendering -------------------------------------------------------
//
// renderState serializes everything a crashed-and-recovered database must
// reproduce: table definitions, physical heap layout (dead slots included,
// so RowID assignment matches), heap versions, index contents, constraints
// with their full soft-state (activity, confidence, currency), virtual
// columns, statistics, summary tables, correlations, join holes, exception
// links, and views. The catalog's version counters are deliberately absent:
// recovery restores the soft registry from whole images rather than
// replaying each individual bump, so they may lawfully differ.

func renderState(db *Database) string {
	var sb strings.Builder
	cat := db.Catalog()
	for _, name := range cat.TableNames() {
		te, err := cat.Table(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "TABLE %s | v=%d rows=%d pages=%d\n",
			te.Def.String(), te.Heap.Version(), te.Heap.RowCount(), te.Heap.PageCount())
		renderHeap(&sb, te.Heap)
		for _, con := range te.Constraints {
			fmt.Fprintf(&sb, "  CON %s | active=%v conf=%.6f vv=%d mods=%d\n",
				con.Describe(), con.Active, con.Confidence, con.VerifiedVersion, con.ModsSince)
		}
		for _, ix := range te.Indexes {
			fmt.Fprintf(&sb, "  INDEX %s unique=%v cols=%v entries=%d\n",
				ix.Name, ix.Unique, ix.Columns, ix.Tree.Len())
			ix.Tree.Ascend(nil, func(key types.Row, rid storage.RowID) bool {
				fmt.Fprintf(&sb, "    %v -> %v\n", key, rid)
				return true
			})
		}
		for _, vc := range te.Virtual {
			fmt.Fprintf(&sb, "  VIRTUAL %s canon=%q stats=%v\n", vc.Name, vc.Canon, vc.Stats)
		}
		renderStats(&sb, te.Stats)
	}
	for _, st := range cat.AllSummaries() {
		where := "<nil>"
		if st.Where != nil {
			where = st.Where.String()
		}
		fmt.Fprintf(&sb, "SUMMARY %s base=%s info=%v est=%d where=%s\n",
			st.Name, st.Base, st.Informational, st.RowCountEstimate, where)
		if st.Heap != nil {
			fmt.Fprintf(&sb, "  heap v=%d rows=%d pages=%d\n",
				st.Heap.Version(), st.Heap.RowCount(), st.Heap.PageCount())
			renderHeap(&sb, st.Heap)
		}
		renderStats(&sb, st.Stats)
	}
	for _, lc := range cat.AllCorrelations() {
		fmt.Fprintf(&sb, "CORR %s | vv=%d mods=%d\n", lc.Describe(), lc.VerifiedVersion, lc.ModsSince)
	}
	for _, jh := range cat.AllJoinHoles() {
		fmt.Fprintf(&sb, "HOLES %s | active=%v vv=%d mods=%d\n",
			jh.Describe(), jh.Active, jh.VerifiedVersion, jh.ModsSince)
		for _, r := range jh.Holes {
			fmt.Fprintf(&sb, "  %s\n", r.String())
		}
	}
	exc := cat.Exceptions()
	for _, k := range sortedMapKeys(exc) {
		fmt.Fprintf(&sb, "EXCEPTION %s -> %s\n", k, exc[k])
	}
	for _, name := range sortedMapKeys(db.views) {
		fmt.Fprintf(&sb, "VIEW %s\n", name)
	}
	return sb.String()
}

func renderHeap(sb *strings.Builder, h *storage.Heap) {
	for pi, page := range h.DumpPages() {
		for si, slot := range page {
			if slot.Dead {
				fmt.Fprintf(sb, "    [%d:%d] dead\n", pi, si)
			} else {
				fmt.Fprintf(sb, "    [%d:%d] %v\n", pi, si, slot.Row)
			}
		}
	}
}

func renderStats(sb *strings.Builder, ts *stats.TableStats) {
	if ts == nil {
		return
	}
	fmt.Fprintf(sb, "  STATS rows=%d pages=%d v=%d\n", ts.RowCount, ts.Pages, ts.Version)
	for _, col := range sortedMapKeys(ts.Columns) {
		fmt.Fprintf(sb, "    %s: %s\n", col, ts.Columns[col].String())
	}
}

func sortedMapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// firstDiff points at the first line where two renderings disagree.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  twin:      %q\n  recovered: %q", i+1, w, g)
		}
	}
	return "(identical)"
}

// copyDataDir snapshots the data directory byte-for-byte into a fresh temp
// dir — the moral equivalent of kill -9 between statements, since the WAL is
// append-only and the snapshot is replaced atomically.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// --- the seeded workload ---------------------------------------------------

type wop struct {
	desc    string
	mayFail bool
	run     func(db *Database) error
}

func sqlOp(text string) wop {
	return wop{desc: text, run: func(db *Database) error {
		_, err := db.Exec(text)
		return err
	}}
}

func sqlOpFails(text string) wop {
	op := sqlOp(text)
	op.mayFail = true
	return op
}

// durabilityWorkload is a deterministic mixed workload covering every record
// type the WAL knows: DML on two tables, index/summary/view DDL, ANALYZE,
// soft-constraint mining and installs, ASC-violating writes, virtual
// columns, exception links, intentional statement failures, and a truncate.
func durabilityWorkload() []wop {
	var ops []wop
	add := func(text string) { ops = append(ops, sqlOp(text)) }

	add(`CREATE TABLE orders (id INT PRIMARY KEY, qty INT NOT NULL, price INT, region INT,
		CONSTRAINT qty_pos CHECK (qty >= 0) SOFT)`)
	add(`CREATE TABLE items (id INT NOT NULL, weight INT)`)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		add(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %d)",
			i, 2*i+rng.Intn(3), 10+rng.Intn(90), i%5))
	}
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf("INSERT INTO items VALUES (%d, %d)", i, 100+i))
	}
	add("CREATE INDEX idx_qty ON orders (qty)")
	add("CREATE SUMMARY TABLE pricey AS (SELECT * FROM orders WHERE price >= 80)")
	add("CREATE INFORMATIONAL SUMMARY TABLE cheap AS (SELECT * FROM orders WHERE price <= 20)")
	add("ANALYZE orders")
	add("ANALYZE items")
	ops = append(ops, wop{desc: "mine+install soft constraints", run: func(db *Database) error {
		mgr := db.SoftcManager()
		cands, err := mgr.DiscoverTable("orders")
		if err != nil {
			return err
		}
		sel := mgr.SelectCorrelations(cands.Correlations, 2)
		if len(sel) > 1 {
			if err := mgr.InstallOnProbation(sel[1:]); err != nil {
				return err
			}
			sel = sel[:1]
		}
		if err := mgr.InstallCorrelations(sel); err != nil {
			return err
		}
		return mgr.InstallRanges(cands.Ranges)
	}})
	add("SELECT id, qty FROM orders WHERE qty >= 20 AND qty <= 30")
	add("SELECT id FROM orders WHERE region = 1")
	add("UPDATE orders SET price = price + 5 WHERE region = 2")
	add("DELETE FROM orders WHERE id = 3")
	add("DELETE FROM orders WHERE id = 17")
	// Violates the mined qty/id ranges and the qty≈2·id envelope: the live
	// write path deactivates those ASCs, and replay must do the same.
	add("INSERT INTO orders VALUES (90, 500, 50, 1)")
	add("CREATE VIEW big AS SELECT id, qty FROM orders WHERE qty > 10")
	add("ALTER TABLE orders ADD CONSTRAINT price_cap CHECK (price <= 1000) SOFT")
	ops = append(ops, wop{desc: "add virtual column", run: func(db *Database) error {
		return db.AddVirtualColumn("orders", "margin", "price - region")
	}})
	add("ALTER TABLE orders ADD CONSTRAINT cheapish CHECK (price <= 120) SOFT STATISTICAL CONFIDENCE 0.9")
	ops = append(ops, wop{desc: "link exception AST", run: func(db *Database) error {
		return db.LinkException("cheapish", "pricey")
	}})
	ops = append(ops, sqlOpFails("CREATE TABLE orders (id INT)"))       // duplicate table
	ops = append(ops, sqlOpFails("INSERT INTO orders VALUES (0, 1, 1, 1)")) // duplicate PK
	ops = append(ops, wop{desc: "truncate items", run: func(db *Database) error {
		return db.TruncateTable("items")
	}})
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf("INSERT INTO items VALUES (%d, %d)", i, 100+i))
	}
	add("UPDATE orders SET qty = qty - 1 WHERE id = 90")
	add("SELECT id FROM big WHERE qty > 30")
	add("ANALYZE orders")
	return ops
}

// --- the crash/recovery differential suite (ISSUE 6 satellite 1) -----------

// runCrashDifferential drives the seeded workload against a durable
// database, hard-stops it (directory copy) at K seeded points, recovers each
// copy, and requires the recovered state to be byte-identical — under
// renderState — to an in-memory twin that executed the same statement
// prefix and never crashed.
func runCrashDifferential(t *testing.T, parallel int) {
	t.Helper()
	ops := durabilityWorkload()
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	db.Parallel = parallel

	rng := rand.New(rand.NewSource(1))
	points := map[int]bool{}
	for len(points) < 6 {
		points[2+rng.Intn(len(ops)-2)] = true
	}
	copies := map[int]string{}
	for i, op := range ops {
		err := op.run(db)
		if err != nil && !op.mayFail {
			t.Fatalf("op %d (%s): %v", i, op.desc, err)
		}
		if err == nil && op.mayFail {
			t.Fatalf("op %d (%s): expected failure, got success", i, op.desc)
		}
		if points[i] {
			copies[i] = copyDataDir(t, dir)
		}
	}
	crashAtEnd := copyDataDir(t, dir)
	if err := db.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	twin := Open()
	twin.Parallel = parallel
	check := func(label, cdir string) {
		t.Helper()
		rec, rs, err := OpenDurable(cdir, DurableOptions{SyncPolicy: wal.SyncNone})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		defer rec.Close()
		if rs.TailTruncated {
			// Copies are taken between statements; there is no torn tail.
			t.Errorf("%s: unexpected tail truncation: %v", label, rs.TailErr)
		}
		// Dead row versions are deliberately not durable: a checkpoint
		// writes a vacuumed and an unvacuumed heap identically, so the
		// recovered side comes back vacuum-normalized. Vacuum both sides
		// and compare that state — slot layout (hence RowIDs) survives
		// vacuum, so this still pins the physical story.
		rec.Vacuum()
		twin.Vacuum()
		if got, want := renderState(rec), renderState(twin); got != want {
			t.Errorf("%s: recovered state diverged from never-crashed twin\n%s",
				label, firstDiff(want, got))
		}
		if n := rec.CachedPlanCount(); n != 0 {
			t.Errorf("%s: plan cache survived recovery: %d entries", label, n)
		}
	}
	for i, op := range ops {
		if err := op.run(twin); err != nil && !op.mayFail {
			t.Fatalf("twin op %d (%s): %v", i, op.desc, err)
		}
		if cdir, ok := copies[i]; ok {
			check(fmt.Sprintf("crash after op %d (%s)", i, op.desc), cdir)
		}
	}
	check("crash after final op", crashAtEnd)

	// Clean shutdown checkpointed, so the reopen recovers from the snapshot
	// alone: zero records replayed, and the state still matches the twin.
	reopened, rs, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone})
	if err != nil {
		t.Fatalf("reopen after clean shutdown: %v", err)
	}
	defer reopened.Close()
	if rs.RecordsReplayed != 0 {
		t.Errorf("clean shutdown should leave nothing to replay: %d records", rs.RecordsReplayed)
	}
	if rs.SnapshotLSN == 0 {
		t.Error("clean shutdown should have written a snapshot")
	}
	reopened.Vacuum()
	twin.Vacuum()
	if got, want := renderState(reopened), renderState(twin); got != want {
		t.Errorf("reopened state diverged from twin\n%s", firstDiff(want, got))
	}
}

func TestCrashRecoveryDifferential(t *testing.T) {
	runCrashDifferential(t, 1)
}

func TestCrashRecoveryDifferentialParallel(t *testing.T) {
	runCrashDifferential(t, 4)
}

// --- recovered-constraint semantics (ISSUE 6 satellite 3) ------------------

// An ASC violated by DML that happened after the last checkpoint must come
// out of recovery deactivated: replay re-runs the soft write hooks, so the
// deactivation reproduces without revalidation having to catch it.
func TestRecoveredASCInvalidatedByReplayedDML(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT, CONSTRAINT pos CHECK (a >= 0) SOFT)")
	db.MustExec("INSERT INTO t VALUES (5)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The snapshot holds pos as active; the violation is only in the log.
	db.MustExec("INSERT INTO t VALUES (-1)")
	if con := db.Catalog().ConstraintByName("pos"); con == nil || con.Active {
		t.Fatal("violating insert should have deactivated pos pre-crash")
	}
	cp := copyDataDir(t, dir)

	rec, rs, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	con := rec.Catalog().ConstraintByName("pos")
	if con == nil || con.Active {
		t.Fatalf("recovered ASC should be inactive: %+v", con)
	}
	// Replay itself deactivated it, mirroring the live path — revalidation
	// never saw an active violated constraint.
	if rs.Invalidated != 0 {
		t.Errorf("deactivation should come from replay, not revalidation: %+v", rs)
	}
}

// A registry image that claims an ASC is active while the recovered data
// violates it (possible if the crash interleaved with mining) must be caught
// by the recovery revalidation sweep.
func TestStaleActiveRegistryRevalidatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	// Hand-install an active ASC the data already violates, bypassing the
	// write-path verification, then log the stale image.
	te, _ := db.Catalog().Table("t")
	parsed, err := parseExpression("a < 5")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := bindToTable(parsed, te.Def)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Catalog().AddConstraint(&catalog.Constraint{
		Name: "bogus", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "t", CheckExpr: bound, Confidence: 1, Active: true,
	}); err != nil {
		t.Fatal(err)
	}
	db.SyncSoftRegistry()
	cp := copyDataDir(t, dir)

	rec, rs, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rs.Revalidated == 0 || rs.Invalidated == 0 {
		t.Errorf("revalidation should have run and invalidated: %+v", rs)
	}
	if con := rec.Catalog().ConstraintByName("bogus"); con == nil || con.Active {
		t.Fatalf("stale-active ASC must be deactivated by recovery: %+v", con)
	}
}

// Mined soft state logged via the registry image must survive a crash that
// happens before any checkpoint covers it.
func TestSoftRegistrySurvivesCrashBeforeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT NOT NULL, b INT)")
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, 2*i))
	}
	db.MustExec("ANALYZE t")
	mgr := db.SoftcManager()
	cands, err := mgr.DiscoverTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 2)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallRanges(cands.Ranges); err != nil {
		t.Fatal(err)
	}
	want := renderState(db)
	cp := copyDataDir(t, dir)

	rec, _, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := renderState(rec); got != want {
		t.Errorf("mined registry lost across crash\n%s", firstDiff(want, got))
	}
	if len(rec.Catalog().AllCorrelations()) == 0 {
		t.Error("no correlations recovered")
	}
}

// Zone-map pruning must work identically after recovery: the rebuilt heap
// republishes page synopses and the recovered correlations still introduce
// prune predicates, so a recovered engine skips the same pages a
// never-crashed one does and returns the same rows.
func TestZoneMapPruneParityAfterRecovery(t *testing.T) {
	const n = 3000
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	db.NoIndexes = true
	db.MustExec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)")
	te, _ := db.Catalog().Table("t")
	for i := 0; i < n; i++ {
		b := types.Datum(types.NewInt(int64(i + i%4)))
		if i%97 == 0 {
			b = types.Null
		}
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), b, types.NewInt(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE t")
	mgr := db.SoftcManager()
	cands, err := mgr.DiscoverTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4)); err != nil {
		t.Fatal(err)
	}
	cp := copyDataDir(t, dir)
	_ = db.Close()

	rec, _, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	twin := pruneDB(t, n, true)

	q := "SELECT a, b FROM t WHERE a >= 100 AND a <= 140"
	rr := rec.MustExec(q)
	tr := twin.MustExec(q)
	rio, tio := rr.Ctx.IO.Load(), tr.Ctx.IO.Load()
	if rio.PagesSkipped == 0 {
		t.Fatalf("recovered engine pruned nothing: %+v\n%s", rio, rr.Plan)
	}
	if rio.PagesSkipped != tio.PagesSkipped || rio.PagesRead != tio.PagesRead {
		t.Errorf("prune parity: recovered read=%d skipped=%d, twin read=%d skipped=%d",
			rio.PagesRead, rio.PagesSkipped, tio.PagesRead, tio.PagesSkipped)
	}
	if len(rr.Rows) != len(tr.Rows) {
		t.Fatalf("row parity: recovered %d rows, twin %d", len(rr.Rows), len(tr.Rows))
	}
}

// The plan cache is a volatile structure keyed to a process lifetime; it
// must start cold after recovery and rebuild on demand.
func TestPlanCacheDoesNotSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	q := "SELECT a FROM t WHERE a >= 1"
	db.MustExec(q)
	if res := db.MustExec(q); !res.CacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if db.CachedPlanCount() == 0 {
		t.Fatal("cache should hold the plan pre-crash")
	}
	cp := copyDataDir(t, dir)

	rec, _, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if n := rec.CachedPlanCount(); n != 0 {
		t.Fatalf("plan cache survived recovery: %d entries", n)
	}
	if res := rec.MustExec(q); res.CacheHit {
		t.Error("first post-recovery execution cannot be a cache hit")
	}
	if res := rec.MustExec(q); !res.CacheHit {
		t.Error("plan cache should rebuild after recovery")
	}
}

// --- crash-shape tests -----------------------------------------------------

// A crash mid-commit tears the tail frame; recovery truncates back to the
// last statement boundary and loses at most the in-flight statement.
func TestTornTailLosesOnlyInFlightStatement(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, DurableOptions{SyncPolicy: wal.SyncNone, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("INSERT INTO t VALUES (2)")
	cp := copyDataDir(t, dir)
	_ = db.Close()

	lp := wal.LogPath(cp)
	fi, err := os.Stat(lp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(lp, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec, rs, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatalf("a torn tail must not be fatal: %v", err)
	}
	defer rec.Close()
	if !rs.TailTruncated {
		t.Error("tail truncation should be reported")
	}
	rows, err := rec.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Fatalf("exactly the in-flight statement is lost; got rows %v", rows)
	}
}

// A crash mid-checkpoint (torn snapshot temp file) leaves the previous
// snapshot and the full log intact, so recovery still lands on the correct
// state.
func TestCheckpointTornWriteKeepsConsistency(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Config{WALSnapTornAfter: 4})
	db, _, err := OpenDurable(dir, DurableOptions{
		SyncPolicy: wal.SyncNone, CheckpointEvery: -1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (7)")
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail under the torn-snapshot injector")
	}
	cp := copyDataDir(t, dir)

	rec, rs, err := OpenDurable(cp, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery after torn checkpoint: %v", err)
	}
	defer rec.Close()
	if rs.SnapshotLSN != 0 {
		t.Errorf("no snapshot should have landed: lsn=%d", rs.SnapshotLSN)
	}
	rows, err := rec.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("state after torn checkpoint: %v", rows)
	}
	if _, err := os.Stat(wal.SnapshotPath(cp) + ".tmp"); !os.IsNotExist(err) {
		t.Error("torn snapshot temp file should not linger")
	}
}

// An fsync failure latches the writer: the failing statement reports a
// typed recovery error, reads keep working, and every later mutation fails
// until a restart recovers the valid prefix.
func TestFsyncFailureLatchesMutations(t *testing.T) {
	inj := fault.New(fault.Config{WALSyncFailAt: 1})
	db, _, err := OpenDurable(t.TempDir(), DurableOptions{
		SyncPolicy: wal.SyncAlways, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec("CREATE TABLE t (a INT)")
	qe, ok := exec.AsQueryError(err)
	if !ok || qe.Kind != exec.KindRecovery {
		t.Fatalf("want KindRecovery QueryError, got %v", err)
	}
	// The in-memory application already happened; reads still serve.
	if _, err := db.Query("SELECT a FROM t"); err != nil {
		t.Fatalf("reads must survive a latched WAL: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("mutations must stay failed after the WAL latches")
	}
}

// A log that replays to a different outcome than it recorded is a fatal,
// typed recovery error — silent divergence is never acceptable.
func TestReplayDivergenceIsFatal(t *testing.T) {
	t.Run("row record for missing table", func(t *testing.T) {
		dir := t.TempDir()
		w, err := wal.OpenWriter(wal.LogPath(dir), 1, wal.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := w.Commit([]*wal.Record{
			{Type: wal.TypeInsert, Table: "ghost", Row: types.Row{types.NewInt(1)}},
		}); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, _, err = OpenDurable(dir, DurableOptions{})
		qe, ok := exec.AsQueryError(err)
		if !ok || qe.Kind != exec.KindRecovery {
			t.Fatalf("want fatal KindRecovery, got %v", err)
		}
	})
	t.Run("DDL outcome mismatch", func(t *testing.T) {
		dir := t.TempDir()
		w, err := wal.OpenWriter(wal.LogPath(dir), 1, wal.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Logged as failed, but replay will succeed: divergence.
		if _, _, err := w.Commit([]*wal.Record{
			{Type: wal.TypeDDL, SQL: "CREATE TABLE t (a INT)", Applied: false},
		}); err != nil {
			t.Fatal(err)
		}
		w.Close()
		_, _, err = OpenDurable(dir, DurableOptions{})
		qe, ok := exec.AsQueryError(err)
		if !ok || qe.Kind != exec.KindRecovery {
			t.Fatalf("want fatal KindRecovery, got %v", err)
		}
	})
}
