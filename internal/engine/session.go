package engine

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"softdb/internal/sql"
)

// Settings are the per-statement execution knobs a session may override.
// Zero values mean what they mean on Database (serial, pruning on, batched,
// unlimited budget, no deadline). Settings participate in the plan-cache
// key only where they shape the compiled plan (Parallel, NoPrune, NoBatch);
// the lifecycle knobs (MemBudget, StmtTimeout) act at run time on any
// compiled plan.
type Settings struct {
	// Parallel is the maximum intra-query degree of parallelism; <= 1
	// plans serial operators only.
	Parallel int
	// ParallelMinRows overrides the optimizer's estimated-cardinality
	// threshold for going parallel; 0 means the default.
	ParallelMinRows float64
	// NoPrune disables synopsis-based page pruning end to end.
	NoPrune bool
	// NoBatch disables page-batched row emission.
	NoBatch bool
	// MemBudget caps the bytes of rows a query's blocking operators may
	// buffer; 0 means unlimited.
	MemBudget int64
	// StmtTimeout is the default per-statement deadline applied when the
	// caller's context carries none; 0 means no default deadline.
	StmtTimeout time.Duration
}

// defaultSettings snapshots the Database-level knobs. Like direct field
// access, this reads the config fields without synchronization — set them
// before sharing the database across goroutines.
func (db *Database) defaultSettings() Settings {
	return Settings{
		Parallel:        db.Parallel,
		ParallelMinRows: db.ParallelMinRows,
		NoPrune:         db.NoPrune,
		NoBatch:         db.NoBatch,
		MemBudget:       db.MemBudget,
		StmtTimeout:     db.StmtTimeout,
	}
}

// Session is one client's view of the database: a label that tags the
// session's traces and log lines, plus execution-knob overrides layered
// over the Database defaults. Unset knobs follow the engine default at
// statement time, so a server-wide reconfiguration reaches every session
// that has not pinned its own value. A Session is safe for concurrent use,
// though the network protocol drives it one statement at a time.
//
// In-process callers that use Database.Exec/ExecCtx directly are
// unaffected by sessions: those paths run with the Database defaults.
type Session struct {
	db    *Database
	label string

	mu sync.Mutex
	// cur is the open explicit transaction (BEGIN..COMMIT/ROLLBACK), nil
	// between transactions. Statements on the session read from its
	// snapshot and stage writes into it.
	cur *Tx
	// Overrides; nil means "inherit the database default".
	parallel    *int
	noPrune     *bool
	noBatch     *bool
	memBudget   *int64
	stmtTimeout *time.Duration
}

// NewSession returns a session labeled label (e.g. "conn-3") with no
// overrides.
func (db *Database) NewSession(label string) *Session {
	return &Session{db: db, label: label}
}

// Label returns the session's trace/log tag.
func (s *Session) Label() string { return s.label }

// Database returns the underlying database.
func (s *Session) Database() *Database { return s.db }

// current returns the session's open explicit transaction, or nil.
func (s *Session) current() *Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// takeCurrent detaches and returns the open transaction (nil when none):
// COMMIT/ROLLBACK claim it so the session is immediately reusable even if
// finishing the transaction errors.
func (s *Session) takeCurrent() *Tx {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := s.cur
	s.cur = nil
	return tx
}

// InTxn reports whether an explicit transaction is open on the session.
func (s *Session) InTxn() bool { return s.current() != nil }

// Close releases the session, rolling back any transaction left open — a
// dropped connection must not leave write intents behind. Idempotent.
func (s *Session) Close() {
	if tx := s.takeCurrent(); tx != nil {
		s.db.rollbackTx(tx)
	}
}

// Settings resolves the session's effective settings: the database
// defaults with this session's overrides applied.
func (s *Session) Settings() Settings {
	st := s.db.defaultSettings()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parallel != nil {
		st.Parallel = *s.parallel
	}
	if s.noPrune != nil {
		st.NoPrune = *s.noPrune
	}
	if s.noBatch != nil {
		st.NoBatch = *s.noBatch
	}
	if s.memBudget != nil {
		st.MemBudget = *s.memBudget
	}
	if s.stmtTimeout != nil {
		st.StmtTimeout = *s.stmtTimeout
	}
	return st
}

// parseOnOff reads a boolean setting value.
func parseOnOff(value string) (bool, error) {
	switch value {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("engine: boolean setting wants on/off, got %q", value)
}

// Set assigns one session setting by name. The names mirror the CLI flags:
//
//	parallel    N          maximum intra-query degree of parallelism
//	prune       on|off     synopsis-based page pruning
//	batch       on|off     page-batched row emission
//	mem_budget  BYTES      per-query buffered-row budget (0 = unlimited)
//	timeout     DURATION   per-statement deadline (0 = none)
//
// The special value "default" clears the override so the knob follows the
// database default again. Unknown names and unparseable values error
// without changing anything.
func (s *Session) Set(name, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reset := value == "default"
	switch name {
	case "parallel":
		if reset {
			s.parallel = nil
			return nil
		}
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("engine: setting parallel wants a non-negative integer, got %q", value)
		}
		s.parallel = &n
	case "prune":
		if reset {
			s.noPrune = nil
			return nil
		}
		on, err := parseOnOff(value)
		if err != nil {
			return err
		}
		off := !on
		s.noPrune = &off
	case "batch":
		if reset {
			s.noBatch = nil
			return nil
		}
		on, err := parseOnOff(value)
		if err != nil {
			return err
		}
		off := !on
		s.noBatch = &off
	case "mem_budget":
		if reset {
			s.memBudget = nil
			return nil
		}
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("engine: setting mem_budget wants bytes, got %q", value)
		}
		s.memBudget = &n
	case "timeout":
		if reset {
			s.stmtTimeout = nil
			return nil
		}
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return fmt.Errorf("engine: setting timeout wants a duration like 500ms, got %q", value)
		}
		s.stmtTimeout = &d
	default:
		return fmt.Errorf("engine: unknown setting %q (want parallel, prune, batch, mem_budget, timeout)", name)
	}
	return nil
}

// Describe renders the effective settings, marking overridden knobs, for
// the shell's \set display and for tests.
func (s *Session) Describe() []string {
	st := s.Settings()
	s.mu.Lock()
	defer s.mu.Unlock()
	mark := func(overridden bool) string {
		if overridden {
			return " (session)"
		}
		return ""
	}
	onOff := func(off bool) string {
		if off {
			return "off"
		}
		return "on"
	}
	return []string{
		fmt.Sprintf("parallel = %d%s", st.Parallel, mark(s.parallel != nil)),
		fmt.Sprintf("prune = %s%s", onOff(st.NoPrune), mark(s.noPrune != nil)),
		fmt.Sprintf("batch = %s%s", onOff(st.NoBatch), mark(s.noBatch != nil)),
		fmt.Sprintf("mem_budget = %d%s", st.MemBudget, mark(s.memBudget != nil)),
		fmt.Sprintf("timeout = %s%s", st.StmtTimeout, mark(s.stmtTimeout != nil)),
	}
}

// ExecCtx parses and executes one statement under the session's effective
// settings, with the statement text as the plan-cache key (repeated
// session statements exercise the cache like REPL input).
func (s *Session) ExecCtx(ctx context.Context, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtCtx(ctx, stmt, query)
}

// ExecStmtCtx executes a parsed statement under the session's effective
// settings; see Database.ExecStmtCtx for the locking and lifecycle rules.
func (s *Session) ExecStmtCtx(ctx context.Context, stmt sql.Statement, cacheKey string) (*Result, error) {
	return s.db.execStmtCtx(ctx, stmt, cacheKey, s.Settings(), s)
}
