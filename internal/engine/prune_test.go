package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/softc"
	"softdb/internal/types"
)

// pruneDB builds a table clustered on col a with b = a + small noise (an
// absolute linear correlation the miner will find), NULLs sprinkled into b.
func pruneDB(t *testing.T, n int, mine bool) *Database {
	t.Helper()
	db := Open()
	db.NoIndexes = true
	db.MustExec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)")
	te, _ := db.Catalog().Table("t")
	for i := 0; i < n; i++ {
		b := types.Datum(types.NewInt(int64(i + i%4)))
		if i%97 == 0 {
			b = types.Null
		}
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), b, types.NewInt(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE t")
	if mine {
		mgr := softc.NewManager(db.Catalog())
		cands, err := mgr.DiscoverTable("t")
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPruneSelectiveScan: a selective range over the clustered column skips
// most pages, returns exactly the rows an unpruned scan returns, and the
// skip counts surface in the result counters, EXPLAIN ANALYZE, the query
// trace, and the metrics registry.
func TestPruneSelectiveScan(t *testing.T) {
	db := pruneDB(t, 4000, false)
	q := "SELECT a, b FROM t WHERE a >= 100 AND a <= 140"
	res := db.MustExec(q)
	io := res.Ctx.IO.Load()
	if io.PagesSkipped == 0 {
		t.Fatalf("selective scan should skip pages: %+v", io)
	}
	db.NoPrune = true
	base := db.MustExec(q)
	db.NoPrune = false
	bio := base.Ctx.IO.Load()
	if bio.PagesSkipped != 0 {
		t.Fatalf("NoPrune scan skipped pages: %+v", bio)
	}
	if io.PagesRead+io.PagesSkipped != bio.PagesRead {
		t.Fatalf("page accounting: read %d + skipped %d != total %d",
			io.PagesRead, io.PagesSkipped, bio.PagesRead)
	}
	if got, want := sortedKeys(res.Rows), sortedKeys(base.Rows); len(got) != len(want) {
		t.Fatalf("pruned scan returned %d rows, unpruned %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
			}
		}
	}
	// Selectivity: a 41-of-4000 range must read well under a quarter of the
	// pages (the P2 acceptance bar).
	if 4*io.PagesRead > bio.PagesRead {
		t.Errorf("pruned scan read %d of %d pages; want <= 25%%", io.PagesRead, bio.PagesRead)
	}

	// EXPLAIN ANALYZE renders skip counts per node and in the footer.
	ea := db.MustExec("EXPLAIN ANALYZE " + q)
	var out strings.Builder
	for _, r := range ea.Rows {
		out.WriteString(r[0].String())
		out.WriteByte('\n')
	}
	text := out.String()
	if !strings.Contains(text, "skipped=") || !strings.Contains(text, "prune=") {
		t.Errorf("EXPLAIN ANALYZE missing per-node skip figures:\n%s", text)
	}
	if !strings.Contains(text, "skipped:") {
		t.Errorf("EXPLAIN ANALYZE missing footer skip count:\n%s", text)
	}

	// The trace ring and the metrics registry both carry the counts.
	traces := db.QueryLog().Recent(16)
	found := false
	for _, tr := range traces {
		if tr.SQL == q && tr.PagesSkipped > 0 {
			found = true
			if !strings.Contains(tr.Render(), "skipped=") {
				t.Errorf("trace render missing skipped: %s", tr.Render())
			}
		}
	}
	if !found {
		t.Error("no trace recorded a positive PagesSkipped")
	}
	if v := db.Metrics().Counter("softdb_scan_pages_skipped_total").Value(); v == 0 {
		t.Error("softdb_scan_pages_skipped_total not incremented")
	}
	var buf bytes.Buffer
	if err := db.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "softdb_scan_pages_skipped_total") {
		t.Error("metrics dump missing softdb_scan_pages_skipped_total")
	}
}

// TestPruneOverheadUnselective: synopsis checks on a full scan that can
// prune nothing must not change what the scan reads — zero skips, full
// pages, identical rows. (Wall-clock overhead is guarded by
// BenchmarkP2PruneOverhead.)
func TestPruneOverheadUnselective(t *testing.T) {
	db := pruneDB(t, 4000, false)
	q := "SELECT a FROM t WHERE c >= 0" // c is unclustered and always >= 0
	res := db.MustExec(q)
	io := res.Ctx.IO.Load()
	if io.PagesSkipped != 0 {
		t.Fatalf("unselective scan should not skip: %+v", io)
	}
	db.NoPrune = true
	base := db.MustExec(q)
	db.NoPrune = false
	if bio := base.Ctx.IO.Load(); bio.PagesRead != io.PagesRead || len(base.Rows) != len(res.Rows) {
		t.Fatalf("unselective scan diverged: pruned %+v/%d rows, baseline %+v/%d rows",
			io, len(res.Rows), bio, len(base.Rows))
	}
}

// TestPruneCorrelationDerived: an absolute mined correlation lets the
// rewriter plant a prune-only predicate on the twinned column; a violating
// write deactivates the correlation and the derived pruning provably stops
// — the replanned query carries no prune-introduction event and no derived
// prune predicate in its plan.
func TestPruneCorrelationDerived(t *testing.T) {
	db := pruneDB(t, 4000, true)
	// Filter on b only: the correlation b ~ a plants a derived prune
	// interval on a (no indexes exist, so predicate introduction proper is
	// rejected and the prune-only path fires).
	q := "SELECT a FROM t WHERE b >= 200 AND b <= 240"
	res := db.MustExec(q)
	applied := false
	for _, e := range res.Events {
		if e.Rule == "prune-introduction" && e.Applied {
			applied = true
		}
	}
	if !applied {
		t.Fatalf("expected an applied prune-introduction event; events: %v", res.Events)
	}
	if !strings.Contains(res.Plan, "prune=") {
		t.Fatalf("plan should show the derived prune predicate:\n%s", res.Plan)
	}
	if io := res.Ctx.IO.Load(); io.PagesSkipped == 0 {
		t.Fatalf("derived+filter pruning should skip pages: %+v", io)
	}

	// Violate the correlation's envelope: b wildly off the line for a known
	// a. The write-path check deactivates the ASC synchronously.
	ins := db.MustExec("INSERT INTO t VALUES (100, 999999, 0)")
	dropped := false
	for _, n := range ins.Notices {
		if strings.Contains(n, "deactivated by violating write") {
			dropped = true
		}
	}
	if !dropped {
		t.Fatalf("violating insert should deactivate the correlation; notices: %v", ins.Notices)
	}
	// Replan: the derived prune predicate must be gone.
	res2 := db.MustExec(q)
	for _, e := range res2.Events {
		if e.Rule == "prune-introduction" && e.Applied {
			t.Fatalf("prune-introduction still fires after ASC violation: %v", e)
		}
	}
	if strings.Contains(res2.Plan, "prune=") {
		t.Fatalf("plan still carries a derived prune predicate after violation:\n%s", res2.Plan)
	}
	// Answers still match an unpruned run.
	db.NoPrune = true
	base := db.MustExec(q)
	db.NoPrune = false
	if len(res2.Rows) != len(base.Rows) {
		t.Fatalf("row count after violation: %d vs unpruned %d", len(res2.Rows), len(base.Rows))
	}
}

// TestPruneSSCBelowFloor: a statistical constraint must never prune — the
// refusal is recorded as a below-floor rejection event and counted in the
// per-reason metric.
func TestPruneSSCBelowFloor(t *testing.T) {
	db := Open()
	db.NoIndexes = true
	db.MustExec(`CREATE TABLE orders (
		id INT PRIMARY KEY,
		placed INT NOT NULL,
		shipped INT,
		CONSTRAINT lag CHECK (shipped <= placed + 7) SOFT STATISTICAL CONFIDENCE 0.95)`)
	for i := 0; i < 500; i++ {
		lag := i % 5
		if i%50 == 0 {
			lag = 30
		}
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)", i, i, i+lag))
	}
	db.MustExec("ANALYZE orders")
	res := db.MustExec("SELECT id FROM orders WHERE placed >= 100 AND placed <= 120")
	rejected := false
	for _, e := range res.Events {
		if e.Rule == "prune-introduction" && !e.Applied && e.Reason == "below-floor" {
			rejected = true
		}
	}
	if !rejected {
		t.Fatalf("expected a below-floor prune rejection; events: %v", res.Events)
	}
	if v := db.Metrics().Counter("softdb_prune_rejected_total", "reason", "below-floor").Value(); v == 0 {
		t.Error("softdb_prune_rejected_total{reason=below-floor} not incremented")
	}
}

// holesDB builds an orders ⋈ lineitem pair where orders with
// amount ∈ [400, 999] have no lineitems in the queried quantity band, and
// registers the corresponding interior hole. The hole spans several whole
// heap pages of the amount-clustered orders table (168 rows/page at this
// schema), so exclusion pruning has pages to skip.
func holesDB(t *testing.T) (*Database, *catalog.JoinHoles) {
	t.Helper()
	db := Open()
	db.NoIndexes = true
	db.MustExec("CREATE TABLE orders (oid INT NOT NULL, amount INT NOT NULL)")
	db.MustExec("CREATE TABLE lineitem (oid INT NOT NULL, qty INT NOT NULL)")
	oe, _ := db.Catalog().Table("orders")
	le, _ := db.Catalog().Table("lineitem")
	for i := 0; i < 2000; i++ {
		amount := int64(i) // clustered
		if err := db.InsertRow(oe, types.Row{types.NewInt(int64(i)), types.NewInt(amount)}); err != nil {
			t.Fatal(err)
		}
	}
	// Lineitem is inserted in a scattered order so every one of its pages
	// mixes small and large quantities: the query's qty filter can then
	// prune nothing on lineitem, leaving the interior hole as the ONLY
	// prune source in the join (it targets the orders side).
	for j := 0; j < 2000; j++ {
		i := (j*7 + 13) % 2000 // gcd(7, 2000) = 1: a permutation
		qty := int64(i % 50)
		if i >= 400 && i < 1000 {
			qty += 1000 // hole: these orders' lineitems live outside qty [0,100]
		}
		if err := db.InsertRow(le, types.Row{types.NewInt(int64(i)), types.NewInt(qty)}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE orders")
	db.MustExec("ANALYZE lineitem")
	jh := &catalog.JoinHoles{
		Name: "oh", LeftTable: "orders", RightTable: "lineitem",
		JoinLeft: "oid", JoinRight: "oid", AttrLeft: "amount", AttrRight: "qty",
		Holes: []catalog.Rect{{
			A: expr.Between(types.NewInt(400), types.NewInt(999), true, true),
			B: expr.Between(types.NewInt(0), types.NewInt(100), true, true),
		}},
	}
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		t.Fatal(err)
	}
	return db, jh
}

// TestPruneHoleRetirement: an interior join hole is pure prune signal — the
// range rewrite cannot split the scan interval, but pages wholly inside the
// hole's extent are skipped. Retiring the hole with a violating write stops
// the pruning entirely (skipped drops to zero, full scan), the §4.3
// fallback made observable.
func TestPruneHoleRetirement(t *testing.T) {
	db, jh := holesDB(t)
	// qty band inside the hole's B extent; amount unconstrained, so the
	// hole is interior (nothing to trim) and exclusion pruning is the ONLY
	// prune source on the orders scan.
	q := "SELECT orders.oid FROM orders, lineitem WHERE orders.oid = lineitem.oid AND lineitem.qty >= 10 AND lineitem.qty <= 90"
	res := db.MustExec(q)
	io := res.Ctx.IO.Load()
	if io.PagesSkipped == 0 {
		t.Fatalf("interior hole should skip orders pages: %+v\nplan:\n%s", io, res.Plan)
	}
	planted := false
	for _, e := range res.Events {
		if e.Rule == "prune-introduction" && e.Applied && e.Constraint == "oh" {
			planted = true
		}
	}
	if !planted {
		t.Fatalf("expected a hole prune-introduction event; events: %v", res.Events)
	}
	db.NoPrune = true
	base := db.MustExec(q)
	db.NoPrune = false
	if got, want := sortedKeys(res.Rows), sortedKeys(base.Rows); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("hole pruning changed answers: %d vs %d rows", len(got), len(want))
	}

	// Runtime check: mutate the hole set in place (as a concurrent retire
	// would, before any plan is invalidated). The planted predicate must
	// self-disable at the next scan — zero skips even on the same plan.
	savedHoles := jh.Holes
	jh.Holes = nil
	resLive := db.MustExec(q)
	if lio := resLive.Ctx.IO.Load(); lio.PagesSkipped != 0 {
		t.Fatalf("prune predicate survived hole removal: %+v", lio)
	}
	jh.Holes = savedHoles

	// §4.3 retirement through the write path: a lineitem row landing inside
	// the hole's B extent retires the rectangle and bumps the catalog.
	ins := db.MustExec("INSERT INTO lineitem VALUES (450, 50)")
	retired := false
	for _, n := range ins.Notices {
		if strings.Contains(n, "holes retired") {
			retired = true
		}
	}
	if !retired {
		t.Fatalf("violating insert should retire the hole; notices: %v", ins.Notices)
	}
	res2 := db.MustExec(q)
	if io2 := res2.Ctx.IO.Load(); io2.PagesSkipped != 0 {
		t.Fatalf("pruning should stop after hole retirement: %+v", io2)
	}
	for _, e := range res2.Events {
		if e.Rule == "prune-introduction" && e.Applied {
			t.Fatalf("prune-introduction still fires after retirement: %v", e)
		}
	}
	// The new row joins: oid 450 with qty 50 now matches.
	found := false
	for _, r := range res2.Rows {
		if r[0].Int() == 450 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-retirement scan missed the row the hole would have hidden")
	}
}
