package engine

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"testing"

	"softdb/internal/storage"
	"softdb/internal/types"
)

// TestConcurrentSessions hammers one Database from many goroutines mixing
// DDL, DML, and SELECT — the workload the RWMutex-guarded engine claims to
// survive. Run under -race this is the engine's concurrency proof: no torn
// catalog state, every statement either succeeds or returns a real error,
// and cache statistics only grow. Each writer owns a private id range so
// primary-key conflicts cannot mask synchronization bugs.
func TestConcurrentSessions(t *testing.T) {
	db := Open()
	db.Parallel = 4
	db.ParallelMinRows = 1
	runConcurrentSessions(t, db)
}

// TestConcurrentSessionsTraced re-runs the same stress mix with
// per-operator tracing on, a structured logger attached, and a 1ns
// slow-query threshold (so every query takes the slow path) — under -race
// this is the observability layer's concurrency proof.
func TestConcurrentSessionsTraced(t *testing.T) {
	db := Open()
	db.Parallel = 4
	db.ParallelMinRows = 1
	db.SetTracing(true)
	db.SetSlowQueryThreshold(1)
	db.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	runConcurrentSessions(t, db)
	if got := db.Metrics().Counter(mQueries).Value(); got == 0 {
		t.Error("queries counter stayed zero under stress")
	}
	if got := db.Metrics().Counter(mSlowQueries).Value(); got == 0 {
		t.Error("slow-queries counter stayed zero with a 1ns threshold")
	}
	if len(db.QueryLog().Recent(0)) == 0 {
		t.Error("query log empty after stress")
	}
}

func runConcurrentSessions(t *testing.T, db *Database) {
	t.Helper()
	db.MustExec("CREATE TABLE s (id INT PRIMARY KEY, v INT, w INT)")
	db.MustExec("CREATE INDEX sv ON s (v)")
	// Seed rows so readers have something to chew on from the start.
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO s VALUES (%d, %d, %d)", i, i%37, i%11))
	}
	db.MustExec("ANALYZE s")

	const (
		writers   = 4
		readers   = 4
		ddlers    = 2
		iters     = 120
		idsPerGor = 100000 // private id space per writer
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers+ddlers)

	// Writers: inserts, updates, deletes within a private key range.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + g)))
			base := (g + 1) * idsPerGor
			next := base
			for i := 0; i < iters; i++ {
				switch r.Intn(4) {
				case 0, 1:
					if _, err := db.Exec(fmt.Sprintf("INSERT INTO s VALUES (%d, %d, %d)",
						next, r.Intn(37), r.Intn(11))); err != nil {
						errCh <- fmt.Errorf("writer %d insert: %w", g, err)
						return
					}
					next++
				case 2:
					if next == base {
						continue
					}
					id := base + r.Intn(next-base)
					if _, err := db.Exec(fmt.Sprintf("UPDATE s SET v = %d WHERE id = %d",
						r.Intn(37), id)); err != nil {
						errCh <- fmt.Errorf("writer %d update: %w", g, err)
						return
					}
				default:
					if next == base {
						continue
					}
					id := base + r.Intn(next-base)
					if _, err := db.Exec(fmt.Sprintf("DELETE FROM s WHERE id = %d", id)); err != nil {
						errCh <- fmt.Errorf("writer %d delete: %w", g, err)
						return
					}
				}
			}
		}(g)
	}

	// Readers: selects (serial and parallel plans), EXPLAIN, stats reads.
	// Cache hit+miss totals must be monotone across observations.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(2000 + g)))
			var lastTotal int64
			for i := 0; i < iters; i++ {
				switch r.Intn(4) {
				case 0:
					if _, err := db.Query(fmt.Sprintf("SELECT id, v FROM s WHERE v >= %d", r.Intn(37))); err != nil {
						errCh <- fmt.Errorf("reader %d select: %w", g, err)
						return
					}
				case 1:
					if _, err := db.Query("SELECT v, COUNT(*) AS n FROM s GROUP BY v"); err != nil {
						errCh <- fmt.Errorf("reader %d agg: %w", g, err)
						return
					}
				case 2:
					if _, err := db.Exec(fmt.Sprintf("EXPLAIN SELECT * FROM s WHERE w = %d", r.Intn(11))); err != nil {
						errCh <- fmt.Errorf("reader %d explain: %w", g, err)
						return
					}
				default:
					st := db.CacheStats()
					total := st.Hits + st.Misses
					if total < lastTotal {
						errCh <- fmt.Errorf("reader %d: cache hit+miss went backwards: %d -> %d", g, lastTotal, total)
						return
					}
					lastTotal = total
					db.WorkloadColumnCounts()
					db.CachedPlanCount()
				}
			}
		}(g)
	}

	// DDLers: create private tables/indexes, insert, analyze, query, drop.
	for g := 0; g < ddlers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				tbl := fmt.Sprintf("tmp_%d_%d", g, i)
				stmts := []string{
					fmt.Sprintf("CREATE TABLE %s (a INT NOT NULL, b INT)", tbl),
					fmt.Sprintf("INSERT INTO %s VALUES (1, 2)", tbl),
					fmt.Sprintf("INSERT INTO %s VALUES (3, 4)", tbl),
					fmt.Sprintf("CREATE INDEX ix_%s ON %s (a)", tbl, tbl),
					fmt.Sprintf("ANALYZE %s", tbl),
					fmt.Sprintf("SELECT a, b FROM %s WHERE a > 0", tbl),
					fmt.Sprintf("DROP TABLE %s", tbl),
				}
				for _, q := range stmts {
					if _, err := db.Exec(q); err != nil {
						errCh <- fmt.Errorf("ddler %d: %s: %w", g, q, err)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The catalog must not be torn: s is intact, every tmp table is gone,
	// the heap row count matches a full scan, and the v-index agrees.
	te, err := db.Catalog().Table("s")
	if err != nil {
		t.Fatalf("table s lost: %v", err)
	}
	for _, name := range db.Catalog().TableNames() {
		if len(name) >= 4 && name[:4] == "tmp_" {
			t.Errorf("leftover table %s", name)
		}
	}
	rows, err := db.Query("SELECT id FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != te.Heap.RowCount() {
		t.Fatalf("scan sees %d rows, heap reports %d", len(rows), te.Heap.RowCount())
	}
	seen := map[int64]bool{}
	for _, row := range rows {
		if seen[row[0].Int()] {
			t.Fatalf("duplicate primary key %d after stress", row[0].Int())
		}
		seen[row[0].Int()] = true
	}
	// Index consistency: after vacuum reclaims dead versions and sweeps
	// their entries, the v-index holds exactly one entry per live row.
	db.Vacuum()
	count := 0
	te.Indexes[0].Tree.Ascend(nil, func(_ types.Row, _ storage.RowID) bool {
		count++
		return true
	})
	if count != len(rows) {
		t.Fatalf("v-index has %d entries, heap has %d rows", count, len(rows))
	}
}
