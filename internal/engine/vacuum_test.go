package engine

import (
	"fmt"
	"testing"
	"time"

	"softdb/internal/storage"
	"softdb/internal/types"
)

// TestBackgroundVacuumBoundsDeadVersions drives a sustained update load
// with StartVacuum ticking underneath and checks that dead versions do
// not accumulate without bound: the high-water mark stays far below the
// total number of versions the workload sheds, and a final settle drains
// the backlog to (near) zero.
func TestBackgroundVacuumBoundsDeadVersions(t *testing.T) {
	db := Open()
	db.MustExec("CREATE TABLE hot (id INT PRIMARY KEY, v INT)")
	const rows = 50
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO hot VALUES (%d, 0)", i))
	}
	stop := db.StartVacuum(5 * time.Millisecond)
	defer stop()

	const rounds = 60
	var maxDead int64
	for r := 1; r <= rounds; r++ {
		db.MustExec(fmt.Sprintf("UPDATE hot SET v = %d", r))
		// Pace the load so ticks interleave with it: the bound under test
		// is steady-state behavior, not a race against a burst.
		time.Sleep(2 * time.Millisecond)
		if d := countDead(t, db, "hot"); d > maxDead {
			maxDead = d
		}
	}
	// The workload shed rows*rounds versions in total. Without the
	// background vacuum they would all still be resident; with it the
	// high-water mark must stay well below that (a few intervals' worth).
	shed := int64(rows * rounds)
	if maxDead >= shed/2 {
		t.Fatalf("dead versions not bounded: high-water %d of %d shed", maxDead, shed)
	}
	// After the load stops, a couple of ticks drain the backlog entirely.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d := countDead(t, db, "hot"); d == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("backlog did not drain: %d dead versions remain", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := db.Metrics().Counter(mVacuumReclaimed).Value(); got < shed {
		t.Fatalf("vacuum reclaimed %d versions, want >= %d", got, shed)
	}
	if db.Metrics().Counter(mVacuumRuns).Value() == 0 {
		t.Fatal("vacuum runs counter never moved")
	}
}

// TestStartVacuumZeroIntervalIsOff documents the flag default: interval 0
// installs nothing and the stop function is a no-op.
func TestStartVacuumZeroIntervalIsOff(t *testing.T) {
	db := Open()
	stop := db.StartVacuum(0)
	stop()
	stop() // double-stop is safe
}

func countDead(t *testing.T, db *Database, table string) int64 {
	t.Helper()
	db.mu.RLock()
	te, err := db.cat.Table(table)
	db.mu.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	te.Heap.ScanVersions(func(storage.RowID, types.Row) bool {
		total++
		return true
	})
	return total - te.Heap.RowCount()
}
