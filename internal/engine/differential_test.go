package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/mining"
	"softdb/internal/softc"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// The differential tests run randomly generated queries through the full
// parse→rewrite→optimize→execute pipeline — with indexes created and mined
// soft constraints installed, so every rewrite rule is armed — and compare
// against brute-force evaluation over the raw rows. Any divergence is a
// soundness bug in the planner, the rewriter, or the executor.

// diffDB builds a table with correlated columns, NULLs, and duplicates —
// the shapes that trip up rewrites — plus mined soft constraints and an
// index.
func diffDB(t *testing.T, seed int64, n int) (*Database, []types.Row) {
	t.Helper()
	db := Open()
	db.DisablePlanCache = true
	db.MustExec(`CREATE TABLE t (
		a INT NOT NULL,
		b INT,
		c INT,
		d FLOAT)`)
	r := rand.New(rand.NewSource(seed))
	te, _ := db.Catalog().Table("t")
	var raw []types.Row
	for i := 0; i < n; i++ {
		a := int64(r.Intn(50))
		b := types.Datum(types.NewInt(a + int64(r.Intn(5)))) // correlated with a
		if r.Intn(10) == 0 {
			b = types.Null
		}
		c := types.NewInt(int64(r.Intn(10)))
		row := types.Row{types.NewInt(a), b, c, types.NewFloat(float64(r.Intn(100)) / 4)}
		validated, err := te.Def.ValidateRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.InsertRow(te, validated); err != nil {
			t.Fatal(err)
		}
		raw = append(raw, validated)
	}
	db.MustExec("CREATE INDEX idx_a ON t (a)")
	db.MustExec("ANALYZE t")
	// Arm the rewriter with mined (true) soft constraints.
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallRanges(cands.Ranges); err != nil {
		t.Fatal(err)
	}
	mgr.FDs = mining.FDMinerConfig{MaxLHS: 1, MinConfidence: 1}
	return db, raw
}

// randPred builds a random predicate over columns a(0), b(1), c(2), d(3).
func randPred(r *rand.Rand, depth int) expr.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return randLeaf(r)
	}
	switch r.Intn(4) {
	case 0:
		return expr.NewBinary(expr.OpAnd, randPred(r, depth-1), randPred(r, depth-1))
	case 1:
		return expr.NewBinary(expr.OpOr, randPred(r, depth-1), randPred(r, depth-1))
	case 2:
		return expr.NewUnary(expr.OpNot, randPred(r, depth-1))
	default:
		return randLeaf(r)
	}
}

var diffCols = []struct {
	name string
	kind types.Kind
}{
	{"a", types.KindInt}, {"b", types.KindInt}, {"c", types.KindInt}, {"d", types.KindFloat},
}

func randLeaf(r *rand.Rand) expr.Expr {
	ci := r.Intn(len(diffCols))
	col := expr.NewColumn("", diffCols[ci].name, -1, types.KindNull)
	switch r.Intn(6) {
	case 0:
		return expr.NewUnary(expr.OpIsNull, col)
	case 1:
		return expr.NewUnary(expr.OpIsNotNull, col)
	case 2:
		// IN list.
		var list []expr.Expr
		for i := 0; i < 1+r.Intn(3); i++ {
			list = append(list, expr.NewConst(types.NewInt(int64(r.Intn(60)))))
		}
		return expr.NewInList(col, list)
	case 3:
		// Column-to-column comparison.
		other := expr.NewColumn("", diffCols[r.Intn(len(diffCols))].name, -1, types.KindNull)
		return expr.NewBinary(randCmpOp(r), col, other)
	default:
		var v expr.Expr
		if diffCols[ci].kind == types.KindFloat {
			v = expr.NewConst(types.NewFloat(float64(r.Intn(100)) / 4))
		} else {
			v = expr.NewConst(types.NewInt(int64(r.Intn(60))))
		}
		return expr.NewBinary(randCmpOp(r), col, v)
	}
}

func randCmpOp(r *rand.Rand) expr.Op {
	return [...]expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}[r.Intn(6)]
}

// referenceFilter evaluates the predicate directly against the raw rows.
func referenceFilter(t *testing.T, db *Database, raw []types.Row, pred expr.Expr) []types.Row {
	t.Helper()
	te, _ := db.Catalog().Table("t")
	bound, err := bindToTable(pred, te.Def)
	if err != nil {
		t.Fatalf("reference bind: %v", err)
	}
	var out []types.Row
	for _, row := range raw {
		ok, err := expr.EvalBool(bound, row)
		if err != nil {
			t.Fatalf("reference eval: %v", err)
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func sortedKeys(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func TestDifferentialFilters(t *testing.T) {
	db, raw := diffDB(t, 77, 400)
	r := rand.New(rand.NewSource(78))
	for trial := 0; trial < 300; trial++ {
		pred := randPred(r, 3)
		sel := &sql.Select{
			Items: []sql.SelectItem{{Star: true}},
			From:  []sql.TableRef{{Table: "t"}},
			Where: pred,
			Limit: -1,
		}
		res, err := db.ExecStmt(sel, "")
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, pred, err)
		}
		want := referenceFilter(t, db, raw, pred)
		got := sortedKeys(res.Rows)
		exp := sortedKeys(want)
		if len(got) != len(exp) {
			t.Fatalf("trial %d: %s: got %d rows, want %d\nplan:\n%s",
				trial, pred, len(got), len(exp), res.Plan)
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("trial %d: %s: row %d differs: %s vs %s\nplan:\n%s",
					trial, pred, i, got[i], exp[i], res.Plan)
			}
		}
	}
}

func TestDifferentialAggregates(t *testing.T) {
	db, raw := diffDB(t, 81, 300)
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		pred := randPred(r, 2)
		groupCol := diffCols[r.Intn(3)].name // int columns only
		aggCol := diffCols[r.Intn(len(diffCols))].name
		q := fmt.Sprintf(
			"SELECT %s, COUNT(*) AS n, SUM(%s) AS s, MIN(%s) AS lo, MAX(%s) AS hi FROM t GROUP BY %s",
			groupCol, aggCol, aggCol, aggCol, groupCol)
		sel, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		sel.(*sql.Select).Where = pred
		res, err := db.ExecStmt(sel, "")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference aggregation.
		te, _ := db.Catalog().Table("t")
		gOrd := te.Def.ColumnIndex(groupCol)
		aOrd := te.Def.ColumnIndex(aggCol)
		type agg struct {
			n      int64
			sum    float64
			sawSum bool
			min    types.Datum
			max    types.Datum
		}
		ref := map[string]*agg{}
		for _, row := range referenceFilter(t, db, raw, pred) {
			k := types.Row{row[gOrd]}.Key()
			a := ref[k]
			if a == nil {
				a = &agg{min: types.Null, max: types.Null}
				ref[k] = a
			}
			a.n++
			v := row[aOrd]
			if v.IsNull() {
				continue
			}
			a.sum += v.Float()
			a.sawSum = true
			if a.min.IsNull() || v.Compare(a.min) < 0 {
				a.min = v
			}
			if a.max.IsNull() || v.Compare(a.max) > 0 {
				a.max = v
			}
		}
		if len(res.Rows) != len(ref) {
			t.Fatalf("trial %d: %d groups, want %d (pred %s)", trial, len(res.Rows), len(ref), pred)
		}
		for _, row := range res.Rows {
			k := types.Row{row[0]}.Key()
			a := ref[k]
			if a == nil {
				t.Fatalf("trial %d: unexpected group %s", trial, row[0])
			}
			if row[1].Int() != a.n {
				t.Fatalf("trial %d group %s: count %d want %d", trial, row[0], row[1].Int(), a.n)
			}
			if a.sawSum {
				if row[2].IsNull() || row[2].Float() != a.sum {
					t.Fatalf("trial %d group %s: sum %s want %g", trial, row[0], row[2], a.sum)
				}
				if row[3].Compare(a.min) != 0 || row[4].Compare(a.max) != 0 {
					t.Fatalf("trial %d group %s: min/max %s/%s want %s/%s",
						trial, row[0], row[3], row[4], a.min, a.max)
				}
			} else if !row[2].IsNull() {
				t.Fatalf("trial %d group %s: sum should be NULL", trial, row[0])
			}
		}
	}
}

func TestDifferentialJoins(t *testing.T) {
	db, raw := diffDB(t, 91, 200)
	db.MustExec("CREATE TABLE u (k INT NOT NULL, w INT)")
	ue, _ := db.Catalog().Table("u")
	r := rand.New(rand.NewSource(92))
	var uraw []types.Row
	for i := 0; i < 100; i++ {
		row := types.Row{types.NewInt(int64(r.Intn(50))), types.NewInt(int64(r.Intn(20)))}
		if err := db.InsertRow(ue, row); err != nil {
			t.Fatal(err)
		}
		uraw = append(uraw, row)
	}
	db.MustExec("ANALYZE u")
	for trial := 0; trial < 60; trial++ {
		lo := r.Intn(40)
		hi := lo + r.Intn(15)
		wLimit := int64(5 + r.Intn(15))
		q := fmt.Sprintf(
			"SELECT t.a, t.c, u.w FROM t, u WHERE t.a = u.k AND t.a >= %d AND t.a <= %d AND u.w < %d",
			lo, hi, wLimit)
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference nested loops.
		var want []string
		for _, tr := range raw {
			a := tr[0].Int()
			if a < int64(lo) || a > int64(hi) {
				continue
			}
			for _, ur := range uraw {
				if ur[0].Int() == a && !ur[1].IsNull() && ur[1].Int() < wLimit {
					want = append(want, types.Row{tr[0], tr[2], ur[1]}.String())
				}
			}
		}
		sort.Strings(want)
		got := sortedKeys(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s: %d rows want %d\nplan:\n%s", trial, q, len(got), len(want), res.Plan)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %d: %s vs %s", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialParallel runs generated filter, aggregate, and join
// queries at Parallel=1 and Parallel=8 and requires identical sorted rows
// and identical page/row accounting: partitioned operators divide the
// work, they must not change what is read or produced. ParallelMinRows is
// forced to 1 so the 400-row table actually gets parallel plans.
func TestDifferentialParallel(t *testing.T) {
	db, _ := diffDB(t, 111, 400)
	db.ParallelMinRows = 1
	db.MustExec("CREATE TABLE u (k INT NOT NULL, w INT)")
	ue, _ := db.Catalog().Table("u")
	r := rand.New(rand.NewSource(112))
	for i := 0; i < 150; i++ {
		if err := db.InsertRow(ue, types.Row{
			types.NewInt(int64(r.Intn(50))), types.NewInt(int64(r.Intn(20)))}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE u")

	runBoth := func(trial int, sel *sql.Select, desc string) {
		t.Helper()
		db.Parallel = 1
		serial, err := db.ExecStmt(sel, "")
		if err != nil {
			t.Fatalf("trial %d serial: %s: %v", trial, desc, err)
		}
		db.Parallel = 8
		par, err := db.ExecStmt(sel, "")
		if err != nil {
			t.Fatalf("trial %d parallel: %s: %v", trial, desc, err)
		}
		db.Parallel = 1
		sRows, pRows := sortedKeys(serial.Rows), sortedKeys(par.Rows)
		if len(sRows) != len(pRows) {
			t.Fatalf("trial %d: %s: serial %d rows, parallel %d\nserial plan:\n%s\nparallel plan:\n%s",
				trial, desc, len(sRows), len(pRows), serial.Plan, par.Plan)
		}
		for i := range sRows {
			if sRows[i] != pRows[i] {
				t.Fatalf("trial %d: %s: row %d differs: %s vs %s\nparallel plan:\n%s",
					trial, desc, i, sRows[i], pRows[i], par.Plan)
			}
		}
		if serial.Ctx.IO != par.Ctx.IO {
			t.Fatalf("trial %d: %s: counters diverged: serial %+v, parallel %+v\nparallel plan:\n%s",
				trial, desc, serial.Ctx.IO, par.Ctx.IO, par.Plan)
		}
	}

	for trial := 0; trial < 120; trial++ {
		switch trial % 3 {
		case 0: // filter scan
			pred := randPred(r, 3)
			sel := &sql.Select{
				Items: []sql.SelectItem{{Star: true}},
				From:  []sql.TableRef{{Table: "t"}},
				Where: pred,
				Limit: -1,
			}
			runBoth(trial, sel, fmt.Sprintf("filter %s", pred))
		case 1: // group aggregate
			pred := randPred(r, 2)
			groupCol := diffCols[r.Intn(3)].name
			aggCol := diffCols[r.Intn(len(diffCols))].name
			q := fmt.Sprintf(
				"SELECT %s, COUNT(*) AS n, SUM(%s) AS s, MIN(%s) AS lo, MAX(%s) AS hi FROM t GROUP BY %s",
				groupCol, aggCol, aggCol, aggCol, groupCol)
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			sel := stmt.(*sql.Select)
			sel.Where = pred
			runBoth(trial, sel, q)
		default: // equi-join
			lo := r.Intn(40)
			hi := lo + r.Intn(15)
			q := fmt.Sprintf(
				"SELECT t.a, t.c, u.w FROM t, u WHERE t.a = u.k AND t.a >= %d AND t.a <= %d",
				lo, hi)
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			runBoth(trial, stmt.(*sql.Select), q)
		}
	}
}

// TestDifferentialDML interleaves random inserts/updates/deletes with
// queries and checks the visible state matches a shadow copy.
func TestDifferentialDML(t *testing.T) {
	db := Open()
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	db.MustExec("CREATE INDEX iv ON t (v)")
	r := rand.New(rand.NewSource(101))
	shadow := map[int64]int64{}
	nextID := int64(0)
	for op := 0; op < 2000; op++ {
		switch r.Intn(4) {
		case 0, 1:
			v := int64(r.Intn(100))
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", nextID, v))
			shadow[nextID] = v
			nextID++
		case 2:
			if nextID == 0 {
				continue
			}
			id := int64(r.Intn(int(nextID)))
			v := int64(r.Intn(100))
			db.MustExec(fmt.Sprintf("UPDATE t SET v = %d WHERE id = %d", v, id))
			if _, ok := shadow[id]; ok {
				shadow[id] = v
			}
		case 3:
			if nextID == 0 {
				continue
			}
			id := int64(r.Intn(int(nextID)))
			db.MustExec(fmt.Sprintf("DELETE FROM t WHERE id = %d", id))
			delete(shadow, id)
		}
		if op%200 == 0 {
			lo := int64(r.Intn(100))
			rows, err := db.Query(fmt.Sprintf("SELECT id, v FROM t WHERE v >= %d", lo))
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, v := range shadow {
				if v >= lo {
					want++
				}
			}
			if len(rows) != want {
				t.Fatalf("op %d: %d rows want %d", op, len(rows), want)
			}
			for _, row := range rows {
				if shadow[row[0].Int()] != row[1].Int() {
					t.Fatalf("op %d: row %v disagrees with shadow", op, row)
				}
			}
		}
	}
	// Final index consistency: after a vacuum sheds dead versions and
	// their index entries, the v-index holds exactly the shadow rows.
	db.Vacuum()
	te, _ := db.Catalog().Table("t")
	if te.Heap.RowCount() != int64(len(shadow)) {
		t.Fatalf("row count %d want %d", te.Heap.RowCount(), len(shadow))
	}
	count := 0
	te.Indexes[0].Tree.Ascend(nil, func(_ types.Row, rid storage.RowID) bool {
		count++
		return true
	})
	if count != len(shadow) {
		t.Fatalf("index entries %d want %d", count, len(shadow))
	}
}

// diffDBPrune is diffDB with a clustered first column: `a` increases with
// insertion order, so heap pages carry tight, non-overlapping a-ranges and
// zone-map pruning can actually engage. The correlated/NULL shapes of
// diffDB are preserved (b tracks a with noise and occasional NULLs), and
// the same miner arms the rewriter.
func diffDBPrune(t *testing.T, seed int64, n int) *Database {
	t.Helper()
	db := Open()
	db.DisablePlanCache = true
	db.MustExec(`CREATE TABLE t (
		a INT NOT NULL,
		b INT,
		c INT,
		d FLOAT)`)
	r := rand.New(rand.NewSource(seed))
	te, _ := db.Catalog().Table("t")
	for i := 0; i < n; i++ {
		a := int64(i * 50 / n) // clustered: pages hold narrow a-ranges
		b := types.Datum(types.NewInt(a + int64(r.Intn(5))))
		if r.Intn(10) == 0 {
			b = types.Null
		}
		row := types.Row{types.NewInt(a), b,
			types.NewInt(int64(r.Intn(10))), types.NewFloat(float64(r.Intn(100)) / 4)}
		validated, err := te.Def.ValidateRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.InsertRow(te, validated); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE t")
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.InstallRanges(cands.Ranges); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDifferentialPrune runs generated queries through every combination of
// {synopsis pruning on/off} × {page-batched emission on/off} under a
// parallel executor and asserts two invariants. Answers must be identical
// in all four configurations — pruning may only skip pages that provably
// hold no qualifying row, and batching is a pure delivery change. And page
// accounting must balance exactly: with indexes disabled both prune modes
// lower to (parallel) sequential scans over the same heaps, so every page
// is either read or skipped — pagesRead(on) + pagesSkipped(on) ==
// pagesRead(off), with pagesSkipped(off) == 0.
func TestDifferentialPrune(t *testing.T) {
	db := diffDBPrune(t, 131, 2000)
	db.NoIndexes = true
	db.ParallelMinRows = 1
	db.Parallel = 8
	db.MustExec("CREATE TABLE u (k INT NOT NULL, w INT)")
	ue, _ := db.Catalog().Table("u")
	r := rand.New(rand.NewSource(132))
	for i := 0; i < 150; i++ {
		if err := db.InsertRow(ue, types.Row{
			types.NewInt(int64(r.Intn(50))), types.NewInt(int64(r.Intn(20)))}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE u")

	type cfg struct {
		noPrune, noBatch bool
		name             string
	}
	cfgs := []cfg{
		{true, true, "prune=off batch=off"},
		{true, false, "prune=off batch=on"},
		{false, true, "prune=on batch=off"},
		{false, false, "prune=on batch=on"},
	}
	var totalSkipped int64
	runAll := func(trial int, sel *sql.Select, desc string) {
		t.Helper()
		// Serial and parallel plans exercise distinct operators (SeqScan vs
		// ParallelScan, HashJoin vs PartitionedHashJoin, ...); the four
		// prune×batch configurations must agree under both.
		for _, par := range []int{1, 8} {
			db.Parallel = par
			results := make([]*Result, len(cfgs))
			for i, c := range cfgs {
				db.NoPrune, db.NoBatch = c.noPrune, c.noBatch
				res, err := db.ExecStmt(sel, "")
				if err != nil {
					t.Fatalf("trial %d [%s par=%d]: %s: %v", trial, c.name, par, desc, err)
				}
				results[i] = res
			}
			db.NoPrune, db.NoBatch = false, false
			ref := sortedKeys(results[0].Rows)
			for i := 1; i < len(cfgs); i++ {
				got := sortedKeys(results[i].Rows)
				if len(got) != len(ref) {
					t.Fatalf("trial %d [%s par=%d]: %s: %d rows, want %d\nplan:\n%s",
						trial, cfgs[i].name, par, desc, len(got), len(ref), results[i].Plan)
				}
				for j := range got {
					if got[j] != ref[j] {
						t.Fatalf("trial %d [%s par=%d]: %s: row %d differs: %s vs %s\nplan:\n%s",
							trial, cfgs[i].name, par, desc, j, got[j], ref[j], results[i].Plan)
					}
				}
			}
			// Batching is a pure delivery change: within each prune mode the
			// batched run must read and skip exactly what the row-at-a-time
			// run did (no LIMIT in the corpus, so granularity cannot differ).
			for p := 0; p < 2; p++ {
				rowIO, batchIO := results[2*p].Ctx.IO.Load(), results[2*p+1].Ctx.IO.Load()
				if rowIO != batchIO {
					t.Fatalf("trial %d [par=%d prune=%v]: %s: batch accounting diverged: row-path %+v, batched %+v\nplan:\n%s",
						trial, par, !cfgs[2*p].noPrune, desc, rowIO, batchIO, results[2*p+1].Plan)
				}
			}
			// Page accounting, per batch mode: indexes are off, so the prune
			// toggle must not change the plan shape — only which pages get read.
			for b := 0; b < 2; b++ {
				off, on := results[b].Ctx.IO.Load(), results[b+2].Ctx.IO.Load()
				if off.PagesSkipped != 0 {
					t.Fatalf("trial %d: %s: pruning-off scan skipped %d pages\nplan:\n%s",
						trial, desc, off.PagesSkipped, results[b].Plan)
				}
				if on.PagesRead+on.PagesSkipped != off.PagesRead {
					t.Fatalf("trial %d [%s par=%d]: %s: read %d + skipped %d != baseline %d pages\nplan:\n%s",
						trial, cfgs[b+2].name, par, desc, on.PagesRead, on.PagesSkipped, off.PagesRead, results[b+2].Plan)
				}
				totalSkipped += on.PagesSkipped
			}
		}
	}

	for trial := 0; trial < 120; trial++ {
		switch trial % 5 {
		case 0: // filter scan
			pred := randPred(r, 3)
			sel := &sql.Select{
				Items: []sql.SelectItem{{Star: true}},
				From:  []sql.TableRef{{Table: "t"}},
				Where: pred,
				Limit: -1,
			}
			runAll(trial, sel, fmt.Sprintf("filter %s", pred))
		case 1: // group aggregate
			pred := randPred(r, 2)
			groupCol := diffCols[r.Intn(3)].name
			aggCol := diffCols[r.Intn(len(diffCols))].name
			q := fmt.Sprintf(
				"SELECT %s, COUNT(*) AS n, SUM(%s) AS s, MIN(%s) AS lo, MAX(%s) AS hi FROM t GROUP BY %s",
				groupCol, aggCol, aggCol, aggCol, groupCol)
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			sel := stmt.(*sql.Select)
			sel.Where = pred
			runAll(trial, sel, q)
		case 2: // explicit projection (batched Project over filtered scan)
			pred := randPred(r, 3)
			q := "SELECT b, d, a, c FROM t"
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			sel := stmt.(*sql.Select)
			sel.Where = pred
			runAll(trial, sel, fmt.Sprintf("project where %s", pred))
		case 3: // join aggregate (exercises the fused narrowed join output)
			lo := r.Intn(40)
			hi := lo + r.Intn(15)
			var q string
			if trial%2 == 0 {
				q = fmt.Sprintf(
					"SELECT COUNT(*) AS n FROM t, u WHERE t.a = u.k AND t.a >= %d AND t.a <= %d",
					lo, hi)
			} else {
				q = fmt.Sprintf(
					"SELECT u.w, COUNT(*) AS n, SUM(t.c) AS s FROM t, u WHERE t.a = u.k AND t.a >= %d AND t.a <= %d GROUP BY u.w",
					lo, hi)
			}
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			runAll(trial, stmt.(*sql.Select), q)
		default: // equi-join with a selective range (prunable on both sides)
			lo := r.Intn(40)
			hi := lo + r.Intn(15)
			q := fmt.Sprintf(
				"SELECT t.a, t.c, u.w FROM t, u WHERE t.a = u.k AND t.a >= %d AND t.a <= %d",
				lo, hi)
			stmt, err := sql.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			runAll(trial, stmt.(*sql.Select), q)
		}
	}
	// The accounting identity must not hold vacuously: the corpus contains
	// selective range predicates over clustered columns, so pruning has to
	// fire somewhere.
	if totalSkipped == 0 {
		t.Fatal("no pages were ever skipped; pruning never engaged")
	}
}
