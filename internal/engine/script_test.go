package engine

import (
	"strings"
	"testing"
)

// TestEndToEndScript drives a single session through every statement kind
// the dialect supports and checks the visible results, the way a user at
// cmd/softdb would.
func TestEndToEndScript(t *testing.T) {
	db := Open()
	setup := `
		CREATE TABLE region (id INT PRIMARY KEY, name VARCHAR(16));
		CREATE TABLE customer (
			id INT PRIMARY KEY,
			region_id INT NOT NULL,
			name VARCHAR(24),
			FOREIGN KEY (region_id) REFERENCES region (id)
		);
		CREATE TABLE orders (
			id INT PRIMARY KEY,
			cust_id INT NOT NULL,
			placed DATE NOT NULL,
			shipped DATE,
			total FLOAT,
			CONSTRAINT total_pos CHECK (total >= 0) INFORMATIONAL,
			CONSTRAINT ship_week CHECK (shipped <= placed + 7) SOFT STATISTICAL CONFIDENCE 0.95,
			FOREIGN KEY (cust_id) REFERENCES customer (id)
		);
		CREATE INDEX idx_orders_placed ON orders (placed);
		INSERT INTO region VALUES (1, 'east'), (2, 'west');
		INSERT INTO customer VALUES (10, 1, 'acme'), (11, 2, 'globex'), (12, 1, 'initech');
	`
	if _, err := db.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		lag := i % 6
		if i%50 == 0 {
			lag = 30
		}
		stmt := "INSERT INTO orders VALUES (" +
			itos(i) + ", " + itos(10+i%3) + ", DATE '2000-01-01' + " + itos(i/4) +
			", DATE '2000-01-01' + " + itos(i/4+lag) + ", " + itos(i%90) + ".25)"
		db.MustExec(stmt)
	}
	db.MustExec("ANALYZE orders")

	// Multi-way join with grouping, HAVING, ordering.
	rows, err := db.Query(`
		SELECT r.name, COUNT(*) AS n, SUM(o.total) AS revenue
		FROM region r, customer c, orders o
		WHERE r.id = c.region_id AND c.id = o.cust_id
		GROUP BY r.name
		HAVING n > 10
		ORDER BY revenue DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("regions: %v", rowsAsStrings(rows))
	}
	// east holds customers 10 and 12 → 2/3 of orders.
	if rows[0][0].Str() != "east" {
		t.Errorf("east should lead: %v", rowsAsStrings(rows))
	}
	eastN, westN := rows[0][1].Int(), rows[1][1].Int()
	if eastN+westN != 400 || eastN <= westN {
		t.Errorf("counts: east %d west %d", eastN, westN)
	}

	// LIKE + IN + BETWEEN over the join.
	rows, err = db.Query(`
		SELECT o.id FROM customer c, orders o
		WHERE c.id = o.cust_id AND c.name LIKE '%ex'
		AND o.total BETWEEN 10 AND 20 AND o.id IN (1, 4, 13, 400)`)
	if err != nil {
		t.Fatal(err)
	}
	// globex is customer 11 → orders with id%3==1; candidates 1,4,13,400:
	// id 400 doesn't exist; ids 1,4,13 belong to 11,11,11; totals 1.25,
	// 4.25, 13.25 → only 13 within [10,20].
	if len(rows) != 1 || rows[0][0].Int() != 13 {
		t.Errorf("like+in+between: %v", rowsAsStrings(rows))
	}

	// Update and delete ripple through constraints and indexes.
	db.MustExec("UPDATE orders SET total = total + 100 WHERE cust_id = 11")
	db.MustExec("DELETE FROM orders WHERE id < 10")
	rows, _ = db.Query("SELECT COUNT(*) FROM orders")
	if rows[0][0].Int() != 390 {
		t.Errorf("after delete: %v", rows[0])
	}

	// Union all across selects with literals.
	rows, err = db.Query(`
		SELECT COUNT(*) AS n FROM orders WHERE total >= 100
		UNION ALL
		SELECT COUNT(*) AS n FROM orders WHERE total < 100`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int()+rows[1][0].Int() != 390 {
		t.Errorf("union partition: %v", rowsAsStrings(rows))
	}

	// EXPLAIN still works at the end of the session.
	res, err := db.Exec("EXPLAIN SELECT id FROM orders WHERE placed BETWEEN DATE '2000-02-01' AND DATE '2000-02-03'")
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0].Str() + "\n"
	}
	if !strings.Contains(text, "IndexScan") {
		t.Errorf("selective date range should use the index:\n%s", text)
	}
}

func itos(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
