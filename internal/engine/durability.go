package engine

import (
	"fmt"
	"os"
	"sort"
	"time"

	"softdb/internal/btree"
	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/expr"
	"softdb/internal/fault"
	"softdb/internal/obs"
	"softdb/internal/schema"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wal"
	"softdb/internal/wire/codec"
)

// DefaultCheckpointEvery is how many logged statements pass between
// automatic checkpoints when DurableOptions doesn't say.
const DefaultCheckpointEvery = 256

// DurableOptions configures a durable database opened with OpenDurable.
type DurableOptions struct {
	// SyncPolicy selects when commits fsync (see wal.SyncPolicy).
	SyncPolicy wal.SyncPolicy
	// SyncInterval is the minimum gap between fsyncs under
	// wal.SyncInterval.
	SyncInterval time.Duration
	// CheckpointEvery is how many logged statements pass between automatic
	// checkpoints; 0 means DefaultCheckpointEvery, negative disables
	// automatic checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery int
	// Fault, when set, gates the WAL's writes, fsyncs, snapshot writes and
	// recovery reads through the injector's deterministic sites.
	Fault *fault.Injector
}

// RecoveryStats reports what OpenDurable's recovery pass did.
type RecoveryStats struct {
	// SnapshotLSN is the checkpoint snapshot's last covered LSN (0 when no
	// snapshot existed).
	SnapshotLSN uint64
	// RecordsReplayed counts redo records applied from the log (commit
	// terminators excluded).
	RecordsReplayed int64
	// StatementsReplayed counts committed record groups applied.
	StatementsReplayed int64
	// TailTruncated reports that the log held bytes past the last commit —
	// a torn frame or an unterminated record group — which recovery cut
	// off. At most the in-flight statement is lost.
	TailTruncated bool
	// TailErr describes the torn or corrupt frame that ended the scan, when
	// there was one. A clean unterminated group truncates without an error.
	TailErr *exec.QueryError
	// Revalidated counts absolute soft characterizations re-checked against
	// the recovered data; Invalidated counts those the check overturned.
	Revalidated int
	// Invalidated counts recovered characterizations deactivated because
	// the replayed data no longer satisfies them.
	Invalidated int
	// WALBytes is the committed log length recovery kept.
	WALBytes int64
}

// walState is the durable half of a Database: the open log writer, the
// records staged by the statement in flight, and the checkpoint cadence.
// It is guarded by db.mu like the rest of the mutating state.
type walState struct {
	dir             string
	w               *wal.Writer
	fault           *fault.Injector
	pending         []*wal.Record
	stmts           int // logged statements since the last checkpoint
	checkpointEvery int

	// Resolved metric counters; lastBytes/lastFsyncs track the writer's
	// lifetime totals already exported.
	cBytes, cFsyncs, cCheckpoints, cFrames *obs.Counter
	lastBytes, lastFsyncs                  int64
	hBatch, hCkptDur                       *obs.Histogram

	// recovery is what OpenDurable's recovery pass found, kept for
	// /debug/wal.
	recovery RecoverySummary
}

// RecoverySummary is the JSON-friendly form of RecoveryStats served by
// /debug/wal (the error rendered as text).
type RecoverySummary struct {
	SnapshotLSN        uint64 `json:"snapshot_lsn"`
	RecordsReplayed    int64  `json:"records_replayed"`
	StatementsReplayed int64  `json:"statements_replayed"`
	TailTruncated      bool   `json:"tail_truncated"`
	TailErr            string `json:"tail_err,omitempty"`
	Revalidated        int    `json:"revalidated"`
	Invalidated        int    `json:"invalidated"`
	WALBytes           int64  `json:"wal_bytes"`
}

// summary converts the recovery outcome for the debug endpoint.
func (rs *RecoveryStats) summary() RecoverySummary {
	s := RecoverySummary{
		SnapshotLSN:        rs.SnapshotLSN,
		RecordsReplayed:    rs.RecordsReplayed,
		StatementsReplayed: rs.StatementsReplayed,
		TailTruncated:      rs.TailTruncated,
		Revalidated:        rs.Revalidated,
		Invalidated:        rs.Invalidated,
		WALBytes:           rs.WALBytes,
	}
	if rs.TailErr != nil {
		s.TailErr = rs.TailErr.Error()
	}
	return s
}

// WALStatus is the durability snapshot served at /debug/wal. A zero value
// (Durable false) marks an in-memory database.
type WALStatus struct {
	Durable bool   `json:"durable"`
	Dir     string `json:"dir,omitempty"`
	// Writer lifetime totals.
	WALBytes  int64  `json:"wal_bytes,omitempty"`
	WALFsyncs int64  `json:"wal_fsyncs,omitempty"`
	Frames    int64  `json:"frames,omitempty"`
	NextLSN   uint64 `json:"next_lsn,omitempty"`
	// Checkpoint cadence.
	Checkpoints               int64 `json:"checkpoints,omitempty"`
	StmtsSinceCheckpoint      int   `json:"stmts_since_checkpoint,omitempty"`
	CheckpointEveryStatements int   `json:"checkpoint_every_statements,omitempty"`
	// Failed reports a latched writer error (mutations fail until restart).
	Failed string `json:"failed,omitempty"`
	// Recovery is the outcome of the open-time recovery pass.
	Recovery *RecoverySummary `json:"recovery,omitempty"`
}

// WALStatusSnapshot reports the database's durability state; for an
// in-memory database it returns the zero value, marshaling to
// {"durable": false}.
func (db *Database) WALStatusSnapshot() WALStatus {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d := db.dur
	if d == nil {
		return WALStatus{}
	}
	st := WALStatus{
		Durable:                   true,
		Dir:                       d.dir,
		WALBytes:                  d.w.Bytes(),
		WALFsyncs:                 d.w.Fsyncs(),
		Frames:                    d.cFrames.Value(),
		NextLSN:                   d.w.NextLSN(),
		Checkpoints:               d.cCheckpoints.Value(),
		StmtsSinceCheckpoint:      d.stmts,
		CheckpointEveryStatements: d.checkpointEvery,
	}
	if err := d.w.Err(); err != nil {
		st.Failed = err.Error()
	}
	rec := d.recovery
	st.Recovery = &rec
	return st
}

// syncMetrics exports the writer's byte/fsync deltas since the last call.
func (d *walState) syncMetrics() {
	if b := d.w.Bytes(); b > d.lastBytes {
		d.cBytes.Add(b - d.lastBytes)
		d.lastBytes = b
	}
	if n := d.w.Fsyncs(); n > d.lastFsyncs {
		d.cFsyncs.Add(n - d.lastFsyncs)
		d.lastFsyncs = n
	}
}

// Durable reports whether the database writes a WAL.
func (db *Database) Durable() bool { return db.dur != nil }

// DataDir returns the durable database's data directory ("" when
// in-memory).
func (db *Database) DataDir() string {
	if db.dur == nil {
		return ""
	}
	return db.dur.dir
}

// --- record staging (all called with db.mu held exclusively) ---
//
// Row-level DML records no longer pass through here: transactions stage
// them in their Tx and hand them to the writer at commit (see txn.go).
// The pending list carries only the non-transactional record kinds — DDL,
// soft-registry images, truncates — each committed as its own group.

// walDDL stages a DDL/utility statement as text plus its outcome; replay
// re-executes it and must agree with applied.
func (db *Database) walDDL(sqlText string, applied bool) {
	if db.dur == nil {
		return
	}
	db.dur.pending = append(db.dur.pending, &wal.Record{Type: wal.TypeDDL, SQL: sqlText, Applied: applied})
}

// walSoftLocked stages a full image of the soft-constraint registry.
func (db *Database) walSoftLocked() error {
	if db.dur == nil {
		return nil
	}
	blob, err := db.cat.EncodeSoftRegistry(nil)
	if err != nil {
		return err
	}
	db.dur.pending = append(db.dur.pending, &wal.Record{Type: wal.TypeSoft, Blob: blob})
	return nil
}

// commitWALLocked flushes the statement's staged records as one committed
// group. It runs on success and error paths alike: a failed DDL statement
// is still logged (with Applied false) so replay can agree with the
// pre-crash outcome. A write/fsync failure latches the writer and surfaces
// as a KindRecovery QueryError; mutations stay failed until the process
// restarts and recovery truncates back to the valid prefix.
func (db *Database) commitWALLocked() error {
	d := db.dur
	if d == nil || len(d.pending) == 0 {
		return nil
	}
	recs := d.pending
	d.pending = nil
	_, _, err := d.w.Commit(recs)
	d.syncMetrics()
	if err != nil {
		return &exec.QueryError{Op: "wal.commit", Kind: exec.KindRecovery, Err: err}
	}
	// One group commit = the statement's records plus the commit terminator.
	batch := int64(len(recs)) + 1
	d.cFrames.Add(batch)
	d.hBatch.Observe(float64(batch))
	d.stmts++
	if d.checkpointEvery > 0 && d.stmts >= d.checkpointEvery {
		if cerr := db.checkpointLocked(); cerr != nil {
			// The log still holds everything the snapshot would have
			// covered, so a failed checkpoint doesn't fail the statement.
			if l := db.obs.logger.Load(); l != nil {
				l.Error("checkpoint failed", "err", cerr)
			}
		}
	}
	return nil
}

// SyncSoftRegistry logs a fresh image of the soft-constraint registry as
// its own committed group. The softc manager's OnChange hook calls it after
// every registry mutation; it is a no-op on in-memory databases.
func (db *Database) SyncSoftRegistry() {
	if db.dur == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.walSoftLocked()
	if err == nil {
		err = db.commitWALLocked()
	}
	if err != nil {
		if l := db.obs.logger.Load(); l != nil {
			l.Error("soft-registry WAL sync failed", "err", err)
		}
	}
}

// TruncateTable empties a table's heap and indexes, and resynchronizes the
// summary tables materialized over it. Durable databases log it as a single
// redo record rather than per-row tombstones.
func (db *Database) TruncateTable(table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	te, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	db.truncateLocked(te)
	if db.dur != nil {
		db.dur.pending = append(db.dur.pending, &wal.Record{Type: wal.TypeTruncate, Table: te.Def.Name})
		return db.commitWALLocked()
	}
	return nil
}

func (db *Database) truncateLocked(te *catalog.TableEntry) {
	te.Heap.Truncate()
	for _, ix := range te.Indexes {
		ix.Tree = btree.New()
	}
	for _, st := range db.cat.SummariesOn(te.Def.Name) {
		if st.Informational {
			st.RowCountEstimate = 0
		} else if st.Heap != nil {
			st.Heap.Truncate()
		}
	}
	db.bumpCurrency(te)
	db.cat.Touch()
}

// --- checkpoints ---

// Checkpoint snapshots the full engine state and truncates the log. Safe
// no-op on in-memory databases.
func (db *Database) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

func (db *Database) checkpointLocked() error {
	d := db.dur
	if d == nil {
		return nil
	}
	if err := d.w.Err(); err != nil {
		return err
	}
	// An open write transaction (a session between BEGIN and COMMIT holds
	// no lock) would be snapshotted as dead versions while its streamed
	// log records get truncated — so the checkpoint defers until the
	// writes drain. The log keeps everything; nothing is lost by waiting.
	if db.txnMgr.ActiveWrites() > 0 {
		return nil
	}
	ckptStart := time.Now()
	// Make the log durable first so the snapshot never claims coverage of
	// bytes an fsync hadn't confirmed.
	if err := d.w.Sync(); err != nil {
		d.syncMetrics()
		return err
	}
	d.syncMetrics()
	payload, err := db.encodeStateLocked()
	if err != nil {
		return fmt.Errorf("engine: checkpoint encode: %w", err)
	}
	lastLSN := d.w.NextLSN() - 1
	if err := wal.WriteSnapshot(d.dir, lastLSN, payload, d.fault); err != nil {
		return err
	}
	if err := d.w.Truncate(); err != nil {
		d.syncMetrics()
		return err
	}
	d.syncMetrics()
	d.stmts = 0
	d.cCheckpoints.Inc()
	d.hCkptDur.Observe(time.Since(ckptStart).Seconds())
	return nil
}

// encodeStateLocked serializes the whole engine: the view definitions (as
// re-parseable SQL) followed by the catalog's length-prefixed EncodeState
// blob (tables, heaps, indexes, constraints, stats, summaries, and the soft
// registry).
func (db *Database) encodeStateLocked() ([]byte, error) {
	names := make([]string, 0, len(db.views))
	for n := range db.views {
		names = append(names, n)
	}
	sort.Strings(names)
	b := codec.AppendUvarint(nil, uint64(len(names)))
	for _, n := range names {
		b = codec.AppendString(b, n)
		b = codec.AppendString(b, sql.Print(db.views[n]))
	}
	cat, err := db.cat.EncodeState(nil)
	if err != nil {
		return nil, err
	}
	return codec.AppendBytes(b, cat), nil
}

// restoreState rebuilds the engine from a checkpoint snapshot payload.
func (db *Database) restoreState(payload []byte) error {
	d := codec.NewDecoder(payload)
	n := d.Uvarint("view count")
	views := map[string]*sql.Select{}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		name := d.String("view name")
		text := d.String("view sql")
		if d.Err() != nil {
			break
		}
		stmt, perr := sql.Parse(text)
		if perr != nil {
			return snapshotError(fmt.Errorf("view %s: %w", name, perr))
		}
		sel, ok := stmt.(*sql.Select)
		if !ok {
			return snapshotError(fmt.Errorf("view %s: not a SELECT", name))
		}
		views[name] = sel
	}
	blob := d.Bytes("catalog state")
	if err := d.Err(); err != nil {
		return snapshotError(err)
	}
	if d.Len() != 0 {
		return snapshotError(fmt.Errorf("%d trailing bytes", d.Len()))
	}
	cat, err := catalog.DecodeState(blob, db.exprBinder())
	if err != nil {
		return snapshotError(err)
	}
	db.cat = cat
	db.views = views
	return nil
}

func snapshotError(cause error) error {
	return &exec.QueryError{Op: "engine.recover", Kind: exec.KindRecovery,
		Err: fmt.Errorf("corrupt snapshot state: %w", cause)}
}

// exprBinder adapts the engine's expression parser/binder to the catalog
// codec's rebind hook.
func (db *Database) exprBinder() catalog.ExprBinder {
	return func(exprSQL string, def *schema.Table) (expr.Expr, error) {
		parsed, err := parseExpression(exprSQL)
		if err != nil {
			return nil, err
		}
		return bindToTable(parsed, def)
	}
}

// --- recovery ---

// OpenDurable opens (or creates) a durable database rooted at dir: it loads
// the checkpoint snapshot if one exists, replays the committed suffix of
// the write-ahead log, truncates any torn or uncommitted tail, re-validates
// the recovered absolute soft characterizations against the replayed data
// (invalidating, never re-mining), and reopens the log for appending.
//
// A torn tail is not an error — the valid committed prefix is a consistent
// state and the loss is bounded by the in-flight statement — and is
// reported in RecoveryStats. A corrupt snapshot, a replay divergence (a DDL
// statement whose outcome differs from what was logged, a row record
// addressing a missing row), or an unreadable log is fatal: the returned
// error is a KindRecovery QueryError and no database is opened.
func OpenDurable(dir string, opts DurableOptions) (*Database, *RecoveryStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("engine: create data dir: %w", err)
	}
	db := Open()
	rs := &RecoveryStats{}

	payload, snapLSN, found, err := wal.ReadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	if found {
		if err := db.restoreState(payload); err != nil {
			return nil, nil, err
		}
		rs.SnapshotLSN = snapLSN
	}

	// Replay: buffer records per transaction and apply a group only when
	// its commit record closes it, skipping groups the snapshot already
	// covers. An aborted transaction's inserts become permanent aborted
	// placeholder slots — later commits' RIDs (and the index entries
	// pointing at them) depend on the physical layout those slots pad out.
	// Groups left unterminated when the scan ends (the transactions open
	// at the crash) are discarded.
	groups := map[int64][]*wal.Record{}
	logPath := wal.LogPath(dir)
	res, err := wal.ScanLog(logPath, opts.Fault, func(r *wal.Record) error {
		switch r.Type {
		case wal.TypeBegin:
			// Group-opening marker only; records carry their TxnID.
		case wal.TypeCommit:
			if r.LSN > snapLSN {
				applied := false
				for _, g := range groups[r.TxnID] {
					if g.LSN <= snapLSN {
						continue
					}
					if aerr := db.redo(g); aerr != nil {
						return aerr
					}
					rs.RecordsReplayed++
					applied = true
				}
				if applied {
					rs.StatementsReplayed++
				}
			}
			delete(groups, r.TxnID)
		case wal.TypeAbort:
			if r.LSN > snapLSN {
				for _, g := range groups[r.TxnID] {
					if g.LSN <= snapLSN || g.Type != wal.TypeInsert {
						continue
					}
					if te, terr := db.cat.Table(g.Table); terr == nil {
						te.Heap.InsertAtRID(nil, g.RID, storage.Aborted)
					}
				}
			}
			delete(groups, r.TxnID)
		default:
			groups[r.TxnID] = append(groups[r.TxnID], r)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	rs.TailErr = res.Tail
	// Seed the ID allocator past every transaction the log named, so a
	// fresh transaction can never collide with an orphaned group.
	db.txnMgr.SeedIDs(res.MaxTxnID)

	// Cut the log back to the last committed boundary: past it lie torn
	// frames and/or an unterminated record group, which the next writer
	// must not extend into a decodable-but-wrong group.
	if fi, serr := os.Stat(logPath); serr == nil && fi.Size() > res.CommittedBytes {
		if terr := wal.TruncateLog(logPath, res.CommittedBytes); terr != nil {
			return nil, nil, &exec.QueryError{Op: "engine.recover", Kind: exec.KindRecovery, Err: terr}
		}
		rs.TailTruncated = true
	}
	rs.WALBytes = res.CommittedBytes

	// Re-validate (not re-mine) the recovered absolute characterizations:
	// anything the replayed data violates flips to inactive, exactly as a
	// violating write would have done pre-crash.
	db.revalidateSoft(rs)

	nextLSN := res.LastLSN
	if snapLSN > nextLSN {
		nextLSN = snapLSN
	}
	w, err := wal.OpenWriter(logPath, nextLSN+1, wal.WriterOptions{
		Policy: opts.SyncPolicy, Interval: opts.SyncInterval, Fault: opts.Fault,
	})
	if err != nil {
		return nil, nil, err
	}
	ce := opts.CheckpointEvery
	if ce == 0 {
		ce = DefaultCheckpointEvery
	}
	db.dur = &walState{
		dir:             dir,
		w:               w,
		fault:           opts.Fault,
		checkpointEvery: ce,
		cBytes:          db.obs.metrics.Counter(mWALBytes),
		cFsyncs:         db.obs.metrics.Counter(mWALFsyncs),
		cCheckpoints:    db.obs.metrics.Counter(mCheckpoints),
		cFrames:         db.obs.metrics.Counter(mWALFrames),
		hBatch:          db.obs.metrics.Histogram(mWALBatchSize, walBatchBuckets),
		hCkptDur:        db.obs.metrics.Histogram(mCheckpointSeconds, obs.DefLatencyBuckets),
		recovery:        rs.summary(),
	}
	m := db.obs.metrics
	m.Counter(mRecoveryReplayed).Add(rs.RecordsReplayed)
	m.Counter(mRecoveryStmts).Add(rs.StatementsReplayed)
	m.Gauge(mRecoveryWALBytes).Set(rs.WALBytes)
	m.Gauge(mRecoverySnapLSN).Set(int64(rs.SnapshotLSN))
	m.Counter(mRecoveryRevalid).Add(int64(rs.Revalidated))
	m.Counter(mRecoveryInvalid).Add(int64(rs.Invalidated))
	if rs.TailTruncated {
		m.Counter(mRecoveryTailTrunc).Inc()
	}
	return db, rs, nil
}

// Close checkpoints a durable database (clean shutdown: recovery then
// starts from the snapshot alone) and closes the log. In-memory databases
// close trivially.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := db.dur
	if d == nil {
		return nil
	}
	var cerr error
	if d.w.Err() == nil {
		cerr = db.checkpointLocked()
	}
	werr := d.w.Close()
	db.dur = nil
	if cerr != nil {
		return cerr
	}
	return werr
}

// redo applies one replayed record. It mirrors the live DML paths minus
// enforced-constraint checking (the pre-crash engine already admitted these
// rows) while keeping the soft-constraint write hooks, summary maintenance
// and currency bookkeeping, so the recovered catalog evolves exactly as the
// original did.
func (db *Database) redo(r *wal.Record) error {
	fail := func(cause error) error {
		return &exec.QueryError{Op: "engine.recover", Kind: exec.KindRecovery,
			Err: fmt.Errorf("replay %s record lsn=%d: %w", r.Type, r.LSN, cause)}
	}
	switch r.Type {
	case wal.TypeInsert:
		te, err := db.cat.Table(r.Table)
		if err != nil {
			return fail(err)
		}
		db.checkSoftOnWrite(te, r.Row)
		// Replay at the logged RID: commit order is not slot order (an
		// earlier-slotted transaction may have committed later), so the
		// row must land exactly where the live run put it or every later
		// index entry would dangle.
		if !te.Heap.InsertAtRID(r.Row, r.RID, storage.CommittedMin) {
			return fail(fmt.Errorf("slot %v already occupied", r.RID))
		}
		for _, ix := range te.Indexes {
			ix.Tree.Insert(ix.KeyFor(r.Row), r.RID)
		}
		db.maintainSummaries(te, r.Row, true)
		db.bumpCurrency(te)
	case wal.TypeUpdate:
		te, err := db.cat.Table(r.Table)
		if err != nil {
			return fail(err)
		}
		old, ok := te.Heap.Get(r.RID)
		if !ok {
			return fail(fmt.Errorf("no live row at %v", r.RID))
		}
		db.checkSoftOnWrite(te, r.Row)
		for _, ix := range te.Indexes {
			oldKey, newKey := ix.KeyFor(old), ix.KeyFor(r.Row)
			if !oldKey.Equal(newKey) {
				ix.Tree.Delete(oldKey, r.RID)
				ix.Tree.Insert(newKey, r.RID)
			}
		}
		te.Heap.Update(r.RID, r.Row)
		db.maintainSummaries(te, old, false)
		db.maintainSummaries(te, r.Row, true)
		db.bumpCurrency(te)
	case wal.TypeDelete:
		te, err := db.cat.Table(r.Table)
		if err != nil {
			return fail(err)
		}
		old, ok := te.Heap.Get(r.RID)
		if !ok {
			return fail(fmt.Errorf("no live row at %v", r.RID))
		}
		// End-stamp the version rather than reclaiming the slot — the
		// live commit path leaves dead versions (and their index
		// entries) in place for Vacuum, and recovery must converge on
		// the same physical state.
		te.Heap.SetEnd(r.RID, storage.CommittedMin)
		db.maintainSummaries(te, old, false)
		db.bumpCurrency(te)
	case wal.TypeDDL:
		stmt, perr := sql.Parse(r.SQL)
		if perr != nil {
			return fail(fmt.Errorf("logged statement no longer parses: %w", perr))
		}
		eerr := db.redoStmt(stmt)
		if (eerr == nil) != r.Applied {
			if r.Applied {
				return fail(fmt.Errorf("statement %q succeeded pre-crash but failed on replay: %v", r.SQL, eerr))
			}
			return fail(fmt.Errorf("statement %q failed pre-crash but succeeded on replay", r.SQL))
		}
	case wal.TypeSoft:
		if err := db.cat.DecodeSoftRegistry(r.Blob, db.exprBinder()); err != nil {
			return fail(err)
		}
	case wal.TypeTruncate:
		te, err := db.cat.Table(r.Table)
		if err != nil {
			return fail(err)
		}
		db.truncateLocked(te)
	default:
		return fail(fmt.Errorf("unexpected record type"))
	}
	return nil
}

// redoStmt re-executes a logged DDL/utility statement through the same
// handlers the live path uses, without locks (recovery is single-threaded)
// and without re-logging (db.dur is still nil during replay).
func (db *Database) redoStmt(stmt sql.Statement) error {
	var err error
	switch s := stmt.(type) {
	case *sql.CreateTable:
		_, err = db.createTable(s)
	case *sql.CreateIndex:
		_, err = db.createIndex(s)
	case *sql.CreateView:
		_, err = db.createView(s)
	case *sql.CreateSummary:
		_, err = db.createSummary(s)
	case *sql.AlterTableAdd:
		_, err = db.alterAdd(s)
	case *sql.DropTable:
		_, err = db.dropTable(s)
	case *sql.Analyze:
		_, err = db.analyze(s)
	default:
		err = fmt.Errorf("engine: unexpected logged statement %T", stmt)
	}
	return err
}

// revalidateSoft re-checks every active absolute characterization — ASC
// check constraints and absolute linear correlations — against the
// recovered heaps, deactivating violated ones. VerifiedVersion and
// ModsSince are left alone: this is §4.1 maintenance of last resort, not a
// re-mine.
func (db *Database) revalidateSoft(rs *RecoveryStats) {
	for _, name := range db.cat.TableNames() {
		te, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		for _, con := range te.Constraints {
			if !con.Active || con.Mode != catalog.ModeSoftAbsolute || con.Kind != catalog.Check || con.CheckExpr == nil {
				continue
			}
			rs.Revalidated++
			ok := true
			te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
				v, verr := con.CheckExpr.Eval(row)
				if verr == nil && v.Kind() == types.KindBool && !v.Bool() {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				_ = db.cat.DeactivateConstraint(te.Def.Name, con.Name)
				rs.Invalidated++
			}
		}
		for _, lc := range db.cat.Correlations(name) {
			if !lc.IsAbsolute() {
				continue
			}
			aOrd, bOrd := te.Def.ColumnIndex(lc.ColA), te.Def.ColumnIndex(lc.ColB)
			if aOrd < 0 || bOrd < 0 {
				continue
			}
			rs.Revalidated++
			ok := true
			te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
				a, b := row[aOrd], row[bOrd]
				if a.IsNull() || b.IsNull() {
					return true
				}
				diff := a.Float() - lc.K*b.Float()
				if diff < lc.B0-lc.Eps || diff > lc.B0+lc.Eps {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				_ = db.cat.DeactivateCorrelation(lc.Name)
				rs.Invalidated++
			}
		}
	}
}
