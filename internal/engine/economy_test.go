package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"softdb/internal/fault"
	"softdb/internal/mining"
	"softdb/internal/obs"
	"softdb/internal/softc"
	"softdb/internal/wal"
)

// holeEconDB builds the deterministic page-skip workload: an orders ⋈
// lineitem join whose range straddles a mined interior join hole. Pages of
// orders lying wholly inside the hole band [n/4, n/2) are skipped by the
// hole's exclusion predicate — and since the query range strictly contains
// the band, the filter predicates alone can never prove them, so every one
// of those skips is attributed to the hole constraint, not to "filter".
func holeEconDB(t *testing.T, n int) (*Database, string) {
	t.Helper()
	db := newDB(t, `
		CREATE TABLE orders (okey INT PRIMARY KEY, odate DATE NOT NULL);
		CREATE TABLE lineitem (lkey INT PRIMARY KEY, okey INT, shipdate DATE);
	`)
	lo, hi := n/4, n/2
	var lk int
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, DATE '1999-01-01' + %d)", i, i))
		if i >= lo && i < hi {
			continue // the hole band: orders with no lineitems
		}
		db.MustExec(fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, DATE '1999-01-01' + %d)", lk, i, i+3))
		lk++
	}
	db.MustExec("ANALYZE orders")
	db.MustExec("ANALYZE lineitem")

	left, err := db.Catalog().Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	right, err := db.Catalog().Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		t.Fatal(err)
	}
	jh.Name = "hole_econ"
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		t.Fatal(err)
	}
	return db, jh.Name
}

// holeEconQuery straddles the [n/4, n/2) band so subtraction cannot trim
// the range and only the exclusion predicate can skip interior pages.
func holeEconQuery(n int) string {
	return fmt.Sprintf(`SELECT COUNT(*) AS c FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		n/8, 3*n/4, n/8, 3*n/4+10)
}

// economyRow finds one constraint's ledger row.
func economyRow(t *testing.T, db *Database, name string) obs.EconomyRow {
	t.Helper()
	for _, r := range db.ConstraintEconomy() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no ledger row for %q in %+v", name, db.ConstraintEconomy())
	return obs.EconomyRow{}
}

// TestEconomyPageSkipAttributionExact: each execution of the straddling
// join skips the same interior pages, every one credited to the hole
// constraint, so the ledger counter is exactly per-run-skips × runs.
func TestEconomyPageSkipAttributionExact(t *testing.T) {
	const n = 3000
	db, hole := holeEconDB(t, n)
	q := holeEconQuery(n)

	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	first := economyRow(t, db, hole)
	if first.PagesSkipped <= 0 {
		t.Fatalf("interior hole skipped no pages on first run: %+v", first)
	}
	if first.QErrNodes != 1 {
		t.Fatalf("one successful run should observe one q-error: %+v", first)
	}

	const extra = 10
	for i := 0; i < extra; i++ {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	after := economyRow(t, db, hole)
	if want := first.PagesSkipped * (extra + 1); after.PagesSkipped != want {
		t.Errorf("pages skipped = %d, want exactly %d (%d per run × %d runs)",
			after.PagesSkipped, want, first.PagesSkipped, extra+1)
	}
	if after.QErrNodes != extra+1 {
		t.Errorf("q-error nodes = %d, want exactly %d (one per successful run)", after.QErrNodes, extra+1)
	}
	if after.CostDeltaMilli < 0 {
		t.Errorf("negative masked-plan cost delta: %+v", after)
	}
	if after.Kind != "JOIN HOLES" || !after.Active {
		t.Errorf("catalog decoration wrong: kind=%q active=%v", after.Kind, after.Active)
	}
}

// TestEconomyShadowCostingNeverChangesPlan: the masked re-optimizations the
// ledger runs at plan time must be invisible — the chosen plan, its cost,
// and the query answer are identical with the economy on and off.
func TestEconomyShadowCostingNeverChangesPlan(t *testing.T) {
	const n = 1500
	q := holeEconQuery(n)
	dbOn, _ := holeEconDB(t, n)
	dbOff, _ := holeEconDB(t, n)
	dbOff.NoEconomy = true
	// Cache off: every statement recompiles, so shadow costing runs on each
	// and the comparison always sees a fresh optimization.
	dbOn.DisablePlanCache = true
	dbOff.DisablePlanCache = true

	planOn := planLines(t, dbOn, "EXPLAIN "+q)
	planOff := planLines(t, dbOff, "EXPLAIN "+q)
	if planOn != planOff {
		t.Errorf("shadow costing changed the chosen plan:\n-- economy on --\n%s\n-- economy off --\n%s", planOn, planOff)
	}

	resOn, err := dbOn.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := dbOff.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resOn.Rows) != fmt.Sprint(resOff.Rows) {
		t.Errorf("answers diverged: %v vs %v", resOn.Rows, resOff.Rows)
	}
	if resOn.EstCost != resOff.EstCost {
		t.Errorf("chosen-plan cost diverged: %g vs %g", resOn.EstCost, resOff.EstCost)
	}
	// Re-planning after the ledger has accrued state still picks the same plan.
	if again := planLines(t, dbOn, "EXPLAIN "+q); again != planOn {
		t.Errorf("plan changed after ledger accrual:\n%s\nvs\n%s", again, planOn)
	}

	// With the economy off, nothing accrues.
	if rows := dbOff.ConstraintEconomy(); len(rows) != 0 {
		t.Errorf("NoEconomy database accrued ledger rows: %+v", rows)
	}
}

// TestEconomyExplainAnalyzeLines: EXPLAIN ANALYZE renders the per-constraint
// benefit annotations for the executed statement.
func TestEconomyExplainAnalyzeLines(t *testing.T) {
	const n = 1500
	db, hole := holeEconDB(t, n)
	out := planLines(t, db, "EXPLAIN ANALYZE "+holeEconQuery(n))
	if !strings.Contains(out, "economy: constraint "+hole+": pages skipped ") {
		t.Errorf("EXPLAIN ANALYZE missing the pages-skipped economy line:\n%s", out)
	}
}

// TestEconomyRefreshAndWALCosts: retry backoff charges the constraint the
// exact nominal delays, a successful refresh charges measured wall time,
// and on a durable database every registry image rewrite charges one WAL
// record to each constraint that caused it.
func TestEconomyRefreshAndWALCosts(t *testing.T) {
	db, _, err := OpenDurable(t.TempDir(), DurableOptions{SyncPolicy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ExecScript(`
		CREATE TABLE purchase (
			id INT PRIMARY KEY,
			order_date DATE NOT NULL,
			ship_date DATE,
			CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
		);
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+(i%21)))
	}
	db.MustExec("ANALYZE purchase")

	// Every attempt faults: the wrapper sleeps 10ms then 20ms (stubbed) and
	// must charge exactly those nominal delays — the refresh body never runs.
	m := db.SoftcManager()
	m.Fault = fault.New(fault.Config{Seed: 1, ReadErrProb: 1})
	pol := softc.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Sleep: func(time.Duration) {}}
	if _, err := m.RefreshCheckConfidenceWithRetry(context.Background(), "purchase", "ship_window", pol); err == nil {
		t.Fatal("refresh succeeded at 100% fault rate")
	}
	row := economyRow(t, db, "ship_window")
	const wantBackoff = int64(30 * time.Millisecond)
	if row.RefreshNanos != wantBackoff {
		t.Errorf("refresh cost = %dns, want exactly %dns (10ms + 20ms nominal backoff)", row.RefreshNanos, wantBackoff)
	}
	if row.WALRecords != 0 {
		t.Errorf("failed refresh must not charge WAL records: %+v", row)
	}

	// A successful refresh adds measured wall time on top and rewrites the
	// registry image once — one WAL record charged.
	m.Fault = nil
	if _, err := m.RefreshCheckConfidence("purchase", "ship_window"); err != nil {
		t.Fatal(err)
	}
	row = economyRow(t, db, "ship_window")
	if row.RefreshNanos <= wantBackoff {
		t.Errorf("successful refresh charged no wall time: %dns", row.RefreshNanos)
	}
	if row.WALRecords != 1 {
		t.Errorf("WAL records = %d, want exactly 1 (one registry image rewrite)", row.WALRecords)
	}

	// DML write hooks charge maintenance to the soft check.
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			1000+i, i, i+5))
	}
	if row = economyRow(t, db, "ship_window"); row.MaintNanos <= 0 {
		t.Errorf("200 checked inserts charged no maintenance: %+v", row)
	}
}

// TestEconomySurfacesAgree: SHOW CONSTRAINTS ECONOMY, ConstraintEconomy(),
// /debug/constraints, and /metrics are one code path over one set of
// counters — the same constraint must report the same figures on all four.
func TestEconomySurfacesAgree(t *testing.T) {
	const n = 2000
	db, hole := holeEconDB(t, n)
	q := holeEconQuery(n)
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}

	ref := economyRow(t, db, hole)
	if ref.PagesSkipped <= 0 {
		t.Fatalf("workload produced no attributed skips: %+v", ref)
	}

	// SQL surface.
	res, err := db.Exec("SHOW CONSTRAINTS ECONOMY")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := "constraint kind mode active pages_skipped shards_pruned rows_short_circuited rewrite_rows cost_delta qerr_delta maint_us refresh_us exc_bytes wal_records net_benefit_us"
	if got := strings.Join(res.Columns, " "); got != wantCols {
		t.Errorf("SHOW columns = %q, want %q", got, wantCols)
	}
	var showRow []string
	for _, r := range res.Rows {
		if r[0].Str() == hole {
			for _, d := range r {
				showRow = append(showRow, d.String())
			}
		}
	}
	if showRow == nil {
		t.Fatalf("SHOW CONSTRAINTS ECONOMY has no row for %q", hole)
	}
	if showRow[4] != fmt.Sprint(ref.PagesSkipped) {
		t.Errorf("SHOW pages_skipped = %s, ledger says %d", showRow[4], ref.PagesSkipped)
	}
	if showRow[9] != fmt.Sprint(ref.MaintNanos/1000) {
		t.Errorf("SHOW maint_us = %s, ledger says %d", showRow[9], ref.MaintNanos/1000)
	}

	// HTTP surfaces.
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	var debugRows []obs.EconomyRow
	if err := json.Unmarshal([]byte(get("/debug/constraints")), &debugRows); err != nil {
		t.Fatalf("/debug/constraints is not an EconomyRow array: %v", err)
	}
	found := false
	for _, r := range debugRows {
		if r.Name == hole {
			found = true
			if r.PagesSkipped != ref.PagesSkipped || r.QErrNodes != ref.QErrNodes || r.WALRecords != ref.WALRecords {
				t.Errorf("/debug/constraints diverged from ledger: %+v vs %+v", r, ref)
			}
		}
	}
	if !found {
		t.Fatalf("/debug/constraints missing %q:\n%v", hole, debugRows)
	}

	metrics := get("/metrics")
	wantSeries := fmt.Sprintf("%s{constraint=%q} %d", obs.MetricBenefitPagesSkipped, hole, ref.PagesSkipped)
	if !strings.Contains(metrics, wantSeries) {
		t.Errorf("/metrics missing series %q", wantSeries)
	}
	for _, fam := range []string{
		obs.MetricBenefitQErrSum, obs.MetricCostMaintenance, obs.MetricCostRefresh,
		obs.MetricCostWALRecords, obs.MetricQErrBlindSum,
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}

	// The decorated view is ranked by net benefit, descending.
	all := db.ConstraintEconomy()
	for i := 1; i < len(all); i++ {
		if all[i-1].NetBenefitUs < all[i].NetBenefitUs {
			t.Errorf("ledger not ranked by net benefit: %v", all)
		}
	}
}

// TestEconomyLedgerConcurrent runs parallel scans, DML write hooks, and a
// faulting refresh-retry loop against one database and then checks the
// ledger's exact arithmetic: counters from disjoint activities must land on
// their own constraints with no lost or misattributed credits. Run with
// -race, this is also the data-race gate for the whole credit path.
func TestEconomyLedgerConcurrent(t *testing.T) {
	const n = 2000
	db, hole := holeEconDB(t, n)
	db.MustExec(`CREATE TABLE ballast (id INT PRIMARY KEY, v INT,
		CONSTRAINT ballast_pos CHECK (v >= 0) SOFT)`)
	q := holeEconQuery(n)

	// Warm the plan cache and measure one run's deterministic skip count.
	if _, err := db.Exec(q); err != nil {
		t.Fatal(err)
	}
	perRun := economyRow(t, db, hole).PagesSkipped
	if perRun <= 0 {
		t.Fatal("warm-up run skipped no pages")
	}
	planBefore := planLines(t, db, "EXPLAIN "+q)

	const (
		scanners    = 4
		scansEach   = 20
		writers     = 2
		writesEach  = 150
		refreshes   = 10
		backoffEach = int64(30 * time.Millisecond) // 10ms + 20ms nominal
	)
	m := db.SoftcManager()
	m.Fault = fault.New(fault.Config{Seed: 7, ReadErrProb: 1})
	pol := softc.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Sleep: func(time.Duration) {}}

	var wg sync.WaitGroup
	errs := make(chan error, scanners*scansEach+writers*writesEach)
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scansEach; i++ {
				if _, err := db.Exec(q); err != nil {
					errs <- err
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesEach; i++ {
				id := w*writesEach + i
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO ballast VALUES (%d, %d)", id, id%7)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			// Every attempt faults, so each call charges exactly the nominal
			// backoff and never touches the table.
			if _, err := m.RefreshCheckConfidenceWithRetry(context.Background(), "ballast", "ballast_pos", pol); err == nil {
				errs <- fmt.Errorf("refresh succeeded at 100%% fault rate")
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	holeRow := economyRow(t, db, hole)
	totalScans := int64(1 + scanners*scansEach)
	if want := perRun * totalScans; holeRow.PagesSkipped != want {
		t.Errorf("pages skipped = %d, want exactly %d (%d per run × %d runs)",
			holeRow.PagesSkipped, want, perRun, totalScans)
	}
	if holeRow.QErrNodes != totalScans {
		t.Errorf("q-error nodes = %d, want exactly %d", holeRow.QErrNodes, totalScans)
	}

	ballast := economyRow(t, db, "ballast_pos")
	if want := int64(refreshes) * backoffEach; ballast.RefreshNanos != want {
		t.Errorf("refresh cost = %dns, want exactly %dns (%d retries × 30ms nominal backoff)",
			ballast.RefreshNanos, want, refreshes)
	}
	if ballast.MaintNanos <= 0 {
		t.Errorf("%d checked inserts charged no maintenance: %+v", writers*writesEach, ballast)
	}
	if ballast.PagesSkipped != 0 || ballast.RewriteRows != 0 {
		t.Errorf("ballast constraint earned benefits it cannot have: %+v", ballast)
	}

	// The executed plan never moved while the ledger accrued under load.
	if planAfter := planLines(t, db, "EXPLAIN "+q); planAfter != planBefore {
		t.Errorf("plan changed during concurrent ledger accrual:\n%s\nvs\n%s", planAfter, planBefore)
	}
}
