package engine

import (
	"fmt"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/schema"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
)

func (db *Database) createTable(ct *sql.CreateTable) (*Result, error) {
	cols := make([]schema.Column, len(ct.Cols))
	var pkCols []string
	for i, c := range ct.Cols {
		cols[i] = schema.Column{Name: c.Name, Type: c.Type, Nullable: !c.NotNull}
		if c.PrimaryKey {
			pkCols = append(pkCols, c.Name)
		}
	}
	def, err := schema.NewTable(ct.Name, cols...)
	if err != nil {
		return nil, err
	}
	if _, err := db.cat.CreateTable(def); err != nil {
		return nil, err
	}
	if len(pkCols) > 0 {
		if err := db.addConstraintDef(ct.Name, sql.ConstraintDef{
			Kind: catalog.PrimaryKey, Columns: pkCols, Mode: catalog.ModeEnforced, Confidence: 1,
		}); err != nil {
			return nil, err
		}
	}
	for _, cd := range ct.Constraints {
		if err := db.addConstraintDef(ct.Name, cd); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// addConstraintDef binds and registers a constraint, verifying existing
// rows for checked modes, and creating the supporting unique index for
// key constraints.
func (db *Database) addConstraintDef(table string, cd sql.ConstraintDef) error {
	te, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	con := &catalog.Constraint{
		Name:       cd.Name,
		Kind:       cd.Kind,
		Mode:       cd.Mode,
		Table:      te.Def.Name,
		Columns:    cd.Columns,
		RefTable:   cd.RefTable,
		RefColumns: cd.RefColumns,
		Confidence: cd.Confidence,
	}
	if cd.Kind == catalog.Check {
		bound, err := bindToTable(cd.Check, te.Def)
		if err != nil {
			return err
		}
		con.CheckExpr = bound
	}
	// Verify existing rows for modes that promise consistency with the
	// current state.
	if con.Mode.CheckedOnUpdate() && te.Heap.RowCount() > 0 {
		if err := db.verifyConstraintRows(te, con); err != nil {
			return err
		}
	}
	if err := db.cat.AddConstraint(con); err != nil {
		return err
	}
	// Key constraints get a backing unique index when enforced (the
	// informational flavor explicitly skips the maintenance cost).
	if (con.Kind == catalog.PrimaryKey || con.Kind == catalog.Unique) && con.Mode == catalog.ModeEnforced {
		idxName := "idx_" + strings.ToLower(con.Name)
		if _, err := db.cat.CreateIndex(idxName, te.Def.Name, con.Columns, true); err != nil {
			return err
		}
	}
	return nil
}

// verifyConstraintRows scans the table checking every row satisfies the
// constraint (used when adding enforced/ASC constraints to populated
// tables).
func (db *Database) verifyConstraintRows(te *catalog.TableEntry, con *catalog.Constraint) error {
	switch con.Kind {
	case catalog.Check:
		var bad int64
		te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
			ok, err := expr.EvalBool(con.CheckExpr, row)
			if err != nil || !ok {
				bad++
			}
			return true
		})
		if bad > 0 {
			return fmt.Errorf("engine: %d existing rows violate constraint %s", bad, con.Name)
		}
	case catalog.PrimaryKey, catalog.Unique:
		ords := make([]int, len(con.Columns))
		for i, c := range con.Columns {
			ords[i] = te.Def.ColumnIndex(c)
			if ords[i] < 0 {
				return fmt.Errorf("engine: constraint %s: no column %s", con.Name, c)
			}
		}
		seen := map[string]bool{}
		dup := false
		te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
			k := row.Project(ords).Key()
			if seen[k] {
				dup = true
				return false
			}
			seen[k] = true
			return true
		})
		if dup {
			return fmt.Errorf("engine: existing rows violate uniqueness of %s", con.Name)
		}
	case catalog.ForeignKey:
		ref, err := db.cat.Table(con.RefTable)
		if err != nil {
			return err
		}
		parentKeys := map[string]bool{}
		refOrds := make([]int, len(con.RefColumns))
		for i, c := range con.RefColumns {
			refOrds[i] = ref.Def.ColumnIndex(c)
		}
		ref.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
			parentKeys[row.Project(refOrds).Key()] = true
			return true
		})
		ords := make([]int, len(con.Columns))
		for i, c := range con.Columns {
			ords[i] = te.Def.ColumnIndex(c)
		}
		var orphan int64
		te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
			key := row.Project(ords)
			for _, d := range key {
				if d.IsNull() {
					return true // NULL FKs are exempt
				}
			}
			if !parentKeys[key.Key()] {
				orphan++
			}
			return true
		})
		if orphan > 0 {
			return fmt.Errorf("engine: %d existing rows violate foreign key %s", orphan, con.Name)
		}
	case catalog.FuncDep:
		// Verified by the miner or caller; a full check is available via
		// softc.VerifyFD.
	}
	return nil
}

func (db *Database) createIndex(ci *sql.CreateIndex) (*Result, error) {
	if _, err := db.cat.CreateIndex(ci.Name, ci.Table, ci.Columns, ci.Unique); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) createView(cv *sql.CreateView) (*Result, error) {
	name := strings.ToLower(cv.Name)
	if _, err := db.cat.Table(cv.Name); err == nil {
		return nil, fmt.Errorf("engine: %s already names a table", cv.Name)
	}
	if _, ok := db.views[name]; ok {
		return nil, fmt.Errorf("engine: view %s already exists", cv.Name)
	}
	// Validate by building once.
	if _, err := db.builder().BuildSelect(cv.Query); err != nil {
		return nil, fmt.Errorf("engine: invalid view %s: %w", cv.Name, err)
	}
	db.views[name] = cv.Query
	db.cat.Touch()
	return &Result{}, nil
}

func (db *Database) createSummary(cs *sql.CreateSummary) (*Result, error) {
	base, err := db.cat.Table(cs.Base)
	if err != nil {
		return nil, err
	}
	st := &catalog.SummaryTable{Name: cs.Name, Base: base.Def.Name, Informational: cs.Informational}
	if cs.Where != nil {
		bound, err := bindToTable(cs.Where, base.Def)
		if err != nil {
			return nil, err
		}
		st.Where = bound
	}
	if err := db.cat.CreateSummaryTable(st); err != nil {
		return nil, err
	}
	// Materialize existing rows.
	var n int64
	base.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
		match := true
		if st.Where != nil {
			ok, evalErr := expr.EvalBool(st.Where, row)
			if evalErr != nil {
				err = evalErr
				return false
			}
			match = ok
		}
		if match {
			n++
			if st.Heap != nil {
				st.Heap.Insert(row.Clone())
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if st.Informational {
		st.RowCountEstimate = n
	}
	return &Result{RowsAffected: n}, nil
}

// LinkException exposes §4.4 exception-AST linking to callers (there is no
// SQL syntax for it; DB2 would track the relationship internally).
func (db *Database) LinkException(constraintName, summaryName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.cat.LinkException(constraintName, summaryName); err != nil {
		return err
	}
	if db.dur != nil {
		if err := db.walSoftLocked(); err != nil {
			return err
		}
		return db.commitWALLocked()
	}
	return nil
}

func (db *Database) alterAdd(at *sql.AlterTableAdd) (*Result, error) {
	if err := db.addConstraintDef(at.Table, at.Constraint); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) dropTable(dt *sql.DropTable) (*Result, error) {
	if err := db.cat.DropTable(dt.Name); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// bindToTable binds an expression against a single table's columns.
func bindToTable(e expr.Expr, def *schema.Table) (expr.Expr, error) {
	cols := make([]plan.ColumnInfo, len(def.Columns))
	for i, c := range def.Columns {
		cols[i] = plan.ColumnInfo{
			Qualifier: def.Name, Name: c.Name, Kind: c.Type,
			SourceTable: def.Name, SourceColumn: c.Name, SourceOrdinal: i,
		}
	}
	return plan.BindExpr(e, cols)
}
