package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/types"
)

// lifecycleDB builds a table wide enough that scans span many pages, so
// page-granular cancellation checkpoints and slow-page injection have
// something to bite on.
func lifecycleDB(tb testing.TB, n int, configure ...func(*Database)) *Database {
	tb.Helper()
	db := Open()
	// Knobs that latch on the first statement (the admission gate) must be
	// set before the setup DDL below runs.
	for _, f := range configure {
		f(db)
	}
	db.MustExec("CREATE TABLE big (id INT, v INT, s VARCHAR(40))")
	te, err := db.Catalog().Table("big")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 97)),
			types.NewString(fmt.Sprintf("row-%032d", i)),
		}
		validated, err := te.Def.ValidateRow(row)
		if err != nil {
			tb.Fatal(err)
		}
		if err := db.InsertRow(te, validated); err != nil {
			tb.Fatal(err)
		}
	}
	db.MustExec("ANALYZE big")
	return db
}

// wantKind asserts err is a QueryError of the given kind and returns it.
func wantKind(tb testing.TB, err error, kind exec.ErrKind) *exec.QueryError {
	tb.Helper()
	if err == nil {
		tb.Fatalf("want %s QueryError, got nil", kind)
	}
	qe, ok := exec.AsQueryError(err)
	if !ok {
		tb.Fatalf("want %s QueryError, got %T: %v", kind, err, err)
	}
	if qe.Kind != kind {
		tb.Fatalf("error kind = %s, want %s (err: %v)", qe.Kind, kind, err)
	}
	return qe
}

func counterValue(db *Database, name string) int64 {
	return db.Metrics().Counter(name).Value()
}

// TestCancelBeforeExecution: a pre-canceled context aborts before any page
// is read, increments the canceled counter, and leaves a canceled trace.
func TestCancelBeforeExecution(t *testing.T) {
	db := lifecycleDB(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := counterValue(db, mQueriesCanceled)
	_, err := db.ExecCtx(ctx, "SELECT COUNT(*) AS n FROM big")
	wantKind(t, err, exec.KindCanceled)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled QueryError does not unwrap to context.Canceled: %v", err)
	}
	if got := counterValue(db, mQueriesCanceled); got != before+1 {
		t.Errorf("%s = %d, want %d", mQueriesCanceled, got, before+1)
	}
	recent := db.QueryLog().Recent(1)
	if len(recent) == 0 || recent[0].State != string(exec.KindCanceled) {
		t.Errorf("trace state after cancellation: %+v", recent)
	}
}

// TestCancelMidQuery: with every page stalled 2ms, a cancel fired 10ms in
// must abort the scan with a canceled QueryError naming an operator.
func TestCancelMidQuery(t *testing.T) {
	db := lifecycleDB(t, 3000)
	te, _ := db.Catalog().Table("big")
	if pages := te.Heap.PageCount(); pages < 20 {
		t.Fatalf("table too small to test mid-scan cancel: %d pages", pages)
	}
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(10*time.Millisecond, cancel)
	_, err := db.ExecCtx(ctx, "SELECT COUNT(*) AS n FROM big WHERE v > 3")
	qe := wantKind(t, err, exec.KindCanceled)
	if qe.Op == "" {
		t.Errorf("canceled QueryError has no operator attribution: %v", qe)
	}
}

// TestStmtTimeout: the database-level default deadline fires mid-scan and
// is classified as a timeout, both in the error and in the trace/metrics.
func TestStmtTimeout(t *testing.T) {
	db := lifecycleDB(t, 3000)
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: 2 * time.Millisecond})
	db.StmtTimeout = 15 * time.Millisecond
	before := counterValue(db, mQueriesTimedOut)
	_, err := db.Exec("SELECT COUNT(*) AS n FROM big WHERE v > 3")
	wantKind(t, err, exec.KindTimeout)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout QueryError does not unwrap to DeadlineExceeded: %v", err)
	}
	if got := counterValue(db, mQueriesTimedOut); got != before+1 {
		t.Errorf("%s = %d, want %d", mQueriesTimedOut, got, before+1)
	}
	recent := db.QueryLog().Recent(1)
	if len(recent) == 0 || recent[0].State != string(exec.KindTimeout) {
		t.Errorf("trace state after timeout: %+v", recent)
	}

	// A caller-supplied deadline takes the same path.
	db.StmtTimeout = 0
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err = db.ExecCtx(ctx, "SELECT COUNT(*) AS n FROM big WHERE v > 5")
	wantKind(t, err, exec.KindTimeout)
}

// TestMemBudget: a sort that would buffer the whole table trips a small
// budget with a typed out-of-memory error; lifting the budget succeeds.
// The plan cache must not key on the budget (same key, different budgets).
func TestMemBudget(t *testing.T) {
	const n = 2000
	db := lifecycleDB(t, n)
	q := "SELECT id FROM big ORDER BY v"
	db.MemBudget = 4096
	before := counterValue(db, mMemBudgetRejected)
	_, err := db.Exec(q)
	wantKind(t, err, exec.KindMemBudget)
	if !errors.Is(err, exec.ErrMemBudget) {
		t.Errorf("budget QueryError does not unwrap to ErrMemBudget: %v", err)
	}
	if got := counterValue(db, mMemBudgetRejected); got != before+1 {
		t.Errorf("%s = %d, want %d", mMemBudgetRejected, got, before+1)
	}
	recent := db.QueryLog().Recent(1)
	if len(recent) == 0 || recent[0].State != string(exec.KindMemBudget) {
		t.Errorf("trace state after budget rejection: %+v", recent)
	}

	db.MemBudget = 0
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
	if len(res.Rows) != n {
		t.Fatalf("unlimited budget returned %d rows, want %d", len(res.Rows), n)
	}

	// Hash aggregation and joins account against the same budget.
	db.MemBudget = 512
	_, err = db.Exec("SELECT s, COUNT(*) AS c FROM big GROUP BY s")
	wantKind(t, err, exec.KindMemBudget)
}

// TestAdmissionGate: with MaxConcurrent=1 a statement stalled inside the
// engine holds the only slot; a second statement's cancellation is
// attributed to the admission gate, and the slot frees on completion.
func TestAdmissionGate(t *testing.T) {
	db := lifecycleDB(t, 2000, func(db *Database) { db.MaxConcurrent = 1 })
	inj := fault.New(fault.Config{SlowProb: 1, SlowDelay: time.Millisecond})
	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	inj.SetSleep(func(time.Duration) {
		once.Do(func() { close(started) })
		<-release
	})
	db.Fault = inj

	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("SELECT COUNT(*) AS n FROM big")
		done <- err
	}()
	<-started

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecCtx(canceled, "SELECT COUNT(*) AS n FROM big WHERE v = 1")
	qe := wantKind(t, err, exec.KindCanceled)
	if qe.Op != "engine.admission" {
		t.Errorf("blocked statement's error op = %q, want engine.admission", qe.Op)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}
	db.Fault = nil
	if _, err := db.Exec("SELECT COUNT(*) AS n FROM big WHERE v = 2"); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

// TestWorkerPanicIsolation: injected panics in scan workers surface as a
// typed panic QueryError (never a crash), increment the recovered-panic
// counter, and leave the engine healthy for the next statement.
func TestWorkerPanicIsolation(t *testing.T) {
	db := lifecycleDB(t, 2000)
	db.Parallel = 4
	db.ParallelMinRows = 1
	for _, parallel := range []int{1, 4} {
		db.Parallel = parallel
		db.Fault = fault.New(fault.Config{PanicProb: 1})
		before := counterValue(db, mWorkerPanics)
		_, err := db.Exec("SELECT COUNT(*) AS n FROM big WHERE v > 3")
		qe := wantKind(t, err, exec.KindPanic)
		if !strings.Contains(qe.Error(), "injected panic") {
			t.Errorf("parallel=%d: panic QueryError lost the panic value: %v", parallel, qe)
		}
		if qe.Stack == "" {
			t.Errorf("parallel=%d: panic QueryError carries no stack", parallel)
		}
		if got := counterValue(db, mWorkerPanics); got <= before {
			t.Errorf("parallel=%d: %s did not increase", parallel, mWorkerPanics)
		}
		if s := db.QueryLog().Recent(1); len(s) == 0 || s[0].State != string(exec.KindPanic) {
			t.Errorf("parallel=%d: trace state after panic: %+v", parallel, s)
		}
		db.Fault = nil
		res, err := db.Exec("SELECT COUNT(*) AS n FROM big")
		if err != nil {
			t.Fatalf("parallel=%d: engine poisoned after recovered panic: %v", parallel, err)
		}
		if got := res.Rows[0][0].Int(); got != 2000 {
			t.Fatalf("parallel=%d: wrong rows after recovered panic: count=%d", parallel, got)
		}
	}
}

// TestTerminalStateInTrace: successful queries record state=ok in the
// trace, and EXPLAIN ANALYZE prints the terminal state.
func TestTerminalStateInTrace(t *testing.T) {
	db := lifecycleDB(t, 100)
	if _, err := db.Exec("SELECT COUNT(*) AS n FROM big"); err != nil {
		t.Fatal(err)
	}
	recent := db.QueryLog().Recent(1)
	if len(recent) == 0 || recent[0].State != "ok" {
		t.Fatalf("trace state after success: %+v", recent)
	}
	if r := recent[0].Render(); !strings.Contains(r, "state=ok") {
		t.Errorf("rendered trace missing state=ok:\n%s", r)
	}
	res, err := db.Exec("EXPLAIN ANALYZE SELECT COUNT(*) AS n FROM big")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, row := range res.Rows {
		for _, d := range row {
			out.WriteString(d.String())
			out.WriteByte('\n')
		}
	}
	if !strings.Contains(out.String(), "terminal state: ok") {
		t.Errorf("EXPLAIN ANALYZE missing terminal state:\n%s", out.String())
	}
}

// TestMustExecTruncatesQuery: MustExec's panic value is a QueryError whose
// message clips the statement text, so a huge hostile statement cannot
// land whole in logs.
func TestMustExecTruncatesQuery(t *testing.T) {
	db := Open()
	long := "SELECT bogus FROM nowhere WHERE pad = '" + strings.Repeat("x", 4000) + "'"
	defer func() {
		r := recover()
		qe, ok := r.(*exec.QueryError)
		if !ok {
			t.Fatalf("MustExec panic value = %T, want *exec.QueryError", r)
		}
		if qe.Op != "engine.MustExec" {
			t.Errorf("op = %q", qe.Op)
		}
		if msg := qe.Error(); len(msg) > 400 {
			t.Errorf("panic message not truncated: %d bytes", len(msg))
		}
	}()
	db.MustExec(long)
	t.Fatal("MustExec did not panic on a bad statement")
}

// numGoroutinesSettled polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers) or the deadline passes.
func numGoroutinesSettled(baseline int) (int, bool) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelLeavesNoGoroutines: canceled parallel queries must not strand
// scan workers — the goroutine count returns to its pre-test baseline.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	db := lifecycleDB(t, 3000)
	db.Parallel = 8
	db.ParallelMinRows = 1
	db.Fault = fault.New(fault.Config{SlowProb: 0.5, SlowDelay: time.Millisecond})
	baseline := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(r.Intn(4_000)) * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		_, err := db.ExecCtx(ctx, "SELECT v, COUNT(*) AS c FROM big WHERE id >= 0 GROUP BY v ORDER BY v")
		timer.Stop()
		cancel()
		if err != nil {
			wantKind(t, err, exec.KindCanceled)
		}
	}
	if n, ok := numGoroutinesSettled(baseline); !ok {
		t.Fatalf("goroutines leaked: %d before, %d after settle window", baseline, n)
	}
}

// TestCancelStress hammers the engine from many goroutines canceling at
// random points; run under -race this is the lifecycle path's concurrency
// proof. Every statement either returns the correct answer or a typed
// cancellation/timeout error — nothing else, and never a wrong count.
func TestCancelStress(t *testing.T) {
	const n = 3000
	db := lifecycleDB(t, n)
	db.Parallel = 4
	db.ParallelMinRows = 1
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				delay := time.Duration(r.Intn(3_000)) * time.Microsecond
				timer := time.AfterFunc(delay, cancel)
				res, err := db.ExecCtx(ctx, "SELECT COUNT(*) AS c FROM big WHERE v >= 0")
				timer.Stop()
				cancel()
				if err != nil {
					qe, ok := exec.AsQueryError(err)
					if !ok || (qe.Kind != exec.KindCanceled && qe.Kind != exec.KindTimeout) {
						t.Errorf("stress: unexpected error %T: %v", err, err)
					}
					continue
				}
				if got := res.Rows[0][0].Int(); got != n {
					t.Errorf("stress: wrong answer under cancellation: count=%d, want %d", got, n)
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
}
