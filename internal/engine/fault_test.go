package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"softdb/internal/exec"
	"softdb/internal/fault"
)

// The fault-injection differential suite: run a fixed query mix with
// seeded storage read errors, injected operator panics, and artificial
// slow pages, comparing against a no-fault baseline. The contract under
// test is partial service, never corruption — each statement either
// returns exactly the baseline answer or a typed QueryError traceable to
// an injected fault; no crash, no deadlock, no stranded goroutine.

// faultQueries exercises every operator family the lifecycle instruments:
// serial and parallel scans, index scans, sorts, hash aggregation, hash
// join, and distinct.
var faultQueries = []string{
	"SELECT COUNT(*) AS n FROM big WHERE v > 3",
	"SELECT id, v FROM big WHERE v = 7",
	"SELECT v, COUNT(*) AS c FROM big GROUP BY v ORDER BY v",
	"SELECT DISTINCT v FROM big WHERE id < 500",
	"SELECT COUNT(*) AS n FROM big a, big b WHERE a.id = b.id AND a.v < 5",
	"SELECT id FROM big WHERE v >= 90 ORDER BY id DESC LIMIT 10",
}

// fingerprint renders a result order-insensitively, so parallel plans
// compare equal to serial ones.
func fingerprint(res *Result) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, d := range row {
			cells[i] = d.String()
		}
		lines = append(lines, strings.Join(cells, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// checkFaultedResult enforces the differential property on one execution.
func checkFaultedResult(t *testing.T, label string, res *Result, err error, baseline string) {
	t.Helper()
	if err == nil {
		if got := fingerprint(res); got != baseline {
			t.Errorf("%s: WRONG ROWS under injected faults:\ngot:\n%s\nwant:\n%s", label, got, baseline)
		}
		return
	}
	qe, ok := exec.AsQueryError(err)
	if !ok {
		t.Errorf("%s: untyped error under faults: %T: %v", label, err, err)
		return
	}
	switch qe.Kind {
	case exec.KindError:
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("%s: error not traceable to an injected fault: %v", label, err)
		}
	case exec.KindPanic:
		if !strings.Contains(qe.Error(), "injected panic") {
			t.Errorf("%s: panic not the injected one: %v", label, err)
		}
	default:
		t.Errorf("%s: unexpected error kind %s: %v", label, qe.Kind, err)
	}
	if qe.Op == "" {
		t.Errorf("%s: fault error lost operator attribution: %v", label, err)
	}
}

// TestFaultDifferential is the main fault-injection run: three fault
// mixes, several seeds each, serial and parallel execution.
func TestFaultDifferential(t *testing.T) {
	db := lifecycleDB(t, 3000)
	db.ParallelMinRows = 1

	baselines := make([]string, len(faultQueries))
	for i, q := range faultQueries {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		baselines[i] = fingerprint(res)
	}

	configs := []fault.Config{
		{ReadErrProb: 0.05},
		{PanicProb: 0.02},
		{ReadErrProb: 0.03, PanicProb: 0.01, SlowProb: 0.05, SlowDelay: 50 * time.Microsecond},
	}
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	start := runtime.NumGoroutine()
	okRuns, faulted := 0, 0
	for _, parallel := range []int{1, 4} {
		db.Parallel = parallel
		for ci, cfg := range configs {
			for _, seed := range seeds {
				cfg.Seed = seed
				db.Fault = fault.New(cfg)
				for i, q := range faultQueries {
					label := fmt.Sprintf("parallel=%d cfg=%d seed=%d query=%d", parallel, ci, seed, i)
					res, err := db.ExecCtx(nil, q)
					checkFaultedResult(t, label, res, err, baselines[i])
					if err == nil {
						okRuns++
					} else {
						faulted++
					}
				}
			}
		}
	}
	db.Fault = nil
	// The sweep must actually have exercised both sides of the property.
	if okRuns == 0 {
		t.Error("no query survived any fault mix; fault rates too hot to test the success path")
	}
	if faulted == 0 {
		t.Error("no query hit any fault; fault rates too cold to test the error path")
	}
	// Faulted queries (including recovered panics) must not strand workers.
	if n, ok := numGoroutinesSettled(start); !ok {
		t.Fatalf("goroutines leaked across fault sweep: %d before, %d after", start, n)
	}
	// And the engine must come out healthy.
	for i, q := range faultQueries {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("engine unhealthy after fault sweep: %q: %v", q, err)
		}
		if fingerprint(res) != baselines[i] {
			t.Fatalf("engine corrupted after fault sweep: %q diverged", q)
		}
	}
}

// TestFaultWithDeadline layers slow pages under a statement deadline: the
// only acceptable outcomes are the exact answer, a typed timeout, or a
// typed injected fault.
func TestFaultWithDeadline(t *testing.T) {
	db := lifecycleDB(t, 3000)
	db.StmtTimeout = 5 * time.Millisecond
	base, err := db.Exec("SELECT COUNT(*) AS n FROM big")
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(base)
	for seed := int64(1); seed <= 5; seed++ {
		db.Fault = fault.New(fault.Config{SlowProb: 0.3, SlowDelay: time.Millisecond, ReadErrProb: 0.01, Seed: seed})
		res, err := db.Exec("SELECT COUNT(*) AS n FROM big")
		if err == nil {
			if fingerprint(res) != want {
				t.Fatalf("seed %d: wrong rows under slow pages", seed)
			}
			continue
		}
		qe, ok := exec.AsQueryError(err)
		if !ok || (qe.Kind != exec.KindTimeout && qe.Kind != exec.KindError) {
			t.Fatalf("seed %d: unexpected outcome %T: %v", seed, err, err)
		}
	}
}
