package engine

import (
	"fmt"
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/types"
)

func newDB(t *testing.T, script string) *Database {
	t.Helper()
	db := Open()
	if script != "" {
		if _, err := db.ExecScript(script); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	return db
}

func rowsAsStrings(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE emp (id INT PRIMARY KEY, name VARCHAR(20), salary FLOAT);
		INSERT INTO emp VALUES (1, 'ann', 100.5), (2, 'bob', 90.0), (3, 'carol', 120.25);
	`)
	res, err := db.Exec("SELECT name, salary FROM emp WHERE salary > 95 ORDER BY salary DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", rowsAsStrings(res.Rows))
	}
	if res.Rows[0][0].Str() != "carol" || res.Rows[1][0].Str() != "ann" {
		t.Errorf("order: %v", rowsAsStrings(res.Rows))
	}
	if res.Columns[0] != "name" || res.Columns[1] != "salary" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestArithmeticProjection(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (3, 4);
	`)
	rows, err := db.Query("SELECT a + b * 2 AS v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 11 {
		t.Errorf("3+4*2 = %v", rows[0][0])
	}
}

func TestJoinAndAggregate(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE dept (id INT PRIMARY KEY, name VARCHAR(20));
		CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT NOT NULL, salary FLOAT);
		INSERT INTO dept VALUES (1, 'eng'), (2, 'ops');
		INSERT INTO emp VALUES (10, 1, 100), (11, 1, 110), (12, 2, 90);
	`)
	rows, err := db.Query(`
		SELECT d.name, COUNT(*) AS n, SUM(e.salary) AS total
		FROM dept d, emp e
		WHERE d.id = e.dept_id
		GROUP BY d.name
		ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rowsAsStrings(rows))
	}
	if rows[0][0].Str() != "eng" || rows[0][1].Int() != 2 || rows[0][2].Float() != 210 {
		t.Errorf("eng group: %v", rows[0])
	}
	if rows[1][0].Str() != "ops" || rows[1][1].Int() != 1 {
		t.Errorf("ops group: %v", rows[1])
	}
}

func TestScalarAggregates(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (1, NULL), (2, 5), (3, 7);
	`)
	rows, err := db.Query("SELECT COUNT(*) , COUNT(b), SUM(b), MIN(a), MAX(a), AVG(b) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r[0].Int() != 3 || r[1].Int() != 2 || r[2].Int() != 12 || r[3].Int() != 1 || r[4].Int() != 3 {
		t.Errorf("aggregates: %v", r)
	}
	if r[5].Float() != 6 {
		t.Errorf("avg: %v", r[5])
	}
	// Empty input: scalar aggregation still produces one row.
	rows, err = db.Query("SELECT COUNT(*), SUM(a) FROM t WHERE a > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty scalar agg: %v", rowsAsStrings(rows))
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2), (2), (3), (3), (3);
	`)
	rows, err := db.Query("SELECT DISTINCT a FROM t ORDER BY a LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 2 {
		t.Errorf("distinct+limit: %v", rowsAsStrings(rows))
	}
}

func TestUnionAll(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE a (x INT); CREATE TABLE b (x INT);
		INSERT INTO a VALUES (1); INSERT INTO b VALUES (2);
	`)
	rows, err := db.Query("SELECT x FROM a UNION ALL SELECT x FROM b")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("union: %v", rowsAsStrings(rows))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (id INT PRIMARY KEY, v INT);
		INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);
	`)
	res := db.MustExec("UPDATE t SET v = v + 1 WHERE id >= 2")
	if res.RowsAffected != 2 {
		t.Errorf("update affected: %d", res.RowsAffected)
	}
	rows, _ := db.Query("SELECT v FROM t WHERE id = 3")
	if rows[0][0].Int() != 31 {
		t.Errorf("after update: %v", rows[0])
	}
	res = db.MustExec("DELETE FROM t WHERE v = 10")
	if res.RowsAffected != 1 {
		t.Errorf("delete affected: %d", res.RowsAffected)
	}
	rows, _ = db.Query("SELECT COUNT(*) FROM t")
	if rows[0][0].Int() != 2 {
		t.Errorf("after delete: %v", rows[0])
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (id INT PRIMARY KEY, v INT);
		INSERT INTO t VALUES (1, 10);
	`)
	if _, err := db.Exec("INSERT INTO t VALUES (1, 99)"); err == nil {
		t.Error("duplicate PK should fail")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (NULL, 5)"); err == nil {
		t.Error("NULL PK should fail")
	}
}

func TestForeignKeyEnforced(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE p (id INT PRIMARY KEY);
		CREATE TABLE c (id INT PRIMARY KEY, pid INT, FOREIGN KEY (pid) REFERENCES p (id));
		INSERT INTO p VALUES (1);
	`)
	db.MustExec("INSERT INTO c VALUES (10, 1)")
	db.MustExec("INSERT INTO c VALUES (11, NULL)") // NULL FK allowed
	if _, err := db.Exec("INSERT INTO c VALUES (12, 99)"); err == nil {
		t.Error("orphan FK should fail")
	}
}

func TestCheckConstraintEnforced(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT, b INT, CHECK (a <= b))`)
	db.MustExec("INSERT INTO t VALUES (1, 2)")
	db.MustExec("INSERT INTO t VALUES (NULL, 2)") // NULL check passes
	if _, err := db.Exec("INSERT INTO t VALUES (3, 2)"); err == nil {
		t.Error("check violation should fail")
	}
	if _, err := db.Exec("UPDATE t SET a = 10 WHERE b = 2"); err == nil {
		t.Error("check violation on update should fail")
	}
}

func TestInformationalConstraintNotChecked(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT, CONSTRAINT c1 CHECK (a <= b) INFORMATIONAL)`)
	// A violating insert succeeds: informational constraints are promises,
	// never checked (§1).
	db.MustExec("INSERT INTO t VALUES (3, 2)")
	con := db.Catalog().ConstraintByName("c1")
	if con == nil || !con.Active {
		t.Error("informational constraint should remain active (the promise is external)")
	}
}

func TestASCDeactivatedOnViolation(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT, CONSTRAINT soft1 CHECK (a <= b) SOFT);
		INSERT INTO t VALUES (1, 2);
	`)
	con := db.Catalog().ConstraintByName("soft1")
	if con == nil || !con.Active {
		t.Fatal("ASC should start active")
	}
	res := db.MustExec("INSERT INTO t VALUES (5, 2)") // violates, but succeeds
	if !con.Active {
		// expected
	} else {
		t.Error("ASC should be deactivated by a violating write")
	}
	if len(res.Notices) == 0 || !strings.Contains(res.Notices[0], "deactivated") {
		t.Errorf("notices: %v", res.Notices)
	}
	rows, _ := db.Query("SELECT COUNT(*) FROM t")
	if rows[0][0].Int() != 2 {
		t.Error("violating insert must still be applied")
	}
}

func TestASCAddRejectedWhenRowsViolate(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (5, 2);
	`)
	if _, err := db.Exec("ALTER TABLE t ADD CONSTRAINT s CHECK (a <= b) SOFT"); err == nil {
		t.Error("ASC must be consistent with the current state")
	}
	// An SSC tolerates existing violations.
	db.MustExec("ALTER TABLE t ADD CONSTRAINT ssc CHECK (a <= b) SOFT STATISTICAL CONFIDENCE 0.5")
}

func TestJoinEliminationPlan(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE dim (id INT PRIMARY KEY, name VARCHAR(10));
		CREATE TABLE fact (id INT PRIMARY KEY, dim_id INT NOT NULL, qty INT,
			FOREIGN KEY (dim_id) REFERENCES dim (id) NOT ENFORCED);
		INSERT INTO dim VALUES (1, 'x'), (2, 'y');
		INSERT INTO fact VALUES (10, 1, 5), (11, 2, 7), (12, 1, 3);
	`)
	res, err := db.Exec("SELECT f.qty, f.dim_id FROM fact f, dim d WHERE f.dim_id = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "Join") {
		t.Errorf("join should be eliminated:\n%s", res.Plan)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows: %v", rowsAsStrings(res.Rows))
	}
	foundTrace := false
	for _, tr := range res.Trace {
		if strings.Contains(tr, "join-elimination") {
			foundTrace = true
		}
	}
	if !foundTrace {
		t.Errorf("trace: %v", res.Trace)
	}
	// Selecting a non-key dim column keeps the join.
	res, err = db.Exec("SELECT f.qty, d.name FROM fact f, dim d WHERE f.dim_id = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Join") {
		t.Errorf("join needed here:\n%s", res.Plan)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows: %v", rowsAsStrings(res.Rows))
	}
}

func TestJoinEliminationNullableFK(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE dim (id INT PRIMARY KEY);
		CREATE TABLE fact (id INT PRIMARY KEY, dim_id INT,
			FOREIGN KEY (dim_id) REFERENCES dim (id) NOT ENFORCED);
		INSERT INTO dim VALUES (1);
		INSERT INTO fact VALUES (10, 1), (11, NULL);
	`)
	// Inner join drops the NULL row; elimination must preserve that.
	res, err := db.Exec("SELECT f.id FROM fact f, dim d WHERE f.dim_id = d.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10 {
		t.Errorf("nullable FK elimination: %v\n%s", rowsAsStrings(res.Rows), res.Plan)
	}
}

func TestBranchPruningMonthlyView(t *testing.T) {
	db := Open()
	var script strings.Builder
	for m := 1; m <= 12; m++ {
		fmt.Fprintf(&script, `CREATE TABLE sales_%02d (month INT, amount INT, CHECK (month = %d));`, m, m)
		fmt.Fprintf(&script, `INSERT INTO sales_%02d VALUES (%d, %d);`, m, m, m*100)
	}
	script.WriteString("CREATE VIEW sales AS SELECT * FROM sales_01")
	for m := 2; m <= 12; m++ {
		fmt.Fprintf(&script, " UNION ALL SELECT * FROM sales_%02d", m)
	}
	script.WriteString(";")
	if _, err := db.ExecScript(script.String()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT month, amount FROM sales WHERE month >= 1 AND month <= 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %v", rowsAsStrings(res.Rows))
	}
	// Only 3 of 12 branches should be scanned.
	scans := strings.Count(res.Plan, "SeqScan")
	if scans != 3 {
		t.Errorf("expected 3 scans, plan:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "pruned=9") {
		t.Errorf("pruned count missing:\n%s", res.Plan)
	}
}

func TestPredicateIntroductionFromCheck(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE purchase (
			id INT PRIMARY KEY,
			order_date DATE NOT NULL,
			ship_date DATE,
			CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
		);
		CREATE INDEX idx_order ON purchase (order_date);
	`)
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+(i%21)))
	}
	db.MustExec("ANALYZE purchase")
	res, err := db.Exec("SELECT id FROM purchase WHERE ship_date = DATE '1999-03-15'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Errorf("introduced predicate should enable the index:\n%s\ntrace: %v", res.Plan, res.Trace)
	}
	// Verify correctness against a full scan baseline.
	db2 := Open()
	db2.RewriteOpts.NoPredIntro = true
	// re-run the whole setup on db2
	db2.MustExec(`CREATE TABLE purchase (
		id INT PRIMARY KEY, order_date DATE NOT NULL, ship_date DATE,
		CONSTRAINT ship_window CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT)`)
	for i := 0; i < 200; i++ {
		db2.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+(i%21)))
	}
	for i := 200; i < 3000; i++ {
		db2.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+(i%21)))
	}
	want, _ := db2.Query("SELECT id FROM purchase WHERE ship_date = DATE '1999-03-15'")
	if len(res.Rows) != len(want) {
		t.Errorf("rewrite changed answers: got %d rows, want %d", len(res.Rows), len(want))
	}
}

func TestExceptionASTUnionRewrite(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE purchase (
			id INT PRIMARY KEY,
			order_date DATE NOT NULL,
			ship_date DATE,
			CONSTRAINT ship3w CHECK (ship_date <= order_date + 21) SOFT STATISTICAL CONFIDENCE 0.99
		);
		CREATE INDEX idx_order ON purchase (order_date);
	`)
	// 99% within 3 weeks, 1% late.
	for i := 0; i < 300; i++ {
		lag := i % 20
		if i%100 == 0 {
			lag = 60 // late shipment
		}
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+lag))
	}
	db.MustExec(`CREATE SUMMARY TABLE late_shipments AS
		(SELECT * FROM purchase WHERE ship_date > order_date + 21)`)
	if err := db.LinkException("ship3w", "late_shipments"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("ANALYZE purchase")
	db.DisablePlanCache = true // we toggle rewrite flags between runs

	q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + 160"
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "late_shipments") || !strings.Contains(res.Plan, "UnionAll") {
		t.Errorf("exception-union rewrite expected:\n%s\ntrace: %v", res.Plan, res.Trace)
	}
	// Cross-check answers with the rewrite disabled.
	db.RewriteOpts.NoExceptionAST = true
	db.RewriteOpts.NoSSCTwins = true
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.RewriteOpts.NoExceptionAST = false
	if len(res.Rows) != len(want) {
		t.Errorf("rewrite changed answers: got %v want %v", rowsAsStrings(res.Rows), rowsAsStrings(want))
	}
	// The late row (id 100, lag 60 → ship = 1999-01-01 + 160) must appear.
	found := false
	for _, r := range res.Rows {
		if r[0].Int() == 100 {
			found = true
		}
	}
	if !found {
		t.Errorf("late shipment must be found via the exception AST: %v", rowsAsStrings(res.Rows))
	}
}

func TestSSCTwinChangesEstimate(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE project (
			id INT PRIMARY KEY,
			start_date DATE NOT NULL,
			end_date DATE,
			CONSTRAINT dur CHECK (end_date <= start_date + 30) SOFT STATISTICAL CONFIDENCE 0.9
		);
	`)
	for i := 0; i < 500; i++ {
		dur := i % 28
		if i%10 == 0 {
			dur = 200
		}
		db.MustExec(fmt.Sprintf(
			"INSERT INTO project VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+dur))
	}
	db.MustExec("ANALYZE project")
	db.DisablePlanCache = true // we toggle optimizer flags between runs
	q := "SELECT id FROM project WHERE start_date <= DATE '1999-06-15' AND end_date >= DATE '1999-06-15'"
	resWith, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	db.NoSSCEstimation = true
	resWithout, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	db.NoSSCEstimation = false
	if resWith.EstRows == resWithout.EstRows {
		t.Errorf("SSC twin should change the estimate: with=%.1f without=%.1f",
			resWith.EstRows, resWithout.EstRows)
	}
	// Identical answers either way — twins are estimation-only.
	if len(resWith.Rows) != len(resWithout.Rows) {
		t.Errorf("estimation-only predicates must not change answers: %d vs %d",
			len(resWith.Rows), len(resWithout.Rows))
	}
}

func TestFDSortSimplification(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE denorm (order_id INT PRIMARY KEY, cust_id INT, cust_name VARCHAR(20));
		INSERT INTO denorm VALUES (1, 100, 'ann'), (2, 100, 'ann'), (3, 200, 'bob');
	`)
	// cust_id → cust_name is a mined FD.
	err := db.Catalog().AddConstraint(&catalog.Constraint{
		Name: "fd_cust", Kind: catalog.FuncDep, Mode: catalog.ModeSoftAbsolute,
		Table: "denorm", Columns: []string{"cust_id"}, DepColumns: []string{"cust_name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT cust_id, cust_name FROM denorm ORDER BY cust_id, cust_name")
	if err != nil {
		t.Fatal(err)
	}
	hasSimplify := false
	for _, tr := range res.Trace {
		if strings.Contains(tr, "sort-simplify") {
			hasSimplify = true
		}
	}
	if !hasSimplify {
		t.Errorf("FD should drop the second sort key; trace: %v", res.Trace)
	}
	// ORDER BY pk, anything: everything determined by the key.
	res, err = db.Exec("SELECT order_id, cust_name FROM denorm ORDER BY order_id, cust_name")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Trace, "; ")
	if !strings.Contains(joined, "sort-simplify") {
		t.Errorf("PK prefix should simplify sort; trace: %v", res.Trace)
	}
}

func TestSortEliminatedWhenKeyPinned(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (1, 5), (1, 3);
	`)
	res, err := db.Exec("SELECT b FROM t WHERE a = 1 ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "Sort") {
		t.Errorf("sort on pinned column should vanish:\n%s", res.Plan)
	}
}

func TestGroupByReduction(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE denorm (id INT PRIMARY KEY, cust_id INT, cust_name VARCHAR(20), amt INT);
		INSERT INTO denorm VALUES (1, 100, 'ann', 5), (2, 100, 'ann', 6), (3, 200, 'bob', 7);
	`)
	if err := db.Catalog().AddConstraint(&catalog.Constraint{
		Name: "fd_cust", Kind: catalog.FuncDep, Mode: catalog.ModeSoftAbsolute,
		Table: "denorm", Columns: []string{"cust_id"}, DepColumns: []string{"cust_name"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT cust_id, cust_name, SUM(amt) AS total
		FROM denorm GROUP BY cust_id, cust_name ORDER BY cust_id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", rowsAsStrings(res.Rows))
	}
	if res.Rows[0][2].Int() != 11 || res.Rows[1][2].Int() != 7 {
		t.Errorf("sums: %v", rowsAsStrings(res.Rows))
	}
	if !strings.Contains(res.Plan, "redundant") {
		t.Errorf("group reduction expected in plan:\n%s\ntrace: %v", res.Plan, res.Trace)
	}
}

func TestPlanCache(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, CONSTRAINT pos CHECK (a >= 0) SOFT);
		INSERT INTO t VALUES (1);
	`)
	q := "SELECT a FROM t WHERE a >= 0"
	db.MustExec(q)
	db.MustExec(q)
	cs := db.CacheStats()
	if cs.Hits < 1 {
		t.Errorf("expected a cache hit: %+v", cs)
	}
	if db.CachedPlanCount() != 1 {
		t.Errorf("cached plans: %d", db.CachedPlanCount())
	}
	// A violating write deactivates the ASC, bumping the catalog version
	// and invalidating dependent plans (§4.1).
	db.MustExec("INSERT INTO t VALUES (-5)")
	db.MustExec(q)
	cs = db.CacheStats()
	if cs.Invalidations < 1 {
		t.Errorf("expected invalidation after ASC violation: %+v", cs)
	}
}

func TestExplain(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
	`)
	res, err := db.Exec("EXPLAIN SELECT * FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0].Str() + "\n"
	}
	if !strings.Contains(text, "SeqScan") || !strings.Contains(text, "estimated rows") {
		t.Errorf("explain output:\n%s", text)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT, b VARCHAR(5), c INT)`)
	db.MustExec("INSERT INTO t (c, a) VALUES (3, 1)")
	rows, _ := db.Query("SELECT a, b, c FROM t")
	if rows[0][0].Int() != 1 || !rows[0][1].IsNull() || rows[0][2].Int() != 3 {
		t.Errorf("column-list insert: %v", rows[0])
	}
}

func TestAnalyzeAndStats(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT)`)
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i%10))
	}
	db.MustExec("ANALYZE t")
	te, _ := db.Catalog().Table("t")
	if te.Stats == nil {
		t.Fatal("stats missing")
	}
	cs := te.Stats.Column("a")
	if cs.NDV != 10 || cs.RowCount != 100 {
		t.Errorf("stats: %s", cs)
	}
}

func TestViewExpansion(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (1, 10), (2, 20);
		CREATE VIEW v AS SELECT a, b FROM t WHERE b > 5;
	`)
	rows, err := db.Query("SELECT a FROM v WHERE a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Errorf("view rows: %v", rowsAsStrings(rows))
	}
}

func TestIndexScanUsedForSelectiveRange(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT, b INT); CREATE INDEX ia ON t (a)`)
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2))
	}
	db.MustExec("ANALYZE t")
	res, err := db.Exec("SELECT b FROM t WHERE a BETWEEN 100 AND 110")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Errorf("selective range should use index:\n%s", res.Plan)
	}
	if len(res.Rows) != 11 {
		t.Errorf("rows: %d", len(res.Rows))
	}
	// Unselective predicate prefers a sequential scan.
	res, err = db.Exec("SELECT b FROM t WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "SeqScan") {
		t.Errorf("unselective range should seq scan:\n%s", res.Plan)
	}
}

func TestContradictionYieldsEmpty(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT); INSERT INTO t VALUES (1)`)
	res, err := db.Exec("SELECT a FROM t WHERE a = 1 AND a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("contradiction: %v", rowsAsStrings(res.Rows))
	}
	if !strings.Contains(res.Plan, "Empty") {
		t.Errorf("plan should be Empty:\n%s", res.Plan)
	}
}

func TestErrorPaths(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT)`)
	cases := []string{
		"SELECT * FROM missing",
		"SELECT missing FROM t",
		"INSERT INTO t VALUES (1, 2)",
		"INSERT INTO missing VALUES (1)",
		"UPDATE t SET missing = 1",
		"DELETE FROM missing",
		"CREATE TABLE t (a INT)",
		"CREATE INDEX i ON t (missing)",
		"ANALYZE missing",
		"SELECT a, COUNT(*) FROM t", // non-grouped scalar with aggregate
	}
	for _, q := range cases {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestHaving(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE sales (region INT, amount INT);
		INSERT INTO sales VALUES (1, 10), (1, 20), (2, 5), (2, 2), (3, 100);
	`)
	rows, err := db.Query(`SELECT region, SUM(amount) AS total
		FROM sales GROUP BY region HAVING total > 10 ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("having rows: %v", rowsAsStrings(rows))
	}
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 30 {
		t.Errorf("group 1: %v", rows[0])
	}
	if rows[1][0].Int() != 3 || rows[1][1].Int() != 100 {
		t.Errorf("group 3: %v", rows[1])
	}
	// HAVING on a grouping column works too.
	rows, err = db.Query(`SELECT region, COUNT(*) AS n
		FROM sales GROUP BY region HAVING region <> 2 ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("having on group col: %v", rowsAsStrings(rows))
	}
	// Errors: HAVING without GROUP BY; unknown reference.
	if _, err := db.Exec("SELECT region FROM sales HAVING region > 1"); err == nil {
		t.Error("HAVING without GROUP BY should fail")
	}
	if _, err := db.Exec("SELECT region, SUM(amount) AS total FROM sales GROUP BY region HAVING bogus > 1"); err == nil {
		t.Error("unknown HAVING reference should fail")
	}
}

func TestIndexMinMaxShortcut(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT NOT NULL, b INT); CREATE INDEX ia ON t (a)`)
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", (i*37)%10000, i))
	}
	db.MustExec("ANALYZE t")
	res, err := db.Exec("SELECT MIN(a), MAX(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexMinMax") {
		t.Errorf("shortcut expected:\n%s", res.Plan)
	}
	// Validate against a scan-based answer.
	db.NoIndexes = true
	db.DisablePlanCache = true
	want, err := db.Exec("SELECT MIN(a), MAX(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	db.NoIndexes = false
	if !res.Rows[0].Equal(want.Rows[0]) {
		t.Errorf("shortcut answers: %v vs %v", res.Rows[0], want.Rows[0])
	}
	if res.Ctx.IO.PagesRead >= want.Ctx.IO.PagesRead {
		t.Errorf("shortcut should read fewer pages: %d vs %d",
			res.Ctx.IO.PagesRead, want.Ctx.IO.PagesRead)
	}
	// Filters disable the shortcut.
	res, _ = db.Exec("SELECT MIN(a) FROM t WHERE b > 10")
	if strings.Contains(res.Plan, "IndexMinMax") {
		t.Errorf("filtered min/max must not shortcut:\n%s", res.Plan)
	}
	// Nullable columns disable it (NULLs sort first in the index).
	db.MustExec("CREATE INDEX ib ON t (b)")
	res, _ = db.Exec("SELECT MIN(b) FROM t")
	if strings.Contains(res.Plan, "IndexMinMax") {
		t.Errorf("nullable min/max must not shortcut:\n%s", res.Plan)
	}
	// Shortcut stays correct under deletes (unlike a stored min/max SC).
	db.MustExec("DELETE FROM t WHERE a = 0")
	rows, _ := db.Query("SELECT MIN(a) FROM t")
	if rows[0][0].Int() == 0 {
		t.Error("min must move after deleting the minimum")
	}
}

func TestIndexMinMaxEmptyTable(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT NOT NULL); CREATE INDEX ia ON t (a)`)
	rows, err := db.Query("SELECT MIN(a), MAX(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0][0].IsNull() || !rows[0][1].IsNull() {
		t.Errorf("empty min/max: %v", rowsAsStrings(rows))
	}
}

func TestBackupPlanFailover(t *testing.T) {
	// A query whose plan depends on an ASC (predicate introduction) gets a
	// backup plan; overturning the ASC reverts to the backup instead of
	// recompiling (§4.1).
	db := newDB(t, `
		CREATE TABLE purchase (
			id INT PRIMARY KEY,
			order_date DATE NOT NULL,
			ship_date DATE,
			CONSTRAINT win CHECK (ship_date >= order_date AND ship_date <= order_date + 21) SOFT
		);
		CREATE INDEX io ON purchase (order_date);
	`)
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i/2, i/2+i%20))
	}
	db.MustExec("ANALYZE purchase")
	q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-06-01'"
	first := db.MustExec(q)
	if !strings.Contains(first.Plan, "IndexScan") {
		t.Fatalf("primary plan should use the ASC:\n%s", first.Plan)
	}
	db.ResetCacheStats()
	// Overturn the ASC with a violating write that the stale indexed plan
	// would have missed: its order_date lies far outside the introduced
	// three-week window, but its ship_date matches the query.
	db.MustExec("INSERT INTO purchase VALUES (99999, DATE '1998-01-01', DATE '1999-06-01')")
	second := db.MustExec(q)
	cs := db.CacheStats()
	if cs.Failovers != 1 {
		t.Errorf("expected a backup-plan failover: %+v", cs)
	}
	if cs.Misses != 0 {
		t.Errorf("failover should avoid recompilation: %+v", cs)
	}
	if strings.Contains(second.Plan, "IndexScan") {
		t.Errorf("backup plan must not rely on the overturned ASC:\n%s", second.Plan)
	}
	if len(second.Trace) == 0 || !strings.Contains(second.Trace[0], "backup-plan") {
		t.Errorf("trace should note the reversion: %v", second.Trace)
	}
	// Answers: the new (violating) row must appear.
	found := false
	for _, r := range second.Rows {
		if r[0].Int() == 99999 {
			found = true
		}
	}
	if !found {
		t.Errorf("backup plan missed the new row: %v", rowsAsStrings(second.Rows))
	}
	// The backup keeps serving (cache hit) until a hard change arrives.
	db.ResetCacheStats()
	db.MustExec(q)
	if db.CacheStats().Hits != 1 {
		t.Errorf("backup should now be the cached plan: %+v", db.CacheStats())
	}
	// A structural change (new index) invalidates even the backup.
	db.MustExec("CREATE INDEX is2 ON purchase (ship_date)")
	db.ResetCacheStats()
	db.MustExec(q)
	cs = db.CacheStats()
	if cs.Invalidations != 1 || cs.Misses != 1 {
		t.Errorf("hard change should recompile: %+v", cs)
	}
}

func TestWorkloadRecorder(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT);
		INSERT INTO t VALUES (1, 2);
	`)
	db.MustExec("SELECT a FROM t WHERE b = 2")
	db.MustExec("SELECT a FROM t WHERE b > 0 AND a < 5")
	wl := db.WorkloadColumnCounts()
	if wl["t"]["b"] != 2 || wl["t"]["a"] != 1 {
		t.Errorf("workload counts: %v", wl)
	}
}

func TestLike(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (name VARCHAR(30));
		INSERT INTO t VALUES ('alice'), ('bob'), ('alicia'), ('malice'), (NULL);
	`)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT name FROM t WHERE name LIKE 'ali%'", 2},
		{"SELECT name FROM t WHERE name LIKE '%ice'", 2},
		{"SELECT name FROM t WHERE name LIKE '%ali%'", 3},
		{"SELECT name FROM t WHERE name LIKE 'al_ce'", 1},
		{"SELECT name FROM t WHERE name LIKE '%'", 4}, // NULL never matches
		{"SELECT name FROM t WHERE name NOT LIKE '%ali%'", 1},
		{"SELECT name FROM t WHERE name LIKE 'bob'", 1},
		{"SELECT name FROM t WHERE name LIKE ''", 0},
	}
	for _, c := range cases {
		rows, err := db.Query(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(rows) != c.want {
			t.Errorf("%s: %d rows, want %d: %v", c.q, len(rows), c.want, rowsAsStrings(rows))
		}
	}
}

func TestCountDistinct(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (g INT, v INT);
		INSERT INTO t VALUES (1, 10), (1, 10), (1, 20), (2, 30), (2, NULL), (2, 30);
	`)
	rows, err := db.Query("SELECT g, COUNT(DISTINCT v) AS d, COUNT(v) AS c FROM t GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rowsAsStrings(rows))
	}
	if rows[0][1].Int() != 2 || rows[0][2].Int() != 3 {
		t.Errorf("group 1: %v", rows[0])
	}
	if rows[1][1].Int() != 1 || rows[1][2].Int() != 2 {
		t.Errorf("group 2 (NULL excluded): %v", rows[1])
	}
	// Scalar form.
	rows, _ = db.Query("SELECT COUNT(DISTINCT g) FROM t")
	if rows[0][0].Int() != 2 {
		t.Errorf("scalar count distinct: %v", rows[0])
	}
}

func TestASCDynamicOnly(t *testing.T) {
	db := newDB(t, `
		CREATE TABLE t (a INT, b INT, CONSTRAINT w CHECK (a <= b + 3) SOFT);
		CREATE INDEX ib ON t (b);
	`)
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	db.MustExec("ANALYZE t")
	db.ASCDynamicOnly = true
	q := "SELECT b FROM t WHERE a = 500"
	res := db.MustExec(q)
	usedASC := false
	for _, tr := range res.Trace {
		if strings.Contains(tr, "predicate-introduction") {
			usedASC = true
		}
	}
	if !usedASC {
		t.Fatalf("setup: rewrite should fire; trace %v", res.Trace)
	}
	if db.CachedPlanCount() != 0 {
		t.Error("ASC-shaped plans must not be cached in dynamic-only mode")
	}
	// A plan without soft rewrites still caches.
	db.MustExec("SELECT b FROM t WHERE b = 500")
	if db.CachedPlanCount() != 1 {
		t.Errorf("plain plans should cache: %d", db.CachedPlanCount())
	}
}
