package engine

import (
	"context"
	"strings"
	"testing"

	"softdb/internal/exec"
	"softdb/internal/sql"
)

// exprSeeds are expressions chosen to poke every Datum accessor from
// evaluation: mixed-kind arithmetic, logic over non-booleans, LIKE on
// numbers, aggregates over strings, NULL propagation corners.
var exprSeeds = []string{
	"i + 1",
	"s + 1",
	"s * 2.5",
	"-s",
	"-d",
	"i AND b",
	"s OR b",
	"NOT i",
	"NOT s",
	"i LIKE 'x%'",
	"s LIKE '_b%'",
	"d LIKE s",
	"i BETWEEN s AND d",
	"s BETWEEN 1 AND 10",
	"i IN (1, 'x', NULL)",
	"s IN (i, f)",
	"i = s",
	"f < s",
	"d >= b",
	"b = 1",
	"s IS NULL",
	"i / 0",
	"f / 0.0",
	"i + f * 2 - d",
	"(i > 1) + 1",
	"COUNT(*)",
	"COUNT(DISTINCT s)",
	"SUM(s)",
	"SUM(b)",
	"AVG(d)",
	"AVG(s)",
	"MIN(s)",
	"MAX(b)",
	"SUM(i + s)",
}

// fuzzEvalDB builds the shared target table: one column per datum kind,
// with rows that include NULLs in every column.
func fuzzEvalDB(tb testing.TB) *Database {
	tb.Helper()
	db := Open()
	for _, stmt := range []string{
		"CREATE TABLE fz (i INT, f FLOAT, s VARCHAR(20), d DATE, b BOOLEAN)",
		"INSERT INTO fz VALUES (1, 1.5, 'abc', DATE '2000-01-02', TRUE)",
		"INSERT INTO fz VALUES (-7, 0.0, '', DATE '1999-12-31', FALSE)",
		"INSERT INTO fz VALUES (NULL, NULL, NULL, NULL, NULL)",
		"INSERT INTO fz VALUES (42, -2.25, 'x_y%z', DATE '2010-06-15', TRUE)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			tb.Fatalf("seed %q: %v", stmt, err)
		}
	}
	return db
}

// evalExpr runs the expression in both projection and predicate position.
// The property: evaluation may reject the expression with a type error,
// but must never panic — neither an unrecovered panic (the fuzz engine
// catches those) nor a recovered one surfacing as a KindPanic QueryError.
func evalExpr(t *testing.T, db *Database, e string) {
	for _, query := range []string{
		"SELECT " + e + " FROM fz",
		"SELECT i FROM fz WHERE " + e,
	} {
		stmt, err := sql.Parse(query)
		if err != nil {
			continue // not well-typed-per-parser; out of scope
		}
		if _, err := db.ExecStmtCtx(context.Background(), stmt, ""); err != nil {
			if qe, ok := exec.AsQueryError(err); ok && qe.Kind == exec.KindPanic {
				t.Fatalf("expression %q reached a panic instead of a type error:\n%v\n%s",
					e, qe, qe.Stack)
			}
		}
	}
}

// FuzzExprEval evaluates arbitrary parser-accepted expressions against a
// table covering every datum kind, asserting user input can never drive
// evaluation into a panic (recovered or not) — only typed errors.
func FuzzExprEval(f *testing.F) {
	for _, e := range exprSeeds {
		f.Add(e)
	}
	db := fuzzEvalDB(f)
	f.Fuzz(func(t *testing.T, e string) {
		if len(e) > 1<<12 || strings.ContainsRune(e, ';') {
			t.Skip()
		}
		evalExpr(t, db, e)
	})
}

// TestExprEvalSeeds runs the fuzz property over the seed corpus on every
// plain `go test` run, without the fuzz engine.
func TestExprEvalSeeds(t *testing.T) {
	db := fuzzEvalDB(t)
	for _, e := range exprSeeds {
		evalExpr(t, db, e)
	}
}
