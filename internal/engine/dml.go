package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/sql"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wal"
)

// insert evaluates the VALUES rows and applies them through the full
// constraint pipeline as uncommitted versions of tx.
func (db *Database) insert(tx *Tx, ins *sql.Insert) (*Result, error) {
	te, err := db.cat.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	// Column mapping.
	mapping := make([]int, te.Def.Arity())
	if len(ins.Columns) == 0 {
		for i := range mapping {
			mapping[i] = i
		}
	} else {
		for i := range mapping {
			mapping[i] = -1
		}
		for vi, name := range ins.Columns {
			ord := te.Def.ColumnIndex(name)
			if ord < 0 {
				return nil, fmt.Errorf("engine: no column %s in %s", name, ins.Table)
			}
			mapping[ord] = vi
		}
	}
	var n int64
	for _, valueRow := range ins.Rows {
		want := len(ins.Columns)
		if want == 0 {
			want = te.Def.Arity()
		}
		if len(valueRow) != want {
			return nil, fmt.Errorf("engine: INSERT row has %d values, want %d", len(valueRow), want)
		}
		row := make(types.Row, te.Def.Arity())
		for ord := range row {
			vi := mapping[ord]
			if vi < 0 || vi >= len(valueRow) {
				row[ord] = types.Null
				continue
			}
			v, err := valueRow[vi].Eval(nil)
			if err != nil {
				return nil, err
			}
			row[ord] = v
		}
		validated, err := te.Def.ValidateRow(row)
		if err != nil {
			return nil, err
		}
		if err := db.applyInsert(tx, te, validated, storage.RowID{Page: -1}); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

// InsertRow applies one validated row in its own implicit transaction:
// constraint checks per mode, heap and index insertion, and at commit the
// summary-table maintenance and soft-constraint currency bookkeeping.
// Exposed for generators and benchmarks that bypass SQL.
func (db *Database) InsertRow(te *catalog.TableEntry, row types.Row) error {
	tx := &Tx{t: db.txnMgr.Begin()}
	db.mu.RLock()
	db.writeMu.Lock()
	err := db.applyInsert(tx, te, row, storage.RowID{Page: -1})
	db.writeMu.Unlock()
	db.mu.RUnlock()
	if err != nil {
		db.rollbackTx(tx)
		return err
	}
	_, err = db.commitTx(tx)
	return err
}

// applyInsert installs row as an uncommitted version owned by tx, with its
// index entries, after the enforced-constraint checks. selfRid names the
// version an UPDATE is replacing so uniqueness ignores it; plain inserts
// pass an invalid rid. Called with db.mu shared + writeMu held.
func (db *Database) applyInsert(tx *Tx, te *catalog.TableEntry, row types.Row, selfRid storage.RowID) error {
	if err := db.checkConstraints(te, row, selfRid); err != nil {
		return err
	}
	rid := te.Heap.InsertVersion(row, tx.t.ID)
	for _, ix := range te.Indexes {
		ix.Tree.Insert(ix.KeyFor(row), rid)
	}
	tx.ops = append(tx.ops, writeOp{te: te, rid: rid, row: row})
	if db.dur != nil {
		tx.recs = append(tx.recs, &wal.Record{Type: wal.TypeInsert, TxnID: tx.t.ID, Table: te.Def.Name, RID: rid, Row: row})
	}
	return nil
}

// applyDelete ends the version at rid with tx's uncommitted stamp. The
// first-updater-wins check lives here: a version some other transaction
// already ended — committed after tx's snapshot or still in flight — is a
// write-write conflict. Index entries stay (heap visibility filters them);
// only rollback removes entries, and only the ones it added. Called with
// db.mu shared + writeMu held, which makes the check-then-stamp atomic.
func (db *Database) applyDelete(tx *Tx, te *catalog.TableEntry, rid storage.RowID, old types.Row) error {
	if _, end, ok := te.Heap.Meta(rid); !ok || end != 0 {
		return conflictError(te.Def.Name, rid)
	}
	te.Heap.SetEnd(rid, -tx.t.ID)
	tx.ops = append(tx.ops, writeOp{te: te, del: true, rid: rid, row: old})
	if db.dur != nil {
		tx.recs = append(tx.recs, &wal.Record{Type: wal.TypeDelete, TxnID: tx.t.ID, Table: te.Def.Name, RID: rid})
	}
	return nil
}

// checkConstraints enforces ModeEnforced constraints (reject on violation).
// selfRid identifies the row being replaced during UPDATE so uniqueness
// ignores it; inserts pass an invalid rid.
func (db *Database) checkConstraints(te *catalog.TableEntry, row types.Row, selfRid storage.RowID) error {
	for _, con := range te.Constraints {
		if !con.Active || con.Mode != catalog.ModeEnforced {
			continue
		}
		if err := db.checkOne(te, con, row, selfRid); err != nil {
			return err
		}
	}
	return nil
}

func (db *Database) checkOne(te *catalog.TableEntry, con *catalog.Constraint, row types.Row, selfRid storage.RowID) error {
	switch con.Kind {
	case catalog.Check:
		v, err := con.CheckExpr.Eval(row)
		if err != nil {
			return err
		}
		// SQL check semantics: NULL passes, FALSE fails. A non-boolean
		// check expression is a type error, not a Bool() accessor panic.
		if !v.IsNull() {
			if v.Kind() != types.KindBool {
				return fmt.Errorf("engine: check constraint %s evaluated to %s, not BOOL", con.Name, v.Kind())
			}
			if !v.Bool() {
				return fmt.Errorf("engine: row violates check constraint %s", con.Name)
			}
		}
	case catalog.PrimaryKey, catalog.Unique:
		ords := ordinalsOf(te, con.Columns)
		key := row.Project(ords)
		if con.Kind == catalog.PrimaryKey {
			for _, d := range key {
				if d.IsNull() {
					return fmt.Errorf("engine: NULL in primary key %s", con.Name)
				}
			}
		} else {
			for _, d := range key {
				if d.IsNull() {
					return nil // SQL unique ignores NULL keys
				}
			}
		}
		// Uniqueness runs against the "dirty" view — any version a
		// committed-state reader could still come to see, including other
		// transactions' uncommitted inserts — so two in-flight transactions
		// cannot both claim a key. Index entries may point at dead versions
		// (commit never removes them), so each candidate is re-checked
		// against the heap.
		if ix := indexOver(te, con.Columns); ix != nil {
			dup := false
			ix.Tree.Lookup(key, nil, func(rid storage.RowID) bool {
				if rid != selfRid {
					if _, live := te.Heap.GetAny(rid); live {
						dup = true
					}
				}
				return !dup
			})
			if dup {
				return fmt.Errorf("engine: duplicate key %s violates %s", key, con.Name)
			}
			return nil
		}
		dup := false
		te.Heap.ScanDirty(func(rid storage.RowID, existing types.Row) bool {
			if rid != selfRid && existing.Project(ords).Equal(key) {
				dup = true
				return false
			}
			return true
		})
		if dup {
			return fmt.Errorf("engine: duplicate key %s violates %s", key, con.Name)
		}
	case catalog.ForeignKey:
		ords := ordinalsOf(te, con.Columns)
		key := row.Project(ords)
		for _, d := range key {
			if d.IsNull() {
				return nil
			}
		}
		ref, err := db.cat.Table(con.RefTable)
		if err != nil {
			return err
		}
		refOrds := ordinalsOf(ref, con.RefColumns)
		// The parent check uses the dirty view too: a parent another
		// transaction is inserting counts (it may commit), one whose delete
		// is uncommitted still counts (the delete may abort).
		if ix := indexOver(ref, con.RefColumns); ix != nil {
			found := false
			ix.Tree.Lookup(key, nil, func(rid storage.RowID) bool {
				if _, live := ref.Heap.GetAny(rid); live {
					found = true
				}
				return !found
			})
			if !found {
				return fmt.Errorf("engine: no parent row %s in %s for %s", key, con.RefTable, con.Name)
			}
			return nil
		}
		found := false
		ref.Heap.ScanDirty(func(_ storage.RowID, parent types.Row) bool {
			if parent.Project(refOrds).Equal(key) {
				found = true
				return false
			}
			return true
		})
		if !found {
			return fmt.Errorf("engine: no parent row %s in %s for %s", key, con.RefTable, con.Name)
		}
	case catalog.FuncDep:
		// FD enforcement would require a per-determinant lookup structure;
		// FDs in softdb are informational/soft only.
	}
	return nil
}

// checkSoftOnWrite handles ModeSoftAbsolute constraints and other absolute
// soft characterizations: a violating write succeeds, but the
// characterization is deactivated (§4.1's maintenance of last resort) or
// cheaply repaired (§4.3's hole dropping).
func (db *Database) checkSoftOnWrite(te *catalog.TableEntry, row types.Row) {
	for _, con := range te.Constraints {
		if !con.Active || con.Mode != catalog.ModeSoftAbsolute || con.Kind != catalog.Check {
			continue
		}
		start := db.maintTimer()
		v, err := con.CheckExpr.Eval(row)
		if err == nil && v.Kind() == types.KindBool && !v.Bool() {
			_ = db.cat.DeactivateConstraint(te.Def.Name, con.Name)
			db.obs.metrics.Counter(mASCViolations).Inc()
			db.notify("ASC %s on %s deactivated by violating write", con.Name, te.Def.Name)
		}
		db.chargeMaint(con.Name, start)
	}
	// Absolute linear correlations: drop on violation.
	for _, lc := range db.cat.Correlations(te.Def.Name) {
		if !lc.IsAbsolute() {
			continue
		}
		aOrd, bOrd := te.Def.ColumnIndex(lc.ColA), te.Def.ColumnIndex(lc.ColB)
		if aOrd < 0 || bOrd < 0 {
			continue
		}
		start := db.maintTimer()
		a, b := row[aOrd], row[bOrd]
		if !a.IsNull() && !b.IsNull() {
			diff := a.Float() - lc.K*b.Float()
			if diff < lc.B0-lc.Eps || diff > lc.B0+lc.Eps {
				_ = db.cat.DeactivateCorrelation(lc.Name)
				db.obs.metrics.Counter(mCorrDrops).Inc()
				db.notify("linear correlation %s deactivated by violating write", lc.Name)
			}
		}
		db.chargeMaint(lc.Name, start)
	}
	// Join holes: cheap synchronous repair (§4.3) — assume the new value
	// violates any hole containing its attribute value and retire those
	// holes without running the join.
	for _, jh := range db.cat.AllJoinHoles() {
		if !jh.Active {
			continue
		}
		start := db.maintTimer()
		var dropped int
		if strings.EqualFold(jh.LeftTable, te.Def.Name) {
			if ord := te.Def.ColumnIndex(jh.AttrLeft); ord >= 0 && !row[ord].IsNull() {
				dropped += jh.DropHolesIntersecting(expr.Point(row[ord]), expr.Unbounded())
			}
		}
		if strings.EqualFold(jh.RightTable, te.Def.Name) {
			if ord := te.Def.ColumnIndex(jh.AttrRight); ord >= 0 && !row[ord].IsNull() {
				dropped += jh.DropHolesIntersecting(expr.Unbounded(), expr.Point(row[ord]))
			}
		}
		if dropped > 0 {
			db.cat.Touch()
			db.obs.metrics.Counter(mHolesRetired).Add(int64(dropped))
			db.notify("join holes %s: %d holes retired by write to %s", jh.Name, dropped, te.Def.Name)
		}
		db.chargeMaint(jh.Name, start)
	}
}

// maintainSummaries keeps materialized ASTs synchronized and bumps
// informational AST estimates.
func (db *Database) maintainSummaries(te *catalog.TableEntry, row types.Row, insert bool) {
	for _, st := range db.cat.SummariesOn(te.Def.Name) {
		start := db.maintTimer()
		db.maintainSummary(st, row, insert)
		db.chargeMaint(st.Name, start)
	}
}

// maintainSummary applies one row's effect to one AST.
func (db *Database) maintainSummary(st *catalog.SummaryTable, row types.Row, insert bool) {
	if st.Where != nil {
		ok, err := expr.EvalBool(st.Where, row)
		if err != nil || !ok {
			return
		}
	}
	if st.Informational {
		if insert {
			st.RowCountEstimate++
		} else if st.RowCountEstimate > 0 {
			st.RowCountEstimate--
		}
		return
	}
	if insert {
		st.Heap.Insert(row.Clone())
		return
	}
	// Remove one matching copy.
	var target storage.RowID
	found := false
	st.Heap.Scan(nil, func(rid storage.RowID, r types.Row) bool {
		if r.Equal(row) {
			target, found = rid, true
			return false
		}
		return true
	})
	if found {
		st.Heap.Delete(target)
	}
}

// maintTimer starts a DML write-hook timing segment; the zero time means
// the economy ledger is off and chargeMaint will ignore the segment.
func (db *Database) maintTimer() time.Time {
	if db.NoEconomy {
		return time.Time{}
	}
	return time.Now()
}

// chargeMaint closes a maintTimer segment, charging the elapsed wall time
// to the named characterization's maintenance cost.
func (db *Database) chargeMaint(name string, start time.Time) {
	if start.IsZero() {
		return
	}
	db.obs.econ.AddMaintenance(name, time.Since(start))
}

// bumpCurrency advances §3.3's staleness counters on statistical soft
// characterizations over the table.
func (db *Database) bumpCurrency(te *catalog.TableEntry) {
	for _, con := range te.Constraints {
		if con.Mode == catalog.ModeSoftStatistical {
			con.ModsSince++
		}
	}
	for _, lc := range db.cat.Correlations(te.Def.Name) {
		lc.ModsSince++
	}
	for _, jh := range db.cat.AllJoinHoles() {
		if strings.EqualFold(jh.LeftTable, te.Def.Name) || strings.EqualFold(jh.RightTable, te.Def.Name) {
			jh.ModsSince++
		}
	}
}

func ordinalsOf(te *catalog.TableEntry, cols []string) []int {
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = te.Def.ColumnIndex(c)
	}
	return out
}

// indexOver finds an index whose key is exactly the given column list.
func indexOver(te *catalog.TableEntry, cols []string) *catalog.Index {
	for _, ix := range te.Indexes {
		if len(ix.Columns) != len(cols) {
			continue
		}
		all := true
		for i := range cols {
			if !strings.EqualFold(ix.Columns[i], cols[i]) {
				all = false
				break
			}
		}
		if all {
			return ix
		}
	}
	return nil
}

// update applies SET clauses to rows matching in tx's snapshot view: each
// match becomes a delete of the old version plus an insert of the new one,
// both uncommitted until tx commits. A match another transaction already
// ended fails with a first-updater-wins conflict.
func (db *Database) update(tx *Tx, upd *sql.Update) (*Result, error) {
	te, err := db.cat.Table(upd.Table)
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if upd.Where != nil {
		where, err = bindToTable(upd.Where, te.Def)
		if err != nil {
			return nil, err
		}
	}
	type setOp struct {
		ord int
		val expr.Expr
	}
	sets := make([]setOp, len(upd.Set))
	for i, sc := range upd.Set {
		ord := te.Def.ColumnIndex(sc.Column)
		if ord < 0 {
			return nil, fmt.Errorf("engine: no column %s in %s", sc.Column, upd.Table)
		}
		bound, err := bindToTable(sc.Value, te.Def)
		if err != nil {
			return nil, err
		}
		sets[i] = setOp{ord: ord, val: bound}
	}
	// Collect matches first (mutating while scanning is unsafe), reading
	// from tx's snapshot so the statement sees a stable view plus its own
	// transaction's earlier writes.
	type match struct {
		rid storage.RowID
		row types.Row
	}
	var matches []match
	var scanErr error
	te.Heap.ScanAt(tx.t.Snap, tx.t.ID, nil, func(rid storage.RowID, row types.Row) bool {
		if where != nil {
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		matches = append(matches, match{rid: rid, row: row.Clone()})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	var n int64
	for _, m := range matches {
		newRow := m.row.Clone()
		for _, s := range sets {
			v, err := s.val.Eval(m.row)
			if err != nil {
				return nil, err
			}
			newRow[s.ord] = v
		}
		validated, err := te.Def.ValidateRow(newRow)
		if err != nil {
			return nil, err
		}
		if err := db.applyDelete(tx, te, m.rid, m.row); err != nil {
			return nil, err
		}
		if err := db.applyInsert(tx, te, validated, m.rid); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

// delete ends rows matching in tx's snapshot view with tx's uncommitted
// stamp; old snapshots keep seeing them until the commit publishes.
func (db *Database) delete(tx *Tx, del *sql.Delete) (*Result, error) {
	te, err := db.cat.Table(del.Table)
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if del.Where != nil {
		where, err = bindToTable(del.Where, te.Def)
		if err != nil {
			return nil, err
		}
	}
	type match struct {
		rid storage.RowID
		row types.Row
	}
	var matches []match
	var scanErr error
	te.Heap.ScanAt(tx.t.Snap, tx.t.ID, nil, func(rid storage.RowID, row types.Row) bool {
		if where != nil {
			ok, err := expr.EvalBool(where, row)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		matches = append(matches, match{rid: rid, row: row.Clone()})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, m := range matches {
		if err := db.applyDelete(tx, te, m.rid, m.row); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: int64(len(matches))}, nil
}

// StalenessBound reports §3.3's margin-of-error model for a statistical
// soft constraint: an upper bound on the fraction of rows that may have
// drifted from the statement since its statistics were last refreshed.
func StalenessBound(modsSince, rowCount int64) float64 {
	if rowCount <= 0 {
		return 1
	}
	return math.Min(1, float64(modsSince)/float64(rowCount))
}
