package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// astFixture builds a purchase table where 10% of rows are "premium"
// (amount >= 90) and a premium AST over them.
func astFixture(t *testing.T, informational bool) *Database {
	t.Helper()
	db := newDB(t, `CREATE TABLE purchase (
		id INT PRIMARY KEY,
		region INT,
		amount FLOAT)`)
	for i := 0; i < 2000; i++ {
		amount := i % 100
		db.MustExec(fmt.Sprintf("INSERT INTO purchase VALUES (%d, %d, %d)", i, i%7, amount))
	}
	kind := ""
	if informational {
		kind = "INFORMATIONAL "
	}
	db.MustExec(fmt.Sprintf(
		"CREATE %sSUMMARY TABLE premium AS (SELECT * FROM purchase WHERE amount >= 90)", kind))
	db.MustExec("ANALYZE purchase")
	db.DisablePlanCache = true
	return db
}

func TestASTRouting(t *testing.T) {
	db := astFixture(t, false)
	q := "SELECT id FROM purchase WHERE amount >= 90 AND region = 3"
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "premium") {
		t.Errorf("should route through the AST:\n%s\ntrace: %v", res.Plan, res.Trace)
	}
	// Answers match the unrouted plan.
	db.RewriteOpts.NoASTRouting = true
	want, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(want.Plan, "premium") {
		t.Fatalf("ablation failed:\n%s", want.Plan)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Errorf("routing changed answers: %d vs %d", len(res.Rows), len(want.Rows))
	}
	// And far fewer pages: the AST holds 10% of rows.
	if res.Ctx.IO.PagesRead*4 > want.Ctx.IO.PagesRead {
		t.Errorf("routing should save pages: %d vs %d", res.Ctx.IO.PagesRead, want.Ctx.IO.PagesRead)
	}
}

func TestASTRoutingRequiresContainment(t *testing.T) {
	db := astFixture(t, false)
	// The filter does not imply the AST predicate: no routing.
	res, err := db.Exec("SELECT id FROM purchase WHERE amount >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "premium") {
		t.Errorf("must not route on weaker predicates:\n%s", res.Plan)
	}
}

func TestASTRoutingMaintainedUnderDML(t *testing.T) {
	db := astFixture(t, false)
	q := "SELECT COUNT(*) FROM purchase WHERE amount >= 90"
	before, _ := db.Query(q)
	db.MustExec("INSERT INTO purchase VALUES (99999, 1, 95)")
	after, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after[0][0].Int() != before[0][0].Int()+1 {
		t.Errorf("AST must track inserts: %v -> %v", before[0], after[0])
	}
	db.MustExec("DELETE FROM purchase WHERE id = 99999")
	final, _ := db.Query(q)
	if final[0][0].Int() != before[0][0].Int() {
		t.Errorf("AST must track deletes: %v", final[0])
	}
}

func TestInformationalASTImprovesEstimate(t *testing.T) {
	db := astFixture(t, true)
	// region and amount are independent here, but the point is the joint
	// predicate estimate: the AST pins sel(amount >= 90) to exactly 10%.
	q := "SELECT id FROM purchase WHERE amount >= 90"
	with, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	db.NoASTEstimation = true
	without, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(len(with.Rows))
	errWith := math.Abs(with.EstRows - actual)
	errWithout := math.Abs(without.EstRows - actual)
	if errWith > errWithout {
		t.Errorf("AST estimate should not be worse: |%.0f-%.0f| vs |%.0f-%.0f|",
			with.EstRows, actual, without.EstRows, actual)
	}
	// The AST-backed estimate is essentially exact.
	if errWith > actual*0.05+1 {
		t.Errorf("AST estimate should be near-exact: est %.1f actual %.0f", with.EstRows, actual)
	}
	// Informational ASTs must never be routed to (they hold no rows).
	if strings.Contains(with.Plan, "ScanSummary") {
		t.Errorf("informational AST is not routable:\n%s", with.Plan)
	}
}

func TestInformationalASTCountTracksDML(t *testing.T) {
	db := astFixture(t, true)
	st, ok := db.Catalog().SummaryTable("premium")
	if !ok {
		t.Fatal("missing summary")
	}
	before := st.RowCountEstimate
	db.MustExec("INSERT INTO purchase VALUES (99999, 1, 95)")
	if st.RowCountEstimate != before+1 {
		t.Errorf("estimate should bump on insert: %d -> %d", before, st.RowCountEstimate)
	}
	db.MustExec("UPDATE purchase SET amount = 10 WHERE id = 99999")
	if st.RowCountEstimate != before {
		t.Errorf("estimate should drop when the row leaves the predicate: %d", st.RowCountEstimate)
	}
}

func TestASTRoutingPrefersSmallest(t *testing.T) {
	db := astFixture(t, false)
	// A tighter AST: amount >= 90 AND region = 3.
	db.MustExec("CREATE SUMMARY TABLE premium_r3 AS (SELECT * FROM purchase WHERE amount >= 90 AND region = 3)")
	res, err := db.Exec("SELECT id FROM purchase WHERE amount >= 90 AND region = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "premium_r3") {
		t.Errorf("should pick the smallest containing AST:\n%s", res.Plan)
	}
}

func TestVirtualColumnEstimation(t *testing.T) {
	// The paper's closing example: "the number of projects completed in 5
	// days", predicate end_date - start_date <= 5. Without help the
	// optimizer falls back to a default selectivity; a virtual column over
	// the duration expression carries its real distribution.
	db := newDB(t, `CREATE TABLE project (
		id INT PRIMARY KEY,
		start_date DATE NOT NULL,
		end_date DATE)`)
	for i := 0; i < 3000; i++ {
		dur := i % 30 // uniform 0..29: ~20% complete within 5 days
		db.MustExec(fmt.Sprintf(
			"INSERT INTO project VALUES (%d, DATE '1999-01-01' + %d, DATE '1999-01-01' + %d)",
			i, i, i+dur))
	}
	db.MustExec("ANALYZE project")
	db.DisablePlanCache = true
	q := "SELECT id FROM project WHERE end_date - start_date <= 5"
	before, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddVirtualColumn("project", "duration", "end_date - start_date"); err != nil {
		t.Fatal(err)
	}
	after, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(len(after.Rows))
	if len(before.Rows) != len(after.Rows) {
		t.Fatalf("virtual columns must not change answers: %d vs %d", len(before.Rows), len(after.Rows))
	}
	errBefore := math.Abs(before.EstRows - actual)
	errAfter := math.Abs(after.EstRows - actual)
	if errAfter >= errBefore {
		t.Errorf("virtual column should improve the estimate: before %.0f, after %.0f, actual %.0f",
			before.EstRows, after.EstRows, actual)
	}
	if errAfter > actual*0.2 {
		t.Errorf("virtual-column estimate should be close: est %.0f actual %.0f", after.EstRows, actual)
	}
	// Aliased access matches canonically too.
	aliased, err := db.Exec("SELECT p.id FROM project p WHERE p.end_date - p.start_date <= 5")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aliased.EstRows-after.EstRows) > 1 {
		t.Errorf("alias-insensitive matching: %.0f vs %.0f", aliased.EstRows, after.EstRows)
	}
}

func TestVirtualColumnErrors(t *testing.T) {
	db := newDB(t, `CREATE TABLE t (a INT)`)
	if err := db.AddVirtualColumn("missing", "v", "a + 1"); err == nil {
		t.Error("missing table should fail")
	}
	if err := db.AddVirtualColumn("t", "v", "bogus + 1"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := db.AddVirtualColumn("t", "v", "a + 1"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddVirtualColumn("t", "v", "a + 2"); err == nil {
		t.Error("duplicate name should fail")
	}
}
