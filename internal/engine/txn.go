package engine

import (
	"fmt"

	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/storage"
	"softdb/internal/txn"
	"softdb/internal/types"
	"softdb/internal/wal"
)

// writeOp is one row effect applied by an open transaction: an uncommitted
// insert (a version stamped -txnID awaiting its commit timestamp) or an
// uncommitted delete (an end stamp of -txnID on an existing version). An
// UPDATE is a delete of the old version plus an insert of the new one.
type writeOp struct {
	te  *catalog.TableEntry
	del bool
	rid storage.RowID
	row types.Row // the inserted row, or the deleted version's image
}

// Tx is one open engine transaction. Implicit transactions wrap a single
// autocommit DML statement; explicit ones span BEGIN..COMMIT/ROLLBACK on a
// session. The apply phase (under the shared lock plus writeMu) installs
// uncommitted versions and records writeOps; commit (under the exclusive
// lock) stamps them with the commit timestamp, runs the commit-scoped soft
// hooks, and publishes the timestamp; rollback reverses the ops.
//
// WAL strategy: an implicit transaction stages its redo records in recs
// and writes them as one atomic committed group. An explicit transaction
// streams each successful statement's records to the log as it goes
// (prefixed by a TypeBegin marker) and terminates the group with a bare
// TypeCommit or TypeAbort; recovery replays only terminated-by-commit
// groups, so a crash mid-transaction loses exactly the open transaction.
type Tx struct {
	t        *txn.Txn
	explicit bool
	ops      []writeOp
	recs     []*wal.Record // staged records for the statement/transaction in flight
	streamed bool          // explicit: some records already appended to the log
	done     bool
}

// ID returns the transaction's identifier.
func (tx *Tx) ID() int64 { return tx.t.ID }

// Snap returns the transaction's snapshot timestamp.
func (tx *Tx) Snap() int64 { return tx.t.Snap }

// conflictError is the first-updater-wins outcome: the statement tried to
// update or delete a version another transaction already ended.
func conflictError(table string, rid storage.RowID) error {
	return &exec.QueryError{Op: "engine.dml", Kind: exec.KindConflict,
		Err: fmt.Errorf("row %s in %s was modified by a concurrent transaction", rid, table)}
}

// txnFor returns the transaction a DML statement runs in: the session's
// open explicit transaction, or a fresh implicit one the caller commits
// when the statement succeeds.
func (db *Database) txnFor(sess *Session) (tx *Tx, implicit bool) {
	if sess != nil {
		if cur := sess.current(); cur != nil {
			return cur, false
		}
	}
	return &Tx{t: db.txnMgr.Begin()}, true
}

// snapshotFor resolves the MVCC view a statement reads from: the session's
// open transaction (own uncommitted writes visible), or a freshly pinned
// snapshot of the committed state. Call while holding db.mu (shared
// suffices) so the snapshot cannot be vacuumed before the pin lands; call
// release once execution finishes.
func (db *Database) snapshotFor(sess *Session) (snap, tid int64, release func()) {
	if sess != nil {
		if tx := sess.current(); tx != nil {
			return tx.t.Snap, tx.t.ID, func() {}
		}
	}
	snap = db.txnMgr.Snapshot()
	db.txnMgr.Pin(snap)
	return snap, 0, func() { db.txnMgr.Unpin(snap) }
}

// execDML runs one DML statement inside the session's transaction (or an
// implicit one). The apply phase holds db.mu shared — so concurrent
// readers keep scanning — plus writeMu, which serializes appliers against
// each other; commit takes the exclusive lock. A statement that fails is
// undone op by op (statement-level atomicity), leaving an explicit
// transaction open at its pre-statement state.
func (db *Database) execDML(sess *Session, apply func(tx *Tx) (*Result, error)) (*Result, error) {
	tx, implicit := db.txnFor(sess)
	db.mu.RLock()
	db.writeMu.Lock()
	opsMark, recsMark := len(tx.ops), len(tx.recs)
	res, err := apply(tx)
	if err == nil && !implicit {
		err = db.streamStmt(tx)
	}
	if err != nil {
		db.undoOps(tx, opsMark)
		tx.recs = tx.recs[:recsMark]
	}
	db.writeMu.Unlock()
	db.mu.RUnlock()
	if err != nil {
		if implicit {
			db.rollbackTx(tx)
		}
		return nil, err
	}
	if implicit {
		notices, cerr := db.commitTx(tx)
		if cerr != nil {
			return nil, cerr
		}
		res.Notices = append(res.Notices, notices...)
	}
	return res, nil
}

// streamStmt appends an explicit transaction's statement records to the
// log, prefixing the TypeBegin marker on the transaction's first write. No
// terminator and no fsync: durability is COMMIT's job. Called with db.mu
// shared + writeMu held — the pairing that excludes every other log writer
// (exclusive-lock holders are excluded by the shared lock, other appliers
// by writeMu). A failed append latches the writer, so the group can never
// be terminated and recovery discards it.
func (db *Database) streamStmt(tx *Tx) error {
	d := db.dur
	if d == nil || len(tx.recs) == 0 {
		return nil
	}
	recs := tx.recs
	if !tx.streamed {
		recs = append([]*wal.Record{{Type: wal.TypeBegin, TxnID: tx.t.ID}}, recs...)
	}
	_, err := d.w.Append(recs)
	d.syncMetrics()
	if err != nil {
		return &exec.QueryError{Op: "wal.append", Kind: exec.KindRecovery, Err: err}
	}
	tx.streamed = true
	d.cFrames.Add(int64(len(recs)))
	tx.recs = tx.recs[:0]
	return nil
}

// commitTx makes tx durable and visible: WAL commit record first (under
// the configured sync policy), then commit-timestamp stamping, then the
// commit-scoped soft hooks, then the clock publish — so no reader can
// observe the transaction's effects before they are on disk, and rolling
// back leaves the constraint registry untouched. Returns the notices the
// commit hooks raised.
func (db *Database) commitTx(tx *Tx) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.done {
		return nil, fmt.Errorf("engine: transaction already finished")
	}
	db.notices = nil
	// A table dropped between apply and commit would leave commit stamps
	// pointing into a detached heap; fail the commit instead.
	for _, op := range tx.ops {
		if cur, err := db.cat.Table(op.te.Def.Name); err != nil || cur != op.te {
			db.abortTxLocked(tx)
			return nil, fmt.Errorf("engine: table %s was dropped by a concurrent statement; transaction rolled back", op.te.Def.Name)
		}
	}
	cts := db.txnMgr.PrepareCommit()
	if err := db.walCommitTx(tx); err != nil {
		db.abortTxLocked(tx)
		return nil, err
	}
	for _, op := range tx.ops {
		if op.del {
			op.te.Heap.SetEnd(op.rid, cts)
		} else {
			op.te.Heap.SetBegin(op.rid, cts)
		}
	}
	// Commit-scoped soft hooks, in op order: ASC violation checks,
	// summary-table maintenance, staleness bumps, and their economy
	// charges fire only for effects that actually commit. The runtime
	// lock fences the catalog fields prune-predicate Check closures read
	// during lock-free query execution.
	catalog.RuntimeLock()
	for _, op := range tx.ops {
		if op.del {
			db.maintainSummaries(op.te, op.row, false)
		} else {
			db.checkSoftOnWrite(op.te, op.row)
			db.maintainSummaries(op.te, op.row, true)
		}
		db.bumpCurrency(op.te)
	}
	catalog.RuntimeUnlock()
	db.txnMgr.Publish(cts)
	db.txnMgr.Finish(tx.t)
	tx.done = true
	notices := db.notices
	// Checkpoint cadence runs after Finish so this transaction no longer
	// blocks the ActiveWrites gate.
	if d := db.dur; d != nil && d.checkpointEvery > 0 && d.stmts >= d.checkpointEvery {
		if cerr := db.checkpointLocked(); cerr != nil {
			if l := db.obs.logger.Load(); l != nil {
				l.Error("checkpoint failed", "err", cerr)
			}
		}
	}
	return notices, nil
}

// walCommitTx writes the transaction's commit record (plus, for implicit
// transactions, its staged records as one atomic group) and applies the
// writer's sync policy. Called with the exclusive lock held.
func (db *Database) walCommitTx(tx *Tx) error {
	d := db.dur
	if d == nil {
		return nil
	}
	var batch int64
	var err error
	switch {
	case tx.streamed:
		_, _, err = d.w.CommitTxn(tx.t.ID, nil)
		batch = 1
	case len(tx.recs) > 0:
		_, _, err = d.w.CommitTxn(tx.t.ID, tx.recs)
		batch = int64(len(tx.recs)) + 1
	default:
		return nil // read-only or no-op transaction: nothing to log
	}
	tx.recs = nil
	d.syncMetrics()
	if err != nil {
		return &exec.QueryError{Op: "wal.commit", Kind: exec.KindRecovery, Err: err}
	}
	d.cFrames.Add(batch)
	d.hBatch.Observe(float64(batch))
	d.stmts++
	return nil
}

// rollbackTx discards tx: every op is reversed in reverse order and, when
// the transaction had streamed records, a TypeAbort terminator closes its
// log group so recovery installs placeholder slots instead of rows.
func (db *Database) rollbackTx(tx *Tx) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if tx.done {
		return
	}
	db.abortTxLocked(tx)
}

// abortTxLocked is the shared rollback core (exclusive lock held).
func (db *Database) abortTxLocked(tx *Tx) {
	db.undoOps(tx, 0)
	tx.recs = nil
	if d := db.dur; d != nil && tx.streamed {
		if _, _, err := d.w.Abort(tx.t.ID); err != nil {
			// The group stays unterminated; recovery discards it, which is
			// the same outcome the abort record would have produced.
			if l := db.obs.logger.Load(); l != nil {
				l.Error("WAL abort record failed", "err", err)
			}
		}
		d.syncMetrics()
	}
	db.txnMgr.Finish(tx.t)
	tx.done = true
}

// undoOps reverses tx.ops[from:] in reverse order: inserted versions are
// aborted (and their index entries — which rollback, unlike commit, must
// remove to keep parity with a recovered database — deleted), uncommitted
// delete stamps are cleared. Safe under either the exclusive lock or the
// shared-lock+writeMu pairing: stamp flips are atomic stores lock-free
// readers tolerate, and the index trees latch themselves.
func (db *Database) undoOps(tx *Tx, from int) {
	for i := len(tx.ops) - 1; i >= from; i-- {
		op := tx.ops[i]
		if op.del {
			op.te.Heap.ClearEnd(op.rid)
		} else {
			for _, ix := range op.te.Indexes {
				ix.Tree.Delete(ix.KeyFor(op.row), op.rid)
			}
			op.te.Heap.AbortInsert(op.rid)
		}
	}
	tx.ops = tx.ops[:from]
}

// --- BEGIN / COMMIT / ROLLBACK statements ---

// beginStmt opens an explicit transaction on the session.
func (db *Database) beginStmt(sess *Session) (*Result, error) {
	if sess == nil {
		return nil, fmt.Errorf("engine: BEGIN requires a session (Database.Exec runs each statement in its own transaction)")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.cur != nil {
		return nil, fmt.Errorf("engine: a transaction is already open")
	}
	sess.cur = &Tx{t: db.txnMgr.Begin(), explicit: true}
	return &Result{}, nil
}

// commitStmt commits the session's open transaction; the commit hooks'
// notices ride on the COMMIT result.
func (db *Database) commitStmt(sess *Session) (*Result, error) {
	tx := sess.takeCurrent()
	if tx == nil {
		return nil, fmt.Errorf("engine: no transaction is open")
	}
	notices, err := db.commitTx(tx)
	if err != nil {
		return nil, err
	}
	return &Result{Notices: notices, RowsAffected: int64(len(tx.ops))}, nil
}

// rollbackStmt discards the session's open transaction.
func (db *Database) rollbackStmt(sess *Session) (*Result, error) {
	tx := sess.takeCurrent()
	if tx == nil {
		return nil, fmt.Errorf("engine: no transaction is open")
	}
	db.rollbackTx(tx)
	return &Result{}, nil
}

// Vacuum physically sheds row versions no present or future snapshot can
// see (committed-ended before the oldest pinned snapshot, and aborted
// slots), returning how many were shed. Index entries pointing at
// reclaimed slots are swept in the same pass, restoring the
// one-entry-per-version invariant the write path relaxes (commit-time
// deletes leave entries behind for exactly this pass to collect).
// Runs only when called — directly, or on a timer via StartVacuum; the
// engine never vacuums behind a query's back mid-statement (the exclusive
// lock here serializes against the statement paths).
func (db *Database) Vacuum() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	h := db.txnMgr.Horizon()
	n := 0
	for _, name := range db.cat.TableNames() {
		te, err := db.cat.Table(name)
		if err != nil {
			continue
		}
		n += te.Heap.Vacuum(h)
		for _, ix := range te.Indexes {
			type entry struct {
				key types.Row
				rid storage.RowID
			}
			var dead []entry
			ix.Tree.Ascend(nil, func(key types.Row, rid storage.RowID) bool {
				if b, _, ok := te.Heap.Meta(rid); !ok || b == storage.Aborted {
					dead = append(dead, entry{key, rid})
				}
				return true
			})
			for _, e := range dead {
				ix.Tree.Delete(e.key, e.rid)
			}
		}
	}
	return n
}

// TxnStatus reports the transaction manager's externally visible state for
// debugging and tests: the committed clock and open write transactions.
func (db *Database) TxnStatus() (clock int64, activeWrites int) {
	return db.txnMgr.Snapshot(), db.txnMgr.ActiveWrites()
}
