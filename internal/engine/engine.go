// Package engine is softdb's top-level database facade: it parses SQL,
// runs DDL against the catalog, executes DML with constraint checking that
// honors the paper's enforcement modes, and drives queries through the
// rewrite → cost-based-optimization → execution pipeline. It also keeps the
// plan cache whose entries are invalidated when an absolute soft constraint
// is overturned (§4.1).
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"softdb/internal/catalog"
	"softdb/internal/exec"
	"softdb/internal/expr"
	"softdb/internal/fault"
	"softdb/internal/obs"
	"softdb/internal/opt"
	"softdb/internal/plan"
	"softdb/internal/rewrite"
	"softdb/internal/sql"
	"softdb/internal/stats"
	"softdb/internal/storage"
	"softdb/internal/txn"
	"softdb/internal/types"
)

// Result is the outcome of one statement.
type Result struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int64
	// Runtime counters for queries.
	Ctx exec.Ctx
	// Optimizer estimates (queries only).
	EstRows float64
	EstCost float64
	// Plan text (EXPLAIN, or always-populated for queries).
	Plan string
	// Trace lists rewrite-rule firings.
	Trace []string
	// Notices carries soft-constraint events (e.g. "ASC xyz deactivated").
	Notices []string
	// Degree is the plan's chosen maximum degree of parallelism (queries).
	Degree int
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Events are the plan-time soft-constraint consultations.
	Events []obs.Event
}

// CacheStats reports plan-cache behavior, the §4.1 cost surface.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64 // entries dropped by catalog changes
	// Failovers counts §4.1 backup-plan reversions: a cached plan whose
	// soft constraints were overturned switched to its SQO-free backup
	// instead of recompiling.
	Failovers int64
}

type cachedPlan struct {
	catVersion  int64
	hardVersion int64
	root        exec.Operator
	cols        []string
	estRows     float64
	estCost     float64
	planText    string
	trace       []string
	// nodeRows are the optimizer's per-operator cardinality estimates,
	// consulted when the plan is instrumented for tracing/EXPLAIN ANALYZE.
	nodeRows map[exec.Operator]float64
	// nodeInformed names, per operator, the constraints whose information
	// sharpened that operator's cardinality estimate — the economy ledger's
	// q-error split key.
	nodeInformed map[exec.Operator][]string
	// shadowDeltas is the plan-time shadow-costing outcome: per constraint
	// consulted while planning, the estimated-cost increase the optimizer
	// would have paid had that constraint been masked.
	shadowDeltas map[string]float64
	// events are the plan-time soft-constraint consultations.
	events []obs.Event
	// degree is the plan's maximum degree of parallelism.
	degree int
	// backup is the §4.1 alternative plan compiled with every soft rule
	// disabled; it stays valid across soft-constraint churn (same hard
	// version) and is reverted to instead of recompiling.
	backup *cachedPlan
}

// Database is a softdb instance. It is safe for concurrent use: Exec,
// Query, ExecStmt and the exported inspection methods may be called from
// many goroutines. Concurrency is MVCC snapshot isolation with writers
// serialized:
//
//   - SELECT and EXPLAIN plan under the shared lock, pin a snapshot, then
//     release the lock before operator execution — readers never queue
//     behind writers or behind each other's result materialization.
//   - DML applies uncommitted row versions under the shared lock plus
//     writeMu (appliers serialized against each other, concurrent with
//     readers) and commits under the exclusive lock, where the commit
//     timestamp is stamped and published.
//   - DDL, ANALYZE, checkpoints and recovery take the exclusive lock.
//
// Configuration fields (RewriteOpts, Parallel, the No* toggles) are read
// without synchronization — set them before sharing the database across
// goroutines. Mutating the catalog directly through Catalog() (miners, the
// soft-constraint manager) is not covered by these locks; quiesce queries
// first.
type Database struct {
	// mu guards catalog, storage metadata, views and notices: exclusive
	// for commits/DDL, shared for planning and DML apply.
	mu sync.RWMutex
	// writeMu serializes DML appliers (and explicit-transaction WAL
	// streaming) against each other. It nests inside mu's shared side:
	// every holder also holds mu.RLock, so an exclusive-lock holder is
	// automatically alone.
	writeMu sync.Mutex
	// cacheMu guards planCache and cacheStat. It nests inside mu (taken
	// while mu is held, never the other way around).
	cacheMu sync.Mutex
	// wlMu guards workload.
	wlMu sync.Mutex

	cat   *catalog.Catalog
	views map[string]*sql.Select

	// txnMgr hands out transaction IDs, snapshots and commit timestamps.
	txnMgr *txn.Manager

	// RewriteOpts toggles semantic rewrite rules (ablation).
	RewriteOpts rewrite.Options
	// NoIndexes disables index access paths (baseline mode).
	NoIndexes bool
	// NoSSCEstimation disables twinned-predicate cardinality estimation.
	NoSSCEstimation bool
	// NoASTEstimation disables AST-based filter-factor estimation (§4.4).
	NoASTEstimation bool
	// DisablePlanCache turns off plan caching.
	DisablePlanCache bool
	// ASCDynamicOnly implements §4.1's restriction option: plans shaped by
	// soft rules are never cached (used only for the current, "dynamic"
	// execution), so no precompiled plan can ever depend on an ASC.
	ASCDynamicOnly bool
	// NoPrune disables synopsis-based page pruning end to end: the
	// optimizer derives no prune predicates from filters, the rewriter
	// plants none from constraints, and scans read every page (baseline
	// mode for the P2 experiments).
	NoPrune bool
	// NoBatch disables page-batched row emission; scans fall back to
	// row-at-a-time delivery (differential baseline for the batch kernel).
	NoBatch bool
	// NoEconomy disables the per-constraint benefit/cost ledger: no skip
	// attribution, no shadow costing, no q-error split, no DML hook timing
	// (the O2 overhead baseline). The ledger's existing counters keep their
	// values; they just stop moving.
	NoEconomy bool
	// Parallel is the maximum intra-query degree of parallelism; <= 1
	// (the default) plans serial operators only.
	Parallel int
	// ParallelMinRows overrides the optimizer's estimated-cardinality
	// threshold for going parallel; 0 means the default.
	ParallelMinRows float64
	// MemBudget caps, per query, the bytes of rows its blocking operators
	// (Sort, hash-join builds, hash aggregation, Distinct, merge-join
	// materialization) may buffer; exceeding it aborts that query with an
	// "oom" QueryError. 0 means unlimited.
	MemBudget int64
	// StmtTimeout is the default per-statement deadline applied when the
	// caller's context carries none; 0 means no default deadline.
	StmtTimeout time.Duration
	// MaxConcurrent is the admission gate: at most this many statements
	// execute at once, the rest queue until a slot frees or their context
	// fires. 0 means unlimited. Latched on first use, like the other
	// config fields.
	MaxConcurrent int
	// Fault, when set, injects deterministic storage faults into every
	// query's page checkpoints (robustness testing only).
	Fault *fault.Injector

	// admitOnce latches MaxConcurrent into admitSlots on the first
	// statement.
	admitOnce  sync.Once
	admitSlots chan struct{}

	planCache map[string]*cachedPlan
	cacheStat CacheStats

	// workload records, per table and column, how many query predicates
	// referenced the column — the observed-workload signal §3.2's
	// selection stage directs discovery with.
	workload map[string]map[string]int64

	// obs holds the metrics registry, recent-queries ring, structured
	// logger and tracing toggles (see observe.go).
	obs obsState

	// dur is the write-ahead-log state for durable databases (OpenDurable);
	// nil for in-memory databases. Guarded by mu like the catalog.
	dur *walState

	// notices accumulated during the current statement.
	notices []string
}

// Open returns an empty database.
func Open() *Database {
	db := &Database{
		cat:       catalog.New(),
		views:     map[string]*sql.Select{},
		txnMgr:    txn.NewManager(),
		planCache: map[string]*cachedPlan{},
		workload:  map[string]map[string]int64{},
	}
	db.initObs()
	return db
}

// WorkloadColumnCounts returns a snapshot of the predicate-reference
// counts observed so far: table → column → count.
func (db *Database) WorkloadColumnCounts() map[string]map[string]int64 {
	db.wlMu.Lock()
	defer db.wlMu.Unlock()
	out := make(map[string]map[string]int64, len(db.workload))
	for t, cols := range db.workload {
		cp := make(map[string]int64, len(cols))
		for c, n := range cols {
			cp[c] = n
		}
		out[t] = cp
	}
	return out
}

// recordWorkload walks a freshly built logical plan and counts which base
// columns the query's scan predicates touch.
func (db *Database) recordWorkload(n plan.Node) {
	db.wlMu.Lock()
	defer db.wlMu.Unlock()
	db.recordWorkloadLocked(n)
}

func (db *Database) recordWorkloadLocked(n plan.Node) {
	if s, ok := n.(*plan.Scan); ok && s.Entry != nil {
		for _, f := range s.Filter {
			for _, ord := range exprColumnOrdinals(f) {
				if ord < 0 || ord >= len(s.Def.Columns) {
					continue
				}
				table := strings.ToLower(s.Table)
				colName := strings.ToLower(s.Def.Columns[ord].Name)
				cols := db.workload[table]
				if cols == nil {
					cols = map[string]int64{}
					db.workload[table] = cols
				}
				cols[colName]++
			}
		}
	}
	for _, c := range n.Inputs() {
		db.recordWorkloadLocked(c)
	}
}

// Catalog exposes the system catalog (miners and the soft-constraint
// manager work against it directly).
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// CacheStats returns plan-cache counters.
func (db *Database) CacheStats() CacheStats {
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	return db.cacheStat
}

// ResetCacheStats zeroes the counters.
func (db *Database) ResetCacheStats() {
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	db.cacheStat = CacheStats{}
}

// Exec parses and executes one statement without caller cancellation
// (StmtTimeout, if configured, still applies).
func (db *Database) Exec(query string) (*Result, error) {
	return db.ExecCtx(context.Background(), query)
}

// ExecCtx parses and executes one statement under ctx: cancellation and
// deadline expiry abort the statement with a typed QueryError.
func (db *Database) ExecCtx(ctx context.Context, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.ExecStmtCtx(ctx, stmt, query)
}

// ExecScript executes a semicolon-separated script, returning the last
// result. The script runs on a private session, so multi-statement
// BEGIN..COMMIT blocks work; a transaction left open at the end of the
// script is rolled back. A failing statement's error carries its 1-based
// position and (truncated) text, so a failure deep in a long script is
// attributable.
func (db *Database) ExecScript(script string) (*Result, error) {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return nil, err
	}
	sess := db.NewSession("")
	defer sess.Close()
	var last *Result
	for i, s := range stmts {
		last, err = sess.ExecStmtCtx(context.Background(), s, "")
		if err != nil {
			return nil, fmt.Errorf("engine: script statement %d (%s): %w", i+1, truncateSQL(sql.Print(s)), err)
		}
	}
	return last, nil
}

// mustExecSQLLimit bounds how much query text MustExec's panic message
// carries, so a hostile multi-megabyte statement cannot blow up logs.
const mustExecSQLLimit = 120

// truncateSQL clips s to mustExecSQLLimit runes for error messages.
func truncateSQL(s string) string {
	if len(s) <= mustExecSQLLimit {
		return s
	}
	return s[:mustExecSQLLimit] + "…"
}

// MustExec is Exec that panics on error; for tests and generators. The
// panic value is a *exec.QueryError carrying a truncated copy of the
// statement text.
func (db *Database) MustExec(query string) *Result {
	res, err := db.Exec(query)
	if err != nil {
		kind := exec.KindError
		if qe, ok := exec.AsQueryError(err); ok {
			kind = qe.Kind
		}
		panic(&exec.QueryError{
			Op:   "engine.MustExec",
			Kind: kind,
			Err:  fmt.Errorf("engine: %s: %w", truncateSQL(query), err),
		})
	}
	return res
}

// ExecStmt executes a parsed statement without caller cancellation; see
// ExecStmtCtx.
func (db *Database) ExecStmt(stmt sql.Statement, cacheKey string) (*Result, error) {
	return db.ExecStmtCtx(context.Background(), stmt, cacheKey)
}

// admit acquires an admission-gate slot, waiting until one frees or ctx
// fires. The returned release must be called when the statement finishes.
// With MaxConcurrent <= 0 the gate is disabled.
func (db *Database) admit(ctx context.Context) (release func(), err error) {
	db.admitOnce.Do(func() {
		if db.MaxConcurrent > 0 {
			db.admitSlots = make(chan struct{}, db.MaxConcurrent)
		}
	})
	slots := db.admitSlots
	if slots == nil {
		return func() {}, nil
	}
	select {
	case slots <- struct{}{}:
		return func() { <-slots }, nil
	case <-ctx.Done():
		return nil, exec.CancelError("engine.admission", ctx.Err())
	}
}

// ExecStmtCtx executes a parsed statement under ctx. cacheKey, when
// non-empty, enables plan caching for selects. SELECT and EXPLAIN take the
// shared lock so concurrent readers proceed in parallel; every other
// statement mutates engine state and takes the exclusive lock. When the
// database has a StmtTimeout and ctx carries no deadline, the timeout is
// applied; the admission gate (MaxConcurrent) is crossed before any lock
// is taken.
func (db *Database) ExecStmtCtx(ctx context.Context, stmt sql.Statement, cacheKey string) (*Result, error) {
	return db.execStmtCtx(ctx, stmt, cacheKey, db.defaultSettings(), nil)
}

// execStmtCtx is the settings-aware core of ExecStmtCtx: direct Database
// calls pass the database defaults and no session (each DML statement
// autocommits; BEGIN is rejected), Session calls pass the session's
// effective settings plus the session itself, which carries its open
// transaction and trace/log label.
func (db *Database) execStmtCtx(ctx context.Context, stmt sql.Statement, cacheKey string, st Settings, sess *Session) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if st.StmtTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, st.StmtTimeout)
			defer cancel()
		}
	}
	release, err := db.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	switch s := stmt.(type) {
	case *sql.Select:
		return db.query(ctx, s, cacheKey, modeRun, st, sess)
	case *sql.Explain:
		inner, ok := s.Stmt.(*sql.Select)
		if !ok {
			return nil, fmt.Errorf("engine: EXPLAIN supports only SELECT")
		}
		mode := modeExplain
		if s.Analyze {
			mode = modeAnalyze
		}
		return db.query(ctx, inner, stripExplainPrefix(cacheKey), mode, st, sess)
	case *sql.Show:
		if s.Shards {
			// A plain engine is a topology of one. The shard router
			// intercepts SHOW SHARDS before it reaches any engine and
			// answers with its real topology and constraint registry; the
			// shared column shape keeps clients uniform.
			return &Result{
				Columns: []string{"shard", "addr", "state", "table", "column", "kind", "range", "constraint"},
			}, nil
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.showConstraintsEconomy(), nil
	case *sql.Begin:
		return db.beginStmt(sess)
	case *sql.Commit:
		return db.commitStmt(sess)
	case *sql.Rollback:
		return db.rollbackStmt(sess)
	case *sql.Insert:
		return db.execDML(sess, func(tx *Tx) (*Result, error) { return db.insert(tx, s) })
	case *sql.Update:
		return db.execDML(sess, func(tx *Tx) (*Result, error) { return db.update(tx, s) })
	case *sql.Delete:
		return db.execDML(sess, func(tx *Tx) (*Result, error) { return db.delete(tx, s) })
	}

	// DDL and ANALYZE commit immediately under the exclusive lock; inside
	// an explicit transaction they would be unrollbackable, so reject them.
	if sess != nil && sess.current() != nil {
		return nil, fmt.Errorf("engine: %s is not allowed inside a transaction", sql.Print(stmt))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Notices are only produced under the exclusive lock (commit hooks and
	// DDL), so the shared query path never touches them.
	db.notices = nil
	var res *Result
	switch s := stmt.(type) {
	case *sql.CreateTable:
		res, err = db.createTable(s)
	case *sql.CreateIndex:
		// The index is built from the committed view; an open transaction's
		// uncommitted inserts would be missing from it after their commit.
		if db.txnMgr.ActiveWrites() > 0 {
			return nil, &exec.QueryError{Op: "engine.ddl", Kind: exec.KindBusy,
				Err: fmt.Errorf("CREATE INDEX must wait for open write transactions")}
		}
		res, err = db.createIndex(s)
	case *sql.CreateView:
		res, err = db.createView(s)
	case *sql.CreateSummary:
		res, err = db.createSummary(s)
	case *sql.AlterTableAdd:
		res, err = db.alterAdd(s)
	case *sql.DropTable:
		res, err = db.dropTable(s)
	case *sql.Analyze:
		res, err = db.analyze(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
	if db.dur != nil {
		db.walDDL(sql.Print(stmt), err == nil)
		if werr := db.commitWALLocked(); werr != nil && err == nil {
			err = werr
		}
	}
	if res != nil {
		res.Notices = append(res.Notices, db.notices...)
	}
	return res, err
}

// sessionLabel is the trace/log tag for a possibly-nil session.
func sessionLabel(sess *Session) string {
	if sess == nil {
		return ""
	}
	return sess.label
}

// Query runs a select and returns its rows.
func (db *Database) Query(query string) ([]types.Row, error) {
	return db.QueryCtx(context.Background(), query)
}

// QueryCtx runs a select under ctx and returns its rows.
func (db *Database) QueryCtx(ctx context.Context, query string) ([]types.Row, error) {
	res, err := db.ExecCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// notify records a soft-constraint event surfaced with the result.
func (db *Database) notify(format string, args ...any) {
	db.notices = append(db.notices, fmt.Sprintf(format, args...))
}

// --- query path ---

func (db *Database) builder() *plan.Builder {
	return &plan.Builder{Catalog: db.cat, Views: db.views}
}

// optimizer builds the per-query optimizer from the database toggles and
// the statement's effective settings.
func (db *Database) optimizer(st Settings) *opt.Optimizer {
	return &opt.Optimizer{
		Cat:             db.cat,
		NoIndexes:       db.NoIndexes,
		NoSSCEstimation: db.NoSSCEstimation,
		NoASTEstimation: db.NoASTEstimation,
		NoPrune:         st.NoPrune,
		NoBatch:         st.NoBatch,
		Parallel:        st.Parallel,
		ParallelMinRows: st.ParallelMinRows,
	}
}

// rewriteOpts derives the per-query rewrite options from the database
// toggles and the statement's effective settings: NoPrune also stops the
// rewriter from planting prune-only predicates.
func (db *Database) rewriteOpts(st Settings) rewrite.Options {
	o := db.RewriteOpts
	if st.NoPrune {
		o.NoPruneIntro = true
	}
	return o
}

// Plan builds, rewrites and optimizes a select without running it.
func (db *Database) Plan(sel *sql.Select) (*opt.Result, *rewrite.Rewriter, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := db.defaultSettings()
	logical, err := db.builder().BuildSelect(sel)
	if err != nil {
		return nil, nil, err
	}
	rw := &rewrite.Rewriter{Cat: db.cat, Opt: db.rewriteOpts(st)}
	logical = rw.Rewrite(logical)
	result, err := db.optimizer(st).Optimize(logical)
	if err != nil {
		return nil, nil, err
	}
	return result, rw, nil
}

// cacheLookup resolves cacheKey to a runnable entry under cacheMu,
// applying the §4.1 lifecycle: hit on a current entry, failover to the
// backup plan when only soft characterizations changed, otherwise lazy
// invalidation plus a miss.
func (db *Database) cacheLookup(cacheKey string) (*cachedPlan, bool) {
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	if entry, ok := db.planCache[cacheKey]; ok {
		if entry.catVersion == db.cat.Version() {
			db.cacheStat.Hits++
			db.obs.metrics.Counter(mCacheHits).Inc()
			return entry, true
		}
		// §4.1: if only soft characterizations changed (the hard version
		// is intact) and a backup plan was compiled, revert to it instead
		// of recompiling.
		if entry.hardVersion == db.cat.HardVersion() && entry.backup != nil {
			bk := entry.backup
			bk.catVersion = db.cat.Version()
			bk.hardVersion = db.cat.HardVersion()
			bk.trace = append([]string{"backup-plan: reverted after soft-constraint change (§4.1)"}, bk.trace...)
			db.planCache[cacheKey] = bk
			db.cacheStat.Failovers++
			db.obs.metrics.Counter(mCacheFailover).Inc()
			return bk, true
		}
		delete(db.planCache, cacheKey)
		db.cacheStat.Invalidations++
		db.obs.metrics.Counter(mCacheInvals).Inc()
		db.obs.cacheEntries.Set(int64(len(db.planCache)))
	}
	db.cacheStat.Misses++
	db.obs.metrics.Counter(mCacheMisses).Inc()
	return nil, false
}

// cachePeek reports "hit" or "miss" for the select text's cache slot
// without disturbing the §4.1 lifecycle or the stats — used by EXPLAIN to
// annotate its output with the plan-cache status the equivalent SELECT
// would see.
func (db *Database) cachePeek(selKey string, st Settings) string {
	if selKey == "" || db.DisablePlanCache {
		return "miss"
	}
	key := planCacheKey(selKey, st)
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	if e, ok := db.planCache[key]; ok && e.catVersion == db.cat.Version() {
		return "hit"
	}
	return "miss"
}

// planCacheKey builds the plan-cache identity for a select's text under
// the statement's effective settings. Only knobs that shape the compiled
// physical plan or its delivery participate: the degree of parallelism and
// the prune and batch toggles — so concurrent sessions with different knob
// sets never share an entry. The lifecycle knobs (MemBudget, StmtTimeout,
// MaxConcurrent, Fault) are deliberately excluded — they act at run time
// on any compiled plan, so keying on them would only fragment the cache
// without changing what is compiled.
func planCacheKey(selKey string, st Settings) string {
	return fmt.Sprintf("%s\x00parallel=%d\x00prune=%t\x00batch=%t", selKey, st.Parallel, st.NoPrune, st.NoBatch)
}

// stripExplainPrefix reduces an EXPLAIN [ANALYZE] statement's text to the
// underlying SELECT's text, which is the plan-cache key for direct runs.
func stripExplainPrefix(q string) string {
	s := strings.TrimSpace(q)
	if len(s) >= 7 && strings.EqualFold(s[:7], "EXPLAIN") {
		s = strings.TrimSpace(s[7:])
		if len(s) >= 7 && strings.EqualFold(s[:7], "ANALYZE") {
			s = strings.TrimSpace(s[7:])
		}
	}
	return s
}

// queryMode selects the query path's behavior: execute, explain the plan,
// or execute under instrumentation and explain with actuals.
type queryMode int

const (
	modeRun queryMode = iota
	modeExplain
	modeAnalyze
)

// query runs the SELECT/EXPLAIN pipeline. Planning — cache lookup, build,
// rewrite, optimize, cache store — happens under the shared lock; then the
// statement's MVCC snapshot is pinned, the lock is released, and the plan
// executes lock-free against that snapshot. A concurrent commit can
// publish mid-execution without being observed (scans filter by the pinned
// snapshot), and a slow scan no longer blocks writers.
// testHookQueryUnlocked, when set by a test, runs after query() has
// dropped the shared lock and pinned its snapshot, immediately before
// operator execution — the window in which a scan must not block writers.
var testHookQueryUnlocked func()

func (db *Database) query(ctx context.Context, sel *sql.Select, cacheKey string, mode queryMode, st Settings, sess *Session) (*Result, error) {
	label := sessionLabel(sess)
	sqlText := cacheKey
	if sqlText == "" {
		sqlText = sql.Print(sel)
	}

	db.mu.RLock()
	locked := true
	unlock := func() {
		if locked {
			db.mu.RUnlock()
			locked = false
		}
	}
	defer unlock()

	useCache := cacheKey != "" && !db.DisablePlanCache && mode == modeRun
	var entry *cachedPlan
	cacheHit := false
	if useCache {
		cacheKey = planCacheKey(cacheKey, st)
		if e, ok := db.cacheLookup(cacheKey); ok {
			entry, cacheHit = e, true
		}
	}
	if entry == nil {
		logical, err := db.builder().BuildSelect(sel)
		if err != nil {
			return nil, err
		}
		db.recordWorkload(logical)
		cols := logical.Cols()
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
		rw := &rewrite.Rewriter{Cat: db.cat, Opt: db.rewriteOpts(st)}
		logical = rw.Rewrite(logical)
		result, err := db.optimizer(st).Optimize(logical)
		if err != nil {
			return nil, err
		}
		db.countRewriteFires(rw.Events)
		planText := exec.Format(result.Root)
		entry = &cachedPlan{
			catVersion:   db.cat.Version(),
			hardVersion:  db.cat.HardVersion(),
			root:         result.Root,
			cols:         names,
			estRows:      result.EstRows,
			estCost:      result.EstCost,
			planText:     planText,
			trace:        rw.Trace,
			nodeRows:     result.NodeRows,
			nodeInformed: result.NodeInformed,
			events:       append(append([]obs.Event(nil), rw.Events...), result.Events...),
			degree:       exec.MaxDegree(result.Root),
		}
		if !db.NoEconomy {
			entry.shadowDeltas = db.shadowCostDeltas(sel, result.EstCost, entry.events, st)
		}
		if mode == modeExplain {
			var rows []types.Row
			line := func(s string) { rows = append(rows, types.Row{types.NewString(s)}) }
			for _, l := range strings.Split(strings.TrimRight(planText, "\n"), "\n") {
				line(l)
			}
			for _, t := range rw.Trace {
				line("rewrite: " + t)
			}
			for _, e := range entry.events {
				line("event: " + e.String())
			}
			line(fmt.Sprintf("estimated rows: %.1f, cost: %.1f", result.EstRows, result.EstCost))
			line(fmt.Sprintf("parallel degree: %d", entry.degree))
			line("plan cache: " + db.cachePeek(cacheKey, st))
			return &Result{
				Columns: []string{"plan"},
				Rows:    rows,
				EstRows: result.EstRows,
				EstCost: result.EstCost,
				Plan:    planText,
				Trace:   rw.Trace,
				Degree:  entry.degree,
				Events:  entry.events,
			}, nil
		}
		if useCache {
			if len(rw.Trace) > 0 && db.ASCDynamicOnly {
				// §4.1: "restrict the use of ASCs in rewrite just to dynamic
				// queries and never for precompilation" — run the rewritten
				// plan once, cache nothing.
			} else {
				// §4.1 backup plan: when soft rules shaped the primary plan,
				// compile the SQO-free alternative alongside so an overturned
				// ASC reverts instead of recompiling.
				if len(rw.Trace) > 0 {
					if backup, err := db.compileBackup(sel, names, st); err == nil {
						entry.backup = backup
					}
				}
				db.cacheMu.Lock()
				db.planCache[cacheKey] = entry
				db.obs.cacheEntries.Set(int64(len(db.planCache)))
				db.cacheMu.Unlock()
			}
		}
	}

	cacheStatus := ""
	if mode == modeAnalyze {
		cacheStatus = db.cachePeek(cacheKey, st)
	}
	// Pin the statement's snapshot before releasing the shared lock so the
	// versions it reads stay beyond the vacuum horizon for the whole run.
	snap, tid, releaseSnap := db.snapshotFor(sess)
	unlock()
	defer releaseSnap()
	if h := testHookQueryUnlocked; h != nil {
		h()
	}

	if mode == modeAnalyze {
		return db.explainAnalyze(ctx, entry, sqlText, cacheStatus, st, label, snap, tid)
	}
	return db.execute(ctx, entry, sqlText, cacheHit, st, label, snap, tid)
}

// execCtx builds the exec context carrying the query's lifecycle: the
// caller's cancellation signal, the statement's memory budget, the
// database fault injector, the panic-recovery hook feeding the metrics
// registry, and the MVCC view (snapshot + reading transaction) every scan
// filters by.
func (db *Database) execCtx(ctx context.Context, st Settings, snap, tid int64) *exec.Ctx {
	return exec.NewCtx(ctx, exec.CtxOptions{
		MemBudget: st.MemBudget,
		OnPanic:   func(string) { db.obs.workerPanics.Inc() },
		Fault:     db.Fault,
		Snap:      snap,
		TID:       tid,
	})
}

// terminalState classifies a finished query's outcome for traces and the
// per-state metrics.
func terminalState(err error) string {
	switch {
	case err == nil:
		return "ok"
	default:
		if qe, ok := exec.AsQueryError(err); ok {
			return string(qe.Kind)
		}
		return string(exec.KindError)
	}
}

// runPlan drives a compiled plan to completion under the engine-boundary
// panic guard: a panic anywhere on the serial execution path (worker
// goroutines have their own recovery) surfaces as a KindPanic QueryError
// instead of crashing the process.
func (db *Database) runPlan(ctx context.Context, root exec.Operator, ectx *exec.Ctx, noBatch bool, hint int) ([]types.Row, error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, exec.CancelError("engine.execute", cerr)
	}
	var rows []types.Row
	err := exec.Guard(ectx, "engine.execute", func() error {
		var cerr error
		if noBatch {
			rows, cerr = exec.Collect(root, ectx)
		} else {
			rows, cerr = exec.CollectBatched(root, ectx, hint)
		}
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// execute runs a compiled plan, instrumenting it with a span tree when
// tracing is on, and records the execution in metrics and the query log.
// It runs without any engine lock: the snapshot pins its MVCC view.
func (db *Database) execute(ctx context.Context, entry *cachedPlan, sqlText string, cacheHit bool, st Settings, sess string, snap, tid int64) (*Result, error) {
	start := time.Now()
	root := entry.root
	var span *obs.SpanNode
	if db.obs.tracing.Load() {
		root, span = exec.InstrumentInformed(entry.root, estLookup(entry.nodeRows), informedLookup(entry.nodeInformed))
	}
	ectx := db.execCtx(ctx, st, snap, tid)
	if !db.NoEconomy {
		ectx.Skips = exec.NewSkipRecorder()
		ectx.Shorts = exec.NewSkipRecorder()
	}
	rows, err := db.runPlan(ctx, root, ectx, st.NoBatch, int(entry.estRows))
	dur := time.Since(start)
	io := ectx.IO.Load()
	t := &obs.Trace{
		SQL: sqlText, Start: start, Duration: dur,
		Degree: entry.degree, CacheHit: cacheHit,
		Session: sess,
		Root:    span, Events: entry.events,
		EstRows: entry.estRows, EstCost: entry.estCost,
		ActualRows: int64(len(rows)), PagesRead: io.PagesRead,
		PagesSkipped:       io.PagesSkipped,
		RowsShortCircuited: ectx.ShortCircuits,
		State:              terminalState(err),
	}
	if err != nil {
		t.Err = err.Error()
	}
	db.observeQuery(t)
	db.creditEconomy(entry, span, ectx.Skips, ectx.Shorts, int64(len(rows)), err)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:  entry.cols,
		Rows:     rows,
		Ctx:      *ectx,
		EstRows:  entry.estRows,
		EstCost:  entry.estCost,
		Plan:     entry.planText,
		Trace:    entry.trace,
		Degree:   entry.degree,
		CacheHit: cacheHit,
		Events:   entry.events,
	}, nil
}

// explainAnalyze executes the plan under full instrumentation and renders
// per-node estimated vs. actual figures plus every soft-constraint
// consultation made while planning.
func (db *Database) explainAnalyze(ctx context.Context, entry *cachedPlan, sqlText, cacheStatus string, st Settings, sess string, snap, tid int64) (*Result, error) {
	start := time.Now()
	iroot, span := exec.InstrumentInformed(entry.root, estLookup(entry.nodeRows), informedLookup(entry.nodeInformed))
	ectx := db.execCtx(ctx, st, snap, tid)
	if !db.NoEconomy {
		ectx.Skips = exec.NewSkipRecorder()
		ectx.Shorts = exec.NewSkipRecorder()
	}
	resRows, err := db.runPlan(ctx, iroot, ectx, st.NoBatch, int(entry.estRows))
	dur := time.Since(start)
	io := ectx.IO.Load()
	state := terminalState(err)
	t := &obs.Trace{
		SQL: sqlText, Start: start, Duration: dur,
		Degree: entry.degree, CacheHit: cacheStatus == "hit",
		Session: sess,
		Root:    span, Events: entry.events,
		EstRows: entry.estRows, EstCost: entry.estCost,
		ActualRows: int64(len(resRows)), PagesRead: io.PagesRead,
		PagesSkipped:       io.PagesSkipped,
		RowsShortCircuited: ectx.ShortCircuits,
		State:              state,
	}
	if err != nil {
		t.Err = err.Error()
	}
	db.observeQuery(t)
	db.creditEconomy(entry, span, ectx.Skips, ectx.Shorts, int64(len(resRows)), err)
	if err != nil {
		return nil, err
	}
	var rows []types.Row
	line := func(s string) { rows = append(rows, types.Row{types.NewString(s)}) }
	for _, l := range span.Render() {
		line(l)
	}
	for _, tr := range entry.trace {
		line("rewrite: " + tr)
	}
	for _, e := range entry.events {
		line("event: " + e.String())
	}
	for _, l := range economyLines(entry, ectx.Skips, ectx.Shorts) {
		line(l)
	}
	line(fmt.Sprintf("estimated rows: %.1f, cost: %.1f", entry.estRows, entry.estCost))
	line(fmt.Sprintf("actual rows: %d, elapsed: %s, pages: %d, skipped: %d", len(resRows), dur, io.PagesRead, io.PagesSkipped))
	line(fmt.Sprintf("parallel degree: %d", entry.degree))
	line("terminal state: " + state)
	line("plan cache: " + cacheStatus)
	return &Result{
		Columns:  []string{"plan"},
		Rows:     rows,
		Ctx:      *ectx,
		EstRows:  entry.estRows,
		EstCost:  entry.estCost,
		Plan:     entry.planText,
		Trace:    entry.trace,
		Degree:   entry.degree,
		CacheHit: cacheStatus == "hit",
		Events:   entry.events,
	}, nil
}

// compileBackup builds the soft-rule-free alternative plan for a select.
func (db *Database) compileBackup(sel *sql.Select, names []string, st Settings) (*cachedPlan, error) {
	logical, err := db.builder().BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	rw := &rewrite.Rewriter{Cat: db.cat, Opt: rewrite.Options{
		NoJoinElim: true, NoPredIntro: true, NoBranchPrune: true,
		NoHoleTrim: true, NoSortOpt: true, NoExceptionAST: true,
		NoSSCTwins: true, NoASTRouting: true, NoPruneIntro: true,
	}}
	logical = rw.Rewrite(logical)
	o := db.optimizer(st)
	o.NoSSCEstimation = true
	o.NoASTEstimation = true
	result, err := o.Optimize(logical)
	if err != nil {
		return nil, err
	}
	return &cachedPlan{
		catVersion:  db.cat.Version(),
		hardVersion: db.cat.HardVersion(),
		root:        result.Root,
		cols:        names,
		estRows:     result.EstRows,
		estCost:     result.EstCost,
		planText:    exec.Format(result.Root),
		nodeRows:    result.NodeRows,
		degree:      exec.MaxDegree(result.Root),
	}, nil
}

// CachedPlanCount reports live plan-cache entries.
func (db *Database) CachedPlanCount() int {
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	return len(db.planCache)
}

// InvalidateStaleCache drops cache entries whose catalog version is stale,
// returning how many were dropped. The engine also invalidates lazily on
// lookup; this models the §4.1 eager "drop every dependent package" sweep.
func (db *Database) InvalidateStaleCache() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.cacheMu.Lock()
	defer db.cacheMu.Unlock()
	n := 0
	for k, e := range db.planCache {
		if e.catVersion != db.cat.Version() {
			delete(db.planCache, k)
			n++
		}
	}
	db.cacheStat.Invalidations += int64(n)
	db.obs.metrics.Counter(mCacheInvals).Add(int64(n))
	db.obs.cacheEntries.Set(int64(len(db.planCache)))
	return n
}

// analyze collects statistics (DB2 runstats) for a table and for the
// materialized summary tables defined over it.
func (db *Database) analyze(a *sql.Analyze) (*Result, error) {
	te, err := db.cat.Table(a.Table)
	if err != nil {
		return nil, err
	}
	ts := stats.Collect(te.Heap, stats.DefaultBuckets)
	if err := db.cat.SetStats(te.Def.Name, ts); err != nil {
		return nil, err
	}
	for _, st := range db.cat.SummariesOn(te.Def.Name) {
		if st.Heap != nil {
			st.Stats = stats.Collect(st.Heap, stats.DefaultBuckets)
		}
	}
	// Virtual columns (§5.1's second mechanism) get a distribution too:
	// evaluate the expression per row and build column statistics over the
	// results.
	for _, vc := range te.Virtual {
		var vals []types.Datum
		var nulls int64
		var evalErr error
		te.Heap.Scan(nil, func(_ storage.RowID, row types.Row) bool {
			v, err := vc.Expr.Eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			if v.IsNull() {
				nulls++
			} else {
				vals = append(vals, v)
			}
			return true
		})
		if evalErr != nil {
			return nil, fmt.Errorf("engine: analyzing virtual column %s: %w", vc.Name, evalErr)
		}
		vc.Stats = stats.BuildColumnStats(vc.Name, vc.Expr.Type(), vals, nulls, stats.DefaultBuckets)
	}
	db.cat.Touch()
	return &Result{RowsAffected: te.Heap.RowCount()}, nil
}

// AddVirtualColumn registers and immediately analyzes a virtual column
// (§5.1's second mechanism). exprSQL is an expression over the table's
// columns, e.g. "end_date - start_date".
func (db *Database) AddVirtualColumn(table, name, exprSQL string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	te, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	parsed, err := parseExpression(exprSQL)
	if err != nil {
		return err
	}
	bound, err := bindToTable(parsed, te.Def)
	if err != nil {
		return err
	}
	if _, err := db.cat.AddVirtualColumn(table, name, bound); err != nil {
		return err
	}
	if _, err = db.analyze(&sql.Analyze{Table: table}); err != nil {
		return err
	}
	if db.dur != nil {
		// Durability: a registry image carries the new column; the ANALYZE
		// replay re-collects its statistics the same way the live call did.
		if err := db.walSoftLocked(); err != nil {
			return err
		}
		db.walDDL("ANALYZE "+te.Def.Name, true)
		return db.commitWALLocked()
	}
	return nil
}

// parseExpression parses a bare scalar expression by wrapping it in a
// SELECT against a placeholder binding (binding happens later against the
// real table).
func parseExpression(s string) (expr.Expr, error) {
	stmt, err := sql.Parse("SELECT " + s + " AS v FROM dualx")
	if err != nil {
		return nil, fmt.Errorf("engine: bad expression %q: %w", s, err)
	}
	sel := stmt.(*sql.Select)
	if len(sel.Items) != 1 || sel.Items[0].Expr == nil {
		return nil, fmt.Errorf("engine: bad expression %q", s)
	}
	return sel.Items[0].Expr, nil
}

// exprColumnOrdinals is a small local helper over expr column extraction.
func exprColumnOrdinals(e expr.Expr) []int { return expr.ColumnIndexes(e) }
