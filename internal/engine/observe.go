package engine

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"softdb/internal/exec"
	"softdb/internal/obs"
	"softdb/internal/softc"
)

// Metric family names the engine exports. Everything is prefixed softdb_ and
// follows Prometheus naming conventions (_total for counters, base units in
// the name for histograms).
const (
	mQueries       = "softdb_queries_total"
	mQueryErrors   = "softdb_query_errors_total"
	mSlowQueries   = "softdb_slow_queries_total"
	mQueryDuration = "softdb_query_duration_seconds"
	mCacheHits     = "softdb_plan_cache_hits_total"
	mCacheMisses   = "softdb_plan_cache_misses_total"
	mCacheInvals   = "softdb_plan_cache_invalidations_total"
	mCacheFailover = "softdb_plan_cache_failovers_total"
	mCacheEntries  = "softdb_plan_cache_entries"
	mRewriteFires  = "softdb_rewrite_fires_total"
	mParallelQs    = "softdb_parallel_queries_total"
	mASCViolations = "softdb_asc_violations_total"
	mCorrDrops     = "softdb_correlation_drops_total"
	mHolesRetired  = "softdb_holes_retired_total"
	mSSCRefreshes  = "softdb_ssc_refreshes_total"
	mPromotions    = "softdb_probation_promotions_total"
	mDiscoveryRuns = "softdb_discovery_runs_total"
	mPagesSkipped  = "softdb_scan_pages_skipped_total"
	mRowsShort     = "softdb_scan_rows_short_circuited_total"
	mPruneRejected = "softdb_prune_rejected_total"
	// Query-lifecycle terminal states and robustness counters.
	mQueriesCanceled   = "softdb_queries_canceled_total"
	mQueriesTimedOut   = "softdb_queries_timed_out_total"
	mMemBudgetRejected = "softdb_mem_budget_rejected_total"
	mWorkerPanics      = "softdb_worker_panics_recovered_total"
	// Durability counters (durable databases only).
	mWALBytes         = "softdb_wal_bytes_total"
	mWALFsyncs        = "softdb_wal_fsyncs_total"
	mCheckpoints      = "softdb_checkpoints_total"
	mRecoveryReplayed = "softdb_recovery_records_replayed_total"
	// Durability telemetry: WAL activity and the recovery outcome of the
	// most recent OpenDurable.
	mWALFrames         = "softdb_wal_frames_total"
	mWALBatchSize      = "softdb_wal_group_commit_batch_size"
	mCheckpointSeconds = "softdb_checkpoint_duration_seconds"
	mRecoveryStmts     = "softdb_recovery_statements_replayed_total"
	mRecoveryWALBytes  = "softdb_recovery_wal_bytes"
	mRecoverySnapLSN   = "softdb_recovery_snapshot_lsn"
	mRecoveryRevalid   = "softdb_recovery_revalidated_total"
	mRecoveryInvalid   = "softdb_recovery_invalidated_total"
	mRecoveryTailTrunc = "softdb_recovery_tail_truncated_total"
)

// walBatchBuckets are the group-commit batch-size histogram bounds: a batch
// is the records of one statement plus its commit terminator, so powers of
// two up to 128 cover single-row DML through large multi-row inserts.
var walBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// obsState bundles the database's observability surfaces. The hot-path
// metric pointers are resolved once at Open so per-query updates are single
// atomic adds with no registry lookups.
type obsState struct {
	metrics *obs.Registry
	qlog    *obs.QueryLog
	logger  atomic.Pointer[slog.Logger]
	tracing atomic.Bool
	slowNs  atomic.Int64

	queries      *obs.Counter
	queryErrors  *obs.Counter
	slowQueries  *obs.Counter
	duration     *obs.Histogram
	cacheEntries *obs.Gauge
	pagesSkipped *obs.Counter
	rowsShort    *obs.Counter

	queriesCanceled   *obs.Counter
	queriesTimedOut   *obs.Counter
	memBudgetRejected *obs.Counter
	workerPanics      *obs.Counter

	// econ is the per-constraint benefit/cost ledger (see economy.go). It
	// is always non-nil after initObs; the NoEconomy toggle gates the
	// crediting call sites instead, so disabling the ledger removes the
	// bookkeeping work, not just the numbers.
	econ *obs.Economy
}

func (db *Database) initObs() {
	o := &db.obs
	o.metrics = obs.NewRegistry()
	o.qlog = obs.NewQueryLog(128)

	r := o.metrics
	r.Describe(mQueries, "counter", "Queries executed.")
	r.Describe(mQueryErrors, "counter", "Queries that returned an error.")
	r.Describe(mSlowQueries, "counter", "Queries exceeding the slow-query threshold.")
	r.Describe(mQueryDuration, "histogram", "Query latency in seconds.")
	r.Describe(mCacheHits, "counter", "Plan-cache hits.")
	r.Describe(mCacheMisses, "counter", "Plan-cache misses.")
	r.Describe(mCacheInvals, "counter", "Plan-cache entries invalidated by catalog changes.")
	r.Describe(mCacheFailover, "counter", "Plan-cache reversions to the SQO-free backup plan (§4.1).")
	r.Describe(mCacheEntries, "gauge", "Live plan-cache entries.")
	r.Describe(mRewriteFires, "counter", "Semantic rewrite rule firings by kind.")
	r.Describe(mParallelQs, "counter", "Queries executed with a parallel plan, by degree.")
	r.Describe(mASCViolations, "counter", "Absolute soft constraints deactivated by violating writes.")
	r.Describe(mCorrDrops, "counter", "Absolute linear correlations dropped by violating writes.")
	r.Describe(mHolesRetired, "counter", "Join holes retired by the §4.3 synchronous repair.")
	r.Describe(mSSCRefreshes, "counter", "Statistical soft-constraint confidence refreshes.")
	r.Describe(mPromotions, "counter", "Probationary correlations promoted to employed.")
	r.Describe(mDiscoveryRuns, "counter", "Soft-constraint discovery passes over a table.")
	r.Describe(mPagesSkipped, "counter", "Heap pages skipped by synopsis-based scan pruning.")
	r.Describe(mRowsShort, "counter", "Rows whose per-row filter evaluation a page-level synopsis proof short-circuited.")
	r.Describe(mPruneRejected, "counter", "Prune-predicate introductions rejected, by reason.")
	r.Describe(mQueriesCanceled, "counter", "Queries terminated by context cancellation.")
	r.Describe(mQueriesTimedOut, "counter", "Queries terminated by deadline expiry.")
	r.Describe(mMemBudgetRejected, "counter", "Queries aborted for exceeding the per-query memory budget.")
	r.Describe(mWorkerPanics, "counter", "Operator or worker panics recovered into query errors.")
	r.Describe(mWALBytes, "counter", "Bytes appended to the write-ahead log.")
	r.Describe(mWALFsyncs, "counter", "Fsyncs the write-ahead log performed.")
	r.Describe(mCheckpoints, "counter", "Checkpoint snapshots written.")
	r.Describe(mRecoveryReplayed, "counter", "Redo records applied by crash recovery at open.")
	r.Describe(mWALFrames, "counter", "Records (frames) appended to the write-ahead log.")
	r.Describe(mWALBatchSize, "histogram", "Records per group commit, commit terminator included.")
	r.Describe(mCheckpointSeconds, "histogram", "Checkpoint snapshot duration in seconds.")
	r.Describe(mRecoveryStmts, "counter", "DDL/registry statements replayed by crash recovery at open.")
	r.Describe(mRecoveryWALBytes, "gauge", "WAL bytes scanned by the most recent crash recovery.")
	r.Describe(mRecoverySnapLSN, "gauge", "Snapshot LSN the most recent crash recovery started from.")
	r.Describe(mRecoveryRevalid, "counter", "Soft constraints revalidated and kept by crash recovery.")
	r.Describe(mRecoveryInvalid, "counter", "Soft constraints invalidated by crash-recovery revalidation.")
	r.Describe(mRecoveryTailTrunc, "counter", "Torn WAL tails truncated by crash recovery.")
	o.econ = obs.NewEconomy(r)

	o.queries = r.Counter(mQueries)
	o.queryErrors = r.Counter(mQueryErrors)
	o.slowQueries = r.Counter(mSlowQueries)
	o.duration = r.Histogram(mQueryDuration, obs.DefLatencyBuckets)
	o.cacheEntries = r.Gauge(mCacheEntries)
	o.pagesSkipped = r.Counter(mPagesSkipped)
	o.rowsShort = r.Counter(mRowsShort)
	o.queriesCanceled = r.Counter(mQueriesCanceled)
	o.queriesTimedOut = r.Counter(mQueriesTimedOut)
	o.memBudgetRejected = r.Counter(mMemBudgetRejected)
	o.workerPanics = r.Counter(mWorkerPanics)
}

// Metrics exposes the database's metrics registry.
func (db *Database) Metrics() *obs.Registry { return db.obs.metrics }

// QueryLog exposes the recent-queries ring buffer.
func (db *Database) QueryLog() *obs.QueryLog { return db.obs.qlog }

// SetLogger installs a structured logger for query and soft-constraint
// lifecycle logging. Safe to call concurrently with running queries.
func (db *Database) SetLogger(l *slog.Logger) { db.obs.logger.Store(l) }

// SetTracing toggles per-operator span collection on the query path.
func (db *Database) SetTracing(on bool) { db.obs.tracing.Store(on) }

// Tracing reports whether per-operator tracing is on.
func (db *Database) Tracing() bool { return db.obs.tracing.Load() }

// SetSlowQueryThreshold sets the duration above which a query is counted
// (and logged) as slow; 0 disables slow-query accounting.
func (db *Database) SetSlowQueryThreshold(d time.Duration) { db.obs.slowNs.Store(int64(d)) }

// Economy exposes the per-constraint benefit/cost ledger.
func (db *Database) Economy() *obs.Economy { return db.obs.econ }

// DebugHandler serves /metrics (Prometheus text format), /debug/queries
// (recent query traces), /debug/constraints (the economy ledger as JSON),
// /debug/wal (durability status) and /debug/pprof/* (live profiling) for a
// -debug-addr style listener.
func (db *Database) DebugHandler() http.Handler {
	return obs.HandlerWith(db.obs.metrics, db.obs.qlog, obs.HandlerOptions{
		Economy: db.ConstraintEconomy,
		WAL:     func() any { return db.WALStatusSnapshot() },
		Pprof:   true,
	})
}

// SoftcManager returns a soft-constraint manager over this database's
// catalog wired into its structured logger and metrics registry.
func (db *Database) SoftcManager() *softc.Manager {
	m := softc.NewManager(db.cat)
	m.Logger = db.obs.logger.Load()
	m.Metrics = db.obs.metrics
	if !db.NoEconomy {
		m.Econ = db.obs.econ
	}
	// Durable databases log a registry image after every softc mutation so
	// mined/advisory state survives a crash. The named hook also charges
	// the registry-maintenance WAL records to the constraints that caused
	// the image to be rewritten.
	m.OnChangeNamed = func(names []string) {
		db.SyncSoftRegistry()
		if db.dur != nil && !db.NoEconomy {
			for _, name := range names {
				db.obs.econ.AddWALRecords(name, 1)
			}
		}
	}
	return m
}

// observeQuery records one finished query execution into metrics, the
// recent-queries ring, and the structured log.
func (db *Database) observeQuery(t *obs.Trace) {
	o := &db.obs
	o.queries.Inc()
	o.duration.Observe(t.Duration.Seconds())
	if t.Err != "" {
		o.queryErrors.Inc()
	}
	switch exec.ErrKind(t.State) {
	case exec.KindCanceled:
		o.queriesCanceled.Inc()
	case exec.KindTimeout:
		o.queriesTimedOut.Inc()
	case exec.KindMemBudget:
		o.memBudgetRejected.Inc()
	}
	if t.Degree > 1 {
		o.metrics.Counter(mParallelQs, "degree", strconv.Itoa(t.Degree)).Inc()
	}
	if t.PagesSkipped > 0 {
		o.pagesSkipped.Add(t.PagesSkipped)
	}
	if t.RowsShortCircuited > 0 {
		o.rowsShort.Add(t.RowsShortCircuited)
	}
	if slow := o.slowNs.Load(); slow > 0 && t.Duration >= time.Duration(slow) {
		t.Slow = true
		o.slowQueries.Inc()
	}
	o.qlog.Add(t)
	if l := o.logger.Load(); l != nil {
		level := slog.LevelDebug
		if t.Slow {
			level = slog.LevelWarn
		}
		attrs := []any{
			"sql", t.SQL,
			"duration", t.Duration,
		}
		if t.Session != "" {
			attrs = append(attrs, "session", t.Session)
		}
		attrs = append(attrs,
			"rows", t.ActualRows,
			"pages", t.PagesRead,
			"pages_skipped", t.PagesSkipped,
			"degree", t.Degree,
			"cache_hit", t.CacheHit,
			"slow", t.Slow,
			"state", t.State,
		)
		if t.Err != "" {
			attrs = append(attrs, "err", t.Err)
			level = slog.LevelError
		}
		l.Log(context.Background(), level, "query", attrs...)
	}
}

// countRewriteFires bumps the per-kind rewrite counter for every rule that
// actually fired while planning a query, and the per-reason rejection
// counter for prune introductions turned down (probation, below-floor,
// no-index). Rewrites that eliminated rows credit the saving to the
// driving constraint's economy ledger. Counted at plan time, so cached
// re-executions do not inflate the figures.
func (db *Database) countRewriteFires(events []obs.Event) {
	for _, e := range events {
		if e.Applied {
			db.obs.metrics.Counter(mRewriteFires, "kind", e.Rule).Inc()
			if !db.NoEconomy && e.Constraint != "" && e.RowsSaved > 0 {
				db.obs.econ.CreditRewriteRows(e.Constraint, e.RowsSaved)
			}
		} else if e.Reason != "" {
			db.obs.metrics.Counter(mPruneRejected, "reason", e.Reason).Inc()
		}
	}
}

// estLookup adapts an optimizer NodeRows map into exec.Instrument's estimate
// callback.
func estLookup(nodeRows map[exec.Operator]float64) func(exec.Operator) (float64, bool) {
	if nodeRows == nil {
		return nil
	}
	return func(op exec.Operator) (float64, bool) {
		rows, ok := nodeRows[op]
		return rows, ok
	}
}
