// Package server is softdb's network front end: a TCP listener that
// multiplexes many concurrent client connections onto one engine.Database.
//
// Each accepted connection gets its own engine.Session ("conn-N"), so a
// client's SET statements — parallel degree, pruning, batching, memory
// budget, statement timeout — are layered over the database defaults
// without affecting any other connection, and the session label tags the
// connection's traces and log lines on the server.
//
// Requests and responses travel over the internal/wire framing. Errors
// keep their engine classification end to end: a *exec.QueryError's kind
// and op are serialized into the FrameError, so a remote client
// distinguishes canceled/timeout/oom/panic outcomes exactly like a local
// caller — plus KindBusy for rejections the server itself issues.
//
// Two overload mechanisms compose:
//
//   - MaxConns caps accepted connections; extras are turned away at
//     accept time with a busy error before any session is created.
//   - Load shedding converts admission-gate queueing into fast failures.
//     The engine's MaxConcurrent gate makes excess statements wait; with
//     ShedQueueDepth > 0 the server instead rejects a statement up front
//     when more than MaxConcurrent+ShedQueueDepth statements are already
//     pending, so overload surfaces as immediate typed "busy" errors
//     rather than unbounded queueing delay.
//
// Shutdown drains gracefully: stop accepting, cancel in-flight statements
// through the engine's context path (clients receive typed canceled
// errors, flushed before the connection closes), then close connections.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/obs"
	"softdb/internal/wire"
)

// Metric family names the server exports on its database's registry.
const (
	mConns        = "softdb_server_connections"
	mConnsTotal   = "softdb_server_connections_total"
	mConnRejected = "softdb_server_conn_rejected_total"
	mRequests     = "softdb_server_requests_total"
	mShed         = "softdb_server_shed_total"
	mReqDuration  = "softdb_server_request_duration_seconds"
)

// Config tunes one Server.
type Config struct {
	// Addr is the TCP listen address; ":0" picks an ephemeral port
	// (read the actual one from Listen's return value).
	Addr string
	// MaxConns caps concurrently served connections; 0 means unlimited.
	// Excess connections receive a busy error and are closed.
	MaxConns int
	// Shed enables load shedding (the database must also have an
	// admission gate, MaxConcurrent > 0): a statement is rejected with a
	// typed busy error when more than MaxConcurrent+ShedQueueDepth
	// statements are already pending server-wide. With Shed false (the
	// default) excess statements queue on the engine's gate instead.
	Shed bool
	// ShedQueueDepth is how many statements beyond the admission gate may
	// queue before the shedder rejects; 0 sheds anything that cannot
	// start immediately.
	ShedQueueDepth int
	// IdleTimeout closes a connection that sends no request for this
	// long; 0 means never.
	IdleTimeout time.Duration
	// Logger, when non-nil, receives connection lifecycle logs.
	Logger *slog.Logger
}

// Server serves the softdb wire protocol over TCP.
type Server struct {
	db  *engine.Database
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu    sync.Mutex
	lis   net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	draining atomic.Bool
	// pending counts statements accepted but not yet finished (including
	// those waiting on the engine's admission gate) — the shed signal.
	pending atomic.Int64
	connSeq atomic.Int64

	gConns        *obs.Gauge
	cConnsTotal   *obs.Counter
	cConnRejected *obs.Counter
	cRequests     *obs.Counter
	cShed         *obs.Counter
	hReqDuration  *obs.Histogram
}

// New builds a server over db and registers the server metric families on
// db's registry.
func New(db *engine.Database, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:         db,
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      map[net.Conn]struct{}{},
	}
	r := db.Metrics()
	r.Describe(mConns, "gauge", "Connections currently served.")
	r.Describe(mConnsTotal, "counter", "Connections accepted.")
	r.Describe(mConnRejected, "counter", "Connections turned away at the MaxConns cap.")
	r.Describe(mRequests, "counter", "Wire requests received, by type.")
	r.Describe(mShed, "counter", "Statements rejected by the load shedder.")
	r.Describe(mReqDuration, "histogram", "Wire request latency in seconds.")
	s.gConns = r.Gauge(mConns)
	s.cConnsTotal = r.Counter(mConnsTotal)
	s.cConnRejected = r.Counter(mConnRejected)
	s.cRequests = r.Counter(mRequests, "type", "query")
	s.cShed = r.Counter(mShed)
	s.hReqDuration = r.Histogram(mReqDuration, obs.DefLatencyBuckets)
	return s
}

// Listen binds the configured address and returns the actual bound
// address (useful with ":0").
func (s *Server) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	return lis.Addr(), nil
}

// Serve accepts connections until Shutdown. Call Listen first.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if !s.admitConn(c) {
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// admitConn registers c against the MaxConns cap. A rejected connection
// receives a welcome (so the client can still parse frames) followed by a
// typed busy error, and is closed.
func (s *Server) admitConn(c net.Conn) bool {
	s.mu.Lock()
	if s.draining.Load() || (s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns) {
		s.mu.Unlock()
		s.cConnRejected.Inc()
		bw := bufio.NewWriter(c)
		_ = wire.WriteFrame(bw, wire.FrameWelcome, wire.AppendWelcome(nil, wire.Welcome{Proto: wire.ProtoVersion, Session: ""}))
		e := &wire.Error{Kind: exec.KindBusy, Op: "server.accept", Msg: "connection limit reached"}
		_ = wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, e))
		_ = bw.Flush()
		_ = c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.cConnsTotal.Inc()
	s.gConns.Add(1)
	return true
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.gConns.Add(-1)
	_ = c.Close()
}

func (s *Server) logf(level slog.Level, msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

// handleConn runs one connection's request loop: welcome, then one
// response sequence per FrameQuery/FrameSet until the client goes away,
// the idle timeout fires, or the server drains.
func (s *Server) handleConn(c net.Conn) {
	defer s.dropConn(c)
	label := fmt.Sprintf("conn-%d", s.connSeq.Add(1))
	sess := s.db.NewSession(label)
	// A dropped connection must not leave a transaction's write intents
	// behind: Close rolls back whatever BEGIN left open.
	defer sess.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	if err := wire.WriteFrame(bw, wire.FrameWelcome, wire.AppendWelcome(nil, wire.Welcome{Proto: wire.ProtoVersion, Session: label})); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.logf(slog.LevelInfo, "connection open", "session", label, "remote", c.RemoteAddr().String())
	defer s.logf(slog.LevelInfo, "connection closed", "session", label)
	for {
		// Deadline before the drain check: Shutdown sets the flag first and
		// stamps deadlines second, so either we see the flag here or its
		// past deadline wakes the ReadFrame below.
		if s.cfg.IdleTimeout > 0 {
			_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		} else {
			_ = c.SetReadDeadline(time.Time{})
		}
		if s.draining.Load() {
			return
		}
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch t {
		case wire.FrameSet:
			set, err := wire.ParseSet(payload)
			if err == nil {
				err = sess.Set(set.Name, set.Value)
			}
			if err != nil {
				if !s.writeError(bw, err) {
					return
				}
				continue
			}
			if wire.WriteFrame(bw, wire.FrameOK, nil) != nil || bw.Flush() != nil {
				return
			}
		case wire.FrameQuery:
			q, err := wire.ParseQuery(payload)
			if err != nil {
				s.writeError(bw, err)
				return // framing is broken; don't trust the stream
			}
			if !s.handleQuery(sess, q, bw) {
				return
			}
		default:
			s.writeError(bw, fmt.Errorf("server: unexpected frame type 0x%02x", byte(t)))
			return
		}
	}
}

// shedCheck admits one statement into the pending count, or rejects it
// when the shedder is active and the backlog is past the threshold. The
// caller must release() iff admitted.
func (s *Server) shedCheck() (release func(), err error) {
	n := s.pending.Add(1)
	release = func() { s.pending.Add(-1) }
	mc := s.db.MaxConcurrent
	if s.cfg.Shed && mc > 0 && n > int64(mc+s.cfg.ShedQueueDepth) {
		release()
		s.cShed.Inc()
		return nil, &exec.QueryError{
			Op:   "server.admission",
			Kind: exec.KindBusy,
			Err:  fmt.Errorf("server busy: %d statements pending (gate %d, queue depth %d)", n, mc, s.cfg.ShedQueueDepth),
		}
	}
	return release, nil
}

// handleQuery executes one statement on sess and streams the response.
// It reports whether the connection is still usable.
func (s *Server) handleQuery(sess *engine.Session, q wire.Query, bw *bufio.Writer) bool {
	s.cRequests.Inc()
	start := time.Now()
	release, err := s.shedCheck()
	if err != nil {
		return s.writeError(bw, err)
	}
	ctx := s.baseCtx
	if q.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(q.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	res, err := sess.ExecCtx(ctx, q.SQL)
	release()
	s.hReqDuration.Observe(time.Since(start).Seconds())
	if err != nil {
		return s.writeError(bw, err)
	}
	if wire.WriteResponse(bw, res.Columns, res.Rows, res.Notices, res.RowsAffected) != nil {
		return false
	}
	return bw.Flush() == nil
}

// writeError sends err as a FrameError and flushes; it reports whether
// the connection is still usable.
func (s *Server) writeError(bw *bufio.Writer, err error) bool {
	if wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, wire.ErrorFrom(err))) != nil {
		return false
	}
	return bw.Flush() == nil
}

// Shutdown drains the server: stop accepting, cancel in-flight statements
// through the engine's context path (their typed errors are flushed to
// clients), wake idle readers, and wait for every connection handler to
// finish. When ctx expires first, remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.lis != nil {
		_ = s.lis.Close()
	}
	// Cancel running statements, then wake idle readers with a past
	// deadline (the handler loop re-checks the drain flag on wake).
	s.baseCancel()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
