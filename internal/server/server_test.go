package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/softc"
	"softdb/internal/types"
	"softdb/internal/wire"
)

// startServer listens on :0 and serves db until the test ends.
func startServer(t *testing.T, db *engine.Database, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(db, cfg)
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, addr.String()
}

// corrDB seeds the pruning table from the engine tests: clustered a,
// b = a + small noise (a minable absolute correlation), NULLs in b.
func corrDB(t *testing.T, n int, mine bool) *engine.Database {
	t.Helper()
	db := engine.Open()
	db.NoIndexes = true
	db.MustExec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)")
	te, err := db.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := types.Datum(types.NewInt(int64(i + i%4)))
		if i%97 == 0 {
			b = types.Null
		}
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), b, types.NewInt(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	db.MustExec("ANALYZE t")
	if mine {
		mgr := softc.NewManager(db.Catalog())
		cands, err := mgr.DiscoverTable("t")
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestServerBoundAddr: listening on :0 reports the actual bound port.
func TestServerBoundAddr(t *testing.T) {
	_, addr := startServer(t, engine.Open(), Config{})
	tcp, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Port == 0 {
		t.Fatalf("Listen(:0) must report the real port, got %s", addr)
	}
}

// TestServerEndToEnd: DDL, DML (with rows-affected), and queries through
// the wire return exactly what the in-process API returns.
func TestServerEndToEnd(t *testing.T) {
	db := engine.Open()
	_, addr := startServer(t, db, Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Session() == "" {
		t.Fatal("welcome should carry a session label")
	}

	ctx := context.Background()
	if _, err := c.Query(ctx, "CREATE TABLE kv (k INT NOT NULL, v STRING)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "INSERT INTO kv VALUES (1, 'one'), (2, 'two'), (3, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("rows affected: %d", res.RowsAffected)
	}
	remote, err := c.Query(ctx, "SELECT k, v FROM kv WHERE k >= 1")
	if err != nil {
		t.Fatal(err)
	}
	local, err := db.ExecCtx(ctx, "SELECT k, v FROM kv WHERE k >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(remote.Columns) != fmt.Sprint(local.Columns) {
		t.Fatalf("columns: remote %v, local %v", remote.Columns, local.Columns)
	}
	if len(remote.Rows) != len(local.Rows) {
		t.Fatalf("rows: remote %d, local %d", len(remote.Rows), len(local.Rows))
	}
	for i := range remote.Rows {
		for j := range remote.Rows[i] {
			if remote.Rows[i][j].String() != local.Rows[i][j].String() {
				t.Fatalf("row %d col %d: %s vs %s", i, j, remote.Rows[i][j], local.Rows[i][j])
			}
		}
	}

	// Parse errors travel as plain (non-lifecycle) errors.
	_, err = c.Query(ctx, "SELEC nonsense")
	if err == nil || client.Kind(err) != exec.KindError {
		t.Fatalf("parse error over the wire: %v (kind %s)", err, client.Kind(err))
	}
	// The connection survives statement errors.
	if _, err := c.Query(ctx, "SELECT k FROM kv"); err != nil {
		t.Fatalf("connection should survive a statement error: %v", err)
	}
}

// TestServerLargeResult: results beyond one row batch stream correctly.
func TestServerLargeResult(t *testing.T) {
	db := corrDB(t, 2000, false)
	_, addr := startServer(t, db, Config{})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(context.Background(), "SELECT a, b, c FROM t WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2000 {
		t.Fatalf("large result lost rows: %d", len(res.Rows))
	}
	if int(res.Rows[1999][0].Int()) != 1999 {
		t.Fatalf("last row mangled: %v", res.Rows[1999])
	}
}

// TestServerSessionSettings: SET over the wire shapes this session's
// statements only; invalid settings error without killing the connection.
func TestServerSessionSettings(t *testing.T) {
	db := corrDB(t, 4000, false)
	db.Parallel = 1
	db.ParallelMinRows = 1
	_, addr := startServer(t, db, Config{})
	const q = "SELECT a, b FROM t WHERE a >= 100 AND a <= 140"

	tuned, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tuned.Close()
	plain, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	if err := tuned.Set("parallel", "4"); err != nil {
		t.Fatal(err)
	}
	if err := tuned.Set("prune", "off"); err != nil {
		t.Fatal(err)
	}
	if err := tuned.Set("no_such_knob", "1"); err == nil {
		t.Fatal("unknown setting should error")
	}
	if _, err := tuned.Query(context.Background(), q); err != nil {
		t.Fatalf("connection should survive a bad SET: %v", err)
	}
	if _, err := plain.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// The sessions compiled distinct plans (knobs are in the cache key) and
	// the tuned session's parallel degree shows in its trace.
	if got := db.CachedPlanCount(); got != 2 {
		t.Fatalf("two knob sets should compile two plans, got %d", got)
	}
	var sawTuned, sawPlain bool
	for _, tr := range db.QueryLog().Recent(8) {
		switch tr.Session {
		case tuned.Session():
			sawTuned = true
			if tr.Degree <= 1 {
				t.Errorf("tuned session ran serial (degree %d)", tr.Degree)
			}
			if tr.PagesSkipped != 0 {
				t.Errorf("tuned session pruned despite prune=off: %d", tr.PagesSkipped)
			}
		case plain.Session():
			sawPlain = true
			if tr.Degree != 1 {
				t.Errorf("plain session went parallel (degree %d)", tr.Degree)
			}
			if tr.PagesSkipped == 0 {
				t.Errorf("plain session should prune")
			}
		}
	}
	if !sawTuned || !sawPlain {
		t.Fatalf("traces missing a session: tuned=%t plain=%t", sawTuned, sawPlain)
	}
}

// TestServerMaxConns: connections beyond the cap get a typed busy error.
func TestServerMaxConns(t *testing.T) {
	_, addr := startServer(t, engine.Open(), Config{MaxConns: 2})
	c1, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = client.Connect(addr)
	if err == nil {
		t.Fatal("third connection should be rejected")
	}
	if client.Kind(err) != exec.KindBusy {
		t.Fatalf("rejection should be typed busy, got %v", err)
	}
	// Closing one frees a slot.
	c1.Close()
	waitFor(t, time.Second, func() bool {
		c3, err := client.Connect(addr)
		if err != nil {
			return false
		}
		c3.Close()
		return true
	})
}

// TestServerLoadShedding: with the shedder on, statements beyond
// MaxConcurrent+ShedQueueDepth fail fast with kind busy at the
// server.admission boundary instead of queueing on the engine gate.
func TestServerLoadShedding(t *testing.T) {
	db := corrDB(t, 2000, false)
	db.MaxConcurrent = 1
	db.NoPrune = true
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: time.Millisecond})
	_, addr := startServer(t, db, Config{Shed: true, ShedQueueDepth: 1})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Connect(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Query(context.Background(), "SELECT COUNT(*) AS n FROM t WHERE c >= 0")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	var ok, shed int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case client.Kind(err) == exec.KindBusy:
			shed++
			var we *wire.Error
			if !errors.As(err, &we) || we.Op != "server.admission" {
				t.Fatalf("shed error should carry the admission op: %v", err)
			}
		default:
			t.Fatalf("unexpected error under overload: %v", err)
		}
	}
	// Gate 1 + queue depth 1: at least some of the 8 must shed, and the
	// admitted ones must all succeed.
	if shed == 0 {
		t.Fatal("no statement was shed under 8x overload")
	}
	if ok == 0 {
		t.Fatal("every statement shed; admitted work should still finish")
	}
	if got := metricValue(t, db, "softdb_server_shed_total"); got != float64(shed) {
		t.Fatalf("shed counter %v != observed %d", got, shed)
	}
}

// TestServerDrain: Shutdown stops accepting, cancels in-flight statements
// (the client sees a typed canceled error, flushed before close), and
// returns once handlers exit.
func TestServerDrain(t *testing.T) {
	db := corrDB(t, 2000, false)
	db.NoPrune = true
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: 2 * time.Millisecond})
	s, addr := startServer(t, db, Config{})

	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	idle, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	queryErr := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), "SELECT COUNT(*) AS n FROM t WHERE c >= 0")
		queryErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the statement reach the scan

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain exceeded its deadline: %v", err)
	}
	select {
	case err := <-queryErr:
		if client.Kind(err) != exec.KindCanceled {
			t.Fatalf("drained statement should be typed canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never returned after drain")
	}
	if _, err := client.Connect(addr); err == nil {
		t.Fatal("drained server should refuse new connections")
	}
}

// TestServerIdleTimeout: a connection that sends nothing is closed once
// the idle timeout lapses.
func TestServerIdleTimeout(t *testing.T) {
	db := engine.Open()
	_, addr := startServer(t, db, Config{IdleTimeout: 50 * time.Millisecond})
	c, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, 2*time.Second, func() bool {
		return metricValue(t, db, "softdb_server_connections") == 0
	})
}

// TestServerFaultKindsMatchLocal is the fault-injection-through-the-wire
// check: for each injected failure mode, a remote client receives exactly
// the typed kind a local ExecCtx caller gets.
func TestServerFaultKindsMatchLocal(t *testing.T) {
	cases := []struct {
		name  string
		fc    fault.Config
		ctxTO time.Duration
	}{
		{name: "read-error", fc: fault.Config{ReadErrProb: 1}},
		{name: "page-panic", fc: fault.Config{PanicProb: 1}},
		{name: "slow-timeout", fc: fault.Config{SlowProb: 1, SlowDelay: 2 * time.Millisecond}, ctxTO: 15 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := corrDB(t, 2000, false)
			db.NoPrune = true
			db.Fault = fault.New(tc.fc)
			const q = "SELECT COUNT(*) AS n FROM t WHERE c >= 0"

			lctx := context.Background()
			if tc.ctxTO > 0 {
				var cancel context.CancelFunc
				lctx, cancel = context.WithTimeout(lctx, tc.ctxTO)
				defer cancel()
			}
			_, localErr := db.ExecCtx(lctx, q)
			lqe, ok := exec.AsQueryError(localErr)
			if !ok {
				t.Fatalf("local fault should be a QueryError, got %v", localErr)
			}

			_, addr := startServer(t, db, Config{})
			c, err := client.Connect(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rctx := context.Background()
			if tc.ctxTO > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(rctx, tc.ctxTO)
				defer cancel()
			}
			_, remoteErr := c.Query(rctx, q)
			if remoteErr == nil {
				t.Fatal("fault should surface remotely")
			}
			if client.Kind(remoteErr) != lqe.Kind {
				t.Fatalf("remote kind %s != local kind %s (remote err: %v)",
					client.Kind(remoteErr), lqe.Kind, remoteErr)
			}
			var we *wire.Error
			if errors.As(remoteErr, &we) && lqe.Op != "" && we.Op != lqe.Op {
				t.Errorf("remote op %q != local op %q", we.Op, lqe.Op)
			}
		})
	}
}

// TestServerCrossSessionInvalidation: one session's violating write
// deactivates an ASC (the notice travels to that client), and another
// session's EXPLAIN over the wire stops showing the prune-introduction —
// the cross-session cache-invalidation story end to end.
func TestServerCrossSessionInvalidation(t *testing.T) {
	db := corrDB(t, 4000, true)
	_, addr := startServer(t, db, Config{})
	reader, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := client.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	ctx := context.Background()
	const q = "EXPLAIN SELECT a FROM t WHERE b >= 200 AND b <= 240"
	planLines := func(res *client.Result) string {
		var b strings.Builder
		for _, r := range res.Rows {
			b.WriteString(r[0].Str())
			b.WriteByte('\n')
		}
		return b.String()
	}
	before, err := reader.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planLines(before), "prune-introduction applied") {
		t.Fatalf("mined correlation should drive prune-introduction:\n%s", planLines(before))
	}

	res, err := writer.Query(ctx, "INSERT INTO t VALUES (100, 999999, 0)")
	if err != nil {
		t.Fatal(err)
	}
	var deactivated bool
	for _, n := range res.Notices {
		if strings.Contains(n, "deactivated by violating write") {
			deactivated = true
		}
	}
	if !deactivated {
		t.Fatalf("violating write should notify the writing client; notices: %v", res.Notices)
	}

	after, err := reader.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(planLines(after), "prune-introduction applied") {
		t.Fatalf("other sessions must see the deactivation:\n%s", planLines(after))
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// metricValue reads one un-labeled series from the db registry's
// Prometheus exposition.
func metricValue(t *testing.T, db *engine.Database, name string) float64 {
	t.Helper()
	var b strings.Builder
	if err := db.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	return -1
}
