// Package wire defines softdb's client/server wire protocol: a
// length-prefixed binary framing shared by internal/server and
// internal/client.
//
// Every frame is a 5-byte header — one type byte plus a big-endian uint32
// payload length — followed by the payload. Payloads are built from three
// primitives: unsigned varints, zigzag varints, and uvarint-length-prefixed
// byte strings. Row data uses a compact datum codec (kind byte + value)
// covering every types.Kind.
//
// A request is one FrameQuery (SQL text, flags, an optional server-side
// timeout) or FrameSet (session-setting name/value). The response to a
// query is a sequence of frames terminated by FrameDone or FrameError:
//
//	FrameRowDesc?  FrameRowBatch*  FrameNotice*  (FrameDone | FrameError)
//
// FrameError carries the structured kind+op of an exec.QueryError, so a
// remote caller can classify canceled/timeout/oom/busy outcomes exactly
// like a local engine caller instead of parsing message strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"softdb/internal/exec"
	"softdb/internal/types"
)

// ProtoVersion is bumped whenever the frame layout changes incompatibly.
// The server sends it in FrameWelcome; clients refuse a mismatch.
const ProtoVersion = 1

// MaxFrame bounds a single frame's payload (64 MiB) so a corrupt or
// hostile length prefix cannot force an arbitrary allocation.
const MaxFrame = 64 << 20

// RowBatchSize is how many rows the server packs per FrameRowBatch.
const RowBatchSize = 256

// FrameType tags a frame. Client→server types live below 0x10,
// server→client types at 0x10 and above.
type FrameType byte

const (
	// FrameQuery carries one statement to execute (client → server).
	FrameQuery FrameType = 0x01
	// FrameSet carries a session-setting assignment (client → server).
	FrameSet FrameType = 0x02

	// FrameWelcome opens every connection (server → client): protocol
	// version and the session's label.
	FrameWelcome FrameType = 0x10
	// FrameRowDesc announces a result's column names.
	FrameRowDesc FrameType = 0x11
	// FrameRowBatch carries up to RowBatchSize result rows.
	FrameRowBatch FrameType = 0x12
	// FrameNotice carries one engine notice line.
	FrameNotice FrameType = 0x13
	// FrameError terminates a request with a structured error.
	FrameError FrameType = 0x14
	// FrameDone terminates a successful request.
	FrameDone FrameType = 0x15
	// FrameOK acknowledges a FrameSet.
	FrameOK FrameType = 0x16
)

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame writes one frame. The caller owns buffering and flushing.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads beyond MaxFrame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame payload: %w", err)
	}
	return FrameType(hdr[0]), payload, nil
}

// --- payload primitives ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reader decodes a payload sequentially; the first malformed field latches
// an error and every later read returns zero values.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) string(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *reader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail(what)
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) uint64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// --- datum codec ---

func appendDatum(b []byte, d types.Datum) ([]byte, error) {
	b = append(b, byte(d.Kind()))
	switch d.Kind() {
	case types.KindNull:
	case types.KindInt:
		b = binary.AppendVarint(b, d.Int())
	case types.KindDate:
		b = binary.AppendVarint(b, d.Date())
	case types.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Float()))
	case types.KindBool:
		if d.Bool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case types.KindString:
		b = appendString(b, d.Str())
	default:
		return nil, fmt.Errorf("wire: cannot encode datum kind %s", d.Kind())
	}
	return b, nil
}

func (r *reader) datum() types.Datum {
	switch types.Kind(r.byte("datum kind")) {
	case types.KindNull:
		return types.Null
	case types.KindInt:
		return types.NewInt(r.varint("int datum"))
	case types.KindDate:
		return types.NewDate(r.varint("date datum"))
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(r.uint64("float datum")))
	case types.KindBool:
		return types.NewBool(r.byte("bool datum") != 0)
	case types.KindString:
		return types.NewString(r.string("string datum"))
	default:
		if r.err == nil {
			r.err = errors.New("wire: unknown datum kind")
		}
		return types.Null
	}
}

// --- typed payloads ---

// Query is the FrameQuery payload: one statement plus per-request options.
type Query struct {
	// SQL is the statement text; it doubles as the server's plan-cache key.
	SQL string
	// TimeoutMillis, when nonzero, asks the server to apply a deadline of
	// this many milliseconds to the statement.
	TimeoutMillis uint64
	// Flags is reserved for future request options; the server ignores
	// unknown bits.
	Flags uint64
}

// AppendQuery encodes q onto b.
func AppendQuery(b []byte, q Query) []byte {
	b = binary.AppendUvarint(b, q.Flags)
	b = binary.AppendUvarint(b, q.TimeoutMillis)
	return appendString(b, q.SQL)
}

// ParseQuery decodes a FrameQuery payload.
func ParseQuery(payload []byte) (Query, error) {
	r := &reader{buf: payload}
	q := Query{}
	q.Flags = r.uvarint("query flags")
	q.TimeoutMillis = r.uvarint("query timeout")
	q.SQL = r.string("query sql")
	return q, r.err
}

// Set is the FrameSet payload: a session-setting assignment.
type Set struct {
	Name  string
	Value string
}

// AppendSet encodes s onto b.
func AppendSet(b []byte, s Set) []byte {
	b = appendString(b, s.Name)
	return appendString(b, s.Value)
}

// ParseSet decodes a FrameSet payload.
func ParseSet(payload []byte) (Set, error) {
	r := &reader{buf: payload}
	s := Set{Name: r.string("set name")}
	s.Value = r.string("set value")
	return s, r.err
}

// Welcome is the FrameWelcome payload.
type Welcome struct {
	// Proto is the server's ProtoVersion.
	Proto uint64
	// Session is the server-assigned session label (e.g. "conn-3"); it
	// tags the session's traces and log lines on the server.
	Session string
}

// AppendWelcome encodes w onto b.
func AppendWelcome(b []byte, w Welcome) []byte {
	b = binary.AppendUvarint(b, w.Proto)
	return appendString(b, w.Session)
}

// ParseWelcome decodes a FrameWelcome payload.
func ParseWelcome(payload []byte) (Welcome, error) {
	r := &reader{buf: payload}
	w := Welcome{Proto: r.uvarint("welcome proto")}
	w.Session = r.string("welcome session")
	return w, r.err
}

// AppendColumns encodes a FrameRowDesc payload.
func AppendColumns(b []byte, cols []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		b = appendString(b, c)
	}
	return b
}

// ParseColumns decodes a FrameRowDesc payload.
func ParseColumns(payload []byte) ([]string, error) {
	r := &reader{buf: payload}
	n := r.uvarint("column count")
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(payload)) { // each column costs >= 1 byte
		return nil, errors.New("wire: column count exceeds payload")
	}
	cols := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		cols = append(cols, r.string("column name"))
	}
	return cols, r.err
}

// AppendRows encodes a FrameRowBatch payload.
func AppendRows(b []byte, rows []types.Row) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(rows)))
	var err error
	for _, row := range rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, d := range row {
			if b, err = appendDatum(b, d); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// ParseRows decodes a FrameRowBatch payload, appending onto dst.
func ParseRows(dst []types.Row, payload []byte) ([]types.Row, error) {
	r := &reader{buf: payload}
	n := r.uvarint("row count")
	if r.err != nil {
		return dst, r.err
	}
	if n > uint64(len(payload)) { // each row costs >= 1 byte
		return dst, errors.New("wire: row count exceeds payload")
	}
	for i := uint64(0); i < n; i++ {
		nc := r.uvarint("row width")
		if r.err != nil {
			return dst, r.err
		}
		if nc > uint64(len(payload)) {
			return dst, errors.New("wire: row width exceeds payload")
		}
		row := make(types.Row, 0, nc)
		for c := uint64(0); c < nc; c++ {
			row = append(row, r.datum())
		}
		if r.err != nil {
			return dst, r.err
		}
		dst = append(dst, row)
	}
	return dst, nil
}

// Done is the FrameDone payload: the successful tail of a request.
type Done struct {
	// RowsAffected mirrors engine.Result.RowsAffected for DML.
	RowsAffected int64
}

// AppendDone encodes d onto b.
func AppendDone(b []byte, d Done) []byte {
	return binary.AppendVarint(b, d.RowsAffected)
}

// ParseDone decodes a FrameDone payload.
func ParseDone(payload []byte) (Done, error) {
	r := &reader{buf: payload}
	d := Done{RowsAffected: r.varint("done rows-affected")}
	return d, r.err
}

// Error is the structured error a FrameError carries — and the error value
// the client library returns, so remote callers switch on Kind exactly
// like local callers switch on exec.QueryError.Kind.
type Error struct {
	// Kind is the terminal state (the exec.ErrKind values, including
	// "busy" for load-shed rejections).
	Kind exec.ErrKind
	// Op is the operator or server boundary the error is attributed to.
	Op string
	// Msg is the rendered underlying error.
	Msg string
}

// Error implements error in the same shape exec.QueryError renders.
func (e *Error) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("query %s in [%s]: %s", e.Kind, e.Op, e.Msg)
	}
	return fmt.Sprintf("query %s: %s", e.Kind, e.Msg)
}

// ErrorFrom flattens any server-side error into its wire form: a
// *exec.QueryError keeps its kind and op; everything else (parse errors,
// constraint violations, ...) travels as KindError.
func ErrorFrom(err error) *Error {
	if qe, ok := exec.AsQueryError(err); ok {
		return &Error{Kind: qe.Kind, Op: qe.Op, Msg: qe.Err.Error()}
	}
	return &Error{Kind: exec.KindError, Msg: err.Error()}
}

// AppendError encodes e onto b.
func AppendError(b []byte, e *Error) []byte {
	b = appendString(b, string(e.Kind))
	b = appendString(b, e.Op)
	return appendString(b, e.Msg)
}

// ParseError decodes a FrameError payload.
func ParseError(payload []byte) (*Error, error) {
	r := &reader{buf: payload}
	e := &Error{Kind: exec.ErrKind(r.string("error kind"))}
	e.Op = r.string("error op")
	e.Msg = r.string("error msg")
	return e, r.err
}
