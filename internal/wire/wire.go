// Package wire defines softdb's client/server wire protocol: a
// length-prefixed binary framing shared by internal/server and
// internal/client.
//
// Every frame is a 5-byte header — one type byte plus a big-endian uint32
// payload length — followed by the payload. Payloads are built from the
// primitives in internal/wire/codec: unsigned varints, zigzag varints, and
// uvarint-length-prefixed byte strings. Row data uses the codec's compact
// datum encoding (kind byte + value) covering every types.Kind; the same
// codec backs the write-ahead log and catalog snapshots so on-disk and
// on-the-wire row images are byte-identical.
//
// A request is one FrameQuery (SQL text, flags, an optional server-side
// timeout) or FrameSet (session-setting name/value). The response to a
// query is a sequence of frames terminated by FrameDone or FrameError:
//
//	FrameRowDesc?  FrameRowBatch*  FrameNotice*  (FrameDone | FrameError)
//
// FrameError carries the structured kind+op of an exec.QueryError, so a
// remote caller can classify canceled/timeout/oom/busy outcomes exactly
// like a local engine caller instead of parsing message strings.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"softdb/internal/exec"
	"softdb/internal/types"
	"softdb/internal/wire/codec"
)

// ProtoVersion is bumped whenever the frame layout changes incompatibly.
// The server sends it in FrameWelcome; clients refuse a mismatch.
const ProtoVersion = 1

// MaxFrame bounds a single frame's payload (64 MiB) so a corrupt or
// hostile length prefix cannot force an arbitrary allocation.
const MaxFrame = 64 << 20

// RowBatchSize is how many rows the server packs per FrameRowBatch.
const RowBatchSize = 256

// FrameType tags a frame. Client→server types live below 0x10,
// server→client types at 0x10 and above.
type FrameType byte

const (
	// FrameQuery carries one statement to execute (client → server).
	FrameQuery FrameType = 0x01
	// FrameSet carries a session-setting assignment (client → server).
	FrameSet FrameType = 0x02

	// FrameWelcome opens every connection (server → client): protocol
	// version and the session's label.
	FrameWelcome FrameType = 0x10
	// FrameRowDesc announces a result's column names.
	FrameRowDesc FrameType = 0x11
	// FrameRowBatch carries up to RowBatchSize result rows.
	FrameRowBatch FrameType = 0x12
	// FrameNotice carries one engine notice line.
	FrameNotice FrameType = 0x13
	// FrameError terminates a request with a structured error.
	FrameError FrameType = 0x14
	// FrameDone terminates a successful request.
	FrameDone FrameType = 0x15
	// FrameOK acknowledges a FrameSet.
	FrameOK FrameType = 0x16
)

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame writes one frame. The caller owns buffering and flushing.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads beyond MaxFrame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame payload: %w", err)
	}
	return FrameType(hdr[0]), payload, nil
}

// --- typed payloads ---

// Query is the FrameQuery payload: one statement plus per-request options.
type Query struct {
	// SQL is the statement text; it doubles as the server's plan-cache key.
	SQL string
	// TimeoutMillis, when nonzero, asks the server to apply a deadline of
	// this many milliseconds to the statement.
	TimeoutMillis uint64
	// Flags is reserved for future request options; the server ignores
	// unknown bits.
	Flags uint64
}

// AppendQuery encodes q onto b.
func AppendQuery(b []byte, q Query) []byte {
	b = codec.AppendUvarint(b, q.Flags)
	b = codec.AppendUvarint(b, q.TimeoutMillis)
	return codec.AppendString(b, q.SQL)
}

// ParseQuery decodes a FrameQuery payload.
func ParseQuery(payload []byte) (Query, error) {
	r := codec.NewDecoder(payload)
	q := Query{}
	q.Flags = r.Uvarint("query flags")
	q.TimeoutMillis = r.Uvarint("query timeout")
	q.SQL = r.String("query sql")
	return q, r.Err()
}

// Set is the FrameSet payload: a session-setting assignment.
type Set struct {
	Name  string
	Value string
}

// AppendSet encodes s onto b.
func AppendSet(b []byte, s Set) []byte {
	b = codec.AppendString(b, s.Name)
	return codec.AppendString(b, s.Value)
}

// ParseSet decodes a FrameSet payload.
func ParseSet(payload []byte) (Set, error) {
	r := codec.NewDecoder(payload)
	s := Set{Name: r.String("set name")}
	s.Value = r.String("set value")
	return s, r.Err()
}

// Welcome is the FrameWelcome payload.
type Welcome struct {
	// Proto is the server's ProtoVersion.
	Proto uint64
	// Session is the server-assigned session label (e.g. "conn-3"); it
	// tags the session's traces and log lines on the server.
	Session string
}

// AppendWelcome encodes w onto b.
func AppendWelcome(b []byte, w Welcome) []byte {
	b = codec.AppendUvarint(b, w.Proto)
	return codec.AppendString(b, w.Session)
}

// ParseWelcome decodes a FrameWelcome payload.
func ParseWelcome(payload []byte) (Welcome, error) {
	r := codec.NewDecoder(payload)
	w := Welcome{Proto: r.Uvarint("welcome proto")}
	w.Session = r.String("welcome session")
	return w, r.Err()
}

// AppendColumns encodes a FrameRowDesc payload.
func AppendColumns(b []byte, cols []string) []byte {
	b = codec.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		b = codec.AppendString(b, c)
	}
	return b
}

// ParseColumns decodes a FrameRowDesc payload.
func ParseColumns(payload []byte) ([]string, error) {
	r := codec.NewDecoder(payload)
	n := r.Uvarint("column count")
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) { // each column costs >= 1 byte
		return nil, errors.New("wire: column count exceeds payload")
	}
	cols := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		cols = append(cols, r.String("column name"))
	}
	return cols, r.Err()
}

// AppendRows encodes a FrameRowBatch payload.
func AppendRows(b []byte, rows []types.Row) ([]byte, error) {
	b = codec.AppendUvarint(b, uint64(len(rows)))
	var err error
	for _, row := range rows {
		if b, err = codec.AppendRow(b, row); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ParseRows decodes a FrameRowBatch payload, appending onto dst.
func ParseRows(dst []types.Row, payload []byte) ([]types.Row, error) {
	r := codec.NewDecoder(payload)
	n := r.Uvarint("row count")
	if err := r.Err(); err != nil {
		return dst, err
	}
	if n > uint64(len(payload)) { // each row costs >= 1 byte
		return dst, errors.New("wire: row count exceeds payload")
	}
	for i := uint64(0); i < n; i++ {
		row := r.Row("row")
		if err := r.Err(); err != nil {
			return dst, err
		}
		dst = append(dst, row)
	}
	return dst, nil
}

// Done is the FrameDone payload: the successful tail of a request.
type Done struct {
	// RowsAffected mirrors engine.Result.RowsAffected for DML.
	RowsAffected int64
}

// AppendDone encodes d onto b.
func AppendDone(b []byte, d Done) []byte {
	return codec.AppendVarint(b, d.RowsAffected)
}

// ParseDone decodes a FrameDone payload.
func ParseDone(payload []byte) (Done, error) {
	r := codec.NewDecoder(payload)
	d := Done{RowsAffected: r.Varint("done rows-affected")}
	return d, r.Err()
}

// Error is the structured error a FrameError carries — and the error value
// the client library returns, so remote callers switch on Kind exactly
// like local callers switch on exec.QueryError.Kind.
type Error struct {
	// Kind is the terminal state (the exec.ErrKind values, including
	// "busy" for load-shed rejections).
	Kind exec.ErrKind
	// Op is the operator or server boundary the error is attributed to.
	Op string
	// Msg is the rendered underlying error.
	Msg string
}

// Error implements error in the same shape exec.QueryError renders.
func (e *Error) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("query %s in [%s]: %s", e.Kind, e.Op, e.Msg)
	}
	return fmt.Sprintf("query %s: %s", e.Kind, e.Msg)
}

// ErrorFrom flattens any server-side error into its wire form: a
// *exec.QueryError keeps its kind and op, a *Error passes through
// unchanged (the shard router proxies shard errors to its own clients);
// everything else (parse errors, constraint violations, ...) travels as
// KindError.
func ErrorFrom(err error) *Error {
	var we *Error
	if errors.As(err, &we) {
		return we
	}
	if qe, ok := exec.AsQueryError(err); ok {
		return &Error{Kind: qe.Kind, Op: qe.Op, Msg: qe.Err.Error()}
	}
	return &Error{Kind: exec.KindError, Msg: err.Error()}
}

// WriteResponse streams one successful response sequence — RowDesc (when
// the result has columns), batched rows, notices, Done — onto w. It is the
// single encoder of the response grammar in the package comment, shared by
// the engine server and the shard router so the two fronts cannot drift.
// The caller owns buffering and flushing.
func WriteResponse(w io.Writer, cols []string, rows []types.Row, notices []string, rowsAffected int64) error {
	if len(cols) > 0 {
		if err := WriteFrame(w, FrameRowDesc, AppendColumns(nil, cols)); err != nil {
			return err
		}
		for off := 0; off < len(rows); off += RowBatchSize {
			end := min(off+RowBatchSize, len(rows))
			payload, err := AppendRows(nil, rows[off:end])
			if err != nil {
				// Encoding failure, not an I/O failure: the stream is still in
				// sync, so terminate the response with a structured error the
				// client can classify; the connection stays usable.
				return WriteFrame(w, FrameError, AppendError(nil, ErrorFrom(err)))
			}
			if err := WriteFrame(w, FrameRowBatch, payload); err != nil {
				return err
			}
		}
	}
	for _, n := range notices {
		if err := WriteFrame(w, FrameNotice, []byte(n)); err != nil {
			return err
		}
	}
	return WriteFrame(w, FrameDone, AppendDone(nil, Done{RowsAffected: rowsAffected}))
}

// AppendError encodes e onto b.
func AppendError(b []byte, e *Error) []byte {
	b = codec.AppendString(b, string(e.Kind))
	b = codec.AppendString(b, e.Op)
	return codec.AppendString(b, e.Msg)
}

// ParseError decodes a FrameError payload.
func ParseError(payload []byte) (*Error, error) {
	r := codec.NewDecoder(payload)
	e := &Error{Kind: exec.ErrKind(r.String("error kind"))}
	e.Op = r.String("error op")
	e.Msg = r.String("error msg")
	return e, r.Err()
}
