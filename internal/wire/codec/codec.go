// Package codec holds the wire protocol's payload primitives — unsigned
// varints, zigzag varints, uvarint-length-prefixed strings, and the compact
// datum codec covering every types.Kind — as a leaf package so subsystems
// below the protocol layer (the write-ahead log, catalog snapshots) can
// reuse the exact same encoding without importing the framing (which pulls
// in exec for structured errors).
//
// Encoding appends onto a caller-owned []byte; decoding goes through a
// Decoder that latches the first malformed field and returns zero values
// for every later read, so call sites check Err() once at the end.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"softdb/internal/types"
)

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zigzag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendString appends s with a uvarint length prefix.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends raw bytes with a uvarint length prefix.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat appends an IEEE-754 float64 big-endian.
func AppendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendDatum appends a datum as kind byte + value.
func AppendDatum(b []byte, d types.Datum) ([]byte, error) {
	b = append(b, byte(d.Kind()))
	switch d.Kind() {
	case types.KindNull:
	case types.KindInt:
		b = binary.AppendVarint(b, d.Int())
	case types.KindDate:
		b = binary.AppendVarint(b, d.Date())
	case types.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Float()))
	case types.KindBool:
		if d.Bool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case types.KindString:
		b = AppendString(b, d.Str())
	default:
		return nil, fmt.Errorf("wire: cannot encode datum kind %s", d.Kind())
	}
	return b, nil
}

// AppendRow appends a row as uvarint arity + datums.
func AppendRow(b []byte, row types.Row) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(row)))
	var err error
	for _, d := range row {
		if b, err = AppendDatum(b, d); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Decoder decodes a payload sequentially; the first malformed field latches
// an error and every later read returns zero values.
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder returns a decoder positioned at the start of buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the latched decode error, if any.
func (r *Decoder) Err() error { return r.err }

// Len reports how many undecoded bytes remain.
func (r *Decoder) Len() int { return len(r.buf) }

// Fail latches a decode error described by what.
func (r *Decoder) Fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

// Uvarint decodes an unsigned varint.
func (r *Decoder) Uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.Fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Varint decodes a zigzag varint.
func (r *Decoder) Varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.Fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// String decodes a length-prefixed string.
func (r *Decoder) String(what string) string {
	n := r.Uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.Fail(what)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// Bytes decodes a length-prefixed byte string (copied out of the buffer).
func (r *Decoder) Bytes(what string) []byte {
	n := r.Uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)) < n {
		r.Fail(what)
		return nil
	}
	p := make([]byte, n)
	copy(p, r.buf[:n])
	r.buf = r.buf[n:]
	return p
}

// Byte decodes one byte.
func (r *Decoder) Byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.Fail(what)
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

// Bool decodes a 0/1 byte. Any other value is an error, keeping the
// encoding canonical (decode∘encode is the identity on valid payloads).
func (r *Decoder) Bool(what string) bool {
	b := r.Byte(what)
	if b > 1 {
		r.Fail(what)
		return false
	}
	return b == 1
}

// Uint64 decodes a big-endian fixed-width uint64.
func (r *Decoder) Uint64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.Fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// Float decodes a big-endian IEEE-754 float64.
func (r *Decoder) Float(what string) float64 {
	return math.Float64frombits(r.Uint64(what))
}

// Datum decodes a kind byte + value datum.
func (r *Decoder) Datum() types.Datum {
	switch types.Kind(r.Byte("datum kind")) {
	case types.KindNull:
		return types.Null
	case types.KindInt:
		return types.NewInt(r.Varint("int datum"))
	case types.KindDate:
		return types.NewDate(r.Varint("date datum"))
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(r.Uint64("float datum")))
	case types.KindBool:
		return types.NewBool(r.Byte("bool datum") != 0)
	case types.KindString:
		return types.NewString(r.String("string datum"))
	default:
		if r.err == nil {
			r.err = errors.New("wire: unknown datum kind")
		}
		return types.Null
	}
}

// Row decodes a uvarint arity + datums row. The arity is sanity-bounded by
// the remaining payload so a corrupt prefix cannot force an allocation.
func (r *Decoder) Row(what string) types.Row {
	n := r.Uvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) { // each datum costs >= 1 byte
		r.Fail(what)
		return nil
	}
	row := make(types.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		row = append(row, r.Datum())
	}
	if r.err != nil {
		return nil
	}
	return row
}
