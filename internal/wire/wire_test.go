package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"softdb/internal/exec"
	"softdb/internal/types"
)

// TestFrameRoundTrip: every frame type survives write→read with its
// payload intact.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := map[FrameType][]byte{
		FrameQuery:   AppendQuery(nil, Query{SQL: "SELECT 1", TimeoutMillis: 250, Flags: 3}),
		FrameSet:     AppendSet(nil, Set{Name: "parallel", Value: "4"}),
		FrameWelcome: AppendWelcome(nil, Welcome{Proto: ProtoVersion, Session: "conn-7"}),
		FrameRowDesc: AppendColumns(nil, []string{"a", "b"}),
		FrameNotice:  []byte("heads up"),
		FrameDone:    AppendDone(nil, Done{RowsAffected: -1}),
		FrameOK:      nil,
		FrameError:   AppendError(nil, &Error{Kind: exec.KindTimeout, Op: "scan", Msg: "deadline"}),
	}
	var order []FrameType
	for ft, p := range payloads {
		order = append(order, ft)
		if err := WriteFrame(&buf, ft, p); err != nil {
			t.Fatalf("write %v: %v", ft, err)
		}
	}
	for _, want := range order {
		ft, p, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %v: %v", want, err)
		}
		if ft != want || !bytes.Equal(p, payloads[want]) {
			t.Fatalf("frame %v round-tripped as %v payload %x (want %x)", want, ft, p, payloads[want])
		}
	}
}

// TestQueryRoundTrip pins the request payload fields.
func TestQueryRoundTrip(t *testing.T) {
	q := Query{SQL: "SELECT * FROM t WHERE a >= 10", TimeoutMillis: 1500, Flags: 0}
	got, err := ParseQuery(AppendQuery(nil, q))
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("got %+v want %+v", got, q)
	}
}

// TestRowsRoundTrip covers every datum kind, including NULL and empty
// strings, across batch boundaries.
func TestRowsRoundTrip(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(-42), types.NewFloat(3.5), types.NewString("héllo"), types.NewBool(true), types.NewDate(10592), types.Null},
		{types.NewInt(1 << 60), types.NewFloat(-0.0), types.NewString(""), types.NewBool(false), types.NewDate(-1), types.Null},
	}
	payload, err := AppendRows(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRows(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows: %d want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d width: %d want %d", i, len(got[i]), len(rows[i]))
		}
		for c := range rows[i] {
			a, b := got[i][c], rows[i][c]
			if a.Kind() != b.Kind() {
				t.Fatalf("row %d col %d kind %s want %s", i, c, a.Kind(), b.Kind())
			}
			if !a.IsNull() && !a.Equal(b) {
				t.Fatalf("row %d col %d: %s want %s", i, c, a, b)
			}
		}
	}
}

// TestErrorFrom: typed engine errors keep their kind and op across the
// wire; untyped errors become KindError.
func TestErrorFrom(t *testing.T) {
	qe := &exec.QueryError{Op: "exec.Sort", Kind: exec.KindMemBudget, Err: errors.New("budget 42 bytes")}
	e := ErrorFrom(fmt.Errorf("wrapped: %w", qe))
	if e.Kind != exec.KindMemBudget || e.Op != "exec.Sort" {
		t.Fatalf("ErrorFrom lost structure: %+v", e)
	}
	decoded, err := ParseError(AppendError(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != exec.KindMemBudget || decoded.Op != "exec.Sort" || !strings.Contains(decoded.Msg, "budget") {
		t.Fatalf("decoded error lost structure: %+v", decoded)
	}
	if !strings.Contains(decoded.Error(), "oom") || !strings.Contains(decoded.Error(), "exec.Sort") {
		t.Fatalf("rendered error missing kind/op: %s", decoded.Error())
	}

	plain := ErrorFrom(errors.New("parse error at line 1"))
	if plain.Kind != exec.KindError || plain.Op != "" {
		t.Fatalf("plain error should map to KindError: %+v", plain)
	}
}

// TestFrameLimits: oversized length prefixes are rejected before
// allocation, and truncated payloads surface as errors, not hangs.
func TestFrameLimits(t *testing.T) {
	hdr := []byte{byte(FrameQuery), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameNotice, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil || errors.Is(err, io.EOF) && false {
		t.Fatalf("truncated payload should error, got %v", err)
	}
}

// TestMalformedPayloads: decoding garbage returns errors rather than
// panicking or fabricating values.
func TestMalformedPayloads(t *testing.T) {
	junk := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, err := ParseQuery(junk[:1]); err == nil {
		t.Error("short query payload should error")
	}
	if _, err := ParseColumns([]byte{0x09}); err == nil {
		t.Error("column count beyond payload should error")
	}
	if _, err := ParseRows(nil, []byte{0x03, 0x01, 0x63}); err == nil {
		t.Error("row with unknown datum kind should error")
	}
	if _, err := ParseWelcome(nil); err == nil {
		t.Error("empty welcome should error")
	}
}
