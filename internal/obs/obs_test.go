package obs

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	r.Describe("x", "counter", "help")
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var q *QueryLog
	q.Add(&Trace{})
	if q.Recent(5) != nil {
		t.Fatal("nil qlog recent")
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := &Counter{}
	c.Add(10)
	c.Add(-4)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	// 0.005 and 0.01 land in le=0.01 (upper bounds are inclusive),
	// 0.05 in le=0.1, 0.5 in le=1, 5 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if s := h.Sum(); s < 5.56 || s > 5.57 {
		t.Fatalf("sum = %g", s)
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Describe("softdb_queries_total", "counter", "Queries executed.")
	r.Counter("softdb_queries_total").Add(7)
	r.Counter("softdb_rewrite_fires_total", "kind", "elim").Add(2)
	r.Counter("softdb_rewrite_fires_total", "kind", "ssc-twin").Inc()
	r.Gauge("softdb_plan_cache_entries").Set(3)
	h := r.Histogram("softdb_query_duration_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP softdb_queries_total Queries executed.",
		"# TYPE softdb_queries_total counter",
		"softdb_queries_total 7",
		`softdb_rewrite_fires_total{kind="elim"} 2`,
		`softdb_rewrite_fires_total{kind="ssc-twin"} 1`,
		"softdb_plan_cache_entries 3",
		`softdb_query_duration_seconds_bucket{le="0.01"} 1`,
		`softdb_query_duration_seconds_bucket{le="0.1"} 2`,
		`softdb_query_duration_seconds_bucket{le="+Inf"} 3`,
		"softdb_query_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Same metric pointer on repeat lookup.
	if r.Counter("softdb_queries_total") != r.Counter("softdb_queries_total") {
		t.Fatal("counter lookup not stable")
	}
}

func TestDescribeBeforeUseStillListed(t *testing.T) {
	r := NewRegistry()
	r.Describe("softdb_ssc_refreshes_total", "counter", "SSC confidence refreshes.")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE softdb_ssc_refreshes_total counter") {
		t.Fatalf("described-but-unused family missing:\n%s", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Counter("labeled", "worker", fmt.Sprint(n%4)).Inc()
				r.Histogram("h", DefLatencyBuckets).Observe(0.001)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestQueryLogRing(t *testing.T) {
	q := NewQueryLog(3)
	for i := 0; i < 5; i++ {
		q.Add(&Trace{SQL: fmt.Sprintf("q%d", i)})
	}
	got := q.Recent(0)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first: q4, q3, q2.
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].SQL != want {
			t.Fatalf("recent[%d] = %q, want %q", i, got[i].SQL, want)
		}
	}
	if got := q.Recent(1); len(got) != 1 || got[0].SQL != "q4" {
		t.Fatalf("recent(1) = %v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Rule: "ssc-twin", Constraint: "corr_ship", Mode: "SOFT STATISTICAL",
		Confidence: 0.93, Applied: true, Detail: "twinned shipdate bound"}
	s := e.String()
	for _, want := range []string{"ssc-twin applied", "corr_ship", "SOFT STATISTICAL", "eff-conf=0.930", "twinned shipdate bound"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event %q missing %q", s, want)
		}
	}
	rej := Event{Rule: "exception-union", Constraint: "ck_old", Mode: "SOFT ABSOLUTE", Confidence: 1, Applied: false, Detail: "no index benefit"}
	if !strings.Contains(rej.String(), "exception-union rejected") {
		t.Fatalf("rejected event: %q", rej.String())
	}
}

func TestTraceRender(t *testing.T) {
	root := &SpanNode{Desc: "HashJoin", EstRows: 100, HasEst: true}
	root.Rows.Store(97)
	root.Nanos.Store(int64(2 * time.Millisecond))
	child := &SpanNode{Desc: "SeqScan t"}
	child.Rows.Store(1000)
	child.Pages.Store(12)
	root.Children = append(root.Children, child)
	tr := &Trace{
		SQL: "SELECT 1", Degree: 4, CacheHit: true, Root: root,
		Duration: 3 * time.Millisecond, ActualRows: 97, PagesRead: 12,
		Events: []Event{{Rule: "branch-elimination", Constraint: "ck", Mode: "SOFT ABSOLUTE", Confidence: 1, Applied: true}},
	}
	out := tr.Render()
	for _, want := range []string{
		"query: SELECT 1",
		"degree=4", "cache=hit",
		"HashJoin  (est rows=100.0)  (actual rows=97",
		"  SeqScan t  (actual rows=1000",
		"pages=12",
		"event: branch-elimination applied",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace render missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("softdb_queries_total").Add(2)
	q := NewQueryLog(4)
	q.Add(&Trace{SQL: "SELECT 42", Duration: time.Millisecond})

	h := Handler(r, q)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "softdb_queries_total 2") {
		t.Fatalf("/metrics: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?n=10", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "SELECT 42") {
		t.Fatalf("/debug/queries: %d %q", rec.Code, rec.Body.String())
	}
}
