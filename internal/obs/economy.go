package obs

import (
	"sort"
	"sync"
	"time"
)

// Metric family names for the constraint-economy ledger. Benefit counters
// credit a constraint with work the engine did not have to do because the
// constraint existed; cost counters charge it with the maintenance work it
// caused. All per-constraint series carry a constraint="name" label.
// Fractional quantities (optimizer cost units, q-error) are exported in
// milli-units so they stay integer counters.
const (
	MetricBenefitPagesSkipped = "softdb_constraint_benefit_pages_skipped_total"
	MetricBenefitShardsPruned = "softdb_constraint_benefit_shards_pruned_total"
	MetricBenefitRowsShort    = "softdb_constraint_benefit_rows_short_circuited_total"
	MetricBenefitRewriteRows  = "softdb_constraint_benefit_rewrite_rows_total"
	MetricBenefitCostDelta    = "softdb_constraint_benefit_cost_delta_milli_total"
	MetricBenefitQErrSum      = "softdb_constraint_benefit_qerror_sum_milli_total"
	MetricBenefitQErrNodes    = "softdb_constraint_benefit_qerror_nodes_total"
	MetricCostMaintenance     = "softdb_constraint_cost_maintenance_nanos_total"
	MetricCostRefresh         = "softdb_constraint_cost_refresh_nanos_total"
	MetricCostWALRecords      = "softdb_constraint_cost_wal_records_total"
	MetricCostExceptionBytes  = "softdb_constraint_cost_exception_bytes"
	MetricQErrBlindSum        = "softdb_qerror_blind_sum_milli_total"
	MetricQErrBlindNodes      = "softdb_qerror_blind_nodes_total"
)

// ledgerEntry holds one constraint's resolved metric pointers. Holding the
// pointers (rather than re-resolving by name) makes every credit a single
// atomic add, and makes the Prometheus series, the JSON endpoint, and SHOW
// CONSTRAINTS ECONOMY agree by construction — they all read the same
// counters.
type ledgerEntry struct {
	pagesSkipped  *Counter
	shardsPruned  *Counter
	rowsShort     *Counter
	rewriteRows   *Counter
	costDelta     *Counter // milli optimizer-cost units
	qerrSum      *Counter // milli q-error, summed over informed plan nodes
	qerrNodes    *Counter
	maintNanos   *Counter
	refreshNanos *Counter
	walRecords   *Counter
	excBytes     *Gauge
}

// Economy is the per-constraint benefit/cost ledger. All methods are
// nil-receiver safe and safe for concurrent use: the entry map is guarded
// by a mutex taken only on first sight of a constraint name; steady-state
// credits are lock-free atomic adds on resolved counters.
type Economy struct {
	reg *Registry

	mu      sync.RWMutex
	entries map[string]*ledgerEntry

	// Blind aggregate: q-error over plan nodes no constraint informed, the
	// baseline the per-constraint informed q-error is compared against.
	blindSum   *Counter
	blindNodes *Counter
}

// NewEconomy returns a ledger exporting into reg. A nil registry yields a
// ledger whose credits vanish (every resolved metric is nil).
func NewEconomy(reg *Registry) *Economy {
	reg.Describe(MetricBenefitPagesSkipped, "counter", "heap pages skipped by prune predicates attributed to this constraint")
	reg.Describe(MetricBenefitShardsPruned, "counter", "whole shards the router pruned from fan-out because this constraint proved them empty for the predicate")
	reg.Describe(MetricBenefitRowsShort, "counter", "rows whose per-row filter evaluation a page-level synopsis proof short-circuited, attributed to this constraint")
	reg.Describe(MetricBenefitRewriteRows, "counter", "rows eliminated at plan time by rewrites this constraint drove")
	reg.Describe(MetricBenefitCostDelta, "counter", "estimated plan-cost increase (milli cost units) had this constraint been masked")
	reg.Describe(MetricBenefitQErrSum, "counter", "summed q-error (milli) of plan nodes whose estimate this constraint informed")
	reg.Describe(MetricBenefitQErrNodes, "counter", "plan nodes whose estimate this constraint informed")
	reg.Describe(MetricCostMaintenance, "counter", "wall time (nanos) spent checking this constraint in DML write hooks")
	reg.Describe(MetricCostRefresh, "counter", "wall time (nanos) spent refreshing/revalidating this constraint, retries included")
	reg.Describe(MetricCostWALRecords, "counter", "WAL registry-maintenance records attributed to this constraint")
	reg.Describe(MetricCostExceptionBytes, "gauge", "bytes held by this constraint's exception AST")
	reg.Describe(MetricQErrBlindSum, "counter", "summed q-error (milli) of plan nodes no constraint informed")
	reg.Describe(MetricQErrBlindNodes, "counter", "plan nodes no constraint informed")
	return &Economy{
		reg:        reg,
		entries:    map[string]*ledgerEntry{},
		blindSum:   reg.Counter(MetricQErrBlindSum),
		blindNodes: reg.Counter(MetricQErrBlindNodes),
	}
}

// entry resolves (creating on first use) the named constraint's ledger.
func (e *Economy) entry(name string) *ledgerEntry {
	e.mu.RLock()
	le, ok := e.entries[name]
	e.mu.RUnlock()
	if ok {
		return le
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if le, ok = e.entries[name]; ok {
		return le
	}
	le = &ledgerEntry{
		pagesSkipped:  e.reg.Counter(MetricBenefitPagesSkipped, "constraint", name),
		shardsPruned:  e.reg.Counter(MetricBenefitShardsPruned, "constraint", name),
		rowsShort:     e.reg.Counter(MetricBenefitRowsShort, "constraint", name),
		rewriteRows:   e.reg.Counter(MetricBenefitRewriteRows, "constraint", name),
		costDelta:     e.reg.Counter(MetricBenefitCostDelta, "constraint", name),
		qerrSum:      e.reg.Counter(MetricBenefitQErrSum, "constraint", name),
		qerrNodes:    e.reg.Counter(MetricBenefitQErrNodes, "constraint", name),
		maintNanos:   e.reg.Counter(MetricCostMaintenance, "constraint", name),
		refreshNanos: e.reg.Counter(MetricCostRefresh, "constraint", name),
		walRecords:   e.reg.Counter(MetricCostWALRecords, "constraint", name),
		excBytes:     e.reg.Gauge(MetricCostExceptionBytes, "constraint", name),
	}
	e.entries[name] = le
	return le
}

// CreditPagesSkipped credits n heap pages a prune predicate sourced from
// the named constraint proved skippable.
func (e *Economy) CreditPagesSkipped(name string, n int64) {
	if e == nil || name == "" || n <= 0 {
		return
	}
	e.entry(name).pagesSkipped.Add(n)
}

// CreditShardsPruned credits n whole shards the router excluded from a
// query's fan-out because the named constraint (a shard-local value range
// or proven hole in the router's registry) proved the predicate cannot
// match there — the shard-granularity analog of CreditPagesSkipped.
func (e *Economy) CreditShardsPruned(name string, n int64) {
	if e == nil || name == "" || n <= 0 {
		return
	}
	e.entry(name).shardsPruned.Add(n)
}

// CreditRowsShortCircuited credits n rows whose per-row predicate
// evaluation the vectorized scan skipped because the page synopsis proved
// every row qualifies under the named constraint's prune predicate.
func (e *Economy) CreditRowsShortCircuited(name string, n int64) {
	if e == nil || name == "" || n <= 0 {
		return
	}
	e.entry(name).rowsShort.Add(n)
}

// CreditRewriteRows credits rows a rewrite driven by the named constraint
// eliminated, as estimated at plan time.
func (e *Economy) CreditRewriteRows(name string, rows float64) {
	if e == nil || name == "" || rows <= 0 {
		return
	}
	e.entry(name).rewriteRows.Add(int64(rows + 0.5))
}

// CreditCostDelta credits the estimated-cost increase the optimizer would
// have paid had the named constraint been masked during planning.
func (e *Economy) CreditCostDelta(name string, delta float64) {
	if e == nil || name == "" || delta <= 0 {
		return
	}
	e.entry(name).costDelta.Add(int64(delta*1000 + 0.5))
}

// ObserveQError records one plan node's q-error (max(est,actual)/min,
// both floored at one). An empty name records into the blind aggregate —
// nodes no constraint informed — which Snapshot exposes as the baseline.
func (e *Economy) ObserveQError(name string, q float64) {
	if e == nil || q < 1 {
		return
	}
	milli := int64(q*1000 + 0.5)
	if name == "" {
		e.blindSum.Add(milli)
		e.blindNodes.Inc()
		return
	}
	le := e.entry(name)
	le.qerrSum.Add(milli)
	le.qerrNodes.Inc()
}

// AddMaintenance charges DML write-hook wall time to the named constraint.
// The counter accumulates nanoseconds: write-hook segments are often
// sub-microsecond, and a coarser unit would truncate most of them to zero.
func (e *Economy) AddMaintenance(name string, d time.Duration) {
	if e == nil || name == "" || d <= 0 {
		return
	}
	e.entry(name).maintNanos.Add(d.Nanoseconds())
}

// AddRefresh charges revalidation/refresh wall time (retry backoff
// included) to the named constraint.
func (e *Economy) AddRefresh(name string, d time.Duration) {
	if e == nil || name == "" || d <= 0 {
		return
	}
	e.entry(name).refreshNanos.Add(d.Nanoseconds())
}

// AddWALRecords charges registry-maintenance WAL records to the named
// constraint.
func (e *Economy) AddWALRecords(name string, n int64) {
	if e == nil || name == "" || n <= 0 {
		return
	}
	e.entry(name).walRecords.Add(n)
}

// SetExceptionBytes records the current size of the named constraint's
// exception AST.
func (e *Economy) SetExceptionBytes(name string, bytes int64) {
	if e == nil || name == "" {
		return
	}
	e.entry(name).excBytes.Set(bytes)
}

// EconomyRow is one constraint's ledger snapshot. The engine decorates it
// with catalog facts (kind, mode, active) and computes the net-benefit
// ranking; the raw counters here are exactly the Prometheus series.
type EconomyRow struct {
	Name           string  `json:"name"`
	Kind           string  `json:"kind,omitempty"`
	Mode           string  `json:"mode,omitempty"`
	Active         bool    `json:"active"`
	PagesSkipped   int64   `json:"pages_skipped"`
	ShardsPruned   int64   `json:"shards_pruned"`
	RowsShort      int64   `json:"rows_short_circuited"`
	RewriteRows    int64   `json:"rewrite_rows"`
	CostDeltaMilli int64   `json:"cost_delta_milli"`
	QErrSumMilli   int64   `json:"qerror_sum_milli"`
	QErrNodes      int64   `json:"qerror_nodes"`
	QErrDelta      float64 `json:"qerror_delta"`
	MaintNanos     int64   `json:"maintenance_nanos"`
	RefreshNanos   int64   `json:"refresh_nanos"`
	WALRecords     int64   `json:"wal_records"`
	ExceptionBytes int64   `json:"exception_bytes"`
	NetBenefitUs   float64 `json:"net_benefit_us"`
}

// MeanQError returns the row's mean informed q-error (0 when no nodes).
func (r *EconomyRow) MeanQError() float64 {
	if r.QErrNodes == 0 {
		return 0
	}
	return float64(r.QErrSumMilli) / 1000 / float64(r.QErrNodes)
}

// Snapshot returns every constraint's ledger, sorted by name. Rows carry
// only what the ledger itself knows; catalog decoration and ranking happen
// in the engine.
func (e *Economy) Snapshot() []EconomyRow {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]EconomyRow, 0, len(e.entries))
	for name, le := range e.entries {
		out = append(out, EconomyRow{
			Name:           name,
			PagesSkipped:   le.pagesSkipped.Value(),
			ShardsPruned:   le.shardsPruned.Value(),
			RowsShort:      le.rowsShort.Value(),
			RewriteRows:    le.rewriteRows.Value(),
			CostDeltaMilli: le.costDelta.Value(),
			QErrSumMilli:   le.qerrSum.Value(),
			QErrNodes:      le.qerrNodes.Value(),
			MaintNanos:     le.maintNanos.Value(),
			RefreshNanos:   le.refreshNanos.Value(),
			WALRecords:     le.walRecords.Value(),
			ExceptionBytes: le.excBytes.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BlindQError returns the blind aggregate: summed milli q-error and node
// count over plan nodes no constraint informed.
func (e *Economy) BlindQError() (sumMilli, nodes int64) {
	if e == nil {
		return 0, 0
	}
	return e.blindSum.Value(), e.blindNodes.Value()
}
