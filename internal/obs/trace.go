package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// SpanNode is one operator's slot in a query's execution trace. The
// executor's instrumentation wrapper accumulates into the atomic fields —
// possibly from several partition workers concurrently — and the tree is
// read after the query quiesces. All accumulated figures are inclusive of
// the node's children (the natural reading for a push-based executor where
// an operator's Run drives its whole subtree).
type SpanNode struct {
	// Desc is the operator's Describe() line.
	Desc string
	// EstRows is the optimizer's cardinality estimate for this node;
	// HasEst reports whether one was recorded.
	EstRows float64
	HasEst  bool

	// Rows counts rows this operator emitted. Pages/RowsRead are the I/O
	// charged while the node (and its subtree) ran. Nanos is busy time,
	// cumulative across calls and partition workers, so for parallel
	// operators it can exceed wall clock. Calls counts Run/RunPartition
	// invocations (nested-loop join re-runs its inner side per outer row).
	Rows  atomic.Int64
	Pages atomic.Int64
	// PagesSkipped counts heap pages the subtree's scans pruned via
	// synopses instead of reading.
	PagesSkipped atomic.Int64
	RowsRead     atomic.Int64
	Nanos        atomic.Int64
	Calls        atomic.Int64

	// Batched reports that this node executed on the columnar batch path
	// (RunBatch) rather than row-at-a-time; -no-batch plans leave it false.
	Batched atomic.Bool

	// Informed names the constraints whose information sharpened this
	// node's cardinality estimate (SSC twins, AST coverage, ...). The
	// economy ledger splits per-node q-error by whether this is empty.
	Informed []string

	Children []*SpanNode
}

// ActualLine renders the node's measured figures. Scans that pruned pages
// additionally report the skip count and the prune ratio (fraction of the
// pages they would otherwise have read).
func (n *SpanNode) ActualLine() string {
	d := time.Duration(n.Nanos.Load())
	s := fmt.Sprintf("(actual rows=%d time=%s pages=%d", n.Rows.Load(), formatDur(d), n.Pages.Load())
	if sk := n.PagesSkipped.Load(); sk > 0 {
		s += fmt.Sprintf(" skipped=%d prune=%.0f%%", sk, 100*float64(sk)/float64(sk+n.Pages.Load()))
	}
	if calls := n.Calls.Load(); calls > 1 {
		s += fmt.Sprintf(" calls=%d", calls)
	}
	if n.Batched.Load() {
		s += " batched=true"
	}
	return s + ")"
}

// Render writes the span tree as indented plan lines with estimated vs
// actual figures.
func (n *SpanNode) Render() []string {
	var out []string
	var walk func(*SpanNode, int)
	walk = func(s *SpanNode, depth int) {
		line := strings.Repeat("  ", depth) + s.Desc
		if s.HasEst {
			line += fmt.Sprintf("  (est rows=%.1f)", s.EstRows)
		}
		line += "  " + s.ActualLine()
		out = append(out, line)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return out
}

func formatDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Event records one optimizer or rewriter decision involving a
// soft-constraint-like characterization: which rule consulted which
// constraint, at what effective confidence, and whether the rule applied
// or why it was rejected.
type Event struct {
	// Rule names the consulting rule (predicate-introduction, ssc-twin,
	// exception-union, branch-elimination, hole-trim, join-elimination,
	// ast-routing, sort-simplify, group-simplify, ssc-estimation,
	// ast-estimation, ...).
	Rule string
	// Constraint is the consulted characterization's catalog name (empty
	// when the rule is not tied to a named object).
	Constraint string
	// Mode is the characterization's enforcement mode string.
	Mode string
	// Confidence is the effective confidence at consultation time — stated
	// confidence minus the §3.3 margin of error; 1 for absolute rules.
	Confidence float64
	// Applied reports whether the rule fired; when false Detail carries
	// the rejection reason.
	Applied bool
	// Reason is a short machine-readable slug for rejections (e.g.
	// "probation", "below-floor", "no-index"); it labels the per-reason
	// rejection counters and stays low-cardinality.
	Reason string
	// Detail is a human-readable elaboration.
	Detail string
	// RowsSaved estimates, at plan time, how many rows the rewrite
	// eliminated from the query's work (rows of a dropped join side, of an
	// eliminated union branch, of the scan narrowed to an AST). Zero when
	// the rule doesn't remove rows or the saving isn't cheaply known; the
	// economy ledger credits it to Constraint.
	RowsSaved float64
}

// String renders the event for traces and EXPLAIN output.
func (e Event) String() string {
	status := "applied"
	if !e.Applied {
		status = "rejected"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", e.Rule, status)
	if e.Reason != "" {
		fmt.Fprintf(&b, " (%s)", e.Reason)
	}
	if e.Constraint != "" {
		fmt.Fprintf(&b, ": constraint %s", e.Constraint)
		if e.Mode != "" {
			fmt.Fprintf(&b, " [%s]", e.Mode)
		}
		fmt.Fprintf(&b, " eff-conf=%.3f", e.Confidence)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " — %s", e.Detail)
	}
	return b.String()
}

// Trace is the complete observability record of one query execution.
type Trace struct {
	SQL      string
	Start    time.Time
	Duration time.Duration
	// Degree is the plan's chosen maximum degree of parallelism (1 =
	// serial).
	Degree int
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// Session tags the executing session (e.g. the server's "conn-3");
	// empty for direct in-process calls.
	Session string
	// Slow marks the query as exceeding the engine's slow-query threshold.
	Slow bool
	// Root is the instrumented span tree; nil when per-operator tracing
	// was off for this query.
	Root *SpanNode
	// Events are the plan-time soft-constraint consultations.
	Events []Event
	// Estimates and outcome.
	EstRows    float64
	EstCost    float64
	ActualRows int64
	PagesRead  int64
	// PagesSkipped counts heap pages pruned via synopses query-wide.
	PagesSkipped int64
	// RowsShortCircuited counts rows whose per-row filter evaluation the
	// vectorized scan skipped because a page synopsis proved every row on
	// the page qualifies.
	RowsShortCircuited int64
	Err                string
	// State is the query's terminal lifecycle state: "ok", "canceled",
	// "timeout", "oom", "panic", or "error".
	State string
}

// Render formats the full trace as plan-style text lines.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", t.SQL)
	fmt.Fprintf(&b, "elapsed=%s rows=%d pages=%d skipped=%d degree=%d cache=%s%s%s\n",
		formatDur(t.Duration), t.ActualRows, t.PagesRead, t.PagesSkipped, t.Degree, cacheWord(t.CacheHit), stateWord(t.State), sessionWord(t.Session))
	if t.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", t.Err)
	}
	if t.Root != nil {
		for _, line := range t.Root.Render() {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for _, e := range t.Events {
		fmt.Fprintf(&b, "event: %s\n", e)
	}
	return b.String()
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func stateWord(state string) string {
	if state == "" {
		return ""
	}
	return " state=" + state
}

func sessionWord(sess string) string {
	if sess == "" {
		return ""
	}
	return " session=" + sess
}
