// Package obs is softdb's observability layer: a process-wide lock-free
// metrics registry with Prometheus text exposition, a per-query trace model
// (span tree plus optimizer decision events), a recent-queries ring buffer,
// and the debug HTTP surface that serves them. The package is a leaf — it
// imports nothing from the rest of softdb — so every layer (engine,
// optimizer, rewriter, executor, soft-constraint manager) can emit into it
// without dependency cycles.
//
// Every metric type is nil-receiver safe: a nil *Counter, *Gauge,
// *Histogram or *Registry turns the operation into a no-op, so callers can
// disable metrics wholesale by wiring a nil registry instead of branching
// at every update site.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are single atomic
// adds — safe from any goroutine, no locks.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/size histogram. Observe is lock-free:
// one binary search plus three atomic adds. The sum is kept in micro-units
// (value × 1e6) so it stays an atomic integer.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets   []atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64
}

// DefLatencyBuckets are the default duration buckets, in seconds.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(v * 1e6))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicros.Load()) / 1e6
}

// family groups the series of one metric name for exposition.
type family struct {
	name, typ, help string
	counters        map[string]*Counter // series key (name with labels) → metric
	gauges          map[string]*Gauge
	hists           map[string]*Histogram
}

// Registry holds named metrics. Registration (first lookup of a new series)
// takes a write lock; steady-state lookups take a read lock, and the
// returned metric pointers update lock-free — hot paths should resolve
// their metrics once and hold the pointers.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string // family registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// seriesName renders name plus label pairs as a Prometheus series id.
func seriesName(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) fam(name, typ string) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{
			name: name, typ: typ,
			counters: map[string]*Counter{},
			gauges:   map[string]*Gauge{},
			hists:    map[string]*Histogram{},
		}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// Describe pre-registers a metric family with its type and help text, so
// exposition lists it (and scrapers can discover it) before any series has
// been touched.
func (r *Registry) Describe(name, typ, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, typ)
	f.help = help
}

// Counter returns (creating on first use) the counter series for name with
// optional label key/value pairs: Counter("fires_total", "kind", "elim").
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := seriesName(name, labels)
	r.mu.RLock()
	if f, ok := r.fams[name]; ok {
		if c, ok := f.counters[key]; ok {
			r.mu.RUnlock()
			return c
		}
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, "counter")
	c, ok := f.counters[key]
	if !ok {
		c = &Counter{}
		f.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge series for name.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, "gauge")
	g, ok := f.gauges[key]
	if !ok {
		g = &Gauge{}
		f.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram series for name.
// bounds are only applied on creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, "histogram")
	h, ok := f.hists[name]
	if !ok {
		h = newHistogram(bounds)
		f.hists[name] = h
	}
	return h
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration order;
// series within a family are sorted, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, key := range sortedKeys(f.counters) {
			if _, err := fmt.Fprintf(w, "%s %d\n", key, f.counters[key].Value()); err != nil {
				return err
			}
		}
		for _, key := range sortedKeys(f.gauges) {
			if _, err := fmt.Fprintf(w, "%s %d\n", key, f.gauges[key].Value()); err != nil {
				return err
			}
		}
		for _, key := range sortedKeys(f.hists) {
			h := f.hists[key]
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", key, trimFloat(bound), cum); err != nil {
					return err
				}
			}
			cum += h.buckets[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", key, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", key, h.Sum(), key, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}
