package obs

import (
	"fmt"
	"net/http"
	"strconv"
)

// Handler serves the debug HTTP surface:
//
//	GET /metrics        — Prometheus text exposition of reg
//	GET /debug/queries  — recent query traces from qlog, newest first
//	                      (?n=K limits the count; default 20)
//
// Either argument may be nil, in which case its endpoint serves an empty
// body rather than failing.
func Handler(reg *Registry, qlog *QueryLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		traces := qlog.Recent(n)
		fmt.Fprintf(w, "recent queries: %d\n", len(traces))
		for i, t := range traces {
			fmt.Fprintf(w, "\n--- [%d] ---\n%s", i, t.Render())
		}
	})
	return mux
}
