package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// HandlerOptions extends the debug HTTP surface beyond metrics and the
// query log. Every field is optional; nil fields leave their endpoint off
// (or, for Pprof, serving 404s only under /debug/pprof/).
type HandlerOptions struct {
	// Economy, when set, serves the constraint-economy ledger as JSON at
	// /debug/constraints. The callback returns the decorated, net-benefit
	// ranked rows (the engine adds catalog facts the ledger doesn't know).
	Economy func() []EconomyRow
	// WAL, when set, serves durability status as JSON at /debug/wal. The
	// callback returns any JSON-marshalable snapshot; an in-memory engine
	// should return a value marshaling to {"durable": false}.
	WAL func() any
	// Pprof enables the stdlib net/http/pprof handlers under /debug/pprof/
	// for live profiling.
	Pprof bool
}

// Handler serves the basic debug HTTP surface:
//
//	GET /metrics        — Prometheus text exposition of reg
//	GET /debug/queries  — recent query traces from qlog, newest first
//	                      (?n=K limits the count; default 20)
//
// Either argument may be nil, in which case its endpoint serves an empty
// body rather than failing.
func Handler(reg *Registry, qlog *QueryLog) http.Handler {
	return HandlerWith(reg, qlog, HandlerOptions{})
}

// HandlerWith is Handler plus the optional endpoints in opts:
//
//	GET /debug/constraints — economy ledger JSON, net-benefit ranked
//	GET /debug/wal         — durability/WAL status JSON
//	GET /debug/pprof/      — stdlib profiling handlers (when opts.Pprof)
func HandlerWith(reg *Registry, qlog *QueryLog, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		traces := qlog.Recent(n)
		fmt.Fprintf(w, "recent queries: %d\n", len(traces))
		for i, t := range traces {
			fmt.Fprintf(w, "\n--- [%d] ---\n%s", i, t.Render())
		}
	})
	if opts.Economy != nil {
		mux.HandleFunc("/debug/constraints", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			rows := opts.Economy()
			if rows == nil {
				rows = []EconomyRow{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rows)
		})
	}
	if opts.WAL != nil {
		mux.HandleFunc("/debug/wal", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(opts.WAL())
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
