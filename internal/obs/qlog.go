package obs

import "sync"

// QueryLog is a fixed-capacity ring buffer of recent query traces, used to
// serve /debug/queries. Adds overwrite the oldest entry once full. A nil
// *QueryLog ignores adds and reports no entries, matching the rest of the
// package's disable-by-nil convention.
type QueryLog struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
}

// NewQueryLog returns a ring buffer holding up to capacity traces.
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &QueryLog{buf: make([]*Trace, capacity)}
}

// Add records a trace, evicting the oldest when full.
func (q *QueryLog) Add(t *Trace) {
	if q == nil || t == nil {
		return
	}
	q.mu.Lock()
	q.buf[q.next] = t
	q.next++
	if q.next == len(q.buf) {
		q.next = 0
		q.full = true
	}
	q.mu.Unlock()
}

// Recent returns up to n traces, newest first. n <= 0 means all.
func (q *QueryLog) Recent(n int) []*Trace {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	size := q.next
	if q.full {
		size = len(q.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		idx := (q.next - i + len(q.buf)) % len(q.buf)
		out = append(out, q.buf[idx])
	}
	return out
}
