package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"softdb/internal/engine"
	"softdb/internal/workload"
)

// ParallelDegree is the worker count P1's parallel configurations use; the
// scbench -parallel flag overrides it.
var ParallelDegree = 8

// P1Parallel measures intra-query parallelism on the star-schema workload:
// the same scan, aggregation, and join queries run serial (Parallel=1) and
// parallel (Parallel=ParallelDegree), checking that the simulated page
// counts and result cardinalities are identical — the parallel operators
// partition work, they do not change what is read — and reporting the
// wall-clock speedup, which tracks GOMAXPROCS on multicore hosts.
func P1Parallel(factRows int) (*Report, error) {
	rep := &Report{
		ID:     "P1",
		Title:  "intra-query parallelism: serial vs parallel",
		Claim:  "partitioned scans/joins/aggregation keep page and row accounting identical to serial plans while dividing wall-clock work across workers",
		Header: []string{"query", "mode", "ms", "pages", "out rows", "speedup"},
	}
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: factRows, Seed: 7}); err != nil {
		return nil, err
	}
	queries := []struct{ name, q string }{
		{"filter-scan", "SELECT id, qty FROM fact WHERE qty > 25 AND price < 500.0"},
		{"group-agg", "SELECT dim_id, COUNT(*) AS n, SUM(qty) AS total FROM fact GROUP BY dim_id"},
		{"hash-join", "SELECT COUNT(*) AS n FROM fact, dim WHERE fact.dim_id = dim.id AND dim.category = 3"},
	}
	for _, qc := range queries {
		serialMs, serialPages, serialRows, err := timeQuery(db, qc.q, 1)
		if err != nil {
			return nil, err
		}
		parMs, parPages, parRows, err := timeQuery(db, qc.q, ParallelDegree)
		if err != nil {
			return nil, err
		}
		if parPages != serialPages || parRows != serialRows {
			return nil, fmt.Errorf("P1 %s: parallel run diverged: pages %d vs %d, rows %d vs %d",
				qc.name, parPages, serialPages, parRows, serialRows)
		}
		rep.AddRow(qc.name, "serial", fmt.Sprintf("%.1f", serialMs), serialPages, serialRows, "1.00")
		rep.AddRow(qc.name, fmt.Sprintf("parallel=%d", ParallelDegree), fmt.Sprintf("%.1f", parMs), parPages, parRows,
			fmt.Sprintf("%.2f", serialMs/parMs))
	}
	rep.Notef("fact rows: %d; GOMAXPROCS: %d (speedup is bounded by available cores)", factRows, runtime.GOMAXPROCS(0))
	return rep, nil
}

// timeQuery runs q at the given degree of parallelism and returns the
// median wall-clock milliseconds over several repetitions plus the page
// and output-row counts of the last run.
func timeQuery(db *engine.Database, q string, parallel int) (ms float64, pages int64, rows int, err error) {
	const reps = 5
	db.Parallel = parallel
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, rerr := db.Exec(q)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
		pages, rows = res.Ctx.IO.PagesRead, len(res.Rows)
	}
	sort.Float64s(times)
	return times[reps/2], pages, rows, nil
}
