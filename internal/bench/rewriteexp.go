package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"softdb/internal/engine"
	"softdb/internal/mining"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

// runCounted executes a query and returns pages read and result count.
func runCounted(db *engine.Database, q string) (pages int64, rows int, err error) {
	res, err := db.Exec(q)
	if err != nil {
		return 0, 0, err
	}
	return res.Ctx.IO.PagesRead, len(res.Rows), nil
}

// timedResult carries the measured costs of one query execution.
type timedResult struct {
	pages  int64
	probes int64
	rows   int
	ms     float64
}

// timedExec runs the query three times and keeps the fastest wall time (the
// page/probe counters are deterministic).
func timedExec(db *engine.Database, q string) (timedResult, error) {
	var out timedResult
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := db.Exec(q)
		if err != nil {
			return out, err
		}
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		if elapsed < best {
			best = elapsed
		}
		out.pages = res.Ctx.IO.PagesRead
		out.probes = res.Ctx.HashProbes + res.Ctx.Comparisons
		out.rows = len(res.Rows)
	}
	out.ms = best
	return out, nil
}

// E1PredicateIntroduction reproduces [10]/§3.3: a mined linear correlation
// between ship_date and order_date, installed as an absolute soft
// constraint, lets the rewriter introduce an order_date range for a
// ship_date equality query and use the order_date index. The paper claims
// a marked improvement from the new access path; we report heap/index pages
// touched with and without the rewrite across table sizes.
func E1PredicateIntroduction(sizes []int) (*Report, error) {
	rep := &Report{
		ID:     "E1",
		Title:  "Predicate introduction via linear-correlation ASC",
		Claim:  "predicate introduction over a mined correlation enables an index access path; large page savings that grow with table size ([10], §2, §3.3)",
		Header: []string{"rows", "pages no-SQO", "pages SQO", "speedup", "answers equal"},
	}
	for _, n := range sizes {
		db := openSQO()
		db.DisablePlanCache = true
		if err := workload.LoadPurchase(db, workload.PurchaseConfig{
			N: n, Seed: 1, IndexOrderDate: true,
		}); err != nil {
			return nil, err
		}
		// Mine the correlation and install the top pick, as the SC process
		// prescribes (discover → select → install).
		mgr := softc.NewManager(db.Catalog())
		cands, err := mgr.DiscoverTable("purchase")
		if err != nil {
			return nil, err
		}
		picks := mgr.SelectCorrelations(cands.Correlations, 1)
		if len(picks) == 0 {
			return nil, fmt.Errorf("E1: no correlation discovered at n=%d", n)
		}
		if err := mgr.InstallCorrelations(picks); err != nil {
			return nil, err
		}
		q := "SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + " + fmt.Sprint(n/8)

		db.RewriteOpts.NoPredIntro = true
		basePages, baseRows, err := runCounted(db, q)
		if err != nil {
			return nil, err
		}
		db.RewriteOpts.NoPredIntro = false
		sqoPages, sqoRows, err := runCounted(db, q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(n, basePages, sqoPages, ratio(basePages, sqoPages), baseRows == sqoRows)
	}
	rep.Notef("speedup = pages(no-SQO)/pages(SQO); correlation mined from data, not declared")
	return rep, nil
}

// E4JoinElimination reproduces [6]: a fact⋈dim query touching only fact
// columns drops the dim join entirely when RI is declared (here as an
// informational constraint, so no checking cost was ever paid).
func E4JoinElimination(dimRows, factRows int) (*Report, error) {
	rep := &Report{
		ID:     "E4",
		Title:  "Join elimination over referential integrity",
		Claim:  "joins over foreign keys are removed when only child columns are used; marked improvement on TPC-D-style queries ([6], §2)",
		Header: []string{"query", "pages join/elim", "probes join/elim", "ms join/elim", "time speedup", "answers equal"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadStar(db, workload.StarConfig{
		DimRows: dimRows, FactRows: factRows, Seed: 2, FKMode: "informational",
	}); err != nil {
		return nil, err
	}
	queries := []struct{ name, q string }{
		{"sum(qty)", "SELECT SUM(f.qty) AS s FROM fact f, dim d WHERE f.dim_id = d.id"},
		{"filtered", "SELECT f.id, f.dim_id FROM fact f, dim d WHERE f.dim_id = d.id AND f.qty > 45"},
	}
	for _, qq := range queries {
		db.RewriteOpts.NoJoinElim = true
		base, err := timedExec(db, qq.q)
		if err != nil {
			return nil, err
		}
		db.RewriteOpts.NoJoinElim = false
		elim, err := timedExec(db, qq.q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(qq.name,
			fmt.Sprintf("%d / %d", base.pages, elim.pages),
			fmt.Sprintf("%d / %d", base.probes, elim.probes),
			fmt.Sprintf("%.1f / %.1f", base.ms, elim.ms),
			base.ms/elim.ms,
			base.rows == elim.rows)
	}
	rep.Notef("FK declared NOT ENFORCED (informational): optimizer trusts it without checking cost (§1)")
	return rep, nil
}

// E5BranchPrune reproduces §5's union-all example: a 12-branch monthly
// view, a January–March query, and check-constraint-driven branch
// elimination scanning only 3 branches.
func E5BranchPrune(rowsPerMonth int) (*Report, error) {
	rep := &Report{
		ID:     "E5",
		Title:  "Union-all branch elimination via check constraints",
		Claim:  "a Jan–Mar query against a 12-month union-all view needs only the first three branches (§5)",
		Header: []string{"months asked", "branches scanned (no prune)", "branches scanned (prune)", "pages no-prune", "pages prune", "speedup"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadPartitionedSales(db, rowsPerMonth, 3); err != nil {
		return nil, err
	}
	cases := []struct {
		label  string
		lo, hi int
	}{
		{"1..3", 1, 3},
		{"6..6", 6, 6},
		{"1..12", 1, 12},
	}
	for _, c := range cases {
		q := fmt.Sprintf("SELECT SUM(amount) AS s FROM sales WHERE month >= %d AND month <= %d", c.lo, c.hi)
		db.RewriteOpts.NoBranchPrune = true
		basePages, _, err := runCounted(db, q)
		if err != nil {
			return nil, err
		}
		baseScans := countPlanScans(db, q, true)
		db.RewriteOpts.NoBranchPrune = false
		prunePages, _, err := runCounted(db, q)
		if err != nil {
			return nil, err
		}
		pruneScans := countPlanScans(db, q, false)
		rep.AddRow(c.label, baseScans, pruneScans, basePages, prunePages, ratio(basePages, prunePages))
	}
	rep.Notef("each branch carries CHECK (month = m); pruning knocks off contradicted branches before costing")
	return rep, nil
}

func countPlanScans(db *engine.Database, q string, disablePrune bool) int {
	saved := db.RewriteOpts.NoBranchPrune
	db.RewriteOpts.NoBranchPrune = disablePrune
	defer func() { db.RewriteOpts.NoBranchPrune = saved }()
	res, err := db.Exec("EXPLAIN " + q)
	if err != nil {
		return -1
	}
	count := 0
	for _, r := range res.Rows {
		line := r[0].Str()
		if strings.Contains(line, "SeqScan") || strings.Contains(line, "IndexScan") {
			count++
		}
	}
	return count
}

// E6ExceptionAST reproduces §4.4's late_shipments example: 99% of
// purchases ship within three weeks; the SSC plus the exception AST give an
// exact union-all plan with an indexed main arm and a tiny exception arm.
func E6ExceptionAST(n int, lateFrac float64) (*Report, error) {
	rep := &Report{
		ID:     "E6",
		Title:  "Exception-AST union rewrite (late shipments)",
		Claim:  "σ(purchase) ≡ indexed-range arm ∪ exception-AST arm; both arms cheap, answers exact, UNION ALL safe because arms are disjoint (§4.4)",
		Header: []string{"config", "pages", "rows", "speedup vs scan"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: n, LateFrac: lateFrac, Seed: 4, ShipWindowMode: "ssc", IndexOrderDate: true,
	}); err != nil {
		return nil, err
	}
	db.MustExec(`CREATE SUMMARY TABLE late_shipments AS
		(SELECT * FROM purchase WHERE ship_date > order_date + 21)`)
	if err := db.LinkException("ship_window", "late_shipments"); err != nil {
		return nil, err
	}
	db.MustExec("ANALYZE purchase")
	q := fmt.Sprintf("SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + %d", n/8)

	db.RewriteOpts.NoExceptionAST = true
	db.RewriteOpts.NoSSCTwins = true
	scanPages, scanRows, err := runCounted(db, q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("full scan (no SQO)", scanPages, scanRows, 1.0)

	db.RewriteOpts.NoExceptionAST = true
	db.RewriteOpts.NoSSCTwins = false
	twinPages, twinRows, err := runCounted(db, q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("SSC twin only (estimation)", twinPages, twinRows, ratio(scanPages, twinPages))

	db.RewriteOpts.NoExceptionAST = false
	astPages, astRows, err := runCounted(db, q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("exception-AST union", astPages, astRows, ratio(scanPages, astPages))

	if scanRows != astRows || twinRows != scanRows {
		rep.Notef("WARNING: answer mismatch scan=%d twin=%d ast=%d", scanRows, twinRows, astRows)
	} else {
		rep.Notef("all three configurations return identical answers (%d rows)", scanRows)
	}
	rep.Notef("exception AST holds %.2f%% of rows", 100*lateFrac)
	return rep, nil
}

// E7FDSort reproduces §2 [29]: ORDER BY / GROUP BY lists containing
// FD-determined columns are simplified, cutting sort comparisons and
// grouping-key width. The FD is mined, not declared.
func E7FDSort(n, customers int) (*Report, error) {
	rep := &Report{
		ID:     "E7",
		Title:  "FD-based ORDER BY / GROUP BY simplification",
		Claim:  "FDs beyond keys (common in denormalized schemas) remove superfluous sort/group columns, saving sort cost ([29], §2)",
		Header: []string{"query", "comparisons no-FD", "comparisons FD", "saved %", "answers equal"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadDenormalized(db, n, customers, 7); err != nil {
		return nil, err
	}
	// Mine and install FDs (cust_id → cust_name, cust_id → region).
	mgr := softc.NewManager(db.Catalog())
	mgr.FDs = mining.FDMinerConfig{MaxLHS: 1}
	cands, err := mgr.DiscoverTable("orders_wide")
	if err != nil {
		return nil, err
	}
	var useful []mining.FD
	for _, fd := range cands.FDs {
		if fd.Det[0] == "cust_id" && fd.Confidence >= 1 {
			useful = append(useful, fd)
		}
	}
	if err := mgr.InstallFDs("orders_wide", useful); err != nil {
		return nil, err
	}
	queries := []struct{ name, q string }{
		{"order by", "SELECT cust_id, cust_name FROM orders_wide ORDER BY cust_id, cust_name, region"},
		{"group by", "SELECT cust_id, cust_name, SUM(amount) AS s FROM orders_wide GROUP BY cust_id, cust_name ORDER BY cust_id"},
	}
	for _, qq := range queries {
		db.RewriteOpts.NoSortOpt = true
		base, err := db.Exec(qq.q)
		if err != nil {
			return nil, err
		}
		db.RewriteOpts.NoSortOpt = false
		opt, err := db.Exec(qq.q)
		if err != nil {
			return nil, err
		}
		saved := 0.0
		if base.Ctx.Comparisons > 0 {
			saved = 100 * float64(base.Ctx.Comparisons-opt.Ctx.Comparisons) / float64(base.Ctx.Comparisons)
		}
		equal := len(base.Rows) == len(opt.Rows)
		if equal {
			for i := range base.Rows {
				if !base.Rows[i].Equal(opt.Rows[i]) {
					equal = false
					break
				}
			}
		}
		rep.AddRow(qq.name, base.Ctx.Comparisons, opt.Ctx.Comparisons, saved, equal)
	}
	rep.Notef("FDs mined from data (%d exact FDs on cust_id installed)", len(useful))
	return rep, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}
