package bench

import (
	"fmt"
	"time"

	"softdb/internal/engine"
	"softdb/internal/mining"
	"softdb/internal/obs"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

// o2Workload is one steady-state query path O2 times with the economy
// ledger on and off.
type o2Workload struct {
	name string
	db   *engine.Database
	q    string
}

// o2PredIntroDB builds the E1-style workload (purchase table, mined and
// installed ship/order-date correlation) on a default engine: page pruning
// and the plan cache stay on, because O2 measures the ledger's overhead on
// the production execution path, not an isolated rewrite effect.
func o2PredIntroDB(n int) (*engine.Database, error) {
	db := engine.Open()
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{
		N: n, Seed: 1, IndexOrderDate: true,
	}); err != nil {
		return nil, err
	}
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("purchase")
	if err != nil {
		return nil, err
	}
	picks := mgr.SelectCorrelations(cands.Correlations, 1)
	if len(picks) == 0 {
		return nil, fmt.Errorf("O2: no correlation discovered at n=%d", n)
	}
	if err := mgr.InstallCorrelations(picks); err != nil {
		return nil, err
	}
	return db, nil
}

// o2HolesDB builds the E2-style workload (orders⋈lineitem with a planted
// empty band, holes mined and registered) on a default engine.
func o2HolesDB(orders, linesPer int) (*engine.Database, error) {
	db := engine.Open()
	if err := workload.LoadOrdersLineitem(db, workload.HolesConfig{
		Orders: orders, LinesPer: linesPer, Seed: 5,
		BandLo: orders / 4, BandHi: orders / 2,
	}); err != nil {
		return nil, err
	}
	left, err := db.Catalog().Table("orders")
	if err != nil {
		return nil, err
	}
	right, err := db.Catalog().Table("lineitem")
	if err != nil {
		return nil, err
	}
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		return nil, err
	}
	jh.Name = "holes_orders_lineitem"
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		return nil, err
	}
	return db, nil
}

// o2HolesQuery returns a join whose date ranges straddle the planted
// band entirely, so range subtraction cannot trim the query's edges and
// the rewriter plants an interior exclusion prune predicate instead —
// the path that skips pages with per-constraint attribution.
func o2HolesQuery(n int) string {
	lo, hi := n/8, 3*n/4
	return fmt.Sprintf(`SELECT COUNT(*) AS n FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		lo, hi, lo, hi+10)
}

// o2Min returns the minimum of ns. The per-op minimum is the overhead
// estimator because timing noise on a shared host is one-sided — GC
// pauses, CPU-frequency drift, and noisy neighbors only ever add time,
// in multiples that dwarf the effect being measured — while real ledger
// work executed on every operation would raise the minimum too. Means
// and medians over the same samples swing tens of percent either way
// between runs; the minima are stable.
func o2Min(ns []float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	m := ns[0]
	for _, v := range ns[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// O2Economy measures the constraint-economy ledger itself, two ways.
//
// Overhead: three steady-state query paths that exercise the crediting
// hot spots (skip attribution, q-error fallback, rewrite credits) run with
// the ledger on and off in alternating rounds; the ledger must be close to
// free, since every credit is an atomic add on a resolved counter.
//
// Ranking: after a mixed workload — a consulted join-hole characterization
// earning page skips versus a soft check that is only ever written to,
// never consulted — the net-benefit ordering must put the earner above the
// pure cost center, with the signs to match. This is the ledger's reason
// to exist: telling an administrator which characterizations pay rent.
func O2Economy(n, iters int) (*Report, error) {
	rep := &Report{
		ID:     "O2",
		Title:  "Constraint-economy ledger: overhead and net-benefit ranking",
		Claim:  "per-constraint benefit/cost accounting is cheap enough to leave on (<5% steady-state overhead) and ranks characterizations by measured net benefit (DESIGN.md §15)",
		Header: []string{"phase", "config", "result", "detail"},
	}

	predDB, err := o2PredIntroDB(n)
	if err != nil {
		return nil, err
	}
	holesDB, err := o2HolesDB(n, 2)
	if err != nil {
		return nil, err
	}
	starDB := engine.Open()
	if err := workload.LoadStar(starDB, workload.StarConfig{
		DimRows: 1000, FactRows: n, Seed: 2, FKMode: "informational",
	}); err != nil {
		return nil, err
	}
	workloads := []o2Workload{
		{"E1 pred-intro", predDB,
			"SELECT id FROM purchase WHERE ship_date = DATE '1999-01-01' + " + fmt.Sprint(n/8)},
		{"E2 hole-prune", holesDB, o2HolesQuery(n)},
		{"E4 join-elim", starDB,
			"SELECT SUM(f.qty) AS s FROM fact f, dim d WHERE f.dim_id = d.id"},
	}

	// Warm with the ledger on so plans are compiled (and shadow-costed)
	// once, outside the timed region; the measured loops then exercise the
	// cached steady state, which is where overhead matters.
	for _, w := range workloads {
		w.db.NoEconomy = false
		if _, err := w.db.Exec(w.q); err != nil {
			return nil, fmt.Errorf("O2 warm %s: %w", w.name, err)
		}
		w.db.NoEconomy = true
		if _, err := w.db.Exec(w.q); err != nil {
			return nil, err
		}
	}

	for _, w := range workloads {
		onNs := make([]float64, 0, iters)
		offNs := make([]float64, 0, iters)
		for i := 0; i < iters; i++ {
			// Strictly interleave the two modes op by op, alternating
			// which goes first, so drift in machine load and allocator
			// state hits both distributions equally.
			modes := []bool{false, true}
			if i%2 == 1 {
				modes = []bool{true, false}
			}
			for _, noEcon := range modes {
				w.db.NoEconomy = noEcon
				t0 := time.Now()
				if _, err := w.db.Exec(w.q); err != nil {
					return nil, err
				}
				d := float64(time.Since(t0).Nanoseconds())
				if noEcon {
					offNs = append(offNs, d)
				} else {
					onNs = append(onNs, d)
				}
			}
		}
		onUs := o2Min(onNs) / 1000
		offUs := o2Min(offNs) / 1000
		pct := 0.0
		if offUs > 0 {
			pct = (onUs - offUs) / offUs * 100
		}
		rep.AddRow("overhead", w.name,
			fmt.Sprintf("%+.2f%%", pct),
			fmt.Sprintf("ledger on %.1fµs/op, off %.1fµs/op (min over %d interleaved ops each)", onUs, offUs, iters))
	}

	// Ranking phase: keep accruing on the holes database with the ledger
	// on, and add a soft check that only ever costs (write hooks on every
	// insert, never consulted by a query).
	holesDB.NoEconomy = false
	for i := 0; i < 5; i++ {
		if _, err := holesDB.Exec(o2HolesQuery(n)); err != nil {
			return nil, err
		}
	}
	if _, err := holesDB.Exec(
		"CREATE TABLE ballast (id INT PRIMARY KEY, v INT, CONSTRAINT ballast_pos CHECK (v >= 0) SOFT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 400; i++ {
		if _, err := holesDB.Exec(fmt.Sprintf("INSERT INTO ballast VALUES (%d, %d)", i, i%7)); err != nil {
			return nil, err
		}
	}

	rows := holesDB.ConstraintEconomy()
	holeIdx, ballastIdx := -1, -1
	for i, r := range rows {
		rep.AddRow("ranking", fmt.Sprintf("%d. %s", i+1, r.Name),
			fmt.Sprintf("%.1f", r.NetBenefitUs),
			fmt.Sprintf("kind=%s pages=%d rewrite_rows=%d maint=%dµs wal=%d",
				r.Kind, r.PagesSkipped, r.RewriteRows, r.MaintNanos/1000, r.WALRecords))
		switch r.Name {
		case "holes_orders_lineitem":
			holeIdx = i
		case "ballast_pos":
			ballastIdx = i
		}
	}
	if holeIdx < 0 || ballastIdx < 0 {
		return nil, fmt.Errorf("O2: ledger missing expected constraints (hole=%d ballast=%d)", holeIdx, ballastIdx)
	}
	hole, ballast := rows[holeIdx], rows[ballastIdx]
	if hole.PagesSkipped <= 0 {
		return nil, fmt.Errorf("O2: interior-hole prune predicate attributed no page skips")
	}
	if hole.NetBenefitUs <= 0 {
		return nil, fmt.Errorf("O2: consulted hole characterization should be net positive, got %.1fµs", hole.NetBenefitUs)
	}
	if ballast.NetBenefitUs >= 0 {
		return nil, fmt.Errorf("O2: never-consulted soft check should be net negative, got %.1fµs", ballast.NetBenefitUs)
	}
	if holeIdx > ballastIdx {
		return nil, fmt.Errorf("O2: ranking inverted: earner at %d below cost center at %d", holeIdx, ballastIdx)
	}
	// Rewrite-credit check: the star query's join elimination must have
	// credited its FK constraint, at plan time, with the dim rows the
	// removed join would have touched.
	var fkRow *obs.EconomyRow
	srows := starDB.ConstraintEconomy()
	for i := range srows {
		if srows[i].RewriteRows > 0 {
			fkRow = &srows[i]
			break
		}
	}
	if fkRow == nil {
		return nil, fmt.Errorf("O2: join elimination credited no rewrite rows")
	}
	rep.AddRow("rewrite-credit", fkRow.Name, fkRow.RewriteRows,
		fmt.Sprintf("kind=%s plan-time rows removed by join elimination, net=%.1fµs", fkRow.Kind, fkRow.NetBenefitUs))
	rep.Notef("target: ledger overhead < 5%% per steady-state query (net-benefit units: µs, see DESIGN.md §15)")
	rep.Notef("ranking: pages-earning hole characterization net %.1fµs above write-only soft check net %.1fµs",
		hole.NetBenefitUs, ballast.NetBenefitUs)
	return rep, nil
}
