package bench

import (
	"fmt"
	"time"

	"softdb/internal/engine"
	"softdb/internal/expr"
	"softdb/internal/types"
	"softdb/internal/vec"
	"softdb/internal/workload"
)

// V1Kernels measures the vectorized predicate kernels against the per-row
// expression tree-walk they replace: for each hot comparator family
// (equality, <, BETWEEN, IS NULL) the compiled stage runs over a columnar
// batch's selection vector, the baseline evaluates the same conjunct with
// EvalBool row by row, and the report shows ns/row for both. A generic
// (column-to-column) predicate is included to show the fallback stage costs
// about the same as the tree-walk it wraps, and one end-to-end query row
// shows the whole-pipeline effect of the -no-batch knob.
func V1Kernels(rows int) (*Report, error) {
	rep := &Report{
		ID:     "V1",
		Title:  "vectorized kernels: typed tight loops vs per-row tree-walk",
		Claim:  "constraint benefits (pages skipped, joins eliminated) convert to wall-time only when surviving pages flow through tight loops; typed kernels cut per-row predicate cost multi-x while the generic fallback stays at parity",
		Header: []string{"kernel", "typed", "ns/row kernel", "ns/row tree-walk", "speedup"},
	}

	data := V1Rows(rows)
	for _, kc := range V1Cases() {
		conds := kc.Conds
		prog := expr.CompilePredicate(conds)
		typed := len(prog.Stages) == 1 && prog.Typed(0)
		if typed != kc.Typed {
			return nil, fmt.Errorf("V1 %s: compiled typed=%v, case declares %v", kc.Name, typed, kc.Typed)
		}

		kernelNs, kernelKept, err := timeKernel(prog, data)
		if err != nil {
			return nil, err
		}
		walkNs, walkKept, err := timeTreeWalk(conds, data)
		if err != nil {
			return nil, err
		}
		if kernelKept != walkKept {
			return nil, fmt.Errorf("V1 %s: kernel kept %d rows, tree-walk kept %d", kc.Name, kernelKept, walkKept)
		}
		rep.AddRow(kc.Name, typed, fmt.Sprintf("%.1f", kernelNs), fmt.Sprintf("%.1f", walkNs),
			fmt.Sprintf("%.2f", walkNs/kernelNs))
	}

	e2e, err := v1EndToEnd(rows)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, e2e...)
	rep.Notef("batch of %d rows; kernel times include selection-vector writes; e2e row is a filtered scan+aggregate with the plan held fixed", rows)
	return rep, nil
}

// V1Case is one measured kernel family, shared between the V1 experiment
// and the top-level BenchmarkV1Kernels so the table and the committed
// bench snapshot measure identical predicates.
type V1Case struct {
	Name  string
	Conds []expr.Expr
	// Typed declares whether CompilePredicate must produce a single
	// type-specialized stage for this predicate; V1Kernels re-verifies it.
	Typed bool
}

// V1Cases returns the kernel families over the V1Rows schema
// (#0 a INT, #1 b FLOAT, #2 c INT with NULLs).
func V1Cases() []V1Case {
	split := func(e expr.Expr) []expr.Expr { return expr.SplitConjuncts(e) }
	return []V1Case{
		{"eq-int", split(expr.NewBinary(expr.OpEq, intCol(0, "a"), expr.NewConst(types.NewInt(12)))), true},
		{"lt-float", split(expr.NewBinary(expr.OpLt, floatCol(1, "b"), expr.NewConst(types.NewFloat(12.5)))), true},
		{"between-int", split(expr.NewBinary(expr.OpAnd,
			expr.NewBinary(expr.OpGe, intCol(0, "a"), expr.NewConst(types.NewInt(8))),
			expr.NewBinary(expr.OpLe, intCol(0, "a"), expr.NewConst(types.NewInt(31))))), true},
		{"is-null", split(expr.NewUnary(expr.OpIsNull, intCol(2, "c"))), true},
		{"generic-col-col", split(expr.NewBinary(expr.OpLt, intCol(0, "a"), intCol(2, "c"))), false},
	}
}

func intCol(ord int, name string) *expr.Column {
	return expr.NewColumn("", name, ord, types.KindInt)
}

func floatCol(ord int, name string) *expr.Column {
	return expr.NewColumn("", name, ord, types.KindFloat)
}

// V1Rows builds the measurement rows: a INT (dense small domain),
// b FLOAT, c INT with ~10% NULLs.
func V1Rows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		c := types.Datum(types.NewInt(int64(i % 37)))
		if i%10 == 3 {
			c = types.Null
		}
		rows[i] = types.Row{
			types.NewInt(int64(i % 50)),
			types.NewFloat(float64(i%100) / 4),
			c,
		}
	}
	return rows
}

// v1Reps picks a repetition count that keeps the experiment fast at smoke
// scale yet stable at full scale.
func v1Reps(rows int) int {
	reps := 1 << 22 / rows
	if reps < 8 {
		reps = 8
	}
	return reps
}

func timeKernel(prog *expr.PredProgram, rows []types.Row) (nsPerRow float64, kept int, err error) {
	var b vec.Batch
	b.Reset(rows)
	ident := vec.IdentitySel(nil, len(rows))
	out := make([]int32, 0, len(rows))
	reps := v1Reps(len(rows))
	start := time.Now()
	for r := 0; r < reps; r++ {
		sel := ident
		for i := range prog.Stages {
			sel, err = prog.RunStage(i, &b, sel, out)
			if err != nil {
				return 0, 0, err
			}
		}
		kept = len(sel)
	}
	total := time.Since(start)
	return float64(total.Nanoseconds()) / float64(reps*len(rows)), kept, nil
}

func timeTreeWalk(conds []expr.Expr, rows []types.Row) (nsPerRow float64, kept int, err error) {
	reps := v1Reps(len(rows))
	start := time.Now()
	for r := 0; r < reps; r++ {
		kept = 0
		for _, row := range rows {
			pass := true
			for _, c := range conds {
				ok, eerr := expr.EvalBool(c, row)
				if eerr != nil {
					return 0, 0, eerr
				}
				if !ok {
					pass = false
					break
				}
			}
			if pass {
				kept++
			}
		}
	}
	total := time.Since(start)
	return float64(total.Nanoseconds()) / float64(reps*len(rows)), kept, nil
}

// v1EndToEnd runs one filtered scan+aggregate with batching on and off
// (same plan — the knob only switches the execution path) and reports
// whole-query ns/row.
func v1EndToEnd(factRows int) ([][]string, error) {
	db := engine.Open()
	db.DisablePlanCache = true
	db.NoPrune = true
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 100, FactRows: factRows, Seed: 23}); err != nil {
		return nil, err
	}
	q := "SELECT COUNT(*) AS n, SUM(qty) AS s FROM fact WHERE qty >= 5 AND qty <= 40 AND price < 900.0"
	run := func(noBatch bool) (float64, string, error) {
		db.NoBatch = noBatch
		const reps = 5
		best := 0.0
		var answer string
		for i := 0; i < reps; i++ {
			start := time.Now()
			res, err := db.Exec(q)
			if err != nil {
				return 0, "", err
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(factRows)
			if best == 0 || ns < best {
				best = ns
			}
			answer = res.Rows[0].String()
		}
		return best, answer, nil
	}
	rowNs, rowAns, err := run(true)
	if err != nil {
		return nil, err
	}
	batchNs, batchAns, err := run(false)
	if err != nil {
		return nil, err
	}
	if rowAns != batchAns {
		return nil, fmt.Errorf("V1 e2e: answers diverged: %s vs %s", rowAns, batchAns)
	}
	return [][]string{{
		"e2e-scan-agg", "pipeline",
		fmt.Sprintf("%.1f", batchNs), fmt.Sprintf("%.1f", rowNs),
		fmt.Sprintf("%.2f", rowNs/batchNs),
	}}, nil
}
