// Package bench implements the paper-reproduction experiments E1–E13
// described in DESIGN.md. Each experiment builds its workload, runs the
// measured configurations, and returns a Report whose rows the scbench
// binary prints and bench_test.go asserts on. The paper (SIGMOD 2001) has
// no numbered tables or figures; each experiment reproduces a specific
// quantitative claim, cited in its Claim field.
package bench

import (
	"fmt"
	"strings"

	"softdb/internal/engine"
)

// Report is one experiment's result table.
type Report struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced, with section cite
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case bool:
			row[i] = fmt.Sprintf("%v", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim: %s\n", r.Claim)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// openSQO returns a database configured for the semantic-rewrite
// experiments: zone-map page pruning is pinned off so each experiment
// isolates the one rewrite effect it measures. P2 measures synopsis
// pruning by itself, against an unpruned baseline.
func openSQO() *engine.Database {
	db := engine.Open()
	db.NoPrune = true
	return db
}

// Experiment names a runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Report, error)
}

// All returns the full experiment suite at default scale.
func All() []Experiment {
	return []Experiment{
		{"E1", "predicate introduction via linear-correlation ASC", func() (*Report, error) { return E1PredicateIntroduction(DefaultE1Sizes) }},
		{"E2", "join-hole range trimming", func() (*Report, error) { return E2JoinHoles(20000, 3) }},
		{"E3", "SSC twinned-predicate cardinality estimation", func() (*Report, error) { return E3Cardinality(20000, 0.1) }},
		{"E4", "join elimination over referential integrity", func() (*Report, error) { return E4JoinElimination(20000, 50000) }},
		{"E5", "union-all branch elimination", func() (*Report, error) { return E5BranchPrune(4000) }},
		{"E6", "exception-AST union rewrite (late shipments)", func() (*Report, error) { return E6ExceptionAST(50000, 0.01) }},
		{"E7", "FD-based sort and group-by simplification", func() (*Report, error) { return E7FDSort(30000, 200) }},
		{"E8", "constraint-checking overhead vs informational", func() (*Report, error) { return E8CheckingOverhead(20000) }},
		{"E9", "SSC currency / margin-of-error model", func() (*Report, error) { return E9Currency(20000, 20, 30) }},
		{"E10", "miner cost scaling", func() (*Report, error) { return E10Miners([]int{10000, 20000, 40000, 80000}) }},
		{"E11", "ASC violation handling and plan-cache invalidation", func() (*Report, error) { return E11Violation(20000, 3) }},
		{"E12", "AST routing and AST-based estimation", func() (*Report, error) { return E12ASTs(20000) }},
		{"E13", "virtual-column statistics for expression predicates", func() (*Report, error) { return E13VirtualColumns(20000) }},
		{"P1", "intra-query parallelism: serial vs parallel", func() (*Report, error) { return P1Parallel(200000) }},
		{"P2", "zone-map page pruning from synopses and soft constraints", func() (*Report, error) { return P2Prune(20000) }},
		{"R1", "query lifecycle: cancellation latency and context-check overhead", func() (*Report, error) { return R1Robustness(100000) }},
		{"S1", "network server: concurrent clients, parity, load shedding", func() (*Report, error) { return S1Server(DefaultS1) }},
		{"S2", "constraint-aware shard router: scaling, shard pruning, invalidation", func() (*Report, error) { return S2Router(DefaultS2) }},
		{"D1", "durability: fsync policy overhead and recovery-time scaling", func() (*Report, error) { return D1Recovery(2000, DefaultD1Sweep) }},
		{"O2", "constraint-economy ledger: overhead and net-benefit ranking", func() (*Report, error) { return O2Economy(20000, 40) }},
		{"V1", "vectorized kernels: typed tight loops vs per-row tree-walk", func() (*Report, error) { return V1Kernels(65536) }},
		{"T1", "transactions: snapshot readers under write load, wire-level txns", func() (*Report, error) { return T1Txn(DefaultT1) }},
	}
}

// DefaultE1Sizes is the table-size sweep for E1.
var DefaultE1Sizes = []int{10000, 50000, 200000}
