package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"softdb/internal/client"
	"softdb/internal/engine"
	"softdb/internal/fault"
	"softdb/internal/server"
	"softdb/internal/softc"
	"softdb/internal/types"
	"softdb/internal/workload"
)

// S1Config sizes the server experiment.
type S1Config struct {
	Rows        int // rows in the scanned table
	Clients     int // concurrent client connections (the ISSUE bar is >= 32)
	ParityOps   int // read statements per client in the parity phase
	MixedOps    int // statements per client in the throughput phase
	OverloadOps int // statements per client in the overload phases
	BaselineOps int // statements for the unloaded-latency baseline
	SlowPageUs  int // injected per-page stall during overload, microseconds
	ShedDepth   int // shed-mode queue depth beyond the admission gate
	MaxConc     int // the engine admission gate during overload
}

// DefaultS1 is the scbench-scale configuration.
var DefaultS1 = S1Config{
	Rows: 20000, Clients: 32, ParityOps: 8, MixedOps: 25,
	OverloadOps: 2, BaselineOps: 6, SlowPageUs: 1000, ShedDepth: 0, MaxConc: 4,
}

// s1DB builds the clustered-correlation table from the pruning
// experiments (b tracks a, minable as an absolute linear correlation) and
// installs the mined ASC — the object whose cross-session invalidation
// phase (b) demonstrates.
func s1DB(rows, maxConc int) (*engine.Database, error) {
	db := engine.Open()
	db.NoIndexes = true
	// The engine latches MaxConcurrent into its admission gate at the
	// first statement, so the overload phases' gate must be set before
	// the schema statements below run.
	db.MaxConcurrent = maxConc
	if _, err := db.Exec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)"); err != nil {
		return nil, err
	}
	te, err := db.Catalog().Table("t")
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		b := types.Datum(types.NewInt(int64(i + i%4)))
		if i%97 == 0 {
			b = types.Null
		}
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), b, types.NewInt(int64(i % 10))}); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec("ANALYZE t"); err != nil {
		return nil, err
	}
	mgr := softc.NewManager(db.Catalog())
	cands, err := mgr.DiscoverTable("t")
	if err != nil {
		return nil, err
	}
	return db, mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 4))
}

// s1ReadStmt is the deterministic parity/throughput read: a selective
// range on the clustered column.
func s1ReadStmt(rows int, r *rand.Rand) string {
	lo := r.Intn(rows - 50)
	return fmt.Sprintf("SELECT a, b, c FROM t WHERE a >= %d AND a <= %d", lo, lo+40)
}

// hashResult folds a statement's rows into a running FNV-64 hash. Row
// order matters; serial plans return heap order, so remote and local
// executions of the same statement hash identically.
func hashResult(h interface{ Write([]byte) (int, error) }, cols []string, rows []types.Row) {
	for _, c := range cols {
		h.Write([]byte(c))
	}
	for _, row := range rows {
		for _, d := range row {
			h.Write([]byte(d.String()))
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
}

// S1Server runs the network-server experiment:
//
//	(a) parity: every client's read stream, executed concurrently over the
//	    wire, hashes identically to the same stream executed in-process;
//	(b) cross-session ASC invalidation: one session's violating write
//	    deactivates the mined correlation for every other session's
//	    planner, observed through EXPLAIN over the wire;
//	(c) throughput: mixed read/DML traffic from all clients, reported as
//	    stmt/s with p50/p95/p99 latency;
//	(d) overload: with slow pages injected and the admission gate at
//	    MaxConc, queueing (shed off) lets latency grow with the backlog
//	    while shedding converts the excess into fast typed busy errors and
//	    keeps accepted-statement p99 near the unloaded baseline.
func S1Server(cfg S1Config) (*Report, error) {
	rep := &Report{
		ID:     "S1",
		Title:  "network server: concurrent clients, parity, shedding",
		Claim:  "a wire-protocol front end preserves engine semantics exactly (results, typed errors, cross-session invalidation) while load shedding bounds accepted-request latency under overload",
		Header: []string{"phase", "config", "result", "detail"},
	}
	db, err := s1DB(cfg.Rows, cfg.MaxConc)
	if err != nil {
		return nil, err
	}

	// Queue-mode server (no shedding) and shed-mode server over one db.
	queueSrv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	queueAddr, err := queueSrv.Listen()
	if err != nil {
		return nil, err
	}
	go queueSrv.Serve()
	shedSrv := server.New(db, server.Config{Addr: "127.0.0.1:0", Shed: true, ShedQueueDepth: cfg.ShedDepth})
	shedAddr, err := shedSrv.Listen()
	if err != nil {
		return nil, err
	}
	go shedSrv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		queueSrv.Shutdown(ctx)
		shedSrv.Shutdown(ctx)
	}()

	// (a) Parity: concurrent remote streams vs serial in-process replay.
	remoteHashes := make([]uint64, cfg.Clients)
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Connect(queueAddr.String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			h := fnv.New64a()
			r := rand.New(rand.NewSource(1000 + int64(i)))
			for op := 0; op < cfg.ParityOps; op++ {
				res, err := c.Query(context.Background(), s1ReadStmt(cfg.Rows, r))
				if err != nil {
					errs[i] = err
					return
				}
				hashResult(h, res.Columns, res.Rows)
			}
			remoteHashes[i] = h.Sum64()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parity client %d: %w", i, err)
		}
	}
	parity := true
	for i := 0; i < cfg.Clients; i++ {
		h := fnv.New64a()
		r := rand.New(rand.NewSource(1000 + int64(i)))
		for op := 0; op < cfg.ParityOps; op++ {
			res, err := db.ExecCtx(context.Background(), s1ReadStmt(cfg.Rows, r))
			if err != nil {
				return nil, err
			}
			hashResult(h, res.Columns, res.Rows)
		}
		if h.Sum64() != remoteHashes[i] {
			parity = false
		}
	}
	rep.AddRow("parity", fmt.Sprintf("%d clients x %d reads", cfg.Clients, cfg.ParityOps),
		fmt.Sprintf("match=%v", parity), "fnv64(result stream) remote == in-process, per client")

	// (c) Throughput: mixed read/DML through the queue-mode server.
	nextKey := cfg.Rows * 10
	mixed, err := workload.RunDriver(workload.DriverConfig{
		Addr: queueAddr.String(), Clients: cfg.Clients, OpsPerClient: cfg.MixedOps, Seed: 7,
		Statement: func(c, op int, r *rand.Rand) string {
			if op%10 == 9 {
				// Non-violating insert: b stays inside the mined band.
				a := nextKey + c*10000 + op
				return fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 0)", a, a+1)
			}
			return s1ReadStmt(cfg.Rows, r)
		},
	})
	if err != nil {
		return nil, err
	}
	if len(mixed.ErrKinds) > 0 || mixed.Shed > 0 {
		return nil, fmt.Errorf("throughput phase saw failures: %+v", mixed)
	}
	rep.AddRow("throughput", fmt.Sprintf("%d clients, 10%% DML", cfg.Clients),
		fmt.Sprintf("%.0f stmt/s", mixed.Throughput), mixed.Accepted.String())

	// (b) Cross-session ASC invalidation through the wire.
	reader, err := client.Connect(queueAddr.String())
	if err != nil {
		return nil, err
	}
	defer reader.Close()
	writer, err := client.Connect(queueAddr.String())
	if err != nil {
		return nil, err
	}
	defer writer.Close()
	explainQ := "EXPLAIN SELECT a FROM t WHERE b >= 200 AND b <= 240"
	hasPrune := func(res *client.Result) bool {
		for _, row := range res.Rows {
			if strings.Contains(row[0].Str(), "prune-introduction applied") {
				return true
			}
		}
		return false
	}
	before, err := reader.Query(context.Background(), explainQ)
	if err != nil {
		return nil, err
	}
	vres, err := writer.Query(context.Background(), fmt.Sprintf("INSERT INTO t VALUES (%d, 999999, 0)", cfg.Rows*100))
	if err != nil {
		return nil, err
	}
	noticed := false
	for _, n := range vres.Notices {
		if strings.Contains(n, "deactivated by violating write") {
			noticed = true
		}
	}
	after, err := reader.Query(context.Background(), explainQ)
	if err != nil {
		return nil, err
	}
	rep.AddRow("asc-invalidation",
		fmt.Sprintf("write on %s, explain on %s", writer.Session(), reader.Session()),
		fmt.Sprintf("before=%v notice=%v after=%v", hasPrune(before), noticed, !hasPrune(after)),
		"violating INSERT deactivates the ASC for every session")

	// (d) Overload: slow pages against the admission gate, queue vs shed.
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: time.Duration(cfg.SlowPageUs) * time.Microsecond})
	defer func() { db.Fault = nil }()
	slowQ := func(c, op int, r *rand.Rand) string {
		return "SELECT COUNT(*) AS n FROM t WHERE c >= 0"
	}
	baseline, err := workload.RunDriver(workload.DriverConfig{
		Addr: queueAddr.String(), Clients: 1, OpsPerClient: cfg.BaselineOps, Seed: 3, Statement: slowQ,
	})
	if err != nil {
		return nil, err
	}
	queued, err := workload.RunDriver(workload.DriverConfig{
		Addr: queueAddr.String(), Clients: cfg.Clients, OpsPerClient: cfg.OverloadOps, Seed: 4, Statement: slowQ,
	})
	if err != nil {
		return nil, err
	}
	shed, err := workload.RunDriver(workload.DriverConfig{
		Addr: shedAddr.String(), Clients: cfg.Clients, OpsPerClient: cfg.OverloadOps, Seed: 5, Statement: slowQ,
	})
	if err != nil {
		return nil, err
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }
	rep.AddRow("overload", "unloaded (1 client)", "p99 "+ms(baseline.Accepted.P99), baseline.Accepted.String())
	rep.AddRow("overload", fmt.Sprintf("queue (%d clients, gate %d)", cfg.Clients, cfg.MaxConc),
		"p99 "+ms(queued.Accepted.P99),
		fmt.Sprintf("%s; shed=%d", queued.Accepted.String(), queued.Shed))
	withinBar := shed.Accepted.P99 <= 2*baseline.Accepted.P99
	rep.AddRow("overload", fmt.Sprintf("shed (%d clients, depth %d) accepted", cfg.Clients, cfg.ShedDepth),
		"p99 "+ms(shed.Accepted.P99),
		fmt.Sprintf("%s; within 2x unloaded p99: %v", shed.Accepted.String(), withinBar))
	rep.AddRow("overload", "shed rejections",
		fmt.Sprintf("%d of %d", shed.Shed, shed.Requests),
		fmt.Sprintf("fail-fast %s", shed.ShedLat.String()))
	rep.Notef("queue server %s, shed server %s; overload pages stalled %dµs each",
		queueAddr, shedAddr, cfg.SlowPageUs)
	if queued.Shed != 0 {
		return nil, fmt.Errorf("queue-mode server shed %d statements", queued.Shed)
	}
	if shed.Shed == 0 {
		rep.Notef("WARNING: shed-mode server shed nothing; overload too light for the gate")
	}
	return rep, nil
}
