package bench

import (
	"fmt"

	"softdb/internal/engine"
	"softdb/internal/mining"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

// P2Prune measures zone-map page pruning by itself, against an unpruned
// baseline (the one experiment that runs with NoPrune off). Three workloads:
//
//   - selective-scan: a clustered range filter; the page synopses alone
//     prove most pages irrelevant (filter-derived pruning).
//   - corr-derived: the query constrains only ship_date; the installed
//     ASC correlation derives order_date bounds with ±ε margin, planting an
//     extra prune-only predicate. On co-clustered data its page set largely
//     coincides with the filter's — the differential value of the derived
//     predicate is that it deactivates when the ASC is violated (E11).
//   - join-hole: the query range straddles a mined join hole. Range
//     subtraction cannot exploit an interior hole (the range would split),
//     but pages lying wholly inside the hole are skipped by an exclusion
//     predicate. The filter-only configuration (prune on, constraint-derived
//     introduction off) isolates what the hole adds beyond the filter.
func P2Prune(n int) (*Report, error) {
	rep := &Report{
		ID:     "P2",
		Title:  "zone-map page pruning from synopses and soft constraints",
		Claim:  "per-page min/max synopses let sargable predicates — including ones derived from ASC correlations and join holes — skip pages wholesale; selective scans read a fraction of the pages at identical answers",
		Header: []string{"workload", "config", "pages", "skipped", "out rows", "page speedup"},
	}

	// Workload 1: selective clustered range scan (filter-derived pruning).
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadPurchase(db, workload.PurchaseConfig{N: n, Seed: 21}); err != nil {
		return nil, err
	}
	lo := n / 4 / 4 // order_date offset: 4 orders per day
	selQ := fmt.Sprintf("SELECT id FROM purchase WHERE order_date >= DATE '1999-01-01' + %d AND order_date <= DATE '1999-01-01' + %d", lo, lo+20)
	if err := addPruneRows(rep, db, "selective-scan", selQ, false); err != nil {
		return nil, err
	}

	// Workload 2: correlation-derived pruning (same table, fresh DB so the
	// mined ASC is the only installed characterization).
	dbc := engine.Open()
	dbc.DisablePlanCache = true
	if err := workload.LoadPurchase(dbc, workload.PurchaseConfig{N: n, Seed: 22}); err != nil {
		return nil, err
	}
	mgr := softc.NewManager(dbc.Catalog())
	cands, err := mgr.DiscoverTable("purchase")
	if err != nil {
		return nil, err
	}
	if err := mgr.InstallCorrelations(mgr.SelectCorrelations(cands.Correlations, 1)); err != nil {
		return nil, err
	}
	corrQ := fmt.Sprintf("SELECT id FROM purchase WHERE ship_date >= DATE '1999-01-01' + %d AND ship_date <= DATE '1999-01-01' + %d", lo, lo+20)
	if err := addPruneRows(rep, dbc, "corr-derived", corrQ, true); err != nil {
		return nil, err
	}

	// Workload 3: interior join hole. The planted band [n/4, n/2) has no
	// lineitems; the query range strictly contains it, so subtraction cannot
	// trim, only page exclusion applies.
	dbh := engine.Open()
	dbh.DisablePlanCache = true
	if err := workload.LoadOrdersLineitem(dbh, workload.HolesConfig{
		Orders: n, LinesPer: 2, Seed: 23, BandLo: n / 4, BandHi: n / 2,
	}); err != nil {
		return nil, err
	}
	left, err := dbh.Catalog().Table("orders")
	if err != nil {
		return nil, err
	}
	right, err := dbh.Catalog().Table("lineitem")
	if err != nil {
		return nil, err
	}
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		return nil, err
	}
	jh.Name = "p2_holes"
	if err := dbh.Catalog().AddJoinHoles(jh); err != nil {
		return nil, err
	}
	holeQ := fmt.Sprintf(`SELECT COUNT(*) AS c FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		n/8, 3*n/4, n/8, 3*n/4+89)
	if err := addPruneRows(rep, dbh, "join-hole", holeQ, true); err != nil {
		return nil, err
	}

	rep.Notef("n=%d; all configurations return identical answers (asserted)", n)
	rep.Notef("filter-only = synopses on, constraint-derived prune introduction off; its gap to 'prune on' is what the soft characterizations add")
	return rep, nil
}

// addPruneRows runs q under pruning off / (optionally) filter-only / fully
// on, verifies identical answers and page accounting, and appends one row
// per configuration.
func addPruneRows(rep *Report, db *engine.Database, wl, q string, filterOnly bool) error {
	db.NoPrune = true
	offPages, offSkipped, offRows, offSum, err := runPruneCounted(db, q)
	if err != nil {
		return err
	}
	if offSkipped != 0 {
		return fmt.Errorf("P2 %s: baseline skipped %d pages with pruning off", wl, offSkipped)
	}
	rep.AddRow(wl, "prune off", offPages, int64(0), offRows, "1.00")

	configs := []string{"prune on"}
	if filterOnly {
		configs = []string{"filter-only", "prune on"}
	}
	db.NoPrune = false
	for _, name := range configs {
		db.RewriteOpts.NoPruneIntro = name == "filter-only"
		pages, skipped, rows, sum, err := runPruneCounted(db, q)
		if err != nil {
			return err
		}
		if rows != offRows || sum != offSum {
			return fmt.Errorf("P2 %s/%s: answer diverged: %d rows (sum %d) vs %d (sum %d)",
				wl, name, rows, sum, offRows, offSum)
		}
		if pages+skipped != offPages {
			return fmt.Errorf("P2 %s/%s: page accounting broke: %d read + %d skipped != %d total",
				wl, name, pages, skipped, offPages)
		}
		rep.AddRow(wl, name, pages, skipped, rows, fmt.Sprintf("%.2f", ratio(offPages, pages)))
	}
	db.RewriteOpts.NoPruneIntro = false
	return nil
}

// runPruneCounted executes q and returns its page, skip, and row counts plus
// a content fingerprint (the sum of every integer cell), so COUNT/SUM
// answers are compared by value, not just cardinality.
func runPruneCounted(db *engine.Database, q string) (pages, skipped int64, rows int, sum int64, err error) {
	res, err := db.Exec(q)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, row := range res.Rows {
		for _, d := range row {
			if !d.IsNull() && d.IsNumeric() {
				sum += d.Int()
			}
		}
	}
	io := res.Ctx.IO
	return io.PagesRead, io.PagesSkipped, len(res.Rows), sum, nil
}
