package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/workload"
)

// R1Robustness measures the query-lifecycle machinery (experiment R1):
//
//   - context-check overhead: the star-schema scan and aggregation queries
//     run under a live cancelable deadline context versus the background
//     default; the per-page/per-batch checkpoints are the only difference,
//     and the acceptance bar is <=5% median wall-time overhead;
//   - cancellation latency: with every page stalled 1ms by the fault
//     injector, how long after cancel() a running scan takes to return its
//     typed canceled error;
//   - deadline and budget enforcement: a statement deadline and a memory
//     budget each abort with their typed error, reported for completeness.
//
// Overhead is reported from medians over several repetitions; on a noisy
// host individual runs can exceed the bar — BenchmarkR1LifecycleOverhead
// is the steadier gate.
func R1Robustness(factRows int) (*Report, error) {
	rep := &Report{
		ID:     "R1",
		Title:  "query lifecycle: cancellation latency and context-check overhead",
		Claim:  "page/batch-granular cancellation checkpoints stop a canceled query within a few checkpoint intervals while costing <5% wall time on queries that never use them",
		Header: []string{"measure", "config", "ms", "detail"},
	}
	db := engine.Open()
	db.DisablePlanCache = true
	if err := workload.LoadStar(db, workload.StarConfig{DimRows: 1000, FactRows: factRows, Seed: 17}); err != nil {
		return nil, err
	}
	queries := []struct{ name, q string }{
		{"filter-scan", "SELECT id, qty FROM fact WHERE qty > 25 AND price < 500.0"},
		{"group-agg", "SELECT dim_id, COUNT(*) AS n, SUM(qty) AS total FROM fact GROUP BY dim_id"},
	}

	// (a) Context-check overhead, background vs live-deadline context.
	for _, qc := range queries {
		offMs, onMs, err := timeQueryLifecycle(db, qc.q)
		if err != nil {
			return nil, err
		}
		rep.AddRow(qc.name, "ctx=off", fmt.Sprintf("%.2f", offMs), "background context")
		rep.AddRow(qc.name, "ctx=on", fmt.Sprintf("%.2f", onMs),
			fmt.Sprintf("overhead %+.1f%%", (onMs/offMs-1)*100))
	}

	// (b) Cancellation latency under 1ms/page slow pages.
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: time.Millisecond})
	var latencies []float64
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		canceledAt := make(chan time.Time, 1)
		timer := time.AfterFunc(5*time.Millisecond, func() {
			canceledAt <- time.Now()
			cancel()
		})
		_, err := db.ExecCtx(ctx, queries[0].q)
		returned := time.Now()
		timer.Stop()
		cancel()
		qe, ok := exec.AsQueryError(err)
		if !ok || qe.Kind != exec.KindCanceled {
			return nil, fmt.Errorf("R1: canceled query returned %T: %v", err, err)
		}
		latencies = append(latencies, float64(returned.Sub(<-canceledAt).Microseconds())/1000)
	}
	sort.Float64s(latencies)
	rep.AddRow("cancel-latency", "slow-pages 1ms", fmt.Sprintf("%.2f", latencies[len(latencies)/2]),
		"cancel() to typed error, median of 5")

	// (c) Deadline and budget enforcement.
	db.StmtTimeout = 5 * time.Millisecond
	start := time.Now()
	_, err := db.Exec(queries[0].q)
	tookMs := float64(time.Since(start).Microseconds()) / 1000
	if qe, ok := exec.AsQueryError(err); !ok || qe.Kind != exec.KindTimeout {
		return nil, fmt.Errorf("R1: deadline run returned %T: %v", err, err)
	}
	rep.AddRow("deadline", "stmt-timeout 5ms", fmt.Sprintf("%.2f", tookMs), "typed timeout error")
	db.StmtTimeout = 0
	db.Fault = nil

	db.MemBudget = 16 << 10
	start = time.Now()
	_, err = db.Exec("SELECT id FROM fact ORDER BY qty")
	tookMs = float64(time.Since(start).Microseconds()) / 1000
	if qe, ok := exec.AsQueryError(err); !ok || qe.Kind != exec.KindMemBudget {
		return nil, fmt.Errorf("R1: budget run returned %T: %v", err, err)
	}
	rep.AddRow("mem-budget", "16KiB sort", fmt.Sprintf("%.2f", tookMs), "typed oom error")
	db.MemBudget = 0

	rep.Notef("fact rows: %d; overhead medians over 7 reps — see BenchmarkR1LifecycleOverhead for the gated numbers", factRows)
	return rep, nil
}

// timeQueryLifecycle measures q under a background context and under a
// live cancelable deadline context, interleaving the repetitions so heap
// and cache drift hit both variants equally, and returns the median
// wall-clock milliseconds of each.
func timeQueryLifecycle(db *engine.Database, q string) (offMs, onMs float64, err error) {
	const reps = 7
	run := func(withCtx bool) (float64, error) {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if withCtx {
			ctx, cancel = context.WithTimeout(ctx, time.Hour)
		}
		start := time.Now()
		_, err := db.ExecCtx(ctx, q)
		took := time.Since(start)
		cancel()
		if err != nil {
			return 0, err
		}
		return float64(took.Microseconds()) / 1000, nil
	}
	var off, on []float64
	for i := 0; i < reps; i++ {
		o, err := run(false)
		if err != nil {
			return 0, 0, err
		}
		w, err := run(true)
		if err != nil {
			return 0, 0, err
		}
		off = append(off, o)
		on = append(on, w)
	}
	sort.Float64s(off)
	sort.Float64s(on)
	return off[reps/2], on[reps/2], nil
}
