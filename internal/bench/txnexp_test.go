package bench

import (
	"strings"
	"testing"
)

// TestT1Shape runs the transaction experiment at smoke scale and asserts the
// report carries all three measures with their internal checks passing. The
// experiment itself errors on row-count or conflict-accounting mismatches,
// so the shape test mostly guards the rendered table against drifting from
// those checks.
func TestT1Shape(t *testing.T) {
	rep, err := T1Txn(T1Config{Rows: 800, Clients: 4, ReadOps: 8, SlowPageUs: 50, TxnOps: 6})
	if err != nil {
		t.Fatal(err)
	}
	var readRows, txnRows, conRows [][]string
	for _, row := range rep.Rows {
		switch row[0] {
		case "read-p99":
			readRows = append(readRows, row)
		case "wire-txn":
			txnRows = append(txnRows, row)
		case "contention":
			conRows = append(conRows, row)
		}
	}
	if len(readRows) != 2 {
		t.Fatalf("want read-only and under-flood read-p99 rows, got %v", readRows)
	}
	if len(txnRows) != 1 || !strings.Contains(txnRows[0][3], "match=true") {
		t.Fatalf("wire-txn row must confirm committed-row parity: %v", txnRows)
	}
	if len(conRows) != 1 || !strings.Contains(conRows[0][3], "accounted=true") {
		t.Fatalf("contention row must account every statement as win or conflict: %v", conRows)
	}
}
