package bench

import (
	"fmt"
	"math"
	"time"

	"softdb/internal/engine"
	"softdb/internal/softc"
	"softdb/internal/types"
	"softdb/internal/workload"
)

// factRow builds one deterministic fact row for the load benchmarks.
func factRow(i int) types.Row {
	return types.Row{
		types.NewInt(int64(i)),
		types.NewInt(int64(i % 200)),
		types.NewInt(int64(i % 1000)),
	}
}

// E3Cardinality reproduces §5.1: for the project-active-on-day query, the
// independence assumption badly underestimates the correlated
// (start_date, end_date) predicate pair; the SSC twinned predicate reduces
// the range pair on two columns to a range on one column and applies the
// confidence adjustment, cutting estimation error.
func E3Cardinality(n int, longFrac float64) (*Report, error) {
	rep := &Report{
		ID:     "E3",
		Title:  "SSC twinned-predicate cardinality estimation",
		Claim:  "twinning end_date predicates onto start_date converts a cross-column range pair into a single-column range where statistics are reliable, beating the independence assumption (§5.1)",
		Header: []string{"day offset", "actual", "est independence", "est SSC twin", "q-err indep", "q-err twin"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: n, LongFrac: longFrac, Seed: 3, Confidence: 1 - longFrac,
	}); err != nil {
		return nil, err
	}
	var qIndep, qTwin []float64
	for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		day := int64(float64(n/2) * frac)
		actual, err := workload.ActualActiveOn(db, day)
		if err != nil {
			return nil, err
		}
		q := fmt.Sprintf(
			"SELECT id FROM project WHERE start_date <= DATE '1999-01-01' + %d AND end_date >= DATE '1999-01-01' + %d",
			day, day)
		db.NoSSCEstimation = true
		resIndep, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		db.NoSSCEstimation = false
		resTwin, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		qi := qError(resIndep.EstRows, float64(actual))
		qt := qError(resTwin.EstRows, float64(actual))
		qIndep = append(qIndep, qi)
		qTwin = append(qTwin, qt)
		rep.AddRow(day, actual, resIndep.EstRows, resTwin.EstRows, qi, qt)
	}
	rep.Notef("mean q-error: independence %.2f, SSC twin %.2f", mean(qIndep), mean(qTwin))
	rep.Notef("q-error = max(est/actual, actual/est); 1.0 is perfect")
	return rep, nil
}

// qError is the symmetric ratio error used throughout the cardinality
// estimation literature.
func qError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	return math.Max(est/actual, actual/est)
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// E9Currency reproduces §3.3's worked example: a fact table of a million
// records with a thousand rows modified daily has a small margin of error
// over days, but ~3% within a month. We run the update stream, compare the
// model's predicted margin against the measured violation drift, and show
// the asynchronous refresh resetting it.
func E9Currency(rows, updatesPerDay, days int) (*Report, error) {
	rep := &Report{
		ID:     "E9",
		Title:  "SSC currency / margin-of-error model",
		Claim:  "1k updates/day on a 1M-row table ⇒ ≈3% margin of error within a month; refresh resets it (§3.3)",
		Header: []string{"day", "predicted margin %", "actual drift %", "effective confidence"},
	}
	// Scale down while keeping the paper's ratio (1k/1M per day).
	db := openSQO()
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: rows, LongFrac: 0, Seed: 9, Confidence: 0.999,
	}); err != nil {
		return nil, err
	}
	mgr := softc.NewManager(db.Catalog())
	// Establish the true baseline confidence.
	baseConf, err := mgr.RefreshCheckConfidence("project", "duration")
	if err != nil {
		return nil, err
	}
	te, err := db.Catalog().Table("project")
	if err != nil {
		return nil, err
	}
	var con = db.Catalog().ConstraintByName("duration")
	rng := int64(1)
	for day := 1; day <= days; day++ {
		// Each day, updatesPerDay rows get a new (violating) end_date.
		for u := 0; u < updatesPerDay; u++ {
			id := (int64(day)*7919 + int64(u)*104729 + rng) % int64(rows)
			db.MustExec(fmt.Sprintf(
				"UPDATE project SET end_date = start_date + 400 WHERE id = %d", id))
		}
		if day%10 != 0 && day != days {
			continue
		}
		predicted := softc.MarginOfError(con.ModsSince, te.Heap.RowCount())
		actualConf := measureConfidence(db)
		drift := baseConf - actualConf
		rep.AddRow(day, 100*predicted, 100*drift,
			softc.EffectiveConfidence(con.Confidence, con.ModsSince, te.Heap.RowCount()))
	}
	// Refresh: statistics brought up to date, margin resets (§3.3).
	conf, err := mgr.RefreshCheckConfidence("project", "duration")
	if err != nil {
		return nil, err
	}
	rep.AddRow("refresh", 0.0, 100*(baseConf-conf), conf)
	rep.Notef("predicted margin is an upper bound on drift (updates may hit the same row twice)")
	rep.Notef("scaled to %d rows, %d updates/day (paper: 1M rows, 1k/day)", rows, updatesPerDay)
	return rep, nil
}

func measureConfidence(db *engine.Database) float64 {
	rows, err := db.Query("SELECT COUNT(*) FROM project WHERE end_date <= start_date + 30")
	if err != nil {
		return 0
	}
	total, err := db.Query("SELECT COUNT(*) FROM project")
	if err != nil || total[0][0].Int() == 0 {
		return 0
	}
	return float64(rows[0][0].Int()) / float64(total[0][0].Int())
}

// E8CheckingOverhead reproduces §1's motivation for informational
// constraints: in load-heavy environments the DBMS re-checking integrity
// the loader already guarantees is pure overhead. We time bulk loads of the
// same data under enforced and informational constraint modes.
func E8CheckingOverhead(n int) (*Report, error) {
	rep := &Report{
		ID:     "E8",
		Title:  "Constraint-checking overhead vs informational constraints",
		Claim:  "informational constraints keep optimizer benefits while removing integrity-checking cost on load (§1)",
		Header: []string{"mode", "rows", "load ms", "µs/row", "overhead vs informational"},
	}
	// Best of three runs per mode, to shrug off scheduler noise.
	times := map[string]time.Duration{}
	for _, mode := range []string{"informational", "enforced"} {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			db := openSQO()
			start := time.Now()
			if err := loadStarTimed(db, n, mode); err != nil {
				return nil, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		times[mode] = best
	}
	for _, mode := range []string{"informational", "enforced"} {
		d := times[mode]
		rep.AddRow(mode, n,
			float64(d.Microseconds())/1000,
			float64(d.Microseconds())/float64(n),
			float64(d)/float64(times["informational"]))
	}
	rep.Notef("enforced mode checks the FK (parent lookup) and check constraint per row; informational skips both")
	return rep, nil
}

func loadStarTimed(db *engine.Database, n int, mode string) error {
	fkSuffix := ""
	checkSuffix := ""
	if mode == "informational" {
		fkSuffix = " NOT ENFORCED"
		checkSuffix = " INFORMATIONAL"
	}
	if _, err := db.Exec(`CREATE TABLE dim (id INT PRIMARY KEY, name VARCHAR(20))`); err != nil {
		return err
	}
	// No primary key on fact: in the loader-verified bulk-load setting the
	// fact PK is the loader's problem too, and this isolates the FK+check
	// cost the informational mode removes.
	ddl := fmt.Sprintf(`CREATE TABLE fact (
		id INT,
		dim_id INT NOT NULL,
		qty INT,
		FOREIGN KEY (dim_id) REFERENCES dim (id)%s,
		CHECK (qty >= 0 AND qty <= 1000)%s)`, fkSuffix, checkSuffix)
	if _, err := db.Exec(ddl); err != nil {
		return err
	}
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO dim VALUES (%d, 'd%d')", i, i))
	}
	te, err := db.Catalog().Table("fact")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row, err := te.Def.ValidateRow(factRow(i))
		if err != nil {
			return err
		}
		if err := db.InsertRow(te, row); err != nil {
			return err
		}
	}
	return nil
}

// E13VirtualColumns reproduces §5.1's second proposed mechanism: "combine
// multiple SSCs in virtual columns where the distribution statistics on the
// virtual column can be broken down into the individual SSCs." The paper's
// closing example — "the number of projects completed in 5 days", predicate
// `end_date - start_date <= 5` — is unestimable from per-column statistics;
// a virtual column over the duration expression carries its distribution.
func E13VirtualColumns(n int) (*Report, error) {
	rep := &Report{
		ID:     "E13",
		Title:  "Virtual-column statistics for expression predicates",
		Claim:  "distribution statistics on a virtual column estimate predicates over column expressions, e.g. end_date - start_date <= k (§5.1)",
		Header: []string{"k (days)", "actual", "est default", "est virtual", "q-err default", "q-err virtual"},
	}
	db := openSQO()
	db.DisablePlanCache = true
	if err := workload.LoadProject(db, workload.ProjectConfig{
		N: n, LongFrac: 0.1, Seed: 13,
	}); err != nil {
		return nil, err
	}
	type run struct {
		k       int
		actual  float64
		defEst  float64
		virtEst float64
	}
	var runs []run
	for _, k := range []int{2, 5, 10, 20, 60} {
		q := fmt.Sprintf("SELECT id FROM project WHERE end_date - start_date <= %d", k)
		res, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{k: k, actual: float64(len(res.Rows)), defEst: res.EstRows})
	}
	if err := db.AddVirtualColumn("project", "duration", "end_date - start_date"); err != nil {
		return nil, err
	}
	for i := range runs {
		q := fmt.Sprintf("SELECT id FROM project WHERE end_date - start_date <= %d", runs[i].k)
		res, err := db.Exec(q)
		if err != nil {
			return nil, err
		}
		runs[i].virtEst = res.EstRows
		if float64(len(res.Rows)) != runs[i].actual {
			rep.Notef("WARNING: answers changed at k=%d", runs[i].k)
		}
	}
	var qd, qv []float64
	for _, r := range runs {
		qdk, qvk := qError(r.defEst, r.actual), qError(r.virtEst, r.actual)
		qd = append(qd, qdk)
		qv = append(qv, qvk)
		rep.AddRow(r.k, int(r.actual), r.defEst, r.virtEst, qdk, qvk)
	}
	rep.Notef("mean q-error: default %.2f, virtual column %.2f", mean(qd), mean(qv))
	rep.Notef("the default is the System R 1/3 range selectivity — independent of k, hence the crossover")
	return rep, nil
}
