package bench

import (
	"fmt"

	"softdb/internal/engine"
)

// buildASTWorkload creates a purchase table whose region and amount columns
// are strongly correlated (region 3 is the premium region: almost all
// amounts >= 90 come from it), an AST over the premium rows, and
// statistics. The correlation is what defeats the independence assumption.
func buildASTWorkload(n int, informational bool) (*engine.Database, error) {
	db := openSQO()
	db.DisablePlanCache = true
	if _, err := db.Exec(`CREATE TABLE purchase (
		id INT PRIMARY KEY,
		region INT,
		amount FLOAT)`); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		region := i % 7
		amount := i % 90 // below 90
		if i%20 == 0 {   // 5% premium rows, concentrated in region 3
			region = 3
			amount = 90 + i%10
		}
		if _, err := db.Exec(fmt.Sprintf(
			"INSERT INTO purchase VALUES (%d, %d, %d)", i, region, amount)); err != nil {
			return nil, err
		}
	}
	kind := ""
	if informational {
		kind = "INFORMATIONAL "
	}
	if _, err := db.Exec(fmt.Sprintf(
		"CREATE %sSUMMARY TABLE premium AS (SELECT * FROM purchase WHERE amount >= 90 AND region = 3)", kind)); err != nil {
		return nil, err
	}
	if _, err := db.Exec("ANALYZE purchase"); err != nil {
		return nil, err
	}
	return db, nil
}

// E12ASTs reproduces the §4.4 AST discussion beyond exceptions: a
// materialized AST matching the query's predicates becomes a routing choice
// (scan the small AST instead of the base table), and an information AST —
// "not routable, but can be used for filter factor estimation" — supplies
// the exact joint selectivity of a correlated predicate pair that the
// independence assumption butchers.
func E12ASTs(n int) (*Report, error) {
	rep := &Report{
		ID:     "E12",
		Title:  "AST routing and AST-based filter-factor estimation",
		Claim:  "a matching AST is a routable choice point, and even unmaterialized (information) ASTs fix correlated-predicate estimates (§4.4)",
		Header: []string{"config", "pages", "est rows", "actual rows", "q-error"},
	}
	q := "SELECT id FROM purchase WHERE amount >= 90 AND region = 3"

	// Materialized AST: routing + estimation.
	db, err := buildASTWorkload(n, false)
	if err != nil {
		return nil, err
	}
	db.RewriteOpts.NoASTRouting = true
	db.NoASTEstimation = true
	base, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	actual := float64(len(base.Rows))
	rep.AddRow("base table, independence est", base.Ctx.IO.PagesRead, base.EstRows, len(base.Rows), qError(base.EstRows, actual))

	db.NoASTEstimation = false
	est, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("base table, AST-backed est", est.Ctx.IO.PagesRead, est.EstRows, len(est.Rows), qError(est.EstRows, actual))

	db.RewriteOpts.NoASTRouting = false
	routed, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("routed through AST", routed.Ctx.IO.PagesRead, routed.EstRows, len(routed.Rows), qError(routed.EstRows, actual))
	if len(routed.Rows) != len(base.Rows) {
		rep.Notef("WARNING: routing changed answers: %d vs %d", len(routed.Rows), len(base.Rows))
	}

	// Information AST: estimation only, never routed.
	dbi, err := buildASTWorkload(n, true)
	if err != nil {
		return nil, err
	}
	info, err := dbi.Exec(q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("information AST (est only)", info.Ctx.IO.PagesRead, info.EstRows, len(info.Rows), qError(info.EstRows, actual))
	rep.Notef("the AST covers both correlated predicates, so its row count is the exact joint selectivity")
	return rep, nil
}
