package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// The smoke tests run every experiment at reduced scale and assert the
// *shape* of each result — who wins and roughly by how much — which is what
// the reproduction promises (absolute numbers depend on the simulated
// substrate).

func lastFloat(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return f
}

func TestE1Shape(t *testing.T) {
	rep, err := E1PredicateIntroduction([]int{5000, 20000})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, row := range rep.Rows {
		speedup := lastFloat(t, row[3])
		if speedup < 2 {
			t.Errorf("n=%s: predicate introduction should win clearly: speedup %.2f", row[0], speedup)
		}
		if row[4] != "true" {
			t.Errorf("n=%s: answers must match", row[0])
		}
		if prev > 0 && speedup < prev*0.8 {
			t.Errorf("speedup should grow (or hold) with table size: %.2f then %.2f", prev, speedup)
		}
		prev = speedup
	}
}

func TestE2Shape(t *testing.T) {
	rep, err := E2JoinHoles(4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	speedup := lastFloat(t, rep.Rows[1][3])
	if speedup <= 1.0 {
		t.Errorf("hole trimming should reduce pages: %.2f", speedup)
	}
	if rep.Rows[0][2] != rep.Rows[1][2] {
		t.Errorf("join answers must match: %s vs %s", rep.Rows[0][2], rep.Rows[1][2])
	}
}

func TestE3Shape(t *testing.T) {
	rep, err := E3Cardinality(8000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var qi, qt float64
	var count int
	for _, row := range rep.Rows {
		qi += lastFloat(t, row[4])
		qt += lastFloat(t, row[5])
		count++
	}
	qi /= float64(count)
	qt /= float64(count)
	if qt >= qi {
		t.Errorf("SSC twin should reduce mean q-error: indep %.2f vs twin %.2f", qi, qt)
	}
}

func TestE4Shape(t *testing.T) {
	rep, err := E4JoinElimination(5000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if lastFloat(t, row[4]) <= 1.0 {
			t.Errorf("%s: join elimination should run faster: %v", row[0], row)
		}
		if row[5] != "true" {
			t.Errorf("%s: answers must match", row[0])
		}
	}
}

func TestE5Shape(t *testing.T) {
	rep, err := E5BranchPrune(800)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: months 1..3 → 3 of 12 branches.
	if rep.Rows[0][1] != "12" || rep.Rows[0][2] != "3" {
		t.Errorf("Jan–Mar should scan 3 of 12 branches: %v", rep.Rows[0])
	}
	if rep.Rows[1][2] != "1" {
		t.Errorf("single month should scan 1 branch: %v", rep.Rows[1])
	}
	if rep.Rows[2][2] != "12" {
		t.Errorf("full year scans all: %v", rep.Rows[2])
	}
	if lastFloat(t, rep.Rows[0][5]) < 3 {
		t.Errorf("Jan–Mar speedup should approach 4x: %v", rep.Rows[0])
	}
}

func TestE6Shape(t *testing.T) {
	rep, err := E6ExceptionAST(12000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	astSpeedup := lastFloat(t, rep.Rows[2][3])
	if astSpeedup < 3 {
		t.Errorf("exception-AST plan should beat the scan clearly: %.2f", astSpeedup)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("answer mismatch: %s", n)
		}
	}
}

func TestE7Shape(t *testing.T) {
	rep, err := E7FDSort(6000, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[4] != "true" {
			t.Errorf("%s: answers must match: %v", row[0], row)
		}
	}
	// The ORDER BY query should save a noticeable share of comparisons.
	if saved := lastFloat(t, rep.Rows[0][3]); saved <= 0 {
		t.Errorf("FD sort simplification saved nothing: %v", rep.Rows[0])
	}
}

func TestE8Shape(t *testing.T) {
	rep, err := E8CheckingOverhead(4000)
	if err != nil {
		t.Fatal(err)
	}
	overhead := lastFloat(t, rep.Rows[1][4])
	if overhead <= 1.0 {
		t.Errorf("enforced mode should cost more than informational: %.2f", overhead)
	}
}

func TestE9Shape(t *testing.T) {
	rep, err := E9Currency(20000, 200, 30) // 1%/day for a fast test run
	if err != nil {
		t.Fatal(err)
	}
	// Margin grows over days; predicted bounds actual.
	var lastPred, lastDrift float64
	for _, row := range rep.Rows {
		if row[0] == "refresh" {
			continue
		}
		pred := lastFloat(t, row[1])
		drift := lastFloat(t, row[2])
		if drift > pred+1e-9 {
			t.Errorf("day %s: drift %.3f exceeds predicted bound %.3f", row[0], drift, pred)
		}
		lastPred, lastDrift = pred, drift
	}
	if lastPred <= 0 || lastDrift <= 0 {
		t.Errorf("after 30 days both should be positive: pred=%.3f drift=%.3f", lastPred, lastDrift)
	}
	// The paper's ratio: 30 days * 200/20000 per day = 30%... our scaled
	// run uses 1% per day; check predicted margin is day*rate.
	if lastPred < 25 {
		t.Errorf("predicted margin after 30 days at 1%%/day: %.1f%%", lastPred)
	}
}

func TestE10Shape(t *testing.T) {
	rep, err := E10Miners([]int{4000, 8000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	// Per-row cost flat-ish: last/first within 8x (generous for timer noise
	// at small sizes).
	firstCorr := lastFloat(t, rep.Rows[0][2])
	lastCorr := lastFloat(t, rep.Rows[len(rep.Rows)-1][2])
	if firstCorr > 0 && lastCorr/firstCorr > 8 {
		t.Errorf("correlation mining per-row cost grew superlinearly: %.3f -> %.3f", firstCorr, lastCorr)
	}
}

func TestE11Shape(t *testing.T) {
	rep, err := E11Violation(4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	holesBefore, _ := strconv.Atoi(rep.Rows[0][1])
	holesAfter, _ := strconv.Atoi(rep.Rows[1][1])
	holesRemined, _ := strconv.Atoi(rep.Rows[2][1])
	if holesAfter >= holesBefore {
		t.Errorf("violating writes should retire holes: %d -> %d", holesBefore, holesAfter)
	}
	if holesRemined <= holesAfter {
		t.Errorf("re-mine should restore holes: %d -> %d", holesAfter, holesRemined)
	}
	if rep.Rows[1][3] == "0" {
		t.Errorf("backup-plan failover expected after repair: %v", rep.Rows[1])
	}
}

func TestP2Shape(t *testing.T) {
	rep, err := P2Prune(8000)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range rep.Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	get := func(key string) []string {
		t.Helper()
		row, ok := rows[key]
		if !ok {
			t.Fatalf("missing row %q in %v", key, rep.Rows)
		}
		return row
	}
	// Selective workloads: pruning must read at most 25% of the baseline
	// pages (the acceptance bar) and account for every page.
	for _, wl := range []string{"selective-scan", "corr-derived"} {
		off := lastFloat(t, get(wl + "/prune off")[2])
		on := lastFloat(t, get(wl + "/prune on")[2])
		if on*4 > off {
			t.Errorf("%s: pruning should read <=25%% of pages: %0.f of %.0f", wl, on, off)
		}
		if skipped := lastFloat(t, get(wl + "/prune on")[3]); on+skipped != off {
			t.Errorf("%s: read %0.f + skipped %.0f != total %.0f", wl, on, skipped, off)
		}
	}
	// The interior hole must add skips beyond what the filter proves.
	filterOnly := lastFloat(t, get("join-hole/filter-only")[3])
	full := lastFloat(t, get("join-hole/prune on")[3])
	if full <= filterOnly {
		t.Errorf("interior hole should add skips: filter-only %.0f vs full %.0f", filterOnly, full)
	}
}

func TestR1Shape(t *testing.T) {
	rep, err := R1Robustness(30000)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range rep.Rows {
		rows[row[0]+"/"+row[1]] = row
	}
	for _, key := range []string{
		"filter-scan/ctx=off", "filter-scan/ctx=on",
		"group-agg/ctx=off", "group-agg/ctx=on",
		"cancel-latency/slow-pages 1ms", "deadline/stmt-timeout 5ms", "mem-budget/16KiB sort",
	} {
		if _, ok := rows[key]; !ok {
			t.Fatalf("missing row %q in %v", key, rep.Rows)
		}
	}
	// Cancellation latency must be a small multiple of the checkpoint
	// interval (one stalled page = 1ms), not the full-scan time.
	if lat := lastFloat(t, rows["cancel-latency/slow-pages 1ms"][2]); lat > 100 {
		t.Errorf("cancellation latency %.1fms; a canceled scan should stop within a few pages", lat)
	}
	// The deadline run must return near the 5ms deadline, not after the
	// (multi-second) stalled full scan.
	if took := lastFloat(t, rows["deadline/stmt-timeout 5ms"][2]); took > 500 {
		t.Errorf("deadline run took %.1fms against a 5ms timeout", took)
	}
}

func TestS1Shape(t *testing.T) {
	cfg := S1Config{
		Rows: 4000, Clients: 8, ParityOps: 4, MixedOps: 10,
		OverloadOps: 2, BaselineOps: 4, SlowPageUs: 1000, ShedDepth: 0, MaxConc: 2,
	}
	// The latency criterion in the shed row compares two measured timings;
	// one retry absorbs a scheduler hiccup on a loaded CI machine. The
	// semantic criteria (parity, invalidation, shed counts) must hold on
	// the first run.
	rep := runS1(t, cfg)
	find := func(phase, configPrefix string) []string {
		t.Helper()
		for _, row := range rep.Rows {
			if row[0] == phase && strings.HasPrefix(row[1], configPrefix) {
				return row
			}
		}
		t.Fatalf("missing row %s/%s* in %v", phase, configPrefix, rep.Rows)
		return nil
	}
	if got := find("parity", "")[2]; got != "match=true" {
		t.Errorf("remote result streams must hash identically to in-process: %s", got)
	}
	if got := find("asc-invalidation", "")[2]; got != "before=true notice=true after=true" {
		t.Errorf("cross-session invalidation must propagate: %s", got)
	}
	var shedN, total int
	if _, err := fmt.Sscanf(find("overload", "shed rejections")[2], "%d of %d", &shedN, &total); err != nil {
		t.Fatalf("shed rejections cell: %v", err)
	}
	if shedN <= 0 {
		t.Errorf("overload against the shed server must reject statements: %d of %d", shedN, total)
	}
	shedRow := find("overload", "shed (")
	if !strings.Contains(shedRow[3], "within 2x unloaded p99: true") {
		rep = runS1(t, cfg) // timing-only retry
		if shedRow = find("overload", "shed ("); !strings.Contains(shedRow[3], "within 2x unloaded p99: true") {
			t.Errorf("shed-mode accepted latency missed the 2x bar twice: %v", shedRow)
		}
	}
}

func runS1(t *testing.T, cfg S1Config) *Report {
	t.Helper()
	rep, err := S1Server(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestO2Shape(t *testing.T) {
	rep, err := O2Economy(6000, 12)
	if err != nil {
		t.Fatal(err)
	}
	var overhead, ranking, rewriteCredit [][]string
	for _, row := range rep.Rows {
		switch row[0] {
		case "overhead":
			overhead = append(overhead, row)
		case "ranking":
			ranking = append(ranking, row)
		case "rewrite-credit":
			rewriteCredit = append(rewriteCredit, row)
		}
	}
	if len(overhead) != 3 {
		t.Fatalf("overhead rows: %v", overhead)
	}
	if len(rewriteCredit) != 1 || lastFloat(t, rewriteCredit[0][2]) <= 0 {
		t.Fatalf("join elimination should credit plan-time rewrite rows: %v", rewriteCredit)
	}
	// The 5% claim is asserted at full scale by the experiment's note; at
	// smoke scale timer noise dominates, so gate only against a gross
	// regression (the ledger doubling query cost would indicate a lock or
	// allocation on the hot path).
	for _, row := range overhead {
		if pct := lastFloat(t, row[2]); pct > 100 {
			t.Errorf("%s: ledger overhead %.1f%%; crediting should be near-free", row[1], pct)
		}
	}
	// O2Economy itself errors unless hole net > 0 > ballast net and the
	// ranking orders them; re-assert the signs from the rendered rows so the
	// table and the internal checks can't drift apart.
	var holeNet, ballastNet float64
	holeNet, ballastNet = 0, 0
	for _, row := range ranking {
		if strings.HasSuffix(row[1], " holes_orders_lineitem") {
			holeNet = lastFloat(t, row[2])
		}
		if strings.HasSuffix(row[1], " ballast_pos") {
			ballastNet = lastFloat(t, row[2])
		}
	}
	if holeNet <= 0 || ballastNet >= 0 {
		t.Errorf("ranking rows disagree with ledger: hole %.1f, ballast %.1f", holeNet, ballastNet)
	}
}

func TestV1Shape(t *testing.T) {
	rep, err := V1Kernels(8192)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, row := range rep.Rows {
		rows[row[0]] = row
	}
	get := func(name string) []string {
		t.Helper()
		row, ok := rows[name]
		if !ok {
			t.Fatalf("missing kernel row %q in %v", name, rep.Rows)
		}
		return row
	}
	// The comparator families the compiler specializes must report typed
	// stages and beat the tree-walk; the column-to-column predicate must fall
	// back to the generic stage without a blowup (it wraps the same
	// tree-walk, so parity up to loop overhead).
	var best float64
	for _, name := range []string{"eq-int", "lt-float", "between-int", "is-null"} {
		row := get(name)
		if row[1] != "true" {
			t.Errorf("%s: expected a typed kernel: %v", name, row)
		}
		speedup := lastFloat(t, row[4])
		if speedup <= 1.0 {
			t.Errorf("%s: typed kernel should beat tree-walk: %.2f", name, speedup)
		}
		if speedup > best {
			best = speedup
		}
	}
	if best < 2 {
		t.Errorf("at least one typed kernel should win >=2x: best %.2f", best)
	}
	generic := get("generic-col-col")
	if generic[1] != "false" {
		t.Errorf("column-to-column compare should use the generic stage: %v", generic)
	}
	if speedup := lastFloat(t, generic[4]); speedup < 0.3 {
		t.Errorf("generic stage should be near tree-walk parity, got %.2f", speedup)
	}
	// End-to-end row exists and batching does not lose to the row path at
	// smoke scale by more than timer noise allows.
	e2e := get("e2e-scan-agg")
	if speedup := lastFloat(t, e2e[4]); speedup < 0.5 {
		t.Errorf("batched pipeline should not lose badly end-to-end: %.2f", speedup)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "X", Title: "t", Claim: "c", Header: []string{"a", "bb"}}
	rep.AddRow(1, 2.5)
	rep.Notef("note %d", 7)
	s := rep.String()
	for _, want := range []string{"=== X: t ===", "a", "bb", "1", "2.50", "note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestE12Shape(t *testing.T) {
	rep, err := E12ASTs(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	qIndep := lastFloat(t, rep.Rows[0][4])
	qAST := lastFloat(t, rep.Rows[1][4])
	qInfo := lastFloat(t, rep.Rows[3][4])
	if qAST >= qIndep {
		t.Errorf("AST-backed estimate should beat independence: %.2f vs %.2f", qAST, qIndep)
	}
	if qAST > 1.5 || qInfo > 1.5 {
		t.Errorf("AST-backed estimates should be near-exact: %.2f / %.2f", qAST, qInfo)
	}
	basePages := lastFloat(t, rep.Rows[0][1])
	routedPages := lastFloat(t, rep.Rows[2][1])
	if routedPages*3 > basePages {
		t.Errorf("routing should save pages: %.0f vs %.0f", routedPages, basePages)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
}

func TestE13Shape(t *testing.T) {
	rep, err := E13VirtualColumns(5000)
	if err != nil {
		t.Fatal(err)
	}
	var qd, qv float64
	for _, row := range rep.Rows {
		qd += lastFloat(t, row[4])
		qv += lastFloat(t, row[5])
	}
	if qv >= qd {
		t.Errorf("virtual column should reduce mean q-error: %.2f vs %.2f", qv/float64(len(rep.Rows)), qd/float64(len(rep.Rows)))
	}
	// Every individual estimate should be within 2x of actual.
	for _, row := range rep.Rows {
		if q := lastFloat(t, row[5]); q > 2 {
			t.Errorf("k=%s: virtual estimate q-error %.2f", row[0], q)
		}
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
}

func TestD1Shape(t *testing.T) {
	rep, err := D1Recovery(300, []int{200, 800})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for _, row := range rep.Rows {
		if row[0] == "recovery" {
			rows = append(rows, row)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("recovery rows: %v", rows)
	}
	// Replay work scales with the uncheckpointed log; the checkpointed run
	// replays a bounded tail. Wall times on a shared host are too noisy to
	// gate, so the shape assertions are on the replayed-record counts.
	if !strings.Contains(rows[0][3], "replayed 202 ") {
		t.Errorf("log=200 should replay 202 records: %s", rows[0][3])
	}
	if !strings.Contains(rows[1][3], "replayed 802 ") {
		t.Errorf("log=800 should replay 802 records: %s", rows[1][3])
	}
	var ckptReplayed int
	if _, err := fmt.Sscanf(rows[2][3], "replayed %d records", &ckptReplayed); err != nil {
		t.Fatalf("checkpoint row detail %q: %v", rows[2][3], err)
	}
	if ckptReplayed >= 802 || ckptReplayed > 256+2 {
		t.Errorf("checkpoint cadence should bound the replayed suffix: %d", ckptReplayed)
	}
	for _, row := range rep.Rows {
		if row[0] == "commit" && lastFloat(t, row[2]) <= 0 {
			t.Errorf("commit row has no timing: %v", row)
		}
	}
}

func TestS2Shape(t *testing.T) {
	// Smoke scale: the semantic phases (parity, shard-prune contact
	// counts, invalidation) are hard criteria; the scaling speedup is
	// reported but not gated — 1-shard vs 2-shard wall times at this size
	// are timer-noise-bound on a loaded CI machine (scbench's full-scale
	// run carries the >= 1.5x bar).
	rep, err := S2Router(S2Config{Rows: 6000, Ops: 15, Shards: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	find := func(phase, configPrefix string) []string {
		t.Helper()
		for _, row := range rep.Rows {
			if row[0] == phase && strings.HasPrefix(row[1], configPrefix) {
				return row
			}
		}
		t.Fatalf("missing row %s/%s* in %v", phase, configPrefix, rep.Rows)
		return nil
	}
	for _, n := range []string{"shards=1", "shards=4"} {
		if got := find("parity", n)[2]; got != "match=true" {
			t.Errorf("%s parity: %s", n, got)
		}
	}
	prune := find("shard-prune", "")
	if prune[2] != "contacted 1 pruned vs 4 broadcast" {
		t.Errorf("shard-prune contacts: %s", prune[2])
	}
	if !strings.Contains(prune[3], "hash match=true") {
		t.Errorf("pruned result must be byte-identical to broadcast: %s", prune[3])
	}
	if got := find("invalidation", "")[2]; got != "retired=1 visible=true" {
		t.Errorf("invalidation: %s", got)
	}
}
