package bench

import (
	"fmt"
	"time"

	"softdb/internal/engine"
	"softdb/internal/mining"
	"softdb/internal/softc"
	"softdb/internal/workload"
)

// setupHolesDB builds the orders⋈lineitem workload with a planted empty
// band, mines the holes and registers them.
func setupHolesDB(orders, linesPer int) (*engine.Database, *softc.Manager, error) {
	db := openSQO()
	db.DisablePlanCache = true
	bandLo, bandHi := orders/4, orders/2
	if err := workload.LoadOrdersLineitem(db, workload.HolesConfig{
		Orders: orders, LinesPer: linesPer, Seed: 5, BandLo: bandLo, BandHi: bandHi,
	}); err != nil {
		return nil, nil, err
	}
	left, err := db.Catalog().Table("orders")
	if err != nil {
		return nil, nil, err
	}
	right, err := db.Catalog().Table("lineitem")
	if err != nil {
		return nil, nil, err
	}
	jh, _, err := mining.MineJoinHoles(mining.JoinHoleRequest{
		Left: left, Right: right,
		JoinLeft: "okey", JoinRight: "okey",
		AttrLeft: "odate", AttrRight: "shipdate",
	})
	if err != nil {
		return nil, nil, err
	}
	jh.Name = "holes_orders_lineitem"
	if err := db.Catalog().AddJoinHoles(jh); err != nil {
		return nil, nil, err
	}
	return db, softc.NewManager(db.Catalog()), nil
}

// holesQuery builds a join query whose odate range starts inside the
// planted hole band, so the hole covers the low end of the range.
func holesQuery(orders int) string {
	lo := orders/4 + orders/16
	hi := orders/2 + orders/8
	return fmt.Sprintf(`SELECT COUNT(*) AS n FROM orders o, lineitem l
		WHERE o.okey = l.okey
		AND o.odate >= DATE '1999-01-01' + %d AND o.odate <= DATE '1999-01-01' + %d
		AND l.shipdate >= DATE '1999-01-01' + %d AND l.shipdate <= DATE '1999-01-01' + %d`,
		lo, hi, lo, hi+90)
}

// E2JoinHoles reproduces [8]: knowing the two-dimensional holes of a join
// lets the optimizer trim query ranges, cutting the pages scanned for the
// join. Discovery itself is linear in the join size (measured in E10).
func E2JoinHoles(orders, linesPer int) (*Report, error) {
	rep := &Report{
		ID:     "E2",
		Title:  "Join-hole range trimming",
		Claim:  "range conditions over a join with known holes are trimmed, reducing pages scanned; good optimization demonstrated in experiments ([8], §2)",
		Header: []string{"config", "pages", "join rows", "speedup"},
	}
	db, _, err := setupHolesDB(orders, linesPer)
	if err != nil {
		return nil, err
	}
	q := holesQuery(orders)

	db.RewriteOpts.NoHoleTrim = true
	basePages, _, err := runCounted(db, q)
	if err != nil {
		return nil, err
	}
	baseRes, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	db.RewriteOpts.NoHoleTrim = false
	trimPages, _, err := runCounted(db, q)
	if err != nil {
		return nil, err
	}
	trimRes, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	rep.AddRow("no holes", basePages, baseRes.Rows[0][0].Int(), 1.0)
	rep.AddRow("hole trim", trimPages, trimRes.Rows[0][0].Int(), ratio(basePages, trimPages))
	if baseRes.Rows[0][0].Int() != trimRes.Rows[0][0].Int() {
		rep.Notef("WARNING: answer mismatch %d vs %d", baseRes.Rows[0][0].Int(), trimRes.Rows[0][0].Int())
	} else {
		rep.Notef("answers identical (%d join rows)", baseRes.Rows[0][0].Int())
	}
	return rep, nil
}

// E10Miners measures discovery cost scaling: correlation mining and
// join-hole mining should grow linearly with input size ([8] claims
// linear-in-join-size discovery; least squares is a single pass).
func E10Miners(sizes []int) (*Report, error) {
	rep := &Report{
		ID:     "E10",
		Title:  "Miner cost scaling",
		Claim:  "hole discovery is linear in the join size ([8]); correlation fitting is one pass ([10])",
		Header: []string{"rows", "correlation ms", "corr ms/row (µs)", "holes ms", "holes ms/row (µs)"},
	}
	for _, n := range sizes {
		db := openSQO()
		if err := workload.LoadPurchase(db, workload.PurchaseConfig{N: n, Seed: 6}); err != nil {
			return nil, err
		}
		te, err := db.Catalog().Table("purchase")
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := mining.FitLinear(te.Heap, 2, 1); err != nil {
			return nil, err
		}
		corrDur := time.Since(t0)

		dbh := openSQO()
		if err := workload.LoadOrdersLineitem(dbh, workload.HolesConfig{
			Orders: n, LinesPer: 1, Seed: 6, BandLo: n / 4, BandHi: n / 2,
		}); err != nil {
			return nil, err
		}
		left, _ := dbh.Catalog().Table("orders")
		right, _ := dbh.Catalog().Table("lineitem")
		t1 := time.Now()
		_, joinRows, err := mining.MineJoinHoles(mining.JoinHoleRequest{
			Left: left, Right: right,
			JoinLeft: "okey", JoinRight: "okey",
			AttrLeft: "odate", AttrRight: "shipdate",
		})
		if err != nil {
			return nil, err
		}
		holeDur := time.Since(t1)
		rep.AddRow(n,
			float64(corrDur.Microseconds())/1000,
			float64(corrDur.Microseconds())/float64(n),
			float64(holeDur.Microseconds())/1000,
			float64(holeDur.Microseconds())/float64(max(1, joinRows)))
	}
	rep.Notef("per-row cost should stay roughly flat across sizes (linear scaling)")
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E11Violation reproduces §4.1/§4.3: a write violating an absolute soft
// characterization succeeds, but the characterization is cheaply repaired
// (holes dropped) or deactivated, dependent cached plans are invalidated,
// and the asynchronous re-mine restores the lost optimization.
func E11Violation(orders, linesPer int) (*Report, error) {
	rep := &Report{
		ID:     "E11",
		Title:  "ASC violation handling, backup plans, and plan-cache invalidation",
		Claim:  "violating writes succeed; ASCs are dropped/repaired synchronously and cheaply; dependent plans revert to their §4.1 backup plans instead of recompiling; async repair restores optimality (§4.1, §4.3)",
		Header: []string{"phase", "holes", "pages for query", "backup failovers", "recompiles"},
	}
	db, mgr, err := setupHolesDB(orders, linesPer)
	if err != nil {
		return nil, err
	}
	db.DisablePlanCache = false
	q := holesQuery(orders)
	jh, _ := db.Catalog().JoinHolesByName("holes_orders_lineitem")

	res, err := db.Exec(q)
	if err != nil {
		return nil, err
	}
	db.ResetCacheStats()
	rep.AddRow("initial (holes trimming)", len(jh.Holes), res.Ctx.IO.PagesRead, 0, 0)

	// Violating writes: orders landing inside the hole band, with
	// lineitems. The engine's cheap synchronous repair retires affected
	// holes without running the join (§4.3).
	bandMid := orders/4 + (orders/2-orders/4)/2
	for i := 0; i < 5; i++ {
		okey := orders + 10 + i
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, DATE '1999-01-01' + %d)", okey, bandMid+i))
		db.MustExec(fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, DATE '1999-01-01' + %d, 1)",
			1000000+i, okey, bandMid+i+10))
	}
	res, err = db.Exec(q)
	if err != nil {
		return nil, err
	}
	cs := db.CacheStats()
	rep.AddRow("after violating writes (cheap repair)", len(jh.Holes), res.Ctx.IO.PagesRead, cs.Failovers, cs.Misses)

	// Asynchronous repair: re-mine holes (restores optimality, §4.3).
	if _, err := mgr.RemineJoinHoles("holes_orders_lineitem", mining.HoleMinerConfig{}); err != nil {
		return nil, err
	}
	res, err = db.Exec(q)
	if err != nil {
		return nil, err
	}
	cs = db.CacheStats()
	rep.AddRow("after async re-mine", len(jh.Holes), res.Ctx.IO.PagesRead, cs.Failovers, cs.Misses)
	rep.Notef("every write succeeded; consistency preserved by retiring holes, not aborting transactions (§1)")
	rep.Notef("soft churn reverts cached plans to their SQO-free backups (no recompilation, §4.1)")
	return rep, nil
}
