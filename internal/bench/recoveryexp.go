package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"softdb/internal/engine"
	"softdb/internal/wal"
)

// D1Recovery measures the durability subsystem (experiment D1):
//
//   - commit overhead by fsync policy: the same insert stream runs against
//     an in-memory engine and against durable engines under -wal-sync
//     none/interval/always, isolating what the redo log and each fsync
//     policy cost per acknowledged statement;
//   - recovery time vs log length: crash images (data-directory copies
//     taken before the shutdown checkpoint) holding progressively longer
//     uncheckpointed logs are recovered, showing replay cost scaling
//     linearly with the committed suffix;
//   - checkpoint effect: the same workload with an automatic checkpoint
//     cadence recovers by replaying only the short tail past the last
//     snapshot.
//
// Every recovery run re-validates recovered soft constraints, so the
// reported times include the paper-specific cost of re-admitting
// constraint-like characterizations after a crash, not just heap replay.
func D1Recovery(inserts int, logSweep []int) (*Report, error) {
	rep := &Report{
		ID:     "D1",
		Title:  "durability: fsync policy overhead and recovery-time scaling",
		Claim:  "group-commit WAL makes durable acknowledgement affordable, recovery replays the committed suffix in time linear in log length, and checkpoints bound that suffix",
		Header: []string{"measure", "config", "ms", "detail"},
	}

	// (a) Commit overhead by fsync policy.
	memMs, err := timeInsertStream(nil, inserts)
	if err != nil {
		return nil, err
	}
	rep.AddRow("commit", "in-memory", fmt.Sprintf("%.2f", memMs), "no WAL baseline")
	policies := []struct {
		name string
		opts engine.DurableOptions
	}{
		{"wal-sync=none", engine.DurableOptions{SyncPolicy: wal.SyncNone}},
		{"wal-sync=interval", engine.DurableOptions{SyncPolicy: wal.SyncInterval, SyncInterval: 5 * time.Millisecond}},
		{"wal-sync=always", engine.DurableOptions{SyncPolicy: wal.SyncAlways}},
	}
	for _, p := range policies {
		ms, err := timeInsertStream(&p.opts, inserts)
		if err != nil {
			return nil, err
		}
		rep.AddRow("commit", p.name, fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("%+.1f%% vs in-memory, %.1fus/stmt", (ms/memMs-1)*100, ms/float64(inserts)*1000))
	}

	// (b) Recovery time vs uncheckpointed log length.
	for _, n := range logSweep {
		ms, rs, err := timeRecovery(n, -1)
		if err != nil {
			return nil, err
		}
		rep.AddRow("recovery", fmt.Sprintf("log=%d stmts", n), fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("replayed %d records, revalidated %d constraints", rs.RecordsReplayed, rs.Revalidated))
	}

	// (c) Checkpoint cadence bounds the replayed suffix.
	n := logSweep[len(logSweep)-1]
	every := 256
	ms, rs, err := timeRecovery(n, every)
	if err != nil {
		return nil, err
	}
	rep.AddRow("recovery", fmt.Sprintf("log=%d, ckpt=%d", n, every), fmt.Sprintf("%.2f", ms),
		fmt.Sprintf("replayed %d records from snapshot lsn=%d", rs.RecordsReplayed, rs.SnapshotLSN))

	rep.Notef("commit stream: %d single-row insert statements; recovery images are pre-checkpoint data-directory copies (equivalent to kill -9)", inserts)
	return rep, nil
}

// recoverySchema is the durable workload's table: a primary key, an indexed
// value column, and an absolute soft CHECK that recovery must re-validate.
const recoverySchema = `CREATE TABLE d1 (
	k INT PRIMARY KEY,
	v INT NOT NULL,
	CONSTRAINT d1_v_pos CHECK (v >= 0) SOFT
);
CREATE INDEX idx_d1_v ON d1 (v);`

// timeInsertStream runs the insert workload against a fresh engine —
// in-memory when opts is nil, durable otherwise — and returns wall-clock
// milliseconds for the acknowledged statements (setup excluded).
func timeInsertStream(opts *engine.DurableOptions, inserts int) (float64, error) {
	var db *engine.Database
	if opts == nil {
		db = engine.Open()
	} else {
		dir, err := os.MkdirTemp("", "softdb-d1-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		db, _, err = engine.OpenDurable(dir, *opts)
		if err != nil {
			return 0, err
		}
		defer db.Close()
	}
	if _, err := db.ExecScript(recoverySchema); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < inserts; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO d1 VALUES (%d, %d)", i, i%1000)); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// timeRecovery builds a durable database with n logged insert statements
// under the given checkpoint cadence (negative disables checkpoints),
// copies the data directory before the shutdown checkpoint — a crash image
// — and returns the wall-clock milliseconds OpenDurable takes to recover
// it plus the recovery stats.
func timeRecovery(n, checkpointEvery int) (float64, *engine.RecoveryStats, error) {
	dir, err := os.MkdirTemp("", "softdb-d1-*")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(dir)
	db, _, err := engine.OpenDurable(dir, engine.DurableOptions{
		SyncPolicy: wal.SyncNone, CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		return 0, nil, err
	}
	if _, err := db.ExecScript(recoverySchema); err != nil {
		return 0, nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO d1 VALUES (%d, %d)", i, i%1000)); err != nil {
			return 0, nil, err
		}
	}
	crash, err := copyDataDir(dir)
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(crash)
	if err := db.Close(); err != nil {
		return 0, nil, err
	}

	start := time.Now()
	rdb, rs, err := engine.OpenDurable(crash, engine.DurableOptions{SyncPolicy: wal.SyncNone})
	took := float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		return 0, nil, err
	}
	defer rdb.Close()
	res, err := rdb.Exec("SELECT COUNT(*) AS n FROM d1")
	if err != nil {
		return 0, nil, err
	}
	if got := res.Rows[0][0].String(); got != fmt.Sprint(n) {
		return 0, nil, fmt.Errorf("D1: recovered %s rows, want %d", got, n)
	}
	return took, rs, nil
}

// copyDataDir copies every file in dir into a fresh temp directory —
// byte-for-byte, the moral equivalent of kill -9 since the WAL is
// append-only and snapshots are installed by atomic rename.
func copyDataDir(dir string) (string, error) {
	dst, err := os.MkdirTemp("", "softdb-d1-crash-*")
	if err != nil {
		return "", err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return "", err
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			return "", err
		}
		if _, err := io.Copy(out, in); err != nil {
			in.Close()
			out.Close()
			return "", err
		}
		in.Close()
		if err := out.Close(); err != nil {
			return "", err
		}
	}
	return dst, nil
}

// DefaultD1Sweep is the uncheckpointed-log-length sweep for D1.
var DefaultD1Sweep = []int{1000, 4000, 16000}
