package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"softdb/internal/engine"
	"softdb/internal/server"
	"softdb/internal/shard"
)

// S2Config sizes the shard-router experiment.
type S2Config struct {
	Rows       int     // total rows across the fleet (identical at every fleet size)
	Ops        int     // routed statements per measured phase
	Shards     []int   // fleet sizes for the scaling sweep; must start at 1
	MinSpeedup float64 // scaling bar from 1 shard to the largest fleet; 0 reports without gating (smoke scale)
}

// DefaultS2 is the scbench-scale configuration.
var DefaultS2 = S2Config{Rows: 40000, Ops: 60, Shards: []int{1, 2, 4}, MinSpeedup: 1.5}

// s2Fleet is one router-fronted shard fleet plus the single-node twin
// that receives every statement the router does (the parity oracle).
type s2Fleet struct {
	r      *shard.Router
	sess   *shard.Session
	single *engine.Database
	close  []func()
}

func (f *s2Fleet) Close() {
	f.sess.Close()
	f.r.Close()
	for _, fn := range f.close {
		fn()
	}
}

// exec applies a statement to the router AND the twin.
func (f *s2Fleet) exec(stmt string) error {
	if _, err := f.sess.Exec(context.Background(), stmt); err != nil {
		return fmt.Errorf("router %q: %w", stmt, err)
	}
	if _, err := f.single.Exec(stmt); err != nil {
		return fmt.Errorf("single %q: %w", stmt, err)
	}
	return nil
}

// s2Spec partitions the event table by equal ranges of the key space; a
// single shard hashes (everything routes to shard 0 either way).
func s2Spec(n, rows int) (shard.Spec, error) {
	if n == 1 {
		return shard.ParseSpec("events=hash(k)")
	}
	var bounds []string
	for i := 1; i < n; i++ {
		bounds = append(bounds, fmt.Sprintf("%d", i*rows/n))
	}
	return shard.ParseSpec(fmt.Sprintf("events=range(k:%s)", strings.Join(bounds, ",")))
}

// s2NewFleet starts n engine servers on loopback, fronts them with a
// router, and loads rows spread over the key space: k is the partition
// key, v tracks k (so synced per-shard value ranges are disjoint and the
// registry can prune like a zone map), grp is a 10-way group column.
func s2NewFleet(n, rows int) (*s2Fleet, error) {
	f := &s2Fleet{single: engine.Open()}
	f.single.NoIndexes = true
	cfg := shard.Config{DialTimeout: 5 * time.Second, DialAttempts: 3, TrackCols: []string{"events.v"}}
	for i := 0; i < n; i++ {
		db := engine.Open()
		db.NoIndexes = true
		srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
		addr, err := srv.Listen()
		if err != nil {
			f.Close()
			return nil, err
		}
		go srv.Serve()
		f.close = append(f.close, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		cfg.Addrs = append(cfg.Addrs, addr.String())
	}
	spec, err := s2Spec(n, rows)
	if err != nil {
		f.Close()
		return nil, err
	}
	cfg.Specs = []shard.Spec{spec}
	if f.r, err = shard.New(cfg); err != nil {
		f.Close()
		return nil, err
	}
	f.sess = f.r.NewSession()
	if err := f.exec("CREATE TABLE events (k INT NOT NULL, v INT, grp INT)"); err != nil {
		f.Close()
		return nil, err
	}
	// Insert keys in a scattered order (a fixed coprime stride walks the
	// whole key space) so every heap page's key synopsis spans nearly the
	// full range: the engines' own zone-map pruning then cannot shortcut
	// the range scans, and the scaling phase measures the router's
	// data-parallel split rather than page-synopsis luck.
	var vals []string
	for i := 0; i < rows; i++ {
		k := (i * 10007) % rows
		vals = append(vals, fmt.Sprintf("(%d, %d, %d)", k, k, k%10))
		if len(vals) == 200 || i == rows-1 {
			if err := f.exec("INSERT INTO events VALUES " + strings.Join(vals, ", ")); err != nil {
				f.Close()
				return nil, err
			}
			vals = vals[:0]
		}
	}
	return f, nil
}

// s2RangeStmt is the routed workload statement: an unindexed aggregate
// over a narrow partition-key band. The range spec narrows it to one
// shard, which then scans only its slice of the data — the throughput
// gain under scaling is data-parallel (each shard holds rows/n rows), not
// core-parallel.
func s2RangeStmt(rows int, r *rand.Rand) string {
	width := rows / 50
	lo := r.Intn(rows - width)
	return fmt.Sprintf("SELECT COUNT(*) AS n, SUM(v) AS s FROM events WHERE k >= %d AND k < %d", lo, lo+width)
}

// s2Parity is the mixed read set hashed against the single-node twin.
func s2Parity(rows int) []string {
	return []string{
		"SELECT COUNT(*) AS n FROM events",
		"SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS mean FROM events",
		"SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM events GROUP BY grp ORDER BY grp",
		fmt.Sprintf("SELECT k, v FROM events WHERE k >= %d AND k < %d ORDER BY k", rows/3, rows/3+25),
		fmt.Sprintf("SELECT k FROM events WHERE v >= %d AND v <= %d ORDER BY k", rows-10, rows+100),
		"SELECT DISTINCT grp FROM events WHERE k < 500 ORDER BY grp",
	}
}

// S2Router runs the constraint-aware shard-router experiment:
//
//	(a) scaling: the same total data and the same routed range-aggregate
//	    workload at 1, 2, and 4 shards; shard-local scans shrink with the
//	    fleet, so routed throughput must grow >= 1.5x from 1 to 4;
//	(b) shard pruning: after ROUTER SYNC installs per-shard value-range
//	    characterizations (backed by shard-side soft CHECKs), a predicate
//	    on the tracked column that excludes every shard but one contacts
//	    exactly 1 of 4, with results hash-identical to the same query
//	    broadcast with pruning off;
//	(c) invalidation: a write violating a shard's characterization
//	    deactivates the backing constraint on the shard; the notice rides
//	    the write's response and retires the router's registry entry
//	    before the write returns, so the very next query sees the row.
//
// Every routed statement is replayed on a single-node twin engine and the
// result streams are FNV-64 hashed for parity.
func S2Router(cfg S2Config) (*Report, error) {
	rep := &Report{
		ID:     "S2",
		Title:  "constraint-aware sharded serving: router scaling, shard pruning, invalidation",
		Claim:  "per-shard soft-constraint characterizations prune whole shards the way zone maps prune pages (paper §4.1 violation handling extended across the wire), while partition routing yields data-parallel scaling",
		Header: []string{"phase", "config", "result", "detail"},
	}
	if len(cfg.Shards) == 0 || cfg.Shards[0] != 1 {
		return nil, fmt.Errorf("S2: cfg.Shards must start at 1, got %v", cfg.Shards)
	}

	// (a) scaling sweep. Same rows, same statements, bigger fleet.
	qps := map[int]float64{}
	for _, n := range cfg.Shards {
		f, err := s2NewFleet(n, cfg.Rows)
		if err != nil {
			return nil, fmt.Errorf("S2 fleet n=%d: %w", n, err)
		}
		r := rand.New(rand.NewSource(7))
		start := time.Now()
		for i := 0; i < cfg.Ops; i++ {
			if _, err := f.sess.Exec(context.Background(), s2RangeStmt(cfg.Rows, r)); err != nil {
				f.Close()
				return nil, fmt.Errorf("S2 scaling n=%d: %w", n, err)
			}
		}
		took := time.Since(start)
		qps[n] = float64(cfg.Ops) / took.Seconds()
		rep.AddRow("scaling", fmt.Sprintf("shards=%d rows=%d", n, cfg.Rows),
			fmt.Sprintf("%.0f stmt/s", qps[n]),
			fmt.Sprintf("%d routed range aggregates in %.2fs", cfg.Ops, took.Seconds()))

		// Parity on every fleet size: the routed stream hashes identically
		// to the single-node twin.
		hr, hs := fnv.New64a(), fnv.New64a()
		for _, q := range s2Parity(cfg.Rows) {
			res, err := f.sess.Exec(context.Background(), q)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("S2 parity router %q: %w", q, err)
			}
			hashResult(hr, res.Columns, res.Rows)
			sres, err := f.single.Exec(q)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("S2 parity single %q: %w", q, err)
			}
			hashResult(hs, sres.Columns, sres.Rows)
		}
		match := hr.Sum64() == hs.Sum64()
		rep.AddRow("parity", fmt.Sprintf("shards=%d", n), fmt.Sprintf("match=%v", match),
			fmt.Sprintf("%d mixed statements, FNV-64 vs single-node twin", len(s2Parity(cfg.Rows))))
		if !match {
			f.Close()
			return nil, fmt.Errorf("S2: routed results diverged from the single-node twin at n=%d", n)
		}
		if n != cfg.Shards[len(cfg.Shards)-1] {
			f.Close()
		} else {
			// The largest fleet carries the pruning and invalidation phases.
			defer f.Close()
			if err := s2PrunePhases(rep, f, cfg, n); err != nil {
				return nil, err
			}
		}
	}
	n1, nMax := cfg.Shards[0], cfg.Shards[len(cfg.Shards)-1]
	speedup := qps[nMax] / qps[n1]
	bar := "informational at smoke scale"
	if cfg.MinSpeedup > 0 {
		bar = fmt.Sprintf("bar: >= %.1fx (data-parallel shard-local scans)", cfg.MinSpeedup)
	}
	rep.AddRow("scaling", fmt.Sprintf("speedup %d->%d shards", n1, nMax),
		fmt.Sprintf("%.2fx", speedup), bar)
	if cfg.MinSpeedup > 0 && speedup < cfg.MinSpeedup {
		return nil, fmt.Errorf("S2: routed throughput speedup %d->%d shards is %.2fx, want >= %.1fx", n1, nMax, speedup, cfg.MinSpeedup)
	}
	return rep, nil
}

// s2PrunePhases runs phases (b) and (c) on the largest fleet.
func s2PrunePhases(rep *Report, f *s2Fleet, cfg S2Config, n int) error {
	ctx := context.Background()
	if _, err := f.sess.Exec(ctx, "ROUTER SYNC"); err != nil {
		return fmt.Errorf("S2 sync: %w", err)
	}
	// A band of the tracked (non-partition) column v that only the last
	// shard's synced range covers. With pruning on, the registry excludes
	// the other n-1 shards without contacting them.
	lo, hi := cfg.Rows-cfg.Rows/(2*n), cfg.Rows-1
	q := fmt.Sprintf("SELECT COUNT(*) AS n, SUM(v) AS s FROM events WHERE v >= %d AND v <= %d", lo, hi)

	before := f.r.ShardQueryCounts()
	pruned, err := f.sess.Exec(ctx, q)
	if err != nil {
		return fmt.Errorf("S2 pruned query: %w", err)
	}
	contacted := 0
	for i, c := range f.r.ShardQueryCounts() {
		if c > before[i] {
			contacted++
		}
	}
	if err := f.sess.Set("shard_prune", "off"); err != nil {
		return err
	}
	before = f.r.ShardQueryCounts()
	broadcast, err := f.sess.Exec(ctx, q)
	if err != nil {
		return fmt.Errorf("S2 broadcast query: %w", err)
	}
	bContacted := 0
	for i, c := range f.r.ShardQueryCounts() {
		if c > before[i] {
			bContacted++
		}
	}
	if err := f.sess.Set("shard_prune", "on"); err != nil {
		return err
	}
	hp, hb := fnv.New64a(), fnv.New64a()
	hashResult(hp, pruned.Columns, pruned.Rows)
	hashResult(hb, broadcast.Columns, broadcast.Rows)
	rep.AddRow("shard-prune", fmt.Sprintf("shards=%d v in [%d,%d]", n, lo, hi),
		fmt.Sprintf("contacted %d pruned vs %d broadcast", contacted, bContacted),
		fmt.Sprintf("hash match=%v", hp.Sum64() == hb.Sum64()))
	if contacted != 1 {
		return fmt.Errorf("S2: pruned query contacted %d shards, want exactly 1", contacted)
	}
	if bContacted != n {
		return fmt.Errorf("S2: broadcast query contacted %d shards, want %d", bContacted, n)
	}
	if hp.Sum64() != hb.Sum64() {
		return fmt.Errorf("S2: pruned and broadcast results diverged")
	}

	// (c) invalidation: write a row whose v violates shard 0's synced
	// range. The deactivation notice must retire the registry entry before
	// the write returns, and the next query must see the row.
	outside := cfg.Rows + 1000
	probe := fmt.Sprintf("SELECT COUNT(*) AS n FROM events WHERE v = %d", outside)
	res, err := f.sess.Exec(ctx, probe)
	if err != nil {
		return err
	}
	if res.Rows[0][0].Int() != 0 {
		return fmt.Errorf("S2: probe row exists before the violating write")
	}
	retiredBefore := f.r.Registry().Retired()
	// k=1 routes to shard 0; v far outside shard 0's synced v-range.
	if err := f.exec(fmt.Sprintf("INSERT INTO events VALUES (1, %d, 0)", outside)); err != nil {
		return err
	}
	retired := f.r.Registry().Retired() - retiredBefore
	res, err = f.sess.Exec(ctx, probe)
	if err != nil {
		return err
	}
	visible := res.Rows[0][0].Int() == 1
	rep.AddRow("invalidation", fmt.Sprintf("shards=%d violating write", n),
		fmt.Sprintf("retired=%d visible=%v", retired, visible),
		"deactivation notice rides the write's own response")
	if retired == 0 {
		return fmt.Errorf("S2: violating write retired no registry entries")
	}
	if !visible {
		return fmt.Errorf("S2: row invisible after invalidation (stale shard prune)")
	}
	return nil
}
