package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"softdb/internal/engine"
	"softdb/internal/exec"
	"softdb/internal/fault"
	"softdb/internal/server"
	"softdb/internal/types"
	"softdb/internal/workload"
)

// T1Config sizes the transaction experiment.
type T1Config struct {
	// Rows in the scanned table.
	Rows int
	// Clients per driver (readers and writers each get this many).
	Clients int
	// ReadOps is how many SELECTs each reader issues per phase.
	ReadOps int
	// SlowPageUs stalls every page read, making scans long enough that a
	// scan-holds-the-lock regression shows up as multi-x reader p99.
	SlowPageUs int
	// TxnOps is how many wire-transaction cycles each client runs.
	TxnOps int
}

// DefaultT1 is the scbench-scale configuration.
var DefaultT1 = T1Config{Rows: 6000, Clients: 8, ReadOps: 30, SlowPageUs: 200, TxnOps: 12}

// t1Server builds a served database: a scannable table plus artificial
// per-page read latency, so reader latency is dominated by time spent
// inside operator execution — exactly where a scan must not hold the
// engine's shared lock.
func t1Server(cfg T1Config) (*engine.Database, *server.Server, string, error) {
	db := engine.Open()
	db.NoIndexes = true
	if _, err := db.Exec("CREATE TABLE t (a INT NOT NULL, b INT, c INT)"); err != nil {
		return nil, nil, "", err
	}
	te, err := db.Catalog().Table("t")
	if err != nil {
		return nil, nil, "", err
	}
	for i := 0; i < cfg.Rows; i++ {
		if err := db.InsertRow(te, types.Row{
			types.NewInt(int64(i)), types.NewInt(int64(i + i%4)), types.NewInt(int64(i % 10)),
		}); err != nil {
			return nil, nil, "", err
		}
	}
	if _, err := db.Exec("ANALYZE t"); err != nil {
		return nil, nil, "", err
	}
	db.Fault = fault.New(fault.Config{SlowProb: 1, SlowDelay: time.Duration(cfg.SlowPageUs) * time.Microsecond})
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	addr, err := srv.Listen()
	if err != nil {
		return nil, nil, "", err
	}
	go srv.Serve()
	return db, srv, addr.String(), nil
}

func t1ReadStmt(rows int, r *rand.Rand) string {
	lo := r.Intn(rows - 60)
	return fmt.Sprintf("SELECT a, b, c FROM t WHERE a >= %d AND a <= %d", lo, lo+50)
}

// T1ReadLatencies measures reader latency twice over one served database:
// alone, then with a concurrent INSERT flood (50/50 connection mix). The
// ratio of the two p99s is the tentpole's headline number — before MVCC a
// writer serialized behind each materializing scan and every later reader
// queued behind the writer, so p99 under write load degraded multi-x.
func T1ReadLatencies(cfg T1Config) (ro, rw *workload.DriverReport, err error) {
	db, srv, addr, err := t1Server(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Fault = nil
	}()

	ro, err = workload.RunDriver(workload.DriverConfig{
		Addr: addr, Clients: cfg.Clients, OpsPerClient: cfg.ReadOps, Seed: 11,
		Statement: func(c, op int, r *rand.Rand) string { return t1ReadStmt(cfg.Rows, r) },
	})
	if err != nil {
		return nil, nil, err
	}

	// Writer flood: short insert-only driver runs, repeated until the
	// measured reader driver finishes. Inserts read no pages, so the
	// injected page latency leaves them fast — pure lock pressure.
	var stop atomic.Bool
	var inserted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; !stop.Load(); round++ {
			rep, werr := workload.RunDriver(workload.DriverConfig{
				Addr: addr, Clients: cfg.Clients, OpsPerClient: 25, Seed: int64(1000 + round),
				Statement: func(c, op int, r *rand.Rand) string {
					a := 10_000_000 + round*1_000_000 + c*10_000 + op
					return fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 0)", a, a+1)
				},
			})
			if werr != nil {
				return
			}
			inserted.Add(int64(rep.Requests))
		}
	}()
	rw, err = workload.RunDriver(workload.DriverConfig{
		Addr: addr, Clients: cfg.Clients, OpsPerClient: cfg.ReadOps, Seed: 12,
		Statement: func(c, op int, r *rand.Rand) string { return t1ReadStmt(cfg.Rows, r) },
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return nil, nil, err
	}
	if inserted.Load() == 0 {
		return nil, nil, fmt.Errorf("bench T1: writer flood inserted nothing; the mixed phase measured no contention")
	}
	return ro, rw, nil
}

// T1Txn is experiment T1: MVCC snapshot isolation under concurrent load.
//
//   - reader p99 with a 50/50 read/write connection mix stays within a
//     small factor of the read-only p99 (scans pin a snapshot and drop the
//     engine lock before materializing);
//   - multi-statement BEGIN/COMMIT/ROLLBACK cycles run over the wire
//     protocol, with rolled-back rows invisible afterwards;
//   - implicit writers racing on one row either win or lose with a typed
//     first-updater-wins conflict — never a silent lost update.
func T1Txn(cfg T1Config) (*Report, error) {
	rep := &Report{
		ID:     "T1",
		Title:  "transactions: snapshot readers under write load, wire-level txns",
		Claim:  "MVCC snapshot isolation keeps reader tail latency flat under a concurrent write flood, and wire-level transactions commit or vanish atomically",
		Header: []string{"measure", "config", "value", "detail"},
	}
	ro, rw, err := T1ReadLatencies(cfg)
	if err != nil {
		return nil, err
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }
	ratio := float64(rw.Accepted.P99) / float64(ro.Accepted.P99)
	rep.AddRow("read-p99", fmt.Sprintf("%d readers alone", cfg.Clients), ms(ro.Accepted.P99), ro.Accepted.String())
	rep.AddRow("read-p99", fmt.Sprintf("+%d-client insert flood", cfg.Clients), ms(rw.Accepted.P99),
		fmt.Sprintf("%.2fx read-only p99; %s", ratio, rw.Accepted.String()))

	// Wire transactions: each client runs BEGIN; 3 inserts; COMMIT or
	// ROLLBACK cycles; afterwards exactly the committed rows exist.
	db, srv, addr, err := t1Server(T1Config{Rows: 200, Clients: cfg.Clients})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	db.Fault = nil
	const cycle = 5 // BEGIN, INSERT x3, COMMIT|ROLLBACK
	txnRep, err := workload.RunDriver(workload.DriverConfig{
		Addr: addr, Clients: cfg.Clients, OpsPerClient: cfg.TxnOps * cycle, Seed: 21,
		Statement: func(c, op int, r *rand.Rand) string {
			switch op % cycle {
			case 0:
				return "BEGIN"
			case cycle - 1:
				if (op/cycle)%3 == 2 {
					return "ROLLBACK"
				}
				return "COMMIT"
			default:
				a := 1_000_000 + c*100_000 + op
				return fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 0)", a, a+1)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if len(txnRep.ErrKinds) > 0 {
		return nil, fmt.Errorf("bench T1: transaction cycles errored: %v", txnRep.ErrKinds)
	}
	perClient := cfg.TxnOps - (cfg.TxnOps+2)/3 // committed cycles
	wantRows := cfg.Clients * perClient * (cycle - 2)
	res, err := db.Exec("SELECT COUNT(*) AS n FROM t WHERE a >= 1000000")
	if err != nil {
		return nil, err
	}
	gotRows := int(res.Rows[0][0].Int())
	rep.AddRow("wire-txn", fmt.Sprintf("%d clients x %d cycles (1 in 3 rolls back)", cfg.Clients, cfg.TxnOps),
		fmt.Sprintf("%d rows", gotRows),
		fmt.Sprintf("want %d committed; match=%v; %.0f stmt/s", wantRows, gotRows == wantRows, txnRep.Throughput))
	if gotRows != wantRows {
		return nil, fmt.Errorf("bench T1: %d rows survived, want %d", gotRows, wantRows)
	}

	// Contention: implicit single-statement writers race on one row; every
	// loser gets the typed conflict, and the final value equals the number
	// of winners.
	if _, err := db.Exec("INSERT INTO t VALUES (-1, 0, 0)"); err != nil {
		return nil, err
	}
	conRep, err := workload.RunDriver(workload.DriverConfig{
		Addr: addr, Clients: cfg.Clients, OpsPerClient: cfg.TxnOps, Seed: 31,
		Statement: func(c, op int, r *rand.Rand) string {
			return "UPDATE t SET b = b + 1 WHERE a = -1"
		},
	})
	if err != nil {
		return nil, err
	}
	conflicts := conRep.ErrKinds[string(exec.KindConflict)]
	for kind, n := range conRep.ErrKinds {
		if kind != string(exec.KindConflict) {
			return nil, fmt.Errorf("bench T1: contention phase saw %d %q errors", n, kind)
		}
	}
	res, err = db.Exec("SELECT b FROM t WHERE a = -1")
	if err != nil {
		return nil, err
	}
	wins := int(res.Rows[0][0].Int())
	total := cfg.Clients * cfg.TxnOps
	rep.AddRow("contention", fmt.Sprintf("%d implicit updates, one row", total),
		fmt.Sprintf("%d won, %d conflicted", wins, conflicts),
		fmt.Sprintf("accounted=%v (first-updater-wins, no lost updates)", wins+conflicts == total))
	if wins+conflicts != total {
		return nil, fmt.Errorf("bench T1: %d wins + %d conflicts != %d statements", wins, conflicts, total)
	}
	rep.Notef("reads stalled %dµs/page; writer flood ran for the whole mixed read phase", cfg.SlowPageUs)
	return rep, nil
}
