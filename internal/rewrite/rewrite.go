package rewrite

import (
	"fmt"
	"math"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
	"softdb/internal/stats"
	"softdb/internal/types"
)

// Options toggles individual rules, for ablation benchmarks and tests.
type Options struct {
	NoJoinElim     bool // disable join elimination over RI ([6])
	NoPredIntro    bool // disable predicate introduction (checks + correlations)
	NoBranchPrune  bool // disable union-all branch elimination (§5)
	NoHoleTrim     bool // disable join-hole range trimming ([8])
	NoSortOpt      bool // disable FD-based sort/group simplification ([29])
	NoExceptionAST bool // disable the §4.4 exception-union rewrite
	NoSSCTwins     bool // disable §5.1 estimation-only twinned predicates
	NoASTRouting   bool // disable routing scans through matching ASTs (§4.4)
	NoPruneIntro   bool // disable planting prune-only predicates (zone-map pruning)

	// Masked, when non-empty, names one constraint, correlation, hole set,
	// or AST the rewriter must pretend does not exist. Shadow costing uses
	// it to price the plan the optimizer would have produced without that
	// one characterization; the masked plan is costed, never executed.
	Masked string
}

// masked reports whether name is hidden from this rewrite pass.
func (o Options) masked(name string) bool {
	return o.Masked != "" && strings.EqualFold(o.Masked, name)
}

// Rewriter applies semantic query optimization to logical plans. It may
// mutate the plan in place; callers build a fresh plan per query.
type Rewriter struct {
	Cat   *catalog.Catalog
	Opt   Options
	Trace []string
	// Events mirrors Trace in structured form: every soft-constraint
	// consultation, applied or rejected, with the constraint's name, mode,
	// and effective confidence.
	Events []obs.Event
}

// New returns a rewriter over the given catalog with all rules enabled.
func New(cat *catalog.Catalog) *Rewriter { return &Rewriter{Cat: cat} }

func (r *Rewriter) tracef(format string, args ...any) {
	r.Trace = append(r.Trace, fmt.Sprintf(format, args...))
}

func (r *Rewriter) event(e obs.Event) { r.Events = append(r.Events, e) }

// Rewrite applies all enabled rules and returns the (possibly replaced)
// plan root.
func (r *Rewriter) Rewrite(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Project:
		t.Input = r.Rewrite(t.Input)
		if jg, ok := t.Input.(*plan.JoinGroup); ok && !r.Opt.NoJoinElim {
			slots := make([]*expr.Expr, len(t.Exprs))
			for i := range t.Exprs {
				slots[i] = &t.Exprs[i]
			}
			r.eliminateJoins(jg, slots)
			t.Input = r.simplifyGroup(jg)
		}
		if isEmpty(t.Input) {
			return &plan.Empty{Schema: t.Cols(), Reason: reasonOf(t.Input)}
		}
		return t
	case *plan.Aggregate:
		t.Input = r.Rewrite(t.Input)
		if jg, ok := t.Input.(*plan.JoinGroup); ok && !r.Opt.NoJoinElim {
			var slots []*expr.Expr
			for i := range t.GroupBy {
				slots = append(slots, &t.GroupBy[i])
			}
			for i := range t.Aggs {
				if t.Aggs[i].Arg != nil {
					slots = append(slots, &t.Aggs[i].Arg)
				}
			}
			r.eliminateJoins(jg, slots)
			t.Input = r.simplifyGroup(jg)
		}
		if !r.Opt.NoSortOpt {
			r.reduceGroupBy(t)
		}
		return t
	case *plan.Sort:
		t.Input = r.Rewrite(t.Input)
		if !r.Opt.NoSortOpt {
			r.simplifySort(t)
		}
		return t
	case *plan.Filter:
		t.Input = r.Rewrite(t.Input)
		if isEmpty(t.Input) {
			return t.Input
		}
		return t
	case *plan.Distinct:
		t.Input = r.Rewrite(t.Input)
		return t
	case *plan.Limit:
		t.Input = r.Rewrite(t.Input)
		if isEmpty(t.Input) {
			return t.Input
		}
		return t
	case *plan.Derived:
		t.Input = r.Rewrite(t.Input)
		if isEmpty(t.Input) {
			return &plan.Empty{Schema: t.Cols(), Reason: reasonOf(t.Input)}
		}
		return t
	case *plan.UnionAll:
		var kept []plan.Node
		for _, arm := range t.Arms {
			na := r.Rewrite(arm)
			if isEmpty(na) {
				if !r.Opt.NoBranchPrune {
					t.Pruned = append(t.Pruned, reasonOf(na))
					r.tracef("branch-elimination: pruned union arm (%s)", reasonOf(na))
					r.event(obs.Event{Rule: "branch-elimination", Applied: true,
						Detail: "pruned union arm: " + reasonOf(na)})
					continue
				}
			}
			kept = append(kept, na)
		}
		switch len(kept) {
		case 0:
			return &plan.Empty{Schema: t.Cols(), Reason: "all union arms pruned"}
		case 1:
			if len(t.Pruned) > 0 {
				r.tracef("branch-elimination: union collapsed to a single arm")
			}
			return kept[0]
		default:
			t.Arms = kept
			return t
		}
	case *plan.JoinGroup:
		return r.rewriteJoinGroup(t)
	case *plan.Scan:
		return r.rewriteScan(t)
	default:
		return n
	}
}

func isEmpty(n plan.Node) bool {
	_, ok := n.(*plan.Empty)
	return ok
}

func reasonOf(n plan.Node) string {
	if e, ok := n.(*plan.Empty); ok {
		return e.Reason
	}
	return ""
}

// rewriteJoinGroup pushes conjuncts into union-backed sources, trims ranges
// by join holes, recurses into the inputs, and propagates emptiness.
func (r *Rewriter) rewriteJoinGroup(jg *plan.JoinGroup) plan.Node {
	// Single union-backed source: distribute conjuncts into the arms so
	// branch elimination can see them (§5).
	if len(jg.Tables) == 1 && len(jg.Conjuncts) > 0 {
		if pushed, ok := attachConjuncts(jg.Tables[0], jg.Conjuncts); ok {
			return r.Rewrite(pushed)
		}
	}
	if !r.Opt.NoHoleTrim {
		r.trimJoinHoles(jg)
	}
	for i, in := range jg.Tables {
		jg.Tables[i] = r.Rewrite(in)
	}
	for _, in := range jg.Tables {
		if isEmpty(in) {
			return &plan.Empty{Schema: jg.Cols(), Reason: reasonOf(in)}
		}
	}
	if len(jg.Tables) == 1 && len(jg.Conjuncts) == 0 {
		return jg.Tables[0]
	}
	return jg
}

// attachConjuncts pushes conjuncts (bound to n's output ordinals) inside n
// where that distributes over unions or lands on a scan filter. The second
// return is false when no structural push was possible.
func attachConjuncts(n plan.Node, conj []expr.Expr) (plan.Node, bool) {
	switch t := n.(type) {
	case *plan.Scan:
		t.Filter = append(t.Filter, conj...)
		return t, true
	case *plan.Derived:
		in, ok := attachConjuncts(t.Input, conj)
		if !ok {
			return n, false
		}
		t.Input = in
		return t, true
	case *plan.UnionAll:
		for i, arm := range t.Arms {
			// Each arm gets its own copy of the conjunct trees so later
			// per-arm rewrites do not alias.
			cloned := make([]expr.Expr, len(conj))
			for j, c := range conj {
				cloned[j] = expr.RemapColumns(c, map[int]int{}) // structural copy on write
			}
			na, ok := attachConjuncts(arm, cloned)
			if !ok {
				na = &plan.JoinGroup{Tables: []plan.Node{arm}, Conjuncts: cloned}
			}
			t.Arms[i] = na
		}
		return t, true
	case *plan.Project:
		// Push through a projection of plain columns.
		mapping := map[int]int{}
		for outIdx, e := range t.Exprs {
			c, ok := e.(*expr.Column)
			if !ok {
				return n, false
			}
			mapping[outIdx] = c.Index
		}
		remapped := make([]expr.Expr, len(conj))
		for i, c := range conj {
			remapped[i] = expr.RemapColumns(c, mapping)
		}
		in, ok := attachConjuncts(t.Input, remapped)
		if !ok {
			in = &plan.JoinGroup{Tables: []plan.Node{t.Input}, Conjuncts: remapped}
		}
		t.Input = in
		return t, true
	case *plan.JoinGroup:
		t.Conjuncts = append(t.Conjuncts, conj...)
		return t, true
	default:
		return n, false
	}
}

// --- scan-level rules ---

// bound couples a LinearBound with its originating catalog object.
type bound struct {
	LinearBound
	check *catalog.Constraint
	corr  *catalog.LinearCorrelation
}

// boundsFor lowers every applicable constraint and correlation on the
// scan's base table into linear bounds over the scan's local ordinals.
func (r *Rewriter) boundsFor(s *plan.Scan) []bound {
	if s.Entry == nil {
		return nil
	}
	var out []bound
	for _, con := range s.Entry.Constraints {
		if con.Kind != catalog.Check || r.Opt.masked(con.Name) {
			continue
		}
		if !con.Active {
			r.event(obs.Event{Rule: "bound-lowering", Constraint: con.Name,
				Mode: con.Mode.String(), Confidence: con.Confidence, Applied: false,
				Detail: "constraint deactivated by a violating write"})
			continue
		}
		for _, lb := range boundsFromCheck(con) {
			out = append(out, bound{LinearBound: lb, check: con})
		}
	}
	for _, lc := range r.Cat.Correlations(s.Table) {
		if r.Opt.masked(lc.Name) {
			continue
		}
		if !lc.Usable() {
			// §3.2: probationary SCs are maintained, not employed.
			r.event(obs.Event{Rule: "bound-lowering", Constraint: lc.Name,
				Mode: catalog.ModeSoftStatistical.String(), Confidence: lc.Confidence,
				Applied: false, Reason: "probation",
				Detail: "correlation on probation or dropped; maintained, not employed"})
			continue
		}
		aOrd := s.Def.ColumnIndex(lc.ColA)
		bOrd := s.Def.ColumnIndex(lc.ColB)
		if aOrd < 0 || bOrd < 0 {
			continue
		}
		lb := boundFromCorrelation(lc, aOrd, bOrd)
		if !lc.IsAbsolute() {
			lb.Mode = catalog.ModeSoftStatistical
		}
		out = append(out, bound{LinearBound: lb, corr: lc})
	}
	return out
}

// rewriteScan applies predicate folding, contradiction detection against
// check constraints (branch pruning), predicate introduction from absolute
// bounds, the exception-union rewrite, and SSC twin generation.
func (r *Rewriter) rewriteScan(s *plan.Scan) plan.Node {
	// Fold constants in filters.
	for i, f := range s.Filter {
		s.Filter[i] = expr.FoldConstants(f)
	}
	for _, f := range s.Filter {
		if expr.IsConstFalse(f) {
			return &plan.Empty{Schema: s.Cols(), Reason: "false predicate on " + s.Alias}
		}
	}
	// Per-column filter intervals; contradiction check.
	for ord := range s.Def.Columns {
		iv, _ := expr.ExtractInterval(s.Filter, ord)
		if iv.Empty() {
			return &plan.Empty{Schema: s.Cols(), Reason: fmt.Sprintf("contradictory range on %s.%s", s.Alias, s.Def.Columns[ord].Name)}
		}
	}
	if s.Entry == nil {
		return s // summary scans: no constraints of their own
	}
	// AST routing (§4.4): when the query's own predicates contain an AST's
	// defining predicate, every qualifying row lives in the AST, so the
	// (smaller) AST can be scanned instead of the base table. DB2 presents
	// the AST as a choice point for the cost-based optimizer; since the AST
	// holds a subset of the base rows, routing is never worse here.
	if !r.Opt.NoASTRouting {
		if routed := r.routeThroughAST(s); routed != nil {
			return routed
		}
	}
	bounds := r.boundsFor(s)
	// Branch pruning: a filter interval disjoint from a single-column
	// absolute bound proves the scan empty (§5's knock-out test).
	if !r.Opt.NoBranchPrune {
		for _, b := range bounds {
			if !b.singleColumn() || b.Confidence < 1 || !b.Mode.UsableInRewrite() {
				continue
			}
			kind := s.Def.Columns[b.ColA].Type
			biv, ok := b.singleColumnInterval(kind)
			if !ok {
				continue
			}
			fiv, _ := expr.ExtractInterval(s.Filter, b.ColA)
			if fiv.IsUnbounded() {
				continue
			}
			if fiv.Disjoint(biv) {
				r.event(obs.Event{Rule: "branch-elimination", Constraint: b.Source,
					Mode: b.Mode.String(), Confidence: b.Confidence, Applied: true,
					Detail:    fmt.Sprintf("%s contradicts bound on %s; scan proven empty", s.Alias, s.Def.Columns[b.ColA].Name),
					RowsSaved: float64(s.Entry.Heap.RowCount())})
				return &plan.Empty{
					Schema: s.Cols(),
					Reason: fmt.Sprintf("%s contradicts %s on %s", s.Alias, b.Source, s.Def.Columns[b.ColA].Name),
				}
			}
		}
	}
	// Predicate introduction / exception rewrite / SSC twins over
	// two-column bounds. Absolute bounds apply first (they add filters in
	// place) so that a later exception-union rewrite copies them into its
	// arms.
	ordered := make([]bound, 0, len(bounds))
	for _, b := range bounds {
		if !b.singleColumn() && b.Confidence >= 1 && b.Mode.UsableInRewrite() {
			ordered = append(ordered, b)
		}
	}
	for _, b := range bounds {
		if !b.singleColumn() && !(b.Confidence >= 1 && b.Mode.UsableInRewrite()) {
			ordered = append(ordered, b)
		}
	}
	for _, b := range ordered {
		for _, dir := range [2][2]int{{b.ColB, b.ColA}, {b.ColA, b.ColB}} {
			known, target := dir[0], dir[1]
			if node, changed := r.applyBound(s, b, known, target); changed {
				return node
			}
		}
	}
	return s
}

// applyBound tries to exploit one two-column bound in one direction. It
// returns (replacement, true) when the scan was replaced wholesale (the
// exception-union rewrite); in-place filter/twin additions return (s,
// false) so remaining bounds still apply.
func (r *Rewriter) applyBound(s *plan.Scan, b bound, known, target int) (plan.Node, bool) {
	fiv, _ := expr.ExtractInterval(s.Filter, known)
	if fiv.IsUnbounded() || fiv.Empty() {
		return s, false
	}
	fl, ok := toFloatInterval(fiv)
	if !ok {
		return s, false
	}
	derived, ok := b.deriveOther(known, fl)
	if !ok || (math.IsInf(derived.lo, -1) && math.IsInf(derived.hi, 1)) {
		return s, false
	}
	kind := s.Def.Columns[target].Type
	div, ok := floatToInterval(derived, kind, false)
	if !ok || div.IsUnbounded() {
		return s, false
	}
	// Only worthwhile when it tightens what the query already states.
	existing, _ := expr.ExtractInterval(s.Filter, target)
	if existing.CoveredBy(div) {
		return s, false
	}
	col := expr.NewColumn(s.Alias, s.Def.Columns[target].Name, target, kind)
	pred := expr.IntervalToPredicate(col, div)
	if pred == nil {
		return s, false
	}
	absolute := b.Confidence >= 1 && b.Mode.UsableInRewrite()
	indexHelps := s.Entry.IndexOn(target) != nil && s.Entry.IndexOn(known) == nil

	if absolute {
		if r.Opt.NoPredIntro || !indexHelps {
			if !r.Opt.NoPredIntro {
				// No index access path to gain — but the derived interval is
				// still sound, so plant it as a prune-only predicate: scans
				// skip heap pages whose synopsis cannot meet it.
				if r.plantPrunePred(s, b, target, div) {
					return s, false
				}
				r.event(obs.Event{Rule: "predicate-introduction", Constraint: b.Source,
					Mode: b.Mode.String(), Confidence: 1, Applied: false, Reason: "no-index",
					Detail: fmt.Sprintf("derived predicate on %s.%s gains no index access path", s.Alias, s.Def.Columns[target].Name)})
			}
			return s, false
		}
		for _, c := range expr.SplitConjuncts(pred) {
			if !expr.ContainsConjunct(s.Filter, c) {
				s.Filter = append(s.Filter, c)
			}
		}
		r.tracef("predicate-introduction: %s: added %s from %s", s.Alias, pred, b.Source)
		r.event(obs.Event{Rule: "predicate-introduction", Constraint: b.Source,
			Mode: b.Mode.String(), Confidence: 1, Applied: true,
			Detail: fmt.Sprintf("%s: added %s", s.Alias, pred)})
		return s, false
	}

	// Statistical bounds never prune: skipping pages drops rows for real,
	// and an effective confidence under the 1.0 floor admits exceptions
	// that could live anywhere. Record the refusal so the fallback to a
	// full (unpruned) scan is observable.
	if !r.Opt.NoPruneIntro {
		eff := b.Confidence
		if b.corr != nil && s.Entry != nil {
			eff = b.corr.EffectiveConfidence(s.Entry.Heap.RowCount())
		}
		r.event(obs.Event{Rule: "prune-introduction", Constraint: b.Source,
			Mode: b.Mode.String(), Confidence: eff, Applied: false, Reason: "below-floor",
			Detail: fmt.Sprintf("effective confidence %.3f below prune floor 1.0; %s.%s scan not pruned",
				eff, s.Alias, s.Def.Columns[target].Name)})
	}

	// Statistical bound. Prefer the exact §4.4 exception-union rewrite when
	// an exception AST is linked; otherwise fall back to a §5.1 twin.
	if !r.Opt.NoExceptionAST && b.check != nil && indexHelps {
		if ast, ok := r.Cat.ExceptionFor(b.check.Name); ok && ast.Base != "" && strings.EqualFold(ast.Base, s.Table) && !r.Opt.masked(ast.Name) {
			if rewritten, ok := r.exceptionUnion(s, b, pred, ast); ok {
				return rewritten, true
			}
		}
	}
	if !r.Opt.NoSSCTwins {
		ep := stats.EstimationPredicate{Pred: pred, Confidence: b.Confidence, Source: b.Source}
		for _, existing := range s.EstOnly {
			if expr.Equivalent(existing.Pred, ep.Pred) {
				return s, false
			}
		}
		s.EstOnly = append(s.EstOnly, ep)
		r.tracef("ssc-twin: %s: %s twinned with confidence %.3f from %s", s.Alias, pred, b.Confidence, b.Source)
		r.event(obs.Event{Rule: "ssc-twin", Constraint: b.Source,
			Mode: b.Mode.String(), Confidence: b.Confidence, Applied: true,
			Detail: fmt.Sprintf("%s: twinned %s for estimation only", s.Alias, pred)})
	}
	return s, false
}

// plantPrunePred attaches a prune-only predicate for the derived interval
// div on target. It fires only for absolute bounds and reports whether it
// planted (or an equivalent predicate already exists). NullsQualify is set:
// the bound says nothing about rows where either column is NULL, so a page
// holding NULLs in the target column can never be skipped by it.
func (r *Rewriter) plantPrunePred(s *plan.Scan, b bound, target int, div expr.Interval) bool {
	if r.Opt.NoPruneIntro || s.Summary != nil || s.Entry == nil {
		return false
	}
	for _, pp := range s.PrunePreds {
		if pp.Col == target && pp.Source == b.Source {
			return true
		}
	}
	s.PrunePreds = append(s.PrunePreds, plan.PrunePred{
		Col: target, Interval: div, NullsQualify: true,
		Source: b.Source, Check: pruneCheck(b),
	})
	// Deliberately no tracef: a prune-only predicate never makes the plan
	// depend on the constraint for correctness (the Check closure re-validates
	// at every scan), so it must not trigger the §4.1 trace-driven cache
	// machinery (ASCDynamicOnly, backup-plan compilation). Events record it.
	r.event(obs.Event{Rule: "prune-introduction", Constraint: b.Source,
		Mode: b.Mode.String(), Confidence: b.Confidence, Applied: true,
		Detail: fmt.Sprintf("%s: derived prune-only interval %s on %s (pages skippable via synopses)",
			s.Alias, div, s.Def.Columns[target].Name)})
	return true
}

// pruneCheck captures the bound's source object so the executor re-validates
// it at scan start: pruning must stop the moment the source is violated
// (deactivated), demoted to probation, or loses absoluteness — §4.1
// invalidation applied to derived prune predicates, not just plans.
// The closures run during operator execution, outside the engine's shared
// lock, so they take the catalog runtime read lock against commit hooks
// deactivating the source concurrently.
func pruneCheck(b bound) func() bool {
	switch {
	case b.corr != nil:
		lc := b.corr
		return func() bool {
			catalog.RuntimeRLock()
			defer catalog.RuntimeRUnlock()
			return lc.Usable() && lc.IsAbsolute()
		}
	case b.check != nil:
		con := b.check
		return func() bool {
			catalog.RuntimeRLock()
			defer catalog.RuntimeRUnlock()
			return con.Active && con.Confidence >= 1 && con.Mode.UsableInRewrite()
		}
	default:
		return nil
	}
}

// routeThroughAST returns a summary-table scan replacing s when some
// materialized AST's defining predicate is contained in s's filter
// conjuncts (so the AST provably holds every qualifying row), or nil.
func (r *Rewriter) routeThroughAST(s *plan.Scan) plan.Node {
	filterConjuncts := s.Filter
	var best *catalog.SummaryTable
	bestSize := int64(-1)
	for _, st := range r.Cat.SummariesOn(s.Table) {
		if st.Informational || st.Heap == nil || st.Where == nil || r.Opt.masked(st.Name) {
			continue
		}
		contained := true
		for _, c := range expr.SplitConjuncts(st.Where) {
			if !expr.ContainsConjunct(filterConjuncts, c) {
				contained = false
				break
			}
		}
		if !contained {
			continue
		}
		if bestSize < 0 || st.Heap.RowCount() < bestSize {
			best = st
			bestSize = st.Heap.RowCount()
		}
	}
	if best == nil {
		return nil
	}
	r.tracef("ast-routing: %s: routed through AST %s (%d of %d rows)",
		s.Alias, best.Name, best.Heap.RowCount(), s.Entry.Heap.RowCount())
	r.event(obs.Event{Rule: "ast-routing", Constraint: best.Name, Mode: "AST",
		Confidence: 1, Applied: true,
		Detail:    fmt.Sprintf("%s: scan routed to summary (%d of %d rows)", s.Alias, best.Heap.RowCount(), s.Entry.Heap.RowCount()),
		RowsSaved: float64(s.Entry.Heap.RowCount() - best.Heap.RowCount())})
	return &plan.Scan{
		Table: best.Name, Alias: s.Alias, Summary: best, Def: best.Def,
		Filter:  append([]expr.Expr(nil), s.Filter...),
		EstOnly: s.EstOnly,
	}
}

// exceptionUnion builds the §4.4 rewrite:
//
//	σ_F(T)  ≡  σ_{F ∧ C ∧ P}(T)  UNION ALL  σ_F(E)
//
// where C is the constraint statement, P the introduced predicate, and E
// the exception AST holding exactly the rows violating C. The two arms are
// disjoint because arm 1 keeps only C-satisfying rows and E holds only
// C-violating rows.
func (r *Rewriter) exceptionUnion(s *plan.Scan, b bound, pred expr.Expr, ast *catalog.SummaryTable) (plan.Node, bool) {
	if b.check.CheckExpr == nil {
		return nil, false
	}
	arm1 := &plan.Scan{
		Table: s.Table, Alias: s.Alias, Entry: s.Entry, Def: s.Def,
		Filter: append(append([]expr.Expr(nil), s.Filter...), b.check.CheckExpr),
	}
	for _, c := range expr.SplitConjuncts(pred) {
		if !expr.ContainsConjunct(arm1.Filter, c) {
			arm1.Filter = append(arm1.Filter, c)
		}
	}
	arm2 := &plan.Scan{
		Table: ast.Name, Alias: s.Alias, Summary: ast, Def: ast.Def,
		Filter: append([]expr.Expr(nil), s.Filter...),
	}
	r.tracef("exception-union: %s: routed through AST %s with %s (constraint %s)",
		s.Alias, ast.Name, pred, b.check.Name)
	r.event(obs.Event{Rule: "exception-union", Constraint: b.check.Name,
		Mode: b.Mode.String(), Confidence: b.Confidence, Applied: true,
		Detail: fmt.Sprintf("%s: exact rewrite via exception AST %s with %s", s.Alias, ast.Name, pred)})
	return &plan.UnionAll{Arms: []plan.Node{arm1, arm2}}, true
}

// constraintIntervalFor exposes the single-column absolute constraint
// interval on a column, used by the optimizer for bound tightening and by
// tests.
func ConstraintInterval(cat *catalog.Catalog, te *catalog.TableEntry, ord int, kind types.Kind) expr.Interval {
	iv := expr.Unbounded()
	for _, con := range te.Constraints {
		if con.Kind != catalog.Check || !con.Active || con.Confidence < 1 || !con.Mode.UsableInRewrite() {
			continue
		}
		for _, lb := range boundsFromCheck(con) {
			if !lb.singleColumn() || lb.ColA != ord {
				continue
			}
			if biv, ok := lb.singleColumnInterval(kind); ok {
				iv = iv.Intersect(biv)
			}
		}
	}
	return iv
}
