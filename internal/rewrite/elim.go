package rewrite

import (
	"fmt"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
)

// eliminateJoins removes joined tables that provably contribute nothing
// beyond their join key — the paper's [6] join elimination over referential
// integrity. A parent (referenced) table P joined from child C over a
// foreign key can be dropped when:
//
//   - the only conjuncts touching P are the FK equi-join predicates,
//   - the FK's referenced columns are a unique key of P (so the join is
//     at most 1:1 from C's perspective),
//   - the FK constraint is active and usable in rewrite (enforced,
//     informational, or absolute soft),
//   - every P column the consumer uses is a referenced key column (each is
//     then replaced by the child's FK column), and
//   - the child FK columns are NOT NULL, or an IS NOT NULL filter is added
//     (inner-join semantics drop unmatched child rows).
//
// slots are pointers to every consumer expression bound to the group's
// output; they are remapped in place when a table is removed.
func (r *Rewriter) eliminateJoins(jg *plan.JoinGroup, slots []*expr.Expr) {
	for {
		if !r.eliminateOneJoin(jg, slots) {
			return
		}
	}
}

func (r *Rewriter) eliminateOneJoin(jg *plan.JoinGroup, slots []*expr.Expr) bool {
	if len(jg.Tables) < 2 {
		return false
	}
	required := map[int]bool{}
	for _, s := range slots {
		for _, ord := range expr.ColumnIndexes(*s) {
			required[ord] = true
		}
	}
	for p := range jg.Tables {
		parent, ok := jg.Tables[p].(*plan.Scan)
		if !ok || parent.Entry == nil || len(parent.Filter) > 0 || len(parent.EstOnly) > 0 {
			continue
		}
		if r.tryEliminateParent(jg, slots, required, p, parent) {
			return true
		}
	}
	return false
}

func (r *Rewriter) tryEliminateParent(jg *plan.JoinGroup, slots []*expr.Expr, required map[int]bool, p int, parent *plan.Scan) bool {
	offP := jg.Offset(p)
	nP := len(parent.Def.Columns)
	inP := func(ord int) bool { return ord >= offP && ord < offP+nP }

	// Collect the equi-join pairs touching P; any other conjunct touching P
	// disqualifies it.
	var pairs []joinPair
	var joinConjIdx []int
	childIdx := -1
	for ci, c := range jg.Conjuncts {
		ords := expr.ColumnIndexes(c)
		touches := false
		for _, o := range ords {
			if inP(o) {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			return false
		}
		lc, lok := b.L.(*expr.Column)
		rc, rok := b.R.(*expr.Column)
		if !lok || !rok {
			return false
		}
		var childOrd, parentOrd int
		switch {
		case inP(lc.Index) && !inP(rc.Index):
			parentOrd, childOrd = lc.Index, rc.Index
		case inP(rc.Index) && !inP(lc.Index):
			parentOrd, childOrd = rc.Index, lc.Index
		default:
			return false
		}
		// Identify the child table; all pairs must come from one child.
		ti := tableOf(jg, childOrd)
		if childIdx < 0 {
			childIdx = ti
		} else if childIdx != ti {
			return false
		}
		pairs = append(pairs, joinPair{childOrd: childOrd, parentOrd: parentOrd})
		joinConjIdx = append(joinConjIdx, ci)
	}
	if len(pairs) == 0 || childIdx < 0 {
		return false
	}
	child, ok := jg.Tables[childIdx].(*plan.Scan)
	if !ok || child.Entry == nil {
		return false
	}
	offC := jg.Offset(childIdx)

	// Find a matching FK on the child.
	var fk *catalog.Constraint
	for _, con := range child.Entry.Constraints {
		if con.Kind != catalog.ForeignKey || !con.Active || !con.Mode.UsableInRewrite() || r.Opt.masked(con.Name) {
			continue
		}
		if !strings.EqualFold(con.RefTable, parent.Table) {
			continue
		}
		if matchFKPairs(con, child, parent, offC, offP, pairs) {
			fk = con
			break
		}
	}
	if fk == nil {
		return false
	}
	// Referenced columns must be a unique key of the parent.
	hasKey := false
	for _, con := range parent.Entry.Constraints {
		if con.IsKeyOver(fk.RefColumns) && con.Mode.UsableInRewrite() {
			hasKey = true
			break
		}
	}
	if !hasKey {
		return false
	}
	// Every required parent column must be one of the joined key columns.
	redirect := map[int]int{} // parent global ordinal -> child global ordinal
	for _, pr := range pairs {
		redirect[pr.parentOrd] = pr.childOrd
	}
	for ord := range required {
		if inP(ord) {
			if _, ok := redirect[ord]; !ok {
				return false
			}
		}
	}
	// NOT NULL guard on nullable FK columns.
	for _, colName := range fk.Columns {
		ci := child.Def.ColumnIndex(colName)
		if ci >= 0 && child.Def.Columns[ci].Nullable {
			guard := expr.NewUnary(expr.OpIsNotNull,
				expr.NewColumn(child.Alias, child.Def.Columns[ci].Name, ci, child.Def.Columns[ci].Type))
			if !expr.ContainsConjunct(child.Filter, guard) {
				child.Filter = append(child.Filter, guard)
			}
		}
	}

	// Build the full remap: parent ordinals route to the child's FK column,
	// everything after the parent shifts down.
	mapping := map[int]int{}
	shift := func(ord int) int {
		if ord >= offP+nP {
			return ord - nP
		}
		return ord
	}
	total := len(jg.Cols())
	for ord := 0; ord < total; ord++ {
		if inP(ord) {
			if child, ok := redirect[ord]; ok {
				mapping[ord] = shift(child)
			}
			continue
		}
		mapping[ord] = shift(ord)
	}
	// Drop the join conjuncts; remap the rest.
	dropped := map[int]bool{}
	for _, ci := range joinConjIdx {
		dropped[ci] = true
	}
	var kept []expr.Expr
	for ci, c := range jg.Conjuncts {
		if dropped[ci] {
			continue
		}
		kept = append(kept, expr.RemapColumns(c, mapping))
	}
	jg.Conjuncts = kept
	jg.Tables = append(jg.Tables[:p:p], jg.Tables[p+1:]...)
	for _, s := range slots {
		*s = expr.RemapColumns(*s, mapping)
	}
	r.tracef("join-elimination: removed %s (FK %s from %s)", parent.Alias, fk.Name, child.Alias)
	r.event(obs.Event{Rule: "join-elimination", Constraint: fk.Name,
		Mode: fk.Mode.String(), Confidence: fk.Confidence, Applied: true,
		Detail:    fmt.Sprintf("removed %s (referential integrity from %s)", parent.Alias, child.Alias),
		RowsSaved: float64(parent.Entry.Heap.RowCount())})
	return true
}

// matchFKPairs checks the collected equi-join pairs are exactly the FK's
// column pairs.
func matchFKPairs(fk *catalog.Constraint, child, parent *plan.Scan, offC, offP int, pairs []joinPair) bool {
	if len(pairs) != len(fk.Columns) {
		return false
	}
	want := map[[2]int]bool{}
	for i, colName := range fk.Columns {
		ci := child.Def.ColumnIndex(colName)
		pi := parent.Def.ColumnIndex(fk.RefColumns[i])
		if ci < 0 || pi < 0 {
			return false
		}
		want[[2]int{offC + ci, offP + pi}] = true
	}
	for _, pr := range pairs {
		if !want[[2]int{pr.childOrd, pr.parentOrd}] {
			return false
		}
	}
	return true
}

// joinPair is one FK equi-join column pair in global ordinals.
type joinPair struct{ childOrd, parentOrd int }

// tableOf returns the index of the group input owning the global ordinal.
func tableOf(jg *plan.JoinGroup, ord int) int {
	off := 0
	for i, t := range jg.Tables {
		n := len(t.Cols())
		if ord >= off && ord < off+n {
			return i
		}
		off += n
	}
	return -1
}

// simplifyGroup collapses a single-input, conjunct-free group.
func (r *Rewriter) simplifyGroup(jg *plan.JoinGroup) plan.Node {
	if len(jg.Tables) == 1 && len(jg.Conjuncts) == 0 {
		return jg.Tables[0]
	}
	return jg
}
