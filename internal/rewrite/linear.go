// Package rewrite implements softdb's semantic query optimization: the
// constraint-driven plan transformations the paper describes. Rules include
// predicate introduction from check constraints and mined linear
// correlations ([10], §3.3), the §4.4 exception-union rewrite over ASTs,
// §5's union-all branch elimination, join elimination over referential
// integrity ([6]), §2 [8]'s join-hole range trimming, FD-based ORDER BY /
// GROUP BY simplification ([29]), and §5.1's twinned estimation-only
// predicates for SSCs.
package rewrite

import (
	"fmt"
	"math"
	"sort"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/types"
)

func sortInts(s []int) { sort.Ints(s) }

// LinearForm is a linear combination of column ordinals plus a constant:
// sum(Coeffs[i] * col_i) + Const. It is the normal form constraint
// predicates are analyzed in.
type LinearForm struct {
	Coeffs map[int]float64
	Const  float64
}

func (f LinearForm) clone() LinearForm {
	c := LinearForm{Coeffs: make(map[int]float64, len(f.Coeffs)), Const: f.Const}
	for k, v := range f.Coeffs {
		c.Coeffs[k] = v
	}
	return c
}

func (f *LinearForm) addScaled(o LinearForm, scale float64) {
	for k, v := range o.Coeffs {
		f.Coeffs[k] += v * scale
		if f.Coeffs[k] == 0 {
			delete(f.Coeffs, k)
		}
	}
	f.Const += o.Const * scale
}

// ExtractLinearForm decomposes e into a linear form over column ordinals.
// It supports +, -, unary -, and multiplication/division by constants;
// anything else fails.
func ExtractLinearForm(e expr.Expr) (LinearForm, bool) {
	switch n := e.(type) {
	case *expr.Const:
		if !n.Value.IsNumeric() {
			return LinearForm{}, false
		}
		return LinearForm{Coeffs: map[int]float64{}, Const: n.Value.Float()}, true
	case *expr.Column:
		return LinearForm{Coeffs: map[int]float64{n.Index: 1}}, true
	case *expr.Unary:
		if n.Op != expr.OpNeg {
			return LinearForm{}, false
		}
		f, ok := ExtractLinearForm(n.X)
		if !ok {
			return LinearForm{}, false
		}
		out := LinearForm{Coeffs: map[int]float64{}}
		out.addScaled(f, -1)
		return out, true
	case *expr.Binary:
		switch n.Op {
		case expr.OpAdd, expr.OpSub:
			l, ok := ExtractLinearForm(n.L)
			if !ok {
				return LinearForm{}, false
			}
			r, ok := ExtractLinearForm(n.R)
			if !ok {
				return LinearForm{}, false
			}
			out := l.clone()
			if out.Coeffs == nil {
				out.Coeffs = map[int]float64{}
			}
			scale := 1.0
			if n.Op == expr.OpSub {
				scale = -1
			}
			out.addScaled(r, scale)
			return out, true
		case expr.OpMul:
			l, lok := ExtractLinearForm(n.L)
			r, rok := ExtractLinearForm(n.R)
			if !lok || !rok {
				return LinearForm{}, false
			}
			switch {
			case len(l.Coeffs) == 0:
				out := LinearForm{Coeffs: map[int]float64{}}
				out.addScaled(r, l.Const)
				return out, true
			case len(r.Coeffs) == 0:
				out := LinearForm{Coeffs: map[int]float64{}}
				out.addScaled(l, r.Const)
				return out, true
			default:
				return LinearForm{}, false
			}
		case expr.OpDiv:
			l, lok := ExtractLinearForm(n.L)
			r, rok := ExtractLinearForm(n.R)
			if !lok || !rok || len(r.Coeffs) != 0 || r.Const == 0 {
				return LinearForm{}, false
			}
			out := LinearForm{Coeffs: map[int]float64{}}
			out.addScaled(l, 1/r.Const)
			return out, true
		}
	}
	return LinearForm{}, false
}

// LinearBound is a normalized constraint statement over one table:
//
//	Lo <= colA - K*colB <= Hi        (two-column form, ColB >= 0)
//	Lo <= colA          <= Hi        (single-column form, ColB < 0)
//
// with the given Confidence (1 for ASCs/ICs). All predicate-introduction and
// branch-pruning rules work from this normal form; both check constraints
// and mined linear correlations lower into it.
type LinearBound struct {
	ColA       int
	ColB       int // -1 for single-column bounds
	K          float64
	Lo, Hi     float64 // ±Inf when unbounded
	Confidence float64
	Mode       catalog.Mode
	Source     string // constraint or correlation name
}

// singleColumn reports whether the bound constrains one column only.
func (lb LinearBound) singleColumn() bool { return lb.ColB < 0 }

// String renders the bound.
func (lb LinearBound) String() string {
	if lb.singleColumn() {
		return fmt.Sprintf("%s: col%d in [%g, %g] @%.3f", lb.Source, lb.ColA, lb.Lo, lb.Hi, lb.Confidence)
	}
	return fmt.Sprintf("%s: col%d - %g*col%d in [%g, %g] @%.3f", lb.Source, lb.ColA, lb.K, lb.ColB, lb.Lo, lb.Hi, lb.Confidence)
}

// boundsFromCheck lowers a check constraint's conjuncts into linear bounds.
// Each conjunct of a supported shape yields one bound; unsupported
// conjuncts are skipped (the constraint is then only partially exploited,
// which is safe).
func boundsFromCheck(con *catalog.Constraint) []LinearBound {
	if con.CheckExpr == nil || !con.Active {
		return nil
	}
	var out []LinearBound
	for _, c := range expr.SplitConjuncts(con.CheckExpr) {
		b, ok := boundFromComparison(c)
		if !ok {
			continue
		}
		b.Confidence = con.Confidence
		b.Mode = con.Mode
		b.Source = con.Name
		out = append(out, b)
	}
	return out
}

// boundFromComparison normalizes a single comparison into a LinearBound.
func boundFromComparison(e expr.Expr) (LinearBound, bool) {
	b, ok := e.(*expr.Binary)
	if !ok || !b.Op.IsComparison() || b.Op == expr.OpNe {
		return LinearBound{}, false
	}
	l, lok := ExtractLinearForm(b.L)
	if !lok {
		return LinearBound{}, false
	}
	r, rok := ExtractLinearForm(b.R)
	if !rok {
		return LinearBound{}, false
	}
	// Move everything left: form op 0.
	form := l.clone()
	if form.Coeffs == nil {
		form.Coeffs = map[int]float64{}
	}
	form.addScaled(r, -1)
	cols := make([]int, 0, len(form.Coeffs))
	for k := range form.Coeffs {
		cols = append(cols, k)
	}
	if len(cols) == 0 || len(cols) > 2 {
		return LinearBound{}, false
	}
	sortInts(cols)
	// Normalize on A = the lowest-ordinal column; sign handling below makes
	// the choice arbitrary.
	a := cols[0]
	ca := form.Coeffs[a]
	if ca == 0 {
		return LinearBound{}, false
	}
	// Normalize: divide by ca so A's coefficient is 1; flip op if ca < 0.
	op := b.Op
	if ca < 0 {
		op = op.Swap()
	}
	constTerm := form.Const / ca
	lb := LinearBound{ColA: a, ColB: -1, Lo: math.Inf(-1), Hi: math.Inf(1)}
	if len(cols) == 2 {
		other := cols[0]
		if other == a {
			other = cols[1]
		}
		lb.ColB = other
		lb.K = -form.Coeffs[other] / ca
	}
	// Now: colA - K*colB + constTerm op 0, i.e. (colA - K*colB) op -constTerm.
	bound := -constTerm
	switch op {
	case expr.OpEq:
		lb.Lo, lb.Hi = bound, bound
	case expr.OpLe, expr.OpLt:
		lb.Hi = bound
	case expr.OpGe, expr.OpGt:
		lb.Lo = bound
	default:
		return LinearBound{}, false
	}
	return lb, true
}

// boundFromCorrelation lowers a mined linear correlation (A = K*B + B0 ± Eps)
// into a LinearBound: A - K*B ∈ [B0-Eps, B0+Eps].
func boundFromCorrelation(lc *catalog.LinearCorrelation, aOrd, bOrd int) LinearBound {
	return LinearBound{
		ColA:       aOrd,
		ColB:       bOrd,
		K:          lc.K,
		Lo:         lc.B0 - lc.Eps,
		Hi:         lc.B0 + lc.Eps,
		Confidence: lc.Confidence,
		Mode:       catalog.ModeSoftAbsolute,
		Source:     lc.Name,
	}
}

// floatInterval is an interval over float64 used during derivation.
type floatInterval struct {
	lo, hi float64 // ±Inf when unbounded
}

func toFloatInterval(iv expr.Interval) (floatInterval, bool) {
	out := floatInterval{lo: math.Inf(-1), hi: math.Inf(1)}
	if iv.Empty() {
		return out, false
	}
	if iv.HasLo {
		if !iv.Lo.IsNumeric() {
			return out, false
		}
		out.lo = iv.Lo.Float()
	}
	if iv.HasHi {
		if !iv.Hi.IsNumeric() {
			return out, false
		}
		out.hi = iv.Hi.Float()
	}
	return out, true
}

// deriveOther computes the implied interval on the *other* column of lb
// given a filter interval on one column. known names which column the
// filter is on. Returns false when nothing is implied.
func (lb LinearBound) deriveOther(known int, iv floatInterval) (floatInterval, bool) {
	if lb.singleColumn() {
		return floatInterval{}, false
	}
	switch known {
	case lb.ColB:
		// A ∈ [K*b + Lo, K*b + Hi] over b in iv.
		klo, khi := scaleInterval(lb.K, iv)
		return floatInterval{lo: klo + lb.Lo, hi: khi + lb.Hi}, true
	case lb.ColA:
		// K*B ∈ [a - Hi, a - Lo] over a in iv; then divide by K.
		num := floatInterval{lo: iv.lo - lb.Hi, hi: iv.hi - lb.Lo}
		if lb.K == 0 {
			return floatInterval{}, false
		}
		lo, hi := num.lo/lb.K, num.hi/lb.K
		if lb.K < 0 {
			lo, hi = hi, lo
		}
		return floatInterval{lo: lo, hi: hi}, true
	default:
		return floatInterval{}, false
	}
}

// scaleInterval returns [k*lo, k*hi] with ends swapped for negative k.
func scaleInterval(k float64, iv floatInterval) (float64, float64) {
	lo, hi := k*iv.lo, k*iv.hi
	if k < 0 {
		lo, hi = hi, lo
	}
	// 0 * Inf is NaN; a zero coefficient collapses the interval to 0.
	if k == 0 {
		return 0, 0
	}
	return lo, hi
}

// singleColumnInterval converts a single-column bound into an expr.Interval
// over the column's kind.
func (lb LinearBound) singleColumnInterval(kind types.Kind) (expr.Interval, bool) {
	if !lb.singleColumn() {
		return expr.Interval{}, false
	}
	return floatToInterval(floatInterval{lo: lb.Lo, hi: lb.Hi}, kind, false)
}

// floatToInterval converts a float interval to a datum interval of the
// given kind. For integer kinds the bounds round conservatively *outward*
// (floor the lower bound, ceil the upper) so the resulting predicate is
// implied by, never stronger than, the float statement. When tighten is
// true it instead rounds inward (used when intersecting for emptiness
// proofs must stay conservative the other way).
func floatToInterval(iv floatInterval, kind types.Kind, tighten bool) (expr.Interval, bool) {
	out := expr.Unbounded()
	mk := func(f float64) types.Datum {
		switch kind {
		case types.KindInt:
			return types.NewInt(int64(f))
		case types.KindDate:
			return types.NewDate(int64(f))
		default:
			return types.NewFloat(f)
		}
	}
	intKind := kind == types.KindInt || kind == types.KindDate
	if !math.IsInf(iv.lo, -1) {
		lo := iv.lo
		if intKind {
			if tighten {
				lo = math.Ceil(lo)
			} else {
				lo = math.Floor(lo)
			}
		}
		out = out.Intersect(expr.AtLeast(mk(lo), true))
	}
	if !math.IsInf(iv.hi, 1) {
		hi := iv.hi
		if intKind {
			if tighten {
				hi = math.Floor(hi)
			} else {
				hi = math.Ceil(hi)
			}
		}
		out = out.Intersect(expr.AtMost(mk(hi), true))
	}
	if iv.lo > iv.hi {
		return expr.Interval{ExactEmpty: true}, true
	}
	return out, true
}
