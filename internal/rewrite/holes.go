package rewrite

import (
	"fmt"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
)

// trimJoinHoles applies §2 [8]'s optimization: for an equi-join with a
// registered hole set over profiled attributes (A on the left table, B on
// the right), the query's range condition on A can be tightened by every
// hole whose B-extent covers the query's whole B range (values of A inside
// such a hole can produce no join results), and symmetrically for B. The
// trim happens on the scan filters, cutting pages before the join runs.
func (r *Rewriter) trimJoinHoles(jg *plan.JoinGroup) {
	for _, c := range jg.Conjuncts {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		lc, lok := b.L.(*expr.Column)
		rc, rok := b.R.(*expr.Column)
		if !lok || !rok {
			continue
		}
		li, ri := tableOf(jg, lc.Index), tableOf(jg, rc.Index)
		if li < 0 || ri < 0 || li == ri {
			continue
		}
		ls, lIsScan := jg.Tables[li].(*plan.Scan)
		rs, rIsScan := jg.Tables[ri].(*plan.Scan)
		if !lIsScan || !rIsScan || ls.Entry == nil || rs.Entry == nil {
			continue
		}
		lCol := ls.Def.Columns[lc.Index-jg.Offset(li)].Name
		rCol := rs.Def.Columns[rc.Index-jg.Offset(ri)].Name
		holes, swapped := r.Cat.JoinHolesFor(ls.Table, lCol, rs.Table, rCol)
		if holes == nil || len(holes.Holes) == 0 || r.Opt.masked(holes.Name) {
			continue
		}
		// Orient: "left" in the hole record vs. in this query.
		leftScan, rightScan := ls, rs
		if swapped {
			leftScan, rightScan = rs, ls
		}
		aOrd := leftScan.Def.ColumnIndex(holes.AttrLeft)
		bOrd := rightScan.Def.ColumnIndex(holes.AttrRight)
		if aOrd < 0 || bOrd < 0 {
			continue
		}
		r.trimScanPair(leftScan, aOrd, rightScan, bOrd, holes)
	}
}

// trimScanPair iterates hole-based tightening to a fixpoint, then plants
// prune-only predicates for interior holes the trim could not exploit.
func (r *Rewriter) trimScanPair(ls *plan.Scan, aOrd int, rs *plan.Scan, bOrd int, holes *catalog.JoinHoles) {
	source, rects := holes.Name, holes.Holes
	// Normalize filters into flat conjunct lists first.
	ls.Filter = expr.SplitConjuncts(expr.And(ls.Filter...))
	rs.Filter = expr.SplitConjuncts(expr.And(rs.Filter...))
	for pass := 0; pass < 4; pass++ {
		ia, _ := expr.ExtractInterval(ls.Filter, aOrd)
		ib, _ := expr.ExtractInterval(rs.Filter, bOrd)
		changed := false
		for _, h := range rects {
			// A-side trim: the hole's B extent must cover the whole B range
			// the query admits.
			if !ib.IsUnbounded() && ib.CoveredBy(h.B) {
				if trimmed, ok := ia.Subtract(h.A); ok && trimmed.String() != ia.String() {
					ia = trimmed
					changed = true
				}
			}
			if !ia.IsUnbounded() && ia.CoveredBy(h.A) {
				if trimmed, ok := ib.Subtract(h.B); ok && trimmed.String() != ib.String() {
					ib = trimmed
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		r.replaceInterval(ls, aOrd, ia)
		r.replaceInterval(rs, bOrd, ib)
		r.tracef("hole-trim: %s: %s.%s to %s, %s.%s to %s",
			source, ls.Alias, ls.Def.Columns[aOrd].Name, ia, rs.Alias, rs.Def.Columns[bOrd].Name, ib)
		r.event(obs.Event{Rule: "hole-trim", Constraint: source,
			Mode: "JOIN HOLES", Confidence: 1, Applied: true,
			Detail: fmt.Sprintf("%s.%s to %s, %s.%s to %s",
				ls.Alias, ls.Def.Columns[aOrd].Name, ia, rs.Alias, rs.Def.Columns[bOrd].Name, ib)})
	}
	if r.Opt.NoPruneIntro {
		return
	}
	// Interior holes: Subtract can only cut the ends of a range, but a hole
	// strictly inside the remaining query range still proves that rows with
	// the attribute inside it produce no join result (the hole's other-side
	// extent covers the whole other-side query range). Those rows cannot be
	// filtered away as a range predicate — the range would split — but the
	// pages holding only them can be skipped wholesale.
	ia, _ := expr.ExtractInterval(ls.Filter, aOrd)
	ib, _ := expr.ExtractInterval(rs.Filter, bOrd)
	for _, h := range rects {
		if !ib.IsUnbounded() && ib.CoveredBy(h.B) && !ia.Disjoint(h.A) {
			r.plantHolePrune(ls, aOrd, holes, h, h.A)
		}
		if !ia.IsUnbounded() && ia.CoveredBy(h.A) && !ib.Disjoint(h.B) {
			r.plantHolePrune(rs, bOrd, holes, h, h.B)
		}
	}
}

// plantHolePrune attaches an exclusion prune predicate: pages whose values
// of column ord all lie inside iv (an interior hole's extent) are skipped.
// The runtime check re-verifies the hole survives — §4.3's hole retirement
// must stop derived pruning exactly as it invalidates plans.
func (r *Rewriter) plantHolePrune(s *plan.Scan, ord int, holes *catalog.JoinHoles, h catalog.Rect, iv expr.Interval) {
	for _, pp := range s.PrunePreds {
		if pp.Col == ord && pp.Exclude && pp.Interval.String() == iv.String() {
			return
		}
	}
	s.PrunePreds = append(s.PrunePreds, plan.PrunePred{
		Col: ord, Interval: iv, Exclude: true,
		Source: holes.Name, Check: holeCheck(holes, h),
	})
	// No tracef — prune-only predicates self-invalidate via Check, so they
	// must not engage the §4.1 trace-driven cache machinery. Events record it.
	r.event(obs.Event{Rule: "prune-introduction", Constraint: holes.Name,
		Mode: "JOIN HOLES", Confidence: 1, Applied: true,
		Detail: fmt.Sprintf("%s: pages with %s entirely inside %s skippable (interior hole)",
			s.Alias, s.Def.Columns[ord].Name, iv)})
}

// holeCheck reports whether the specific hole rectangle is still registered
// and the hole set active; retired holes (violating writes) disable the
// derived predicate immediately, even on cached plans.
// The closure runs during operator execution, outside the engine's shared
// lock, so it takes the catalog runtime read lock against commit hooks
// retiring holes concurrently.
func holeCheck(holes *catalog.JoinHoles, h catalog.Rect) func() bool {
	a, b := h.A.String(), h.B.String()
	return func() bool {
		catalog.RuntimeRLock()
		defer catalog.RuntimeRUnlock()
		if !holes.Active {
			return false
		}
		for _, cur := range holes.Holes {
			if cur.A.String() == a && cur.B.String() == b {
				return true
			}
		}
		return false
	}
}

// replaceInterval rewrites the scan's filter so its interval on the column
// becomes iv (other conjuncts are preserved).
func (r *Rewriter) replaceInterval(s *plan.Scan, ord int, iv expr.Interval) {
	_, rest := expr.ExtractInterval(s.Filter, ord)
	col := expr.NewColumn(s.Alias, s.Def.Columns[ord].Name, ord, s.Def.Columns[ord].Type)
	if p := expr.IntervalToPredicate(col, iv); p != nil {
		rest = append(rest, expr.SplitConjuncts(p)...)
	}
	s.Filter = rest
}
