package rewrite

import (
	"fmt"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/obs"
	"softdb/internal/plan"
)

// simplifySort applies §2 [29]'s FD-based order optimization:
//
//  1. keys whose column is pinned to a single constant by a filter below
//     are dropped (every row agrees on them);
//  2. a key functionally determined by the keys before it (within the same
//     table binding, using declared and mined FDs plus unique keys) is
//     superfluous and dropped;
//  3. when every key is dropped the sort itself is eliminated.
func (r *Rewriter) simplifySort(s *plan.Sort) {
	cols := s.Input.Cols()
	scans := collectScans(s.Input)
	var kept []plan.SortKey
	var prefix []plan.ColumnInfo
	for _, k := range s.Keys {
		ci := cols[k.Ordinal]
		if ci.SourceTable == "" {
			kept = append(kept, k)
			prefix = append(prefix, ci)
			continue
		}
		// Rule 1: constant-pinned columns order nothing.
		if sc := scanForBinding(scans, ci.Qualifier); sc != nil {
			iv, _ := expr.ExtractInterval(sc.Filter, ci.SourceOrdinal)
			if iv.EqualityConstant != nil {
				r.tracef("sort-simplify: dropped key %s.%s (pinned to %s)", ci.Qualifier, ci.Name, *iv.EqualityConstant)
				r.event(obs.Event{Rule: "sort-simplify", Applied: true,
					Detail: fmt.Sprintf("dropped key %s.%s (pinned to a constant)", ci.Qualifier, ci.Name)})
				continue
			}
		}
		// Rule 2: determined by the preceding keys from the same binding.
		var dets []string
		for _, p := range prefix {
			if strings.EqualFold(p.Qualifier, ci.Qualifier) && p.SourceTable != "" {
				dets = append(dets, p.SourceColumn)
			}
		}
		if len(dets) > 0 && r.determines(ci.SourceTable, dets, ci.SourceColumn) {
			r.tracef("sort-simplify: dropped key %s.%s (determined by %s)", ci.Qualifier, ci.Name, strings.Join(dets, ", "))
			r.event(obs.Event{Rule: "sort-simplify", Applied: true, Confidence: 1, Mode: "FD",
				Detail: fmt.Sprintf("dropped key %s.%s (determined by %s)", ci.Qualifier, ci.Name, strings.Join(dets, ", "))})
			continue
		}
		kept = append(kept, k)
		prefix = append(prefix, ci)
	}
	if len(kept) == 0 && len(s.Keys) > 0 {
		s.Eliminated = true
		s.Reason = "all keys constant or functionally determined"
		r.tracef("sort-simplify: sort eliminated entirely")
		r.event(obs.Event{Rule: "sort-simplify", Applied: true,
			Detail: "sort eliminated entirely"})
	}
	s.Keys = kept
}

// reduceGroupBy marks group columns functionally determined by the other
// group columns as redundant, so the executor excludes them from the
// grouping key (they are constant within each group).
func (r *Rewriter) reduceGroupBy(a *plan.Aggregate) {
	if len(a.GroupBy) < 2 {
		return
	}
	inCols := a.Input.Cols()
	type gcol struct {
		ci plan.ColumnInfo
		ok bool
	}
	gcols := make([]gcol, len(a.GroupBy))
	for i, g := range a.GroupBy {
		c, isCol := g.(*expr.Column)
		if !isCol || c.Index < 0 || c.Index >= len(inCols) || inCols[c.Index].SourceTable == "" {
			continue
		}
		gcols[i] = gcol{ci: inCols[c.Index], ok: true}
	}
	redundant := make([]bool, len(a.GroupBy))
	for i := range a.GroupBy {
		if !gcols[i].ok {
			continue
		}
		target := gcols[i].ci
		var dets []string
		for j := range a.GroupBy {
			if j == i || redundant[j] || !gcols[j].ok {
				continue
			}
			if strings.EqualFold(gcols[j].ci.Qualifier, target.Qualifier) {
				dets = append(dets, gcols[j].ci.SourceColumn)
			}
		}
		if len(dets) > 0 && r.determines(target.SourceTable, dets, target.SourceColumn) {
			redundant[i] = true
			r.tracef("group-simplify: %s.%s removed from grouping key (determined by %s)",
				target.Qualifier, target.Name, strings.Join(dets, ", "))
			r.event(obs.Event{Rule: "group-simplify", Applied: true, Confidence: 1, Mode: "FD",
				Detail: fmt.Sprintf("%s.%s removed from grouping key (determined by %s)",
					target.Qualifier, target.Name, strings.Join(dets, ", "))})
		}
	}
	for _, red := range redundant {
		if red {
			a.Redundant = redundant
			return
		}
	}
}

// determines reports whether det+ ⊇ {target} under the table's functional
// dependencies: declared/mined FuncDep constraints plus PK/Unique keys
// (which determine every column). Soft FDs participate only when absolute
// (confidence 1) and active.
func (r *Rewriter) determines(table string, det []string, target string) bool {
	for _, d := range det {
		if strings.EqualFold(d, target) {
			return true
		}
	}
	te, err := r.Cat.Table(table)
	if err != nil {
		return false
	}
	closure := map[string]bool{}
	for _, d := range det {
		closure[strings.ToLower(d)] = true
	}
	covered := func(cols []string) bool {
		for _, c := range cols {
			if !closure[strings.ToLower(c)] {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, con := range te.Constraints {
			if !con.Active || !con.Mode.UsableInRewrite() || con.Confidence < 1 {
				continue
			}
			switch con.Kind {
			case catalog.FuncDep:
				if covered(con.Columns) {
					for _, dep := range con.DepColumns {
						if !closure[strings.ToLower(dep)] {
							closure[strings.ToLower(dep)] = true
							changed = true
						}
					}
				}
			case catalog.PrimaryKey, catalog.Unique:
				if covered(con.Columns) {
					for _, col := range te.Def.Columns {
						if !closure[strings.ToLower(col.Name)] {
							closure[strings.ToLower(col.Name)] = true
							changed = true
						}
					}
				}
			}
		}
		if closure[strings.ToLower(target)] {
			return true
		}
	}
	return closure[strings.ToLower(target)]
}

// collectScans gathers the base-table scans beneath n.
func collectScans(n plan.Node) []*plan.Scan {
	var out []*plan.Scan
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			out = append(out, s)
			return
		}
		for _, c := range n.Inputs() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// scanForBinding finds the scan bound under the given alias.
func scanForBinding(scans []*plan.Scan, alias string) *plan.Scan {
	for _, s := range scans {
		if strings.EqualFold(s.Alias, alias) {
			return s
		}
	}
	return nil
}
