package rewrite

import (
	"math"
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/plan"
	"softdb/internal/schema"
	"softdb/internal/types"
)

func col(i int, k types.Kind) *expr.Column { return expr.NewColumn("t", "c", i, k) }

func iconst(v int64) *expr.Const { return expr.NewConst(types.NewInt(v)) }

// --- linear form extraction ---

func TestExtractLinearForm(t *testing.T) {
	// 2*c0 + c1 - 3
	e := expr.NewBinary(expr.OpSub,
		expr.NewBinary(expr.OpAdd,
			expr.NewBinary(expr.OpMul, iconst(2), col(0, types.KindInt)),
			col(1, types.KindInt)),
		iconst(3))
	f, ok := ExtractLinearForm(e)
	if !ok {
		t.Fatal("should extract")
	}
	if f.Coeffs[0] != 2 || f.Coeffs[1] != 1 || f.Const != -3 {
		t.Errorf("form: %+v", f)
	}
	// c0 / 2
	e = expr.NewBinary(expr.OpDiv, col(0, types.KindInt), iconst(2))
	f, ok = ExtractLinearForm(e)
	if !ok || f.Coeffs[0] != 0.5 {
		t.Errorf("division: %+v ok=%v", f, ok)
	}
	// Nonlinear: c0 * c1.
	e = expr.NewBinary(expr.OpMul, col(0, types.KindInt), col(1, types.KindInt))
	if _, ok := ExtractLinearForm(e); ok {
		t.Error("product of columns is not linear")
	}
	// Negation.
	f, ok = ExtractLinearForm(expr.NewUnary(expr.OpNeg, col(0, types.KindInt)))
	if !ok || f.Coeffs[0] != -1 {
		t.Errorf("negation: %+v", f)
	}
	// c0 - c0 cancels.
	e = expr.NewBinary(expr.OpSub, col(0, types.KindInt), col(0, types.KindInt))
	f, ok = ExtractLinearForm(e)
	if !ok || len(f.Coeffs) != 0 {
		t.Errorf("cancellation: %+v", f)
	}
}

func TestBoundFromComparison(t *testing.T) {
	// ship(2) <= order(1) + 21  →  c1 - c2 >= -21 (normalized on c1).
	e := expr.NewBinary(expr.OpLe,
		col(2, types.KindDate),
		expr.NewBinary(expr.OpAdd, col(1, types.KindDate), iconst(21)))
	lb, ok := boundFromComparison(e)
	if !ok {
		t.Fatal("should normalize")
	}
	if lb.ColA != 1 || lb.ColB != 2 || lb.K != 1 {
		t.Errorf("bound: %s", lb)
	}
	if lb.Lo != -21 || !math.IsInf(lb.Hi, 1) {
		t.Errorf("range: %s", lb)
	}
	// Single column: c0 >= 5.
	e = expr.NewBinary(expr.OpGe, col(0, types.KindInt), iconst(5))
	lb, ok = boundFromComparison(e)
	if !ok || !lb.singleColumn() || lb.Lo != 5 {
		t.Errorf("single: %s", lb)
	}
	// Equality pins both ends: c0 = 7.
	e = expr.NewBinary(expr.OpEq, col(0, types.KindInt), iconst(7))
	lb, _ = boundFromComparison(e)
	if lb.Lo != 7 || lb.Hi != 7 {
		t.Errorf("equality: %s", lb)
	}
	// <> unsupported.
	e = expr.NewBinary(expr.OpNe, col(0, types.KindInt), iconst(7))
	if _, ok := boundFromComparison(e); ok {
		t.Error("<> should not normalize")
	}
	// Same-sign two-column forms (c0 + c1 <= 5) still normalize (K < 0).
	e = expr.NewBinary(expr.OpLe,
		expr.NewBinary(expr.OpAdd, col(0, types.KindInt), col(1, types.KindInt)),
		iconst(5))
	lb, ok = boundFromComparison(e)
	if !ok || lb.K != -1 {
		t.Errorf("sum form: %s ok=%v", lb, ok)
	}
}

func TestDeriveOther(t *testing.T) {
	// c0 - c1 ∈ [-21, 0]  (i.e. c1 - 21 <= c0 <= c1)
	lb := LinearBound{ColA: 0, ColB: 1, K: 1, Lo: -21, Hi: 0}
	// Known c1 = [100, 100] → c0 ∈ [79, 100].
	iv, ok := lb.deriveOther(1, floatInterval{lo: 100, hi: 100})
	if !ok || iv.lo != 79 || iv.hi != 100 {
		t.Errorf("derive A from B: %+v", iv)
	}
	// Known c0 = [100, 100] → c1 ∈ [100, 121].
	iv, ok = lb.deriveOther(0, floatInterval{lo: 100, hi: 100})
	if !ok || iv.lo != 100 || iv.hi != 121 {
		t.Errorf("derive B from A: %+v", iv)
	}
	// Negative K: c0 + 2*c1 = 10 → c0 - (-2)c1 ∈ [10,10].
	lb = LinearBound{ColA: 0, ColB: 1, K: -2, Lo: 10, Hi: 10}
	iv, ok = lb.deriveOther(1, floatInterval{lo: 1, hi: 2})
	// c0 = 10 - 2*c1 → c1∈[1,2] ⇒ c0 ∈ [6, 8].
	if !ok || iv.lo != 6 || iv.hi != 8 {
		t.Errorf("negative K: %+v", iv)
	}
}

func TestFloatToIntervalRounding(t *testing.T) {
	// Outward rounding for introduced predicates (superset).
	iv, ok := floatToInterval(floatInterval{lo: 1.5, hi: 3.5}, types.KindInt, false)
	if !ok || !iv.Contains(types.NewInt(1)) || !iv.Contains(types.NewInt(4)) {
		t.Errorf("outward: %s", iv)
	}
	// Inward rounding (tighten) for emptiness proofs (subset).
	iv, ok = floatToInterval(floatInterval{lo: 1.5, hi: 3.5}, types.KindInt, true)
	if !ok || iv.Contains(types.NewInt(1)) || iv.Contains(types.NewInt(4)) || !iv.Contains(types.NewInt(2)) {
		t.Errorf("inward: %s", iv)
	}
	// Floats keep exact bounds.
	iv, _ = floatToInterval(floatInterval{lo: 1.5, hi: 3.5}, types.KindFloat, false)
	if iv.Contains(types.NewFloat(1.4)) || !iv.Contains(types.NewFloat(1.5)) {
		t.Errorf("float: %s", iv)
	}
}

// --- rewriter over plans ---

func setupCat(t *testing.T) (*catalog.Catalog, *catalog.TableEntry) {
	t.Helper()
	cat := catalog.New()
	def := mustTable("purchase",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "order_date", Type: types.KindDate},
		schema.Column{Name: "ship_date", Type: types.KindDate, Nullable: true},
	)
	te, err := cat.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		te.Heap.Insert(types.Row{
			types.NewInt(int64(i)), types.NewDate(int64(i)), types.NewDate(int64(i + 10)),
		})
	}
	if _, err := cat.CreateIndex("idx_od", "purchase", []string{"order_date"}, false); err != nil {
		t.Fatal(err)
	}
	return cat, te
}

func scanOf(t *testing.T, te *catalog.TableEntry, filters ...expr.Expr) *plan.Scan {
	t.Helper()
	return &plan.Scan{Table: te.Def.Name, Alias: te.Def.Name, Entry: te, Def: te.Def, Filter: filters}
}

func shipEq(day int64) expr.Expr {
	return expr.Eq(expr.NewColumn("purchase", "ship_date", 2, types.KindDate),
		expr.NewConst(types.NewDate(day)))
}

func windowCheck() expr.Expr {
	ship := expr.NewColumn("purchase", "ship_date", 2, types.KindDate)
	order := expr.NewColumn("purchase", "order_date", 1, types.KindDate)
	return expr.And(
		expr.NewBinary(expr.OpGe, ship, order),
		expr.NewBinary(expr.OpLe, ship, expr.NewBinary(expr.OpAdd, order, iconst(21))),
	)
}

func TestPredicateIntroductionRule(t *testing.T) {
	cat, te := setupCat(t)
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "win", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", CheckExpr: windowCheck(), Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	out := r.Rewrite(scanOf(t, te, shipEq(50)))
	scan := out.(*plan.Scan)
	iv, _ := expr.ExtractInterval(scan.Filter, 1)
	if !iv.HasLo || !iv.HasHi {
		t.Fatalf("order_date window not introduced: %v (trace %v)", scan.Filter, r.Trace)
	}
	if iv.Lo.Date() != 29 || iv.Hi.Date() != 50 {
		t.Errorf("window: %s", iv)
	}
	// Disabled rule introduces nothing.
	r2 := &Rewriter{Cat: cat, Opt: Options{NoPredIntro: true}}
	out2 := r2.Rewrite(scanOf(t, te, shipEq(50)))
	iv2, _ := expr.ExtractInterval(out2.(*plan.Scan).Filter, 1)
	if iv2.HasLo || iv2.HasHi {
		t.Error("disabled rule should not fire")
	}
}

func TestPredIntroRequiresIndexAsymmetry(t *testing.T) {
	cat, te := setupCat(t)
	// Add index on ship_date too: no asymmetry, no introduction.
	if _, err := cat.CreateIndex("idx_sd", "purchase", []string{"ship_date"}, false); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "win", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", CheckExpr: windowCheck(), Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	out := r.Rewrite(scanOf(t, te, shipEq(50)))
	iv, _ := expr.ExtractInterval(out.(*plan.Scan).Filter, 1)
	if iv.HasLo || iv.HasHi {
		t.Errorf("no asymmetry: should not introduce; filter %v", out.(*plan.Scan).Filter)
	}
}

func TestInactiveConstraintIgnored(t *testing.T) {
	cat, te := setupCat(t)
	con := &catalog.Constraint{
		Name: "win", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", CheckExpr: windowCheck(), Confidence: 1,
	}
	if err := cat.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	con.Active = false
	r := New(cat)
	out := r.Rewrite(scanOf(t, te, shipEq(50)))
	iv, _ := expr.ExtractInterval(out.(*plan.Scan).Filter, 1)
	if iv.HasLo || iv.HasHi {
		t.Error("inactive ASC must not drive rewrites")
	}
}

func TestSSCProducesTwinNotFilter(t *testing.T) {
	cat, te := setupCat(t)
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "win", Kind: catalog.Check, Mode: catalog.ModeSoftStatistical,
		Table: "purchase", CheckExpr: windowCheck(), Confidence: 0.95,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	out := r.Rewrite(scanOf(t, te, shipEq(50)))
	scan := out.(*plan.Scan)
	iv, _ := expr.ExtractInterval(scan.Filter, 1)
	if iv.HasLo || iv.HasHi {
		t.Error("SSC must not add real filters")
	}
	if len(scan.EstOnly) == 0 {
		t.Fatalf("SSC should add estimation-only twins; trace %v", r.Trace)
	}
	if scan.EstOnly[0].Confidence != 0.95 {
		t.Errorf("twin confidence: %v", scan.EstOnly[0])
	}
}

func TestBranchPruneSingleColumn(t *testing.T) {
	cat, te := setupCat(t)
	monthCheck := expr.Eq(expr.NewColumn("purchase", "id", 0, types.KindInt), iconst(1))
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "m", Kind: catalog.Check, Mode: catalog.ModeEnforced,
		Table: "purchase", CheckExpr: monthCheck, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	contradicting := expr.Eq(expr.NewColumn("purchase", "id", 0, types.KindInt), iconst(2))
	out := r.Rewrite(scanOf(t, te, contradicting))
	if _, ok := out.(*plan.Empty); !ok {
		t.Fatalf("contradicting filter should prune: %s", plan.Format(out))
	}
	// Compatible filter survives.
	compatible := expr.Eq(expr.NewColumn("purchase", "id", 0, types.KindInt), iconst(1))
	out = r.Rewrite(scanOf(t, te, compatible))
	if _, ok := out.(*plan.Scan); !ok {
		t.Errorf("compatible filter should keep the scan: %s", plan.Format(out))
	}
}

func TestHoleTrimRule(t *testing.T) {
	cat, te := setupCat(t)
	lineDef := mustTable("lineitem",
		schema.Column{Name: "okey", Type: types.KindInt},
		schema.Column{Name: "shipdate", Type: types.KindDate},
	)
	le, err := cat.CreateTable(lineDef)
	if err != nil {
		t.Fatal(err)
	}
	jh := &catalog.JoinHoles{
		Name:      "h",
		LeftTable: "purchase", RightTable: "lineitem",
		JoinLeft: "id", JoinRight: "okey",
		AttrLeft: "order_date", AttrRight: "shipdate",
		Holes: []catalog.Rect{{
			A: expr.Between(types.NewDate(10), types.NewDate(40), true, true),
			B: expr.Unbounded(),
		}},
	}
	if err := cat.AddJoinHoles(jh); err != nil {
		t.Fatal(err)
	}
	pScan := scanOf(t, te, expr.And(
		expr.NewBinary(expr.OpGe, expr.NewColumn("purchase", "order_date", 1, types.KindDate), expr.NewConst(types.NewDate(20))),
		expr.NewBinary(expr.OpLe, expr.NewColumn("purchase", "order_date", 1, types.KindDate), expr.NewConst(types.NewDate(80))),
	))
	lScan := &plan.Scan{Table: "lineitem", Alias: "lineitem", Entry: le, Def: lineDef, Filter: []expr.Expr{
		expr.NewBinary(expr.OpGe, expr.NewColumn("lineitem", "shipdate", 1, types.KindDate), expr.NewConst(types.NewDate(0))),
	}}
	jg := &plan.JoinGroup{
		Tables: []plan.Node{pScan, lScan},
		Conjuncts: []expr.Expr{expr.Eq(
			expr.NewColumn("purchase", "id", 0, types.KindInt),
			expr.NewColumn("lineitem", "okey", 3, types.KindInt),
		)},
	}
	r := New(cat)
	out := r.Rewrite(jg)
	outJG := out.(*plan.JoinGroup)
	trimmed := outJG.Tables[0].(*plan.Scan)
	iv, _ := expr.ExtractInterval(trimmed.Filter, 1)
	if iv.Contains(types.NewDate(40)) || !iv.Contains(types.NewDate(41)) || !iv.Contains(types.NewDate(80)) {
		t.Errorf("hole should trim [20,40] away: %s (trace %v)", iv, r.Trace)
	}
}

func TestDeterminesClosure(t *testing.T) {
	cat, _ := setupCat(t)
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "pk", Kind: catalog.PrimaryKey, Mode: catalog.ModeEnforced,
		Table: "purchase", Columns: []string{"id"}, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "fd1", Kind: catalog.FuncDep, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", Columns: []string{"order_date"}, DepColumns: []string{"ship_date"}, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	if !r.determines("purchase", []string{"id"}, "ship_date") {
		t.Error("key determines everything")
	}
	if !r.determines("purchase", []string{"order_date"}, "ship_date") {
		t.Error("declared FD")
	}
	if r.determines("purchase", []string{"ship_date"}, "order_date") {
		t.Error("reverse FD should not hold")
	}
	if !r.determines("purchase", []string{"ship_date"}, "ship_date") {
		t.Error("reflexive")
	}
}

func TestConstraintIntervalHelper(t *testing.T) {
	cat, te := setupCat(t)
	rangeCheck := expr.And(
		expr.NewBinary(expr.OpGe, expr.NewColumn("purchase", "id", 0, types.KindInt), iconst(0)),
		expr.NewBinary(expr.OpLe, expr.NewColumn("purchase", "id", 0, types.KindInt), iconst(99)),
	)
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "rng", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", CheckExpr: rangeCheck, Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	iv := ConstraintInterval(cat, te, 0, types.KindInt)
	if !iv.Contains(types.NewInt(50)) || iv.Contains(types.NewInt(100)) {
		t.Errorf("constraint interval: %s", iv)
	}
}

func TestTraceMessages(t *testing.T) {
	cat, te := setupCat(t)
	if err := cat.AddConstraint(&catalog.Constraint{
		Name: "win", Kind: catalog.Check, Mode: catalog.ModeSoftAbsolute,
		Table: "purchase", CheckExpr: windowCheck(), Confidence: 1,
	}); err != nil {
		t.Fatal(err)
	}
	r := New(cat)
	r.Rewrite(scanOf(t, te, shipEq(50)))
	if len(r.Trace) == 0 || !strings.Contains(r.Trace[0], "predicate-introduction") {
		t.Errorf("trace: %v", r.Trace)
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
