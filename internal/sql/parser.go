package sql

import (
	"fmt"
	"strconv"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/types"
)

// reserved words may not be used as bare column references, which lets the
// expression grammar stop cleanly at clause boundaries.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "HAVING": true, "LIMIT": true, "UNION": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"BETWEEN": true, "AS": true, "ON": true, "JOIN": true, "INNER": true,
	"LIKE": true,
	"ASC":  true, "DESC": true, "SET": true, "VALUES": true, "NULL": true,
	"TRUE": true, "FALSE": true, "DISTINCT": true, "CREATE": true,
	"TABLE": true, "INSERT": true, "UPDATE": true, "DELETE": true,
	"DROP": true, "INTO": true,
}

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// NewParser tokenizes the input and returns a parser.
func NewParser(input string) (*Parser, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, src: input}, nil
}

// Parse parses a single statement from the input (a trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	p, err := NewParser(input)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.eatOp(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after statement: %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(input string) ([]Statement, error) {
	p, err := NewParser(input)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.eatOp(";") {
		}
		if p.atEOF() {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.eatOp(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().Text)
		}
	}
}

// --- token plumbing ---

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

// eatKeyword consumes the keyword if present.
func (p *Parser) eatKeyword(kw string) bool {
	if p.peek().IsKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *Parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

// eatOp consumes the operator if present.
func (p *Parser) eatOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

// expectOp consumes the operator or errors.
func (p *Parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errorf("expected %q, got %q", op, p.peek().Text)
	}
	return nil
}

// ident consumes an identifier (rejecting reserved words) and returns it.
func (p *Parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %q", t.Text)
	}
	if reserved[t.Upper()] {
		return "", p.errorf("reserved word %q cannot be an identifier", t.Text)
	}
	p.pos++
	return t.Text, nil
}

// --- statements ---

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind == TokOp && t.Text == "(" {
		return p.parseSelectStmt()
	}
	if t.Kind != TokIdent {
		return nil, p.errorf("expected a statement, got %q", t.Text)
	}
	switch t.Upper() {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "ALTER":
		return p.parseAlter()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelectStmt()
	case "EXPLAIN":
		p.pos++
		// EXPLAIN ANALYZE SELECT ... runs the query; bare EXPLAIN ANALYZE t
		// still explains the ANALYZE statement, so only a following SELECT
		// selects the analyze form.
		analyze := p.peek().IsKeyword("ANALYZE") && p.toks[p.pos+1].IsKeyword("SELECT")
		if analyze {
			p.pos++
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	case "ANALYZE":
		p.pos++
		p.eatKeyword("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Analyze{Table: name}, nil
	case "BEGIN":
		p.pos++
		p.eatKeyword("TRANSACTION")
		return &Begin{}, nil
	case "COMMIT":
		p.pos++
		return &Commit{}, nil
	case "ROLLBACK":
		p.pos++
		return &Rollback{}, nil
	case "SHOW":
		p.pos++
		if p.eatKeyword("SHARDS") {
			return &Show{Shards: true}, nil
		}
		if err := p.expectKeyword("CONSTRAINTS"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ECONOMY"); err != nil {
			return nil, err
		}
		return &Show{}, nil
	default:
		return nil, p.errorf("unknown statement %q", t.Text)
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	switch {
	case p.eatKeyword("TABLE"):
		return p.parseCreateTable()
	case p.eatKeyword("UNIQUE"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.eatKeyword("INDEX"):
		return p.parseCreateIndex(false)
	case p.eatKeyword("VIEW"):
		return p.parseCreateView()
	case p.eatKeyword("INFORMATIONAL"):
		if err := p.expectKeyword("SUMMARY"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		return p.parseCreateSummary(true)
	case p.eatKeyword("SUMMARY"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		return p.parseCreateSummary(false)
	default:
		return nil, p.errorf("expected TABLE, INDEX, VIEW or SUMMARY TABLE after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		t := p.peek()
		switch t.Upper() {
		case "CONSTRAINT", "PRIMARY", "UNIQUE", "FOREIGN", "CHECK":
			cd, err := p.parseConstraintDef()
			if err != nil {
				return nil, err
			}
			ct.Constraints = append(ct.Constraints, *cd)
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, *col)
		}
		if p.eatOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return ct, nil
	}
}

func (p *Parser) parseColumnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	kind, err := p.parseType()
	if err != nil {
		return nil, err
	}
	cd := &ColumnDef{Name: name, Type: kind}
	for {
		switch {
		case p.eatKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			cd.NotNull = true
		case p.eatKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cd.PrimaryKey = true
			cd.NotNull = true
		default:
			return cd, nil
		}
	}
}

func (p *Parser) parseType() (types.Kind, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return 0, p.errorf("expected a type name, got %q", t.Text)
	}
	var kind types.Kind
	switch t.Upper() {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		kind = types.KindInt
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		kind = types.KindFloat
	case "VARCHAR", "CHAR", "STRING", "TEXT":
		kind = types.KindString
	case "DATE":
		kind = types.KindDate
	case "BOOL", "BOOLEAN":
		kind = types.KindBool
	default:
		return 0, p.errorf("unknown type %q", t.Text)
	}
	// Optional length like VARCHAR(30); accepted and ignored.
	if p.eatOp("(") {
		if p.peek().Kind != TokNumber {
			return 0, p.errorf("expected a length, got %q", p.peek().Text)
		}
		p.pos++
		if err := p.expectOp(")"); err != nil {
			return 0, err
		}
	}
	return kind, nil
}

func (p *Parser) parseConstraintDef() (*ConstraintDef, error) {
	cd := &ConstraintDef{Confidence: 1}
	if p.eatKeyword("CONSTRAINT") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		cd.Name = name
	}
	switch {
	case p.eatKeyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		cd.Kind = catalog.PrimaryKey
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		cd.Columns = cols
	case p.eatKeyword("UNIQUE"):
		cd.Kind = catalog.Unique
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		cd.Columns = cols
	case p.eatKeyword("FOREIGN"):
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		cd.Kind = catalog.ForeignKey
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		cd.Columns = cols
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return nil, err
		}
		ref, err := p.ident()
		if err != nil {
			return nil, err
		}
		cd.RefTable = ref
		refCols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		cd.RefColumns = refCols
	case p.eatKeyword("CHECK"):
		cd.Kind = catalog.Check
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cd.Check = e
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected a constraint definition, got %q", p.peek().Text)
	}
	mode, conf, err := p.parseConstraintMode()
	if err != nil {
		return nil, err
	}
	cd.Mode = mode
	if conf > 0 {
		cd.Confidence = conf
	}
	return cd, nil
}

// parseConstraintMode parses the optional enforcement-mode suffix.
func (p *Parser) parseConstraintMode() (catalog.Mode, float64, error) {
	switch {
	case p.eatKeyword("ENFORCED"):
		return catalog.ModeEnforced, 0, nil
	case p.eatKeyword("INFORMATIONAL"):
		return catalog.ModeInformational, 0, nil
	case p.peek().IsKeyword("NOT") && p.toks[p.pos+1].IsKeyword("ENFORCED"):
		p.pos += 2
		return catalog.ModeInformational, 0, nil
	case p.eatKeyword("SOFT"):
		if p.eatKeyword("STATISTICAL") {
			conf := 0.0
			if p.eatKeyword("CONFIDENCE") {
				t := p.next()
				if t.Kind != TokNumber {
					return 0, 0, p.errorf("expected a confidence value, got %q", t.Text)
				}
				f, err := strconv.ParseFloat(t.Text, 64)
				if err != nil || f <= 0 || f > 1 {
					return 0, 0, p.errorf("bad confidence %q (want a fraction in (0,1])", t.Text)
				}
				conf = f
			}
			return catalog.ModeSoftStatistical, conf, nil
		}
		return catalog.ModeSoftAbsolute, 0, nil
	default:
		return catalog.ModeEnforced, 0, nil
	}
}

func (p *Parser) parseColumnList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.eatOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

func (p *Parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColumnList()
	if err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *Parser) parseCreateView() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Query: sel}, nil
}

// parseSelectStmt parses a select that may be wrapped in parentheses and
// may chain UNION ALL arms (each arm may itself be parenthesized), the
// shape the paper's §4.4 exception-union rewrite uses.
func (p *Parser) parseSelectStmt() (*Select, error) {
	var sel *Select
	if p.eatOp("(") {
		inner, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		sel = inner
	} else {
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel = inner
	}
	if p.eatKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		arm, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		// Append to the tail of the existing chain.
		tail := sel
		for tail.UnionAll != nil {
			tail = tail.UnionAll
		}
		tail.UnionAll = arm
	}
	return sel, nil
}

// parseCreateSummary parses the restricted AST form the paper and DB2 v7
// support: a single-table SELECT * with an optional WHERE.
func (p *Parser) parseCreateSummary(informational bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	wrapped := p.eatOp("(")
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectOp("*"); err != nil {
		return nil, p.errorf("summary tables support only SELECT *")
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	base, err := p.ident()
	if err != nil {
		return nil, err
	}
	var where expr.Expr
	if p.eatKeyword("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if wrapped {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return &CreateSummary{Name: name, Informational: informational, Base: base, Where: where}, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) parseAlter() (Statement, error) {
	p.pos++ // ALTER
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ADD"); err != nil {
		return nil, err
	}
	cd, err := p.parseConstraintDef()
	if err != nil {
		return nil, err
	}
	return &AlterTableAdd{Table: table, Constraint: *cd}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		cols, err := p.parseColumnList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.eatOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eatOp(",") {
			return ins, nil
		}
	}
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: col, Value: val})
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// --- SELECT ---

var aggNames = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.eatKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("FROM") {
		if err := p.parseFrom(sel); err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = expr.And(sel.Where, w)
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if len(sel.GroupBy) == 0 {
			return nil, p.errorf("HAVING requires GROUP BY")
		}
		sel.Having = h
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				item.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected a LIMIT count, got %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	if p.eatKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, p.errorf("only UNION ALL is supported")
		}
		arm, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		sel.UnionAll = arm
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (*SelectItem, error) {
	// Bare *.
	if p.eatOp("*") {
		return &SelectItem{Star: true}, nil
	}
	t := p.peek()
	// t.* form.
	if t.Kind == TokIdent && !reserved[t.Upper()] &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		p.pos += 3
		return &SelectItem{Star: true, StarQualifier: t.Text}, nil
	}
	// Aggregate call.
	if t.Kind == TokIdent {
		if agg, ok := aggNames[t.Upper()]; ok &&
			p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
			p.pos += 2
			item := &SelectItem{Agg: agg}
			if agg == AggCount && p.eatOp("*") {
				item.Agg = AggCountStar
			} else if agg == AggCount && p.eatKeyword("DISTINCT") {
				item.Agg = AggCountDistinct
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = arg
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Expr = arg
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			if err := p.parseAlias(&item.Alias); err != nil {
				return nil, err
			}
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if err := p.parseAlias(&item.Alias); err != nil {
		return nil, err
	}
	return item, nil
}

func (p *Parser) parseAlias(out *string) error {
	if p.eatKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return err
		}
		*out = a
		return nil
	}
	t := p.peek()
	if t.Kind == TokIdent && !reserved[t.Upper()] {
		p.pos++
		*out = t.Text
	}
	return nil
}

func (p *Parser) parseFrom(sel *Select) error {
	ref, err := p.parseTableRef()
	if err != nil {
		return err
	}
	sel.From = append(sel.From, *ref)
	for {
		switch {
		case p.eatOp(","):
			r, err := p.parseTableRef()
			if err != nil {
				return err
			}
			sel.From = append(sel.From, *r)
		case p.peek().IsKeyword("INNER") || p.peek().IsKeyword("JOIN"):
			p.eatKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return err
			}
			r, err := p.parseTableRef()
			if err != nil {
				return err
			}
			sel.From = append(sel.From, *r)
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return err
			}
			sel.Where = expr.And(sel.Where, cond)
		default:
			return nil
		}
	}
}

func (p *Parser) parseTableRef() (*TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: name}
	if err := p.parseAlias(&ref.Alias); err != nil {
		return nil, err
	}
	return ref, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.NewBinary(expr.OpOr, l, r)
	}
	return l, nil
}

func (p *Parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.NewBinary(expr.OpAnd, l, r)
	}
	return l, nil
}

func (p *Parser) parseNot() (expr.Expr, error) {
	if p.eatKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewUnary(expr.OpNot, x), nil
	}
	return p.parseComparison()
}

var compOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *Parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		if op, ok := compOps[t.Text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.NewBinary(op, l, r), nil
		}
	}
	negated := false
	if p.peek().IsKeyword("NOT") &&
		(p.toks[p.pos+1].IsKeyword("BETWEEN") || p.toks[p.pos+1].IsKeyword("IN") || p.toks[p.pos+1].IsKeyword("LIKE")) {
		p.pos++
		negated = true
	}
	switch {
	case p.eatKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := expr.And(
			expr.NewBinary(expr.OpGe, l, lo),
			expr.NewBinary(expr.OpLe, l, hi),
		)
		if negated {
			return expr.NewUnary(expr.OpNot, e), nil
		}
		return e, nil
	case p.eatKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		var e expr.Expr = expr.NewInList(l, list)
		if negated {
			e = expr.NewUnary(expr.OpNot, e)
		}
		return e, nil
	case p.eatKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.NewLike(l, pat, negated), nil
	case p.eatKeyword("IS"):
		neg := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		if neg {
			return expr.NewUnary(expr.OpIsNotNull, l), nil
		}
		return expr.NewUnary(expr.OpIsNull, l), nil
	}
	return l, nil
}

func (p *Parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.NewBinary(expr.OpAdd, l, r)
		case p.eatOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.NewBinary(expr.OpSub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.NewBinary(expr.OpMul, l, r)
		case p.eatOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.NewBinary(expr.OpDiv, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (expr.Expr, error) {
	if p.eatOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately.
		if c, ok := x.(*expr.Const); ok && c.Value.IsNumeric() {
			if c.Value.Kind() == types.KindFloat {
				return expr.NewConst(types.NewFloat(-c.Value.Float())), nil
			}
			return expr.NewConst(types.NewInt(-c.Value.Int())), nil
		}
		return expr.NewUnary(expr.OpNeg, x), nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad numeric literal %q", t.Text)
			}
			return expr.NewConst(types.NewFloat(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		return expr.NewConst(types.NewInt(n)), nil
	case TokString:
		p.pos++
		return expr.NewConst(types.NewString(t.Text)), nil
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TokIdent:
		switch t.Upper() {
		case "NULL":
			p.pos++
			return expr.NewConst(types.Null), nil
		case "TRUE":
			p.pos++
			return expr.NewConst(types.NewBool(true)), nil
		case "FALSE":
			p.pos++
			return expr.NewConst(types.NewBool(false)), nil
		case "DATE":
			// DATE 'YYYY-MM-DD' literal.
			if p.toks[p.pos+1].Kind == TokString {
				p.pos++
				s := p.next()
				d, err := types.ParseDate(s.Text)
				if err != nil {
					return nil, p.errorf("bad date literal %q", s.Text)
				}
				return expr.NewConst(d), nil
			}
		}
		if reserved[t.Upper()] {
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		}
		p.pos++
		// Qualified column?
		if p.eatOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.NewColumn(t.Text, col, -1, types.KindNull), nil
		}
		return expr.NewColumn("", t.Text, -1, types.KindNull), nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}
