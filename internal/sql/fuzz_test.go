package sql

import (
	"os"
	"strings"
	"testing"
)

// fuzzSeeds returns seed statements: every statement in examples/demo.sql
// plus hand-picked inputs covering grammar corners the demo script misses.
func fuzzSeeds(tb testing.TB) []string {
	seeds := []string{
		"SELECT 1",
		"SELECT DISTINCT a, t.b AS x, COUNT(*) AS n, COUNT(DISTINCT c), AVG(d) FROM t, u AS v WHERE a IN (1, 2, NULL) GROUP BY a, t.b HAVING n > 1 ORDER BY a DESC, x LIMIT 7",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (3) OR NOT c IS NULL",
		"SELECT t.*, u.* FROM t INNER JOIN u ON t.a = u.b WHERE name LIKE 'a%' AND name NOT LIKE '_b''c'",
		"SELECT a FROM t WHERE d = DATE '1999-12-15' AND f > 1.5 AND f < 2e10 AND g = -3.25 UNION ALL SELECT b FROM u LIMIT 2",
		"SELECT -a + 2 * (b - 1) / 4 FROM t WHERE x = TRUE AND y = FALSE",
		"CREATE TABLE t (a INT PRIMARY KEY, b FLOAT NOT NULL, c VARCHAR(30), d DATE, e BOOLEAN, CONSTRAINT ck CHECK (a > 0) SOFT STATISTICAL CONFIDENCE 0.95, UNIQUE (b, c), FOREIGN KEY (a) REFERENCES u (k) INFORMATIONAL)",
		"CREATE UNIQUE INDEX ix ON t (a, b)",
		"CREATE VIEW v AS SELECT a FROM t UNION ALL (SELECT b FROM u)",
		"CREATE INFORMATIONAL SUMMARY TABLE s AS (SELECT * FROM t WHERE a = 1)",
		"ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (a) REFERENCES u (k) NOT ENFORCED",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, DATE '2000-01-01')",
		"UPDATE t SET a = a + 1, b = NULL WHERE c <> 2",
		"DELETE FROM t WHERE a IS NOT NULL",
		"EXPLAIN SELECT a FROM t WHERE b >= 1e-9",
		"EXPLAIN ANALYZE SELECT a FROM t WHERE b >= 1e-9",
		"DROP TABLE t",
		"ANALYZE t",
	}
	script, err := os.ReadFile("../../examples/demo.sql")
	if err != nil {
		tb.Logf("demo.sql seeds unavailable: %v", err)
		return seeds
	}
	for _, stmt := range strings.Split(string(script), ";") {
		if strings.TrimSpace(stmt) != "" {
			seeds = append(seeds, stmt)
		}
	}
	return seeds
}

// roundTrip enforces the printer/parser contract on one input: if the
// input parses, its printed form must reparse and print to the same text.
// Returning an error marks a real bug; unparseable inputs are skipped.
func roundTrip(input string) (skip bool, err error) {
	st, perr := Parse(input)
	if perr != nil {
		return true, nil
	}
	printed := Print(st)
	st2, perr := Parse(printed)
	if perr != nil {
		return false, &roundTripError{"printed form does not reparse", input, printed, perr.Error()}
	}
	printed2 := Print(st2)
	if printed2 != printed {
		return false, &roundTripError{"print is not a fixed point", input, printed + "\n  reprint: " + printed2, ""}
	}
	return false, nil
}

type roundTripError struct {
	msg, input, printed, cause string
}

func (e *roundTripError) Error() string {
	s := e.msg + ":\n  input:   " + e.input + "\n  printed: " + e.printed
	if e.cause != "" {
		s += "\n  cause:   " + e.cause
	}
	return s
}

// FuzzParser feeds arbitrary bytes through parse→print→reparse→reprint.
// The parser must never panic on any input, and on every statement it
// accepts the printer must produce an equivalent, stably-printing form.
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := roundTrip(input); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPrintRoundTripSeeds runs the fuzz property over the seed corpus in a
// plain test, so the contract is exercised on every `go test` run even
// without the fuzz engine.
func TestPrintRoundTripSeeds(t *testing.T) {
	parsed := 0
	for _, s := range fuzzSeeds(t) {
		skip, err := roundTrip(s)
		if err != nil {
			t.Error(err)
		}
		if !skip {
			parsed++
		}
	}
	// Most seeds must actually parse (comment-only demo.sql fragments are
	// the only legitimate skips), or the corpus has rotted.
	if parsed < 20 {
		t.Errorf("only %d seeds parsed; seed corpus has rotted", parsed)
	}
}
