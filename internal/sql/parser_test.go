package sql

import (
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/types"
)

func mustParse(t *testing.T, input string) Statement {
	t.Helper()
	s, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x <= 3.5 -- comment\nAND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", "<=", "3.5", "AND", "y", "<>", "2"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("tokens: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad char should error")
	}
}

func TestLexBangEquals(t *testing.T) {
	toks, err := Lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= should normalize to <>: %q", toks[1].Text)
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE purchase (
		id INT PRIMARY KEY,
		order_date DATE NOT NULL,
		ship_date DATE,
		amount FLOAT,
		note VARCHAR(30),
		CONSTRAINT ship_window CHECK (ship_date <= order_date + 21) SOFT,
		CONSTRAINT amount_pos CHECK (amount >= 0) INFORMATIONAL,
		CONSTRAINT ssc_win CHECK (ship_date >= order_date) SOFT STATISTICAL CONFIDENCE 0.99
	)`)
	ct := s.(*CreateTable)
	if ct.Name != "purchase" || len(ct.Cols) != 5 || len(ct.Constraints) != 3 {
		t.Fatalf("shape: %d cols, %d constraints", len(ct.Cols), len(ct.Constraints))
	}
	if !ct.Cols[0].PrimaryKey || !ct.Cols[0].NotNull {
		t.Error("PRIMARY KEY column flags")
	}
	if ct.Cols[1].Type != types.KindDate || !ct.Cols[1].NotNull {
		t.Error("order_date def")
	}
	if ct.Cols[4].Type != types.KindString {
		t.Error("varchar maps to string")
	}
	if ct.Constraints[0].Mode != catalog.ModeSoftAbsolute {
		t.Errorf("SOFT mode: %v", ct.Constraints[0].Mode)
	}
	if ct.Constraints[1].Mode != catalog.ModeInformational {
		t.Errorf("INFORMATIONAL mode: %v", ct.Constraints[1].Mode)
	}
	c2 := ct.Constraints[2]
	if c2.Mode != catalog.ModeSoftStatistical || c2.Confidence != 0.99 {
		t.Errorf("SSC: mode=%v conf=%v", c2.Mode, c2.Confidence)
	}
}

func TestParseForeignKeyModes(t *testing.T) {
	s := mustParse(t, `CREATE TABLE lineitem (
		order_id INT NOT NULL,
		part VARCHAR(10),
		FOREIGN KEY (order_id) REFERENCES orders (id) NOT ENFORCED
	)`)
	ct := s.(*CreateTable)
	fk := ct.Constraints[0]
	if fk.Kind != catalog.ForeignKey || fk.Mode != catalog.ModeInformational {
		t.Errorf("fk: %v %v", fk.Kind, fk.Mode)
	}
	if fk.RefTable != "orders" || fk.RefColumns[0] != "id" {
		t.Errorf("fk target: %v %v", fk.RefTable, fk.RefColumns)
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := mustParse(t, "CREATE UNIQUE INDEX idx_od ON purchase (order_date, id)")
	ci := s.(*CreateIndex)
	if !ci.Unique || ci.Table != "purchase" || len(ci.Columns) != 2 {
		t.Errorf("index: %+v", ci)
	}
}

func TestParseCreateSummary(t *testing.T) {
	s := mustParse(t, `CREATE SUMMARY TABLE late_shipments AS
		(SELECT * FROM purchase WHERE ship_date > order_date + 21)`)
	cs := s.(*CreateSummary)
	if cs.Name != "late_shipments" || cs.Base != "purchase" || cs.Informational {
		t.Errorf("summary: %+v", cs)
	}
	if cs.Where == nil {
		t.Error("where should parse")
	}
	s = mustParse(t, "CREATE INFORMATIONAL SUMMARY TABLE p_stats AS SELECT * FROM purchase")
	cs = s.(*CreateSummary)
	if !cs.Informational || cs.Where != nil {
		t.Errorf("informational summary: %+v", cs)
	}
}

func TestParseCreateView(t *testing.T) {
	s := mustParse(t, `CREATE VIEW sales_all AS
		SELECT * FROM sales_jan
		UNION ALL SELECT * FROM sales_feb
		UNION ALL SELECT * FROM sales_mar`)
	cv := s.(*CreateView)
	arms := 0
	for q := cv.Query; q != nil; q = q.UnionAll {
		arms++
	}
	if arms != 3 {
		t.Errorf("union arms: %d", arms)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	ins := s.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	s = mustParse(t, "INSERT INTO t VALUES (DATE '1999-12-15')")
	ins = s.(*Insert)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 {
		t.Fatalf("positional insert: %+v", ins)
	}
	if ins.Rows[0][0].String() != "1999-12-15" {
		t.Errorf("date literal: %s", ins.Rows[0][0])
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
	upd := s.(*Update)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update: %+v", upd)
	}
	s = mustParse(t, "DELETE FROM t")
	del := s.(*Delete)
	if del.Where != nil {
		t.Error("unconditional delete")
	}
}

func TestParseSelectShape(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT o.id, COUNT(*) AS n, SUM(l.qty) total
		FROM orders o, lineitem AS l
		WHERE o.id = l.order_id AND l.qty > 5
		GROUP BY o.id
		ORDER BY n DESC, o.id
		LIMIT 10`)
	sel := s.(*Select)
	if !sel.Distinct || len(sel.Items) != 3 || len(sel.From) != 2 {
		t.Fatalf("select shape: %+v", sel)
	}
	if sel.Items[1].Agg != AggCountStar || sel.Items[1].Alias != "n" {
		t.Errorf("count(*): %+v", sel.Items[1])
	}
	if sel.Items[2].Agg != AggSum || sel.Items[2].Alias != "total" {
		t.Errorf("sum alias without AS: %+v", sel.Items[2])
	}
	if sel.From[0].Name() != "o" || sel.From[1].Name() != "l" {
		t.Errorf("aliases: %+v", sel.From)
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc {
		t.Errorf("group/order: %+v", sel)
	}
	if sel.Limit != 10 {
		t.Errorf("limit: %d", sel.Limit)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a INNER JOIN b ON a.x = b.y JOIN c ON b.z = c.z WHERE a.w > 0")
	sel := s.(*Select)
	if len(sel.From) != 3 {
		t.Fatalf("from: %d", len(sel.From))
	}
	// ON conditions fold into WHERE: 3 conjuncts total.
	conjuncts := strings.Count(sel.Where.String(), " AND ")
	if conjuncts != 2 {
		t.Errorf("where: %s", sel.Where)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3) AND c NOT IN (4) AND d NOT BETWEEN 5 AND 6")
	sel := s.(*Select)
	str := sel.Where.String()
	if !strings.Contains(str, "(a >= 1)") || !strings.Contains(str, "(a <= 10)") {
		t.Errorf("between desugar: %s", str)
	}
	if !strings.Contains(str, "IN (1, 2, 3)") {
		t.Errorf("in list: %s", str)
	}
	if !strings.Contains(str, "(NOT (c IN (4)))") {
		t.Errorf("not in: %s", str)
	}
}

func TestParseIsNull(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
	sel := s.(*Select)
	str := sel.Where.String()
	if !strings.Contains(str, "(a IS NULL)") || !strings.Contains(str, "(b IS NOT NULL)") {
		t.Errorf("is null: %s", str)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a + 2 * 3 = 7 OR NOT b < 1 AND c = 2")
	sel := s.(*Select)
	want := "(((a + (2 * 3)) = 7) OR ((NOT (b < 1)) AND (c = 2)))"
	if sel.Where.String() != want {
		t.Errorf("precedence:\n got %s\nwant %s", sel.Where, want)
	}
}

func TestParseNegativeLiterals(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = -5 AND b = -2.5")
	sel := s.(*Select)
	if !strings.Contains(sel.Where.String(), "(a = -5)") {
		t.Errorf("negative int: %s", sel.Where)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	s := mustParse(t, "EXPLAIN SELECT * FROM t")
	if _, ok := s.(*Explain).Stmt.(*Select); !ok {
		t.Error("explain wraps select")
	}
	s = mustParse(t, "ANALYZE TABLE t")
	if s.(*Analyze).Table != "t" {
		t.Error("analyze")
	}
	s = mustParse(t, "EXPLAIN ANALYZE SELECT * FROM t")
	ex := s.(*Explain)
	if !ex.Analyze {
		t.Error("EXPLAIN ANALYZE should set Analyze")
	}
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Error("explain analyze wraps select")
	}
	if got := Print(ex); got != "EXPLAIN ANALYZE SELECT * FROM t" {
		t.Errorf("round trip: %q", got)
	}
	// EXPLAIN ANALYZE <ident> still explains the ANALYZE statement.
	s = mustParse(t, "EXPLAIN ANALYZE t")
	ex = s.(*Explain)
	if ex.Analyze {
		t.Error("EXPLAIN of ANALYZE statement must not set Analyze")
	}
	if _, ok := ex.Stmt.(*Analyze); !ok {
		t.Error("explain wraps analyze stmt")
	}
}

func TestParseAlterAdd(t *testing.T) {
	s := mustParse(t, "ALTER TABLE t ADD CONSTRAINT c CHECK (a > 0) SOFT")
	at := s.(*AlterTableAdd)
	if at.Table != "t" || at.Constraint.Mode != catalog.ModeSoftAbsolute {
		t.Errorf("alter: %+v", at)
	}
}

func TestParseUnionAllLimitPlacement(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 1 UNION ALL SELECT a FROM u")
	sel := s.(*Select)
	if sel.UnionAll == nil || sel.UnionAll.From[0].Table != "u" {
		t.Errorf("union: %+v", sel)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("script: %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t (a BADTYPE)",
		"INSERT INTO t VALUES 1",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t UNION SELECT * FROM u", // only UNION ALL
		"CREATE SUMMARY TABLE s AS SELECT a FROM t",
		"ALTER TABLE t DROP COLUMN a",
		"SELECT * FROM t WHERE a = 'x' extra garbage ;;",
		"CREATE TABLE t (a INT, CONSTRAINT c CHECK (a > 0) SOFT STATISTICAL CONFIDENCE 2)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseQualifiedStar(t *testing.T) {
	s := mustParse(t, "SELECT p.*, q.a FROM p, q")
	sel := s.(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarQualifier != "p" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
}

func TestParsePaperLateShipmentQuery(t *testing.T) {
	// The §4.4 rewrite target parses as written in the paper (modulo date
	// syntax).
	s := mustParse(t, `
		(SELECT * FROM purchase
		 WHERE ship_date = DATE '1999-12-15'
		   AND order_date >= DATE '1999-12-15' - 21)`)
	_ = s
}

func TestParseParenthesizedSelect(t *testing.T) {
	// A leading parenthesis around a full select.
	s, err := Parse("(SELECT a FROM t)")
	if err != nil {
		t.Fatalf("parenthesized select: %v", err)
	}
	if _, ok := s.(*Select); !ok {
		t.Fatalf("got %T", s)
	}
}

func TestParseShowConstraintsEconomy(t *testing.T) {
	s := mustParse(t, "SHOW CONSTRAINTS ECONOMY")
	if _, ok := s.(*Show); !ok {
		t.Fatalf("parsed %T, want *Show", s)
	}
	printed := Print(s)
	if printed != "SHOW CONSTRAINTS ECONOMY" {
		t.Errorf("Print(*Show) = %q", printed)
	}
	if _, ok := mustParse(t, printed).(*Show); !ok {
		t.Error("printed form did not parse back to *Show")
	}
	for _, bad := range []string{"SHOW", "SHOW CONSTRAINTS", "SHOW ECONOMY"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
