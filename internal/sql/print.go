package sql

import (
	"fmt"
	"strconv"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/types"
)

// Print renders a parsed statement back to SQL that this package's parser
// accepts. The printer is the parser's inverse up to a fixed point: for any
// statement s produced by Parse, Parse(Print(s)) succeeds and prints to the
// same text. FuzzParser enforces that property; keep the two in sync when
// extending the grammar.
func Print(st Statement) string {
	var b strings.Builder
	printStmt(&b, st)
	return b.String()
}

func printStmt(b *strings.Builder, st Statement) {
	switch s := st.(type) {
	case *Select:
		printSelect(b, s)
	case *Explain:
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
		printStmt(b, s.Stmt)
	case *Analyze:
		fmt.Fprintf(b, "ANALYZE %s", s.Table)
	case *Begin:
		b.WriteString("BEGIN")
	case *Commit:
		b.WriteString("COMMIT")
	case *Rollback:
		b.WriteString("ROLLBACK")
	case *Show:
		if s.Shards {
			b.WriteString("SHOW SHARDS")
		} else {
			b.WriteString("SHOW CONSTRAINTS ECONOMY")
		}
	case *CreateTable:
		printCreateTable(b, s)
	case *CreateIndex:
		b.WriteString("CREATE ")
		if s.Unique {
			b.WriteString("UNIQUE ")
		}
		fmt.Fprintf(b, "INDEX %s ON %s (%s)", s.Name, s.Table, strings.Join(s.Columns, ", "))
	case *CreateView:
		fmt.Fprintf(b, "CREATE VIEW %s AS ", s.Name)
		printSelect(b, s.Query)
	case *CreateSummary:
		b.WriteString("CREATE ")
		if s.Informational {
			b.WriteString("INFORMATIONAL ")
		}
		fmt.Fprintf(b, "SUMMARY TABLE %s AS (SELECT * FROM %s", s.Name, s.Base)
		if s.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, s.Where)
		}
		b.WriteString(")")
	case *AlterTableAdd:
		fmt.Fprintf(b, "ALTER TABLE %s ADD ", s.Table)
		printConstraintDef(b, s.Constraint)
	case *DropTable:
		fmt.Fprintf(b, "DROP TABLE %s", s.Name)
	case *Insert:
		fmt.Fprintf(b, "INSERT INTO %s", s.Table)
		if len(s.Columns) > 0 {
			fmt.Fprintf(b, " (%s)", strings.Join(s.Columns, ", "))
		}
		b.WriteString(" VALUES ")
		for ri, row := range s.Rows {
			if ri > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for i, e := range row {
				if i > 0 {
					b.WriteString(", ")
				}
				printExpr(b, e)
			}
			b.WriteString(")")
		}
	case *Update:
		fmt.Fprintf(b, "UPDATE %s SET ", s.Table)
		for i, sc := range s.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s = ", sc.Column)
			printExpr(b, sc.Value)
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, s.Where)
		}
	case *Delete:
		fmt.Fprintf(b, "DELETE FROM %s", s.Table)
		if s.Where != nil {
			b.WriteString(" WHERE ")
			printExpr(b, s.Where)
		}
	default:
		fmt.Fprintf(b, "/* unprintable %T */", st)
	}
}

func printCreateTable(b *strings.Builder, ct *CreateTable) {
	fmt.Fprintf(b, "CREATE TABLE %s (", ct.Name)
	for i, col := range ct.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", col.Name, typeName(col.Type))
		// PRIMARY KEY implies NOT NULL in the parser; printing both would
		// still parse but double the suffix on every round trip is noise.
		if col.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		} else if col.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	for i, cd := range ct.Constraints {
		if len(ct.Cols) > 0 || i > 0 {
			b.WriteString(", ")
		}
		printConstraintDef(b, cd)
	}
	b.WriteString(")")
}

func typeName(k types.Kind) string {
	switch k {
	case types.KindInt:
		return "INT"
	case types.KindFloat:
		return "FLOAT"
	case types.KindString:
		return "VARCHAR"
	case types.KindDate:
		return "DATE"
	case types.KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("/* kind %d */", k)
	}
}

func printConstraintDef(b *strings.Builder, cd ConstraintDef) {
	if cd.Name != "" {
		fmt.Fprintf(b, "CONSTRAINT %s ", cd.Name)
	}
	switch cd.Kind {
	case catalog.PrimaryKey:
		fmt.Fprintf(b, "PRIMARY KEY (%s)", strings.Join(cd.Columns, ", "))
	case catalog.Unique:
		fmt.Fprintf(b, "UNIQUE (%s)", strings.Join(cd.Columns, ", "))
	case catalog.ForeignKey:
		fmt.Fprintf(b, "FOREIGN KEY (%s) REFERENCES %s (%s)",
			strings.Join(cd.Columns, ", "), cd.RefTable, strings.Join(cd.RefColumns, ", "))
	case catalog.Check:
		b.WriteString("CHECK (")
		printExpr(b, cd.Check)
		b.WriteString(")")
	}
	switch cd.Mode {
	case catalog.ModeEnforced:
		// The parser's default; print nothing.
	case catalog.ModeInformational:
		b.WriteString(" INFORMATIONAL")
	case catalog.ModeSoftAbsolute:
		b.WriteString(" SOFT")
	case catalog.ModeSoftStatistical:
		b.WriteString(" SOFT STATISTICAL")
		if cd.Confidence > 0 && cd.Confidence != 1 {
			fmt.Fprintf(b, " CONFIDENCE %s", formatFloatLit(cd.Confidence))
		}
	}
}

func printSelect(b *strings.Builder, s *Select) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		printSelectItem(b, it)
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ref.Table)
			if ref.Alias != "" && ref.Alias != ref.Table {
				fmt.Fprintf(b, " AS %s", ref.Alias)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		printExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		printExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, it := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, it.Expr)
			if it.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", s.Limit)
	}
	if s.UnionAll != nil {
		b.WriteString(" UNION ALL ")
		printSelect(b, s.UnionAll)
	}
}

func printSelectItem(b *strings.Builder, it SelectItem) {
	switch {
	case it.Star && it.StarQualifier != "":
		fmt.Fprintf(b, "%s.*", it.StarQualifier)
		return
	case it.Star:
		b.WriteString("*")
		return
	case it.Agg == AggCountStar:
		b.WriteString("COUNT(*)")
	case it.Agg == AggCountDistinct:
		b.WriteString("COUNT(DISTINCT ")
		printExpr(b, it.Expr)
		b.WriteString(")")
	case it.Agg != AggNone:
		b.WriteString(it.Agg.String())
		b.WriteString("(")
		printExpr(b, it.Expr)
		b.WriteString(")")
	default:
		printExpr(b, it.Expr)
	}
	if it.Alias != "" {
		fmt.Fprintf(b, " AS %s", it.Alias)
	}
}

// printExpr renders an expression fully parenthesized, so operator
// precedence never changes on reparse. Expr.String is close but not
// parseable for every node (dates print bare, integral floats lose their
// decimal point), hence a dedicated walker.
func printExpr(b *strings.Builder, e expr.Expr) {
	switch x := e.(type) {
	case *expr.Const:
		printConst(b, x.Value)
	case *expr.Column:
		if x.Qualifier != "" {
			fmt.Fprintf(b, "%s.%s", x.Qualifier, x.Name)
		} else {
			b.WriteString(x.Name)
		}
	case *expr.Binary:
		b.WriteString("(")
		printExpr(b, x.L)
		fmt.Fprintf(b, " %s ", x.Op)
		printExpr(b, x.R)
		b.WriteString(")")
	case *expr.Unary:
		switch x.Op {
		case expr.OpIsNull, expr.OpIsNotNull:
			b.WriteString("(")
			printExpr(b, x.X)
			fmt.Fprintf(b, " %s)", x.Op)
		default: // NOT, unary minus
			fmt.Fprintf(b, "(%s ", x.Op)
			printExpr(b, x.X)
			b.WriteString(")")
		}
	case *expr.InList:
		b.WriteString("(")
		printExpr(b, x.X)
		b.WriteString(" IN (")
		for i, v := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, v)
		}
		b.WriteString("))")
	case *expr.Like:
		b.WriteString("(")
		printExpr(b, x.X)
		if x.Negate {
			b.WriteString(" NOT LIKE ")
		} else {
			b.WriteString(" LIKE ")
		}
		printExpr(b, x.Pattern)
		b.WriteString(")")
	default:
		// Fall back to the display form; may not reparse, which the fuzz
		// round-trip will surface if such a node ever reaches a statement.
		b.WriteString(e.String())
	}
}

func printConst(b *strings.Builder, v types.Datum) {
	switch v.Kind() {
	case types.KindDate:
		// Datum.String renders the bare date; the grammar needs the
		// DATE 'YYYY-MM-DD' literal form.
		fmt.Fprintf(b, "DATE '%s'", v.String())
	case types.KindFloat:
		b.WriteString(formatFloatLit(v.Float()))
	default:
		// Ints, strings (quoted/escaped), bools, NULL round-trip as is.
		b.WriteString(v.String())
	}
}

// formatFloatLit renders a float so it re-lexes as a float: %g drops the
// decimal point from integral values ("5"), which would reparse as an INT.
func formatFloatLit(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
