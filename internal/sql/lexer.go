// Package sql implements softdb's SQL front end: a hand-written lexer and
// recursive-descent parser covering the dialect the paper's examples use —
// DDL with constraint enforcement modes, summary tables, views, DML, and
// SELECT with joins, grouping, ordering, and UNION ALL.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	// TokEOF marks end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (quotes stripped,
	// doubled quotes unescaped).
	TokString
	// TokOp is an operator or punctuation mark.
	TokOp
)

// Token is one lexeme with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// IsKeyword reports whether the token is the given keyword,
// case-insensitively.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// Upper returns the token text upper-cased, the form keyword dispatch uses.
func (t Token) Upper() string { return strings.ToUpper(t.Text) }

// Lex tokenizes the input. It returns an error for unterminated strings or
// unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n {
				ch := input[i]
				if ch >= '0' && ch <= '9' {
					i++
					continue
				}
				if ch == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && i+1 < n && (isDigit(input[i+1]) || ((input[i+1] == '+' || input[i+1] == '-') && i+2 < n && isDigit(input[i+2]))) {
					i += 2
					for i < n && isDigit(input[i]) {
						i++
					}
					break
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			var op string
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				op = two
				i += 2
			default:
				switch c {
				case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';':
					op = string(c)
					i++
				default:
					return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
				}
			}
			if op == "!=" {
				op = "<>"
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isIdentPart(r rune) bool { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
