package sql

import (
	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       types.Kind
	NotNull    bool
	PrimaryKey bool
}

// ConstraintDef is a table-level constraint in CREATE TABLE or ALTER TABLE
// ... ADD. The enforcement mode syntax follows the paper: ENFORCED
// (default), INFORMATIONAL (§1, DB2's NOT ENFORCED), SOFT (an ASC), and
// SOFT STATISTICAL [CONFIDENCE f] (an SSC).
type ConstraintDef struct {
	Name       string
	Kind       catalog.Kind
	Mode       catalog.Mode
	Columns    []string
	RefTable   string
	RefColumns []string
	Check      expr.Expr // unbound; columns carry names only
	Confidence float64   // for SOFT STATISTICAL
}

// CreateTable is CREATE TABLE.
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	Constraints []ConstraintDef
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE [UNIQUE] INDEX.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndex) stmt() {}

// CreateSummary is CREATE [INFORMATIONAL] SUMMARY TABLE name AS (SELECT *
// FROM base [WHERE ...]), the paper's §4.4 AST declaration.
type CreateSummary struct {
	Name          string
	Informational bool
	Base          string
	Where         expr.Expr // unbound, may be nil
}

func (*CreateSummary) stmt() {}

// CreateView is CREATE VIEW name AS <select>; the select may be a UNION ALL
// chain (the §5 partitioned-view example).
type CreateView struct {
	Name  string
	Query *Select
}

func (*CreateView) stmt() {}

// AlterTableAdd is ALTER TABLE name ADD <constraint def>.
type AlterTableAdd struct {
	Table      string
	Constraint ConstraintDef
}

func (*AlterTableAdd) stmt() {}

// DropTable is DROP TABLE.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

// Insert is INSERT INTO ... VALUES.
type Insert struct {
	Table   string
	Columns []string // empty means positional
	Rows    [][]expr.Expr
}

func (*Insert) stmt() {}

// SetClause is one assignment in UPDATE.
type SetClause struct {
	Column string
	Value  expr.Expr
}

// Update is UPDATE ... SET ... [WHERE].
type Update struct {
	Table string
	Set   []SetClause
	Where expr.Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM ... [WHERE].
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmt() {}

// AggKind classifies aggregate functions in a select list.
type AggKind uint8

const (
	// AggNone marks a plain scalar item.
	AggNone AggKind = iota
	// AggCountStar is COUNT(*).
	AggCountStar
	// AggCount is COUNT(expr), counting non-null values.
	AggCount
	// AggSum is SUM(expr).
	AggSum
	// AggMin is MIN(expr).
	AggMin
	// AggMax is MAX(expr).
	AggMax
	// AggAvg is AVG(expr).
	AggAvg
	// AggCountDistinct is COUNT(DISTINCT expr).
	AggCountDistinct
)

// String implements fmt.Stringer.
func (a AggKind) String() string {
	switch a {
	case AggCountStar, AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT DISTINCT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return ""
	}
}

// SelectItem is one projection in a select list.
type SelectItem struct {
	Star          bool   // bare *
	StarQualifier string // t.* (empty for bare *)
	Agg           AggKind
	Expr          expr.Expr // aggregate argument or scalar expression
	Alias         string
}

// TableRef is one base table or view reference in FROM.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the effective binding name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is a SELECT statement. Explicit INNER JOIN ... ON syntax is folded
// by the parser into the From list with the ON conditions conjoined into
// Where. UnionAll chains additional arms.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr
	GroupBy  []expr.Expr
	// Having filters grouped results. It may reference select-list aliases
	// and grouping columns (aggregates are referenced through their
	// aliases, e.g. `COUNT(*) AS n ... HAVING n > 5`).
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	UnionAll *Select
}

func (*Select) stmt() {}

// Explain wraps a statement for EXPLAIN. Analyze marks EXPLAIN ANALYZE:
// execute the statement and annotate the plan with actual row counts,
// page counts, and per-operator timing alongside the estimates.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

// Analyze is ANALYZE [TABLE] name: collect statistics (DB2 runstats).
type Analyze struct{ Table string }

func (*Analyze) stmt() {}

// Begin is BEGIN [TRANSACTION]: open an explicit transaction. Reads inside
// it run against one snapshot; writes stay invisible to other sessions
// until COMMIT.
type Begin struct{}

func (*Begin) stmt() {}

// Commit is COMMIT: make the open transaction's effects durable and
// visible to new snapshots.
type Commit struct{}

func (*Commit) stmt() {}

// Rollback is ROLLBACK: discard the open transaction's effects.
type Rollback struct{}

func (*Rollback) stmt() {}

// Show is SHOW CONSTRAINTS ECONOMY (the per-constraint benefit/cost
// ledger, ranked by net benefit) or — with Shards set — SHOW SHARDS (the
// shard router's topology and constraint registry; a plain engine answers
// with an empty single-node result).
type Show struct {
	Shards bool
}

func (*Show) stmt() {}
