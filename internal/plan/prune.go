package plan

import (
	"fmt"

	"softdb/internal/expr"
)

// PrunePred is a prune-only predicate attached to a Scan: a sound,
// single-column page-skipping condition that is evaluated against per-page
// synopses (zone maps) but never applied to individual rows. Two shapes
// exist:
//
//   - inclusion (Exclude=false): qualifying rows must have Col inside
//     Interval. A page is skipped when its non-null [min, max] range is
//     disjoint from Interval — and, when NullsQualify, only if the page
//     also holds no NULLs in Col (a NULL row could still qualify).
//   - exclusion (Exclude=true): rows with Col inside Interval provably
//     contribute nothing (an interior join hole). A page is skipped when
//     its whole non-null range lies inside Interval and it has no NULLs.
//
// Check, when non-nil, is consulted once per scan: returning false disables
// the predicate for that execution. Derived predicates capture their source
// constraint here, so pruning stops the moment the constraint is violated,
// demoted to probation, or its effective confidence decays — even on a plan
// compiled while the constraint was healthy.
type PrunePred struct {
	Col          int // column ordinal in the scanned table
	Interval     expr.Interval
	Exclude      bool
	NullsQualify bool   // a NULL in Col may satisfy the query (derived preds)
	Source       string // "filter", or the constraint/correlation/hole name
	Check        func() bool
}

// Describe renders the predicate for EXPLAIN output.
func (p PrunePred) Describe(col string) string {
	op := "in"
	if p.Exclude {
		op = "not-in"
	}
	return fmt.Sprintf("%s %s %s [%s]", col, op, p.Interval, p.Source)
}
