package plan

import (
	"fmt"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/sql"
	"softdb/internal/types"
)

// Derived wraps a sub-plan bound under an alias (view references).
type Derived struct {
	Input Node
	Alias string
}

// Cols implements Node, re-qualifying the input's columns with the alias.
func (d *Derived) Cols() []ColumnInfo {
	in := d.Input.Cols()
	out := make([]ColumnInfo, len(in))
	for i, c := range in {
		c.Qualifier = d.Alias
		out[i] = c
	}
	return out
}

// Inputs implements Node.
func (d *Derived) Inputs() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Derived) Describe() string { return "Derived AS " + d.Alias }

// Builder binds parsed SQL to logical plans against a catalog and a view
// registry.
type Builder struct {
	Catalog *catalog.Catalog
	// Views maps lower-cased view names to their defining queries.
	Views map[string]*sql.Select
}

// BuildSelect builds the plan for a (possibly UNION ALL-chained) select.
func (b *Builder) BuildSelect(sel *sql.Select) (Node, error) {
	var arms []Node
	for s := sel; s != nil; s = s.UnionAll {
		arm, err := b.buildArm(s)
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm)
	}
	if len(arms) == 1 {
		return arms[0], nil
	}
	// Arms must agree in arity; kinds are checked loosely (numeric kinds
	// inter-operate).
	want := arms[0].Cols()
	for i, a := range arms[1:] {
		if len(a.Cols()) != len(want) {
			return nil, fmt.Errorf("plan: UNION ALL arm %d has %d columns, want %d", i+2, len(a.Cols()), len(want))
		}
	}
	return &UnionAll{Arms: arms}, nil
}

// buildArm builds a single select block.
func (b *Builder) buildArm(sel *sql.Select) (Node, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT without FROM is not supported")
	}
	// Resolve FROM sources.
	var sources []Node
	seen := map[string]bool{}
	for _, ref := range sel.From {
		name := strings.ToLower(ref.Name())
		if seen[name] {
			return nil, fmt.Errorf("plan: duplicate table binding %s", ref.Name())
		}
		seen[name] = true
		src, err := b.resolveSource(ref)
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
	}
	group := &JoinGroup{Tables: sources}
	blockCols := group.Cols()

	// Bind and distribute WHERE conjuncts.
	if sel.Where != nil {
		bound, err := BindExpr(sel.Where, blockCols)
		if err != nil {
			return nil, err
		}
		bound = expr.FoldConstants(bound)
		for _, c := range expr.SplitConjuncts(bound) {
			b.placeConjunct(group, c)
		}
	}

	var top Node = group
	// Singleton group with no conjuncts collapses to the source itself.
	if len(group.Tables) == 1 && len(group.Conjuncts) == 0 {
		top = group.Tables[0]
	}

	hasAgg := len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		if it.Agg != sql.AggNone {
			hasAgg = true
		}
	}

	var outExprs []expr.Expr
	var outCols []ColumnInfo
	if hasAgg {
		agg, exprs, cols, err := b.buildAggregate(sel, top, blockCols)
		if err != nil {
			return nil, err
		}
		top = agg
		outExprs, outCols = exprs, cols
	} else {
		exprs, cols, err := b.buildProjection(sel.Items, blockCols)
		if err != nil {
			return nil, err
		}
		outExprs, outCols = exprs, cols
	}

	// Bind ORDER BY keys against the projected output, appending hidden
	// columns for keys not in the select list.
	var keys []SortKey
	for _, oi := range sel.OrderBy {
		ord, err := b.bindOrderKey(oi.Expr, outExprs, outCols, top.Cols(), hasAgg, &outExprs, &outCols)
		if err != nil {
			return nil, err
		}
		keys = append(keys, SortKey{Ordinal: ord, Desc: oi.Desc})
	}

	// Projection node (omitted when it is the identity over the input).
	if !isIdentityProjection(outExprs, outCols, top.Cols()) {
		top = &Project{Input: top, Exprs: outExprs, Names: outCols}
	}
	// HAVING binds against the projected output: select-list aliases and
	// grouping columns are in scope; aggregates are referenced through
	// their aliases.
	if sel.Having != nil {
		if !hasAgg {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY")
		}
		bound, err := BindExpr(sel.Having, top.Cols())
		if err != nil {
			return nil, fmt.Errorf("plan: HAVING may reference select-list aliases and grouping columns: %w", err)
		}
		top = &Filter{Input: top, Conds: expr.SplitConjuncts(expr.FoldConstants(bound))}
	}
	if sel.Distinct {
		top = &Distinct{Input: top}
	}
	if len(keys) > 0 {
		top = &Sort{Input: top, Keys: keys}
	}
	// Strip hidden sort columns.
	if hasHidden(outCols) {
		var exprs []expr.Expr
		var cols []ColumnInfo
		for i, c := range top.Cols() {
			if c.Hidden {
				continue
			}
			cc := c
			exprs = append(exprs, expr.NewColumn(c.Qualifier, c.Name, i, c.Kind))
			cols = append(cols, cc)
		}
		top = &Project{Input: top, Exprs: exprs, Names: cols}
	}
	if sel.Limit >= 0 {
		top = &Limit{Input: top, N: sel.Limit}
	}
	return top, nil
}

func hasHidden(cols []ColumnInfo) bool {
	for _, c := range cols {
		if c.Hidden {
			return true
		}
	}
	return false
}

// resolveSource resolves one FROM reference to a scan or derived plan.
func (b *Builder) resolveSource(ref sql.TableRef) (Node, error) {
	alias := ref.Name()
	if te, err := b.Catalog.Table(ref.Table); err == nil {
		return &Scan{Table: te.Def.Name, Alias: alias, Entry: te, Def: te.Def}, nil
	}
	if st, ok := b.Catalog.SummaryTable(ref.Table); ok {
		if st.Informational {
			return nil, fmt.Errorf("plan: informational summary table %s is not routable", st.Name)
		}
		return &Scan{Table: st.Name, Alias: alias, Summary: st, Def: st.Def}, nil
	}
	if b.Views != nil {
		if vq, ok := b.Views[strings.ToLower(ref.Table)]; ok {
			sub, err := b.BuildSelect(vq)
			if err != nil {
				return nil, fmt.Errorf("plan: expanding view %s: %w", ref.Table, err)
			}
			return &Derived{Input: sub, Alias: alias}, nil
		}
	}
	return nil, fmt.Errorf("plan: unknown table or view %s", ref.Table)
}

// placeConjunct pushes a single-scan conjunct into that scan's filter,
// otherwise leaves it on the join group.
func (b *Builder) placeConjunct(group *JoinGroup, c expr.Expr) {
	if expr.IsConstTrue(c) {
		return
	}
	ords := expr.ColumnIndexes(c)
	owner := -1
	for i := range group.Tables {
		off := group.Offset(i)
		n := len(group.Tables[i].Cols())
		all := true
		for _, o := range ords {
			if o < off || o >= off+n {
				all = false
				break
			}
		}
		if all {
			owner = i
			break
		}
	}
	if owner >= 0 {
		if scan, ok := group.Tables[owner].(*Scan); ok {
			local := expr.ShiftColumns(c, -group.Offset(owner))
			scan.Filter = append(scan.Filter, local)
			return
		}
	}
	group.Conjuncts = append(group.Conjuncts, c)
}

// buildProjection expands stars and binds select expressions.
func (b *Builder) buildProjection(items []sql.SelectItem, blockCols []ColumnInfo) ([]expr.Expr, []ColumnInfo, error) {
	var exprs []expr.Expr
	var cols []ColumnInfo
	for _, it := range items {
		if it.Star {
			for i, c := range blockCols {
				if it.StarQualifier != "" && !strings.EqualFold(c.Qualifier, it.StarQualifier) {
					continue
				}
				exprs = append(exprs, expr.NewColumn(c.Qualifier, c.Name, i, c.Kind))
				cols = append(cols, c)
			}
			if it.StarQualifier != "" && len(exprs) == 0 {
				return nil, nil, fmt.Errorf("plan: %s.* matches no table", it.StarQualifier)
			}
			continue
		}
		if it.Agg != sql.AggNone {
			return nil, nil, fmt.Errorf("plan: aggregate %s outside GROUP BY context", it.Agg)
		}
		bound, err := BindExpr(it.Expr, blockCols)
		if err != nil {
			return nil, nil, err
		}
		ci := deriveColumnInfo(bound, blockCols)
		if it.Alias != "" {
			ci.Name = it.Alias
		}
		exprs = append(exprs, bound)
		cols = append(cols, ci)
	}
	return exprs, cols, nil
}

// buildAggregate builds the Aggregate node plus the output projection over
// its results.
func (b *Builder) buildAggregate(sel *sql.Select, input Node, blockCols []ColumnInfo) (Node, []expr.Expr, []ColumnInfo, error) {
	var groupBy []expr.Expr
	var groupNames []ColumnInfo
	for _, g := range sel.GroupBy {
		bound, err := BindExpr(g, blockCols)
		if err != nil {
			return nil, nil, nil, err
		}
		groupBy = append(groupBy, bound)
		groupNames = append(groupNames, deriveColumnInfo(bound, blockCols))
	}
	agg := &Aggregate{Input: input, GroupBy: groupBy, GroupNames: groupNames}

	// Walk the select list: aggregates become AggSpecs, scalars must match
	// a group expression.
	type outRef struct {
		ordinal int
		info    ColumnInfo
	}
	var outs []outRef
	for _, it := range sel.Items {
		if it.Star {
			return nil, nil, nil, fmt.Errorf("plan: * is not allowed with GROUP BY")
		}
		if it.Agg != sql.AggNone {
			spec := AggSpec{Kind: it.Agg}
			if it.Agg != sql.AggCountStar {
				bound, err := BindExpr(it.Expr, blockCols)
				if err != nil {
					return nil, nil, nil, err
				}
				spec.Arg = bound
			}
			spec.Name = it.Alias
			if spec.Name == "" {
				spec.Name = strings.ToLower(spec.Describe())
			}
			agg.Aggs = append(agg.Aggs, spec)
			ord := len(groupBy) + len(agg.Aggs) - 1
			outs = append(outs, outRef{ordinal: ord, info: ColumnInfo{Name: spec.Name, Kind: aggKind(spec)}})
			continue
		}
		bound, err := BindExpr(it.Expr, blockCols)
		if err != nil {
			return nil, nil, nil, err
		}
		found := -1
		for gi, g := range groupBy {
			if expr.Equivalent(g, bound) {
				found = gi
				break
			}
		}
		if found < 0 {
			return nil, nil, nil, fmt.Errorf("plan: %s must appear in GROUP BY or an aggregate", it.Expr)
		}
		info := groupNames[found]
		if it.Alias != "" {
			info.Name = it.Alias
		}
		outs = append(outs, outRef{ordinal: found, info: info})
	}
	aggCols := agg.Cols()
	var exprs []expr.Expr
	var cols []ColumnInfo
	for _, o := range outs {
		src := aggCols[o.ordinal]
		exprs = append(exprs, expr.NewColumn(src.Qualifier, src.Name, o.ordinal, o.info.Kind))
		cols = append(cols, o.info)
	}
	return agg, exprs, cols, nil
}

func aggKind(spec AggSpec) types.Kind {
	switch spec.Kind {
	case sql.AggCount, sql.AggCountStar, sql.AggCountDistinct:
		return types.KindInt
	case sql.AggAvg:
		return types.KindFloat
	default:
		if spec.Arg != nil {
			return spec.Arg.Type()
		}
		return types.KindInt
	}
}

// bindOrderKey resolves an ORDER BY expression to an output ordinal,
// appending a hidden projection column when the key is not already in the
// output. Matching tries (1) output alias, (2) expression equivalence with
// an output expression, (3) a fresh binding over the pre-projection schema.
func (b *Builder) bindOrderKey(key expr.Expr, outExprs []expr.Expr, outCols []ColumnInfo,
	inputCols []ColumnInfo, hasAgg bool, exprsOut *[]expr.Expr, colsOut *[]ColumnInfo) (int, error) {
	// Alias match: a bare column name equal to an output column name.
	if c, ok := key.(*expr.Column); ok && c.Qualifier == "" {
		for i, oc := range outCols {
			if strings.EqualFold(oc.Name, c.Name) {
				return i, nil
			}
		}
	}
	// Expression match over the block schema.
	if bound, err := BindExpr(key, inputCols); err == nil {
		for i, oe := range outExprs {
			if expr.Equivalent(oe, bound) {
				return i, nil
			}
		}
		if hasAgg {
			return 0, fmt.Errorf("plan: ORDER BY %s must reference the select list of a grouped query", key)
		}
		// Hidden column.
		ci := deriveColumnInfo(bound, inputCols)
		ci.Hidden = true
		*exprsOut = append(*exprsOut, bound)
		*colsOut = append(*colsOut, ci)
		return len(*colsOut) - 1, nil
	}
	return 0, fmt.Errorf("plan: cannot resolve ORDER BY %s", key)
}

// isIdentityProjection reports whether the projection is exactly the input
// schema in order with unchanged names.
func isIdentityProjection(exprs []expr.Expr, cols []ColumnInfo, input []ColumnInfo) bool {
	if len(exprs) != len(input) {
		return false
	}
	for i, e := range exprs {
		c, ok := e.(*expr.Column)
		if !ok || c.Index != i {
			return false
		}
		if !strings.EqualFold(cols[i].Name, input[i].Name) {
			return false
		}
	}
	return true
}

// deriveColumnInfo names a projected expression, propagating provenance for
// plain column references.
func deriveColumnInfo(e expr.Expr, input []ColumnInfo) ColumnInfo {
	if c, ok := e.(*expr.Column); ok && c.Index >= 0 && c.Index < len(input) {
		return input[c.Index]
	}
	return ColumnInfo{Name: e.String(), Kind: e.Type()}
}

// BindExpr resolves unbound column references (Index < 0) in e against the
// given schema, by qualifier+name or unique unqualified name. Bound columns
// are validated against the schema bounds.
func BindExpr(e expr.Expr, cols []ColumnInfo) (expr.Expr, error) {
	var bindErr error
	out := expr.Transform(e, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.Column)
		if !ok || bindErr != nil {
			return n
		}
		if c.Index >= 0 {
			if c.Index >= len(cols) {
				bindErr = fmt.Errorf("plan: column %s ordinal %d out of range", c.Name, c.Index)
			}
			return n
		}
		found := -1
		for i, ci := range cols {
			if !strings.EqualFold(ci.Name, c.Name) {
				continue
			}
			if c.Qualifier != "" && !strings.EqualFold(ci.Qualifier, c.Qualifier) {
				continue
			}
			if found >= 0 {
				bindErr = fmt.Errorf("plan: ambiguous column %s", c)
				return n
			}
			found = i
		}
		if found < 0 {
			bindErr = fmt.Errorf("plan: unknown column %s", c)
			return n
		}
		return expr.NewColumn(cols[found].Qualifier, cols[found].Name, found, cols[found].Kind)
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}
