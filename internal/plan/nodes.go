// Package plan defines softdb's logical query plans and the binder that
// builds them from parsed SQL. A select block becomes a JoinGroup of table
// scans with bound predicate conjuncts; aggregation, projection, ordering
// and union-all stack above it. The rewrite package transforms these trees
// (semantic query optimization) and the opt package lowers them to physical
// operators.
package plan

import (
	"fmt"
	"strings"

	"softdb/internal/catalog"
	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/sql"
	"softdb/internal/stats"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// ColumnInfo describes one output column of a plan node, with provenance
// back to a base table where the column is a direct reference (provenance
// drives constraint and statistics lookups).
type ColumnInfo struct {
	Qualifier string // binding alias in the query
	Name      string
	Kind      types.Kind
	// Source* identify the base-table column this output is a direct copy
	// of; SourceTable is empty for computed columns.
	SourceTable   string
	SourceColumn  string
	SourceOrdinal int
	Hidden        bool // appended only for sorting; stripped before output
}

// Node is a logical plan operator.
type Node interface {
	// Cols returns the node's output schema.
	Cols() []ColumnInfo
	// Inputs returns child nodes.
	Inputs() []Node
	// Describe renders a one-line summary (no children).
	Describe() string
}

// Scan reads one base table or summary table. Filter conjuncts are bound to
// the table's own column ordinals. EstimationOnly predicates are §5.1
// "special predicates": used for cardinality estimation, never applied.
type Scan struct {
	Table   string // catalog table name
	Alias   string
	Entry   *catalog.TableEntry   // set for base tables
	Summary *catalog.SummaryTable // set instead when scanning an AST
	Def     *schema.Table
	Filter  []expr.Expr
	EstOnly []stats.EstimationPredicate
	// PrunePreds are prune-only predicates planted by rewrite (derived from
	// correlations or interior join holes): sound for skipping whole pages
	// via synopses, never applied to rows. The optimizer merges them with
	// the scan's own sargable filter intervals when lowering.
	PrunePreds []PrunePred

	// PinnedIndex, when non-nil, forces this scan to use the given index
	// (used by tests and ablations); normally access-path selection is
	// cost-based.
	PinnedIndex *catalog.Index
}

// EntryHeap returns the heap backing this scan: the base table's heap, or
// a materialized summary table's. It is nil for informational summaries.
func (s *Scan) EntryHeap() *storage.Heap {
	if s.Summary != nil {
		return s.Summary.Heap
	}
	if s.Entry != nil {
		return s.Entry.Heap
	}
	return nil
}

// Cols implements Node.
func (s *Scan) Cols() []ColumnInfo {
	out := make([]ColumnInfo, len(s.Def.Columns))
	for i, c := range s.Def.Columns {
		out[i] = ColumnInfo{
			Qualifier:     s.Alias,
			Name:          c.Name,
			Kind:          c.Type,
			SourceTable:   s.Table,
			SourceColumn:  c.Name,
			SourceOrdinal: i,
		}
	}
	return out
}

// Inputs implements Node.
func (s *Scan) Inputs() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	var b strings.Builder
	if s.Summary != nil {
		fmt.Fprintf(&b, "ScanSummary %s", s.Summary.Name)
	} else {
		fmt.Fprintf(&b, "Scan %s", s.Table)
	}
	if s.Alias != "" && !strings.EqualFold(s.Alias, s.Table) {
		fmt.Fprintf(&b, " AS %s", s.Alias)
	}
	if len(s.Filter) > 0 {
		fmt.Fprintf(&b, " filter=%s", expr.And(s.Filter...))
	}
	for _, ep := range s.EstOnly {
		fmt.Fprintf(&b, " est-only=%s@%.3f", ep.Pred, ep.Confidence)
	}
	for _, pp := range s.PrunePreds {
		fmt.Fprintf(&b, " prune-only=%s", pp.Describe(s.Def.Columns[pp.Col].Name))
	}
	return b.String()
}

// JoinGroup is an unordered inner join of its inputs. Conjuncts are bound
// to the concatenation of the inputs' schemas in order. The optimizer picks
// the join order and methods.
type JoinGroup struct {
	Tables    []Node // scans (or nested plans) in binding order
	Conjuncts []expr.Expr
}

// Cols implements Node.
func (j *JoinGroup) Cols() []ColumnInfo {
	var out []ColumnInfo
	for _, t := range j.Tables {
		out = append(out, t.Cols()...)
	}
	return out
}

// Inputs implements Node.
func (j *JoinGroup) Inputs() []Node { return j.Tables }

// Describe implements Node.
func (j *JoinGroup) Describe() string {
	if len(j.Conjuncts) == 0 {
		return fmt.Sprintf("JoinGroup [%d tables]", len(j.Tables))
	}
	return fmt.Sprintf("JoinGroup [%d tables] on %s", len(j.Tables), expr.And(j.Conjuncts...))
}

// Offset returns the global ordinal of the first column of input i.
func (j *JoinGroup) Offset(i int) int {
	off := 0
	for k := 0; k < i; k++ {
		off += len(j.Tables[k].Cols())
	}
	return off
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Kind sql.AggKind
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column name
}

// Describe renders the aggregate.
func (a AggSpec) Describe() string {
	switch a.Kind {
	case sql.AggCountStar:
		return "COUNT(*)"
	case sql.AggCountDistinct:
		return fmt.Sprintf("COUNT(DISTINCT %s)", a.Arg)
	default:
		return fmt.Sprintf("%s(%s)", a.Kind, a.Arg)
	}
}

// Aggregate groups its input by the GroupBy expressions and computes Aggs.
// Output schema is group columns followed by aggregate columns.
type Aggregate struct {
	Input   Node
	GroupBy []expr.Expr
	Aggs    []AggSpec
	// GroupNames labels the group columns in the output.
	GroupNames []ColumnInfo
	// Redundant marks group columns that are functionally determined by the
	// remaining group columns (§2 [29]): the executor excludes them from
	// the grouping key (they are constant within each group) but still
	// emits them, so the output schema is unchanged.
	Redundant []bool
}

// Cols implements Node.
func (a *Aggregate) Cols() []ColumnInfo {
	out := append([]ColumnInfo(nil), a.GroupNames...)
	for _, g := range a.Aggs {
		kind := types.KindInt
		switch g.Kind {
		case sql.AggSum, sql.AggMin, sql.AggMax:
			if g.Arg != nil {
				kind = g.Arg.Type()
			}
		case sql.AggAvg:
			kind = types.KindFloat
		}
		out = append(out, ColumnInfo{Name: g.Name, Kind: kind})
	}
	return out
}

// Inputs implements Node.
func (a *Aggregate) Inputs() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	var parts []string
	for i, g := range a.GroupBy {
		s := g.String()
		if i < len(a.Redundant) && a.Redundant[i] {
			s += " [redundant]"
		}
		parts = append(parts, s)
	}
	var aggs []string
	for _, g := range a.Aggs {
		aggs = append(aggs, g.Describe())
	}
	if len(parts) == 0 {
		return fmt.Sprintf("Aggregate scalar [%s]", strings.Join(aggs, ", "))
	}
	return fmt.Sprintf("Aggregate by (%s) [%s]", strings.Join(parts, ", "), strings.Join(aggs, ", "))
}

// Project computes the output expressions over its input.
type Project struct {
	Input Node
	Exprs []expr.Expr
	Names []ColumnInfo
}

// Cols implements Node.
func (p *Project) Cols() []ColumnInfo { return p.Names }

// Inputs implements Node.
func (p *Project) Inputs() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	var parts []string
	for i, e := range p.Exprs {
		s := e.String()
		if p.Names[i].Name != "" && p.Names[i].Name != s {
			s += " AS " + p.Names[i].Name
		}
		parts = append(parts, s)
	}
	return "Project " + strings.Join(parts, ", ")
}

// SortKey is one ordering key bound to the input schema.
type SortKey struct {
	Ordinal int
	Desc    bool
}

// Sort orders its input.
type Sort struct {
	Input Node
	Keys  []SortKey
	// Eliminated records that rewrite proved the sort redundant (FD-based
	// order optimization); the physical planner drops it but EXPLAIN still
	// reports the decision.
	Eliminated bool
	Reason     string
}

// Cols implements Node.
func (s *Sort) Cols() []ColumnInfo { return s.Input.Cols() }

// Inputs implements Node.
func (s *Sort) Inputs() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Sort) Describe() string {
	var parts []string
	cols := s.Input.Cols()
	for _, k := range s.Keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		parts = append(parts, cols[k.Ordinal].Name+dir)
	}
	d := "Sort by " + strings.Join(parts, ", ")
	if s.Eliminated {
		d += " [ELIMINATED: " + s.Reason + "]"
	}
	return d
}

// Filter drops input rows failing its conjuncts (bound to the input's
// schema). Scans carry their own filters; this node exists for predicates
// that must run above other operators, e.g. HAVING above an Aggregate.
type Filter struct {
	Input Node
	Conds []expr.Expr
}

// Cols implements Node.
func (f *Filter) Cols() []ColumnInfo { return f.Input.Cols() }

// Inputs implements Node.
func (f *Filter) Inputs() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter " + expr.And(f.Conds...).String() }

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// Cols implements Node.
func (d *Distinct) Cols() []ColumnInfo { return d.Input.Cols() }

// Inputs implements Node.
func (d *Distinct) Inputs() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// Limit passes through the first N rows.
type Limit struct {
	Input Node
	N     int64
}

// Cols implements Node.
func (l *Limit) Cols() []ColumnInfo { return l.Input.Cols() }

// Inputs implements Node.
func (l *Limit) Inputs() []Node { return []Node{l.Input} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// UnionAll concatenates its arms. Pruned records arms removed by
// constraint-based branch elimination (§5) for EXPLAIN.
type UnionAll struct {
	Arms   []Node
	Pruned []string
}

// Cols implements Node.
func (u *UnionAll) Cols() []ColumnInfo { return u.Arms[0].Cols() }

// Inputs implements Node.
func (u *UnionAll) Inputs() []Node { return u.Arms }

// Describe implements Node.
func (u *UnionAll) Describe() string {
	d := fmt.Sprintf("UnionAll [%d arms]", len(u.Arms))
	if len(u.Pruned) > 0 {
		d += fmt.Sprintf(" pruned=%d (%s)", len(u.Pruned), strings.Join(u.Pruned, ", "))
	}
	return d
}

// Empty produces no rows with the given schema; the result of pruning every
// arm, or a provably-false predicate.
type Empty struct {
	Schema []ColumnInfo
	Reason string
}

// Cols implements Node.
func (e *Empty) Cols() []ColumnInfo { return e.Schema }

// Inputs implements Node.
func (e *Empty) Inputs() []Node { return nil }

// Describe implements Node.
func (e *Empty) Describe() string { return "Empty (" + e.Reason + ")" }

// Format renders the plan tree, one node per line, children indented.
func Format(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Inputs() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Transform rebuilds the tree bottom-up, replacing each node with fn(node)
// after its inputs have been transformed. fn must preserve output schema
// compatibility.
func Transform(n Node, fn func(Node) Node) Node {
	switch t := n.(type) {
	case *JoinGroup:
		tables := make([]Node, len(t.Tables))
		for i, in := range t.Tables {
			tables[i] = Transform(in, fn)
		}
		return fn(&JoinGroup{Tables: tables, Conjuncts: t.Conjuncts})
	case *Aggregate:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *Project:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *Sort:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *Filter:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *Distinct:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *Limit:
		c := *t
		c.Input = Transform(t.Input, fn)
		return fn(&c)
	case *UnionAll:
		arms := make([]Node, len(t.Arms))
		for i, a := range t.Arms {
			arms[i] = Transform(a, fn)
		}
		return fn(&UnionAll{Arms: arms, Pruned: t.Pruned})
	default:
		return fn(n)
	}
}
