package plan

import (
	"strings"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/schema"
	"softdb/internal/sql"
	"softdb/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	emp := mustTable("emp",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "dept_id", Type: types.KindInt},
		schema.Column{Name: "salary", Type: types.KindFloat, Nullable: true},
	)
	dept := mustTable("dept",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "name", Type: types.KindString, Nullable: true},
	)
	if _, err := cat.CreateTable(emp); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable(dept); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildPlan(t *testing.T, cat *catalog.Catalog, q string) Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Catalog: cat}
	n, err := b.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func buildErr(t *testing.T, cat *catalog.Catalog, q string) error {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Catalog: cat}
	_, err = b.BuildSelect(stmt.(*sql.Select))
	return err
}

func TestBuildSimpleScan(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT * FROM emp")
	scan, ok := n.(*Scan)
	if !ok {
		t.Fatalf("plan: %s", Format(n))
	}
	cols := scan.Cols()
	if len(cols) != 3 || cols[0].Name != "id" || cols[0].SourceTable != "emp" {
		t.Errorf("cols: %+v", cols)
	}
}

func TestFilterPushedToScan(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT id FROM emp WHERE salary > 100 AND id < 5")
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("plan: %s", Format(n))
	}
	scan := p.Input.(*Scan)
	if len(scan.Filter) != 2 {
		t.Errorf("filters: %v", scan.Filter)
	}
}

func TestJoinConjunctPlacement(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, `SELECT e.id, d.name FROM emp e, dept d
		WHERE e.dept_id = d.id AND e.salary > 50 AND d.name = 'x'`)
	p := n.(*Project)
	jg := p.Input.(*JoinGroup)
	if len(jg.Conjuncts) != 1 {
		t.Errorf("join conjuncts: %v", jg.Conjuncts)
	}
	empScan := jg.Tables[0].(*Scan)
	deptScan := jg.Tables[1].(*Scan)
	if len(empScan.Filter) != 1 || len(deptScan.Filter) != 1 {
		t.Errorf("pushed filters: emp=%v dept=%v", empScan.Filter, deptScan.Filter)
	}
	// The join conjunct binds to global ordinals: dept.id is ordinal 3.
	if jg.Conjuncts[0].String() != "(e.dept_id = d.id)" {
		t.Errorf("conjunct: %s", jg.Conjuncts[0])
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	cat := testCatalog(t)
	if err := buildErr(t, cat, "SELECT id FROM emp e, dept d"); err == nil {
		t.Error("ambiguous id should fail")
	}
	if err := buildErr(t, cat, "SELECT bogus FROM emp"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := buildErr(t, cat, "SELECT * FROM emp e, emp e"); err == nil {
		t.Error("duplicate binding should fail")
	}
	if err := buildErr(t, cat, "SELECT * FROM nope"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestAggregatePlanShape(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT dept_id, COUNT(*) AS n, AVG(salary) FROM emp GROUP BY dept_id")
	// The projection over the aggregate is the identity here, so the
	// builder omits it; accept either shape.
	var agg *Aggregate
	switch top := n.(type) {
	case *Project:
		agg = top.Input.(*Aggregate)
	case *Aggregate:
		agg = top
	default:
		t.Fatalf("plan: %s", Format(n))
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Errorf("agg: %s", agg.Describe())
	}
	cols := n.Cols()
	if cols[1].Name != "n" {
		t.Errorf("alias: %+v", cols)
	}
	if cols[2].Kind != types.KindFloat {
		t.Errorf("avg kind: %v", cols[2].Kind)
	}
}

func TestAggregateErrors(t *testing.T) {
	cat := testCatalog(t)
	if err := buildErr(t, cat, "SELECT salary, COUNT(*) FROM emp GROUP BY dept_id"); err == nil {
		t.Error("non-grouped column should fail")
	}
	if err := buildErr(t, cat, "SELECT * FROM emp GROUP BY dept_id"); err == nil {
		t.Error("star with group by should fail")
	}
	if err := buildErr(t, cat, "SELECT COUNT(*), id FROM emp"); err == nil {
		t.Error("aggregate mixed with bare column should fail")
	}
}

func TestOrderByBindsAliasExpressionAndHidden(t *testing.T) {
	cat := testCatalog(t)
	// Alias match.
	n := buildPlan(t, cat, "SELECT salary AS s FROM emp ORDER BY s")
	found := false
	walk(n, func(node Node) {
		if srt, ok := node.(*Sort); ok {
			found = true
			if len(srt.Keys) != 1 || srt.Keys[0].Ordinal != 0 {
				t.Errorf("alias key: %+v", srt.Keys)
			}
		}
	})
	if !found {
		t.Fatalf("no sort: %s", Format(n))
	}
	// Hidden column: ORDER BY a column not in the output.
	n = buildPlan(t, cat, "SELECT id FROM emp ORDER BY salary")
	top, ok := n.(*Project)
	if !ok {
		t.Fatalf("expected strip projection: %s", Format(n))
	}
	if len(top.Cols()) != 1 || top.Cols()[0].Name != "id" {
		t.Errorf("output cols: %+v", top.Cols())
	}
	hiddenSortSeen := false
	walk(n, func(node Node) {
		if srt, ok := node.(*Sort); ok {
			hiddenSortSeen = true
			inCols := srt.Input.Cols()
			if !inCols[srt.Keys[0].Ordinal].Hidden {
				t.Errorf("sort key should be hidden column: %+v", inCols)
			}
		}
	})
	if !hiddenSortSeen {
		t.Fatalf("no sort below strip: %s", Format(n))
	}
	// ORDER BY output of grouped query must reference the select list.
	if err := buildErr(t, cat, "SELECT dept_id FROM emp GROUP BY dept_id ORDER BY salary"); err == nil {
		t.Error("grouped order-by on non-output should fail")
	}
}

func TestUnionArityCheck(t *testing.T) {
	cat := testCatalog(t)
	if err := buildErr(t, cat, "SELECT id FROM emp UNION ALL SELECT id, dept_id FROM emp e2"); err == nil {
		t.Error("arity mismatch should fail")
	}
	n := buildPlan(t, cat, "SELECT id FROM emp UNION ALL SELECT id FROM dept")
	if _, ok := n.(*UnionAll); !ok {
		t.Fatalf("plan: %s", Format(n))
	}
}

func TestViewExpansionDerived(t *testing.T) {
	cat := testCatalog(t)
	viewQ, err := sql.Parse("SELECT id, name FROM dept WHERE id > 0")
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Catalog: cat, Views: map[string]*sql.Select{"v": viewQ.(*sql.Select)}}
	stmt, _ := sql.Parse("SELECT name FROM v WHERE id = 3")
	n, err := b.BuildSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	s := Format(n)
	if !strings.Contains(s, "Derived AS v") {
		t.Errorf("plan:\n%s", s)
	}
}

func TestDistinctLimitShape(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id LIMIT 3")
	if _, ok := n.(*Limit); !ok {
		t.Fatalf("top should be limit: %s", Format(n))
	}
	s := Format(n)
	for _, want := range []string{"Limit 3", "Sort", "Distinct", "Project", "Scan emp"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s in:\n%s", want, s)
		}
	}
}

func TestTransformClones(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT id FROM emp WHERE salary > 1 ORDER BY id LIMIT 2")
	count := 0
	n2 := Transform(n, func(node Node) Node {
		count++
		return node
	})
	if count < 4 {
		t.Errorf("transform visited %d nodes", count)
	}
	if Format(n2) != Format(n) {
		t.Error("identity transform should preserve shape")
	}
}

func TestExpressionProjection(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT salary * 2 AS dbl FROM emp")
	p := n.(*Project)
	if p.Cols()[0].Name != "dbl" || p.Cols()[0].SourceTable != "" {
		t.Errorf("computed column: %+v", p.Cols()[0])
	}
}

func TestQualifiedStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	n := buildPlan(t, cat, "SELECT d.*, e.id FROM emp e, dept d WHERE e.dept_id = d.id")
	p := n.(*Project)
	cols := p.Cols()
	if len(cols) != 3 || cols[0].Qualifier != "d" || cols[2].Qualifier != "e" {
		t.Errorf("cols: %+v", cols)
	}
}

func walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Inputs() {
		walk(c, fn)
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
