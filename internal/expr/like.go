package expr

import (
	"fmt"

	"softdb/internal/types"
)

// Like is SQL `X [NOT] LIKE pattern` with `%` (any run) and `_` (any single
// character) wildcards. NULL operands yield NULL.
type Like struct {
	X       Expr
	Pattern Expr
	Negate  bool
}

// NewLike returns a LIKE node.
func NewLike(x, pattern Expr, negate bool) *Like {
	return &Like{X: x, Pattern: pattern, Negate: negate}
}

// Eval implements Expr.
func (l *Like) Eval(row types.Row) (types.Datum, error) {
	x, err := l.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	p, err := l.Pattern.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() || p.IsNull() {
		return types.Null, nil
	}
	if x.Kind() != types.KindString || p.Kind() != types.KindString {
		return types.Null, fmt.Errorf("expr: LIKE requires string operands, got %s and %s", x.Kind(), p.Kind())
	}
	m := likeMatch(x.Str(), p.Str())
	if l.Negate {
		m = !m
	}
	return types.NewBool(m), nil
}

// likeMatch implements SQL LIKE semantics over bytes with linear-time
// greedy backtracking on '%' (the classic two-pointer wildcard match).
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Type implements Expr.
func (l *Like) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (l *Like) String() string {
	op := " LIKE "
	if l.Negate {
		op = " NOT LIKE "
	}
	return "(" + l.X.String() + op + l.Pattern.String() + ")"
}
