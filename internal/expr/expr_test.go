package expr

import (
	"testing"

	"softdb/internal/types"
)

func col(i int, k types.Kind) *Column { return NewColumn("t", "c", i, k) }

func iconst(v int64) *Const { return NewConst(types.NewInt(v)) }

func TestColumnEval(t *testing.T) {
	row := types.Row{types.NewInt(10), types.NewString("x")}
	v, err := col(1, types.KindString).Eval(row)
	if err != nil || v.Str() != "x" {
		t.Fatalf("column eval: %v %v", v, err)
	}
	if _, err := col(5, types.KindInt).Eval(row); err == nil {
		t.Error("out-of-range column should error")
	}
	if _, err := NewColumn("", "c", -1, types.KindInt).Eval(row); err == nil {
		t.Error("unbound column should error")
	}
}

func TestArithmeticEval(t *testing.T) {
	row := types.Row{types.NewInt(6)}
	e := NewBinary(OpMul, NewBinary(OpAdd, col(0, types.KindInt), iconst(4)), iconst(2))
	v, err := e.Eval(row)
	if err != nil || v.Int() != 20 {
		t.Fatalf("(6+4)*2 = %v, %v", v, err)
	}
	if e.Type() != types.KindInt {
		t.Error("type inference")
	}
}

func TestComparisonThreeValued(t *testing.T) {
	lt := NewBinary(OpLt, col(0, types.KindInt), iconst(5))
	v, _ := lt.Eval(types.Row{types.NewInt(3)})
	if !v.Bool() {
		t.Error("3 < 5")
	}
	v, _ = lt.Eval(types.Row{types.Null})
	if !v.IsNull() {
		t.Error("NULL < 5 is NULL")
	}
}

func TestKleeneLogic(t *testing.T) {
	null := NewConst(types.Null)
	tru := NewConst(types.NewBool(true))
	fls := NewConst(types.NewBool(false))
	cases := []struct {
		e    Expr
		want string
	}{
		{NewBinary(OpAnd, null, fls), "FALSE"},
		{NewBinary(OpAnd, fls, null), "FALSE"},
		{NewBinary(OpAnd, null, tru), "NULL"},
		{NewBinary(OpAnd, tru, null), "NULL"},
		{NewBinary(OpOr, null, tru), "TRUE"},
		{NewBinary(OpOr, tru, null), "TRUE"},
		{NewBinary(OpOr, null, fls), "NULL"},
		{NewBinary(OpOr, fls, null), "NULL"},
		{NewUnary(OpNot, null), "NULL"},
		{NewUnary(OpNot, tru), "FALSE"},
	}
	for _, c := range cases {
		v, err := c.e.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != c.want {
			t.Errorf("%s = %s, want %s", c.e, v, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	isn := NewUnary(OpIsNull, col(0, types.KindInt))
	v, _ := isn.Eval(types.Row{types.Null})
	if !v.Bool() {
		t.Error("NULL IS NULL")
	}
	v, _ = isn.Eval(types.Row{types.NewInt(0)})
	if v.Bool() {
		t.Error("0 IS NULL should be false")
	}
	v, _ = NewUnary(OpIsNotNull, col(0, types.KindInt)).Eval(types.Row{types.NewInt(0)})
	if !v.Bool() {
		t.Error("0 IS NOT NULL")
	}
}

func TestInList(t *testing.T) {
	in := NewInList(col(0, types.KindInt), []Expr{iconst(1), iconst(3)})
	v, _ := in.Eval(types.Row{types.NewInt(3)})
	if !v.Bool() {
		t.Error("3 IN (1,3)")
	}
	v, _ = in.Eval(types.Row{types.NewInt(2)})
	if v.Bool() {
		t.Error("2 IN (1,3)")
	}
	// 2 IN (1, NULL) is NULL.
	inNull := NewInList(col(0, types.KindInt), []Expr{iconst(1), NewConst(types.Null)})
	v, _ = inNull.Eval(types.Row{types.NewInt(2)})
	if !v.IsNull() {
		t.Error("2 IN (1, NULL) should be NULL")
	}
	// 1 IN (1, NULL) is TRUE.
	v, _ = inNull.Eval(types.Row{types.NewInt(1)})
	if !v.Bool() {
		t.Error("1 IN (1, NULL) should be TRUE")
	}
}

func TestEvalBoolRejectsNullAndFalse(t *testing.T) {
	lt := NewBinary(OpLt, col(0, types.KindInt), iconst(5))
	ok, err := EvalBool(lt, types.Row{types.Null})
	if err != nil || ok {
		t.Error("NULL predicate rejects")
	}
	ok, err = EvalBool(lt, types.Row{types.NewInt(9)})
	if err != nil || ok {
		t.Error("FALSE predicate rejects")
	}
	if _, err := EvalBool(iconst(3), nil); err == nil {
		t.Error("non-bool predicate should error")
	}
}

func TestOpHelpers(t *testing.T) {
	if OpLt.Swap() != OpGt || OpGe.Swap() != OpLe || OpEq.Swap() != OpEq {
		t.Error("Swap")
	}
	if OpLt.Negate() != OpGe || OpEq.Negate() != OpNe {
		t.Error("Negate")
	}
	if !OpLe.IsComparison() || OpAnd.IsComparison() {
		t.Error("IsComparison")
	}
}

func TestAndBuilder(t *testing.T) {
	if !IsConstTrue(And()) {
		t.Error("empty And is TRUE")
	}
	p := NewBinary(OpEq, col(0, types.KindInt), iconst(1))
	if And(p) != p {
		t.Error("single And is identity")
	}
	q := NewBinary(OpEq, col(1, types.KindInt), iconst(2))
	combined := And(p, nil, q)
	cs := SplitConjuncts(combined)
	if len(cs) != 2 {
		t.Errorf("split: %d conjuncts", len(cs))
	}
}

func TestStringCanonical(t *testing.T) {
	a := NewBinary(OpEq, col(0, types.KindInt), iconst(1))
	b := NewBinary(OpEq, col(0, types.KindInt), iconst(1))
	if !Equivalent(a, b) {
		t.Error("identical trees are equivalent")
	}
	c := NewBinary(OpEq, col(0, types.KindInt), iconst(2))
	if Equivalent(a, c) {
		t.Error("different constants are not equivalent")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"aXbXc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"a%b", "a%b", true}, // literal via wildcard still matches
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestLikeEvalNullAndTypes(t *testing.T) {
	l := NewLike(NewConst(types.Null), NewConst(types.NewString("%")), false)
	v, err := l.Eval(nil)
	if err != nil || !v.IsNull() {
		t.Error("NULL LIKE pattern is NULL")
	}
	bad := NewLike(NewConst(types.NewInt(5)), NewConst(types.NewString("%")), false)
	if _, err := bad.Eval(nil); err == nil {
		t.Error("non-string LIKE should error")
	}
	neg := NewLike(NewConst(types.NewString("abc")), NewConst(types.NewString("x%")), true)
	v, _ = neg.Eval(nil)
	if !v.Bool() {
		t.Error("NOT LIKE")
	}
	if neg.String() != "('abc' NOT LIKE 'x%')" {
		t.Errorf("render: %s", neg)
	}
}

func TestCanonicalAliasInsensitive(t *testing.T) {
	a := NewBinary(OpSub, NewColumn("p", "end_date", 2, types.KindDate), NewColumn("p", "start_date", 1, types.KindDate))
	b := NewBinary(OpSub, NewColumn("project", "end_date", 2, types.KindDate), NewColumn("project", "start_date", 1, types.KindDate))
	if Canonical(a) != Canonical(b) {
		t.Errorf("canonical forms differ: %q vs %q", Canonical(a), Canonical(b))
	}
	if Canonical(a) != "($2 - $1)" {
		t.Errorf("canonical: %q", Canonical(a))
	}
}

func TestDecomposeComparison(t *testing.T) {
	lhs := NewBinary(OpSub, col(2, types.KindInt), col(1, types.KindInt))
	e := NewBinary(OpLe, lhs, iconst(5))
	gotLHS, op, val, ok := DecomposeComparison(e)
	if !ok || op != OpLe || val.Int() != 5 || gotLHS != lhs {
		t.Errorf("decompose: %v %v %v %v", gotLHS, op, val, ok)
	}
	// Swapped: const on the left.
	e = NewBinary(OpGt, iconst(5), lhs)
	_, op, _, ok = DecomposeComparison(e)
	if !ok || op != OpLt {
		t.Errorf("swapped: %v %v", op, ok)
	}
	// Both sides columns: not decomposable.
	if _, _, _, ok := DecomposeComparison(NewBinary(OpEq, col(0, types.KindInt), col(1, types.KindInt))); ok {
		t.Error("col=col should not decompose")
	}
	// Not a comparison.
	if _, _, _, ok := DecomposeComparison(NewBinary(OpAdd, col(0, types.KindInt), iconst(1))); ok {
		t.Error("arithmetic should not decompose")
	}
}

func TestIntervalForOp(t *testing.T) {
	iv, ok := IntervalForOp(OpLe, types.NewInt(5))
	if !ok || !iv.Contains(types.NewInt(5)) || iv.Contains(types.NewInt(6)) {
		t.Errorf("le: %s", iv)
	}
	iv, ok = IntervalForOp(OpEq, types.NewInt(3))
	if !ok || iv.EqualityConstant == nil {
		t.Errorf("eq: %s", iv)
	}
	if _, ok := IntervalForOp(OpNe, types.NewInt(3)); ok {
		t.Error("ne has no interval")
	}
	iv, ok = IntervalForOp(OpLt, types.Null)
	if !ok || !iv.Empty() {
		t.Error("comparison with NULL is empty")
	}
}
