package expr

import (
	"sort"

	"softdb/internal/types"
)

// Walk visits e and every descendant in preorder. fn returning false prunes
// the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Unary:
		Walk(n.X, fn)
	case *InList:
		Walk(n.X, fn)
		for _, c := range n.List {
			Walk(c, fn)
		}
	case *Like:
		Walk(n.X, fn)
		Walk(n.Pattern, fn)
	}
}

// Transform rebuilds the tree bottom-up, replacing each node with fn(node).
// fn receives nodes whose children have already been transformed.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Binary:
		l, r := Transform(n.L, fn), Transform(n.R, fn)
		if l != n.L || r != n.R {
			return fn(&Binary{Op: n.Op, L: l, R: r})
		}
	case *Unary:
		x := Transform(n.X, fn)
		if x != n.X {
			return fn(&Unary{Op: n.Op, X: x})
		}
	case *InList:
		x := Transform(n.X, fn)
		list := n.List
		changed := x != n.X
		for i, c := range n.List {
			nc := Transform(c, fn)
			if nc != c {
				if !changed || &list[0] == &n.List[0] {
					list = append([]Expr(nil), n.List...)
				}
				list[i] = nc
				changed = true
			}
		}
		if changed {
			return fn(&InList{X: x, List: list})
		}
	case *Like:
		x, p := Transform(n.X, fn), Transform(n.Pattern, fn)
		if x != n.X || p != n.Pattern {
			return fn(&Like{X: x, Pattern: p, Negate: n.Negate})
		}
	}
	return fn(e)
}

// RemapColumns returns a copy of e with every column index i replaced by
// mapping[i]. A missing key leaves the index unchanged.
func RemapColumns(e Expr, mapping map[int]int) Expr {
	return Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Column); ok {
			if ni, ok := mapping[c.Index]; ok && ni != c.Index {
				cc := *c
				cc.Index = ni
				return &cc
			}
		}
		return n
	})
}

// ShiftColumns adds delta to every column index, used when an expression
// moves across a join that offsets one side's columns.
func ShiftColumns(e Expr, delta int) Expr {
	if delta == 0 {
		return e
	}
	return Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Column); ok {
			cc := *c
			cc.Index += delta
			return &cc
		}
		return n
	})
}

// ColumnIndexes returns the sorted set of column ordinals referenced by e.
func ColumnIndexes(e Expr) []int {
	set := map[int]bool{}
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*Column); ok {
			set[c.Index] = true
		}
		return true
	})
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// ReferencesOnly reports whether every column referenced by e is in the
// allowed set.
func ReferencesOnly(e Expr, allowed map[int]bool) bool {
	ok := true
	Walk(e, func(n Expr) bool {
		if c, isCol := n.(*Column); isCol && !allowed[c.Index] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	// Drop constant TRUE.
	if c, ok := e.(*Const); ok && c.Value.Kind() == types.KindBool && c.Value.Bool() {
		return nil
	}
	return []Expr{e}
}

// IsConstTrue reports whether e is the literal TRUE (or nil).
func IsConstTrue(e Expr) bool {
	if e == nil {
		return true
	}
	c, ok := e.(*Const)
	return ok && c.Value.Kind() == types.KindBool && c.Value.Bool()
}

// IsConstFalse reports whether e is the literal FALSE.
func IsConstFalse(e Expr) bool {
	c, ok := e.(*Const)
	return ok && c.Value.Kind() == types.KindBool && !c.Value.Bool()
}

// FoldConstants evaluates constant subtrees. Errors during folding leave the
// subtree untouched (they will surface at execution if the subtree is ever
// reached).
func FoldConstants(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		switch n.(type) {
		case *Const, *Column:
			return n
		}
		if !isConstTree(n) {
			// Simplify AND/OR with constant sides.
			if b, ok := n.(*Binary); ok {
				switch b.Op {
				case OpAnd:
					if IsConstTrue(b.L) {
						return b.R
					}
					if IsConstTrue(b.R) {
						return b.L
					}
					if IsConstFalse(b.L) || IsConstFalse(b.R) {
						return NewConst(types.NewBool(false))
					}
				case OpOr:
					if IsConstFalse(b.L) {
						return b.R
					}
					if IsConstFalse(b.R) {
						return b.L
					}
					if c, ok := b.L.(*Const); ok && c.Value.Kind() == types.KindBool && c.Value.Bool() {
						return NewConst(types.NewBool(true))
					}
					if c, ok := b.R.(*Const); ok && c.Value.Kind() == types.KindBool && c.Value.Bool() {
						return NewConst(types.NewBool(true))
					}
				}
			}
			return n
		}
		v, err := n.Eval(nil)
		if err != nil {
			return n
		}
		return NewConst(v)
	})
}

func isConstTree(e Expr) bool {
	ok := true
	Walk(e, func(n Expr) bool {
		if _, isCol := n.(*Column); isCol {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equivalent reports whether two expressions have identical canonical
// renderings. It is a conservative syntactic check used to deduplicate
// introduced predicates.
func Equivalent(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// ContainsConjunct reports whether the conjunct list already contains a
// predicate equivalent to p.
func ContainsConjunct(conjuncts []Expr, p Expr) bool {
	for _, c := range conjuncts {
		if Equivalent(c, p) {
			return true
		}
	}
	return false
}
