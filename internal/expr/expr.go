// Package expr defines softdb's scalar expression trees and their
// evaluation under SQL three-valued logic. Expressions are built by the SQL
// parser, bound to column ordinals by the planner, evaluated by the
// executor, and analyzed (conjunct splitting, interval extraction,
// implication) by the rewrite engine and the statistics layer.
package expr

import (
	"fmt"
	"strings"

	"softdb/internal/types"
)

// Op enumerates binary and unary operators.
type Op uint8

const (
	// Arithmetic.
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	// Comparison.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Boolean connectives.
	OpAnd
	OpOr
	// Unary.
	OpNot
	OpNeg
	OpIsNull
	OpIsNotNull
)

// String renders the operator in SQL spelling.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpNeg:
		return "-"
	case OpIsNull:
		return "IS NULL"
	case OpIsNotNull:
		return "IS NOT NULL"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsComparison reports whether o is one of =, <>, <, <=, >, >=.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Swap returns the comparison with operands exchanged: a < b ⇔ b > a.
func (o Op) Swap() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o
	}
}

// Negate returns the complement comparison under two-valued logic.
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		return o
	}
}

// Expr is a scalar expression node.
type Expr interface {
	// Eval computes the expression over the given input row. Column nodes
	// index into the row by their bound ordinal.
	Eval(row types.Row) (types.Datum, error)
	// Type reports the best-effort static result kind.
	Type() types.Kind
	// String renders the expression in SQL-like syntax; it is canonical
	// enough to serve as an equivalence key for identical trees.
	String() string
}

// Column is a reference to an input column by ordinal. Name and Qualifier
// are retained for display and for late binding by the planner; Index is
// authoritative at evaluation time.
type Column struct {
	Qualifier string // table alias, may be empty
	Name      string
	Index     int // ordinal into the input row; -1 when unbound
	Kind      types.Kind
}

// NewColumn returns a bound column reference.
func NewColumn(qualifier, name string, index int, kind types.Kind) *Column {
	return &Column{Qualifier: qualifier, Name: name, Index: index, Kind: kind}
}

// Eval implements Expr.
func (c *Column) Eval(row types.Row) (types.Datum, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return types.Null, fmt.Errorf("expr: unbound column %s (index %d, row arity %d)", c.Name, c.Index, len(row))
	}
	return row[c.Index], nil
}

// Type implements Expr.
func (c *Column) Type() types.Kind { return c.Kind }

// String implements Expr.
func (c *Column) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Const is a literal value.
type Const struct {
	Value types.Datum
}

// NewConst returns a literal node.
func NewConst(v types.Datum) *Const { return &Const{Value: v} }

// Eval implements Expr.
func (c *Const) Eval(types.Row) (types.Datum, error) { return c.Value, nil }

// Type implements Expr.
func (c *Const) Type() types.Kind { return c.Value.Kind() }

// String implements Expr.
func (c *Const) String() string { return c.Value.String() }

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	L, R Expr
}

// NewBinary returns a binary node.
func NewBinary(op Op, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Eq is shorthand for an equality comparison.
func Eq(l, r Expr) *Binary { return NewBinary(OpEq, l, r) }

// And conjoins the given predicates, returning TRUE for an empty list.
func And(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = NewBinary(OpAnd, out, p)
		}
	}
	if out == nil {
		return NewConst(types.NewBool(true))
	}
	return out
}

// Eval implements Expr with SQL three-valued logic for comparisons and
// connectives.
func (b *Binary) Eval(row types.Row) (types.Datum, error) {
	switch b.Op {
	case OpAnd, OpOr:
		return b.evalLogic(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	switch b.Op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		return l.Mul(r)
	case OpDiv:
		return l.Div(r)
	}
	// Comparison: NULL operand yields NULL.
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	c := l.Compare(r)
	var res bool
	switch b.Op {
	case OpEq:
		res = c == 0
	case OpNe:
		res = c != 0
	case OpLt:
		res = c < 0
	case OpLe:
		res = c <= 0
	case OpGt:
		res = c > 0
	case OpGe:
		res = c >= 0
	default:
		return types.Null, fmt.Errorf("expr: unknown binary operator %s", b.Op)
	}
	return types.NewBool(res), nil
}

// asBool checks that a logic operand is boolean before the Bool() accessor
// touches it: a user query like "WHERE id AND x" must get a type error, not
// the accessor panic.
func asBool(v types.Datum) (bool, error) {
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("expr: %s value where boolean expected", v.Kind())
	}
	return v.Bool(), nil
}

// evalLogic implements Kleene AND/OR.
func (b *Binary) evalLogic(row types.Row) (types.Datum, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	// Short circuit where the result is determined.
	if !l.IsNull() {
		lb, err := asBool(l)
		if err != nil {
			return types.Null, err
		}
		if b.Op == OpAnd && !lb {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && lb {
			return types.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if r.IsNull() {
		return types.Null, nil
	}
	rb, err := asBool(r)
	if err != nil {
		return types.Null, err
	}
	if b.Op == OpAnd {
		if !rb {
			return types.NewBool(false), nil
		}
		if l.IsNull() {
			return types.Null, nil
		}
		return types.NewBool(true), nil
	}
	// OR
	if rb {
		return types.NewBool(true), nil
	}
	if l.IsNull() {
		return types.Null, nil
	}
	return types.NewBool(false), nil
}

// Type implements Expr.
func (b *Binary) Type() types.Kind {
	switch {
	case b.Op.IsComparison(), b.Op == OpAnd, b.Op == OpOr:
		return types.KindBool
	case b.L.Type() == types.KindFloat || b.R.Type() == types.KindFloat:
		return types.KindFloat
	case b.L.Type() == types.KindDate && (b.Op == OpAdd || b.Op == OpSub):
		if b.R.Type() == types.KindDate && b.Op == OpSub {
			return types.KindInt
		}
		return types.KindDate
	default:
		return b.L.Type()
	}
}

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Unary applies a unary operator (NOT, -, IS NULL, IS NOT NULL).
type Unary struct {
	Op Op
	X  Expr
}

// NewUnary returns a unary node.
func NewUnary(op Op, x Expr) *Unary { return &Unary{Op: op, X: x} }

// Eval implements Expr.
func (u *Unary) Eval(row types.Row) (types.Datum, error) {
	v, err := u.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	switch u.Op {
	case OpNot:
		if v.IsNull() {
			return types.Null, nil
		}
		bv, err := asBool(v)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(!bv), nil
	case OpNeg:
		if v.IsNull() {
			return types.Null, nil
		}
		return types.NewInt(0).Sub(v)
	case OpIsNull:
		return types.NewBool(v.IsNull()), nil
	case OpIsNotNull:
		return types.NewBool(!v.IsNull()), nil
	default:
		return types.Null, fmt.Errorf("expr: unknown unary operator %s", u.Op)
	}
}

// Type implements Expr.
func (u *Unary) Type() types.Kind {
	switch u.Op {
	case OpNeg:
		return u.X.Type()
	default:
		return types.KindBool
	}
}

// String implements Expr.
func (u *Unary) String() string {
	switch u.Op {
	case OpIsNull, OpIsNotNull:
		return "(" + u.X.String() + " " + u.Op.String() + ")"
	default:
		return "(" + u.Op.String() + " " + u.X.String() + ")"
	}
}

// InList is `X IN (v1, v2, ...)`.
type InList struct {
	X    Expr
	List []Expr
}

// NewInList returns an IN-list node.
func NewInList(x Expr, list []Expr) *InList { return &InList{X: x, List: list} }

// Eval implements Expr: NULL if x is NULL or no match and a NULL appears.
func (in *InList) Eval(row types.Row) (types.Datum, error) {
	x, err := in.X.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if x.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, e := range in.List {
		v, err := e.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if x.Compare(v) == 0 {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(false), nil
}

// Type implements Expr.
func (in *InList) Type() types.Kind { return types.KindBool }

// String implements Expr.
func (in *InList) String() string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(in.X.String())
	b.WriteString(" IN (")
	for i, e := range in.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("))")
	return b.String()
}

// EvalBool evaluates a predicate and reports whether it is TRUE (NULL and
// FALSE both reject, per SQL WHERE semantics).
func EvalBool(e Expr, row types.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("expr: predicate %s evaluated to %s, not BOOL", e, v.Kind())
	}
	return v.Bool(), nil
}
