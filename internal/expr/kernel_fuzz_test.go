package expr

import (
	"math/rand"
	"testing"

	"softdb/internal/types"
	"softdb/internal/vec"
)

// FuzzKernelParity pins the compiled predicate program to the row-at-a-time
// tree-walk it replaces: for a randomized schema, randomized rows (with
// NULLs), and a randomized conjunction, the set of rows the staged kernels
// keep must equal the set EvalBool keeps, and an evaluation error on one
// path must surface on the other (error *ordering* may differ — see the
// package comment in kernel.go).
//
// The generator keeps each column's kind stable across rows (as the storage
// layer guarantees) but mixes comparison shapes: column-constant ranges
// that fuse into interval stages, <>, IS [NOT] NULL, column-column compares
// that must fall back to the generic stage, and occasional kind-mismatched
// constants that exercise error paths.
func FuzzKernelParity(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(16))
	f.Add(int64(2), uint8(2), uint8(64))
	f.Add(int64(3), uint8(3), uint8(5))
	f.Add(int64(-9), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, ncond, nrows uint8) {
		rng := rand.New(rand.NewSource(seed))
		rows := fuzzRows(rng, 1+int(nrows)%96)
		conds := fuzzConjuncts(rng, 1+int(ncond)%4)

		prog := CompilePredicate(conds)

		// Kernel path: run every stage over an identity selection,
		// ping-ponging two buffers the way the executor does (RunStage's
		// out may not alias its sel).
		var b vec.Batch
		b.Reset(rows)
		sel := vec.IdentitySel(nil, len(rows))
		out := make([]int32, 0, len(rows))
		var kernelErr error
		for i := range prog.Stages {
			var res []int32
			res, kernelErr = prog.RunStage(i, &b, sel, out)
			if kernelErr != nil {
				break
			}
			sel, out = res, sel[:0]
		}

		// Tree-walk path.
		var walkKept []int32
		var walkErr error
	walk:
		for i, row := range rows {
			for _, c := range conds {
				ok, err := EvalBool(c, row)
				if err != nil {
					walkErr = err
					break walk
				}
				if !ok {
					continue walk
				}
			}
			walkKept = append(walkKept, int32(i))
		}

		if (kernelErr != nil) != (walkErr != nil) {
			t.Fatalf("error parity broken: kernel=%v walk=%v conds=%v", kernelErr, walkErr, conds)
		}
		if kernelErr != nil {
			return // both error: ordering/row may differ by design
		}
		if len(sel) != len(walkKept) {
			t.Fatalf("kept %d rows via kernels, %d via tree-walk (conds=%v)", len(sel), len(walkKept), conds)
		}
		for i := range sel {
			if sel[i] != walkKept[i] {
				t.Fatalf("kept-set diverges at position %d: kernel row %d vs walk row %d (conds=%v)", i, sel[i], walkKept[i], conds)
			}
		}
	})
}

// Fuzz schema: #0 a INT, #1 b FLOAT, #2 c STRING, #3 d DATE, #4 e INT.
// Two INT columns so column-column compares have a same-kind pair.
var fuzzKinds = []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindDate, types.KindInt}

func fuzzRows(rng *rand.Rand, n int) []types.Row {
	words := []string{"ape", "box", "cat", "dog", "elk", "fox"}
	rows := make([]types.Row, n)
	for i := range rows {
		row := make(types.Row, len(fuzzKinds))
		for ord, k := range fuzzKinds {
			if rng.Intn(8) == 0 {
				row[ord] = types.Null
				continue
			}
			switch k {
			case types.KindInt:
				row[ord] = types.NewInt(int64(rng.Intn(21) - 10))
			case types.KindFloat:
				row[ord] = types.NewFloat(float64(rng.Intn(41)-20) / 2)
			case types.KindString:
				row[ord] = types.NewString(words[rng.Intn(len(words))])
			case types.KindDate:
				row[ord] = types.NewDate(int64(10000 + rng.Intn(30)))
			}
		}
		rows[i] = row
	}
	return rows
}

// fuzzConst draws a constant from the same domain as fuzzRows, so
// comparisons hit bounds and interior values often. With a small
// probability the constant's kind mismatches the column, exercising the
// comparison error paths on both the kernel and the tree-walk.
func fuzzConst(rng *rand.Rand, k types.Kind) types.Datum {
	if rng.Intn(16) == 0 {
		if k == types.KindString {
			return types.NewInt(3)
		}
		return types.NewString("oops")
	}
	switch k {
	case types.KindFloat:
		return types.NewFloat(float64(rng.Intn(41)-20) / 2)
	case types.KindString:
		return types.NewString([]string{"ape", "cat", "fox", "zzz"}[rng.Intn(4)])
	case types.KindDate:
		return types.NewDate(int64(10000 + rng.Intn(30)))
	default:
		return types.NewInt(int64(rng.Intn(21) - 10))
	}
}

func fuzzConjuncts(rng *rand.Rand, n int) []Expr {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	names := []string{"a", "b", "c", "d", "e"}
	conds := make([]Expr, n)
	for i := range conds {
		ord := rng.Intn(len(fuzzKinds))
		col := NewColumn("", names[ord], ord, fuzzKinds[ord])
		switch rng.Intn(6) {
		case 0:
			conds[i] = NewUnary(OpIsNull, col)
		case 1:
			conds[i] = NewUnary(OpIsNotNull, col)
		case 2: // column-column: forces the generic stage
			other := rng.Intn(len(fuzzKinds))
			conds[i] = NewBinary(ops[rng.Intn(len(ops))], col,
				NewColumn("", names[other], other, fuzzKinds[other]))
		default:
			op := ops[rng.Intn(len(ops))]
			c := NewConst(fuzzConst(rng, fuzzKinds[ord]))
			if rng.Intn(2) == 0 { // constant on the left too
				conds[i] = NewBinary(op, c, col)
			} else {
				conds[i] = NewBinary(op, col, c)
			}
		}
	}
	return conds
}
