package expr

import (
	"math/rand"
	"testing"

	"softdb/internal/types"
)

func di(v int64) types.Datum { return types.NewInt(v) }

func TestIntervalBasics(t *testing.T) {
	iv := Between(di(1), di(10), true, true)
	if !iv.Contains(di(1)) || !iv.Contains(di(10)) || iv.Contains(di(11)) {
		t.Error("closed interval membership")
	}
	open := Between(di(1), di(10), false, false)
	if open.Contains(di(1)) || open.Contains(di(10)) || !open.Contains(di(5)) {
		t.Error("open interval membership")
	}
	if !Unbounded().Contains(di(1 << 60)) {
		t.Error("unbounded contains everything")
	}
	if Unbounded().Contains(types.Null) {
		t.Error("NULL is in no interval")
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !Between(di(5), di(1), true, true).Empty() {
		t.Error("inverted bounds are empty")
	}
	if !Between(di(5), di(5), true, false).Empty() {
		t.Error("half-open point is empty")
	}
	if Between(di(5), di(5), true, true).Empty() {
		t.Error("closed point is non-empty")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Between(di(0), di(10), true, true)
	b := Between(di(5), di(20), true, true)
	x := a.Intersect(b)
	if !x.Contains(di(5)) || !x.Contains(di(10)) || x.Contains(di(4)) || x.Contains(di(11)) {
		t.Errorf("intersection: %s", x)
	}
	if !a.Intersect(Between(di(11), di(12), true, true)).Empty() {
		t.Error("disjoint intersection is empty")
	}
	// Unbounded is identity.
	if a.Intersect(Unbounded()).String() != a.String() {
		t.Error("intersect with unbounded")
	}
	// Touching endpoints with mixed inclusivity.
	c := Between(di(0), di(5), true, false).Intersect(Between(di(5), di(9), true, true))
	if !c.Empty() {
		t.Errorf("[0,5) ∩ [5,9] should be empty: %s", c)
	}
	d := Between(di(0), di(5), true, true).Intersect(Between(di(5), di(9), true, true))
	if d.Empty() || !d.Contains(di(5)) {
		t.Errorf("[0,5] ∩ [5,9] is {5}: %s", d)
	}
	if d.EqualityConstant == nil || d.EqualityConstant.Int() != 5 {
		t.Error("point intersection should expose equality constant")
	}
}

func TestIntervalDisjointCovered(t *testing.T) {
	jan := Between(di(1), di(31), true, true)
	mar := Between(di(60), di(90), true, true)
	if !jan.Disjoint(mar) {
		t.Error("jan and mar disjoint")
	}
	if jan.Disjoint(Between(di(31), di(60), true, true)) {
		t.Error("touching closed intervals are not disjoint")
	}
	if !Between(di(5), di(6), true, true).CoveredBy(jan) {
		t.Error("covered")
	}
	if jan.CoveredBy(Between(di(5), di(6), true, true)) {
		t.Error("not covered")
	}
	if !jan.CoveredBy(Unbounded()) {
		t.Error("everything covered by unbounded")
	}
	if Unbounded().CoveredBy(jan) {
		t.Error("unbounded not covered by finite")
	}
}

func TestExtractInterval(t *testing.T) {
	c0 := col(0, types.KindInt)
	conj := []Expr{
		NewBinary(OpGe, c0, iconst(3)),
		NewBinary(OpLt, c0, iconst(9)),
		NewBinary(OpEq, col(1, types.KindInt), iconst(7)), // other column
	}
	iv, rest := ExtractInterval(conj, 0)
	if !iv.Contains(di(3)) || iv.Contains(di(9)) || !iv.Contains(di(8)) {
		t.Errorf("extracted: %s", iv)
	}
	if len(rest) != 1 {
		t.Errorf("rest: %d", len(rest))
	}
}

func TestExtractIntervalSwappedOperands(t *testing.T) {
	c0 := col(0, types.KindInt)
	// 5 <= c0 means c0 >= 5.
	conj := []Expr{NewBinary(OpLe, iconst(5), c0)}
	iv, _ := ExtractInterval(conj, 0)
	if iv.Contains(di(4)) || !iv.Contains(di(5)) {
		t.Errorf("swapped: %s", iv)
	}
}

func TestExtractIntervalContradiction(t *testing.T) {
	c0 := col(0, types.KindInt)
	conj := []Expr{
		NewBinary(OpEq, c0, iconst(1)),
		NewBinary(OpEq, c0, iconst(2)),
	}
	iv, _ := ExtractInterval(conj, 0)
	if !iv.Empty() {
		t.Errorf("x=1 AND x=2 should be empty: %s", iv)
	}
}

func TestExtractIntervalConstExpr(t *testing.T) {
	c0 := col(0, types.KindDate)
	base, _ := types.ParseDate("1999-12-15")
	// c0 >= DATE '1999-12-15' - 21
	e := NewBinary(OpGe, c0, NewBinary(OpSub, NewConst(base), iconst(21)))
	iv, _ := ExtractInterval([]Expr{e}, 0)
	if !iv.HasLo || iv.Lo.String() != "1999-11-24" {
		t.Errorf("const-expr bound: %s", iv)
	}
}

func TestIntervalToPredicateRoundTrip(t *testing.T) {
	c0 := col(0, types.KindInt)
	iv := Between(di(2), di(8), true, false)
	p := IntervalToPredicate(c0, iv)
	back, rest := ExtractInterval(SplitConjuncts(p), 0)
	if len(rest) != 0 || back.String() != iv.String() {
		t.Errorf("round trip: %s vs %s (rest %d)", back, iv, len(rest))
	}
	if IntervalToPredicate(c0, Unbounded()) != nil {
		t.Error("unbounded renders as nil")
	}
	if !IsConstFalse(IntervalToPredicate(c0, Interval{ExactEmpty: true})) {
		t.Error("empty renders as FALSE")
	}
	eq := IntervalToPredicate(c0, Point(di(4)))
	if eq.String() != "(t.c = 4)" {
		t.Errorf("point renders as equality: %s", eq)
	}
}

// Property: Contains agrees with Intersect-with-point.
func TestIntervalContainsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	randIv := func() Interval {
		lo, hi := int64(r.Intn(20)), int64(r.Intn(20))
		return Between(di(lo), di(hi), r.Intn(2) == 0, r.Intn(2) == 0)
	}
	for i := 0; i < 5000; i++ {
		iv := randIv()
		v := di(int64(r.Intn(20)))
		want := !iv.Intersect(Point(v)).Empty()
		if got := iv.Contains(v); got != want {
			t.Fatalf("Contains(%s, %s) = %v, want %v", iv, v, got, want)
		}
	}
}

// Property: Disjoint is symmetric, CoveredBy implies not Disjoint for
// non-empty intervals.
func TestIntervalProperties(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	randIv := func() Interval {
		lo, hi := int64(r.Intn(12)), int64(r.Intn(12))
		return Between(di(lo), di(hi), r.Intn(2) == 0, r.Intn(2) == 0)
	}
	for i := 0; i < 5000; i++ {
		a, b := randIv(), randIv()
		if a.Disjoint(b) != b.Disjoint(a) {
			t.Fatalf("Disjoint not symmetric: %s %s", a, b)
		}
		if !a.Empty() && a.CoveredBy(b) && a.Disjoint(b) {
			t.Fatalf("covered but disjoint: %s %s", a, b)
		}
	}
}

func TestTransformAndRemap(t *testing.T) {
	e := NewBinary(OpAnd,
		NewBinary(OpEq, col(0, types.KindInt), iconst(1)),
		NewBinary(OpLt, col(2, types.KindInt), iconst(5)),
	)
	remapped := RemapColumns(e, map[int]int{0: 7, 2: 9})
	idx := ColumnIndexes(remapped)
	if len(idx) != 2 || idx[0] != 7 || idx[1] != 9 {
		t.Errorf("remap: %v", idx)
	}
	// Original untouched.
	idx = ColumnIndexes(e)
	if idx[0] != 0 || idx[1] != 2 {
		t.Errorf("original mutated: %v", idx)
	}
	shifted := ShiftColumns(e, 10)
	idx = ColumnIndexes(shifted)
	if idx[0] != 10 || idx[1] != 12 {
		t.Errorf("shift: %v", idx)
	}
}

func TestReferencesOnly(t *testing.T) {
	e := NewBinary(OpEq, col(3, types.KindInt), col(5, types.KindInt))
	if !ReferencesOnly(e, map[int]bool{3: true, 5: true}) {
		t.Error("allowed set covers")
	}
	if ReferencesOnly(e, map[int]bool{3: true}) {
		t.Error("missing column should fail")
	}
}

func TestFoldConstants(t *testing.T) {
	e := NewBinary(OpAdd, iconst(2), iconst(3))
	f := FoldConstants(e)
	c, ok := f.(*Const)
	if !ok || c.Value.Int() != 5 {
		t.Errorf("fold 2+3: %s", f)
	}
	// AND TRUE simplification around a column.
	p := NewBinary(OpAnd, NewConst(types.NewBool(true)), NewBinary(OpEq, col(0, types.KindInt), iconst(1)))
	fp := FoldConstants(p)
	if fp.String() != "(t.c = 1)" {
		t.Errorf("AND TRUE: %s", fp)
	}
	// x AND FALSE folds to FALSE.
	pf := NewBinary(OpAnd, NewBinary(OpEq, col(0, types.KindInt), iconst(1)), NewConst(types.NewBool(false)))
	if !IsConstFalse(FoldConstants(pf)) {
		t.Errorf("AND FALSE: %s", FoldConstants(pf))
	}
	// OR TRUE folds to TRUE.
	po := NewBinary(OpOr, NewBinary(OpEq, col(0, types.KindInt), iconst(1)), NewConst(types.NewBool(true)))
	if !IsConstTrue(FoldConstants(po)) {
		t.Errorf("OR TRUE: %s", FoldConstants(po))
	}
	// Division by zero is left unfolded for runtime.
	bad := NewBinary(OpDiv, iconst(1), iconst(0))
	if _, ok := FoldConstants(bad).(*Const); ok {
		t.Error("error folds should be left intact")
	}
}

func TestSplitConjunctsDropsTrue(t *testing.T) {
	p := NewBinary(OpEq, col(0, types.KindInt), iconst(1))
	cs := SplitConjuncts(And(p, NewConst(types.NewBool(true))))
	if len(cs) != 1 {
		t.Errorf("TRUE conjunct should drop: %d", len(cs))
	}
	if SplitConjuncts(nil) != nil {
		t.Error("nil splits to nil")
	}
}

func TestContainsConjunct(t *testing.T) {
	p := NewBinary(OpEq, col(0, types.KindInt), iconst(1))
	q := NewBinary(OpEq, col(0, types.KindInt), iconst(2))
	if !ContainsConjunct([]Expr{p, q}, NewBinary(OpEq, col(0, types.KindInt), iconst(2))) {
		t.Error("should find equivalent conjunct")
	}
	if ContainsConjunct([]Expr{p}, q) {
		t.Error("should not find missing conjunct")
	}
}
