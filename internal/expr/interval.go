package expr

import (
	"strconv"
	"strings"

	"softdb/internal/types"
)

// Interval is a (possibly half-open, possibly unbounded) range of datum
// values over one column. It is the common currency of index access-path
// selection, union-all branch pruning, check-constraint implication, and
// join-hole trimming.
type Interval struct {
	HasLo, HasHi     bool
	Lo, Hi           types.Datum
	LoIncl, HiIncl   bool
	ExactEmpty       bool         // a contradiction was detected (e.g. x=1 AND x=2)
	EqualityConstant *types.Datum // set when the interval pins a single value
}

// Unbounded returns the interval covering everything.
func Unbounded() Interval { return Interval{} }

// Point returns the interval holding exactly v.
func Point(v types.Datum) Interval {
	return Interval{HasLo: true, HasHi: true, Lo: v, Hi: v, LoIncl: true, HiIncl: true, EqualityConstant: &v}
}

// AtLeast returns [v, +inf) or (v, +inf).
func AtLeast(v types.Datum, incl bool) Interval {
	return Interval{HasLo: true, Lo: v, LoIncl: incl}
}

// AtMost returns (-inf, v] or (-inf, v).
func AtMost(v types.Datum, incl bool) Interval {
	return Interval{HasHi: true, Hi: v, HiIncl: incl}
}

// Between returns the closed/open range [lo, hi] per the inclusivity flags.
func Between(lo, hi types.Datum, loIncl, hiIncl bool) Interval {
	iv := Interval{HasLo: true, HasHi: true, Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl}
	iv.normalize()
	return iv
}

func (iv *Interval) normalize() {
	if iv.HasLo && iv.HasHi {
		c := iv.Lo.Compare(iv.Hi)
		if c > 0 || (c == 0 && (!iv.LoIncl || !iv.HiIncl)) {
			iv.ExactEmpty = true
			return
		}
		if c == 0 {
			v := iv.Lo
			iv.EqualityConstant = &v
		}
	}
}

// IsUnbounded reports whether the interval has no bounds at all.
func (iv Interval) IsUnbounded() bool { return !iv.HasLo && !iv.HasHi && !iv.ExactEmpty }

// Empty reports whether the interval provably contains no value.
func (iv Interval) Empty() bool { return iv.ExactEmpty }

// Contains reports whether v lies inside the interval. NULL is outside all
// intervals.
func (iv Interval) Contains(v types.Datum) bool {
	if iv.ExactEmpty || v.IsNull() {
		return false
	}
	if iv.HasLo {
		c := v.Compare(iv.Lo)
		if c < 0 || (c == 0 && !iv.LoIncl) {
			return false
		}
	}
	if iv.HasHi {
		c := v.Compare(iv.Hi)
		if c > 0 || (c == 0 && !iv.HiIncl) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	if iv.ExactEmpty || other.ExactEmpty {
		return Interval{ExactEmpty: true}
	}
	out := Interval{}
	switch {
	case !iv.HasLo:
		out.HasLo, out.Lo, out.LoIncl = other.HasLo, other.Lo, other.LoIncl
	case !other.HasLo:
		out.HasLo, out.Lo, out.LoIncl = iv.HasLo, iv.Lo, iv.LoIncl
	default:
		out.HasLo = true
		c := iv.Lo.Compare(other.Lo)
		switch {
		case c > 0:
			out.Lo, out.LoIncl = iv.Lo, iv.LoIncl
		case c < 0:
			out.Lo, out.LoIncl = other.Lo, other.LoIncl
		default:
			out.Lo, out.LoIncl = iv.Lo, iv.LoIncl && other.LoIncl
		}
	}
	switch {
	case !iv.HasHi:
		out.HasHi, out.Hi, out.HiIncl = other.HasHi, other.Hi, other.HiIncl
	case !other.HasHi:
		out.HasHi, out.Hi, out.HiIncl = iv.HasHi, iv.Hi, iv.HiIncl
	default:
		out.HasHi = true
		c := iv.Hi.Compare(other.Hi)
		switch {
		case c < 0:
			out.Hi, out.HiIncl = iv.Hi, iv.HiIncl
		case c > 0:
			out.Hi, out.HiIncl = other.Hi, other.HiIncl
		default:
			out.Hi, out.HiIncl = iv.Hi, iv.HiIncl && other.HiIncl
		}
	}
	out.normalize()
	return out
}

// Disjoint reports whether two intervals provably share no value.
func (iv Interval) Disjoint(other Interval) bool {
	return iv.Intersect(other).Empty()
}

// CoveredBy reports whether every value in iv lies inside outer.
func (iv Interval) CoveredBy(outer Interval) bool {
	if iv.ExactEmpty {
		return true
	}
	if outer.ExactEmpty {
		return false
	}
	if outer.HasLo {
		if !iv.HasLo {
			return false
		}
		c := iv.Lo.Compare(outer.Lo)
		if c < 0 || (c == 0 && iv.LoIncl && !outer.LoIncl) {
			return false
		}
	}
	if outer.HasHi {
		if !iv.HasHi {
			return false
		}
		c := iv.Hi.Compare(outer.Hi)
		if c > 0 || (c == 0 && iv.HiIncl && !outer.HiIncl) {
			return false
		}
	}
	return true
}

// Subtract removes other from iv when the result is still a single
// interval: other must cover one end of iv (or all of it, or none). The
// second return is false when the subtraction would split iv in two.
func (iv Interval) Subtract(other Interval) (Interval, bool) {
	x := iv.Intersect(other)
	if x.Empty() {
		return iv, true // disjoint: nothing removed
	}
	if iv.CoveredBy(other) {
		return Interval{ExactEmpty: true}, true
	}
	coversLow := true
	if other.HasLo {
		if !iv.HasLo {
			coversLow = false
		} else {
			c := other.Lo.Compare(iv.Lo)
			coversLow = c < 0 || (c == 0 && (other.LoIncl || !iv.LoIncl))
		}
	}
	coversHigh := true
	if other.HasHi {
		if !iv.HasHi {
			coversHigh = false
		} else {
			c := other.Hi.Compare(iv.Hi)
			coversHigh = c > 0 || (c == 0 && (other.HiIncl || !iv.HiIncl))
		}
	}
	switch {
	case coversLow && other.HasHi:
		// Trim the low end: new lower bound is other's upper bound,
		// exclusive where other includes it.
		out := iv
		out.HasLo, out.Lo, out.LoIncl = true, other.Hi, !other.HiIncl
		out.EqualityConstant = nil
		out.normalize()
		return out, true
	case coversHigh && other.HasLo:
		out := iv
		out.HasHi, out.Hi, out.HiIncl = true, other.Lo, !other.LoIncl
		out.EqualityConstant = nil
		out.normalize()
		return out, true
	default:
		return iv, false // would split
	}
}

// String renders the interval in math notation.
func (iv Interval) String() string {
	if iv.ExactEmpty {
		return "∅"
	}
	var b strings.Builder
	if iv.HasLo {
		if iv.LoIncl {
			b.WriteByte('[')
		} else {
			b.WriteByte('(')
		}
		b.WriteString(iv.Lo.String())
	} else {
		b.WriteString("(-inf")
	}
	b.WriteString(", ")
	if iv.HasHi {
		b.WriteString(iv.Hi.String())
		if iv.HiIncl {
			b.WriteByte(']')
		} else {
			b.WriteByte(')')
		}
	} else {
		b.WriteString("+inf)")
	}
	return b.String()
}

// comparisonOnColumn decomposes e as `col <op> const` (possibly written as
// `const <op> col`), returning the column, the normalized operator with the
// column on the left, and the constant value.
func comparisonOnColumn(e Expr) (col *Column, op Op, val types.Datum, ok bool) {
	b, isBin := e.(*Binary)
	if !isBin || !b.Op.IsComparison() {
		return nil, 0, types.Null, false
	}
	lcol, lIsCol := b.L.(*Column)
	rcol, rIsCol := b.R.(*Column)
	lval, lErr := constValue(b.L)
	rval, rErr := constValue(b.R)
	switch {
	case lIsCol && rErr == nil:
		return lcol, b.Op, rval, true
	case rIsCol && lErr == nil:
		return rcol, b.Op.Swap(), lval, true
	default:
		return nil, 0, types.Null, false
	}
}

// constValue evaluates e if it contains no column references.
func constValue(e Expr) (types.Datum, error) {
	if c, ok := e.(*Const); ok {
		return c.Value, nil
	}
	if !isConstTree(e) {
		return types.Null, errNotConst
	}
	return e.Eval(nil)
}

var errNotConst = &notConstError{}

type notConstError struct{}

func (*notConstError) Error() string { return "expr: not a constant" }

// DecomposeComparison splits a comparison into its non-constant side
// (normalized to the left), the operator, and the constant value. It
// returns ok=false when e is not a comparison or both sides contain
// columns.
func DecomposeComparison(e Expr) (lhs Expr, op Op, val types.Datum, ok bool) {
	b, isBin := e.(*Binary)
	if !isBin || !b.Op.IsComparison() {
		return nil, 0, types.Null, false
	}
	lval, lErr := constValue(b.L)
	rval, rErr := constValue(b.R)
	switch {
	case lErr != nil && rErr == nil:
		return b.L, b.Op, rval, true
	case rErr != nil && lErr == nil:
		return b.R, b.Op.Swap(), lval, true
	default:
		return nil, 0, types.Null, false
	}
}

// IntervalForOp converts one normalized comparison into an interval.
func IntervalForOp(op Op, val types.Datum) (Interval, bool) {
	if val.IsNull() {
		return Interval{ExactEmpty: true}, true
	}
	switch op {
	case OpEq:
		return Point(val), true
	case OpLt:
		return AtMost(val, false), true
	case OpLe:
		return AtMost(val, true), true
	case OpGt:
		return AtLeast(val, false), true
	case OpGe:
		return AtLeast(val, true), true
	default:
		return Interval{}, false
	}
}

// Canonical renders e with column references replaced by their ordinals
// ($i), giving an alias-insensitive equivalence key for expression
// matching (virtual columns, predicate dedup across bindings).
func Canonical(e Expr) string {
	return Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Column); ok {
			return &Column{Name: "$" + strconv.Itoa(c.Index), Index: c.Index, Kind: c.Kind}
		}
		return n
	}).String()
}

// ExtractInterval folds every conjunct of the form `col <op> const` over
// the column with the given ordinal into a single interval, and returns the
// remaining conjuncts it could not absorb. Comparisons against NULL
// constants produce the empty interval (they can never be TRUE).
func ExtractInterval(conjuncts []Expr, colIndex int) (Interval, []Expr) {
	iv := Unbounded()
	var rest []Expr
	for _, c := range conjuncts {
		col, op, val, ok := comparisonOnColumn(c)
		if !ok || col.Index != colIndex || op == OpNe {
			rest = append(rest, c)
			continue
		}
		if val.IsNull() {
			return Interval{ExactEmpty: true}, rest
		}
		switch op {
		case OpEq:
			iv = iv.Intersect(Point(val))
		case OpLt:
			iv = iv.Intersect(AtMost(val, false))
		case OpLe:
			iv = iv.Intersect(AtMost(val, true))
		case OpGt:
			iv = iv.Intersect(AtLeast(val, false))
		case OpGe:
			iv = iv.Intersect(AtLeast(val, true))
		}
	}
	return iv, rest
}

// IntervalToPredicate renders an interval back into a conjunction of
// comparisons over the given column expression. An unbounded interval
// yields nil; an empty interval yields constant FALSE.
func IntervalToPredicate(col *Column, iv Interval) Expr {
	if iv.ExactEmpty {
		return NewConst(types.NewBool(false))
	}
	if iv.EqualityConstant != nil {
		return NewBinary(OpEq, col, NewConst(*iv.EqualityConstant))
	}
	var parts []Expr
	if iv.HasLo {
		op := OpGt
		if iv.LoIncl {
			op = OpGe
		}
		parts = append(parts, NewBinary(op, col, NewConst(iv.Lo)))
	}
	if iv.HasHi {
		op := OpLt
		if iv.HiIncl {
			op = OpLe
		}
		parts = append(parts, NewBinary(op, col, NewConst(iv.Hi)))
	}
	if len(parts) == 0 {
		return nil
	}
	return And(parts...)
}
