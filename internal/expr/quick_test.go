package expr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"softdb/internal/types"
)

// quickInterval generates a random (possibly inverted → empty) interval.
type quickInterval struct {
	Lo, Hi         int8
	LoIncl, HiIncl bool
	NoLo, NoHi     bool
}

// Generate implements quick.Generator.
func (quickInterval) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickInterval{
		Lo:     int8(r.Intn(16)),
		Hi:     int8(r.Intn(16)),
		LoIncl: r.Intn(2) == 0,
		HiIncl: r.Intn(2) == 0,
		NoLo:   r.Intn(4) == 0,
		NoHi:   r.Intn(4) == 0,
	})
}

func (q quickInterval) iv() Interval {
	out := Unbounded()
	if !q.NoLo {
		out = out.Intersect(AtLeast(types.NewInt(int64(q.Lo)), q.LoIncl))
	}
	if !q.NoHi {
		out = out.Intersect(AtMost(types.NewInt(int64(q.Hi)), q.HiIncl))
	}
	return out
}

// Property: Intersect is commutative (same membership for all points).
func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b quickInterval, p int8) bool {
		x := a.iv().Intersect(b.iv())
		y := b.iv().Intersect(a.iv())
		v := types.NewInt(int64(p % 16))
		return x.Contains(v) == y.Contains(v) && x.Empty() == y.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: membership of an intersection equals conjunction of
// memberships.
func TestQuickIntersectMembership(t *testing.T) {
	f := func(a, b quickInterval, p int8) bool {
		v := types.NewInt(int64(p % 16))
		x := a.iv().Intersect(b.iv())
		return x.Contains(v) == (a.iv().Contains(v) && b.iv().Contains(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Subtract succeeds, no point of `other` remains and points
// of iv outside `other` are preserved.
func TestQuickSubtractSound(t *testing.T) {
	f := func(a, b quickInterval, p int8) bool {
		iv, other := a.iv(), b.iv()
		out, ok := iv.Subtract(other)
		if !ok {
			return true // split case: no claim
		}
		v := types.NewInt(int64(p % 16))
		if other.Contains(v) && out.Contains(v) {
			return false // removed region must be gone
		}
		if iv.Contains(v) && !other.Contains(v) && !out.Contains(v) {
			return false // kept region must remain
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// likeRef is a naive exponential reference implementation of SQL LIKE.
func likeRef(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRef(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRef(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRef(s[1:], p[1:])
	}
}

// Property: the linear matcher agrees with the naive reference.
func TestQuickLikeAgainstReference(t *testing.T) {
	alphabet := []byte("ab%_")
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20000; trial++ {
		s := make([]byte, r.Intn(8))
		for i := range s {
			s[i] = "ab"[r.Intn(2)]
		}
		p := make([]byte, r.Intn(8))
		for i := range p {
			p[i] = alphabet[r.Intn(len(alphabet))]
		}
		if likeMatch(string(s), string(p)) != likeRef(string(s), string(p)) {
			t.Fatalf("likeMatch(%q, %q) = %v, reference disagrees",
				s, p, likeMatch(string(s), string(p)))
		}
	}
}

// Property: FoldConstants never changes evaluation results on
// column-free trees built from random arithmetic.
func TestQuickFoldPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	var gen func(depth int) Expr
	gen = func(depth int) Expr {
		if depth <= 0 || r.Intn(3) == 0 {
			return NewConst(types.NewInt(int64(r.Intn(20) - 10)))
		}
		ops := []Op{OpAdd, OpSub, OpMul}
		return NewBinary(ops[r.Intn(len(ops))], gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 5000; trial++ {
		e := gen(4)
		want, err1 := e.Eval(nil)
		folded := FoldConstants(e)
		got, err2 := folded.Eval(nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("fold changed error behavior: %s", e)
		}
		if err1 == nil && want.Compare(got) != 0 {
			t.Fatalf("fold changed value: %s: %s vs %s", e, want, got)
		}
	}
}

// Property: Canonical is stable under alias renaming for arbitrary trees.
func TestQuickCanonicalStability(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	var gen func(depth int, qual string) Expr
	gen = func(depth int, qual string) Expr {
		if depth <= 0 || r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				return NewColumn(qual, "c", r.Intn(4), types.KindInt)
			}
			return NewConst(types.NewInt(int64(r.Intn(10))))
		}
		ops := []Op{OpAdd, OpSub, OpMul, OpLt, OpAnd}
		return NewBinary(ops[r.Intn(len(ops))], gen(depth-1, qual), gen(depth-1, qual))
	}
	for trial := 0; trial < 3000; trial++ {
		seed := r.Int63()
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		save := r
		r = r1
		a := gen(3, "alias_one")
		r = r2
		b := gen(3, "alias_two")
		r = save
		if Canonical(a) != Canonical(b) {
			t.Fatalf("canonical differs across aliases: %q vs %q", Canonical(a), Canonical(b))
		}
	}
}
