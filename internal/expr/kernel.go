package expr

import (
	"softdb/internal/types"
	"softdb/internal/vec"
)

// This file compiles a conjunct list into a predicate program: an ordered
// list of stages that filter a columnar batch's selection vector with
// type-specialized tight loops instead of a per-row Datum tree-walk. Range
// comparisons over one column (=, <, <=, >, >=, BETWEEN spelled as two
// comparisons) fuse into a single interval stage; <>, IS NULL and
// IS NOT NULL get dedicated stages; everything else runs through the
// generic per-row EvalBool fallback.
//
// A stage is provably TRUE for a whole page when the page synopsis covers
// it (see Stage.ProvableTrue) — scans exploit that to skip per-row
// evaluation entirely on all-qualifying pages.
//
// Semantics match the row-at-a-time path (evalFilters/EvalBool) row for
// row: a NULL comparison operand rejects, interval contradictions reject
// everything, and value comparisons reuse Datum.Compare ordering. The one
// documented divergence is error *ordering*: the row path walks conjuncts
// in textual order per row, while the program runs stage by stage over the
// batch, so when several conjuncts would error the reported row/conjunct
// may differ (the presence of an error is preserved — see
// FuzzKernelParity).

// StageMode classifies one predicate program stage.
type StageMode uint8

const (
	// StageRange keeps rows whose column value lies in Iv.
	StageRange StageMode = iota
	// StageNe keeps rows whose non-null column value differs from Ne.
	StageNe
	// StageIsNull keeps rows whose column is NULL.
	StageIsNull
	// StageIsNotNull keeps rows whose column is not NULL.
	StageIsNotNull
	// StageGeneric tree-walks Cond per row via EvalBool.
	StageGeneric
)

// rangeLoop selects the compiled tight loop for a range/ne stage.
type rangeLoop uint8

const (
	loopFallback rangeLoop = iota // per-row Datum.Compare, no extraction
	loopEmpty                     // contradiction: drop every row
	loopIntInt                    // int-image column, int-image bounds
	loopIntFloat                  // int-image column, float-widened bounds
	loopFloat                     // float column, numeric bounds
	loopStr                       // string column, string bounds
)

// Stage is one step of a compiled predicate program.
type Stage struct {
	Mode StageMode
	// Col is the column ordinal tested by non-generic stages (-1 otherwise).
	Col int
	// Kind is the column's static kind for non-generic stages.
	Kind types.Kind
	// Iv is the fused interval for StageRange.
	Iv Interval
	// Ne is the constant for StageNe.
	Ne types.Datum
	// Cond is the original conjunct for StageGeneric.
	Cond Expr

	colRef *Column
	loop   rangeLoop
}

// PredProgram is a compiled conjunction. It is immutable after compilation
// and safe for concurrent use; all run-time scratch lives in the caller.
type PredProgram struct {
	Stages []Stage
}

// CompilePredicate compiles conds (an implicit AND) into a predicate
// program. A nil/empty conds yields a program with zero stages that keeps
// everything.
func CompilePredicate(conds []Expr) *PredProgram {
	p := &PredProgram{}
	remaining := conds
	// Fuse all range comparisons per column, in first-occurrence order.
	for {
		var target *Column
		for _, c := range remaining {
			if col, op, _, ok := comparisonOnColumn(c); ok && op != OpNe && col.Index >= 0 {
				target = col
				break
			}
		}
		if target == nil {
			break
		}
		iv, rest := ExtractInterval(remaining, target.Index)
		st := Stage{Mode: StageRange, Col: target.Index, Kind: target.Kind, Iv: iv, colRef: target}
		st.loop = planRangeLoop(target.Kind, iv)
		p.Stages = append(p.Stages, st)
		remaining = rest
	}
	for _, c := range remaining {
		if col, op, val, ok := comparisonOnColumn(c); ok && op == OpNe && col.Index >= 0 {
			st := Stage{Mode: StageNe, Col: col.Index, Kind: col.Kind, Ne: val, colRef: col}
			st.loop = planNeLoop(col.Kind, val)
			p.Stages = append(p.Stages, st)
			continue
		}
		if u, ok := c.(*Unary); ok && (u.Op == OpIsNull || u.Op == OpIsNotNull) {
			if col, isCol := u.X.(*Column); isCol && col.Index >= 0 {
				mode := StageIsNull
				if u.Op == OpIsNotNull {
					mode = StageIsNotNull
				}
				p.Stages = append(p.Stages, Stage{Mode: mode, Col: col.Index, Kind: col.Kind, colRef: col})
				continue
			}
		}
		p.Stages = append(p.Stages, Stage{Mode: StageGeneric, Col: -1, Cond: c})
	}
	return p
}

// boundClass groups the interval's present bounds: intOnly (all INT/DATE),
// numeric (INT/DATE/FLOAT with at least one FLOAT), strOnly, or mixed.
func boundKinds(iv Interval) (allIntImage, allNumeric, anyFloat, allStr bool) {
	allIntImage, allNumeric, allStr = true, true, true
	check := func(d types.Datum) {
		switch d.Kind() {
		case types.KindInt, types.KindDate:
			allStr = false
		case types.KindFloat:
			allIntImage, allStr = false, false
			anyFloat = true
		case types.KindString:
			allIntImage, allNumeric = false, false
		default:
			allIntImage, allNumeric, allStr = false, false, false
		}
	}
	if iv.HasLo {
		check(iv.Lo)
	}
	if iv.HasHi {
		check(iv.Hi)
	}
	return
}

func planRangeLoop(kind types.Kind, iv Interval) rangeLoop {
	if iv.Empty() {
		return loopEmpty
	}
	if iv.IsUnbounded() {
		// Keeps only non-null rows of any kind; the fallback handles it.
		return loopFallback
	}
	allInt, allNum, anyFloat, allStr := boundKinds(iv)
	switch kind {
	case types.KindInt, types.KindDate:
		if allInt {
			return loopIntInt
		}
		if allNum && anyFloat {
			return loopIntFloat
		}
	case types.KindFloat:
		if allNum {
			return loopFloat
		}
	case types.KindString:
		if allStr {
			return loopStr
		}
	}
	return loopFallback
}

func planNeLoop(kind types.Kind, val types.Datum) rangeLoop {
	if val.IsNull() {
		return loopEmpty // col <> NULL is never TRUE
	}
	switch kind {
	case types.KindInt, types.KindDate:
		switch val.Kind() {
		case types.KindInt, types.KindDate:
			return loopIntInt
		case types.KindFloat:
			return loopIntFloat
		}
	case types.KindFloat:
		if val.IsNumeric() {
			return loopFloat
		}
	case types.KindString:
		if val.Kind() == types.KindString {
			return loopStr
		}
	}
	return loopFallback
}

// Typed reports whether stage i runs a type-specialized loop (as opposed
// to the per-row fallback). Exposed for tests and benchmarks.
func (p *PredProgram) Typed(i int) bool {
	s := &p.Stages[i]
	switch s.Mode {
	case StageRange, StageNe:
		return s.loop != loopFallback
	case StageIsNull, StageIsNotNull:
		return true
	default:
		return false
	}
}

// ProvableTrue reports whether the stage is TRUE for every row of a page
// whose column summary is [colIv] (inclusive min/max, present only when
// hasBounds) with the given null and row counts. A provably-true stage may
// be skipped for the page without evaluating any row.
func (s *Stage) ProvableTrue(colIv Interval, hasBounds bool, nulls, rows int64) bool {
	switch s.Mode {
	case StageRange:
		return nulls == 0 && hasBounds && colIv.CoveredBy(s.Iv)
	case StageNe:
		return nulls == 0 && hasBounds && !s.Ne.IsNull() && colIv.Disjoint(Point(s.Ne))
	case StageIsNotNull:
		return nulls == 0
	case StageIsNull:
		return rows > 0 && nulls == rows
	default:
		return false
	}
}

// RunStage filters sel (ascending indexes into b.Rows) through stage i,
// writing survivors into out[:0] and returning the shrunk slice. out must
// have capacity ≥ len(sel) and may not alias sel.
func (p *PredProgram) RunStage(i int, b *vec.Batch, sel []int32, out []int32) ([]int32, error) {
	s := &p.Stages[i]
	out = out[:0]
	switch s.Mode {
	case StageRange:
		return s.runRange(b, sel, out)
	case StageNe:
		return s.runNe(b, sel, out)
	case StageIsNull, StageIsNotNull:
		wantNull := s.Mode == StageIsNull
		for _, idx := range sel {
			row := b.Rows[idx]
			if s.Col >= len(row) {
				_, err := s.colRef.Eval(row)
				return nil, err
			}
			if row[s.Col].IsNull() == wantNull {
				out = append(out, idx)
			}
		}
		return out, nil
	default:
		for _, idx := range sel {
			ok, err := EvalBool(s.Cond, b.Rows[idx])
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, idx)
			}
		}
		return out, nil
	}
}

// cmpFloat mirrors Datum.Compare's float ordering (NaN compares equal to
// everything it is not <
// or > than, exactly like the tree-walk).
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (s *Stage) runRange(b *vec.Batch, sel, out []int32) ([]int32, error) {
	if s.loop == loopEmpty {
		return out, nil
	}
	iv := s.Iv
	switch s.loop {
	case loopIntInt:
		if c := b.Col(s.Col, vec.ClassInt); c != nil {
			var lo, hi int64
			if iv.HasLo {
				lo = iv.Lo.IntImage()
			}
			if iv.HasHi {
				hi = iv.Hi.IntImage()
			}
			for _, idx := range sel {
				if c.Nulls[idx] {
					continue
				}
				v := c.Ints[idx]
				if iv.HasLo && (v < lo || (v == lo && !iv.LoIncl)) {
					continue
				}
				if iv.HasHi && (v > hi || (v == hi && !iv.HiIncl)) {
					continue
				}
				out = append(out, idx)
			}
			return out, nil
		}
	case loopIntFloat:
		if c := b.Col(s.Col, vec.ClassInt); c != nil {
			var lo, hi float64
			if iv.HasLo {
				lo = iv.Lo.Float()
			}
			if iv.HasHi {
				hi = iv.Hi.Float()
			}
			for _, idx := range sel {
				if c.Nulls[idx] {
					continue
				}
				v := float64(c.Ints[idx])
				if iv.HasLo && (v < lo || (cmpFloat(v, lo) == 0 && !iv.LoIncl)) {
					continue
				}
				if iv.HasHi && (v > hi || (cmpFloat(v, hi) == 0 && !iv.HiIncl)) {
					continue
				}
				out = append(out, idx)
			}
			return out, nil
		}
	case loopFloat:
		if c := b.Col(s.Col, vec.ClassFloat); c != nil {
			var lo, hi float64
			if iv.HasLo {
				lo = iv.Lo.Float()
			}
			if iv.HasHi {
				hi = iv.Hi.Float()
			}
			for _, idx := range sel {
				if c.Nulls[idx] {
					continue
				}
				v := c.Floats[idx]
				if iv.HasLo {
					cc := cmpFloat(v, lo)
					if cc < 0 || (cc == 0 && !iv.LoIncl) {
						continue
					}
				}
				if iv.HasHi {
					cc := cmpFloat(v, hi)
					if cc > 0 || (cc == 0 && !iv.HiIncl) {
						continue
					}
				}
				out = append(out, idx)
			}
			return out, nil
		}
	case loopStr:
		if c := b.Col(s.Col, vec.ClassStr); c != nil {
			var lo, hi string
			if iv.HasLo {
				lo = iv.Lo.Str()
			}
			if iv.HasHi {
				hi = iv.Hi.Str()
			}
			for _, idx := range sel {
				if c.Nulls[idx] {
					continue
				}
				v := c.Strs[idx]
				if iv.HasLo && (v < lo || (v == lo && !iv.LoIncl)) {
					continue
				}
				if iv.HasHi && (v > hi || (v == hi && !iv.HiIncl)) {
					continue
				}
				out = append(out, idx)
			}
			return out, nil
		}
	}
	// Fallback: per-row interval containment via Datum.Compare — identical
	// ordering semantics, no extraction required.
	for _, idx := range sel {
		row := b.Rows[idx]
		if s.Col >= len(row) {
			_, err := s.colRef.Eval(row)
			return nil, err
		}
		if iv.Contains(row[s.Col]) {
			out = append(out, idx)
		}
	}
	return out, nil
}

func (s *Stage) runNe(b *vec.Batch, sel, out []int32) ([]int32, error) {
	if s.loop == loopEmpty {
		return out, nil
	}
	switch s.loop {
	case loopIntInt:
		if c := b.Col(s.Col, vec.ClassInt); c != nil {
			ne := s.Ne.IntImage()
			for _, idx := range sel {
				if !c.Nulls[idx] && c.Ints[idx] != ne {
					out = append(out, idx)
				}
			}
			return out, nil
		}
	case loopIntFloat:
		if c := b.Col(s.Col, vec.ClassInt); c != nil {
			ne := s.Ne.Float()
			for _, idx := range sel {
				if !c.Nulls[idx] && cmpFloat(float64(c.Ints[idx]), ne) != 0 {
					out = append(out, idx)
				}
			}
			return out, nil
		}
	case loopFloat:
		if c := b.Col(s.Col, vec.ClassFloat); c != nil {
			ne := s.Ne.Float()
			for _, idx := range sel {
				if !c.Nulls[idx] && cmpFloat(c.Floats[idx], ne) != 0 {
					out = append(out, idx)
				}
			}
			return out, nil
		}
	case loopStr:
		if c := b.Col(s.Col, vec.ClassStr); c != nil {
			ne := s.Ne.Str()
			for _, idx := range sel {
				if !c.Nulls[idx] && c.Strs[idx] != ne {
					out = append(out, idx)
				}
			}
			return out, nil
		}
	}
	for _, idx := range sel {
		row := b.Rows[idx]
		if s.Col >= len(row) {
			_, err := s.colRef.Eval(row)
			return nil, err
		}
		v := row[s.Col]
		if !v.IsNull() && v.Compare(s.Ne) != 0 {
			out = append(out, idx)
		}
	}
	return out, nil
}
