package expr

import (
	"testing"

	"softdb/internal/types"
)

// fuzzInterval decodes an interval from fuzz-supplied fields. kind selects
// the constructor so every API entry point is exercised; bounds are small
// ints so probe values collide with them often.
func fuzzInterval(kind uint8, lo, hi int64, loIncl, hiIncl bool) Interval {
	l, h := types.NewInt(lo), types.NewInt(hi)
	switch kind % 5 {
	case 0:
		return Unbounded()
	case 1:
		return Point(l)
	case 2:
		return AtLeast(l, loIncl)
	case 3:
		return AtMost(h, hiIncl)
	default:
		return Between(l, h, loIncl, hiIncl)
	}
}

// FuzzInterval checks the interval algebra's invariants on arbitrary
// inputs. Every operation must be panic-free, and the set-algebra laws
// must hold pointwise at the probe values (which hit bounds, neighbors of
// bounds, and NULL):
//
//   - Empty() intervals contain nothing.
//   - Intersect is pointwise AND, and commutes.
//   - Disjoint is symmetric and means "no common probe".
//   - CoveredBy is pointwise implication.
//   - Subtract is pointwise set difference when it reports success.
//   - normalize is idempotent: re-normalizing changes nothing.
func FuzzInterval(f *testing.F) {
	f.Add(uint8(4), int64(0), int64(10), true, true, uint8(2), int64(5), int64(15), false, true)
	f.Add(uint8(1), int64(3), int64(3), true, true, uint8(1), int64(3), int64(3), true, true)
	f.Add(uint8(0), int64(0), int64(0), false, false, uint8(4), int64(-2), int64(2), true, false)
	f.Add(uint8(4), int64(7), int64(3), true, true, uint8(3), int64(0), int64(7), false, false) // inverted → empty
	f.Fuzz(func(t *testing.T, ak uint8, alo, ahi int64, aloI, ahiI bool,
		bk uint8, blo, bhi int64, bloI, bhiI bool) {
		a := fuzzInterval(ak, alo, ahi, aloI, ahiI)
		b := fuzzInterval(bk, blo, bhi, bloI, bhiI)

		// Probe set: bounds, their neighbors, and NULL.
		probes := []types.Datum{types.Null}
		for _, v := range []int64{alo, ahi, blo, bhi} {
			probes = append(probes, types.NewInt(v-1), types.NewInt(v), types.NewInt(v+1))
		}

		x := a.Intersect(b)
		xr := b.Intersect(a)
		sub, subOK := a.Subtract(b)
		covered := a.CoveredBy(b)
		if a.Disjoint(b) != b.Disjoint(a) {
			t.Fatalf("Disjoint not symmetric: %s vs %s", a, b)
		}
		sawCommon := false
		for _, v := range probes {
			inA, inB := a.Contains(v), b.Contains(v)
			if v.IsNull() && (inA || inB) {
				t.Fatalf("NULL contained in %s / %s", a, b)
			}
			if inA && inB {
				sawCommon = true
			}
			if x.Contains(v) != (inA && inB) {
				t.Fatalf("Intersect(%s, %s)=%s wrong at %s", a, b, x, v)
			}
			if x.Contains(v) != xr.Contains(v) {
				t.Fatalf("Intersect not commutative at %s: %s vs %s", v, x, xr)
			}
			if a.Empty() && inA {
				t.Fatalf("empty interval %s contains %s", a, v)
			}
			if covered && inA && !inB {
				t.Fatalf("CoveredBy(%s, %s) true but %s only in the inner", a, b, v)
			}
			if subOK && sub.Contains(v) != (inA && !inB) {
				t.Fatalf("Subtract(%s, %s)=%s wrong at %s", a, b, sub, v)
			}
		}
		if sawCommon && a.Disjoint(b) {
			t.Fatalf("Disjoint(%s, %s) despite a common value", a, b)
		}
		// normalize idempotence: a second pass must not change anything.
		for _, iv := range []Interval{a, b, x, sub} {
			before := iv.String()
			iv.normalize()
			if iv.String() != before {
				t.Fatalf("normalize not idempotent: %s -> %s", before, iv)
			}
		}
		_ = x.String()

		// Round-trip through the predicate form: the rebuilt predicate must
		// hold exactly on the values the interval contains.
		col := NewColumn("", "x", 0, types.KindInt)
		pred := IntervalToPredicate(col, a)
		if pred != nil {
			for _, v := range probes {
				if v.IsNull() {
					continue
				}
				got, err := EvalBool(pred, types.Row{v})
				if err != nil {
					t.Fatalf("IntervalToPredicate(%s) eval: %v", a, err)
				}
				if got != a.Contains(v) {
					t.Fatalf("IntervalToPredicate(%s)=%s disagrees at %s", a, pred, v)
				}
			}
		}
	})
}
