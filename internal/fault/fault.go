// Package fault is a deterministic fault-injection harness for softdb's
// robustness testing. An Injector is configured with a seed and per-site
// probabilities; the executor consults it at every simulated page read and
// the engine's maintenance paths consult it per refresh attempt. Injected
// faults come in three flavors:
//
//   - storage read errors (a page read fails with an error wrapping
//     ErrInjected),
//   - operator panics (the read site panics with an *InjectedPanic value,
//     exercising every recover() boundary), and
//   - artificial slow pages (the read site sleeps, exercising deadlines
//     and cancellation).
//
// Decisions are drawn from a single seeded PRNG behind a mutex, so a given
// seed produces the same decision sequence run over run. Under parallel
// execution the assignment of decisions to workers depends on scheduling,
// but the differential property the test suite checks — a query either
// returns correct rows or a typed error, never wrong rows — holds for any
// interleaving.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is wrapped by every injected storage read error, so callers
// can classify injected faults with errors.Is (e.g. the softc retry path
// treats them as transient).
var ErrInjected = errors.New("injected storage fault")

// InjectedPanic is the value an injected operator panic carries; recover
// sites surface it inside a QueryError, and tests assert on the type to
// distinguish injected panics from real bugs.
type InjectedPanic struct {
	// Site is the operator or subsystem label active when the panic fired.
	Site string
	// N is the 1-based ordinal of this panic within the injector's run.
	N int64
}

// String renders the panic value.
func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic #%d at %s", p.N, p.Site)
}

// Config sets the fault mix. Probabilities are per page-read decision in
// [0,1]; zero disables that fault flavor.
type Config struct {
	// Seed seeds the decision PRNG.
	Seed int64
	// ReadErrProb is the probability a page read returns an error.
	ReadErrProb float64
	// PanicProb is the probability a page read panics instead of
	// returning, simulating a poisoned operator.
	PanicProb float64
	// SlowProb is the probability a page read sleeps for SlowDelay,
	// simulating a stalled I/O.
	SlowProb float64
	// SlowDelay is how long a slow page stalls.
	SlowDelay time.Duration
}

// Stats counts what the injector did.
type Stats struct {
	Decisions  int64 // page-read decisions taken
	ReadErrors int64 // injected read errors
	Panics     int64 // injected panics
	Slowdowns  int64 // injected slow pages
}

// Injector draws deterministic fault decisions. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	stats Stats
	// sleep is swappable for tests.
	sleep func(time.Duration)
}

// New returns an injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		sleep: time.Sleep,
	}
}

// PageRead is the storage-read fault site: the executor calls it once per
// simulated page touch with the active operator's label. It may sleep (slow
// page), return an error (read error), or panic (poisoned operator). A nil
// injector is a no-op so call sites need no guard.
func (i *Injector) PageRead(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	i.stats.Decisions++
	c := i.cfg
	r := i.rng.Float64()
	var (
		slow   bool
		fail   bool
		blow   bool
		panicN int64
	)
	// One draw decides the flavor: disjoint probability bands keep the
	// per-decision cost at a single Float64 call.
	switch {
	case r < c.ReadErrProb:
		fail = true
		i.stats.ReadErrors++
	case r < c.ReadErrProb+c.PanicProb:
		blow = true
		i.stats.Panics++
		panicN = i.stats.Panics
	case r < c.ReadErrProb+c.PanicProb+c.SlowProb:
		slow = true
		i.stats.Slowdowns++
	}
	sleep := i.sleep
	i.mu.Unlock()

	if slow {
		sleep(c.SlowDelay)
	}
	if blow {
		panic(&InjectedPanic{Site: site, N: panicN})
	}
	if fail {
		return fmt.Errorf("fault: page read at %s: %w", site, ErrInjected)
	}
	return nil
}

// Attempt is the maintenance-path fault site: async refresh attempts call
// it once per attempt and retry on the injected (transient) error. It never
// panics or sleeps. A nil injector is a no-op.
func (i *Injector) Attempt(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.Decisions++
	if i.rng.Float64() < i.cfg.ReadErrProb {
		i.stats.ReadErrors++
		return fmt.Errorf("fault: refresh attempt at %s: %w", site, ErrInjected)
	}
	return nil
}

// Stats returns a snapshot of the injector's activity.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// SetSleep overrides the slow-page sleep function (tests).
func (i *Injector) SetSleep(f func(time.Duration)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sleep = f
}
