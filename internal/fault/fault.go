// Package fault is a deterministic fault-injection harness for softdb's
// robustness testing. An Injector is configured with a seed and per-site
// probabilities; the executor consults it at every simulated page read and
// the engine's maintenance paths consult it per refresh attempt. Injected
// faults come in three flavors:
//
//   - storage read errors (a page read fails with an error wrapping
//     ErrInjected),
//   - operator panics (the read site panics with an *InjectedPanic value,
//     exercising every recover() boundary), and
//   - artificial slow pages (the read site sleeps, exercising deadlines
//     and cancellation).
//
// Decisions are drawn from a single seeded PRNG behind a mutex, so a given
// seed produces the same decision sequence run over run. Under parallel
// execution the assignment of decisions to workers depends on scheduling,
// but the differential property the test suite checks — a query either
// returns correct rows or a typed error, never wrong rows — holds for any
// interleaving.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is wrapped by every injected storage read error, so callers
// can classify injected faults with errors.Is (e.g. the softc retry path
// treats them as transient).
var ErrInjected = errors.New("injected storage fault")

// InjectedPanic is the value an injected operator panic carries; recover
// sites surface it inside a QueryError, and tests assert on the type to
// distinguish injected panics from real bugs.
type InjectedPanic struct {
	// Site is the operator or subsystem label active when the panic fired.
	Site string
	// N is the 1-based ordinal of this panic within the injector's run.
	N int64
}

// String renders the panic value.
func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic #%d at %s", p.N, p.Site)
}

// Config sets the fault mix. Probabilities are per page-read decision in
// [0,1]; zero disables that fault flavor.
type Config struct {
	// Seed seeds the decision PRNG.
	Seed int64
	// ReadErrProb is the probability a page read returns an error.
	ReadErrProb float64
	// PanicProb is the probability a page read panics instead of
	// returning, simulating a poisoned operator.
	PanicProb float64
	// SlowProb is the probability a page read sleeps for SlowDelay,
	// simulating a stalled I/O.
	SlowProb float64
	// SlowDelay is how long a slow page stalls.
	SlowDelay time.Duration

	// The WAL sites below are deterministic (byte/ordinal triggers, not
	// probabilities) so every durability failure mode is reachable at an
	// exact point, run over run.

	// WALTornAfter, when > 0, tears the WAL: once the injector has allowed
	// this many cumulative log bytes, the write that crosses the boundary
	// persists only the bytes up to it and fails — simulating a crash
	// mid-append. Later writes fail with zero bytes allowed.
	WALTornAfter int64
	// WALSyncFailAt, when > 0, fails the Nth WAL fsync (1-based) and every
	// fsync after it, simulating a dying device.
	WALSyncFailAt int64
	// WALSnapTornAfter, when > 0, tears the checkpoint snapshot temp file
	// after this many cumulative snapshot bytes — simulating a crash
	// mid-checkpoint.
	WALSnapTornAfter int64
	// WALReadLimit, when > 0, caps how many bytes of the log recovery may
	// read, simulating a short read of the tail.
	WALReadLimit int64
}

// Stats counts what the injector did.
type Stats struct {
	Decisions  int64 // page-read decisions taken
	ReadErrors int64 // injected read errors
	Panics     int64 // injected panics
	Slowdowns  int64 // injected slow pages

	WALTornWrites   int64 // torn WAL appends
	WALSyncFailures int64 // failed WAL fsyncs
	WALSnapTorn     int64 // torn checkpoint snapshot writes
	WALShortReads   int64 // recovery reads capped short
}

// Injector draws deterministic fault decisions. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	stats Stats
	// sleep is swappable for tests.
	sleep func(time.Duration)

	walBytes  int64 // cumulative WAL bytes allowed through WALWriteAllow
	walSyncs  int64 // WAL fsyncs attempted
	snapBytes int64 // cumulative snapshot bytes allowed through WALSnapAllow
}

// New returns an injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		sleep: time.Sleep,
	}
}

// PageRead is the storage-read fault site: the executor calls it once per
// simulated page touch with the active operator's label. It may sleep (slow
// page), return an error (read error), or panic (poisoned operator). A nil
// injector is a no-op so call sites need no guard.
func (i *Injector) PageRead(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	i.stats.Decisions++
	c := i.cfg
	r := i.rng.Float64()
	var (
		slow   bool
		fail   bool
		blow   bool
		panicN int64
	)
	// One draw decides the flavor: disjoint probability bands keep the
	// per-decision cost at a single Float64 call.
	switch {
	case r < c.ReadErrProb:
		fail = true
		i.stats.ReadErrors++
	case r < c.ReadErrProb+c.PanicProb:
		blow = true
		i.stats.Panics++
		panicN = i.stats.Panics
	case r < c.ReadErrProb+c.PanicProb+c.SlowProb:
		slow = true
		i.stats.Slowdowns++
	}
	sleep := i.sleep
	i.mu.Unlock()

	if slow {
		sleep(c.SlowDelay)
	}
	if blow {
		panic(&InjectedPanic{Site: site, N: panicN})
	}
	if fail {
		return fmt.Errorf("fault: page read at %s: %w", site, ErrInjected)
	}
	return nil
}

// Attempt is the maintenance-path fault site: async refresh attempts call
// it once per attempt and retry on the injected (transient) error. It never
// panics or sleeps. A nil injector is a no-op.
func (i *Injector) Attempt(site string) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.Decisions++
	if i.rng.Float64() < i.cfg.ReadErrProb {
		i.stats.ReadErrors++
		return fmt.Errorf("fault: refresh attempt at %s: %w", site, ErrInjected)
	}
	return nil
}

// WALWriteAllow is the WAL-append fault site: the log writer asks how many
// of the next n bytes may reach the file. Without a configured tear it
// returns (n, nil). When the cumulative allowance crosses WALTornAfter it
// returns the partial count up to the boundary plus an error wrapping
// ErrInjected — the writer persists exactly that prefix, simulating a torn
// write. A nil injector allows everything.
func (i *Injector) WALWriteAllow(n int) (int, error) {
	if i == nil {
		return n, nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cfg.WALTornAfter <= 0 {
		i.walBytes += int64(n)
		return n, nil
	}
	remaining := i.cfg.WALTornAfter - i.walBytes
	if remaining >= int64(n) {
		i.walBytes += int64(n)
		return n, nil
	}
	if remaining < 0 {
		remaining = 0
	}
	i.walBytes += remaining
	i.stats.WALTornWrites++
	return int(remaining), fmt.Errorf("fault: torn WAL write after %d bytes: %w", i.cfg.WALTornAfter, ErrInjected)
}

// WALSync is the WAL-fsync fault site: the Nth fsync (and every one after)
// fails when WALSyncFailAt is set. A nil injector is a no-op.
func (i *Injector) WALSync() error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.walSyncs++
	if i.cfg.WALSyncFailAt > 0 && i.walSyncs >= i.cfg.WALSyncFailAt {
		i.stats.WALSyncFailures++
		return fmt.Errorf("fault: WAL fsync #%d failed: %w", i.walSyncs, ErrInjected)
	}
	return nil
}

// WALSnapAllow is the checkpoint-snapshot fault site, mirroring
// WALWriteAllow for the snapshot temp file.
func (i *Injector) WALSnapAllow(n int) (int, error) {
	if i == nil {
		return n, nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cfg.WALSnapTornAfter <= 0 {
		i.snapBytes += int64(n)
		return n, nil
	}
	remaining := i.cfg.WALSnapTornAfter - i.snapBytes
	if remaining >= int64(n) {
		i.snapBytes += int64(n)
		return n, nil
	}
	if remaining < 0 {
		remaining = 0
	}
	i.snapBytes += remaining
	i.stats.WALSnapTorn++
	return int(remaining), fmt.Errorf("fault: torn snapshot write after %d bytes: %w", i.cfg.WALSnapTornAfter, ErrInjected)
}

// WALReadCap is the short-read fault site: recovery asks how much of a
// size-byte log it may read and gets min(size, WALReadLimit). A nil
// injector (or an unset limit) allows the full size.
func (i *Injector) WALReadCap(size int64) int64 {
	if i == nil {
		return size
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cfg.WALReadLimit <= 0 || size <= i.cfg.WALReadLimit {
		return size
	}
	i.stats.WALShortReads++
	return i.cfg.WALReadLimit
}

// Stats returns a snapshot of the injector's activity.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// SetSleep overrides the slow-page sleep function (tests).
func (i *Injector) SetSleep(f func(time.Duration)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sleep = f
}
