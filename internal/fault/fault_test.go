package fault

import (
	"errors"
	"testing"
	"time"
)

// drive takes n PageRead decisions, converting injected panics back into
// counts so the caller can compare full outcome sequences.
func drive(inj *Injector, n int) (outcomes []string) {
	for i := 0; i < n; i++ {
		outcomes = append(outcomes, func() (o string) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*InjectedPanic); !ok {
						panic(r)
					}
					o = "panic"
				}
			}()
			if err := New(Config{}).PageRead("warmup"); err != nil {
				panic("no-fault injector returned an error")
			}
			if err := inj.PageRead("test-site"); err != nil {
				if !errors.Is(err, ErrInjected) {
					panic("injected error does not wrap ErrInjected")
				}
				return "error"
			}
			return "ok"
		}())
	}
	return outcomes
}

// TestDeterminism: the same seed must yield the identical outcome sequence
// and stats, run over run — the property the differential suite's
// reproducibility rests on.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, ReadErrProb: 0.2, PanicProb: 0.1, SlowProb: 0.05}
	a, b := New(cfg), New(cfg)
	a.SetSleep(func(time.Duration) {})
	b.SetSleep(func(time.Duration) {})
	oa, ob := drive(a, 500), drive(b, 500)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("decision %d diverged between same-seed injectors: %s vs %s", i, oa[i], ob[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	c := New(Config{Seed: 43, ReadErrProb: 0.2, PanicProb: 0.1, SlowProb: 0.05})
	c.SetSleep(func(time.Duration) {})
	oc := drive(c, 500)
	same := 0
	for i := range oa {
		if oa[i] == oc[i] {
			same++
		}
	}
	if same == len(oa) {
		t.Fatal("different seeds produced the identical 500-decision sequence")
	}
}

// TestBands: each decision picks at most one flavor, counts add up, and
// observed frequencies land near the configured probabilities.
func TestBands(t *testing.T) {
	const n = 20000
	inj := New(Config{Seed: 7, ReadErrProb: 0.3, PanicProb: 0.2, SlowProb: 0.1})
	inj.SetSleep(func(time.Duration) {})
	counts := map[string]int64{}
	for _, o := range drive(inj, n) {
		counts[o]++
	}
	s := inj.Stats()
	if s.Decisions != n {
		t.Fatalf("decisions = %d, want %d", s.Decisions, n)
	}
	if s.ReadErrors != counts["error"] || s.Panics != counts["panic"] {
		t.Fatalf("stats %+v disagree with observed outcomes %v", s, counts)
	}
	// Slow pages still return nil, so they land in "ok" here; errors and
	// panics must account for everything else.
	if s.ReadErrors+s.Panics+counts["ok"] != n {
		t.Fatalf("flavors overlap or leak: %+v, ok=%d", s, counts["ok"])
	}
	if s.Slowdowns > counts["ok"] {
		t.Fatalf("more slowdowns than successful reads: %+v, ok=%d", s, counts["ok"])
	}
	for _, chk := range []struct {
		name string
		got  int64
		want float64
	}{
		{"read errors", s.ReadErrors, 0.3 * n},
		{"panics", s.Panics, 0.2 * n},
		{"slowdowns", s.Slowdowns, 0.1 * n},
	} {
		if f := float64(chk.got); f < chk.want*0.8 || f > chk.want*1.2 {
			t.Errorf("%s: %d observed, want about %.0f", chk.name, chk.got, chk.want)
		}
	}
}

// TestSlowPagesSleep: with SlowProb=1 every decision must invoke the
// (swapped) sleep with the configured delay, and nothing else fires.
func TestSlowPagesSleep(t *testing.T) {
	inj := New(Config{Seed: 1, SlowProb: 1, SlowDelay: 123 * time.Millisecond})
	var slept []time.Duration
	inj.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	for i := 0; i < 10; i++ {
		if err := inj.PageRead("slow-site"); err != nil {
			t.Fatalf("slow page returned error: %v", err)
		}
	}
	if len(slept) != 10 {
		t.Fatalf("sleep called %d times, want 10", len(slept))
	}
	for _, d := range slept {
		if d != 123*time.Millisecond {
			t.Fatalf("slept %s, want 123ms", d)
		}
	}
}

// TestAttempt: the maintenance site only ever errors — no panics, no
// sleeps — even with all flavors configured.
func TestAttempt(t *testing.T) {
	inj := New(Config{Seed: 3, ReadErrProb: 0.5, PanicProb: 0.5, SlowProb: 0})
	inj.SetSleep(func(time.Duration) { t.Fatal("Attempt slept") })
	errs := 0
	for i := 0; i < 1000; i++ {
		if err := inj.Attempt("maint-site"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("attempt error does not wrap ErrInjected: %v", err)
			}
			errs++
		}
	}
	if errs == 0 || errs == 1000 {
		t.Fatalf("attempt errors = %d of 1000 with p=0.5", errs)
	}
	if s := inj.Stats(); s.Panics != 0 || s.Slowdowns != 0 {
		t.Fatalf("Attempt produced panics or slowdowns: %+v", s)
	}
}

// TestNilInjector: a nil *Injector is a universal no-op, so call sites
// need no guards.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if err := inj.PageRead("x"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Attempt("x"); err != nil {
		t.Fatal(err)
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector reported stats %+v", s)
	}
}

// TestPanicValue: injected panics carry the site label and a 1-based
// ordinal.
func TestPanicValue(t *testing.T) {
	inj := New(Config{Seed: 9, PanicProb: 1})
	for want := int64(1); want <= 3; want++ {
		func() {
			defer func() {
				p, ok := recover().(*InjectedPanic)
				if !ok {
					t.Fatalf("panic value is not *InjectedPanic")
				}
				if p.Site != "op-7" || p.N != want {
					t.Fatalf("panic = %+v, want site op-7, n %d", p, want)
				}
			}()
			_ = inj.PageRead("op-7")
		}()
	}
}
