// Package catalog is softdb's system catalog: table definitions and heaps,
// secondary indexes, integrity constraints with the paper's enforcement
// modes (enforced, informational, absolute soft, statistical soft), the
// soft-constraint registry (linear correlations, join holes, functional
// dependencies, value ranges), summary tables (ASTs), and collected
// statistics.
package catalog

import (
	"fmt"
	"strings"

	"softdb/internal/expr"
)

// Mode is a constraint's enforcement mode, the paper's central distinction.
type Mode uint8

const (
	// ModeEnforced is a classic integrity constraint: checked on every
	// update, and a violating transaction is rejected.
	ModeEnforced Mode = iota
	// ModeInformational is §1's informational constraint: an external
	// promise that it holds; never checked, always trusted by the
	// optimizer.
	ModeInformational
	// ModeSoftAbsolute is an ASC: consistent with the current state,
	// checked on update, but a violating update succeeds and the
	// constraint is deactivated (or repaired) instead.
	ModeSoftAbsolute
	// ModeSoftStatistical is an SSC: may be violated by some fraction of
	// rows; usable for cardinality estimation only, never for rewrite.
	ModeSoftStatistical
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEnforced:
		return "ENFORCED"
	case ModeInformational:
		return "INFORMATIONAL"
	case ModeSoftAbsolute:
		return "SOFT ABSOLUTE"
	case ModeSoftStatistical:
		return "SOFT STATISTICAL"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// UsableInRewrite reports whether constraints of this mode may drive
// semantically-equivalent rewrites. SSCs may not (§3): a rewrite must hold
// for every row.
func (m Mode) UsableInRewrite() bool { return m != ModeSoftStatistical }

// CheckedOnUpdate reports whether the engine validates this mode during
// DML. Informational constraints and SSCs are never checked (§1, §3.3).
func (m Mode) CheckedOnUpdate() bool { return m == ModeEnforced || m == ModeSoftAbsolute }

// Kind enumerates constraint kinds.
type Kind uint8

const (
	// PrimaryKey implies uniqueness and not-null over its columns.
	PrimaryKey Kind = iota
	// Unique is a uniqueness constraint.
	Unique
	// ForeignKey is referential integrity from Columns to RefColumns of
	// RefTable.
	ForeignKey
	// Check is a row-level predicate over the table's columns.
	Check
	// FuncDep is a functional dependency Columns → DepColumns (§2 [29]);
	// not part of SQL DDL, produced by mining or declared via the API.
	FuncDep
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PrimaryKey:
		return "PRIMARY KEY"
	case Unique:
		return "UNIQUE"
	case ForeignKey:
		return "FOREIGN KEY"
	case Check:
		return "CHECK"
	case FuncDep:
		return "FUNCTIONAL DEPENDENCY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Constraint is one catalog constraint. Exactly which fields are meaningful
// depends on Kind.
type Constraint struct {
	Name  string
	Kind  Kind
	Mode  Mode
	Table string

	// Columns are the constrained columns: key columns for
	// PrimaryKey/Unique, referencing columns for ForeignKey, the
	// determinant for FuncDep.
	Columns []string
	// RefTable/RefColumns are the referenced side of a ForeignKey.
	RefTable   string
	RefColumns []string
	// CheckExpr is a Check predicate bound to the table's column ordinals.
	CheckExpr expr.Expr
	// DepColumns is the dependent set of a FuncDep.
	DepColumns []string

	// Confidence is the fraction of rows satisfying the constraint
	// statement; 1.0 for everything except SSCs (§3.3). For an SSC it is
	// refreshed by softc maintenance.
	Confidence float64

	// Active reports whether the constraint is currently usable. An ASC
	// that is violated is deactivated rather than blocking the update
	// (§4.1).
	Active bool

	// Currency bookkeeping for soft constraints (§3.3's "measure of
	// currency"): the heap version at last verification and the number of
	// row modifications on the table since.
	VerifiedVersion int64
	ModsSince       int64
}

// Describe renders a one-line catalog description.
func (c *Constraint) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s ON %s", c.Name, c.Kind, c.Table)
	switch c.Kind {
	case PrimaryKey, Unique:
		fmt.Fprintf(&b, " (%s)", strings.Join(c.Columns, ", "))
	case ForeignKey:
		fmt.Fprintf(&b, " (%s) REFERENCES %s (%s)",
			strings.Join(c.Columns, ", "), c.RefTable, strings.Join(c.RefColumns, ", "))
	case Check:
		fmt.Fprintf(&b, " (%s)", c.CheckExpr)
	case FuncDep:
		fmt.Fprintf(&b, " (%s -> %s)", strings.Join(c.Columns, ", "), strings.Join(c.DepColumns, ", "))
	}
	fmt.Fprintf(&b, " [%s", c.Mode)
	if c.Mode == ModeSoftStatistical {
		fmt.Fprintf(&b, " confidence=%.4f", c.Confidence)
	}
	if !c.Active {
		b.WriteString(" INACTIVE")
	}
	b.WriteString("]")
	return b.String()
}

// IsKeyOver reports whether the constraint guarantees uniqueness over
// exactly the given column set (order-insensitive, case-insensitive).
func (c *Constraint) IsKeyOver(cols []string) bool {
	if c.Kind != PrimaryKey && c.Kind != Unique {
		return false
	}
	if !c.Active || len(c.Columns) != len(cols) {
		return false
	}
	have := make(map[string]bool, len(c.Columns))
	for _, col := range c.Columns {
		have[strings.ToLower(col)] = true
	}
	for _, col := range cols {
		if !have[strings.ToLower(col)] {
			return false
		}
	}
	return true
}
