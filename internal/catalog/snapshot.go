package catalog

// Checkpoint serialization: EncodeState/DecodeState capture the whole
// catalog — table definitions, heap page images (dead slots included, so
// RowIDs survive), indexes, constraints, statistics, summary tables,
// virtual columns, correlations, join holes, and exception links — while
// EncodeSoftRegistry/DecodeSoftRegistry capture just the mutable
// soft-characterization state, the image a TypeSoft WAL record carries.
//
// Everything is built from the internal/wire/codec primitives, so row
// images in a snapshot are byte-identical to the same rows in WAL records
// and on the client wire.
//
// Expressions (CHECK predicates, summary WHERE clauses, virtual columns)
// are persisted as their String() rendering and re-bound at decode through
// an ExprBinder the engine supplies — the catalog cannot parse SQL itself
// without an import cycle. Index trees are rebuilt from the restored
// heaps; they are derived state, not logged state.

import (
	"fmt"
	"sort"

	"softdb/internal/btree"
	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/stats"
	"softdb/internal/storage"
	"softdb/internal/types"
	"softdb/internal/wire/codec"
)

// ExprBinder parses an expression rendered by expr.Expr.String() and binds
// it to the table's column ordinals. The engine supplies its parser.
type ExprBinder func(exprSQL string, def *schema.Table) (expr.Expr, error)

// snapVersion guards the snapshot payload layout.
const snapVersion = 1

// Exceptions returns a copy of the constraint→exception-AST links.
func (c *Catalog) Exceptions() map[string]string {
	out := make(map[string]string, len(c.exceptions))
	for k, v := range c.exceptions {
		out[k] = v
	}
	return out
}

// AllCorrelations lists every correlation — inactive and probationary ones
// included — in name order. Correlations() filters to active; snapshots
// and the crash-differential tests need the full registry.
func (c *Catalog) AllCorrelations() []*LinearCorrelation {
	out := make([]*LinearCorrelation, 0, len(c.correls))
	for _, lc := range c.correls {
		out = append(out, lc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllSummaries lists every summary table in name order.
func (c *Catalog) AllSummaries() []*SummaryTable {
	out := make([]*SummaryTable, 0, len(c.summaries))
	for _, st := range c.summaries {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- primitive helpers ---

func appendOptDatum(b []byte, d types.Datum) ([]byte, error) {
	return codec.AppendDatum(b, d) // NULL encodes as its own kind; no flag needed
}

func appendInterval(b []byte, iv expr.Interval) ([]byte, error) {
	var flags byte
	if iv.HasLo {
		flags |= 1
	}
	if iv.HasHi {
		flags |= 2
	}
	if iv.LoIncl {
		flags |= 4
	}
	if iv.HiIncl {
		flags |= 8
	}
	if iv.ExactEmpty {
		flags |= 16
	}
	if iv.EqualityConstant != nil {
		flags |= 32
	}
	b = append(b, flags)
	var err error
	if b, err = appendOptDatum(b, iv.Lo); err != nil {
		return nil, err
	}
	if b, err = appendOptDatum(b, iv.Hi); err != nil {
		return nil, err
	}
	if iv.EqualityConstant != nil {
		if b, err = appendOptDatum(b, *iv.EqualityConstant); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeInterval(d *codec.Decoder) expr.Interval {
	flags := d.Byte("interval flags")
	iv := expr.Interval{
		HasLo:      flags&1 != 0,
		HasHi:      flags&2 != 0,
		LoIncl:     flags&4 != 0,
		HiIncl:     flags&8 != 0,
		ExactEmpty: flags&16 != 0,
	}
	iv.Lo = d.Datum()
	iv.Hi = d.Datum()
	if flags&32 != 0 {
		eq := d.Datum()
		iv.EqualityConstant = &eq
	}
	return iv
}

func appendColumnStats(b []byte, cs *stats.ColumnStats) ([]byte, error) {
	if cs == nil {
		return codec.AppendBool(b, false), nil
	}
	b = codec.AppendBool(b, true)
	b = codec.AppendString(b, cs.Column)
	b = append(b, byte(cs.Kind))
	b = codec.AppendVarint(b, cs.RowCount)
	b = codec.AppendVarint(b, cs.NullCount)
	b = codec.AppendVarint(b, cs.NDV)
	var err error
	if b, err = appendOptDatum(b, cs.Min); err != nil {
		return nil, err
	}
	if b, err = appendOptDatum(b, cs.Max); err != nil {
		return nil, err
	}
	b = codec.AppendFloat(b, cs.ClusterRatio)
	if cs.Hist == nil {
		b = codec.AppendBool(b, false)
	} else {
		b = codec.AppendBool(b, true)
		b = codec.AppendUvarint(b, uint64(len(cs.Hist.UpperBounds)))
		for i := range cs.Hist.UpperBounds {
			if b, err = appendOptDatum(b, cs.Hist.UpperBounds[i]); err != nil {
				return nil, err
			}
			b = codec.AppendVarint(b, cs.Hist.Counts[i])
			b = codec.AppendVarint(b, cs.Hist.Distinct[i])
		}
		b = codec.AppendVarint(b, cs.Hist.Total)
	}
	b = codec.AppendUvarint(b, uint64(len(cs.MCVs)))
	for _, vf := range cs.MCVs {
		if b, err = appendOptDatum(b, vf.Value); err != nil {
			return nil, err
		}
		b = codec.AppendVarint(b, vf.Count)
	}
	return b, nil
}

func decodeColumnStats(d *codec.Decoder) *stats.ColumnStats {
	if !d.Bool("column stats present") {
		return nil
	}
	cs := &stats.ColumnStats{
		Column:    d.String("stats column"),
		Kind:      types.Kind(d.Byte("stats kind")),
		RowCount:  d.Varint("stats rows"),
		NullCount: d.Varint("stats nulls"),
		NDV:       d.Varint("stats ndv"),
	}
	cs.Min = d.Datum()
	cs.Max = d.Datum()
	cs.ClusterRatio = d.Float("stats cluster ratio")
	if d.Bool("histogram present") {
		n := d.Uvarint("histogram buckets")
		if n > uint64(d.Len()) {
			d.Fail("histogram buckets")
			return nil
		}
		h := &stats.Histogram{}
		for i := uint64(0); i < n; i++ {
			h.UpperBounds = append(h.UpperBounds, d.Datum())
			h.Counts = append(h.Counts, d.Varint("histogram count"))
			h.Distinct = append(h.Distinct, d.Varint("histogram distinct"))
		}
		h.Total = d.Varint("histogram total")
		cs.Hist = h
	}
	n := d.Uvarint("mcv count")
	if n > uint64(d.Len()) {
		d.Fail("mcv count")
		return nil
	}
	for i := uint64(0); i < n; i++ {
		v := d.Datum()
		cs.MCVs = append(cs.MCVs, stats.ValueFreq{Value: v, Count: d.Varint("mcv freq")})
	}
	return cs
}

func appendTableStats(b []byte, ts *stats.TableStats) ([]byte, error) {
	if ts == nil {
		return codec.AppendBool(b, false), nil
	}
	b = codec.AppendBool(b, true)
	b = codec.AppendString(b, ts.Table)
	b = codec.AppendVarint(b, ts.RowCount)
	b = codec.AppendVarint(b, ts.Pages)
	b = codec.AppendVarint(b, ts.Version)
	keys := sortedKeys(ts.Columns)
	b = codec.AppendUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = codec.AppendString(b, k)
		if b, err = appendColumnStats(b, ts.Columns[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeTableStats(d *codec.Decoder) *stats.TableStats {
	if !d.Bool("table stats present") {
		return nil
	}
	ts := &stats.TableStats{
		Table:    d.String("table stats name"),
		RowCount: d.Varint("table stats rows"),
		Pages:    d.Varint("table stats pages"),
		Version:  d.Varint("table stats version"),
		Columns:  map[string]*stats.ColumnStats{},
	}
	n := d.Uvarint("table stats columns")
	if n > uint64(d.Len()) {
		d.Fail("table stats columns")
		return nil
	}
	for i := uint64(0); i < n; i++ {
		k := d.String("table stats column key")
		ts.Columns[k] = decodeColumnStats(d)
	}
	return ts
}

func appendHeap(b []byte, h *storage.Heap) ([]byte, error) {
	b = codec.AppendVarint(b, h.Version())
	pages := h.DumpPages()
	b = codec.AppendUvarint(b, uint64(len(pages)))
	var err error
	for _, ps := range pages {
		b = codec.AppendUvarint(b, uint64(len(ps)))
		for _, s := range ps {
			b = codec.AppendBool(b, s.Dead)
			if b, err = codec.AppendRow(b, s.Row); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func decodeHeap(d *codec.Decoder, def *schema.Table) *storage.Heap {
	version := d.Varint("heap version")
	np := d.Uvarint("heap pages")
	if np > uint64(d.Len()) {
		d.Fail("heap pages")
		return nil
	}
	pages := make([][]storage.SlotData, 0, np)
	for p := uint64(0); p < np; p++ {
		ns := d.Uvarint("heap slots")
		if ns > uint64(d.Len()) {
			d.Fail("heap slots")
			return nil
		}
		slots := make([]storage.SlotData, 0, ns)
		for s := uint64(0); s < ns; s++ {
			dead := d.Bool("slot dead")
			slots = append(slots, storage.SlotData{Dead: dead, Row: d.Row("slot row")})
		}
		pages = append(pages, slots)
	}
	if d.Err() != nil {
		return nil
	}
	return storage.RebuildHeap(def, pages, version)
}

func appendExpr(b []byte, e expr.Expr) []byte {
	if e == nil {
		return codec.AppendBool(b, false)
	}
	b = codec.AppendBool(b, true)
	return codec.AppendString(b, e.String())
}

func decodeExpr(d *codec.Decoder, what string, def *schema.Table, bind ExprBinder) (expr.Expr, error) {
	if !d.Bool(what + " present") {
		return nil, nil
	}
	text := d.String(what + " text")
	if d.Err() != nil {
		return nil, d.Err()
	}
	e, err := bind(text, def)
	if err != nil {
		return nil, fmt.Errorf("catalog: rebind %s %q: %w", what, text, err)
	}
	return e, nil
}

func appendStrings(b []byte, ss []string) []byte {
	b = codec.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = codec.AppendString(b, s)
	}
	return b
}

func decodeStrings(d *codec.Decoder, what string) []string {
	n := d.Uvarint(what)
	if n > uint64(d.Len()) {
		d.Fail(what)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.String(what))
	}
	return out
}

// --- constraints, correlations, holes ---

func appendConstraint(b []byte, con *Constraint) ([]byte, error) {
	b = codec.AppendString(b, con.Name)
	b = append(b, byte(con.Kind), byte(con.Mode))
	b = codec.AppendString(b, con.Table)
	b = appendStrings(b, con.Columns)
	b = codec.AppendString(b, con.RefTable)
	b = appendStrings(b, con.RefColumns)
	b = appendExpr(b, con.CheckExpr)
	b = appendStrings(b, con.DepColumns)
	b = codec.AppendFloat(b, con.Confidence)
	b = codec.AppendBool(b, con.Active)
	b = codec.AppendVarint(b, con.VerifiedVersion)
	b = codec.AppendVarint(b, con.ModsSince)
	return b, nil
}

func decodeConstraint(d *codec.Decoder, def *schema.Table, bind ExprBinder) (*Constraint, error) {
	con := &Constraint{Name: d.String("constraint name")}
	con.Kind = Kind(d.Byte("constraint kind"))
	con.Mode = Mode(d.Byte("constraint mode"))
	con.Table = d.String("constraint table")
	con.Columns = decodeStrings(d, "constraint columns")
	con.RefTable = d.String("constraint ref table")
	con.RefColumns = decodeStrings(d, "constraint ref columns")
	var err error
	if con.CheckExpr, err = decodeExpr(d, "check expr", def, bind); err != nil {
		return nil, err
	}
	con.DepColumns = decodeStrings(d, "constraint dep columns")
	con.Confidence = d.Float("constraint confidence")
	con.Active = d.Bool("constraint active")
	con.VerifiedVersion = d.Varint("constraint verified version")
	con.ModsSince = d.Varint("constraint mods since")
	return con, d.Err()
}

func appendCorrelation(b []byte, lc *LinearCorrelation) []byte {
	b = codec.AppendString(b, lc.Name)
	b = codec.AppendString(b, lc.Table)
	b = codec.AppendString(b, lc.ColA)
	b = codec.AppendString(b, lc.ColB)
	b = codec.AppendFloat(b, lc.K)
	b = codec.AppendFloat(b, lc.B0)
	b = codec.AppendFloat(b, lc.Eps)
	b = codec.AppendFloat(b, lc.Confidence)
	b = codec.AppendBool(b, lc.Active)
	b = codec.AppendBool(b, lc.Probation)
	b = codec.AppendVarint(b, lc.VerifiedVersion)
	b = codec.AppendVarint(b, lc.ModsSince)
	return b
}

func decodeCorrelation(d *codec.Decoder) *LinearCorrelation {
	lc := &LinearCorrelation{Name: d.String("correlation name")}
	lc.Table = d.String("correlation table")
	lc.ColA = d.String("correlation colA")
	lc.ColB = d.String("correlation colB")
	lc.K = d.Float("correlation k")
	lc.B0 = d.Float("correlation b0")
	lc.Eps = d.Float("correlation eps")
	lc.Confidence = d.Float("correlation confidence")
	lc.Active = d.Bool("correlation active")
	lc.Probation = d.Bool("correlation probation")
	lc.VerifiedVersion = d.Varint("correlation verified version")
	lc.ModsSince = d.Varint("correlation mods since")
	return lc
}

func appendJoinHoles(b []byte, jh *JoinHoles) ([]byte, error) {
	b = codec.AppendString(b, jh.Name)
	b = codec.AppendString(b, jh.LeftTable)
	b = codec.AppendString(b, jh.RightTable)
	b = codec.AppendString(b, jh.JoinLeft)
	b = codec.AppendString(b, jh.JoinRight)
	b = codec.AppendString(b, jh.AttrLeft)
	b = codec.AppendString(b, jh.AttrRight)
	b = codec.AppendUvarint(b, uint64(len(jh.Holes)))
	var err error
	for _, h := range jh.Holes {
		if b, err = appendInterval(b, h.A); err != nil {
			return nil, err
		}
		if b, err = appendInterval(b, h.B); err != nil {
			return nil, err
		}
	}
	b = codec.AppendBool(b, jh.Active)
	b = codec.AppendVarint(b, jh.VerifiedVersion)
	b = codec.AppendVarint(b, jh.ModsSince)
	return b, nil
}

func decodeJoinHoles(d *codec.Decoder) *JoinHoles {
	jh := &JoinHoles{Name: d.String("holes name")}
	jh.LeftTable = d.String("holes left table")
	jh.RightTable = d.String("holes right table")
	jh.JoinLeft = d.String("holes join left")
	jh.JoinRight = d.String("holes join right")
	jh.AttrLeft = d.String("holes attr left")
	jh.AttrRight = d.String("holes attr right")
	n := d.Uvarint("holes count")
	if n > uint64(d.Len()) {
		d.Fail("holes count")
		return nil
	}
	for i := uint64(0); i < n; i++ {
		a := decodeInterval(d)
		jh.Holes = append(jh.Holes, Rect{A: a, B: decodeInterval(d)})
	}
	jh.Active = d.Bool("holes active")
	jh.VerifiedVersion = d.Varint("holes verified version")
	jh.ModsSince = d.Varint("holes mods since")
	return jh
}

func appendVirtual(b []byte, vc *VirtualColumn) ([]byte, error) {
	b = codec.AppendString(b, vc.Name)
	b = appendExpr(b, vc.Expr)
	return appendColumnStats(b, vc.Stats)
}

func decodeVirtual(d *codec.Decoder, def *schema.Table, bind ExprBinder) (*VirtualColumn, error) {
	vc := &VirtualColumn{Name: d.String("virtual column name")}
	var err error
	if vc.Expr, err = decodeExpr(d, "virtual column expr", def, bind); err != nil {
		return nil, err
	}
	if vc.Expr != nil {
		vc.Canon = expr.Canonical(vc.Expr)
	}
	vc.Stats = decodeColumnStats(d)
	return vc, d.Err()
}

// --- full catalog state ---

// EncodeState serializes the entire catalog onto b. Iteration orders are
// sorted, so identical catalogs encode to identical bytes — the property
// the crash-differential suite compares on.
func (c *Catalog) EncodeState(b []byte) ([]byte, error) {
	b = append(b, snapVersion)
	b = codec.AppendVarint(b, c.version)
	b = codec.AppendVarint(b, c.hard)
	var err error

	b = codec.AppendUvarint(b, uint64(len(c.tables)))
	for _, k := range sortedKeys(c.tables) {
		te := c.tables[k]
		// Definition.
		b = codec.AppendString(b, te.Def.Name)
		b = codec.AppendUvarint(b, uint64(len(te.Def.Columns)))
		for _, col := range te.Def.Columns {
			b = codec.AppendString(b, col.Name)
			b = append(b, byte(col.Type))
			b = codec.AppendBool(b, col.Nullable)
		}
		// Heap.
		if b, err = appendHeap(b, te.Heap); err != nil {
			return nil, err
		}
		// Indexes: definition only; trees are rebuilt at decode.
		b = codec.AppendUvarint(b, uint64(len(te.Indexes)))
		for _, ix := range te.Indexes {
			b = codec.AppendString(b, ix.Name)
			b = appendStrings(b, ix.Columns)
			b = codec.AppendBool(b, ix.Unique)
		}
		// Constraints.
		b = codec.AppendUvarint(b, uint64(len(te.Constraints)))
		for _, con := range te.Constraints {
			if b, err = appendConstraint(b, con); err != nil {
				return nil, err
			}
		}
		// Stats and virtual columns.
		if b, err = appendTableStats(b, te.Stats); err != nil {
			return nil, err
		}
		b = codec.AppendUvarint(b, uint64(len(te.Virtual)))
		for _, vc := range te.Virtual {
			if b, err = appendVirtual(b, vc); err != nil {
				return nil, err
			}
		}
	}

	b = codec.AppendUvarint(b, uint64(len(c.summaries)))
	for _, k := range sortedKeys(c.summaries) {
		st := c.summaries[k]
		b = codec.AppendString(b, st.Name)
		b = codec.AppendString(b, st.Base)
		b = appendExpr(b, st.Where)
		b = codec.AppendBool(b, st.Informational)
		b = codec.AppendVarint(b, st.RowCountEstimate)
		if b, err = appendTableStats(b, st.Stats); err != nil {
			return nil, err
		}
		if st.Heap == nil {
			b = codec.AppendBool(b, false)
		} else {
			b = codec.AppendBool(b, true)
			if b, err = appendHeap(b, st.Heap); err != nil {
				return nil, err
			}
		}
	}

	b = codec.AppendUvarint(b, uint64(len(c.correls)))
	for _, k := range sortedKeys(c.correls) {
		b = appendCorrelation(b, c.correls[k])
	}
	b = codec.AppendUvarint(b, uint64(len(c.holes)))
	for _, k := range sortedKeys(c.holes) {
		if b, err = appendJoinHoles(b, c.holes[k]); err != nil {
			return nil, err
		}
	}
	b = codec.AppendUvarint(b, uint64(len(c.exceptions)))
	for _, k := range sortedKeys(c.exceptions) {
		b = codec.AppendString(b, k)
		b = codec.AppendString(b, c.exceptions[k])
	}
	return b, nil
}

// DecodeState reconstructs a catalog from an EncodeState payload. Index
// trees and page synopses are rebuilt from the restored heaps; version
// counters are restored exactly (none of the rebuild steps bump them).
func DecodeState(payload []byte, bind ExprBinder) (*Catalog, error) {
	d := codec.NewDecoder(payload)
	if v := d.Byte("snapshot version"); v != snapVersion && d.Err() == nil {
		return nil, fmt.Errorf("catalog: unsupported snapshot version %d", v)
	}
	c := New()
	c.version = d.Varint("catalog version")
	c.hard = d.Varint("catalog hard version")

	nt := d.Uvarint("table count")
	if nt > uint64(d.Len()) {
		d.Fail("table count")
		return nil, d.Err()
	}
	for i := uint64(0); i < nt; i++ {
		name := d.String("table name")
		nc := d.Uvarint("column count")
		if nc > uint64(d.Len()) {
			d.Fail("column count")
			return nil, d.Err()
		}
		cols := make([]schema.Column, 0, nc)
		for j := uint64(0); j < nc; j++ {
			col := schema.Column{Name: d.String("column name")}
			col.Type = types.Kind(d.Byte("column type"))
			col.Nullable = d.Bool("column nullable")
			cols = append(cols, col)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		def, err := schema.NewTable(name, cols...)
		if err != nil {
			return nil, fmt.Errorf("catalog: snapshot table %s: %w", name, err)
		}
		te := &TableEntry{Def: def}
		te.Heap = decodeHeap(d, def)
		ni := d.Uvarint("index count")
		if ni > uint64(d.Len()) {
			d.Fail("index count")
			return nil, d.Err()
		}
		for j := uint64(0); j < ni; j++ {
			ixName := d.String("index name")
			ixCols := decodeStrings(d, "index columns")
			unique := d.Bool("index unique")
			if d.Err() != nil {
				return nil, d.Err()
			}
			ords := make([]int, len(ixCols))
			for oi, col := range ixCols {
				if ords[oi] = def.ColumnIndex(col); ords[oi] < 0 {
					return nil, fmt.Errorf("catalog: snapshot index %s: no column %s", ixName, col)
				}
			}
			ix := &Index{Name: ixName, Table: def.Name, Columns: ixCols, Ordinal: ords, Unique: unique, Tree: btree.New()}
			// Rebuild over every physical version, not just live rows:
			// the engine leaves dead versions' index entries in place
			// until Vacuum, and restore must reproduce that state.
			te.Heap.ScanVersions(func(id storage.RowID, row types.Row) bool {
				ix.Tree.Insert(ix.KeyFor(row), id)
				return true
			})
			te.Indexes = append(te.Indexes, ix)
		}
		ncon := d.Uvarint("constraint count")
		if ncon > uint64(d.Len()) {
			d.Fail("constraint count")
			return nil, d.Err()
		}
		for j := uint64(0); j < ncon; j++ {
			con, err := decodeConstraint(d, def, bind)
			if err != nil {
				return nil, err
			}
			te.Constraints = append(te.Constraints, con)
		}
		te.Stats = decodeTableStats(d)
		nv := d.Uvarint("virtual column count")
		if nv > uint64(d.Len()) {
			d.Fail("virtual column count")
			return nil, d.Err()
		}
		for j := uint64(0); j < nv; j++ {
			vc, err := decodeVirtual(d, def, bind)
			if err != nil {
				return nil, err
			}
			te.Virtual = append(te.Virtual, vc)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		c.tables[key(def.Name)] = te
	}

	ns := d.Uvarint("summary count")
	if ns > uint64(d.Len()) {
		d.Fail("summary count")
		return nil, d.Err()
	}
	for i := uint64(0); i < ns; i++ {
		st := &SummaryTable{Name: d.String("summary name")}
		st.Base = d.String("summary base")
		base, ok := c.tables[key(st.Base)]
		if !ok {
			return nil, fmt.Errorf("catalog: snapshot summary %s: no base table %s", st.Name, st.Base)
		}
		st.Def = base.Def
		var err error
		if st.Where, err = decodeExpr(d, "summary where", base.Def, bind); err != nil {
			return nil, err
		}
		st.Informational = d.Bool("summary informational")
		st.RowCountEstimate = d.Varint("summary rowcount estimate")
		st.Stats = decodeTableStats(d)
		if d.Bool("summary heap present") {
			st.Heap = decodeHeap(d, base.Def)
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		c.summaries[key(st.Name)] = st
	}

	ncor := d.Uvarint("correlation count")
	if ncor > uint64(d.Len()) {
		d.Fail("correlation count")
		return nil, d.Err()
	}
	for i := uint64(0); i < ncor; i++ {
		lc := decodeCorrelation(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		c.correls[key(lc.Name)] = lc
	}
	nh := d.Uvarint("holes count")
	if nh > uint64(d.Len()) {
		d.Fail("holes count")
		return nil, d.Err()
	}
	for i := uint64(0); i < nh; i++ {
		jh := decodeJoinHoles(d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		c.holes[key(jh.Name)] = jh
	}
	ne := d.Uvarint("exception count")
	if ne > uint64(d.Len()) {
		d.Fail("exception count")
		return nil, d.Err()
	}
	for i := uint64(0); i < ne; i++ {
		k := d.String("exception constraint")
		c.exceptions[k] = d.String("exception summary")
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("catalog: %d trailing bytes in snapshot", d.Len())
	}
	return c, nil
}

// --- soft registry image (TypeSoft WAL records) ---

// EncodeSoftRegistry serializes the mutable soft-characterization state:
// every table's constraint list (soft fields like Active, Confidence, and
// currency included), virtual columns, correlations, join holes, and
// exception links. This is the image logged whenever the softc manager
// mutates the registry outside a logged statement; replay applies it as a
// full replacement.
func (c *Catalog) EncodeSoftRegistry(b []byte) ([]byte, error) {
	b = append(b, snapVersion)
	var err error
	b = codec.AppendUvarint(b, uint64(len(c.tables)))
	for _, k := range sortedKeys(c.tables) {
		te := c.tables[k]
		b = codec.AppendString(b, te.Def.Name)
		b = codec.AppendUvarint(b, uint64(len(te.Constraints)))
		for _, con := range te.Constraints {
			if b, err = appendConstraint(b, con); err != nil {
				return nil, err
			}
		}
		b = codec.AppendUvarint(b, uint64(len(te.Virtual)))
		for _, vc := range te.Virtual {
			if b, err = appendVirtual(b, vc); err != nil {
				return nil, err
			}
		}
	}
	b = codec.AppendUvarint(b, uint64(len(c.correls)))
	for _, k := range sortedKeys(c.correls) {
		b = appendCorrelation(b, c.correls[k])
	}
	b = codec.AppendUvarint(b, uint64(len(c.holes)))
	for _, k := range sortedKeys(c.holes) {
		if b, err = appendJoinHoles(b, c.holes[k]); err != nil {
			return nil, err
		}
	}
	b = codec.AppendUvarint(b, uint64(len(c.exceptions)))
	for _, k := range sortedKeys(c.exceptions) {
		b = codec.AppendString(b, k)
		b = codec.AppendString(b, c.exceptions[k])
	}
	return b, nil
}

// DecodeSoftRegistry applies an EncodeSoftRegistry image onto the catalog,
// replacing the soft registry wholesale. Tables named in the image must
// already exist (the image was taken after any DDL it depends on, and DDL
// records replay first). The catalog version is bumped once, mirroring the
// maintenance mutation that produced the image.
func (c *Catalog) DecodeSoftRegistry(payload []byte, bind ExprBinder) error {
	d := codec.NewDecoder(payload)
	if v := d.Byte("soft registry version"); v != snapVersion && d.Err() == nil {
		return fmt.Errorf("catalog: unsupported soft registry version %d", v)
	}
	nt := d.Uvarint("soft table count")
	if nt > uint64(d.Len()) {
		d.Fail("soft table count")
		return d.Err()
	}
	type tableSoft struct {
		te          *TableEntry
		constraints []*Constraint
		virtual     []*VirtualColumn
	}
	var staged []tableSoft
	for i := uint64(0); i < nt; i++ {
		name := d.String("soft table name")
		if d.Err() != nil {
			return d.Err()
		}
		te, ok := c.tables[key(name)]
		if !ok {
			return fmt.Errorf("catalog: soft registry references unknown table %s", name)
		}
		ts := tableSoft{te: te}
		ncon := d.Uvarint("soft constraint count")
		if ncon > uint64(d.Len()) {
			d.Fail("soft constraint count")
			return d.Err()
		}
		for j := uint64(0); j < ncon; j++ {
			con, err := decodeConstraint(d, te.Def, bind)
			if err != nil {
				return err
			}
			ts.constraints = append(ts.constraints, con)
		}
		nv := d.Uvarint("soft virtual count")
		if nv > uint64(d.Len()) {
			d.Fail("soft virtual count")
			return d.Err()
		}
		for j := uint64(0); j < nv; j++ {
			vc, err := decodeVirtual(d, te.Def, bind)
			if err != nil {
				return err
			}
			ts.virtual = append(ts.virtual, vc)
		}
		staged = append(staged, ts)
	}
	ncor := d.Uvarint("soft correlation count")
	if ncor > uint64(d.Len()) {
		d.Fail("soft correlation count")
		return d.Err()
	}
	correls := map[string]*LinearCorrelation{}
	for i := uint64(0); i < ncor; i++ {
		lc := decodeCorrelation(d)
		if d.Err() != nil {
			return d.Err()
		}
		correls[key(lc.Name)] = lc
	}
	nh := d.Uvarint("soft holes count")
	if nh > uint64(d.Len()) {
		d.Fail("soft holes count")
		return d.Err()
	}
	holes := map[string]*JoinHoles{}
	for i := uint64(0); i < nh; i++ {
		jh := decodeJoinHoles(d)
		if d.Err() != nil {
			return d.Err()
		}
		holes[key(jh.Name)] = jh
	}
	ne := d.Uvarint("soft exception count")
	if ne > uint64(d.Len()) {
		d.Fail("soft exception count")
		return d.Err()
	}
	exceptions := map[string]string{}
	for i := uint64(0); i < ne; i++ {
		k := d.String("soft exception constraint")
		exceptions[k] = d.String("soft exception summary")
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Len() != 0 {
		return fmt.Errorf("catalog: %d trailing bytes in soft registry image", d.Len())
	}
	// All decoded; apply.
	for _, ts := range staged {
		ts.te.Constraints = ts.constraints
		ts.te.Virtual = ts.virtual
	}
	c.correls = correls
	c.holes = holes
	c.exceptions = exceptions
	c.version++
	return nil
}
