package catalog

import (
	"fmt"
	"sort"
	"strings"

	"softdb/internal/btree"
	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/stats"
	"softdb/internal/storage"
	"softdb/internal/types"
)

// Index is a secondary index over one table.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Ordinal []int // column ordinals in the base table, parallel to Columns
	Unique  bool
	Tree    *btree.Tree
}

// KeyFor extracts the index key from a base-table row.
func (ix *Index) KeyFor(row types.Row) types.Row { return row.Project(ix.Ordinal) }

// SummaryTable is a DB2-style AST: a materialized single-table selection
// (§4.4). When Informational is true the rows are not materialized — only
// statistics are kept — matching the paper's "information AST".
type SummaryTable struct {
	Name          string
	Base          string    // base table name
	Where         expr.Expr // bound to base-table ordinals
	Informational bool
	Heap          *storage.Heap // nil when Informational
	Def           *schema.Table // same columns as the base table
	Stats         *stats.TableStats
	// RowCountEstimate backs an informational AST, which keeps runstats but
	// no rows.
	RowCountEstimate int64
}

// VirtualColumn is §5.1's second mechanism for conveying SSC information:
// a named expression over the table's columns (e.g. `end_date -
// start_date`) whose distribution statistics are collected like a real
// column's, so predicates over the expression get histogram-quality
// estimates instead of defaults.
type VirtualColumn struct {
	Name string
	// Expr is bound to the table's column ordinals.
	Expr expr.Expr
	// Canon is Expr's canonical rendering, matched against query
	// predicates.
	Canon string
	Stats *stats.ColumnStats
}

// TableEntry couples a table's definition, heap, indexes and constraints.
type TableEntry struct {
	Def         *schema.Table
	Heap        *storage.Heap
	Indexes     []*Index
	Constraints []*Constraint
	Stats       *stats.TableStats
	Virtual     []*VirtualColumn
}

// Catalog is the system catalog. It is not safe for concurrent mutation;
// the engine serializes DDL and DML.
type Catalog struct {
	tables     map[string]*TableEntry
	summaries  map[string]*SummaryTable
	correls    map[string]*LinearCorrelation
	holes      map[string]*JoinHoles
	exceptions map[string]string // constraint name -> exception AST name (§4.4)
	version    int64
	hard       int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:     map[string]*TableEntry{},
		summaries:  map[string]*SummaryTable{},
		correls:    map[string]*LinearCorrelation{},
		holes:      map[string]*JoinHoles{},
		exceptions: map[string]string{},
	}
}

// LinkException registers summary as the exception AST of the named
// constraint (§4.4: the materialized view holding exactly the rows that
// violate the constraint statement). The engine keeps the AST maintained;
// the rewriter uses the link for the exact exception-union rewrite.
func (c *Catalog) LinkException(constraintName, summaryName string) error {
	if c.ConstraintByName(constraintName) == nil {
		return fmt.Errorf("catalog: no constraint %s", constraintName)
	}
	st, ok := c.SummaryTable(summaryName)
	if !ok {
		return fmt.Errorf("catalog: no summary table %s", summaryName)
	}
	if st.Informational {
		return fmt.Errorf("catalog: exception AST %s must be materialized", summaryName)
	}
	c.exceptions[key(constraintName)] = st.Name
	c.version++
	return nil
}

// ExceptionFor returns the exception AST linked to the constraint, if any.
func (c *Catalog) ExceptionFor(constraintName string) (*SummaryTable, bool) {
	name, ok := c.exceptions[key(constraintName)]
	if !ok {
		return nil, false
	}
	return c.SummaryTable(name)
}

// Version is bumped on every catalog mutation; the engine's plan cache
// keys on it.
func (c *Catalog) Version() int64 { return c.version }

// HardVersion is bumped only by structural DDL (tables, indexes, summary
// tables). A plan compiled with all soft rules disabled stays executable as
// long as HardVersion is unchanged, even when soft characterizations come
// and go — the validity condition behind §4.1's backup plans.
func (c *Catalog) HardVersion() int64 { return c.hard }

// touchHard records a structural change.
func (c *Catalog) touchHard() {
	c.version++
	c.hard++
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new table and its heap.
func (c *Catalog) CreateTable(def *schema.Table) (*TableEntry, error) {
	k := key(def.Name)
	if _, ok := c.tables[k]; ok {
		return nil, fmt.Errorf("catalog: table %s already exists", def.Name)
	}
	te := &TableEntry{Def: def, Heap: storage.NewHeap(def)}
	c.tables[k] = te
	c.touchHard()
	return te, nil
}

// DropTable removes a table, its indexes and constraints, and any summary
// tables or soft information defined over it.
func (c *Catalog) DropTable(name string) error {
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, k)
	for n, st := range c.summaries {
		if key(st.Base) == k {
			delete(c.summaries, n)
		}
	}
	for n, lc := range c.correls {
		if key(lc.Table) == k {
			delete(c.correls, n)
		}
	}
	for n, jh := range c.holes {
		if key(jh.LeftTable) == k || key(jh.RightTable) == k {
			delete(c.holes, n)
		}
	}
	c.touchHard()
	return nil
}

// Table returns the entry for the named table.
func (c *Catalog) Table(name string) (*TableEntry, error) {
	te, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return te, nil
}

// TableNames lists tables in sorted order.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, te := range c.tables {
		out = append(out, te.Def.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds a secondary index over existing rows.
func (c *Catalog) CreateIndex(name, table string, columns []string, unique bool) (*Index, error) {
	te, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	for _, ix := range te.Indexes {
		if strings.EqualFold(ix.Name, name) {
			return nil, fmt.Errorf("catalog: index %s already exists", name)
		}
	}
	ords := make([]int, len(columns))
	for i, col := range columns {
		o := te.Def.ColumnIndex(col)
		if o < 0 {
			return nil, fmt.Errorf("catalog: index %s: no column %s in %s", name, col, table)
		}
		ords[i] = o
	}
	ix := &Index{Name: name, Table: te.Def.Name, Columns: columns, Ordinal: ords, Unique: unique, Tree: btree.New()}
	// Bulk build.
	var buildErr error
	// Build over every physical version so the index matches what the
	// engine's write path would have produced (dead versions keep their
	// entries until Vacuum); uniqueness is judged on live rows only.
	te.Heap.ScanVersions(func(id storage.RowID, row types.Row) bool {
		k := ix.KeyFor(row)
		if unique {
			if _, live := te.Heap.Get(id); live && treeHasLiveKey(te, ix.Tree, k) {
				buildErr = fmt.Errorf("catalog: cannot build unique index %s: duplicate key %s", name, k)
				return false
			}
		}
		ix.Tree.Insert(k, id)
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	te.Indexes = append(te.Indexes, ix)
	c.touchHard()
	return ix, nil
}

func treeHasLiveKey(te *TableEntry, t *btree.Tree, k types.Row) bool {
	found := false
	t.Lookup(k, nil, func(rid storage.RowID) bool {
		if _, ok := te.Heap.Get(rid); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// IndexOn returns an index whose leading columns cover the given column
// ordinal, preferring single-column exact matches.
func (te *TableEntry) IndexOn(ordinal int) *Index {
	var best *Index
	for _, ix := range te.Indexes {
		if ix.Ordinal[0] == ordinal {
			if len(ix.Ordinal) == 1 {
				return ix
			}
			if best == nil {
				best = ix
			}
		}
	}
	return best
}

// AddConstraint validates and registers a constraint. For ModeEnforced and
// ModeSoftAbsolute the current rows must satisfy it; the caller (engine)
// performs that scan and passes verified=true, or uses CheckConstraintRows
// itself first.
func (c *Catalog) AddConstraint(con *Constraint) error {
	te, err := c.Table(con.Table)
	if err != nil {
		return err
	}
	if con.Name == "" {
		con.Name = fmt.Sprintf("%s_%s_%d", strings.ToLower(con.Table), strings.ToLower(kindSlug(con.Kind)), len(te.Constraints)+1)
	}
	for _, existing := range te.Constraints {
		if strings.EqualFold(existing.Name, con.Name) {
			return fmt.Errorf("catalog: constraint %s already exists on %s", con.Name, con.Table)
		}
	}
	for _, col := range con.Columns {
		if te.Def.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: constraint %s: no column %s in %s", con.Name, col, con.Table)
		}
	}
	if con.Kind == ForeignKey {
		ref, err := c.Table(con.RefTable)
		if err != nil {
			return fmt.Errorf("catalog: constraint %s: %w", con.Name, err)
		}
		if len(con.RefColumns) != len(con.Columns) {
			return fmt.Errorf("catalog: constraint %s: column count mismatch", con.Name)
		}
		for _, col := range con.RefColumns {
			if ref.Def.ColumnIndex(col) < 0 {
				return fmt.Errorf("catalog: constraint %s: no column %s in %s", con.Name, col, con.RefTable)
			}
		}
	}
	if con.Kind == FuncDep {
		for _, col := range con.DepColumns {
			if te.Def.ColumnIndex(col) < 0 {
				return fmt.Errorf("catalog: constraint %s: no column %s in %s", con.Name, col, con.Table)
			}
		}
	}
	if con.Confidence == 0 && con.Mode != ModeSoftStatistical {
		con.Confidence = 1
	}
	con.Active = true
	con.VerifiedVersion = te.Heap.Version()
	te.Constraints = append(te.Constraints, con)
	c.version++
	return nil
}

func kindSlug(k Kind) string {
	switch k {
	case PrimaryKey:
		return "pk"
	case Unique:
		return "uq"
	case ForeignKey:
		return "fk"
	case Check:
		return "ck"
	case FuncDep:
		return "fd"
	default:
		return "con"
	}
}

// DropConstraint removes the named constraint from the table.
func (c *Catalog) DropConstraint(table, name string) error {
	te, err := c.Table(table)
	if err != nil {
		return err
	}
	for i, con := range te.Constraints {
		if strings.EqualFold(con.Name, name) {
			te.Constraints = append(te.Constraints[:i], te.Constraints[i+1:]...)
			c.version++
			return nil
		}
	}
	return fmt.Errorf("catalog: no constraint %s on %s", name, table)
}

// DeactivateConstraint marks a constraint inactive (the ASC
// drop-on-violation path, §4.1) without removing its catalog entry.
func (c *Catalog) DeactivateConstraint(table, name string) error {
	te, err := c.Table(table)
	if err != nil {
		return err
	}
	for _, con := range te.Constraints {
		if strings.EqualFold(con.Name, name) {
			con.Active = false
			c.version++
			return nil
		}
	}
	return fmt.Errorf("catalog: no constraint %s on %s", name, table)
}

// Constraints returns the constraints on a table (nil if none).
func (c *Catalog) Constraints(table string) []*Constraint {
	te, err := c.Table(table)
	if err != nil {
		return nil
	}
	return te.Constraints
}

// ConstraintByName finds a constraint anywhere in the catalog.
func (c *Catalog) ConstraintByName(name string) *Constraint {
	for _, te := range c.tables {
		for _, con := range te.Constraints {
			if strings.EqualFold(con.Name, name) {
				return con
			}
		}
	}
	return nil
}

// --- Summary tables (ASTs) ---

// CreateSummaryTable registers an AST over a base table. Materialization of
// existing rows is performed by the engine, which owns row visibility.
func (c *Catalog) CreateSummaryTable(st *SummaryTable) error {
	if _, ok := c.summaries[key(st.Name)]; ok {
		return fmt.Errorf("catalog: summary table %s already exists", st.Name)
	}
	if _, ok := c.tables[key(st.Name)]; ok {
		return fmt.Errorf("catalog: %s already names a table", st.Name)
	}
	base, err := c.Table(st.Base)
	if err != nil {
		return err
	}
	st.Def = base.Def
	if !st.Informational {
		st.Heap = storage.NewHeap(base.Def)
	}
	c.summaries[key(st.Name)] = st
	c.touchHard()
	return nil
}

// SummaryTable returns the named AST.
func (c *Catalog) SummaryTable(name string) (*SummaryTable, bool) {
	st, ok := c.summaries[key(name)]
	return st, ok
}

// SummariesOn returns the ASTs defined over the given base table.
func (c *Catalog) SummariesOn(base string) []*SummaryTable {
	var out []*SummaryTable
	for _, st := range c.summaries {
		if strings.EqualFold(st.Base, base) {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropSummaryTable removes an AST.
func (c *Catalog) DropSummaryTable(name string) error {
	if _, ok := c.summaries[key(name)]; !ok {
		return fmt.Errorf("catalog: summary table %s does not exist", name)
	}
	delete(c.summaries, key(name))
	c.touchHard()
	return nil
}

// --- Linear correlations ---

// AddCorrelation registers a mined linear correlation.
func (c *Catalog) AddCorrelation(lc *LinearCorrelation) error {
	if _, err := c.Table(lc.Table); err != nil {
		return err
	}
	if lc.Name == "" {
		lc.Name = fmt.Sprintf("corr_%s_%s_%s", strings.ToLower(lc.Table), strings.ToLower(lc.ColA), strings.ToLower(lc.ColB))
	}
	if _, ok := c.correls[key(lc.Name)]; ok {
		return fmt.Errorf("catalog: correlation %s already exists", lc.Name)
	}
	lc.Active = true
	c.correls[key(lc.Name)] = lc
	c.version++
	return nil
}

// Correlations returns active correlations over the given table.
func (c *Catalog) Correlations(table string) []*LinearCorrelation {
	var out []*LinearCorrelation
	for _, lc := range c.correls {
		if strings.EqualFold(lc.Table, table) && lc.Active {
			out = append(out, lc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CorrelationByName returns a correlation regardless of its active flag.
func (c *Catalog) CorrelationByName(name string) (*LinearCorrelation, bool) {
	lc, ok := c.correls[key(name)]
	return lc, ok
}

// DeactivateCorrelation marks a correlation unusable (violation handling).
func (c *Catalog) DeactivateCorrelation(name string) error {
	lc, ok := c.correls[key(name)]
	if !ok {
		return fmt.Errorf("catalog: no correlation %s", name)
	}
	lc.Active = false
	c.version++
	return nil
}

// DropCorrelation removes a correlation entirely.
func (c *Catalog) DropCorrelation(name string) error {
	if _, ok := c.correls[key(name)]; !ok {
		return fmt.Errorf("catalog: no correlation %s", name)
	}
	delete(c.correls, key(name))
	c.version++
	return nil
}

// --- Join holes ---

// AddJoinHoles registers a mined hole set.
func (c *Catalog) AddJoinHoles(jh *JoinHoles) error {
	if _, err := c.Table(jh.LeftTable); err != nil {
		return err
	}
	if _, err := c.Table(jh.RightTable); err != nil {
		return err
	}
	if jh.Name == "" {
		jh.Name = fmt.Sprintf("holes_%s_%s", strings.ToLower(jh.LeftTable), strings.ToLower(jh.RightTable))
	}
	if _, ok := c.holes[key(jh.Name)]; ok {
		return fmt.Errorf("catalog: join holes %s already exist", jh.Name)
	}
	jh.Active = true
	c.holes[key(jh.Name)] = jh
	c.version++
	return nil
}

// JoinHolesFor returns active hole sets matching the given join, in either
// orientation; swapped reports that left/right in the result are reversed
// relative to the caller's orientation.
func (c *Catalog) JoinHolesFor(leftTable, leftCol, rightTable, rightCol string) (jh *JoinHoles, swapped bool) {
	for _, h := range c.holes {
		if !h.Active {
			continue
		}
		if strings.EqualFold(h.LeftTable, leftTable) && strings.EqualFold(h.JoinLeft, leftCol) &&
			strings.EqualFold(h.RightTable, rightTable) && strings.EqualFold(h.JoinRight, rightCol) {
			return h, false
		}
		if strings.EqualFold(h.LeftTable, rightTable) && strings.EqualFold(h.JoinLeft, rightCol) &&
			strings.EqualFold(h.RightTable, leftTable) && strings.EqualFold(h.JoinRight, leftCol) {
			return h, true
		}
	}
	return nil, false
}

// JoinHolesByName returns a hole set by name.
func (c *Catalog) JoinHolesByName(name string) (*JoinHoles, bool) {
	jh, ok := c.holes[key(name)]
	return jh, ok
}

// AllJoinHoles lists every hole set.
func (c *Catalog) AllJoinHoles() []*JoinHoles {
	var out []*JoinHoles
	for _, jh := range c.holes {
		out = append(out, jh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Touch bumps the catalog version; used by soft-constraint maintenance when
// it mutates registered objects in place.
func (c *Catalog) Touch() { c.version++ }

// AddVirtualColumn registers a virtual column over the table. Statistics
// are collected by the engine's ANALYZE.
func (c *Catalog) AddVirtualColumn(table, name string, bound expr.Expr) (*VirtualColumn, error) {
	te, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	for _, v := range te.Virtual {
		if strings.EqualFold(v.Name, name) {
			return nil, fmt.Errorf("catalog: virtual column %s already exists on %s", name, table)
		}
	}
	vc := &VirtualColumn{Name: name, Expr: bound, Canon: expr.Canonical(bound)}
	te.Virtual = append(te.Virtual, vc)
	c.version++
	return vc, nil
}

// SetStats installs collected statistics for a table.
func (c *Catalog) SetStats(table string, ts *stats.TableStats) error {
	te, err := c.Table(table)
	if err != nil {
		return err
	}
	te.Stats = ts
	c.version++
	return nil
}
