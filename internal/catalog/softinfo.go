package catalog

import (
	"fmt"
	"strings"

	"softdb/internal/expr"
)

// LinearCorrelation is the paper's §2 [10] mined characterization: for a
// fraction Confidence of rows of Table, ColA = K*ColB + B within ±Eps.
// With Confidence == 1 it is an absolute soft constraint and may drive
// predicate-introduction rewrites; below 1 it is statistical and usable for
// estimation (or for the exception-union rewrite when an exception AST
// exists, §4.4).
type LinearCorrelation struct {
	Name       string
	Table      string
	ColA, ColB string // A = K*B + B0 ± Eps
	K, B0, Eps float64
	Confidence float64
	Active     bool

	// Probation implements §3.2's dynamic selection: a probationary
	// correlation is maintained (checked on writes, currency tracked) but
	// not yet employed by the optimizer, so its durability can be assessed
	// cheaply before plans come to depend on it.
	Probation bool

	// Currency bookkeeping (§3.3).
	VerifiedVersion int64
	ModsSince       int64
}

// Describe renders the correlation in the paper's notation.
func (lc *LinearCorrelation) Describe() string {
	s := fmt.Sprintf("%s: %s.%s = %.4g*%s + %.4g ± %.4g (confidence %.4f)",
		lc.Name, lc.Table, lc.ColA, lc.K, lc.ColB, lc.B0, lc.Eps, lc.Confidence)
	if !lc.Active {
		s += " [INACTIVE]"
	}
	if lc.Probation {
		s += " [PROBATION]"
	}
	return s
}

// Usable reports whether the optimizer may employ the correlation: active
// and past probation.
func (lc *LinearCorrelation) Usable() bool { return lc.Active && !lc.Probation }

// IsAbsolute reports whether the correlation holds for every row.
func (lc *LinearCorrelation) IsAbsolute() bool { return lc.Confidence >= 1 }

// EffectiveConfidence is §3.3's currency-discounted confidence over a table
// of rowCount rows: the stated confidence lowered by the fraction of the
// table modified since verification (the margin of error). Absolute
// correlations are exempt — every write is envelope-checked synchronously,
// so they stay exact until a violation deactivates them.
func (lc *LinearCorrelation) EffectiveConfidence(rowCount int64) float64 {
	if lc.IsAbsolute() {
		return lc.Confidence
	}
	if rowCount <= 0 {
		return 0
	}
	margin := float64(lc.ModsSince) / float64(rowCount)
	if margin > 1 {
		margin = 1
	}
	eff := lc.Confidence - margin
	if eff < 0 {
		eff = 0
	}
	return eff
}

// Rect is an axis-aligned empty rectangle in the (left attribute, right
// attribute) plane of a join result.
type Rect struct {
	A expr.Interval // over the left table's attribute
	B expr.Interval // over the right table's attribute
}

// String renders the rectangle.
func (r Rect) String() string { return r.A.String() + " × " + r.B.String() }

// JoinHoles records §2 [8]'s mined characterization: over the join
// LeftTable.JoinLeft = RightTable.JoinRight, no result tuple has
// (AttrLeft, AttrRight) inside any of Holes. Holes are maximal empty
// rectangles. Join holes are inherently ASCs: trimming a query range by a
// stale hole changes answers, so a violated hole must be dropped or split
// (§4.3).
type JoinHoles struct {
	Name       string
	LeftTable  string
	RightTable string
	JoinLeft   string // join column on the left table
	JoinRight  string // join column on the right table
	AttrLeft   string // profiled attribute on the left table
	AttrRight  string // profiled attribute on the right table
	Holes      []Rect
	Active     bool

	VerifiedVersion int64 // left heap version at discovery
	ModsSince       int64
}

// Describe renders the hole set.
func (jh *JoinHoles) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: holes over %s(%s) ⋈ %s(%s) on (%s, %s): %d holes",
		jh.Name, jh.LeftTable, jh.JoinLeft, jh.RightTable, jh.JoinRight,
		jh.AttrLeft, jh.AttrRight, len(jh.Holes))
	if !jh.Active {
		b.WriteString(" [INACTIVE]")
	}
	return b.String()
}

// DropHolesIntersecting removes (or, where possible, shrinks) holes that
// contain the given point — the paper's §4.3 cheap synchronous repair: on
// insert, assume the new value violates any hole containing it and retire
// that hole; the asynchronous miner restores optimality later. It returns
// the number of holes retired.
func (jh *JoinHoles) DropHolesIntersecting(a, b expr.Interval) int {
	kept := jh.Holes[:0]
	dropped := 0
	for _, h := range jh.Holes {
		if !h.A.Disjoint(a) && !h.B.Disjoint(b) {
			dropped++
			continue
		}
		kept = append(kept, h)
	}
	jh.Holes = kept
	return dropped
}
