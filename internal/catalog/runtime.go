package catalog

import "sync"

// runtimeMu guards the soft-characterization fields that query execution
// consults after the engine's shared lock is released: prune-predicate
// Check closures re-validate their source constraint (Active, Confidence,
// Mode), correlation (Usable), or hole list on every scan, racing the
// commit-time write hooks that deactivate constraints, bump staleness
// counters, and retire holes. Plan-time reads still run under the engine's
// shared lock and need no extra synchronization; only the run-time closure
// reads and the commit-hook writes take this lock.
//
// It is package-global rather than per-catalog: the closures capture bare
// *Constraint/*LinearCorrelation/*JoinHoles pointers with no path back to
// their catalog, and a database process hosts one live catalog.
var runtimeMu sync.RWMutex

// RuntimeRLock takes the soft-state read lock for a run-time consultation.
func RuntimeRLock() { runtimeMu.RLock() }

// RuntimeRUnlock releases RuntimeRLock.
func RuntimeRUnlock() { runtimeMu.RUnlock() }

// RuntimeLock takes the soft-state write lock around commit-time hooks
// that mutate characterization state while queries may be executing.
func RuntimeLock() { runtimeMu.Lock() }

// RuntimeUnlock releases RuntimeLock.
func RuntimeUnlock() { runtimeMu.Unlock() }
