package catalog

import (
	"strings"
	"testing"

	"softdb/internal/expr"
	"softdb/internal/schema"
	"softdb/internal/types"
)

func tableDef(name string) *schema.Table {
	return mustTable(name,
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "v", Type: types.KindInt, Nullable: true},
	)
}

func TestCreateDropTable(t *testing.T) {
	c := New()
	te, err := c.CreateTable(tableDef("t"))
	if err != nil {
		t.Fatal(err)
	}
	if te.Heap == nil {
		t.Fatal("heap should be allocated")
	}
	if _, err := c.CreateTable(tableDef("T")); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	if _, err := c.Table("t"); err != nil {
		t.Error("lookup")
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); err == nil {
		t.Error("dropped table should be gone")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	c := New()
	v0 := c.Version()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v0 {
		t.Error("create should bump version")
	}
	v1 := c.Version()
	c.Touch()
	if c.Version() == v1 {
		t.Error("touch should bump version")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	te, _ := c.CreateTable(tableDef("t"))
	te.Heap.Insert(types.Row{types.NewInt(1), types.NewInt(10)})
	te.Heap.Insert(types.Row{types.NewInt(2), types.NewInt(20)})
	ix, err := c.CreateIndex("i1", "t", []string{"v"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 2 {
		t.Errorf("bulk build: %d entries", ix.Tree.Len())
	}
	if _, err := c.CreateIndex("i1", "t", []string{"id"}, false); err == nil {
		t.Error("duplicate index name should fail")
	}
	if _, err := c.CreateIndex("i2", "t", []string{"missing"}, false); err == nil {
		t.Error("bad column should fail")
	}
	// Unique index over duplicate data fails.
	te.Heap.Insert(types.Row{types.NewInt(3), types.NewInt(10)})
	if _, err := c.CreateIndex("u1", "t", []string{"v"}, true); err == nil {
		t.Error("unique index over duplicates should fail")
	}
	if got := te.IndexOn(1); got == nil || got.Name != "i1" {
		t.Error("IndexOn leading ordinal")
	}
	if te.IndexOn(0) != nil {
		t.Error("no index on id")
	}
}

func TestConstraintLifecycle(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	con := &Constraint{
		Kind: Check, Mode: ModeSoftAbsolute, Table: "t",
		CheckExpr: expr.NewBinary(expr.OpGe,
			expr.NewColumn("t", "v", 1, types.KindInt),
			expr.NewConst(types.NewInt(0))),
	}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	if con.Name == "" || !con.Active || con.Confidence != 1 {
		t.Errorf("defaults: %+v", con)
	}
	if got := c.ConstraintByName(con.Name); got != con {
		t.Error("lookup by name")
	}
	if err := c.DeactivateConstraint("t", con.Name); err != nil {
		t.Fatal(err)
	}
	if con.Active {
		t.Error("deactivate")
	}
	if err := c.DropConstraint("t", con.Name); err != nil {
		t.Fatal(err)
	}
	if c.ConstraintByName(con.Name) != nil {
		t.Error("dropped constraint should be gone")
	}
	if err := c.DropConstraint("t", "nope"); err == nil {
		t.Error("dropping a missing constraint should fail")
	}
}

func TestConstraintValidation(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConstraint(&Constraint{
		Kind: PrimaryKey, Table: "t", Columns: []string{"missing"},
	}); err == nil {
		t.Error("bad column should fail")
	}
	if err := c.AddConstraint(&Constraint{
		Kind: ForeignKey, Table: "t", Columns: []string{"id"},
		RefTable: "nope", RefColumns: []string{"id"},
	}); err == nil {
		t.Error("bad ref table should fail")
	}
	if err := c.AddConstraint(&Constraint{
		Kind: FuncDep, Table: "t", Columns: []string{"id"}, DepColumns: []string{"missing"},
	}); err == nil {
		t.Error("bad dep column should fail")
	}
}

func TestModeSemantics(t *testing.T) {
	if !ModeEnforced.CheckedOnUpdate() || !ModeSoftAbsolute.CheckedOnUpdate() {
		t.Error("checked modes")
	}
	if ModeInformational.CheckedOnUpdate() || ModeSoftStatistical.CheckedOnUpdate() {
		t.Error("unchecked modes")
	}
	if ModeSoftStatistical.UsableInRewrite() {
		t.Error("SSCs are estimation-only")
	}
	for _, m := range []Mode{ModeEnforced, ModeInformational, ModeSoftAbsolute} {
		if !m.UsableInRewrite() {
			t.Errorf("%v should be rewrite-usable", m)
		}
	}
}

func TestIsKeyOver(t *testing.T) {
	con := &Constraint{Kind: PrimaryKey, Columns: []string{"A", "b"}, Active: true}
	if !con.IsKeyOver([]string{"B", "a"}) {
		t.Error("order- and case-insensitive match")
	}
	if con.IsKeyOver([]string{"a"}) {
		t.Error("subset is not the key")
	}
	con.Active = false
	if con.IsKeyOver([]string{"a", "b"}) {
		t.Error("inactive key does not count")
	}
	ck := &Constraint{Kind: Check, Columns: []string{"a"}, Active: true}
	if ck.IsKeyOver([]string{"a"}) {
		t.Error("check is not a key")
	}
}

func TestSummaryTables(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("base")); err != nil {
		t.Fatal(err)
	}
	st := &SummaryTable{Name: "s1", Base: "base"}
	if err := c.CreateSummaryTable(st); err != nil {
		t.Fatal(err)
	}
	if st.Heap == nil || st.Def == nil {
		t.Error("materialized summary gets a heap")
	}
	if err := c.CreateSummaryTable(&SummaryTable{Name: "s1", Base: "base"}); err == nil {
		t.Error("duplicate summary should fail")
	}
	if err := c.CreateSummaryTable(&SummaryTable{Name: "base", Base: "base"}); err == nil {
		t.Error("summary shadowing a table should fail")
	}
	info := &SummaryTable{Name: "s2", Base: "base", Informational: true}
	if err := c.CreateSummaryTable(info); err != nil {
		t.Fatal(err)
	}
	if info.Heap != nil {
		t.Error("informational summary keeps no rows")
	}
	if got := c.SummariesOn("base"); len(got) != 2 {
		t.Errorf("summaries on base: %d", len(got))
	}
	if err := c.DropSummaryTable("s1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.SummaryTable("s1"); ok {
		t.Error("dropped summary should be gone")
	}
}

func TestExceptionLinks(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	con := &Constraint{Kind: Check, Mode: ModeSoftStatistical, Table: "t",
		CheckExpr: expr.NewConst(types.NewBool(true)), Confidence: 0.9}
	if err := c.AddConstraint(con); err != nil {
		t.Fatal(err)
	}
	if err := c.LinkException(con.Name, "missing"); err == nil {
		t.Error("missing summary should fail")
	}
	st := &SummaryTable{Name: "exc", Base: "t"}
	if err := c.CreateSummaryTable(st); err != nil {
		t.Fatal(err)
	}
	if err := c.LinkException("nope", "exc"); err == nil {
		t.Error("missing constraint should fail")
	}
	if err := c.LinkException(con.Name, "exc"); err != nil {
		t.Fatal(err)
	}
	got, ok := c.ExceptionFor(con.Name)
	if !ok || got.Name != "exc" {
		t.Error("exception lookup")
	}
	info := &SummaryTable{Name: "inf", Base: "t", Informational: true}
	if err := c.CreateSummaryTable(info); err != nil {
		t.Fatal(err)
	}
	if err := c.LinkException(con.Name, "inf"); err == nil {
		t.Error("informational AST cannot back exceptions")
	}
}

func TestCorrelationsRegistry(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	lc := &LinearCorrelation{Table: "t", ColA: "id", ColB: "v", K: 2, Eps: 1, Confidence: 1}
	if err := c.AddCorrelation(lc); err != nil {
		t.Fatal(err)
	}
	if lc.Name == "" || !lc.Active {
		t.Errorf("defaults: %+v", lc)
	}
	if err := c.AddCorrelation(&LinearCorrelation{Name: lc.Name, Table: "t", ColA: "id", ColB: "v"}); err == nil {
		t.Error("duplicate name should fail")
	}
	if got := c.Correlations("t"); len(got) != 1 {
		t.Errorf("active correlations: %d", len(got))
	}
	if err := c.DeactivateCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if got := c.Correlations("t"); len(got) != 0 {
		t.Error("inactive correlations are hidden")
	}
	if _, ok := c.CorrelationByName(lc.Name); !ok {
		t.Error("by-name lookup sees inactive entries")
	}
	if err := c.DropCorrelation(lc.Name); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.CorrelationByName(lc.Name); ok {
		t.Error("dropped correlation should be gone")
	}
}

func TestJoinHolesRegistryAndOrientation(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("l")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable(tableDef("r")); err != nil {
		t.Fatal(err)
	}
	jh := &JoinHoles{
		LeftTable: "l", RightTable: "r",
		JoinLeft: "id", JoinRight: "id",
		AttrLeft: "v", AttrRight: "v",
		Holes: []Rect{{
			A: expr.Between(types.NewInt(10), types.NewInt(20), true, true),
			B: expr.Between(types.NewInt(0), types.NewInt(5), true, true),
		}},
	}
	if err := c.AddJoinHoles(jh); err != nil {
		t.Fatal(err)
	}
	got, swapped := c.JoinHolesFor("l", "id", "r", "id")
	if got == nil || swapped {
		t.Error("forward orientation")
	}
	got, swapped = c.JoinHolesFor("r", "id", "l", "id")
	if got == nil || !swapped {
		t.Error("reversed orientation")
	}
	if got, _ := c.JoinHolesFor("l", "v", "r", "id"); got != nil {
		t.Error("wrong join column should not match")
	}
}

func TestDropHolesIntersecting(t *testing.T) {
	jh := &JoinHoles{Holes: []Rect{
		{A: expr.Between(types.NewInt(0), types.NewInt(10), true, true), B: expr.Unbounded()},
		{A: expr.Between(types.NewInt(50), types.NewInt(60), true, true), B: expr.Unbounded()},
	}}
	n := jh.DropHolesIntersecting(expr.Point(types.NewInt(5)), expr.Unbounded())
	if n != 1 || len(jh.Holes) != 1 {
		t.Errorf("drop: n=%d holes=%d", n, len(jh.Holes))
	}
	// Non-intersecting point drops nothing.
	n = jh.DropHolesIntersecting(expr.Point(types.NewInt(30)), expr.Unbounded())
	if n != 0 || len(jh.Holes) != 1 {
		t.Errorf("no-op drop: n=%d", n)
	}
}

func TestDropTableCascades(t *testing.T) {
	c := New()
	if _, err := c.CreateTable(tableDef("t")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable(tableDef("u")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateSummaryTable(&SummaryTable{Name: "s", Base: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCorrelation(&LinearCorrelation{Table: "t", ColA: "id", ColB: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJoinHoles(&JoinHoles{LeftTable: "t", RightTable: "u",
		JoinLeft: "id", JoinRight: "id", AttrLeft: "v", AttrRight: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.SummaryTable("s"); ok {
		t.Error("summary should cascade")
	}
	if got := c.Correlations("t"); len(got) != 0 {
		t.Error("correlations should cascade")
	}
	if got := c.AllJoinHoles(); len(got) != 0 {
		t.Error("holes should cascade")
	}
}

func TestDescribeStrings(t *testing.T) {
	con := &Constraint{Name: "c", Kind: ForeignKey, Mode: ModeInformational,
		Table: "child", Columns: []string{"fk"}, RefTable: "parent", RefColumns: []string{"id"}, Active: true}
	d := con.Describe()
	if !strings.Contains(d, "REFERENCES parent") || !strings.Contains(d, "INFORMATIONAL") {
		t.Errorf("describe: %s", d)
	}
	lc := &LinearCorrelation{Name: "x", Table: "t", ColA: "a", ColB: "b", K: 1.5, Eps: 2, Confidence: 0.93}
	if !strings.Contains(lc.Describe(), "confidence 0.93") {
		t.Errorf("correlation describe: %s", lc.Describe())
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
