package mining

import (
	"math"
	"math/rand"
	"testing"

	"softdb/internal/catalog"
	"softdb/internal/schema"
	"softdb/internal/storage"
	"softdb/internal/types"
)

func pairTable(t *testing.T, n int, f func(i int) (a, b float64)) (*schema.Table, *storage.Heap) {
	t.Helper()
	def := mustTable("t",
		schema.Column{Name: "a", Type: types.KindFloat},
		schema.Column{Name: "b", Type: types.KindFloat},
	)
	h := storage.NewHeap(def)
	for i := 0; i < n; i++ {
		a, b := f(i)
		h.Insert(types.Row{types.NewFloat(a), types.NewFloat(b)})
	}
	return def, h
}

func TestFitLinearExact(t *testing.T) {
	_, h := pairTable(t, 100, func(i int) (float64, float64) {
		b := float64(i)
		return 3*b + 7, b
	})
	fit, err := FitLinear(h, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K-3) > 1e-9 || math.Abs(fit.B0-7) > 1e-9 {
		t.Errorf("fit: k=%g b0=%g", fit.K, fit.B0)
	}
	if fit.EpsForConfidence(1) > 1e-9 {
		t.Errorf("exact fit should have ~0 max residual: %g", fit.EpsForConfidence(1))
	}
	if fit.ConfidenceForEps(0.001) != 1 {
		t.Error("confidence for tiny eps on exact data")
	}
}

func TestFitLinearWithNoiseAndOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	_, h := pairTable(t, 1000, func(i int) (float64, float64) {
		b := float64(i)
		a := 2*b + 5 + r.Float64()*2 - 1 // ±1 noise
		if i%100 == 0 {
			a += 500 // 1% outliers
		}
		return a, b
	})
	fit, err := FitLinear(h, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K-2) > 0.1 {
		t.Errorf("slope: %g", fit.K)
	}
	eps99 := fit.EpsForConfidence(0.99)
	epsMax := fit.EpsForConfidence(1)
	if eps99 >= epsMax {
		t.Errorf("eps99 (%g) should be far below epsMax (%g)", eps99, epsMax)
	}
	conf := fit.ConfidenceForEps(eps99)
	if conf < 0.99 {
		t.Errorf("confidence at eps99: %g", conf)
	}
	if epsMax < 400 {
		t.Errorf("outliers should dominate max residual: %g", epsMax)
	}
}

func TestFitLinearErrors(t *testing.T) {
	_, h := pairTable(t, 1, func(int) (float64, float64) { return 1, 1 })
	if _, err := FitLinear(h, 0, 1); err == nil {
		t.Error("single point should error")
	}
	_, h = pairTable(t, 50, func(i int) (float64, float64) { return float64(i), 5 })
	if _, err := FitLinear(h, 0, 1); err == nil {
		t.Error("constant B should error")
	}
}

func TestMineCorrelationsFindsAbsolute(t *testing.T) {
	def, h := pairTable(t, 200, func(i int) (float64, float64) {
		b := float64(i)
		return 1.5*b + 2 + float64(i%3)*0.1, b
	})
	out := MineCorrelations(def, h, LinearMinerConfig{})
	if len(out) == 0 {
		t.Fatal("expected a correlation")
	}
	found := false
	for _, lc := range out {
		if lc.ColA == "a" && lc.ColB == "b" {
			found = true
			if lc.Confidence != 1 {
				t.Errorf("tight envelope should be absolute: %v", lc.Confidence)
			}
			if math.Abs(lc.K-1.5) > 0.01 {
				t.Errorf("k: %g", lc.K)
			}
		}
	}
	if !found {
		t.Error("a=f(b) not discovered")
	}
}

func TestMineCorrelationsStatisticalFallback(t *testing.T) {
	def, h := pairTable(t, 1000, func(i int) (float64, float64) {
		b := float64(i)
		a := b
		if i%50 == 0 {
			a = b + 700 // 2% gross outliers widen the absolute envelope
		}
		return a, b
	})
	out := MineCorrelations(def, h, LinearMinerConfig{MinConfidence: 0.95})
	var forA *catalog.LinearCorrelation
	for _, lc := range out {
		if lc.ColA == "a" && lc.ColB == "b" {
			forA = lc
		}
	}
	if forA == nil {
		t.Fatal("statistical correlation not discovered")
	}
	if forA.Confidence >= 1 {
		t.Errorf("should be statistical: %v", forA.Confidence)
	}
	if forA.Confidence < 0.95 {
		t.Errorf("confidence: %v", forA.Confidence)
	}
}

func TestMineCorrelationsRejectsUncorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	def, h := pairTable(t, 500, func(i int) (float64, float64) {
		return r.Float64() * 1000, r.Float64() * 1000
	})
	out := MineCorrelations(def, h, LinearMinerConfig{})
	if len(out) != 0 {
		t.Errorf("noise should yield nothing: %d found", len(out))
	}
}

// --- hole mining ---

func TestExtractHolesFindsPlantedHole(t *testing.T) {
	// Points fill [0,100]² except the rectangle [40,60]×[40,60].
	var as, bs []float64
	r := rand.New(rand.NewSource(5))
	for len(as) < 4000 {
		a, b := r.Float64()*100, r.Float64()*100
		if a > 38 && a < 62 && b > 38 && b < 62 {
			continue
		}
		as = append(as, a)
		bs = append(bs, b)
	}
	holes := ExtractHoles(as, bs, types.KindFloat, types.KindFloat, HoleMinerConfig{Grid: 32})
	if len(holes) == 0 {
		t.Fatal("no holes found")
	}
	// The largest hole should cover the planted center.
	center := holes[0]
	if !center.A.Contains(types.NewFloat(50)) || !center.B.Contains(types.NewFloat(50)) {
		t.Errorf("largest hole should contain (50,50): %s", center)
	}
	// Every reported hole must be truly empty.
	for _, hrect := range holes {
		for i := range as {
			if hrect.A.Contains(types.NewFloat(as[i])) && hrect.B.Contains(types.NewFloat(bs[i])) {
				t.Fatalf("hole %s contains point (%g,%g)", hrect, as[i], bs[i])
			}
		}
	}
}

func TestExtractHolesIntKind(t *testing.T) {
	// Integer grid with a missing band a in [100, 200).
	var as, bs []float64
	for a := 0; a < 300; a += 5 {
		if a >= 100 && a < 200 {
			continue
		}
		for b := 0; b < 100; b += 10 {
			as = append(as, float64(a))
			bs = append(bs, float64(b))
		}
	}
	holes := ExtractHoles(as, bs, types.KindInt, types.KindInt, HoleMinerConfig{Grid: 16})
	if len(holes) == 0 {
		t.Fatal("no holes")
	}
	for _, hrect := range holes {
		for i := range as {
			if hrect.A.Contains(types.NewInt(int64(as[i]))) && hrect.B.Contains(types.NewInt(int64(bs[i]))) {
				t.Fatalf("hole %s contains (%g,%g)", hrect, as[i], bs[i])
			}
		}
	}
}

func TestMineJoinHolesEndToEnd(t *testing.T) {
	cat := catalog.New()
	oneDef := mustTable("one",
		schema.Column{Name: "k", Type: types.KindInt},
		schema.Column{Name: "a", Type: types.KindInt},
	)
	twoDef := mustTable("two",
		schema.Column{Name: "k", Type: types.KindInt},
		schema.Column{Name: "b", Type: types.KindInt},
	)
	one, _ := cat.CreateTable(oneDef)
	two, _ := cat.CreateTable(twoDef)
	// Join on k. a is i, b is i+offset; plant a hole: no pairs with
	// a in [250,500) (those keys are absent from table two).
	for i := 0; i < 1000; i++ {
		one.Heap.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i))})
		if i >= 250 && i < 500 {
			continue
		}
		two.Heap.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 100))})
	}
	jh, n, err := MineJoinHoles(JoinHoleRequest{
		Left: one, Right: two,
		JoinLeft: "k", JoinRight: "k",
		AttrLeft: "a", AttrRight: "b",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 750 {
		t.Errorf("join size: %d", n)
	}
	if len(jh.Holes) == 0 {
		t.Fatal("no holes found over the missing key band")
	}
	// Some hole should cover a values inside the missing band.
	found := false
	for _, hrect := range jh.Holes {
		if hrect.A.Contains(types.NewInt(375)) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing band not detected: %v", jh.Holes)
	}
}

// --- FD mining ---

func TestMineFDsExact(t *testing.T) {
	def := mustTable("denorm",
		schema.Column{Name: "id", Type: types.KindInt},
		schema.Column{Name: "cust", Type: types.KindInt},
		schema.Column{Name: "cust_name", Type: types.KindString},
	)
	h := storage.NewHeap(def)
	names := []string{"ann", "bob", "carol"}
	for i := 0; i < 90; i++ {
		c := i % 3
		h.Insert(types.Row{types.NewInt(int64(i)), types.NewInt(int64(c)), types.NewString(names[c])})
	}
	fds := MineFDs(def, h, FDMinerConfig{})
	hasCustName := false
	for _, fd := range fds {
		if len(fd.Det) == 1 && fd.Det[0] == "cust" && fd.Dep == "cust_name" {
			hasCustName = true
			if fd.Confidence != 1 {
				t.Errorf("exact FD confidence: %g", fd.Confidence)
			}
		}
		// id is a key: id → everything should be found too.
	}
	if !hasCustName {
		t.Errorf("cust → cust_name not found: %v", fds)
	}
	// Minimality: cust→cust_name found, so {cust,id}→cust_name must not be
	// reported... (id→cust_name is reported separately since id is a key).
	for _, fd := range fds {
		if len(fd.Det) == 2 && fd.Dep == "cust_name" {
			t.Errorf("non-minimal FD reported: %v", fd)
		}
	}
}

func TestMineFDsApproximate(t *testing.T) {
	def := mustTable("t",
		schema.Column{Name: "x", Type: types.KindInt},
		schema.Column{Name: "y", Type: types.KindInt},
	)
	h := storage.NewHeap(def)
	for i := 0; i < 100; i++ {
		y := i % 10
		if i >= 95 {
			y = 99 // 5 dirty rows break x→y for x in {5..9}
		}
		h.Insert(types.Row{types.NewInt(int64(i % 10)), types.NewInt(int64(y))})
	}
	fds := MineFDs(def, h, FDMinerConfig{MinConfidence: 0.9})
	found := false
	for _, fd := range fds {
		if len(fd.Det) == 1 && fd.Det[0] == "x" && fd.Dep == "y" {
			found = true
			if fd.Confidence >= 1 || fd.Confidence < 0.9 {
				t.Errorf("approximate confidence: %g", fd.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("approximate FD not found: %v", fds)
	}
	// With exact-only config the dirty FD disappears.
	exact := MineFDs(def, h, FDMinerConfig{MinConfidence: 1})
	for _, fd := range exact {
		if len(fd.Det) == 1 && fd.Det[0] == "x" && fd.Dep == "y" {
			t.Error("dirty FD reported as exact")
		}
	}
}

func TestVerifyFD(t *testing.T) {
	def := mustTable("t",
		schema.Column{Name: "x", Type: types.KindInt},
		schema.Column{Name: "y", Type: types.KindInt},
	)
	h := storage.NewHeap(def)
	for i := 0; i < 50; i++ {
		h.Insert(types.Row{types.NewInt(int64(i % 5)), types.NewInt(int64(i % 5))})
	}
	if conf := VerifyFD(def, h, []string{"x"}, "y"); conf != 1 {
		t.Errorf("clean FD: %g", conf)
	}
	h.Insert(types.Row{types.NewInt(0), types.NewInt(999)})
	if conf := VerifyFD(def, h, []string{"x"}, "y"); conf >= 1 {
		t.Errorf("dirty FD should drop below 1: %g", conf)
	}
}

// --- range mining ---

func TestMineRanges(t *testing.T) {
	def := mustTable("t",
		schema.Column{Name: "v", Type: types.KindInt},
		schema.Column{Name: "s", Type: types.KindString, Nullable: true},
	)
	h := storage.NewHeap(def)
	for i := 10; i <= 50; i++ {
		h.Insert(types.Row{types.NewInt(int64(i)), types.Null})
	}
	cons := MineRanges(def, h, 16)
	if len(cons) != 1 {
		t.Fatalf("constraints: %d (string column had only NULLs)", len(cons))
	}
	c := cons[0]
	if c.Mode != catalog.ModeSoftAbsolute || c.Kind != catalog.Check {
		t.Errorf("mode/kind: %v %v", c.Mode, c.Kind)
	}
	// The check should accept 10..50 and reject outside.
	row := types.Row{types.NewInt(30), types.Null}
	v, _ := c.CheckExpr.Eval(row)
	if !v.Bool() {
		t.Error("30 in range")
	}
	row = types.Row{types.NewInt(51), types.Null}
	v, _ = c.CheckExpr.Eval(row)
	if v.Bool() {
		t.Error("51 out of range")
	}
}

// mustTable is a test-local NewTable that panics on error; the schema
// package itself no longer exports a panicking constructor.
func mustTable(name string, cols ...schema.Column) *schema.Table {
	def, err := schema.NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return def
}
